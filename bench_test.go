// Benchmark harness: one benchmark per paper figure (DESIGN.md §4 E1–E6)
// plus the ablation benches for the design choices DESIGN.md §5 calls out.
// Figure benches run reduced-scale training trials; their custom metrics
// (acc, auc) report the quality achieved at that scale, while ns/op reports
// the training cost — together they regenerate the shape of the paper's
// accuracy/time plots. cmd/experiments produces the full tables.
package streambrain_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/experiments"
	"streambrain/internal/gbt"
	"streambrain/internal/higgs"
	"streambrain/internal/metrics"
	"streambrain/internal/mlp"
	"streambrain/internal/mnistgen"
	"streambrain/internal/mpi"
	"streambrain/internal/posit"
	"streambrain/internal/serve"
	"streambrain/internal/serve/wire"
	"streambrain/internal/stream"
	"streambrain/internal/tensor"
	"streambrain/internal/viz"
)

// benchSplits lazily prepares one shared Higgs split for all figure benches.
var benchSplitsCache *experiments.HiggsSplits

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Events = 12000
	cfg.Repeats = 1
	cfg.UnsupEpochs = 3
	cfg.SupEpochs = 3
	cfg.Workers = 0
	cfg.OutDir = ""
	return cfg
}

func benchSplits(b *testing.B) *experiments.HiggsSplits {
	b.Helper()
	if benchSplitsCache == nil {
		benchSplitsCache = experiments.PrepareHiggs(benchConfig())
	}
	return benchSplitsCache
}

// BenchmarkFig3Capacity is E1: one training trial per (HCU, MCU) capacity
// point of the paper's Fig. 3 grid (MCUs reduced 10× to keep bench runtime
// sane; shape is preserved).
func BenchmarkFig3Capacity(b *testing.B) {
	cfg := benchConfig()
	splits := benchSplits(b)
	for _, mcus := range []int{30, 300} {
		for _, hcus := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("HCU=%d/MCU=%d", hcus, mcus), func(b *testing.B) {
				p := core.DefaultParams()
				p.HCUs = hcus
				p.MCUs = mcus
				p.ReceptiveField = 0.30
				p.UnsupervisedEpochs = cfg.UnsupEpochs
				p.SupervisedEpochs = cfg.SupEpochs
				var last experiments.TrialResult
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.Seed = int64(i + 1)
					last = experiments.RunTrial(cfg, splits, p, false)
				}
				b.ReportMetric(last.Acc, "acc")
				b.ReportMetric(last.AUC, "auc")
			})
		}
	}
}

// BenchmarkFig4ReceptiveField is E2: one training trial per receptive-field
// size of the paper's Fig. 4 sweep.
func BenchmarkFig4ReceptiveField(b *testing.B) {
	cfg := benchConfig()
	splits := benchSplits(b)
	for _, rf := range []float64{0.05, 0.25, 0.40, 0.65, 0.95} {
		b.Run(fmt.Sprintf("RF=%02.0f%%", rf*100), func(b *testing.B) {
			p := core.DefaultParams()
			p.HCUs = 1
			p.MCUs = 300
			p.ReceptiveField = rf
			p.UnsupervisedEpochs = cfg.UnsupEpochs
			p.SupervisedEpochs = cfg.SupEpochs
			var last experiments.TrialResult
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Seed = int64(i + 1)
				last = experiments.RunTrial(cfg, splits, p, false)
			}
			b.ReportMetric(last.Acc, "acc")
			b.ReportMetric(last.AUC, "auc")
		})
	}
}

// BenchmarkFig5MaskEvolution is E3: unsupervised training plus the mask
// montage render at one mid-sweep receptive field.
func BenchmarkFig5MaskEvolution(b *testing.B) {
	cfg := benchConfig()
	splits := benchSplits(b)
	b.ReportAllocs()
	b.ResetTimer() // benchSplits may generate the shared split on first call
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams()
		p.HCUs = 1
		p.MCUs = 100
		p.ReceptiveField = 0.40
		p.SupervisedEpochs = 0
		p.Seed = int64(i + 1)
		be := backend.MustNew(cfg.Backend, cfg.Workers)
		net := core.NewNetwork(be, splits.Train.Hypercolumns, splits.Train.UnitsPerHC,
			splits.Train.Classes, p)
		net.TrainUnsupervised(splits.Train, cfg.UnsupEpochs)
		fields := experiments.MaskFields(net.Hidden, experiments.HiggsGrid)
		_ = viz.RenderMontage(fields, 5, 8)
	}
}

// BenchmarkFig1MNISTFields is E4: the MNIST receptive-field run.
func BenchmarkFig1MNISTFields(b *testing.B) {
	cfg := benchConfig()
	cfg.UnsupEpochs = 6
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.RunFig1(cfg, 1000, 3, 20, 0.06); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2InSitu is E5: the per-epoch co-processing cost (VTI + PNG
// render of 4 receptive fields), the overhead the in-situ feature adds to
// each epoch.
func BenchmarkFig2InSitu(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	fields := make([]viz.Field, 4)
	for h := range fields {
		mask := make([]bool, 28)
		for i := range mask {
			mask[i] = rng.Intn(2) == 0
		}
		fields[h] = viz.BoolField(fmt.Sprintf("hcu%d", h), 7, 4, mask)
	}
	dir := b.TempDir()
	vti, err := viz.NewVTIWriter(dir, "bench")
	if err != nil {
		b.Fatal(err)
	}
	png, err := viz.NewPNGWriter(dir, "bench", 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	adaptors := viz.Multi{vti, png}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := adaptors.CoProcess(i, fields); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines is E6: one fit+evaluate per related-work model family.
func BenchmarkBaselines(b *testing.B) {
	cfg := benchConfig()
	splits := benchSplits(b)
	std := data.FitStandardizer(splits.TrainRaw)
	xtr := std.Transform(splits.TrainRaw)
	xte := std.Transform(splits.TestRaw)

	b.Run("BCPNN", func(b *testing.B) {
		p := core.DefaultParams()
		p.MCUs = 300
		p.ReceptiveField = 0.40
		p.UnsupervisedEpochs = cfg.UnsupEpochs
		p.SupervisedEpochs = cfg.SupEpochs
		var last experiments.TrialResult
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Seed = int64(i + 1)
			last = experiments.RunTrial(cfg, splits, p, false)
		}
		b.ReportMetric(last.AUC, "auc")
	})
	b.Run("BCPNN+SGD", func(b *testing.B) {
		p := core.DefaultParams()
		p.MCUs = 300
		p.ReceptiveField = 0.40
		p.UnsupervisedEpochs = cfg.UnsupEpochs
		p.SupervisedEpochs = cfg.SupEpochs
		var last experiments.TrialResult
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Seed = int64(i + 1)
			last = experiments.RunTrial(cfg, splits, p, true)
		}
		b.ReportMetric(last.AUC, "auc")
	})
	b.Run("MLP", func(b *testing.B) {
		var auc float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mcfg := mlp.DefaultConfig()
			mcfg.Epochs = 8
			mcfg.Seed = int64(i + 1)
			net := mlp.New(xtr.Cols, 2, mcfg)
			net.Fit(xtr, splits.TrainRaw.Y)
			_, score := net.Predict(xte)
			auc = metrics.AUC(score, splits.TestRaw.Y)
		}
		b.ReportMetric(auc, "auc")
	})
	b.Run("BDT", func(b *testing.B) {
		var auc float64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			gcfg := gbt.DefaultConfig()
			gcfg.Trees = 80
			gcfg.Seed = int64(i + 1)
			model := gbt.Fit(xtr, splits.TrainRaw.Y, gcfg)
			_, score := model.Predict(xte)
			auc = metrics.AUC(score, splits.TestRaw.Y)
		}
		b.ReportMetric(auc, "auc")
	})
}

// ---------------------------------------------------------------- ablations

// BenchmarkGEMM is ablation A1: the kernel backends across sizes, including
// the dimension-sensitivity the paper observes on GPUs ("Jiggs"): 512 is
// tile-aligned, 500 and 516 are not.
func BenchmarkGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{128, 500, 512, 516} {
		a := tensor.NewMatrix(n, n)
		c := tensor.NewMatrix(n, n)
		dst := tensor.NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()
			c.Data[i] = rng.Float64()
		}
		for _, name := range []string{"naive", "parallel", "gpusim"} {
			if name == "naive" && n > 128 {
				continue // quadratic pain, nothing to learn beyond 128
			}
			be := backend.MustNew(name, 0)
			b.Run(fmt.Sprintf("backend=%s/n=%d", name, n), func(b *testing.B) {
				b.SetBytes(int64(8 * n * n))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					be.MatMul(dst, a, c)
				}
				flops := 2 * float64(n) * float64(n) * float64(n)
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
			})
		}
	}
}

// BenchmarkGEMMBlocking is ablation A1b: cache-block size sweep (DESIGN.md
// §5.3).
func BenchmarkGEMMBlocking(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const n = 384
	a := tensor.NewMatrix(n, n)
	c := tensor.NewMatrix(n, n)
	dst := tensor.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
		c.Data[i] = rng.Float64()
	}
	for _, block := range []int{8, 32, 64, 128, 256} {
		b.Run(fmt.Sprintf("block=%d", block), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tensor.MatMulBlocked(dst, a, c, block)
			}
		})
	}
}

// BenchmarkOneHotVsDense is ablation A2 of DESIGN.md §5: the sparse one-hot
// input GEMM against the equivalent dense multiply (28 active of 280).
func BenchmarkOneHotVsDense(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const batch, groups, width, units = 128, 28, 10, 1000
	w := tensor.NewMatrix(groups*width, units)
	for i := range w.Data {
		w.Data[i] = rng.Float64()
	}
	idx := make([][]int32, batch)
	dense := tensor.NewMatrix(batch, groups*width)
	for s := 0; s < batch; s++ {
		for g := 0; g < groups; g++ {
			hot := int32(g*width + rng.Intn(width))
			idx[s] = append(idx[s], hot)
			dense.Set(s, int(hot), 1)
		}
	}
	dst := tensor.NewMatrix(batch, units)
	b.Run("onehot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.OneHotMatMulParallel(dst, idx, w, 0)
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tensor.MatMulParallel(dst, dense, w, 0, 0)
		}
	})
}

// BenchmarkTraceUpdate is ablation A4: the fused batch trace update
// (scale-then-scatter) at Fig-3 headline geometry.
func BenchmarkTraceUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const batch, groups, width, units = 128, 28, 10, 3000
	cij := tensor.NewMatrix(groups*width, units)
	act := tensor.NewMatrix(batch, units)
	for i := range act.Data {
		act.Data[i] = rng.Float64()
	}
	idx := make([][]int32, batch)
	for s := 0; s < batch; s++ {
		for g := 0; g < groups; g++ {
			idx[s] = append(idx[s], int32(g*width+rng.Intn(width)))
		}
	}
	for _, name := range []string{"naive", "parallel"} {
		be := backend.MustNew(name, 0)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				be.OneHotOuterLerp(cij, idx, act, 0.01)
			}
		})
	}
}

// BenchmarkLayerStep is the whole-layer offload ablation (DESIGN.md §14):
// one fused LayerStep against the identical composed kernel sequence, serial
// and with the full worker team. ReportAllocs pins the fused serial path's
// zero-allocation steady state — the composed sequence allocates its log(Cj)
// table on every weight refresh.
func BenchmarkLayerStep(b *testing.B) {
	const batch, fi, mi, h, m = 128, 28, 10, 1, 1000
	in, units := fi*mi, h*m
	rng := rand.New(rand.NewSource(5))
	idx := make([][]int32, batch)
	for s := range idx {
		for g := 0; g < fi; g++ {
			idx[s] = append(idx[s], int32(g*mi+rng.Intn(mi)))
		}
	}
	ci := make([]float64, in)
	cj := make([]float64, units)
	kbi := make([]float64, units)
	bias := make([]float64, units)
	for i := range ci {
		ci[i] = rng.Float64()*0.9 + 0.05
	}
	for j := range cj {
		cj[j] = rng.Float64()*0.9 + 0.05
		kbi[j] = 1
	}
	cij := tensor.NewMatrix(in, units)
	w := tensor.NewMatrix(in, units)
	act := tensor.NewMatrix(batch, units)
	for i := range cij.Data {
		cij.Data[i] = rng.Float64()*0.9 + 0.05
		w.Data[i] = rng.NormFloat64()
	}
	geom := backend.LayerGeom{Fi: fi, Mi: mi, H: h, M: m}
	hyper := backend.LayerHyper[float64]{
		Taupdt: 0.01, Taubdt: 0.01, PMinFraction: 0.1,
		Temperature: 1, Eps: 1e-9, Kbi: kbi,
	}
	for _, workers := range []int{1, 0} {
		b.Run(fmt.Sprintf("fused/workers=%d", workers), func(b *testing.B) {
			st := backend.MustNew("fused", workers).(backend.LayerStepper[float64])
			st.LayerStep(idx, act, ci, cj, cij, w, bias, nil, geom, hyper) // warm scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.LayerStep(idx, act, ci, cj, cij, w, bias, nil, geom, hyper)
			}
		})
		b.Run(fmt.Sprintf("composed/workers=%d", workers), func(b *testing.B) {
			be := backend.MustNew("parallel", workers)
			meanAct := make([]float64, units)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				be.OneHotMatMul(act, idx, w)
				be.AddBias(act, bias)
				be.SoftmaxGroups(act, h, m, 1)
				be.OneHotMeanLerp(ci, idx, 0.01)
				tensor.ColMeans(meanAct, act)
				be.Lerp(cj, meanAct, 0.01)
				be.OneHotOuterLerp(cij, idx, act, 0.01)
				be.UpdateWeights(w, ci, cj, cij, nil, fi, mi, h, m, 1e-9)
				be.UpdateBias(bias, kbi, cj, 1e-9)
			}
		})
	}
}

// BenchmarkTrainStep times one full unsupervised BCPNN batch step per
// backend at the paper's headline geometry (1 HCU × 3000 MCUs).
func BenchmarkTrainStep(b *testing.B) {
	splits := benchSplits(b)
	for _, name := range []string{"naive", "parallel", "fused", "gpusim"} {
		b.Run(name, func(b *testing.B) {
			p := core.DefaultParams()
			p.MCUs = 3000
			p.ReceptiveField = 0.30
			rng := rand.New(rand.NewSource(1))
			layer := core.NewHiddenLayer(backend.MustNew(name, 0),
				splits.Train.Hypercolumns, splits.Train.UnitsPerHC, p, rng)
			layer.InitTracesFromData(splits.Train.Idx[:1024])
			batch := splits.Train.Idx[:128]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				layer.TrainBatch(batch)
			}
		})
	}
}

// BenchmarkOffload is ablation A4 (DESIGN.md §5.6): identical training steps
// under the offloaded vs chatty transfer policy; the reported MB/step metric
// is the modeled host↔device traffic difference that motivates StreamBrain's
// fully-offloaded CUDA design.
func BenchmarkOffload(b *testing.B) {
	splits := benchSplits(b)
	for _, policy := range []backend.TransferPolicy{backend.PolicyOffloaded, backend.PolicyChatty} {
		b.Run(policy.String(), func(b *testing.B) {
			g := backend.NewGPUSim(0, policy)
			p := core.DefaultParams()
			p.MCUs = 1000
			rng := rand.New(rand.NewSource(1))
			layer := core.NewHiddenLayer(g, splits.Train.Hypercolumns,
				splits.Train.UnitsPerHC, p, rng)
			layer.InitTracesFromData(splits.Train.Idx[:1024])
			if policy == backend.PolicyOffloaded {
				g.MakeResident(layer.W.Data, layer.Bias, layer.Kbi,
					layer.Ci, layer.Cj, layer.Cij.Data)
			}
			g.ResetStats()
			batch := splits.Train.Idx[:128]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				layer.TrainBatch(batch)
			}
			st := g.Stats()
			perStep := float64(st.BytesH2D+st.BytesD2H) / float64(b.N) / (1 << 20)
			b.ReportMetric(perStep, "MB-moved/step")
			b.ReportMetric(float64(st.KernelLaunches)/float64(b.N), "launches/step")
		})
	}
}

// BenchmarkMPIScaling is ablation A3: the per-epoch trace allreduce across
// rank counts and transports at headline trace size. The committed
// BENCH_scaling.json (perf suite "scaling", DESIGN.md §10) carries the
// pinned-work version of this sweep.
func BenchmarkMPIScaling(b *testing.B) {
	const traceLen = 280 * 1000
	for _, transport := range []string{"chan", "tcp"} {
		for _, ranks := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/ranks=%d", transport, ranks), func(b *testing.B) {
				var w *mpi.World
				if transport == "tcp" {
					var err error
					w, err = mpi.NewTCPWorld(ranks, mpi.TCPOptions{})
					if err != nil {
						b.Fatal(err)
					}
					defer w.Close()
				} else {
					w = mpi.NewWorld(ranks)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					err := w.Run(func(c *mpi.Comm) error {
						buf := make([]float64, traceLen)
						for j := range buf {
							buf[j] = float64(c.Rank())
						}
						return c.AllreduceMean(buf)
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(8 * traceLen))
			})
		}
	}
}

// BenchmarkStructuralPlasticity is ablation A5 (DESIGN.md §5.1): the cost of
// the dense-trace MI scan plus swap at Fig-3 geometry.
func BenchmarkStructuralPlasticity(b *testing.B) {
	splits := benchSplits(b)
	p := core.DefaultParams()
	p.MCUs = 1000
	p.ReceptiveField = 0.30
	rng := rand.New(rand.NewSource(1))
	layer := core.NewHiddenLayer(backend.MustNew("parallel", 0),
		splits.Train.Hypercolumns, splits.Train.UnitsPerHC, p, rng)
	layer.InitTracesFromData(splits.Train.Idx[:1024])
	layer.TrainBatch(splits.Train.Idx[:128])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		layer.StructuralUpdate()
	}
}

// BenchmarkFPGAPrecision is ablation A7: full training trials with posit-
// quantized parameter storage (the fpgasim backend) against float64,
// reporting the achieved accuracy per numeric format — the paper's
// FPGA/posit exploration (§III-A) in measurable form.
func BenchmarkFPGAPrecision(b *testing.B) {
	cfg := benchConfig()
	splits := benchSplits(b)
	cases := []struct {
		name string
		be   func() backend.Backend
	}{
		{"float64", func() backend.Backend { return backend.MustNew("parallel", 0) }},
		{"posit16", func() backend.Backend { return backend.NewFPGASim(0, posit.Posit16) }},
		{"posit8", func() backend.Backend { return backend.NewFPGASim(0, posit.Posit8) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var acc, auc float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := core.DefaultParams()
				p.MCUs = 300
				p.ReceptiveField = 0.40
				p.Seed = int64(i + 1)
				net := core.NewNetwork(c.be(), splits.Train.Hypercolumns,
					splits.Train.UnitsPerHC, splits.Train.Classes, p)
				net.TrainUnsupervised(splits.Train, cfg.UnsupEpochs)
				net.TrainSupervised(splits.Train, cfg.SupEpochs)
				net.CalibrateThreshold(splits.Train)
				acc, auc = net.Evaluate(splits.Test)
			}
			b.ReportMetric(acc, "acc")
			b.ReportMetric(auc, "auc")
		})
	}
}

// BenchmarkServePredict measures online-inference throughput through the
// serving subsystem: "batch=1" scores one raw event per backend call (the
// no-batching baseline), "coalesced" pushes many concurrent requests through
// the micro-batcher so they merge into backend-sized forward passes. The
// events/s gap is the serving-side analogue of the training-side batching
// win; avg-batch reports the amortization factor achieved.
func BenchmarkServePredict(b *testing.B) {
	splits := benchSplits(b)
	p := core.DefaultParams()
	p.MCUs = 300
	p.ReceptiveField = 0.40
	p.Seed = 1
	net := core.NewNetwork(backend.MustNew("parallel", 0), splits.Train.Hypercolumns,
		splits.Train.UnitsPerHC, splits.Train.Classes, p)
	net.TrainUnsupervised(splits.Train, 2)
	net.TrainSupervised(splits.Train, 2)
	net.CalibrateThreshold(splits.Train)
	var buf bytes.Buffer
	if err := serve.SaveBundle(&buf, net, splits.Enc); err != nil {
		b.Fatal(err)
	}
	bundle, err := serve.LoadBundle(bytes.NewReader(buf.Bytes()), backend.MustNew("parallel", 0))
	if err != nil {
		b.Fatal(err)
	}
	events := make([][]float64, splits.TestRaw.Len())
	for i := range events {
		events[i] = splits.TestRaw.X.Row(i)
	}

	b.Run("batch=1", func(b *testing.B) {
		one := make([][]float64, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			one[0] = events[i%len(events)]
			if _, _, err := bundle.Predict(one); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	// wire=json vs wire=binary: the same 64-event batch through each codec
	// path end to end (decode → forward → encode) on a single-worker bundle,
	// so the gap is the protocol cost, not batching or parallelism. The JSON
	// leg is what handlePredict does per request; the binary leg is the
	// pooled predictWire hot path, which must stay allocation-free in steady
	// state (the allocs/op column is gated in perf/baseline_serve.json).
	serial, err := serve.LoadBundle(bytes.NewReader(buf.Bytes()), backend.MustNew("parallel", 1))
	if err != nil {
		b.Fatal(err)
	}
	const wireBatch = 64
	b.Run("wire=json", func(b *testing.B) {
		body, err := json.Marshal(serve.PredictRequest{Events: events[:wireBatch]})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var req serve.PredictRequest
			if err := json.Unmarshal(body, &req); err != nil {
				b.Fatal(err)
			}
			pred, score, err := serial.Predict(req.Events)
			if err != nil {
				b.Fatal(err)
			}
			resp := serve.PredictResponse{Predictions: make([]serve.Prediction, len(pred))}
			for j := range pred {
				resp.Predictions[j] = serve.Prediction{Class: pred[j], SignalScore: score[j]}
			}
			if _, err := json.Marshal(resp); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(wireBatch)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("wire=binary", func(b *testing.B) {
		frame, err := wire.AppendRequest(nil, events[:wireBatch], false)
		if err != nil {
			b.Fatal(err)
		}
		var sc serve.Scratch
		pred := make([]int, wireBatch)
		score := make([]float64, wireBatch)
		threshold := serial.Net.Threshold()
		var out []byte
		run := func() {
			req, err := wire.DecodeRequest(frame)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := serial.PredictPooled(req.Rows, pred, score, &sc); err != nil {
				b.Fatal(err)
			}
			req.Release()
			out, err = wire.AppendResponse(out[:0], pred, score, threshold, 1)
			if err != nil {
				b.Fatal(err)
			}
		}
		run() // warm the pools and scratch outside the timer
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
		b.ReportMetric(float64(wireBatch)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	b.Run("coalesced", func(b *testing.B) {
		batcher := serve.NewBatcher(func(_ int, evs [][]float64) ([]int, []float64, error) {
			return bundle.Predict(evs)
		}, serve.BatcherConfig{MaxBatch: 64, MaxWait: 500 * time.Microsecond, Workers: 1})
		defer batcher.Close()
		ctx := context.Background()
		b.SetParallelism(64) // many in-flight requests per core, like live traffic
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, _, err := batcher.Predict(ctx, events[i%len(events)]); err != nil {
					b.Error(err) // Fatal is not legal off the benchmark goroutine
					return
				}
				i++
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(batcher.Stats().AvgBatch(), "avg-batch")
	})
}

// BenchmarkStreamIngest measures the continual-learning pipeline's
// steady-state ingest rate (DESIGN.md §7): events/s through encode →
// prequential predict → window metrics → PartialFit, after warmup/bootstrap
// has completed outside the timer. The companion to BenchmarkServePredict —
// together they bound the co-located learn-and-serve process.
func BenchmarkStreamIngest(b *testing.B) {
	const warm = 1024
	ds := higgs.Generate(warm+512, 0.5, 1)
	p := core.DefaultParams()
	p.MCUs = 300
	p.ReceptiveField = 0.40
	p.Seed = 1
	pipe, err := stream.New(stream.Config{
		Backend:      "parallel",
		Params:       p,
		Warmup:       warm,
		Window:       2048,
		PublishEvery: -1, // isolate the training path; publish cost is serve-side
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	ch := make(chan stream.Event) // unbuffered: sends complete only when ingested
	done := make(chan error, 1)
	go func() { done <- pipe.Run(context.Background(), stream.ChanSource(ch)) }()
	emit := func(i int) {
		row := i % ds.Len()
		ch <- stream.Event{Features: ds.X.Row(row), Label: ds.Y[row]}
	}
	for i := 0; i < warm; i++ {
		emit(i)
	}
	// The next send is only consumed once bootstrap training has finished,
	// so everything after it is steady state.
	emit(warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit(warm + 1 + i)
	}
	close(ch)
	if err := <-done; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
	st := pipe.Stats()
	b.ReportMetric(st.WindowAccuracy, "window-acc")
}

// BenchmarkQuantileEncode is ablation A6 (DESIGN.md §5.5): the §V
// preprocessing across bin counts.
func BenchmarkQuantileEncode(b *testing.B) {
	ds := higgs.Generate(8000, 0.5, 1)
	for _, bins := range []int{4, 10, 32} {
		b.Run(fmt.Sprintf("bins=%d", bins), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc := data.FitEncoder(ds, bins)
				_ = enc.Transform(ds)
			}
		})
	}
}

// BenchmarkHiggsGenerate times the synthetic event generator (events/sec
// matters for the large sweeps).
func BenchmarkHiggsGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		higgs.Generate(2000, 0.5, int64(i))
	}
	b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkMNISTRender times the procedural digit renderer.
func BenchmarkMNISTRender(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mnistgen.RenderDigit(i%10, rng)
	}
}

// BenchmarkGEMMPrecision is the E8 kernel pair (DESIGN.md §9): the same
// pinned GEMM at float64 and float32 on the parallel backend. The f32/f64
// GFLOP/s ratio is the measured reduced-precision speedup — with the
// AVX2+FMA microkernels active it tracks the 2× lane-width argument; in
// pure scalar builds it collapses to ~1×.
func BenchmarkGEMMPrecision(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 256
	b.Run("precision=f64", func(b *testing.B) {
		a, c, dst := tensor.NewMatrix(n, n), tensor.NewMatrix(n, n), tensor.NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()
			c.Data[i] = rng.Float64()
		}
		be := backend.MustNew("parallel", 0)
		b.SetBytes(int64(8 * n * n))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			be.MatMul(dst, a, c)
		}
		flops := 2 * float64(n) * float64(n) * float64(n)
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	})
	b.Run("precision=f32", func(b *testing.B) {
		a, c, dst := tensor.NewMatrix32(n, n), tensor.NewMatrix32(n, n), tensor.NewMatrix32(n, n)
		for i := range a.Data {
			a.Data[i] = float32(rng.Float64())
			c.Data[i] = float32(rng.Float64())
		}
		be := backend.MustNew32("parallel", 0)
		b.SetBytes(int64(4 * n * n))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			be.MatMul(dst, a, c)
		}
		flops := 2 * float64(n) * float64(n) * float64(n)
		b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
	})
}

// BenchmarkForwardPrecision times the serving-side hidden forward pass at
// both precisions on a Higgs-shaped model (DESIGN.md §9): the float32 path
// is what a Precision=float32 bundle runs per prediction batch.
func BenchmarkForwardPrecision(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const (
		fi, mi = 28, 10
		units  = 300
		batch  = 64
	)
	idx := make([][]int32, batch)
	for s := range idx {
		for f := 0; f < fi; f++ {
			idx[s] = append(idx[s], int32(f*mi+rng.Intn(mi)))
		}
	}
	p := core.DefaultParams()
	p.MCUs = units
	p.UnsupervisedEpochs = 0
	p.SupervisedEpochs = 0
	for _, prec := range []core.Precision{core.Float64, core.Float32} {
		pv := p
		pv.Precision = prec
		layer := core.NewHiddenLayer(backend.MustNew("parallel", 0), fi, mi, pv,
			rand.New(rand.NewSource(3)))
		out := tensor.NewMatrix(batch, layer.Units())
		b.Run("precision="+prec.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				layer.Forward(idx, out)
			}
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
