// Command docscheck enforces docs consistency: every "DESIGN.md §N[.M]" or
// "DESIGN.md AN" reference in a Go source file must resolve to a section (or
// ablation id) that actually appears in a DESIGN.md heading. Comments wrap
// across lines, so the checker joins comment continuations before matching.
//
//	go run ./tools/docscheck          # checks the repository root
//	go run ./tools/docscheck -root .. # or any tree
//
// Exit status 1 lists every dangling reference with file:line. CI runs this
// so a renumbered DESIGN.md cannot silently orphan code comments.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	// headingToken finds section ids (§5 or §5.1) and ablation ids (A3)
	// inside DESIGN.md heading lines.
	headingToken = regexp.MustCompile(`§[0-9]+(?:\.[0-9]+)*|\bA[0-9]+\b`)
	// commentJoin collapses a line-wrapped Go comment ("...(DESIGN.md\n//
	// §1)...") into one logical line before reference matching.
	commentJoin = regexp.MustCompile(`\n\s*//\s?`)
	// reference matches "DESIGN.md" optionally followed by one section or
	// ablation token. Bare references ("see DESIGN.md") are always valid.
	reference = regexp.MustCompile(`DESIGN\.md(?:[\s,:]*(§[0-9]+(?:\.[0-9]+)*|A[0-9]+))?`)
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	sections, err := designSections(filepath.Join(*root, "DESIGN.md"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	var problems []string
	err = filepath.WalkDir(*root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and nested module caches.
			if name := d.Name(); name == ".git" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		problems = append(problems, checkFile(path, string(raw), sections)...)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d dangling DESIGN.md reference(s); sections present: %s\n",
			len(problems), strings.Join(sorted(sections), " "))
		os.Exit(1)
	}
	fmt.Println("docscheck: all DESIGN.md references resolve")
}

// designSections collects the set of valid section and ablation tokens from
// DESIGN.md headings.
func designSections(path string) (map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cannot read %s (code comments cite it): %w", path, err)
	}
	sections := make(map[string]bool)
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		for _, tok := range headingToken.FindAllString(line, -1) {
			sections[tok] = true
		}
	}
	if len(sections) == 0 {
		return nil, fmt.Errorf("%s has no §-numbered headings", path)
	}
	return sections, nil
}

// checkFile returns one problem line per dangling reference in src.
func checkFile(path, src string, sections map[string]bool) []string {
	joined := commentJoin.ReplaceAllString(src, " ")
	var problems []string
	for _, m := range reference.FindAllStringSubmatchIndex(joined, -1) {
		if m[2] < 0 {
			continue // bare "DESIGN.md", no section claimed
		}
		tok := joined[m[2]:m[3]]
		if sections[tok] {
			continue
		}
		line := 1 + strings.Count(src[:sourceOffset(src, joined, m[0])], "\n")
		problems = append(problems,
			fmt.Sprintf("%s:%d: references DESIGN.md %s, which has no such heading", path, line, tok))
	}
	return problems
}

// sourceOffset maps an offset in the comment-joined text back to the
// original source, by counting how many joins happened before it.
func sourceOffset(src, joined string, off int) int {
	// Each join replaced a `\n\s*//\s?` run with one space; walk both
	// strings in lockstep.
	i, j := 0, 0
	for j < off && i < len(src) {
		if loc := commentJoin.FindStringIndex(src[i:]); loc != nil && loc[0] == 0 {
			i += loc[1]
			j++ // the single space the join left behind
			continue
		}
		i++
		j++
	}
	return i
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// Stable enough for an error message without importing sort for a
	// custom §-aware order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
