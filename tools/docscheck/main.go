// Command docscheck enforces docs consistency:
//
//   - every "DESIGN.md §N[.M]" or "DESIGN.md AN" reference in a Go source
//     file must resolve to a section (or ablation id) that actually appears
//     in a DESIGN.md heading (comments wrap across lines, so the checker
//     joins comment continuations before matching);
//
//   - the README's "Cluster quickstart" section must exist, name the
//     streambrain-dist launcher and the committed BENCH_scaling.json
//     report, and show the launcher's core flags (-ranks, -transport,
//     -epochs) — each of which must really be defined by
//     cmd/streambrain-dist; every other -flag the section shows must be
//     defined by some command under cmd/. The "Fleet quickstart" section
//     carries the same contract against cmd/streambrain-router (-replica,
//     -pick, -max-inflight) and BENCH_fleet.json. The "Sparsity" section
//     carries it against cmd/streambrain (-sparsity, -sparse-compute) and
//     BENCH_sparse.json, which must also exist at the repo root; because
//     the sparse speed gate lives in tools/benchgate, flags shown in that
//     section may come from tools/ as well as cmd/.
//
//   - the README's "Backends" table must list exactly the names the
//     backend registry exposes, at each precision: every backend.Names()
//     entry needs a row with a ✓ in the f64 column, every Names32() entry
//     a ✓ in the f32 column, and the table may not claim a backend or a
//     precision the registry does not provide (checked bidirectionally by
//     importing the registry itself, so a Register call and the docs
//     cannot drift);
//
//   - every streambrain_* metric name DESIGN.md or README.md mentions
//     must appear as a quoted string literal in some Go source file
//     (exposition suffixes _bucket/_sum/_count resolve to their base
//     family), so the documented metric catalogue (DESIGN.md §11) cannot
//     drift from the names the code actually registers.
//
//     go run ./tools/docscheck          # checks the repository root
//     go run ./tools/docscheck -root .. # or any tree
//
// Exit status 1 lists every dangling reference with file:line. CI runs this
// so a renumbered DESIGN.md cannot silently orphan code comments, and a
// renamed launcher flag cannot silently rot the cluster documentation.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"streambrain/internal/backend"
)

var (
	// headingToken finds section ids (§5 or §5.1) and ablation ids (A3)
	// inside DESIGN.md heading lines.
	headingToken = regexp.MustCompile(`§[0-9]+(?:\.[0-9]+)*|\bA[0-9]+\b`)
	// commentJoin collapses a line-wrapped Go comment ("...(DESIGN.md\n//
	// §1)...") into one logical line before reference matching.
	commentJoin = regexp.MustCompile(`\n\s*//\s?`)
	// reference matches "DESIGN.md" optionally followed by one section or
	// ablation token. Bare references ("see DESIGN.md") are always valid.
	reference = regexp.MustCompile(`DESIGN\.md(?:[\s,:]*(§[0-9]+(?:\.[0-9]+)*|A[0-9]+))?`)
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	sections, err := designSections(filepath.Join(*root, "DESIGN.md"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	var problems []string
	codeMetrics := map[string]bool{}
	err = filepath.WalkDir(*root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and nested module caches.
			if name := d.Name(); name == ".git" || name == "vendor" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		problems = append(problems, checkFile(path, string(raw), sections)...)
		for _, m := range metricLit.FindAllStringSubmatch(string(raw), -1) {
			codeMetrics[m[1]] = true
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(1)
	}
	problems = append(problems, checkClusterDocs(*root)...)
	problems = append(problems, checkFleetDocs(*root)...)
	problems = append(problems, checkSparsityDocs(*root)...)
	problems = append(problems, checkBackendDocs(*root)...)
	problems = append(problems, checkMetricDocs(*root, codeMetrics)...)
	problems = append(problems, checkWireDocs(*root)...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d docs-consistency problem(s); DESIGN.md sections present: %s\n",
			len(problems), strings.Join(sorted(sections), " "))
		os.Exit(1)
	}
	fmt.Println("docscheck: all DESIGN.md references resolve and the cluster docs match the binaries")
}

// designSections collects the set of valid section and ablation tokens from
// DESIGN.md headings.
func designSections(path string) (map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cannot read %s (code comments cite it): %w", path, err)
	}
	sections := make(map[string]bool)
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		for _, tok := range headingToken.FindAllString(line, -1) {
			sections[tok] = true
		}
	}
	if len(sections) == 0 {
		return nil, fmt.Errorf("%s has no §-numbered headings", path)
	}
	return sections, nil
}

// checkFile returns one problem line per dangling reference in src.
func checkFile(path, src string, sections map[string]bool) []string {
	joined := commentJoin.ReplaceAllString(src, " ")
	var problems []string
	for _, m := range reference.FindAllStringSubmatchIndex(joined, -1) {
		if m[2] < 0 {
			continue // bare "DESIGN.md", no section claimed
		}
		tok := joined[m[2]:m[3]]
		if sections[tok] {
			continue
		}
		line := 1 + strings.Count(src[:sourceOffset(src, joined, m[0])], "\n")
		problems = append(problems,
			fmt.Sprintf("%s:%d: references DESIGN.md %s, which has no such heading", path, line, tok))
	}
	return problems
}

// sourceOffset maps an offset in the comment-joined text back to the
// original source, by counting how many joins happened before it.
func sourceOffset(src, joined string, off int) int {
	// Each join replaced a `\n\s*//\s?` run with one space; walk both
	// strings in lockstep.
	i, j := 0, 0
	for j < off && i < len(src) {
		if loc := commentJoin.FindStringIndex(src[i:]); loc != nil && loc[0] == 0 {
			i += loc[1]
			j++ // the single space the join left behind
			continue
		}
		i++
		j++
	}
	return i
}

var (
	// flagDef matches a flag definition in a command's main.go:
	// flag.Int("ranks", ...) or flag.IntVar(&o.ranks, "ranks", ...). The
	// method-name class includes digits so flag.Float64/flag.Int64 match.
	flagDef = regexp.MustCompile(`flag\.[A-Za-z][A-Za-z0-9]*\((?:&[\w.]+,\s*)?"([a-z][a-z0-9-]*)"`)
	// flagUse matches a -flag token shown in README prose or code blocks.
	flagUse = regexp.MustCompile("(?:^|[\\s`(])-([a-z][a-z0-9-]*)")
)

// clusterCoreFlags are the launcher flags the quickstart must document.
var clusterCoreFlags = []string{"ranks", "transport", "epochs"}

// checkClusterDocs enforces the distributed-operations docs: README's
// "Cluster quickstart" section against the flags the commands actually
// define, so the cluster story cannot drift from the binaries.
func checkClusterDocs(root string) []string {
	readmePath := filepath.Join(root, "README.md")
	raw, err := os.ReadFile(readmePath)
	if err != nil {
		return []string{fmt.Sprintf("%s: cannot read (cluster quickstart is checked): %v", readmePath, err)}
	}
	section := markdownSection(string(raw), "## Cluster quickstart")
	if section == "" {
		return []string{fmt.Sprintf("%s: missing a \"## Cluster quickstart\" section", readmePath)}
	}
	var problems []string
	for _, must := range []string{"streambrain-dist", "BENCH_scaling.json"} {
		if !strings.Contains(section, must) {
			problems = append(problems,
				fmt.Sprintf("%s: Cluster quickstart never mentions %s", readmePath, must))
		}
	}
	distFlags, err := definedFlags(filepath.Join(root, "cmd", "streambrain-dist", "main.go"))
	if err != nil {
		return append(problems, fmt.Sprintf("docscheck: %v", err))
	}
	allFlags := map[string]bool{}
	cmds, _ := filepath.Glob(filepath.Join(root, "cmd", "*", "main.go"))
	for _, path := range cmds {
		fs, err := definedFlags(path)
		if err != nil {
			return append(problems, fmt.Sprintf("docscheck: %v", err))
		}
		for f := range fs {
			allFlags[f] = true
		}
	}
	for _, f := range clusterCoreFlags {
		if !distFlags[f] {
			problems = append(problems,
				fmt.Sprintf("cmd/streambrain-dist: core flag -%s is not defined", f))
		}
		if !strings.Contains(section, "-"+f) {
			problems = append(problems,
				fmt.Sprintf("%s: Cluster quickstart never shows -%s", readmePath, f))
		}
	}
	for _, m := range flagUse.FindAllStringSubmatch(section, -1) {
		if name := m[1]; !allFlags[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: Cluster quickstart shows -%s, which no command under cmd/ defines",
				readmePath, name))
		}
	}
	return problems
}

// fleetCoreFlags are the router flags the fleet quickstart must document.
var fleetCoreFlags = []string{"replica", "pick", "max-inflight"}

// checkFleetDocs enforces the serving-fleet docs (DESIGN.md §13): README's
// "Fleet quickstart" section against the flags cmd/streambrain-router
// actually defines, mirroring the cluster-quickstart contract.
func checkFleetDocs(root string) []string {
	readmePath := filepath.Join(root, "README.md")
	raw, err := os.ReadFile(readmePath)
	if err != nil {
		return []string{fmt.Sprintf("%s: cannot read (fleet quickstart is checked): %v", readmePath, err)}
	}
	section := markdownSection(string(raw), "## Fleet quickstart")
	if section == "" {
		return []string{fmt.Sprintf("%s: missing a \"## Fleet quickstart\" section", readmePath)}
	}
	var problems []string
	for _, must := range []string{"streambrain-router", "BENCH_fleet.json"} {
		if !strings.Contains(section, must) {
			problems = append(problems,
				fmt.Sprintf("%s: Fleet quickstart never mentions %s", readmePath, must))
		}
	}
	routerFlags, err := definedFlags(filepath.Join(root, "cmd", "streambrain-router", "main.go"))
	if err != nil {
		return append(problems, fmt.Sprintf("docscheck: %v", err))
	}
	allFlags := map[string]bool{}
	cmds, _ := filepath.Glob(filepath.Join(root, "cmd", "*", "main.go"))
	for _, path := range cmds {
		fs, err := definedFlags(path)
		if err != nil {
			return append(problems, fmt.Sprintf("docscheck: %v", err))
		}
		for f := range fs {
			allFlags[f] = true
		}
	}
	for _, f := range fleetCoreFlags {
		if !routerFlags[f] {
			problems = append(problems,
				fmt.Sprintf("cmd/streambrain-router: core flag -%s is not defined", f))
		}
		if !strings.Contains(section, "-"+f) {
			problems = append(problems,
				fmt.Sprintf("%s: Fleet quickstart never shows -%s", readmePath, f))
		}
	}
	for _, m := range flagUse.FindAllStringSubmatch(section, -1) {
		if name := m[1]; !allFlags[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: Fleet quickstart shows -%s, which no command under cmd/ defines",
				readmePath, name))
		}
	}
	return problems
}

// sparsityCoreFlags are the training flags the Sparsity section must
// document — the pair that selects the structural-plasticity regime.
var sparsityCoreFlags = []string{"sparsity", "sparse-compute"}

// checkSparsityDocs enforces the structural-sparsity docs (DESIGN.md §15):
// README's "Sparsity" section must name the committed BENCH_sparse.json
// report — which must itself exist at the repo root, so the documented
// speedup table always has a measured report behind it — and show the
// cmd/streambrain flags that select the regime. Every other -flag the
// section shows must be defined by some command under cmd/ or tools/; the
// tools glob joins this check (alone among the README contracts) because
// the sparse speed gate is a tools/benchgate flag.
func checkSparsityDocs(root string) []string {
	readmePath := filepath.Join(root, "README.md")
	raw, err := os.ReadFile(readmePath)
	if err != nil {
		return []string{fmt.Sprintf("%s: cannot read (the Sparsity section is checked): %v", readmePath, err)}
	}
	section := markdownSection(string(raw), "## Sparsity")
	if section == "" {
		return []string{fmt.Sprintf("%s: missing a \"## Sparsity\" section", readmePath)}
	}
	var problems []string
	for _, must := range []string{"BENCH_sparse.json", "benchgate"} {
		if !strings.Contains(section, must) {
			problems = append(problems,
				fmt.Sprintf("%s: Sparsity section never mentions %s", readmePath, must))
		}
	}
	if _, err := os.Stat(filepath.Join(root, "BENCH_sparse.json")); err != nil {
		problems = append(problems, fmt.Sprintf(
			"%s: Sparsity section cites BENCH_sparse.json but the report is not committed at the repo root",
			readmePath))
	}
	trainFlags, err := definedFlags(filepath.Join(root, "cmd", "streambrain", "main.go"))
	if err != nil {
		return append(problems, fmt.Sprintf("docscheck: %v", err))
	}
	allFlags := map[string]bool{}
	cmds, _ := filepath.Glob(filepath.Join(root, "cmd", "*", "main.go"))
	tools, _ := filepath.Glob(filepath.Join(root, "tools", "*", "main.go"))
	for _, path := range append(cmds, tools...) {
		fs, err := definedFlags(path)
		if err != nil {
			return append(problems, fmt.Sprintf("docscheck: %v", err))
		}
		for f := range fs {
			allFlags[f] = true
		}
	}
	for _, f := range sparsityCoreFlags {
		if !trainFlags[f] {
			problems = append(problems,
				fmt.Sprintf("cmd/streambrain: core flag -%s is not defined", f))
		}
		if !strings.Contains(section, "-"+f) {
			problems = append(problems,
				fmt.Sprintf("%s: Sparsity section never shows -%s", readmePath, f))
		}
	}
	for _, m := range flagUse.FindAllStringSubmatch(section, -1) {
		if name := m[1]; !allFlags[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: Sparsity section shows -%s, which no command under cmd/ or tools/ defines",
				readmePath, name))
		}
	}
	return problems
}

// backendRow matches one body row of the README "Backends" table and
// captures the backend name plus the f64 and f32 columns.
var backendRow = regexp.MustCompile("(?m)^\\|\\s*`([a-z0-9]+)`\\s*\\|([^|]*)\\|([^|]*)\\|")

// checkBackendDocs enforces the backend-registry docs (DESIGN.md §14): the
// README's "Backends" table must list exactly the names backend.Names()
// exposes, with a ✓ in the f32 column exactly for the backend.Names32()
// entries — checked bidirectionally against the imported registry, so a
// Register call and the table cannot drift in either direction.
func checkBackendDocs(root string) []string {
	readmePath := filepath.Join(root, "README.md")
	raw, err := os.ReadFile(readmePath)
	if err != nil {
		return []string{fmt.Sprintf("%s: cannot read (the Backends table is checked): %v", readmePath, err)}
	}
	section := markdownSection(string(raw), "## Backends")
	if section == "" {
		return []string{fmt.Sprintf("%s: missing a \"## Backends\" section", readmePath)}
	}
	doc64 := map[string]bool{}
	doc32 := map[string]bool{}
	for _, m := range backendRow.FindAllStringSubmatch(section, -1) {
		name := m[1]
		if strings.Contains(m[2], "✓") {
			doc64[name] = true
		}
		if strings.Contains(m[3], "✓") {
			doc32[name] = true
		}
	}
	var problems []string
	reg64 := map[string]bool{}
	for _, name := range backend.Names() {
		reg64[name] = true
		if !doc64[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: Backends table has no f64 row for registered backend `%s`", readmePath, name))
		}
	}
	reg32 := map[string]bool{}
	for _, name := range backend.Names32() {
		reg32[name] = true
		if !doc32[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: Backends table does not mark registered f32 backend `%s`", readmePath, name))
		}
	}
	for name := range doc64 {
		if !reg64[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: Backends table documents `%s` at f64, which backend.Names() does not register",
				readmePath, name))
		}
	}
	for name := range doc32 {
		if !reg32[name] {
			problems = append(problems, fmt.Sprintf(
				"%s: Backends table documents `%s` at f32, which backend.Names32() does not register",
				readmePath, name))
		}
	}
	return problems
}

var (
	// metricLit matches a metric family name registered (or scraped) as a
	// quoted Go string literal.
	metricLit = regexp.MustCompile(`"(streambrain_[a-z0-9_]+)"`)
	// metricMention matches a metric name anywhere in markdown prose.
	metricMention = regexp.MustCompile(`streambrain_[a-z0-9_]+`)
)

// checkMetricDocs verifies every streambrain_* metric name the docs
// mention resolves to a quoted literal somewhere in the Go sources, so the
// DESIGN.md §11 catalogue and the README's Observability section cannot
// name metrics the code no longer (or never) registers. Exposition
// suffixes count as their base family.
func checkMetricDocs(root string, codeMetrics map[string]bool) []string {
	var problems []string
	for _, doc := range []string{"DESIGN.md", "README.md"} {
		path := filepath.Join(root, doc)
		raw, err := os.ReadFile(path)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: cannot read (metric names are checked): %v", path, err))
			continue
		}
		for i, line := range strings.Split(string(raw), "\n") {
			for _, name := range metricMention.FindAllString(line, -1) {
				base := name
				for _, suffix := range []string{"_bucket", "_sum", "_count"} {
					base = strings.TrimSuffix(base, suffix)
				}
				if codeMetrics[name] || codeMetrics[base] {
					continue
				}
				problems = append(problems, fmt.Sprintf(
					"%s:%d: documents metric %s, which no Go file registers", path, i+1, name))
			}
		}
	}
	return problems
}

var (
	// wireFieldDef matches the Field* frame-layout constants in the wire
	// package ("FieldRows = \"rows\"").
	wireFieldDef = regexp.MustCompile(`Field[A-Za-z0-9]+\s*=\s*"([a-z_]+)"`)
	// wireFieldUse matches a field name in the README layout tables' first
	// column ("| `rows` | u16 | ..." or "| per row: `class` | ...").
	wireFieldUse = regexp.MustCompile("\\|[^|`]*`([a-z_]+)`\\s*\\|")
	// wireContentType matches the negotiated media type literal in wire.go.
	wireContentType = regexp.MustCompile(`ContentType\s*=\s*"([a-z0-9/._+-]+)"`)
)

// checkWireDocs enforces the binary-protocol docs (DESIGN.md §12): the
// README must carry a "Binary protocol" section whose layout-table field
// names are exactly the Field* constants internal/serve/wire defines, and
// which shows the negotiated Content-Type — so the documented frame layout
// cannot drift from the codec.
func checkWireDocs(root string) []string {
	wirePath := filepath.Join(root, "internal", "serve", "wire", "wire.go")
	raw, err := os.ReadFile(wirePath)
	if err != nil {
		return []string{fmt.Sprintf("%s: cannot read (the README wire docs are checked against it): %v", wirePath, err)}
	}
	fields := map[string]bool{}
	for _, m := range wireFieldDef.FindAllStringSubmatch(string(raw), -1) {
		fields[m[1]] = true
	}
	if len(fields) == 0 {
		return []string{fmt.Sprintf("%s: no Field* frame-layout constants found", wirePath)}
	}
	contentType := ""
	if m := wireContentType.FindStringSubmatch(string(raw)); m != nil {
		contentType = m[1]
	}

	readmePath := filepath.Join(root, "README.md")
	doc, err := os.ReadFile(readmePath)
	if err != nil {
		return []string{fmt.Sprintf("%s: cannot read (binary protocol docs are checked): %v", readmePath, err)}
	}
	section := markdownSection(string(doc), "## Binary protocol")
	if section == "" {
		return []string{fmt.Sprintf("%s: missing a \"## Binary protocol\" section", readmePath)}
	}
	var problems []string
	if contentType != "" && !strings.Contains(section, contentType) {
		problems = append(problems, fmt.Sprintf(
			"%s: Binary protocol never shows the negotiated Content-Type %s", readmePath, contentType))
	}
	documented := map[string]bool{}
	for _, m := range wireFieldUse.FindAllStringSubmatch(section, -1) {
		documented[m[1]] = true
	}
	for f := range fields {
		if !documented[f] {
			problems = append(problems, fmt.Sprintf(
				"%s: Binary protocol layout tables never name frame field `%s` (wire.Field* defines it)",
				readmePath, f))
		}
	}
	for f := range documented {
		if !fields[f] {
			problems = append(problems, fmt.Sprintf(
				"%s: Binary protocol documents frame field `%s`, which internal/serve/wire does not define",
				readmePath, f))
		}
	}
	return problems
}

// markdownSection returns the body of a "## " section up to the next one
// ("" when the heading is absent).
func markdownSection(doc, heading string) string {
	idx := strings.Index(doc, "\n"+heading+"\n")
	if idx < 0 {
		return ""
	}
	body := doc[idx+1+len(heading):]
	if end := strings.Index(body, "\n## "); end >= 0 {
		body = body[:end]
	}
	return body
}

// definedFlags extracts the flag names a command's main.go registers.
func definedFlags(path string) (map[string]bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cannot read %s: %w", path, err)
	}
	flags := map[string]bool{}
	for _, m := range flagDef.FindAllStringSubmatch(string(raw), -1) {
		flags[m[1]] = true
	}
	return flags, nil
}

func sorted(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	// Stable enough for an error message without importing sort for a
	// custom §-aware order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
