// Command metricscheck validates a /metrics scrape from a streambrain
// process (DESIGN.md §11):
//
//	curl -s localhost:8080/metrics > scrape1.txt
//	# ...drive some load...
//	curl -s localhost:8080/metrics > scrape2.txt
//	go run ./tools/metricscheck -current scrape2.txt -prev scrape1.txt \
//	    -require streambrain_serve_requests_total,streambrain_serve_batch_size
//
// It checks that the exposition parses as Prometheus text format 0.0.4
// (obs.ParseText is strict: TYPE lines, label syntax, escapes, values),
// that every histogram family is internally consistent — ascending le
// bounds, cumulative bucket counts, a +Inf bucket equal to _count, a _sum
// sample — and, given -prev (an earlier scrape of the same process), that
// every counter and cumulative histogram sample is monotone non-decreasing.
// -require lists metric-name prefixes that must each match at least one
// sample, so the CI smoke test asserts the families it drove load through
// actually appear. Exit status 1 lists every violation.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"streambrain/internal/obs"
)

func main() {
	current := flag.String("current", "", "exposition file to validate (required)")
	prev := flag.String("prev", "", "earlier scrape of the same process; counters must not decrease against it")
	require := flag.String("require", "", "comma-separated metric-name prefixes that must each match a sample")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "metricscheck: -current is required")
		os.Exit(2)
	}

	cur, err := parseFile(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
		os.Exit(1)
	}
	var problems []string
	problems = append(problems, checkHistograms(cur)...)
	if *prev != "" {
		old, err := parseFile(*prev)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: %v\n", err)
			os.Exit(1)
		}
		problems = append(problems, checkMonotone(old, cur)...)
	}
	for _, prefix := range strings.Split(*require, ",") {
		if prefix = strings.TrimSpace(prefix); prefix == "" {
			continue
		}
		if !hasPrefix(cur, prefix) {
			problems = append(problems, fmt.Sprintf("required family %q has no samples", prefix))
		}
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "metricscheck: %s: %s\n", *current, p)
		}
		os.Exit(1)
	}
	fmt.Printf("metricscheck: %s ok (%d samples, %d typed families)\n",
		*current, len(cur.Samples), len(cur.Types))
}

func parseFile(path string) (*obs.Exposition, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	exp, err := obs.ParseText(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return exp, nil
}

func hasPrefix(exp *obs.Exposition, prefix string) bool {
	for _, s := range exp.Samples {
		if strings.HasPrefix(s.Name, prefix) {
			return true
		}
	}
	return false
}

// seriesKey identifies one series of a family: its sorted labels minus le.
func seriesKey(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// checkHistograms asserts every TYPE histogram family is self-consistent.
func checkHistograms(exp *obs.Exposition) []string {
	var problems []string
	for fam, typ := range exp.Types {
		if typ != "histogram" {
			continue
		}
		type bucket struct {
			le  float64
			cum float64
		}
		buckets := map[string][]bucket{}
		sums := map[string]bool{}
		counts := map[string]float64{}
		for _, s := range exp.Samples {
			key := seriesKey(s.Labels)
			switch s.Name {
			case fam + "_bucket":
				le, err := strconv.ParseFloat(s.Labels["le"], 64)
				if err != nil {
					problems = append(problems,
						fmt.Sprintf("%s: unparseable le %q", fam, s.Labels["le"]))
					continue
				}
				buckets[key] = append(buckets[key], bucket{le, s.Value})
			case fam + "_sum":
				sums[key] = true
			case fam + "_count":
				counts[key] = s.Value
			}
		}
		if len(buckets) == 0 {
			problems = append(problems, fmt.Sprintf("%s: TYPE histogram but no _bucket samples", fam))
			continue
		}
		for key, bs := range buckets {
			label := fam
			if key != "" {
				label = fam + "{" + key + "}"
			}
			// The exposition writer emits buckets in bound order; a scraper
			// may not rely on that, but our own writer must uphold it.
			for i := 1; i < len(bs); i++ {
				if bs[i].le <= bs[i-1].le {
					problems = append(problems,
						fmt.Sprintf("%s: le bounds not ascending (%g after %g)", label, bs[i].le, bs[i-1].le))
				}
				if bs[i].cum < bs[i-1].cum {
					problems = append(problems, fmt.Sprintf(
						"%s: bucket counts not cumulative (%g at le=%g after %g)",
						label, bs[i].cum, bs[i].le, bs[i-1].cum))
				}
			}
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, 1) {
				problems = append(problems, fmt.Sprintf("%s: missing le=\"+Inf\" bucket", label))
				continue
			}
			if count, ok := counts[key]; !ok {
				problems = append(problems, fmt.Sprintf("%s: missing _count sample", label))
			} else if count != last.cum {
				problems = append(problems, fmt.Sprintf(
					"%s: _count %g != +Inf bucket %g", label, count, last.cum))
			}
			if !sums[key] {
				problems = append(problems, fmt.Sprintf("%s: missing _sum sample", label))
			}
		}
	}
	return problems
}

// checkMonotone asserts every cumulative sample in old — counters, and the
// _bucket/_count/_sum of histograms — still exists in cur with a value that
// has not decreased. (Histogram _sum is monotone too: observations are
// non-negative durations/sizes.)
func checkMonotone(old, cur *obs.Exposition) []string {
	cumulative := func(exp *obs.Exposition, s obs.Sample) bool {
		if typ, ok := exp.Types[s.Name]; ok && typ == "counter" {
			return true
		}
		for _, suffix := range []string{"_bucket", "_count", "_sum"} {
			fam := strings.TrimSuffix(s.Name, suffix)
			if fam != s.Name && exp.Types[fam] == "histogram" {
				return true
			}
		}
		return false
	}
	var problems []string
	for _, s := range old.Samples {
		if !cumulative(old, s) {
			continue
		}
		now, ok := cur.Value(s.Name, s.Labels)
		if !ok {
			problems = append(problems,
				fmt.Sprintf("%s%s: present in -prev but missing now", s.Name, labelSuffix(s.Labels)))
			continue
		}
		if now < s.Value {
			problems = append(problems, fmt.Sprintf(
				"%s%s: counter went backwards (%g -> %g)", s.Name, labelSuffix(s.Labels), s.Value, now))
		}
	}
	return problems
}

func labelSuffix(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + seriesKey(labels) + "}"
}
