// Command benchgate is the CI perf-regression gate (DESIGN.md §8): it diffs
// a fresh BENCH_<suite>.json run against the committed perf/baseline.json
// and exits non-zero when any scenario's throughput drops more than 15% or
// its p99 latency grows more than 25% (tunable via flags). The report lists
// every scenario with its fractional deltas, so a failing run names exactly
// which hot path regressed and by how much.
//
//	go run ./cmd/streambrain-loadtest -suite smoke
//	go run ./tools/benchgate -baseline perf/baseline.json -current BENCH_smoke.json
//
// To re-baseline after an accepted perf change:
//
//	go run ./cmd/streambrain-loadtest -suite smoke -out perf/baseline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"streambrain/internal/perf"
)

func main() {
	baselinePath := flag.String("baseline", "perf/baseline.json", "committed baseline report")
	currentPath := flag.String("current", "BENCH_smoke.json", "fresh report to gate")
	th := DefaultThresholds()
	flag.Float64Var(&th.MaxThroughputDrop, "max-throughput-drop", th.MaxThroughputDrop,
		"fail when throughput drops more than this fraction")
	flag.Float64Var(&th.MaxP99Growth, "max-p99-growth", th.MaxP99Growth,
		"fail when p99 latency grows more than this fraction")
	flag.Float64Var(&th.P99FloorMs, "p99-floor-ms", th.P99FloorMs,
		"skip the p99 check when the baseline p99 is below this (timer noise)")
	flag.Float64Var(&th.MaxErrorRise, "max-error-rise", th.MaxErrorRise,
		"fail when the error rate exceeds the baseline's by more than this fraction")
	flag.Float64Var(&th.MaxAllocGrowth, "max-alloc-growth", th.MaxAllocGrowth,
		"fail when allocs/op grows more than this fraction (and past -alloc-floor)")
	flag.Float64Var(&th.AllocFloor, "alloc-floor", th.AllocFloor,
		"absolute allocs/op headroom below which alloc growth is not gated")
	minFleetScaling := flag.Float64("min-fleet-scaling", 1.7,
		"minimum rN/r1 closed-loop throughput ratio for fleet suites (0 disables)")
	minFusedSpeedup := flag.Float64("min-fused-speedup", 1.15,
		"minimum fused/parallel trainstep throughput ratio at f64 for kernel suites (0 disables)")
	minSparseSpeedup := flag.Float64("min-sparse-speedup", 1.5,
		"minimum sparse/dense trainstep throughput ratio at f64 and >=80% sparsity for sparse suites (0 disables)")
	advisory := flag.Bool("advisory", false,
		"report regressions but exit 0 — for bootstrapping a baseline on new hardware")
	strict := flag.Bool("strict", false,
		"fail on regressions even when the environment stamp differs from the baseline")
	flag.Parse()

	baseline, err := perf.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	current, err := perf.ReadFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if baseline.Suite != current.Suite {
		fmt.Fprintf(os.Stderr, "benchgate: baseline is suite %q but current is %q — not comparable\n",
			baseline.Suite, current.Suite)
		os.Exit(2)
	}
	// Different hardware shifts absolute rates without any code change, so
	// the gate self-hardens: on a stamp mismatch regressions are reported
	// but do not fail (unless -strict). Re-baselining on the gating
	// hardware makes the stamps match, and the gate hardens automatically.
	// Go is compared at minor-version granularity so a routine runner
	// patch bump (1.24.5 → 1.24.6) does not silently un-harden the gate.
	envMismatch := baseline.GOOS != current.GOOS || baseline.GOARCH != current.GOARCH ||
		baseline.CPUs != current.CPUs || goMinor(baseline.Go) != goMinor(current.Go)
	switch {
	case *advisory:
		fmt.Println("benchgate: GATE NOT ENFORCING (advisory mode)")
	case envMismatch && !*strict:
		fmt.Printf("benchgate: GATE NOT ENFORCING — environment differs from baseline "+
			"(%s/%s %s %d cpu vs %s/%s %s %d cpu); re-baseline on this hardware to harden "+
			"the gate, or pass -strict\n",
			current.GOOS, current.GOARCH, current.Go, current.CPUs,
			baseline.GOOS, baseline.GOARCH, baseline.Go, baseline.CPUs)
	default:
		fmt.Println("benchgate: gate ENFORCING (environment matches baseline)")
	}

	enforcing := !*advisory && (!envMismatch || *strict)
	verdicts, failed := Evaluate(baseline.Results, current.Results, th)
	fmt.Print(FormatReport(verdicts, failed, enforcing))
	// The fleet scaling floor is a within-run ratio (DESIGN.md §13), so it
	// needs no matching environment stamp: it enforces on every machine
	// unless running advisory or explicitly disabled.
	scalingFailed := false
	if *minFleetScaling > 0 {
		var lines []string
		lines, scalingFailed = FleetScaling(current.Results, *minFleetScaling)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	// The fused-kernel floor (DESIGN.md §14) is likewise a within-run ratio:
	// the whole-layer offload must beat the composed parallel path by the
	// configured factor on whatever machine runs the kernels suite.
	fusedFailed := false
	if *minFusedSpeedup > 0 {
		var lines []string
		lines, fusedFailed = FusedKernelFloor(current.Results, *minFusedSpeedup)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	// The sparse-kernel floor (DESIGN.md §15) is the third within-run ratio:
	// the block-sparse trainstep must beat its dense-masked twin by the
	// configured factor wherever the sparse suite runs.
	sparseFailed := false
	if *minSparseSpeedup > 0 {
		var lines []string
		lines, sparseFailed = SparseSpeedupFloor(current.Results, *minSparseSpeedup)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	if (failed && enforcing) || ((scalingFailed || fusedFailed || sparseFailed) && !*advisory) {
		os.Exit(1)
	}
}

// goMinor reduces a runtime version ("go1.24.5") to its minor series
// ("go1.24") for the environment-stamp comparison.
func goMinor(v string) string {
	if i := strings.Index(v, "."); i >= 0 {
		if j := strings.Index(v[i+1:], "."); j >= 0 {
			return v[:i+1+j]
		}
	}
	return v
}
