package main

import (
	"strings"
	"testing"

	"streambrain/internal/perf"
)

func res(name string, throughput, p99 float64) perf.Result {
	return perf.Result{Scenario: name, Kind: "kernel", Ops: 10,
		Throughput: throughput, P99Ms: p99}
}

func verdictFor(t *testing.T, verdicts []Verdict, name string) Verdict {
	t.Helper()
	for _, v := range verdicts {
		if v.Scenario == name {
			return v
		}
	}
	t.Fatalf("no verdict for %q in %+v", name, verdicts)
	return Verdict{}
}

func TestEvaluatePass(t *testing.T) {
	base := []perf.Result{res("a", 1000, 10), res("b", 50, 2)}
	// Improvements and small wobbles inside the thresholds all pass.
	cur := []perf.Result{res("a", 1200, 8), res("b", 45, 2.3)}
	verdicts, failed := Evaluate(base, cur, DefaultThresholds())
	if failed {
		t.Fatalf("unexpected failure: %+v", verdicts)
	}
	for _, v := range verdicts {
		if v.Status != StatusOK {
			t.Fatalf("verdict %+v, want ok", v)
		}
	}
}

func TestEvaluateThroughputRegression(t *testing.T) {
	base := []perf.Result{res("fast", 1000, 10), res("slowed", 1000, 10)}
	// "slowed" is the deliberately slowed scenario: 40% throughput drop.
	cur := []perf.Result{res("fast", 1000, 10), res("slowed", 600, 10)}
	verdicts, failed := Evaluate(base, cur, DefaultThresholds())
	if !failed {
		t.Fatal("40% throughput drop must fail the gate")
	}
	v := verdictFor(t, verdicts, "slowed")
	if v.Status != StatusRegression || !v.Failed() {
		t.Fatalf("verdict %+v, want regression", v)
	}
	if v.ThroughputDelta > -0.39 || v.ThroughputDelta < -0.41 {
		t.Fatalf("ThroughputDelta = %v, want ~-0.40", v.ThroughputDelta)
	}
	if verdictFor(t, verdicts, "fast").Status != StatusOK {
		t.Fatal("unregressed scenario must stay ok")
	}
	// The per-scenario report names the offender with both numbers.
	report := FormatReport(verdicts, failed, true)
	for _, want := range []string{"slowed", "regression", "1000.0 → 600.0", "FAIL"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	// A non-enforcing run must say so in the verdict line, so the log can
	// never read as a hard failure when the exit code is 0.
	if got := FormatReport(verdicts, failed, false); !strings.Contains(got, "FAIL (not enforced)") {
		t.Fatalf("non-enforcing report missing the qualifier:\n%s", got)
	}
	if got := FormatReport(nil, false, true); !strings.Contains(got, "PASS") {
		t.Fatalf("clean report missing PASS:\n%s", got)
	}
}

func TestEvaluateP99Regression(t *testing.T) {
	base := []perf.Result{res("svc", 1000, 10)}
	cur := []perf.Result{res("svc", 1000, 13)} // +30% p99, throughput flat
	verdicts, failed := Evaluate(base, cur, DefaultThresholds())
	if !failed {
		t.Fatal("30% p99 growth must fail the gate")
	}
	v := verdictFor(t, verdicts, "svc")
	if v.Status != StatusRegression || !strings.Contains(v.Detail, "p99") {
		t.Fatalf("verdict %+v, want p99 regression detail", v)
	}
}

func TestEvaluateBoundary(t *testing.T) {
	th := DefaultThresholds()
	// Exactly at the limits: a 15.0% drop and a 25.0% p99 growth pass; the
	// gate fails only strictly beyond them.
	base := []perf.Result{res("edge", 1000, 100)}
	cur := []perf.Result{res("edge", 850, 125)}
	if _, failed := Evaluate(base, cur, th); failed {
		t.Fatal("exactly-at-threshold must pass")
	}
	cur = []perf.Result{res("edge", 849, 100)}
	if _, failed := Evaluate(base, cur, th); !failed {
		t.Fatal("just beyond the throughput threshold must fail")
	}
	cur = []perf.Result{res("edge", 1000, 125.2)}
	if _, failed := Evaluate(base, cur, th); !failed {
		t.Fatal("just beyond the p99 threshold must fail")
	}
}

func TestEvaluateMissingAndNew(t *testing.T) {
	base := []perf.Result{res("kept", 100, 1), res("dropped", 100, 1)}
	cur := []perf.Result{res("kept", 100, 1), res("added", 100, 1)}
	verdicts, failed := Evaluate(base, cur, DefaultThresholds())
	if !failed {
		t.Fatal("a scenario missing from the current run must fail the gate")
	}
	if v := verdictFor(t, verdicts, "dropped"); v.Status != StatusMissing || !v.Failed() {
		t.Fatalf("verdict %+v, want missing", v)
	}
	if v := verdictFor(t, verdicts, "added"); v.Status != StatusNew || v.Failed() {
		t.Fatalf("verdict %+v, want new (non-failing)", v)
	}
}

func TestEvaluateZeroBaseline(t *testing.T) {
	// Degenerate baselines (zero throughput or p99) must not divide by
	// zero or fail spuriously — they are simply not comparable.
	base := []perf.Result{res("zero", 0, 0)}
	cur := []perf.Result{res("zero", 500, 3)}
	verdicts, failed := Evaluate(base, cur, DefaultThresholds())
	if failed || verdicts[0].Status != StatusOK {
		t.Fatalf("verdicts %+v, want ok", verdicts)
	}
}

func TestEvaluateErrorsRegression(t *testing.T) {
	// Failed requests return fast, so a broken path can look faster than
	// the baseline; the error-rate check must fail it anyway.
	base := []perf.Result{res("svc", 1000, 5)}
	cur := []perf.Result{res("svc", 4000, 1)}
	cur[0].Ops, cur[0].Errors = 400, 400 // every request failed
	verdicts, failed := Evaluate(base, cur, DefaultThresholds())
	if !failed {
		t.Fatal("a fully erroring run must fail the gate even when rates improved")
	}
	if v := verdictFor(t, verdicts, "svc"); v.Status != StatusRegression ||
		!strings.Contains(v.Detail, "error rate") {
		t.Fatalf("verdict %+v, want error-rate regression detail", v)
	}
	// One transient blip among 400 real HTTP requests (0.25% < the 1%
	// rise allowance) is noise, not a regression.
	cur[0].Errors = 1
	if _, failed := Evaluate(base, cur, DefaultThresholds()); failed {
		t.Fatal("a single transient error must not fail the gate")
	}
	// An error rate matching the baseline's is not a rise.
	base[0].Ops, base[0].Errors = 400, 40
	cur[0].Errors = 40
	if _, failed := Evaluate(base, cur, DefaultThresholds()); failed {
		t.Fatal("an unchanged error rate must not fail")
	}
}

func TestP99NoiseFloor(t *testing.T) {
	th := DefaultThresholds()
	// Baseline p99 of 6µs: relative p99 wobble at that scale is timer
	// noise, so a 50% "growth" must not fail — but the same growth above
	// the floor must.
	base := []perf.Result{res("tiny", 100000, 0.006)}
	cur := []perf.Result{res("tiny", 100000, 0.009)}
	if _, failed := Evaluate(base, cur, th); failed {
		t.Fatal("p99 below the noise floor must not be gated")
	}
	base = []perf.Result{res("big", 1000, 6)}
	cur = []perf.Result{res("big", 1000, 9)}
	if _, failed := Evaluate(base, cur, th); !failed {
		t.Fatal("the same growth above the floor must fail")
	}
}

func TestEvaluateAllocRegression(t *testing.T) {
	th := DefaultThresholds()
	withAllocs := func(name string, allocs float64) perf.Result {
		r := res(name, 1000, 10)
		r.AllocsPerOp = allocs
		return r
	}
	// A pooled zero-alloc baseline: jitter inside the absolute floor passes,
	// a broken pool (allocations per op reappearing) fails.
	base := []perf.Result{withAllocs("binary", 0)}
	cur := []perf.Result{withAllocs("binary", 20)}
	if _, failed := Evaluate(base, cur, th); failed {
		t.Fatal("alloc growth inside the absolute floor must not fail")
	}
	cur = []perf.Result{withAllocs("binary", 200)}
	verdicts, failed := Evaluate(base, cur, th)
	if !failed {
		t.Fatal("a zero-alloc baseline growing to 200 allocs/op must fail")
	}
	if v := verdictFor(t, verdicts, "binary"); v.Status != StatusRegression ||
		!strings.Contains(v.Detail, "allocs/op") {
		t.Fatalf("verdict %+v, want allocs/op regression detail", v)
	}
	// A chatty JSON baseline: wobble under +50% passes, past it (and past
	// the floor) fails.
	base = []perf.Result{withAllocs("json", 10000)}
	cur = []perf.Result{withAllocs("json", 14000)}
	if _, failed := Evaluate(base, cur, th); failed {
		t.Fatal("+40% alloc growth must pass a 50% gate")
	}
	cur = []perf.Result{withAllocs("json", 16000)}
	if _, failed := Evaluate(base, cur, th); !failed {
		t.Fatal("+60% alloc growth must fail a 50% gate")
	}
}

func TestCustomThresholds(t *testing.T) {
	th := Thresholds{MaxThroughputDrop: 0.01, MaxP99Growth: 0.01}
	base := []perf.Result{res("tight", 1000, 10)}
	cur := []perf.Result{res("tight", 950, 10)} // -5%: fails a 1% gate
	if _, failed := Evaluate(base, cur, th); !failed {
		t.Fatal("tightened thresholds must apply")
	}
}

func TestFusedKernelFloor(t *testing.T) {
	results := []perf.Result{
		res("trainstep/parallel/f64", 800, 1.3),
		res("trainstep/fused/f64", 1400, 0.8),
		res("trainstep/parallel/f32", 1100, 0.9),
		res("trainstep/fused/f32", 1120, 0.9),
		res("gemm/fused/256/f64", 300, 3.3), // non-trainstep: ignored
	}
	lines, failed := FusedKernelFloor(results, 1.15)
	if failed {
		t.Fatalf("1.75x ratio must clear a 1.15x floor: %v", lines)
	}
	if len(lines) != 2 {
		t.Fatalf("want f64 enforced line + f32 informational line, got %v", lines)
	}
	if !strings.Contains(lines[0], "f64") || !strings.Contains(lines[0], "ok") {
		t.Fatalf("f64 line %q, want enforced ok", lines[0])
	}
	if !strings.Contains(lines[1], "f32") || !strings.Contains(lines[1], "informational") {
		t.Fatalf("f32 line %q, want informational (shared Log32 kernels, no floor)", lines[1])
	}

	// Below the floor at f64 the gate fails; the f32 pair never does.
	results[1].Throughput = 850 // 1.06x
	results[3].Throughput = 500 // f32 fused far below parallel
	lines, failed = FusedKernelFloor(results, 1.15)
	if !failed {
		t.Fatalf("1.06x at f64 must fail a 1.15x floor: %v", lines)
	}
	if !strings.Contains(lines[0], "FAIL") {
		t.Fatalf("f64 line %q, want FAIL", lines[0])
	}
	if strings.Contains(lines[1], "FAIL") {
		t.Fatalf("f32 line %q must stay informational", lines[1])
	}

	// Suites without the trainstep pair (smoke, serve, fleet) are untouched.
	lines, failed = FusedKernelFloor([]perf.Result{res("predict/json", 100, 1)}, 1.15)
	if failed || len(lines) != 0 {
		t.Fatalf("non-kernel suite must be exempt: %v", lines)
	}
}

func TestSparseSpeedupFloor(t *testing.T) {
	results := []perf.Result{
		res("trainstep/dense/f64/s80", 1000, 1.0),
		res("trainstep/sparse/f64/s80", 1800, 0.6),
		res("trainstep/dense/f32/s80", 1400, 0.7),
		res("trainstep/sparse/f32/s80", 2200, 0.5),
		res("trainstep/dense/f64/s50", 900, 1.1),
		res("trainstep/sparse/f64/s50", 1200, 0.9),
		res("trainstep/parallel/f64", 800, 1.3), // kernels-suite name: ignored
	}
	lines, failed := SparseSpeedupFloor(results, 1.5)
	if failed {
		t.Fatalf("1.80x at f64/s80 must clear a 1.5x floor: %v", lines)
	}
	if len(lines) != 3 {
		t.Fatalf("want one line per twin pair, got %v", lines)
	}
	// Pairs report in sorted order: f32/s80, f64/s50, f64/s80. Only the
	// f64 ≥80%-sparsity pair is enforced.
	if !strings.Contains(lines[0], "f32/s80") || !strings.Contains(lines[0], "informational") {
		t.Fatalf("f32 line %q, want informational (cache-footprint confound, no floor)", lines[0])
	}
	if !strings.Contains(lines[1], "f64/s50") || !strings.Contains(lines[1], "informational") {
		t.Fatalf("s50 line %q, want informational (skip fraction too small to floor)", lines[1])
	}
	if !strings.Contains(lines[2], "f64/s80") || !strings.Contains(lines[2], "ok") {
		t.Fatalf("f64/s80 line %q, want enforced ok", lines[2])
	}

	// Below the floor at f64/s80 the gate fails; the informational pairs
	// never do.
	results[1].Throughput = 1200 // 1.20x
	results[5].Throughput = 500  // s50 sparse slower than dense
	lines, failed = SparseSpeedupFloor(results, 1.5)
	if !failed {
		t.Fatalf("1.20x at f64/s80 must fail a 1.5x floor: %v", lines)
	}
	if !strings.Contains(lines[2], "FAIL") {
		t.Fatalf("f64/s80 line %q, want FAIL", lines[2])
	}
	if strings.Contains(lines[1], "FAIL") {
		t.Fatalf("s50 line %q must stay informational", lines[1])
	}

	// A half pair (dense row without its sparse twin) reports nothing.
	lines, failed = SparseSpeedupFloor([]perf.Result{res("trainstep/dense/f64/s80", 1000, 1)}, 1.5)
	if failed || len(lines) != 0 {
		t.Fatalf("unpaired scenario must be exempt: %v", lines)
	}
}
