package main

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"streambrain/internal/perf"
)

// Thresholds are the per-scenario regression limits, expressed as
// fractional changes against the baseline. A scenario fails when its
// throughput drops by strictly more than MaxThroughputDrop, or its p99
// latency grows by strictly more than MaxP99Growth.
type Thresholds struct {
	MaxThroughputDrop float64 // default 0.15
	MaxP99Growth      float64 // default 0.25
	// P99FloorMs is the noise floor: when the baseline p99 sits below it,
	// the p99 check is skipped for that scenario. Sub-tenth-millisecond
	// percentiles are dominated by timer resolution and scheduler jitter,
	// and a 25% relative gate on microseconds fails on noise, not
	// regressions. Throughput is still gated.
	P99FloorMs float64 // default 0.1
	// MaxErrorRise is how much the per-scenario error rate (Errors/Ops)
	// may exceed the baseline's before failing. Not zero-tolerance: one
	// transient connection blip among hundreds of real HTTP requests is
	// noise, a broken path erroring on every request is not — and a broken
	// path can look "fast" (failures return quickly), so throughput alone
	// would pass it.
	MaxErrorRise float64 // default 0.01
	// MaxAllocGrowth and AllocFloor gate the allocs/op column: a scenario
	// fails when its current allocs/op exceeds BOTH the baseline by more
	// than MaxAllocGrowth (fractional) AND the baseline plus AllocFloor
	// (absolute). The double condition keeps pooled near-zero baselines
	// honest without turning GC-count jitter into failures: a 0-alloc
	// baseline only fails past the absolute floor, a 10k-alloc JSON path
	// only fails past +50%. This is the check that keeps the binary wire
	// hot path (DESIGN.md §12) allocation-free in CI.
	MaxAllocGrowth float64 // default 0.5
	AllocFloor     float64 // default 32
}

// DefaultThresholds are the gate limits DESIGN.md §8 documents.
func DefaultThresholds() Thresholds {
	return Thresholds{MaxThroughputDrop: 0.15, MaxP99Growth: 0.25, P99FloorMs: 0.1,
		MaxErrorRise: 0.01, MaxAllocGrowth: 0.5, AllocFloor: 32}
}

// Verdict status values.
const (
	StatusOK         = "ok"         // within thresholds
	StatusRegression = "regression" // beyond a threshold — fails the gate
	StatusMissing    = "missing"    // in baseline, absent from current — fails
	StatusNew        = "new"        // in current only — reported, never fails
)

// Verdict is one scenario's comparison outcome.
type Verdict struct {
	Scenario string
	Status   string
	// ThroughputDelta and P99Delta are fractional changes vs the baseline
	// (+ = faster / slower respectively); zero when not comparable.
	ThroughputDelta float64
	P99Delta        float64
	Detail          string
}

// Failed reports whether this verdict alone fails the gate.
func (v Verdict) Failed() bool {
	return v.Status == StatusRegression || v.Status == StatusMissing
}

// Evaluate compares a fresh run against the baseline, scenario by scenario
// (matched by name). Baseline order is preserved; current-only scenarios
// are appended as informational "new" verdicts.
func Evaluate(baseline, current []perf.Result, th Thresholds) (verdicts []Verdict, failed bool) {
	cur := make(map[string]perf.Result, len(current))
	for _, res := range current {
		cur[res.Scenario] = res
	}
	for _, base := range baseline {
		now, ok := cur[base.Scenario]
		delete(cur, base.Scenario)
		if !ok {
			verdicts = append(verdicts, Verdict{
				Scenario: base.Scenario,
				Status:   StatusMissing,
				Detail:   "scenario present in baseline but absent from the current run",
			})
			failed = true
			continue
		}
		v := compare(base, now, th)
		if v.Failed() {
			failed = true
		}
		verdicts = append(verdicts, v)
	}
	extra := make([]string, 0, len(cur))
	for name := range cur {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		verdicts = append(verdicts, Verdict{
			Scenario: name,
			Status:   StatusNew,
			Detail:   "scenario not in baseline; re-baseline to start gating it",
		})
	}
	return verdicts, failed
}

// compare applies the thresholds to one baseline/current pair.
func compare(base, now perf.Result, th Thresholds) Verdict {
	v := Verdict{Scenario: base.Scenario, Status: StatusOK}
	var problems []string
	// Errors gate first: see Thresholds.MaxErrorRise.
	if now.Ops > 0 {
		rate := float64(now.Errors) / float64(now.Ops)
		baseRate := 0.0
		if base.Ops > 0 {
			baseRate = float64(base.Errors) / float64(base.Ops)
		}
		if rate > baseRate+th.MaxErrorRise {
			problems = append(problems, fmt.Sprintf(
				"error rate %.1f%% → %.1f%% (%d of %d ops, limit +%.0f%%)",
				100*baseRate, 100*rate, now.Errors, now.Ops, 100*th.MaxErrorRise))
		}
	}
	if base.Throughput > 0 {
		v.ThroughputDelta = (now.Throughput - base.Throughput) / base.Throughput
		if -v.ThroughputDelta > th.MaxThroughputDrop {
			problems = append(problems, fmt.Sprintf(
				"throughput %.1f → %.1f (%+.1f%%, limit -%.0f%%)",
				base.Throughput, now.Throughput, 100*v.ThroughputDelta, 100*th.MaxThroughputDrop))
		}
	}
	if base.P99Ms > 0 {
		v.P99Delta = (now.P99Ms - base.P99Ms) / base.P99Ms
		if base.P99Ms >= th.P99FloorMs && v.P99Delta > th.MaxP99Growth {
			problems = append(problems, fmt.Sprintf(
				"p99 %.3fms → %.3fms (%+.1f%%, limit +%.0f%%)",
				base.P99Ms, now.P99Ms, 100*v.P99Delta, 100*th.MaxP99Growth))
		}
	}
	// Allocation gate: see Thresholds.MaxAllocGrowth. Both the relative and
	// the absolute headroom must be exceeded, so zero-alloc pooled baselines
	// and chatty JSON baselines are each gated at the scale that matters.
	if now.AllocsPerOp > base.AllocsPerOp*(1+th.MaxAllocGrowth) &&
		now.AllocsPerOp > base.AllocsPerOp+th.AllocFloor {
		problems = append(problems, fmt.Sprintf(
			"allocs/op %.1f → %.1f (limit max(+%.0f%%, +%.0f abs))",
			base.AllocsPerOp, now.AllocsPerOp, 100*th.MaxAllocGrowth, th.AllocFloor))
	}
	if len(problems) > 0 {
		v.Status = StatusRegression
		v.Detail = strings.Join(problems, "; ")
	}
	return v
}

// FormatReport renders the per-scenario verdict table plus a one-line
// summary — the readable half of the gate's contract. enforcing reports
// whether a failure actually fails the run, so the verdict line can never
// contradict the exit code.
func FormatReport(verdicts []Verdict, failed, enforcing bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-12s %12s %10s  %s\n",
		"scenario", "status", "throughput", "p99", "detail")
	fmt.Fprintln(&b, strings.Repeat("-", 88))
	for _, v := range verdicts {
		thr, p99 := "-", "-"
		if v.Status == StatusOK || v.Status == StatusRegression {
			thr = fmt.Sprintf("%+.1f%%", 100*v.ThroughputDelta)
			p99 = fmt.Sprintf("%+.1f%%", 100*v.P99Delta)
		}
		fmt.Fprintf(&b, "%-24s %-12s %12s %10s  %s\n", v.Scenario, v.Status, thr, p99, v.Detail)
	}
	switch {
	case failed && enforcing:
		fmt.Fprintln(&b, "benchgate: FAIL — regression against perf baseline")
	case failed:
		fmt.Fprintln(&b, "benchgate: FAIL (not enforced) — regression reported, gate not armed on this environment")
	default:
		fmt.Fprintln(&b, "benchgate: PASS")
	}
	return b.String()
}

// fusedStepName matches a kernels-suite trainstep scenario:
// trainstep/<backend>/<precision>.
var fusedStepName = regexp.MustCompile(`^trainstep/(fused|parallel)/(f32|f64)$`)

// FusedKernelFloor checks the whole-layer offload claim inside ONE report
// (DESIGN.md §14): the fused backend's trainstep throughput must reach at
// least minRatio× the composed parallel backend's at float64 — the precision
// the fused LayerStep carries the learning state at, and where its blocked
// passes and vectorized log are the whole difference between the backends.
// The float32 pair is reported informationally only: both of its sides
// already share the fast Log32 kernels, so its ratio measures cache locality
// alone and a hard floor on it would gate machine noise. Like FleetScaling,
// a within-run ratio is its own baseline, so callers enforce it even when
// the environment stamp disarms the baseline diff.
func FusedKernelFloor(results []perf.Result, minRatio float64) (lines []string, failed bool) {
	rate := map[string]float64{}
	for _, r := range results {
		if m := fusedStepName.FindStringSubmatch(r.Scenario); m != nil {
			rate[m[1]+"/"+m[2]] = r.Throughput
		}
	}
	for _, prec := range []string{"f64", "f32"} {
		fused, par := rate["fused/"+prec], rate["parallel/"+prec]
		if fused <= 0 || par <= 0 {
			continue
		}
		ratio := fused / par
		switch {
		case prec != "f64":
			lines = append(lines, fmt.Sprintf(
				"benchgate: fused trainstep %s: fused/parallel = %.2fx (informational)",
				prec, ratio))
		case ratio < minRatio:
			failed = true
			lines = append(lines, fmt.Sprintf(
				"benchgate: fused trainstep %s: fused/parallel = %.2fx (floor %.2fx) FAIL",
				prec, ratio, minRatio))
		default:
			lines = append(lines, fmt.Sprintf(
				"benchgate: fused trainstep %s: fused/parallel = %.2fx (floor %.2fx) ok",
				prec, ratio, minRatio))
		}
	}
	return lines, failed
}

// sparseStepName matches a sparse-suite trainstep scenario:
// trainstep/<regime>/<precision>/s<sparsity%>.
var sparseStepName = regexp.MustCompile(`^trainstep/(sparse|dense)/(f32|f64)/s([0-9]+)$`)

// SparseSpeedupFloor checks the structural-sparsity claim inside ONE report
// (DESIGN.md §15): the block-sparse trainstep must reach at least minRatio×
// its dense-masked twin's throughput. The floor is enforced for float64 pairs
// at ≥80% sparsity — the regime the prune/regrow schedule targets and where
// the skipped block fraction is large enough to carry it. Lower-sparsity and
// float32 pairs are reported informationally: at 50% sparsity the sparse path
// skips too little for a hard floor, and the f32 pair's ratio is confounded by
// cache footprint. Like FusedKernelFloor, a within-run ratio is its own
// baseline, so callers enforce it even when the environment stamp disarms the
// baseline diff.
func SparseSpeedupFloor(results []perf.Result, minRatio float64) (lines []string, failed bool) {
	rate := map[string]float64{}
	var pairs []string // "<precision>/s<sparsity%>", discovery order
	for _, r := range results {
		if m := sparseStepName.FindStringSubmatch(r.Scenario); m != nil {
			pair := m[2] + "/s" + m[3]
			if _, ok := rate["sparse/"+pair]; !ok {
				if _, ok := rate["dense/"+pair]; !ok {
					pairs = append(pairs, pair)
				}
			}
			rate[m[1]+"/"+pair] = r.Throughput
		}
	}
	sort.Strings(pairs)
	for _, pair := range pairs {
		sparse, dense := rate["sparse/"+pair], rate["dense/"+pair]
		if sparse <= 0 || dense <= 0 {
			continue
		}
		ratio := sparse / dense
		pct, _ := strconv.Atoi(pair[strings.Index(pair, "/s")+2:])
		switch {
		case !strings.HasPrefix(pair, "f64/") || pct < 80:
			lines = append(lines, fmt.Sprintf(
				"benchgate: sparse trainstep %s: sparse/dense = %.2fx (informational)",
				pair, ratio))
		case ratio < minRatio:
			failed = true
			lines = append(lines, fmt.Sprintf(
				"benchgate: sparse trainstep %s: sparse/dense = %.2fx (floor %.2fx) FAIL",
				pair, ratio, minRatio))
		default:
			lines = append(lines, fmt.Sprintf(
				"benchgate: sparse trainstep %s: sparse/dense = %.2fx (floor %.2fx) ok",
				pair, ratio, minRatio))
		}
	}
	return lines, failed
}

// fleetClosedName splits a fleet closed-loop scenario name into its load
// shape and replica count ("fleet/binary/closed/r2" → "fleet/binary/closed",
// 2). Kill-one scenarios are excluded: their throughput includes a replica
// death.
var fleetClosedName = regexp.MustCompile(`^(.+)/r([0-9]+)$`)

// FleetScaling checks the fan-out tier's horizontal scaling inside ONE
// report: for every fleet closed-loop scenario family with a single-replica
// member, each multi-replica member must reach at least minRatio× the
// single-replica throughput (DESIGN.md §13's 2-replica bar, applied as a
// floor to larger fleets too). A throughput ratio within one run is its own
// baseline — it holds or fails independent of the machine — so callers
// enforce it even when the environment stamp disarms the baseline diff.
func FleetScaling(results []perf.Result, minRatio float64) (lines []string, failed bool) {
	type member struct {
		replicas   int
		throughput float64
	}
	families := map[string][]member{}
	for _, r := range results {
		if r.Kind != string(perf.KindFleetClosed) || strings.Contains(r.Scenario, "killone") {
			continue
		}
		m := fleetClosedName.FindStringSubmatch(r.Scenario)
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil || n < 1 {
			continue
		}
		families[m[1]] = append(families[m[1]], member{n, r.Throughput})
	}
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var base float64
		for _, m := range families[name] {
			if m.replicas == 1 {
				base = m.throughput
			}
		}
		if base <= 0 {
			continue // no single-replica anchor in this family
		}
		members := families[name]
		sort.Slice(members, func(i, j int) bool { return members[i].replicas < members[j].replicas })
		for _, m := range members {
			if m.replicas == 1 {
				continue
			}
			ratio := m.throughput / base
			status := "ok"
			if ratio < minRatio {
				status = "FAIL"
				failed = true
			}
			lines = append(lines, fmt.Sprintf(
				"benchgate: fleet scaling %s: r%d/r1 = %.2fx (floor %.2fx) %s",
				name, m.replicas, ratio, minRatio, status))
		}
	}
	return lines, failed
}
