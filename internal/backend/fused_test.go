package backend

import (
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/tensor"
)

// layerState is one complete fused-step operand set, generic over precision,
// buildable from a seed so fused and composed runs start bit-identical.
type layerState[T tensor.Float] struct {
	idx  [][]int32
	act  *tensor.Dense[T]
	ci   []T
	cj   []T
	cij  *tensor.Dense[T]
	w    *tensor.Dense[T]
	bias []T
	mask []bool
	geom LayerGeom
	hyp  LayerHyper[T]
}

func newLayerState[T tensor.Float](rng *rand.Rand, batch int, masked, noisy bool) *layerState[T] {
	geom := LayerGeom{Fi: 6, Mi: 4, H: 3, M: 5}
	in, units := geom.Inputs(), geom.Units()
	s := &layerState[T]{
		act:  tensor.NewDense[T](batch, units),
		ci:   make([]T, in),
		cj:   make([]T, units),
		cij:  tensor.NewDense[T](in, units),
		w:    tensor.NewDense[T](in, units),
		bias: make([]T, units),
		geom: geom,
		hyp: LayerHyper[T]{
			Taupdt:       0.03,
			Taubdt:       0.02,
			PMinFraction: 0.5, // pmin = 0.1: some units below, some above
			Temperature:  0.8,
			Eps:          1e-9,
			Kbi:          make([]T, units),
		},
	}
	s.idx = make([][]int32, batch)
	for b := range s.idx {
		for f := 0; f < geom.Fi; f++ {
			s.idx[b] = append(s.idx[b], int32(f*geom.Mi+rng.Intn(geom.Mi)))
		}
	}
	for i := range s.ci {
		s.ci[i] = T(rng.Float64()*0.9 + 0.05)
	}
	for j := range s.cj {
		s.cj[j] = T(rng.Float64()*0.9 + 0.05)
		s.hyp.Kbi[j] = T(1 + 0.2*rng.Float64())
		s.bias[j] = T(rng.NormFloat64() * 0.1)
	}
	for i := range s.cij.Data {
		s.cij.Data[i] = T(rng.Float64()*0.9 + 0.05)
	}
	for i := range s.w.Data {
		s.w.Data[i] = T(rng.NormFloat64())
	}
	if masked {
		s.mask = make([]bool, geom.Fi*geom.H)
		for i := range s.mask {
			s.mask[i] = rng.Intn(2) == 0
		}
	}
	if noisy {
		s.hyp.Noise = make([]T, batch*units)
		for i := range s.hyp.Noise {
			s.hyp.Noise[i] = T(rng.NormFloat64() * 0.05)
		}
	}
	return s
}

func (s *layerState[T]) clone() *layerState[T] {
	c := *s
	c.act = s.act.Clone()
	c.ci = append([]T(nil), s.ci...)
	c.cj = append([]T(nil), s.cj...)
	c.cij = s.cij.Clone()
	c.w = s.w.Clone()
	c.bias = append([]T(nil), s.bias...)
	c.hyp.Kbi = append([]T(nil), s.hyp.Kbi...)
	return &c
}

func (s *layerState[T]) step(st LayerStepper[T]) {
	st.LayerStep(s.idx, s.act, s.ci, s.cj, s.cij, s.w, s.bias, s.mask, s.geom, s.hyp)
}

// composedStep drives the same batch update through the composed kernel
// sequence, in exactly the order core's TrainBatch issues it. The
// homeostasis reference is written independently (float64 throughout) so the
// comparison does not share code with the fused implementation.
func composedStep[T tensor.Float](be Kernels[T], s *layerState[T]) {
	t := s.hyp.Taupdt
	units := s.geom.Units()
	be.OneHotMatMul(s.act, s.idx, s.w)
	be.AddBias(s.act, s.bias)
	if s.hyp.Noise != nil {
		for i, v := range s.hyp.Noise {
			s.act.Data[i] += v
		}
	}
	be.SoftmaxGroups(s.act, s.geom.H, s.geom.M, s.hyp.Temperature)
	be.OneHotMeanLerp(s.ci, s.idx, t)
	mean := make([]T, units)
	tensor.ColMeans(mean, s.act)
	be.Lerp(s.cj, mean, t)
	be.OneHotOuterLerp(s.cij, s.idx, s.act, t)
	fair := math.Log(1 / float64(s.geom.M))
	pmin := s.hyp.PMinFraction / float64(s.geom.M)
	for j, v := range s.cj {
		target := 1.0
		if float64(v) < pmin {
			target = fair / math.Log(math.Max(float64(v), s.hyp.Eps))
		}
		s.hyp.Kbi[j] = T((1-s.hyp.Taubdt)*float64(s.hyp.Kbi[j]) + s.hyp.Taubdt*target)
	}
	be.UpdateWeights(s.w, s.ci, s.cj, s.cij, s.mask, s.geom.Fi, s.geom.Mi, s.geom.H, s.geom.M, s.hyp.Eps)
	be.UpdateBias(s.bias, s.hyp.Kbi, s.cj, s.hyp.Eps)
}

func maxSliceDiff[T tensor.Float](a, b []T) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(float64(a[i]) - float64(b[i])); v > d {
			d = v
		}
	}
	return d
}

func (s *layerState[T]) maxDiff(o *layerState[T]) float64 {
	d := maxSliceDiff(s.act.Data, o.act.Data)
	d = math.Max(d, maxSliceDiff(s.ci, o.ci))
	d = math.Max(d, maxSliceDiff(s.cj, o.cj))
	d = math.Max(d, maxSliceDiff(s.cij.Data, o.cij.Data))
	d = math.Max(d, maxSliceDiff(s.w.Data, o.w.Data))
	d = math.Max(d, maxSliceDiff(s.bias, o.bias))
	return math.Max(d, maxSliceDiff(s.hyp.Kbi, o.hyp.Kbi))
}

// TestFusedMatchesComposed is the fused ≡ composed property test: one
// LayerStep must equal the composed kernel sequence over every batch shape,
// masked and unmasked, noisy and noise-free, at both precisions and at both
// serial and parallel worker counts.
func TestFusedMatchesComposed(t *testing.T) {
	seeds := []int64{1, 2, 3}
	run := func(t *testing.T, check func(t *testing.T, seed int64, batch, workers int, masked, noisy bool)) {
		for _, seed := range seeds {
			for _, batch := range []int{1, 7, 64} {
				for _, workers := range []int{1, 4} {
					for _, masked := range []bool{false, true} {
						for _, noisy := range []bool{false, true} {
							check(t, seed, batch, workers, masked, noisy)
						}
					}
				}
			}
		}
	}
	t.Run("f64", func(t *testing.T) {
		run(t, func(t *testing.T, seed int64, batch, workers int, masked, noisy bool) {
			fusedS := newLayerState[float64](rand.New(rand.NewSource(seed)), batch, masked, noisy)
			composedS := fusedS.clone()
			fusedS.step(NewFused(workers))
			composedStep[float64](MustNew("naive", 0), composedS)
			if d := fusedS.maxDiff(composedS); d > 1e-12 {
				t.Fatalf("seed %d batch %d workers %d masked %v noisy %v: fused diverges by %g",
					seed, batch, workers, masked, noisy, d)
			}
		})
	})
	t.Run("f32", func(t *testing.T) {
		run(t, func(t *testing.T, seed int64, batch, workers int, masked, noisy bool) {
			fusedS := newLayerState[float32](rand.New(rand.NewSource(seed)), batch, masked, noisy)
			composedS := fusedS.clone()
			fusedS.step(NewFusedOf[float32](workers))
			composedStep[float32](MustNew32("naive", 0), composedS)
			if d := fusedS.maxDiff(composedS); d > 1e-5 {
				t.Fatalf("seed %d batch %d workers %d masked %v noisy %v: fused diverges by %g",
					seed, batch, workers, masked, noisy, d)
			}
		})
	})
}

// TestLayerStepperConformance runs every registered backend that advertises
// the whole-layer offload capability against its own composed kernel
// sequence — the capability contract: LayerStep computes the same function
// the backend's composed kernels do (for fpgasim that includes the posit
// parameter quantization, which both paths apply identically).
func TestLayerStepperConformance(t *testing.T) {
	for _, name := range Names() {
		be := MustNew(name, 3)
		st, ok := be.(LayerStepper[float64])
		if !ok {
			continue
		}
		t.Run(name+"/f64", func(t *testing.T) {
			fusedS := newLayerState[float64](rand.New(rand.NewSource(17)), 9, true, false)
			composedS := fusedS.clone()
			fusedS.step(st)
			composedStep[float64](MustNew(name, 3), composedS)
			if d := fusedS.maxDiff(composedS); d > 1e-12 {
				t.Fatalf("%s LayerStep diverges from its composed sequence by %g", name, d)
			}
		})
	}
	for _, name := range Names32() {
		be := MustNew32(name, 3)
		st, ok := be.(LayerStepper[float32])
		if !ok {
			continue
		}
		t.Run(name+"/f32", func(t *testing.T) {
			fusedS := newLayerState[float32](rand.New(rand.NewSource(17)), 9, true, false)
			composedS := fusedS.clone()
			fusedS.step(st)
			composedStep[float32](MustNew32(name, 3), composedS)
			if d := fusedS.maxDiff(composedS); d > 1e-5 {
				t.Fatalf("%s LayerStep diverges from its composed sequence by %g", name, d)
			}
		})
	}
}

// TestFusedBackendsImplementLayerStepper pins which registered backends
// advertise the capability at each precision.
func TestFusedBackendsImplementLayerStepper(t *testing.T) {
	want64 := map[string]bool{"fused": true, "gpusim": true, "fpgasim": true}
	for _, name := range Names() {
		_, ok := MustNew(name, 1).(LayerStepper[float64])
		if ok != want64[name] {
			t.Errorf("%s LayerStepper[float64] = %v, want %v", name, ok, want64[name])
		}
	}
	want32 := map[string]bool{"fused": true, "gpusim": true}
	for _, name := range Names32() {
		_, ok := MustNew32(name, 1).(LayerStepper[float32])
		if ok != want32[name] {
			t.Errorf("%s LayerStepper[float32] = %v, want %v", name, ok, want32[name])
		}
	}
}

// TestFusedLayerStepShapeChecks: a malformed operand set must panic, not
// corrupt memory.
func TestFusedLayerStepShapeChecks(t *testing.T) {
	s := newLayerState[float64](rand.New(rand.NewSource(1)), 4, false, false)
	s.act = tensor.NewDense[float64](3, s.geom.Units()) // batch mismatch
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on act shape mismatch")
		}
	}()
	s.step(NewFused(1))
}
