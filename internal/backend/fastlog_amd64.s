// AVX2 kernel for the fused weight-row log pass. Four log lanes per
// iteration, evaluated with separate VMULPD/VADDPD in exactly the scalar
// fastLog association order — the amd64 compiler never contracts float
// expressions into FMA, so lane arithmetic is bit-identical to the pure-Go
// path (and to math.Log; fastlog_test.go asserts both). A lane whose
// max(crow[j], eps2) is not a positive normal float makes the kernel return
// early; the Go wrapper finishes the row through the scalar fallback.
//
//go:build !purego

#include "textflag.h"

// fdlibm log constants plus the bit-manipulation masks of the branchless
// frexp (see fastlog.go for the derivation).
DATA flc<>+0x00(SB)/8, $0x000FFFFFFFFFFFFF // mantissa mask = 2^52-1
DATA flc<>+0x08(SB)/8, $0x7FF0000000000000 // inf/NaN exponent bits
DATA flc<>+0x10(SB)/8, $0x0006A09E667F3BCD // mantissa of sqrt(2)/2
DATA flc<>+0x18(SB)/8, $0x3FE0000000000000 // exponent field 0x3fe (also 0.5)
DATA flc<>+0x20(SB)/8, $0x0010000000000000 // exponent field increment 1<<52
DATA flc<>+0x28(SB)/8, $0x0000000000000035 // 53: k+1075 = e_biased+adj+53
DATA flc<>+0x30(SB)/8, $0x4330000000000000 // 2^52 as a double (int->fp magic)
DATA flc<>+0x38(SB)/8, $0x4330000000000433 // 2^52 + 1075 as a double
DATA flc<>+0x40(SB)/8, $0x3FF0000000000000 // 1.0
DATA flc<>+0x48(SB)/8, $0x4000000000000000 // 2.0
DATA flc<>+0x50(SB)/8, $0x3FE62E42FEE00000 // ln2Hi
DATA flc<>+0x58(SB)/8, $0x3DEA39EF35793C76 // ln2Lo
DATA flc<>+0x60(SB)/8, $0x3FE5555555555593 // L1
DATA flc<>+0x68(SB)/8, $0x3FD999999997FA04 // L2
DATA flc<>+0x70(SB)/8, $0x3FD2492494229359 // L3
DATA flc<>+0x78(SB)/8, $0x3FCC71C51D8E78AF // L4
DATA flc<>+0x80(SB)/8, $0x3FC7466496CB03DE // L5
DATA flc<>+0x88(SB)/8, $0x3FC39A09D078C69F // L6
DATA flc<>+0x90(SB)/8, $0x3FC2F112DF3E5244 // L7
GLOBL flc<>(SB), RODATA, $152

// func weightRowLogAVX(wrow, crow, logcj []float64, logci, eps2 float64) int
// wrow[j] = log(max(crow[j], eps2)) - logci - logcj[j] for j in [0, ret),
// ret a multiple of 4. Requires len(crow), len(logcj) >= len(wrow).
TEXT ·weightRowLogAVX(SB), NOSPLIT, $0-96
	MOVQ wrow_base+0(FP), DI
	MOVQ wrow_len+8(FP), CX
	MOVQ crow_base+24(FP), SI
	MOVQ logcj_base+48(FP), DX
	VBROADCASTSD logci+72(FP), Y14
	VBROADCASTSD eps2+80(FP), Y13
	VBROADCASTSD flc<>+0x00(SB), Y15 // mantissa mask
	VBROADCASTSD flc<>+0x08(SB), Y12 // inf bits
	VBROADCASTSD flc<>+0x10(SB), Y11 // sqrt(2)/2 mantissa
	ANDQ $-4, CX
	XORQ AX, AX

wrloop:
	CMPQ AX, CX
	JGE  wrdone
	VMOVUPD (SI)(AX*8), Y0
	// m = max(crow, eps2): MAXPD(eps2, crow) keeps NaN lanes NaN, matching
	// Go's max builtin on these operands.
	VMAXPD Y0, Y13, Y0

	// Fast-path guard: every lane's bits must lie in [2^52, 0x7FF<<52) as
	// signed integers — positive normal finite. Otherwise stop here and let
	// the scalar fallback (which defers to math.Log) finish the row.
	VPCMPGTQ Y15, Y0, Y1 // bits > 2^52-1
	VPCMPGTQ Y0, Y12, Y2 // infBits > bits
	VPAND    Y2, Y1, Y1
	VMOVMSKPD Y1, BX
	CMPL     BX, $0xf
	JNE      wrdone

	// Branchless frexp: mant, biased exponent, and the "below sqrt(2)/2"
	// adjustment mask (all-ones = adjust, i.e. -1 as int64).
	VPAND  Y15, Y0, Y1   // mant
	VPSRLQ $52, Y0, Y2   // e_biased (sign bit is clear)
	VPCMPGTQ Y1, Y11, Y3 // adjmask = mant < sqrtHalfMant

	// k as a double via the 2^52 magic-number trick:
	// k+1075 = e_biased + adjmask + 53 is a small positive integer.
	VPADDQ Y3, Y2, Y4
	VBROADCASTSD flc<>+0x28(SB), Y5
	VPADDQ Y5, Y4, Y4
	VBROADCASTSD flc<>+0x30(SB), Y5
	VPOR   Y5, Y4, Y4
	VBROADCASTSD flc<>+0x38(SB), Y5
	VSUBPD Y5, Y4, Y4 // Y4 = k

	// f = frac - 1 with frac in [sqrt(2)/2, sqrt(2)): mantissa with exponent
	// 0x3fe, bumped to 0x3ff where the adjust mask fires.
	VBROADCASTSD flc<>+0x18(SB), Y5
	VPOR   Y5, Y1, Y6
	VBROADCASTSD flc<>+0x20(SB), Y5
	VPAND  Y3, Y5, Y5
	VPADDQ Y5, Y6, Y6
	VBROADCASTSD flc<>+0x40(SB), Y5
	VSUBPD Y5, Y6, Y6 // Y6 = f

	// s = f/(2+f), s2, s4
	VBROADCASTSD flc<>+0x48(SB), Y5
	VADDPD Y6, Y5, Y7
	VDIVPD Y7, Y6, Y7 // Y7 = s
	VMULPD Y7, Y7, Y8 // s2
	VMULPD Y8, Y8, Y9 // s4

	// t1 = s2*(L1 + s4*(L3 + s4*(L5 + s4*L7)))
	VBROADCASTSD flc<>+0x90(SB), Y5
	VMULPD Y9, Y5, Y10
	VBROADCASTSD flc<>+0x80(SB), Y5
	VADDPD Y5, Y10, Y10
	VMULPD Y9, Y10, Y10
	VBROADCASTSD flc<>+0x70(SB), Y5
	VADDPD Y5, Y10, Y10
	VMULPD Y9, Y10, Y10
	VBROADCASTSD flc<>+0x60(SB), Y5
	VADDPD Y5, Y10, Y10
	VMULPD Y8, Y10, Y10

	// t2 = s4*(L2 + s4*(L4 + s4*L6)); R = t1 + t2 (reusing Y2)
	VBROADCASTSD flc<>+0x88(SB), Y5
	VMULPD Y9, Y5, Y2
	VBROADCASTSD flc<>+0x78(SB), Y5
	VADDPD Y5, Y2, Y2
	VMULPD Y9, Y2, Y2
	VBROADCASTSD flc<>+0x68(SB), Y5
	VADDPD Y5, Y2, Y2
	VMULPD Y9, Y2, Y2
	VADDPD Y2, Y10, Y10 // R

	// hfsq = (0.5*f)*f
	VBROADCASTSD flc<>+0x18(SB), Y5
	VMULPD Y6, Y5, Y2
	VMULPD Y6, Y2, Y2

	// log = k*ln2Hi - ((hfsq - (s*(hfsq+R) + k*ln2Lo)) - f)
	VADDPD Y10, Y2, Y10 // hfsq + R
	VMULPD Y7, Y10, Y10 // s*(hfsq+R)
	VBROADCASTSD flc<>+0x58(SB), Y5
	VMULPD Y4, Y5, Y3   // k*ln2Lo
	VADDPD Y3, Y10, Y10
	VSUBPD Y10, Y2, Y2  // hfsq - (...)
	VSUBPD Y6, Y2, Y2   // ... - f
	VBROADCASTSD flc<>+0x50(SB), Y5
	VMULPD Y4, Y5, Y4   // k*ln2Hi
	VSUBPD Y2, Y4, Y4   // log

	// wrow[j] = log - logci - logcj[j]
	VSUBPD Y14, Y4, Y4
	VMOVUPD (DX)(AX*8), Y5
	VSUBPD Y5, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
	JMP  wrloop

wrdone:
	MOVQ AX, ret+88(FP)
	VZEROUPPER
	RET
