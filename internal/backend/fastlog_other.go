//go:build !amd64 || purego

package backend

const fusedLogSIMD = false

func weightRowLogAVX(wrow, crow, logcj []float64, logci, eps2 float64) int { return 0 }
