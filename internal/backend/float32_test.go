package backend

import (
	"math/rand"
	"testing"

	"streambrain/internal/tensor"
)

// The float32 kernel sets are conformance-checked against the float64 naive
// reference exactly the way the float64 backends are checked against each
// other: same inputs (cast down), results must agree within float32
// accumulation error.

// f32Fixture builds matched f64/f32 inputs for one trace-update step.
type f32Fixture struct {
	idx      [][]int32
	act64    *tensor.Matrix
	act32    *tensor.Matrix32
	cij64    *tensor.Matrix
	cij32    *tensor.Matrix32
	ci64     []float64
	ci32     []float32
	cj64     []float64
	cj32     []float32
	fi, mi   int
	h, m     int
	in, outs int
}

func newF32Fixture(rng *rand.Rand) *f32Fixture {
	const (
		fi, mi = 7, 10
		h, m   = 3, 17 // odd unit count: exercises SIMD tails
		batch  = 9
	)
	f := &f32Fixture{fi: fi, mi: mi, h: h, m: m, in: fi * mi, outs: h * m}
	f.act64 = tensor.NewMatrix(batch, f.outs)
	for i := range f.act64.Data {
		f.act64.Data[i] = rng.Float64()
	}
	f.act32 = tensor.Cast[float32](f.act64)
	f.cij64 = tensor.NewMatrix(f.in, f.outs)
	for i := range f.cij64.Data {
		f.cij64.Data[i] = rng.Float64()*0.1 + 0.001
	}
	f.cij32 = tensor.Cast[float32](f.cij64)
	f.ci64 = make([]float64, f.in)
	f.cj64 = make([]float64, f.outs)
	for i := range f.ci64 {
		f.ci64[i] = rng.Float64()*0.1 + 0.01
	}
	for j := range f.cj64 {
		f.cj64[j] = rng.Float64()*0.1 + 0.01
	}
	f.ci32 = make([]float32, f.in)
	f.cj32 = make([]float32, f.outs)
	tensor.CastSlice(f.ci32, f.ci64)
	tensor.CastSlice(f.cj32, f.cj64)
	f.idx = make([][]int32, batch)
	for s := range f.idx {
		for g := 0; g < fi; g++ {
			f.idx[s] = append(f.idx[s], int32(g*mi+rng.Intn(mi)))
		}
	}
	return f
}

func maxAbsDiff32(a []float64, b []float32) float64 {
	var max float64
	for i := range a {
		d := a[i] - float64(b[i])
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

func TestFloat32BackendsMatchFloat64Reference(t *testing.T) {
	for _, name := range Names32() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			f := newF32Fixture(rng)
			ref := MustNew("naive", 1)
			be := MustNew32(name, 3)

			// Forward pass: one-hot matmul + bias + grouped softmax.
			w64 := tensor.NewMatrix(f.in, f.outs)
			ref.UpdateWeights(w64, f.ci64, f.cj64, f.cij64, nil, 0, 0, 0, 0, 1e-9)
			w32 := tensor.NewMatrix32(f.in, f.outs)
			be.UpdateWeights(w32, f.ci32, f.cj32, f.cij32, nil, 0, 0, 0, 0, 1e-9)
			if d := maxAbsDiff32(w64.Data, w32.Data); d > 1e-3 {
				t.Fatalf("UpdateWeights diverges by %g", d)
			}

			bias64 := make([]float64, f.outs)
			kbi := make([]float64, f.outs)
			for j := range kbi {
				kbi[j] = 1
			}
			ref.UpdateBias(bias64, kbi, f.cj64, 1e-9)
			bias32 := make([]float32, f.outs)
			kbi32 := make([]float32, f.outs)
			tensor.CastSlice(kbi32, kbi)
			be.UpdateBias(bias32, kbi32, f.cj32, 1e-9)
			if d := maxAbsDiff32(bias64, bias32); d > 1e-4 {
				t.Fatalf("UpdateBias diverges by %g", d)
			}

			out64 := tensor.NewMatrix(len(f.idx), f.outs)
			ref.OneHotMatMul(out64, f.idx, w64)
			ref.AddBias(out64, bias64)
			ref.SoftmaxGroups(out64, f.h, f.m, 1)
			out32 := tensor.NewMatrix32(len(f.idx), f.outs)
			be.OneHotMatMul(out32, f.idx, w32)
			be.AddBias(out32, bias32)
			be.SoftmaxGroups(out32, f.h, f.m, 1)
			if d := maxAbsDiff32(out64.Data, out32.Data); d > 1e-4 {
				t.Fatalf("forward pass diverges by %g", d)
			}

			// Trace updates.
			ref.OneHotMeanLerp(f.ci64, f.idx, 0.01)
			be.OneHotMeanLerp(f.ci32, f.idx, 0.01)
			if d := maxAbsDiff32(f.ci64, f.ci32); d > 1e-5 {
				t.Fatalf("OneHotMeanLerp diverges by %g", d)
			}
			ref.OneHotOuterLerp(f.cij64, f.idx, f.act64, 0.01)
			be.OneHotOuterLerp(f.cij32, f.idx, f.act32, 0.01)
			if d := maxAbsDiff32(f.cij64.Data, f.cij32.Data); d > 1e-5 {
				t.Fatalf("OneHotOuterLerp diverges by %g", d)
			}
			sq64 := tensor.NewMatrix(f.outs, f.outs)
			sq32 := tensor.NewMatrix32(f.outs, f.outs)
			ref.OuterLerp(sq64, f.act64, f.act64, 0.02)
			be.OuterLerp(sq32, f.act32, f.act32, 0.02)
			if d := maxAbsDiff32(sq64.Data, sq32.Data); d > 1e-5 {
				t.Fatalf("OuterLerp diverges by %g", d)
			}
		})
	}
}

func TestNames32Coverage(t *testing.T) {
	have := map[string]bool{}
	for _, n := range Names32() {
		have[n] = true
	}
	for _, want := range []string{"naive", "parallel", "fused", "gpusim"} {
		if !have[want] {
			t.Fatalf("backend %q missing a float32 kernel set (have %v)", want, Names32())
		}
	}
	if have["fpgasim"] {
		t.Fatal("fpgasim must not register a float32 kernel set (its numerics are posit-defined)")
	}
	if _, err := New32("fpgasim", 1); err == nil {
		t.Fatal("New32(fpgasim) should fail")
	}
}
