package backend

import (
	"streambrain/internal/tensor"
)

func init() {
	Register("fused", func(workers int) Backend { return NewFused(workers) })
	Register32("fused", func(workers int) Backend32 { return NewFusedOf[float32](workers) })
}

// Fused is the whole-layer offload backend (DESIGN.md §14) — the CPU analogue
// of StreamBrain's `full_cuda` backend. Its composed kernels are the Parallel
// worker-team kernels (embedded); what it adds is LayerStep, which runs the
// entire unsupervised batch update in three passes instead of nine kernel
// dispatches:
//
//  1. one pass over the activation matrix per worker band: support gather,
//     bias, optional noise, and the per-HCU softmax, row by row;
//  2. a short serial section over the small per-unit vectors: Ci/Cj traces,
//     homeostatic gain, bias refresh, and the shared log(Cj) table — the
//     composed weight kernel rebuilds that table on every call per worker;
//  3. one cache-blocked pass over Cij and W per worker band: each row block
//     is decayed, accumulated, and immediately re-derived into weights while
//     it is still cache-resident — the composed path walks both matrices
//     twice (trace kernel, then weight kernel) from DRAM.
//
// Every elementary operation reuses the composed microkernels in the same
// order per element, so at float64 LayerStep is bit-identical to the composed
// sequence (the property tests assert it); fusion changes when memory is
// touched, not what is computed.
type Fused[T tensor.Float] struct {
	*Parallel[T]

	// Reusable scratch, grown on first use: LayerStep is allocation-free at
	// steady state (calls are never concurrent on one backend value).
	meanAct []T // batch-mean activation (units)
	logcj   []T // log(max(cj,eps)) shared by every weight row (units)
}

// NewFused returns the float64 fused backend with the given worker-team
// size; workers <= 0 selects GOMAXPROCS.
func NewFused(workers int) *Fused[float64] { return NewFusedOf[float64](workers) }

// NewFusedOf returns a fused backend of the given precision.
func NewFusedOf[T tensor.Float](workers int) *Fused[T] {
	return &Fused[T]{Parallel: NewParallelOf[T](workers)}
}

// Name implements Kernels.
func (f *Fused[T]) Name() string { return "fused" }

// growScratch returns buf resized to n, reallocating only on growth.
func growScratch[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// checkLayerStep validates every shape of a fused step against the geometry,
// so the blocked passes can index without per-element checks.
func checkLayerStep[T tensor.Float](idx [][]int32, act *tensor.Dense[T], ci, cj []T,
	cij, w *tensor.Dense[T], bias []T, mask []bool, geom LayerGeom, hyper LayerHyper[T]) {
	in, units := geom.Inputs(), geom.Units()
	if in <= 0 || units <= 0 {
		panic("backend: LayerStep empty geometry")
	}
	if act.Rows != len(idx) || act.Cols != units {
		panic("backend: LayerStep act shape mismatch")
	}
	if w.Rows != in || w.Cols != units || cij.Rows != in || cij.Cols != units {
		panic("backend: LayerStep W/Cij shape mismatch")
	}
	if len(ci) != in || len(cj) != units || len(bias) != units || len(hyper.Kbi) != units {
		panic("backend: LayerStep vector length mismatch")
	}
	if mask != nil && len(mask) != geom.Fi*geom.H {
		panic("backend: LayerStep mask length mismatch")
	}
	if hyper.Noise != nil && len(hyper.Noise) != len(idx)*units {
		panic("backend: LayerStep noise length mismatch")
	}
	if bi := hyper.Blocks; bi != nil &&
		(bi.Fi != geom.Fi || bi.Mi != geom.Mi || bi.H != geom.H || bi.M != geom.M) {
		panic("backend: LayerStep block-index geometry mismatch")
	}
}

// LayerStep implements LayerStepper.
func (f *Fused[T]) LayerStep(idx [][]int32, act *tensor.Dense[T], ci, cj []T,
	cij, w *tensor.Dense[T], bias []T, mask []bool, geom LayerGeom, hyper LayerHyper[T]) {
	checkLayerStep(idx, act, ci, cj, cij, w, bias, mask, geom, hyper)
	units := geom.Units()
	t := hyper.Taupdt

	// Pass 1 — forward, sharded over the batch: support gather, bias,
	// optional pre-drawn noise, per-HCU softmax, one visit per row.
	if f.workers <= 1 {
		f.forwardBand(act, idx, w, bias, hyper, geom, 0, len(idx))
	} else {
		f.parallelFor(len(idx), func(lo, hi int) {
			f.forwardBand(act, idx, w, bias, hyper, geom, lo, hi)
		})
	}

	// Serial section — the per-unit vectors are tiny next to the matrices.
	// ColMeans keeps the composed path's sequential summation order, so the
	// float64 instantiation stays bit-identical to the kernel sequence.
	oneHotMeanLerp(ci, idx, t)
	f.meanAct = growScratch(f.meanAct, units)
	tensor.ColMeans(f.meanAct, act)
	tensor.Lerp(cj, f.meanAct, T(t))
	homeostasisStep(hyper.Kbi, cj, geom.M, hyper.Taubdt, hyper.PMinFraction, hyper.Eps)
	updateBias(bias, hyper.Kbi, cj, hyper.Eps)
	f.logcj = growScratch(f.logcj, units)
	logMaxSlice(f.logcj, cj, T(hyper.Eps))

	// Pass 2 — trace + weight refresh, sharded over Cij/W rows, blocked so a
	// row block's decay, accumulation, and log-odds re-derivation all happen
	// while the block is cache-resident. The sparse regime walks only the
	// active blocks of the index through the same segment microkernels.
	if bi := hyper.Blocks; bi != nil {
		if f.workers <= 1 {
			f.traceWeightBandSparse(cij, w, act, idx, ci, bi, t, hyper.Eps, 0, cij.Rows)
		} else {
			f.parallelFor(cij.Rows, func(lo, hi int) {
				f.traceWeightBandSparse(cij, w, act, idx, ci, bi, t, hyper.Eps, lo, hi)
			})
		}
		return
	}
	if f.workers <= 1 {
		f.traceWeightBand(cij, w, act, idx, ci, mask, geom, t, hyper.Eps, 0, cij.Rows)
	} else {
		f.parallelFor(cij.Rows, func(lo, hi int) {
			f.traceWeightBand(cij, w, act, idx, ci, mask, geom, t, hyper.Eps, lo, hi)
		})
	}
}

// forwardBand computes act rows [lo,hi): support gather, bias, optional
// pre-drawn noise, per-HCU softmax — one pass per row. Rows are independent,
// so worker sharding cannot change the result. In the sparse regime the
// gather touches only active-block weight segments; the skipped segments are
// exact zeros, so the support is bit-identical to the dense gather.
func (f *Fused[T]) forwardBand(act *tensor.Dense[T], idx [][]int32, w *tensor.Dense[T],
	bias []T, hyper LayerHyper[T], geom LayerGeom, lo, hi int) {
	n := w.Cols
	bi := hyper.Blocks
	for s := lo; s < hi; s++ {
		row := act.Row(s)
		clear(row)
		for _, in := range idx[s] {
			wrow := w.Data[int(in)*n : int(in)*n+n]
			if bi == nil {
				tensor.Add(row, wrow)
				continue
			}
			for _, h := range bi.Active(int(in) / bi.Mi) {
				o := int(h) * bi.M
				tensor.Add(row[o:o+bi.M], wrow[o:o+bi.M])
			}
		}
		tensor.Add(row, bias)
		if hyper.Noise != nil {
			tensor.Add(row, hyper.Noise[s*n:(s+1)*n])
		}
		for g := 0; g < geom.H; g++ {
			tensor.SoftmaxRow(row[g*geom.M:(g+1)*geom.M], hyper.Temperature)
		}
	}
}

// traceWeightBandSparse is the block-sparse pass 2: for Cij/W rows [lo,hi),
// decay and accumulate only the active blocks (the shared sparse range
// helper) and re-derive only the active weight segments while the rows are
// cache-resident. Silent trace blocks stay frozen and silent weight blocks
// keep the zeros the last masked refresh wrote.
func (f *Fused[T]) traceWeightBandSparse(cij, w, act *tensor.Dense[T], idx [][]int32,
	ci []T, bi *tensor.BlockIndex, t, eps float64, lo, hi int) {
	epsT := T(eps)
	eps2 := epsT * epsT
	logcj := f.logcj
	m := bi.M
	block := fusedBlockRows(cij.Cols, int(elemSize[T]()))
	for b0 := lo; b0 < hi; b0 += block {
		b1 := min(b0+block, hi)
		oneHotOuterLerpSparseRange(cij, idx, act, t, bi, b0, b1)
		for i := b0; i < b1; i++ {
			active := bi.Active(i / bi.Mi)
			if len(active) == 0 {
				continue
			}
			logci := logT(max(ci[i], epsT))
			crow := cij.Row(i)
			wrow := w.Row(i)
			for _, h := range active {
				o := int(h) * m
				weightRowFromTrace(wrow[o:o+m], crow[o:o+m], logcj[o:o+m], logci, eps2)
			}
		}
	}
}

// homeostasisStep is the floored-bias gain update of the composed trainer
// (core's homeostasis, DESIGN.md §3), precision-generic so the fused step
// reproduces it in-pass: starved units (cj below PMinFraction/M) have their
// gain driven toward the fair-share bias level, healthy units relax to 1.
func homeostasisStep[T tensor.Float](kbi, cj []T, m int, taubdt, pminFraction, eps float64) {
	fair := logT(1 / T(m))
	pmin := T(pminFraction) / T(m)
	tb := T(taubdt)
	epsT := T(eps)
	for j, v := range cj {
		target := T(1)
		if v < pmin {
			target = fair / logT(max(v, epsT))
		}
		kbi[j] = (1-tb)*kbi[j] + tb*target
	}
}

// traceWeightBand updates Cij rows [lo,hi) and re-derives the matching W
// rows, in row blocks sized so one block of each matrix fits in L2 together:
// the freshly decayed-and-accumulated trace rows are consumed by the log-odds
// recompute before they can fall out of cache. The arithmetic is exactly
// oneHotOuterLerpRange followed by updateWeightsRange's formula with the
// log(Cj) table hoisted out (the composed kernel rebuilds it per call).
func (f *Fused[T]) traceWeightBand(cij, w, act *tensor.Dense[T], idx [][]int32,
	ci []T, mask []bool, geom LayerGeom, t, eps float64, lo, hi int) {
	epsT := T(eps)
	eps2 := epsT * epsT
	logcj := f.logcj
	block := fusedBlockRows(cij.Cols, int(elemSize[T]()))
	for b0 := lo; b0 < hi; b0 += block {
		b1 := min(b0+block, hi)
		oneHotOuterLerpRange(cij, idx, act, t, b0, b1)
		for i := b0; i < b1; i++ {
			logci := logT(max(ci[i], epsT))
			crow := cij.Row(i)
			wrow := w.Row(i)
			if mask == nil {
				weightRowFromTrace(wrow, crow, logcj, logci, eps2)
				continue
			}
			maskRow := mask[(i/geom.Mi)*geom.H : (i/geom.Mi)*geom.H+geom.H]
			for g := 0; g < geom.H; g++ {
				seg := wrow[g*geom.M : (g+1)*geom.M]
				if !maskRow[g] {
					clear(seg)
					continue
				}
				weightRowFromTrace(seg, crow[g*geom.M:(g+1)*geom.M],
					logcj[g*geom.M:(g+1)*geom.M], logci, eps2)
			}
		}
	}
}

// weightRowFromTrace re-derives one weight row (or hypercolumn segment) from
// its freshly updated trace row: w[j] = log(max(c[j],eps²)) − log ci − log cj.
// The float64 instantiation runs the log four lanes at a time; each lane is
// bit-identical to the composed kernel's logT, and the two subtractions keep
// the composed left-to-right order.
func weightRowFromTrace[T tensor.Float](wrow, crow, logcj []T, logci, eps2 T) {
	if w64, ok := any(wrow).([]float64); ok {
		c64 := any(crow).([]float64)
		l64 := any(logcj).([]float64)
		weightRowFromTrace64(w64, c64, l64, float64(logci), float64(eps2))
		return
	}
	for j := range wrow {
		wrow[j] = logT(max(crow[j], eps2)) - logci - logcj[j]
	}
}

func weightRowFromTrace64(wrow, crow, logcj []float64, logci, eps2 float64) {
	j := 0
	if fusedLogSIMD {
		j = weightRowLogAVX(wrow, crow, logcj, logci, eps2)
	}
	for ; j+3 < len(wrow); j += 4 {
		y0, y1, y2, y3 := fastLog4(max(crow[j], eps2), max(crow[j+1], eps2),
			max(crow[j+2], eps2), max(crow[j+3], eps2))
		wrow[j] = y0 - logci - logcj[j]
		wrow[j+1] = y1 - logci - logcj[j+1]
		wrow[j+2] = y2 - logci - logcj[j+2]
		wrow[j+3] = y3 - logci - logcj[j+3]
	}
	for ; j < len(wrow); j++ {
		wrow[j] = fastLog(max(crow[j], eps2)) - logci - logcj[j]
	}
}

// logMaxSlice fills dst[j] = log(max(src[j], floor)), four lanes at a time at
// float64 — the shared log(Cj) table of the fused weight pass.
func logMaxSlice[T tensor.Float](dst, src []T, floor T) {
	if d64, ok := any(dst).([]float64); ok {
		s64 := any(src).([]float64)
		f64 := float64(floor)
		j := 0
		for ; j+3 < len(d64); j += 4 {
			d64[j], d64[j+1], d64[j+2], d64[j+3] = fastLog4(max(s64[j], f64),
				max(s64[j+1], f64), max(s64[j+2], f64), max(s64[j+3], f64))
		}
		for ; j < len(d64); j++ {
			d64[j] = fastLog(max(s64[j], f64))
		}
		return
	}
	for j, v := range src {
		dst[j] = logT(max(v, floor))
	}
}

// fusedBlockRows sizes the trace+weight row block so a Cij block and a W
// block together stay within ~128 KiB — comfortably L2-resident while leaving
// room for the activation rows the accumulation gathers.
func fusedBlockRows(cols, elem int) int {
	rowBytes := cols * elem
	if rowBytes <= 0 {
		return 64
	}
	rows := (128 << 10) / (2 * rowBytes)
	return min(max(rows, 16), 1024)
}
