// Package backend defines the compute-backend abstraction of StreamBrain-Go.
//
// StreamBrain (Podobas et al., HEART 2021) ships hand-coded backends for
// OpenMP+SIMD CPUs, CUDA GPUs, MPI clusters and HLS FPGAs behind one kernel
// interface. This package reproduces that architecture in Go: the BCPNN core
// is written against the Backend interface and never touches raw loops, so
// swapping the execution strategy is a one-line change exactly as in the
// Python original.
//
// Three backends are provided:
//
//   - "naive":    single-threaded reference kernels (the NumPy role).
//   - "parallel": goroutine worker-team kernels with cache blocking
//     (the OpenMP+SIMD role).
//   - "gpusim":   a GPU-offload simulator layered on the parallel kernels
//     that models device-resident buffers and counts kernel
//     launches and host/device transfer bytes under both the
//     fully-offloaded and the chatty transfer policy
//     (the CUDA role; see DESIGN.md §1 for the substitution).
package backend

import (
	"fmt"
	"sort"
	"sync"

	"streambrain/internal/tensor"
)

// Backend is the kernel set the BCPNN training loop is expressed in.
// All methods must be safe for sequential use; implementations may
// parallelize internally but calls themselves are not concurrent.
type Backend interface {
	// Name returns the registry name of the backend.
	Name() string
	// Workers returns the size of the backend's worker team (1 for naive).
	Workers() int

	// MatMul computes dst = a·b.
	MatMul(dst, a, b *tensor.Matrix)
	// MatMulATB computes dst = aᵀ·b without materializing aᵀ.
	MatMulATB(dst, a, b *tensor.Matrix)
	// OneHotMatMul computes dst = X·w where sample s of X is the indicator
	// vector of idx[s] (the quantile one-hot encoding of §V of the paper).
	OneHotMatMul(dst *tensor.Matrix, idx [][]int32, w *tensor.Matrix)
	// AddBias adds the bias vector to every row of m.
	AddBias(m *tensor.Matrix, bias []float64)
	// SoftmaxGroups applies a temperature softmax independently to each of
	// `groups` consecutive width-`width` segments of every row — the
	// per-hypercolumn normalization of MCU activities.
	SoftmaxGroups(m *tensor.Matrix, groups, width int, temperature float64)

	// Lerp computes dst = (1-t)·dst + t·src — the exponential trace update.
	Lerp(dst, src []float64, t float64)
	// LerpMatrix is Lerp over matrix storage.
	LerpMatrix(dst, src *tensor.Matrix, t float64)
	// OneHotMeanLerp folds the batch mean of one-hot inputs into the Ci
	// trace: ci = (1-t)·ci + (t/len(idx))·Σ_s indicator(idx[s]).
	OneHotMeanLerp(ci []float64, idx [][]int32, t float64)
	// OneHotOuterLerp folds the batch outer-product mean into the joint
	// trace: cij = (1-t)·cij + (t/len(idx))·Σ_s indicator(idx[s]) ⊗ act[s].
	OneHotOuterLerp(cij *tensor.Matrix, idx [][]int32, act *tensor.Matrix, t float64)
	// OuterLerp is the dense variant used by the supervised layer:
	// cij = (1-t)·cij + (t/a.Rows)·aᵀb.
	OuterLerp(cij *tensor.Matrix, a, b *tensor.Matrix, t float64)

	// UpdateWeights recomputes the BCPNN weight matrix from the traces:
	// w_ij = log(max(cij,eps²) / (max(ci_i,eps)·max(cj_j,eps))).
	// If mask is non-nil it is an fi×h row-major boolean gate over
	// (input hypercolumn, output hypercolumn) blocks of w (block shape
	// mi×m); gated-off entries are set to 0 (silent connections).
	UpdateWeights(w *tensor.Matrix, ci, cj []float64, cij *tensor.Matrix,
		mask []bool, fi, mi, h, m int, eps float64)
	// UpdateBias recomputes bias_j = kbi_j · log(max(cj_j, eps)).
	UpdateBias(bias, kbi, cj []float64, eps float64)
}

// factory builds a backend with the requested worker count.
type factory func(workers int) Backend

var (
	regMu    sync.RWMutex
	registry = map[string]factory{}
)

// Register installs a backend factory under name. It is called from package
// init functions; duplicate names panic.
func Register(name string, f factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration %q", name))
	}
	registry[name] = f
}

// New returns the named backend with the given worker-team size.
// workers <= 0 selects a backend-specific default.
func New(name string, workers int) (Backend, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return f(workers), nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(name string, workers int) Backend {
	b, err := New(name, workers)
	if err != nil {
		panic(err)
	}
	return b
}

// Names returns the sorted list of registered backend names.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
