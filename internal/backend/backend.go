// Package backend defines the compute-backend abstraction of StreamBrain-Go.
//
// StreamBrain (Podobas et al., HEART 2021) ships hand-coded backends for
// OpenMP+SIMD CPUs, CUDA GPUs, MPI clusters and HLS FPGAs behind one kernel
// interface. This package reproduces that architecture in Go: the BCPNN core
// is written against the Backend interface and never touches raw loops, so
// swapping the execution strategy is a one-line change exactly as in the
// Python original.
//
// Three backends are provided:
//
//   - "naive":    single-threaded reference kernels (the NumPy role).
//   - "parallel": goroutine worker-team kernels with cache blocking
//     (the OpenMP+SIMD role).
//   - "gpusim":   a GPU-offload simulator layered on the parallel kernels
//     that models device-resident buffers and counts kernel
//     launches and host/device transfer bytes under both the
//     fully-offloaded and the chatty transfer policy
//     (the CUDA role; see DESIGN.md §1 for the substitution).
//
// Every kernel set is generic over the element precision (DESIGN.md §9):
// Backend is the float64 instantiation the trainer uses for traces and
// accumulators, Backend32 is the float32 instantiation behind the reduced-
// precision compute path. The two instantiations share one source — the
// float32 set is not a fork, it is the same kernels at half the element
// width (and, on amd64, twice the SIMD lanes).
package backend

import (
	"fmt"
	"sort"
	"sync"

	"streambrain/internal/tensor"
)

// Kernels is the kernel set the BCPNN training loop is expressed in,
// parameterized by element precision. All methods must be safe for
// sequential use; implementations may parallelize internally but calls
// themselves are not concurrent. Scalar hyperparameters (trace rates,
// temperatures, eps floors) stay float64 at the interface and are converted
// at the kernel boundary, so callers never depend on the precision.
type Kernels[T tensor.Float] interface {
	// Name returns the registry name of the backend.
	Name() string
	// Workers returns the size of the backend's worker team (1 for naive).
	Workers() int

	// MatMul computes dst = a·b.
	MatMul(dst, a, b *tensor.Dense[T])
	// MatMulATB computes dst = aᵀ·b without materializing aᵀ.
	MatMulATB(dst, a, b *tensor.Dense[T])
	// OneHotMatMul computes dst = X·w where sample s of X is the indicator
	// vector of idx[s] (the quantile one-hot encoding of §V of the paper).
	OneHotMatMul(dst *tensor.Dense[T], idx [][]int32, w *tensor.Dense[T])
	// AddBias adds the bias vector to every row of m.
	AddBias(m *tensor.Dense[T], bias []T)
	// SoftmaxGroups applies a temperature softmax independently to each of
	// `groups` consecutive width-`width` segments of every row — the
	// per-hypercolumn normalization of MCU activities.
	SoftmaxGroups(m *tensor.Dense[T], groups, width int, temperature float64)

	// Lerp computes dst = (1-t)·dst + t·src — the exponential trace update.
	Lerp(dst, src []T, t float64)
	// LerpMatrix is Lerp over matrix storage.
	LerpMatrix(dst, src *tensor.Dense[T], t float64)
	// OneHotMeanLerp folds the batch mean of one-hot inputs into the Ci
	// trace: ci = (1-t)·ci + (t/len(idx))·Σ_s indicator(idx[s]).
	OneHotMeanLerp(ci []T, idx [][]int32, t float64)
	// OneHotOuterLerp folds the batch outer-product mean into the joint
	// trace: cij = (1-t)·cij + (t/len(idx))·Σ_s indicator(idx[s]) ⊗ act[s].
	OneHotOuterLerp(cij *tensor.Dense[T], idx [][]int32, act *tensor.Dense[T], t float64)
	// OuterLerp is the dense variant used by the supervised layer:
	// cij = (1-t)·cij + (t/a.Rows)·aᵀb.
	OuterLerp(cij *tensor.Dense[T], a, b *tensor.Dense[T], t float64)

	// UpdateWeights recomputes the BCPNN weight matrix from the traces:
	// w_ij = log(max(cij,eps²) / (max(ci_i,eps)·max(cj_j,eps))).
	// If mask is non-nil it is an fi×h row-major boolean gate over
	// (input hypercolumn, output hypercolumn) blocks of w (block shape
	// mi×m); gated-off entries are set to 0 (silent connections).
	UpdateWeights(w *tensor.Dense[T], ci, cj []T, cij *tensor.Dense[T],
		mask []bool, fi, mi, h, m int, eps float64)
	// UpdateBias recomputes bias_j = kbi_j · log(max(cj_j, eps)).
	UpdateBias(bias, kbi, cj []T, eps float64)

	// Block-sparse kernel set (DESIGN.md §15). These are the receptive-field-
	// mask-aware counterparts of the hot dense kernels: a tensor.BlockIndex
	// (the compressed form of the mask, rebuilt only on structural swaps)
	// restricts every touch to the active (input HCU × hidden HCU) blocks, so
	// at structural sparsity s they pay ~(1−s) of the dense work. They
	// implement the sparse-compute training regime, in which silent-block
	// joint traces are FROZEN rather than decayed (the dense path's silent
	// statistics are deliberately not maintained; see DESIGN.md §15 for the
	// substitution).

	// OneHotMatMulSparse is OneHotMatMul gathering only active-block weight
	// segments. Because silent W blocks hold exact zeros, it is bit-identical
	// to the dense gather at every precision.
	OneHotMatMulSparse(dst *tensor.Dense[T], idx [][]int32, w *tensor.Dense[T],
		bi *tensor.BlockIndex)
	// OneHotOuterLerpSparse is OneHotOuterLerp decaying and accumulating only
	// the active blocks of cij; silent blocks keep their bits (frozen traces).
	OneHotOuterLerpSparse(cij *tensor.Dense[T], idx [][]int32, act *tensor.Dense[T],
		t float64, bi *tensor.BlockIndex)
	// UpdateWeightsSparse recomputes only the active blocks of w from the
	// traces. Silent blocks are left untouched — callers maintain the
	// invariant that they hold zeros by running a full masked UpdateWeights
	// whenever the mask changes.
	UpdateWeightsSparse(w *tensor.Dense[T], ci, cj []T, cij *tensor.Dense[T],
		bi *tensor.BlockIndex, eps float64)
}

// Backend is the float64 kernel set — the precision of every training trace.
type Backend = Kernels[float64]

// Backend32 is the float32 kernel set behind the reduced-precision compute
// path (forward passes and derived parameters; traces never live here).
type Backend32 = Kernels[float32]

// factory builds a backend with the requested worker count.
type factory func(workers int) Backend

// factory32 builds a float32 backend with the requested worker count.
type factory32 func(workers int) Backend32

var (
	regMu      sync.RWMutex
	registry   = map[string]factory{}
	registry32 = map[string]factory32{}
)

// Register installs a float64 backend factory under name. It is called from
// package init functions; duplicate names panic.
func Register(name string, f factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration %q", name))
	}
	registry[name] = f
}

// Register32 installs a float32 backend factory under name. Backends without
// a float32 kernel set (fpgasim, whose numerics are posit-defined) simply do
// not register here, and New32 reports them as unavailable.
func Register32(name string, f factory32) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry32[name]; dup {
		panic(fmt.Sprintf("backend: duplicate float32 registration %q", name))
	}
	registry32[name] = f
}

// New returns the named float64 backend with the given worker-team size.
// workers <= 0 selects a backend-specific default.
func New(name string, workers int) (Backend, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (have %v)", name, Names())
	}
	return f(workers), nil
}

// New32 returns the named backend's float32 kernel set.
func New32(name string, workers int) (Backend32, error) {
	regMu.RLock()
	f, ok := registry32[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: backend %q has no float32 kernel set (have %v)",
			name, Names32())
	}
	return f(workers), nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(name string, workers int) Backend {
	b, err := New(name, workers)
	if err != nil {
		panic(err)
	}
	return b
}

// MustNew32 is New32 that panics on error, for tests and examples.
func MustNew32(name string, workers int) Backend32 {
	b, err := New32(name, workers)
	if err != nil {
		panic(err)
	}
	return b
}

// Names returns the sorted list of registered backend names.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Names32 returns the sorted list of backends with a float32 kernel set.
func Names32() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry32))
	for n := range registry32 {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
