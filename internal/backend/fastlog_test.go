package backend

import (
	"math"
	"math/rand"
	"testing"
)

// TestFastLogBitExact sweeps the fused pass's input domain — the trace floor
// eps² = 1e-18 up through large supports — plus every special-case class, and
// demands bit equality with math.Log. The fused backend's agreement with the
// composed kernels rests on this.
func TestFastLogBitExact(t *testing.T) {
	check := func(x float64) {
		t.Helper()
		want := math.Log(x)
		if got := fastLog(x); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("fastLog(%v) = %v, want %v", x, got, want)
		}
		g0, g1, g2, g3 := fastLog4(x, x*1.5, x*0.25, x*7)
		for i, pair := range [][2]float64{{g0, x}, {g1, x * 1.5}, {g2, x * 0.25}, {g3, x * 7}} {
			w := math.Log(pair[1])
			if pair[0] != w && !(math.IsNaN(pair[0]) && math.IsNaN(w)) {
				t.Fatalf("fastLog4 lane %d at %v = %v, want %v", i, pair[1], pair[0], w)
			}
		}
	}
	// Dense log-uniform sweep over (≈4e-18, ≈2e17).
	for i := 0; i < 500000; i++ {
		check(math.Exp(40 * (float64(i)/250000 - 1)))
	}
	// Random mantissas across the full normal exponent range.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200000; i++ {
		check(math.Ldexp(0.5+0.5*rng.Float64(), rng.Intn(2000)-1000))
	}
	for _, x := range []float64{
		1e-18, 1, math.Sqrt2 / 2, 0.5, 0.999999999, 1.000000001, 2, math.E, 1e300,
		2.2250738585072014e-308, // smallest normal
		5e-324, 1e-310,          // subnormals → stdlib fallback
		0, math.Inf(1), math.Inf(-1), math.NaN(), -1, -1e-300,
	} {
		check(x)
	}
}

// TestWeightRowFromTraceBitExact drives the row kernel (the AVX2 path where
// the machine has it, the 4-wide pure-Go path otherwise) against the composed
// kernels' scalar formula, including lanes that force the SIMD guard's
// scalar fallback mid-row.
func TestWeightRowFromTraceBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const eps2, logci = 1e-18, -0.37
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(530)
		crow := make([]float64, n)
		logcj := make([]float64, n)
		for j := range crow {
			crow[j] = math.Exp(40 * (rng.Float64() - 1)) // spans eps2..1
			logcj[j] = rng.NormFloat64()
		}
		if trial%4 == 0 { // poison a lane: guard must hand off to math.Log
			p := rng.Intn(n)
			crow[p] = []float64{math.NaN(), math.Inf(1), 0, -3, 5e-324}[rng.Intn(5)]
		}
		got := make([]float64, n)
		weightRowFromTrace(got, crow, logcj, logci, eps2)
		for j := range got {
			want := math.Log(max(crow[j], eps2)) - logci - logcj[j]
			if got[j] != want && !(math.IsNaN(got[j]) && math.IsNaN(want)) {
				t.Fatalf("trial %d n=%d j=%d crow=%v: got %v, want %v",
					trial, n, j, crow[j], got[j], want)
			}
		}
	}
}
