package backend

import (
	"streambrain/internal/posit"
	"streambrain/internal/tensor"
)

func init() {
	Register("fpgasim", func(workers int) Backend {
		return NewFPGASim(workers, posit.Posit16)
	})
}

// Pipeline stage indices for the FPGA streaming dataflow model. The fused
// layer step maps onto four HLS dataflow stages, mirroring the
// stream-accelerator follow-up's pipeline (arXiv 2503.01561): support
// accumulation, per-HCU softmax, trace EMA, and parameter (weight/bias)
// re-derivation.
const (
	StageSupport = iota
	StageSoftmax
	StageTrace
	StageWeight
	numStages
)

// StageName returns the dataflow stage's display name.
func StageName(stage int) string {
	switch stage {
	case StageSupport:
		return "support"
	case StageSoftmax:
		return "softmax"
	case StageTrace:
		return "trace"
	case StageWeight:
		return "weight"
	}
	return "?"
}

// PipelineStats is the FPGA simulator's streaming-pipeline cost model. Each
// dataflow stage is modeled as a hardware pipeline with initiation interval
// II=1: it retires one elementary operation per cycle. What distinguishes the
// fused layer step from the composed kernel sequence is overlap:
//
//   - a fused LayerStep streams all four stages concurrently, so the step
//     costs max(stage cycles) — the pipeline is bound by its busiest stage;
//   - a composed kernel is a separate launch whose stage runs alone, so its
//     cycles accumulate additively into TotalCycles.
//
// Occupancy(stage) = StageCycles[stage]/TotalCycles then reads as the
// fraction of device time the stage's pipeline was busy; a perfectly balanced
// fused dataflow approaches 1.0 on every stage, while the composed sequence
// can never exceed 1/numStages averaged across them.
type PipelineStats struct {
	Steps          int64 // fused whole-layer steps executed
	KernelLaunches int64 // total launches (composed kernels + 1 per fused step)
	StageOps       [numStages]int64
	StageCycles    [numStages]int64
	TotalCycles    int64
}

// Occupancy returns the fraction of total device cycles during which the
// stage's pipeline was retiring operations.
func (p PipelineStats) Occupancy(stage int) float64 {
	if p.TotalCycles == 0 {
		return 0
	}
	return float64(p.StageCycles[stage]) / float64(p.TotalCycles)
}

// FPGASim models StreamBrain's HLS FPGA backend at two levels. Numerically,
// the derived parameters (weights and biases) are stored in a reduced posit
// representation, exactly the "reduced/different numerical representation
// (e.g., Posits)" exploration §III-A describes for the FPGA target. Compute
// runs on the parallel CPU kernels (we simulate the datapath's numerics, not
// its clock); the observable effect — what the precision ablation measures —
// is the accuracy impact of posit-quantized parameters on training.
//
// Architecturally, the simulator keeps a streaming-pipeline cost model
// (PipelineStats): composed kernel calls are accounted as serialized
// launches, while LayerStep — the whole-layer offload — is accounted as one
// launch through a four-stage dataflow whose stages overlap. The Pipeline()
// snapshot quantifies the fusion argument in cycles without any RTL.
//
// Traces stay in float64: on the real device they are the accumulators,
// which HLS designs keep in wide fixed-point precisely because accumulating
// in the storage format diverges. Quantizing only the derived parameters
// mirrors that design split.
type FPGASim struct {
	dev    *Parallel[float64]
	step   *Fused[float64]
	format posit.Format
	pipe   PipelineStats
}

// NewFPGASim returns an FPGA simulator storing parameters in the given posit
// format.
func NewFPGASim(workers int, format posit.Format) *FPGASim {
	if err := format.Validate(); err != nil {
		panic(err)
	}
	return &FPGASim{
		dev:    NewParallel(workers),
		step:   NewFused(workers),
		format: format,
	}
}

// Name implements Backend.
func (f *FPGASim) Name() string { return "fpgasim" }

// Workers implements Backend.
func (f *FPGASim) Workers() int { return f.dev.Workers() }

// Format returns the posit storage format in use.
func (f *FPGASim) Format() posit.Format { return f.format }

// Pipeline returns a snapshot of the streaming-pipeline cost model.
func (f *FPGASim) Pipeline() PipelineStats { return f.pipe }

// ResetPipeline clears the pipeline cost model.
func (f *FPGASim) ResetPipeline() { f.pipe = PipelineStats{} }

// countLaunch accounts one composed kernel dispatch: a lone stage running
// with no overlap, so its cycles land additively on the total.
func (f *FPGASim) countLaunch(stage int, ops int64) {
	f.pipe.KernelLaunches++
	f.pipe.StageOps[stage] += ops
	f.pipe.StageCycles[stage] += ops
	f.pipe.TotalCycles += ops
}

// activeCount returns the total number of active one-hot indices in a batch.
func activeCount(idx [][]int32) int64 {
	var n int64
	for _, a := range idx {
		n += int64(len(a))
	}
	return n
}

// sparseGatherOps counts the elementary operations of a block-sparse one-hot
// gather or scatter: for each active index of each sample, one M-wide panel
// op per hidden HCU the index's input hypercolumn actually reaches.
func sparseGatherOps(idx [][]int32, bi *tensor.BlockIndex) int64 {
	var n int64
	for _, sample := range idx {
		for _, in := range sample {
			n += int64(len(bi.Active(int(in)/bi.Mi))) * int64(bi.M)
		}
	}
	return n
}

// MatMul implements Backend.
func (f *FPGASim) MatMul(dst, a, b *tensor.Matrix) {
	f.countLaunch(StageSupport, int64(a.Rows)*int64(a.Cols)*int64(b.Cols))
	f.dev.MatMul(dst, a, b)
}

// MatMulATB implements Backend.
func (f *FPGASim) MatMulATB(dst, a, b *tensor.Matrix) {
	f.countLaunch(StageSupport, int64(a.Rows)*int64(a.Cols)*int64(b.Cols))
	f.dev.MatMulATB(dst, a, b)
}

// OneHotMatMul implements Backend.
func (f *FPGASim) OneHotMatMul(dst *tensor.Matrix, idx [][]int32, w *tensor.Matrix) {
	f.countLaunch(StageSupport, activeCount(idx)*int64(w.Cols))
	f.dev.OneHotMatMul(dst, idx, w)
}

// AddBias implements Backend.
func (f *FPGASim) AddBias(m *tensor.Matrix, bias []float64) {
	f.countLaunch(StageSupport, int64(m.Rows)*int64(m.Cols))
	f.dev.AddBias(m, bias)
}

// SoftmaxGroups implements Backend.
func (f *FPGASim) SoftmaxGroups(m *tensor.Matrix, groups, width int, temperature float64) {
	f.countLaunch(StageSoftmax, int64(m.Rows)*int64(m.Cols))
	f.dev.SoftmaxGroups(m, groups, width, temperature)
}

// Lerp implements Backend.
func (f *FPGASim) Lerp(dst, src []float64, t float64) {
	f.countLaunch(StageTrace, int64(len(dst)))
	f.dev.Lerp(dst, src, t)
}

// LerpMatrix implements Backend.
func (f *FPGASim) LerpMatrix(dst, src *tensor.Matrix, t float64) {
	f.countLaunch(StageTrace, int64(len(dst.Data)))
	f.dev.LerpMatrix(dst, src, t)
}

// OneHotMeanLerp implements Backend.
func (f *FPGASim) OneHotMeanLerp(ci []float64, idx [][]int32, t float64) {
	f.countLaunch(StageTrace, int64(len(ci))+activeCount(idx))
	f.dev.OneHotMeanLerp(ci, idx, t)
}

// OneHotOuterLerp implements Backend.
func (f *FPGASim) OneHotOuterLerp(cij *tensor.Matrix, idx [][]int32, act *tensor.Matrix, t float64) {
	f.countLaunch(StageTrace, int64(len(cij.Data))+activeCount(idx)*int64(cij.Cols))
	f.dev.OneHotOuterLerp(cij, idx, act, t)
}

// OuterLerp implements Backend.
func (f *FPGASim) OuterLerp(cij *tensor.Matrix, a, b *tensor.Matrix, t float64) {
	f.countLaunch(StageTrace, int64(len(cij.Data)))
	f.dev.OuterLerp(cij, a, b, t)
}

// UpdateWeights implements Backend: the float64 weight recompute followed by
// posit storage quantization.
func (f *FPGASim) UpdateWeights(w *tensor.Matrix, ci, cj []float64, cij *tensor.Matrix,
	mask []bool, fi, mi, h, m int, eps float64) {
	f.countLaunch(StageWeight, int64(len(w.Data)))
	f.dev.UpdateWeights(w, ci, cj, cij, mask, fi, mi, h, m, eps)
	f.quantizeParams(w, nil)
}

// UpdateBias implements Backend with posit storage quantization.
func (f *FPGASim) UpdateBias(bias, kbi, cj []float64, eps float64) {
	f.countLaunch(StageWeight, int64(len(bias)))
	f.dev.UpdateBias(bias, kbi, cj, eps)
	f.format.QuantizeSlice(bias)
}

// OneHotMatMulSparse implements Backend: support gathers touch only the
// active weight panels of the block index.
func (f *FPGASim) OneHotMatMulSparse(dst *tensor.Matrix, idx [][]int32, w *tensor.Matrix,
	bi *tensor.BlockIndex) {
	f.countLaunch(StageSupport, sparseGatherOps(idx, bi))
	f.dev.OneHotMatMulSparse(dst, idx, w, bi)
}

// OneHotOuterLerpSparse implements Backend: the decay pass streams the active
// joint-trace elements only (silent blocks are frozen) and the accumulation
// pass is a block-sparse scatter.
func (f *FPGASim) OneHotOuterLerpSparse(cij *tensor.Matrix, idx [][]int32,
	act *tensor.Matrix, t float64, bi *tensor.BlockIndex) {
	f.countLaunch(StageTrace, bi.ActiveElems()+sparseGatherOps(idx, bi))
	f.dev.OneHotOuterLerpSparse(cij, idx, act, t, bi)
}

// UpdateWeightsSparse implements Backend: only active weight panels are
// re-derived (silent panels hold zeros and are never written), then the
// parameters are re-quantized into posit storage like the dense kernel.
func (f *FPGASim) UpdateWeightsSparse(w *tensor.Matrix, ci, cj []float64, cij *tensor.Matrix,
	bi *tensor.BlockIndex, eps float64) {
	f.countLaunch(StageWeight, bi.ActiveElems())
	f.dev.UpdateWeightsSparse(w, ci, cj, cij, bi, eps)
	f.quantizeParams(w, nil)
}

// quantizeParams rounds the derived parameters into posit storage: w row
// bands in parallel (it is the large buffer), bias inline when non-nil.
func (f *FPGASim) quantizeParams(w *tensor.Matrix, bias []float64) {
	f.dev.parallelFor(w.Rows, func(lo, hi int) {
		f.format.QuantizeSlice(w.Data[lo*w.Cols : hi*w.Cols])
	})
	if bias != nil {
		f.format.QuantizeSlice(bias)
	}
}

// LayerStep implements LayerStepper: the streaming whole-layer offload. The
// fused float64 step supplies the compute; the cost model charges one launch
// through the four-stage dataflow, bounded by its busiest stage because the
// stages stream concurrently; and the derived parameters are re-quantized
// into posit storage on the way out, preserving the numerical contract of
// the composed kernels (UpdateWeights/UpdateBias quantize identically).
func (f *FPGASim) LayerStep(idx [][]int32, act *tensor.Matrix, ci, cj []float64,
	cij, w *tensor.Matrix, bias []float64, mask []bool, geom LayerGeom, hyper LayerHyper[float64]) {
	nact := activeCount(idx)
	units := int64(geom.Units())
	batch := int64(len(idx))

	var ops [numStages]int64
	if bi := hyper.Blocks; bi != nil {
		// Block-sparse regime: gathers, trace decay/accumulation and weight
		// re-derivation stream only the active panels of the block index.
		gather := sparseGatherOps(idx, bi)
		ops[StageSupport] = gather + batch*units // gathers + bias add
		if hyper.Noise != nil {
			ops[StageSupport] += batch * units
		}
		ops[StageSoftmax] = batch * units
		// ci EMA + cj EMA + active-block Cij decay and accumulation.
		ops[StageTrace] = int64(len(ci)) + nact + units + bi.ActiveElems() + gather
		// Active-panel W re-derivation + homeostatic gain + bias refresh.
		ops[StageWeight] = bi.ActiveElems() + 2*units
	} else {
		ops[StageSupport] = nact*units + batch*units // gathers + bias add
		if hyper.Noise != nil {
			ops[StageSupport] += batch * units
		}
		ops[StageSoftmax] = batch * units
		// ci EMA + cj EMA + Cij decay and accumulation.
		ops[StageTrace] = int64(len(ci)) + nact + units + int64(len(cij.Data)) + nact*units
		// W re-derivation + homeostatic gain + bias refresh.
		ops[StageWeight] = int64(len(w.Data)) + 2*units
	}

	f.pipe.Steps++
	f.pipe.KernelLaunches++
	var peak int64
	for s, o := range ops {
		f.pipe.StageOps[s] += o
		f.pipe.StageCycles[s] += o
		if o > peak {
			peak = o
		}
	}
	f.pipe.TotalCycles += peak

	f.step.LayerStep(idx, act, ci, cj, cij, w, bias, mask, geom, hyper)
	f.quantizeParams(w, bias)
}
