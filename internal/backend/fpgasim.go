package backend

import (
	"streambrain/internal/posit"
	"streambrain/internal/tensor"
)

func init() {
	Register("fpgasim", func(workers int) Backend {
		return NewFPGASim(workers, posit.Posit16)
	})
}

// FPGASim models StreamBrain's HLS FPGA backend at the numerical level: the
// derived parameters (weights and biases) are stored in a reduced posit
// representation, exactly the "reduced/different numerical representation
// (e.g., Posits)" exploration §III-A describes for the FPGA target. Compute
// runs on the parallel CPU kernels (we are simulating the datapath's
// numerics, not its clock), so the observable effect — and what the
// precision ablation measures — is the accuracy impact of posit-quantized
// parameters on the full training loop.
//
// Traces stay in float64: on the real device they are the accumulators,
// which HLS designs keep in wide fixed-point precisely because accumulating
// in the storage format diverges. Quantizing only the derived parameters
// mirrors that design split.
type FPGASim struct {
	dev    *Parallel[float64]
	format posit.Format
}

// NewFPGASim returns an FPGA simulator storing parameters in the given posit
// format.
func NewFPGASim(workers int, format posit.Format) *FPGASim {
	if err := format.Validate(); err != nil {
		panic(err)
	}
	return &FPGASim{dev: NewParallel(workers), format: format}
}

// Name implements Backend.
func (f *FPGASim) Name() string { return "fpgasim" }

// Workers implements Backend.
func (f *FPGASim) Workers() int { return f.dev.Workers() }

// Format returns the posit storage format in use.
func (f *FPGASim) Format() posit.Format { return f.format }

// MatMul implements Backend.
func (f *FPGASim) MatMul(dst, a, b *tensor.Matrix) { f.dev.MatMul(dst, a, b) }

// MatMulATB implements Backend.
func (f *FPGASim) MatMulATB(dst, a, b *tensor.Matrix) { f.dev.MatMulATB(dst, a, b) }

// OneHotMatMul implements Backend.
func (f *FPGASim) OneHotMatMul(dst *tensor.Matrix, idx [][]int32, w *tensor.Matrix) {
	f.dev.OneHotMatMul(dst, idx, w)
}

// AddBias implements Backend.
func (f *FPGASim) AddBias(m *tensor.Matrix, bias []float64) { f.dev.AddBias(m, bias) }

// SoftmaxGroups implements Backend.
func (f *FPGASim) SoftmaxGroups(m *tensor.Matrix, groups, width int, temperature float64) {
	f.dev.SoftmaxGroups(m, groups, width, temperature)
}

// Lerp implements Backend.
func (f *FPGASim) Lerp(dst, src []float64, t float64) { f.dev.Lerp(dst, src, t) }

// LerpMatrix implements Backend.
func (f *FPGASim) LerpMatrix(dst, src *tensor.Matrix, t float64) { f.dev.LerpMatrix(dst, src, t) }

// OneHotMeanLerp implements Backend.
func (f *FPGASim) OneHotMeanLerp(ci []float64, idx [][]int32, t float64) {
	f.dev.OneHotMeanLerp(ci, idx, t)
}

// OneHotOuterLerp implements Backend.
func (f *FPGASim) OneHotOuterLerp(cij *tensor.Matrix, idx [][]int32, act *tensor.Matrix, t float64) {
	f.dev.OneHotOuterLerp(cij, idx, act, t)
}

// OuterLerp implements Backend.
func (f *FPGASim) OuterLerp(cij *tensor.Matrix, a, b *tensor.Matrix, t float64) {
	f.dev.OuterLerp(cij, a, b, t)
}

// UpdateWeights implements Backend: the float64 weight recompute followed by
// posit storage quantization.
func (f *FPGASim) UpdateWeights(w *tensor.Matrix, ci, cj []float64, cij *tensor.Matrix,
	mask []bool, fi, mi, h, m int, eps float64) {
	f.dev.UpdateWeights(w, ci, cj, cij, mask, fi, mi, h, m, eps)
	f.dev.parallelFor(w.Rows, func(lo, hi int) {
		f.format.QuantizeSlice(w.Data[lo*w.Cols : hi*w.Cols])
	})
}

// UpdateBias implements Backend with posit storage quantization.
func (f *FPGASim) UpdateBias(bias, kbi, cj []float64, eps float64) {
	f.dev.UpdateBias(bias, kbi, cj, eps)
	f.format.QuantizeSlice(bias)
}
