package backend

import (
	"fmt"
	"sync"
	"unsafe"

	"streambrain/internal/tensor"
)

func init() {
	Register("gpusim", func(workers int) Backend { return NewGPUSim(workers, PolicyOffloaded) })
	Register32("gpusim", func(workers int) Backend32 {
		return NewGPUSimOf[float32](workers, PolicyOffloaded)
	})
}

// TransferPolicy selects how the GPU simulator accounts host↔device traffic.
type TransferPolicy int

const (
	// PolicyOffloaded models StreamBrain's CUDA backend: model state
	// (weights, biases, traces) is device-resident, so only per-batch inputs
	// are uploaded and per-batch outputs downloaded. This is the design the
	// paper credits with removing Amdahl serialization points (§III-A).
	PolicyOffloaded TransferPolicy = iota
	// PolicyChatty models a naive accelerator port: every kernel call
	// uploads all operands and downloads all results. The offload ablation
	// bench contrasts the two policies' transfer volumes.
	PolicyChatty
)

// String implements fmt.Stringer.
func (p TransferPolicy) String() string {
	switch p {
	case PolicyOffloaded:
		return "offloaded"
	case PolicyChatty:
		return "chatty"
	}
	return fmt.Sprintf("TransferPolicy(%d)", int(p))
}

// TransferStats accumulates the modeled device traffic.
type TransferStats struct {
	KernelLaunches int64
	BytesH2D       int64 // host → device
	BytesD2H       int64 // device → host
}

// gpuLedger is the device model shared by a simulator and its other-
// precision companion (see Kernels32): one policy, one transfer ledger, so
// a mixed-precision model (float64 training state, float32 forward path)
// reports all of its traffic through the simulator the caller holds.
type gpuLedger struct {
	mu     sync.Mutex
	policy TransferPolicy
	stats  TransferStats
}

// GPUSim simulates a fully-offloaded accelerator backend. Compute is executed
// by the Parallel kernels (a dedicated "device" worker team); what makes it a
// GPU model is the buffer-residency ledger: the simulator tracks which
// buffers live on the device and charges H2D/D2H transfer bytes according to
// the active TransferPolicy. Benchmarks read the ledger to reproduce the
// paper's offload-vs-chatty argument quantitatively.
//
// Transfer bytes are charged at sizeof(T) per element — the float32
// instantiation moves exactly half the bytes of the float64 one for the same
// kernel sequence, which is the memory-bandwidth half of the paper's
// reduced-precision argument (one-hot index uploads stay 4 bytes/index at
// every precision; see idxBytes).
type GPUSim[T tensor.Float] struct {
	dev *Parallel[T]
	led *gpuLedger

	// step executes fused whole-layer offload (LayerStep) on the modeled
	// device — the full_cuda substitution: one launch per training step
	// instead of one per kernel.
	step *Fused[T]

	// resident is this precision's buffer set; it shares the ledger mutex
	// so companion simulators account atomically against one device model.
	resident map[*T]bool
}

// elemSize is the modeled per-element transfer cost: sizeof(T).
func elemSize[T tensor.Float]() int64 {
	var z T
	return int64(unsafe.Sizeof(z))
}

// NewGPUSim returns a float64 GPU simulator with the given device
// worker-team size.
func NewGPUSim(workers int, policy TransferPolicy) *GPUSim[float64] {
	return NewGPUSimOf[float64](workers, policy)
}

// NewGPUSimOf returns a GPU simulator of the given precision.
func NewGPUSimOf[T tensor.Float](workers int, policy TransferPolicy) *GPUSim[T] {
	return &GPUSim[T]{
		dev:      NewParallelOf[T](workers),
		led:      &gpuLedger{policy: policy},
		step:     NewFusedOf[T](workers),
		resident: make(map[*T]bool),
	}
}

// Name implements Kernels.
func (g *GPUSim[T]) Name() string { return "gpusim" }

// Workers implements Kernels.
func (g *GPUSim[T]) Workers() int { return g.dev.Workers() }

// Kernels32 returns a float32 simulator on the same modeled device: same
// worker team, same policy, same transfer ledger (its traffic shows up in
// this simulator's Stats). The reduced-precision core path (DESIGN.md §9)
// discovers it through this method, so a Precision=Float32 model on gpusim
// keeps its forward traffic visible to whoever holds the float64 handle.
func (g *GPUSim[T]) Kernels32() Backend32 {
	return &GPUSim[float32]{
		dev:      NewParallelOf[float32](g.dev.Workers()),
		led:      g.led,
		step:     NewFusedOf[float32](g.dev.Workers()),
		resident: make(map[*float32]bool),
	}
}

// SetPolicy switches the transfer-accounting policy (shared with
// companions).
func (g *GPUSim[T]) SetPolicy(p TransferPolicy) {
	g.led.mu.Lock()
	defer g.led.mu.Unlock()
	g.led.policy = p
}

// Stats returns a snapshot of the transfer ledger (companion traffic
// included).
func (g *GPUSim[T]) Stats() TransferStats {
	g.led.mu.Lock()
	defer g.led.mu.Unlock()
	return g.led.stats
}

// ResetStats clears the ledger (buffer residency is preserved).
func (g *GPUSim[T]) ResetStats() {
	g.led.mu.Lock()
	defer g.led.mu.Unlock()
	g.led.stats = TransferStats{}
}

// key identifies a buffer by the address of its first element; an empty
// buffer has no identity and is never charged.
func key[T tensor.Float](s []T) *T {
	if len(s) == 0 {
		return nil
	}
	return &s[0]
}

// MakeResident pins buffers to the device: they are uploaded once (charged
// now) and never again under PolicyOffloaded. The BCPNN trainer pins its
// weights, biases and traces at layer construction, mirroring cudaMalloc'd
// state in StreamBrain's CUDA backend.
func (g *GPUSim[T]) MakeResident(bufs ...[]T) {
	g.led.mu.Lock()
	defer g.led.mu.Unlock()
	for _, b := range bufs {
		k := key(b)
		if k == nil || g.resident[k] {
			continue
		}
		g.resident[k] = true
		g.led.stats.BytesH2D += elemSize[T]() * int64(len(b))
	}
}

// ChargeUpload charges an H2D transfer for buffers that were rewritten on
// the host while staying device-resident — the mixed-precision parameter
// refresh (core's sync32 recasts float64 W into the pinned float32 image on
// the host, then re-uploads it). Residency is unchanged: the buffers remain
// pinned, only the re-upload cost is recorded.
func (g *GPUSim[T]) ChargeUpload(bufs ...[]T) {
	g.led.mu.Lock()
	defer g.led.mu.Unlock()
	es := elemSize[T]()
	for _, b := range bufs {
		g.led.stats.BytesH2D += es * int64(len(b))
	}
}

// launch charges one kernel launch plus transfers for the operand buffers:
// ins are read by the kernel (H2D if not resident), outs are written (D2H if
// not resident). Under PolicyChatty residency is ignored and everything
// moves every call.
func (g *GPUSim[T]) launch(ins [][]T, outs [][]T) {
	g.led.mu.Lock()
	defer g.led.mu.Unlock()
	g.led.stats.KernelLaunches++
	es := elemSize[T]()
	for _, b := range ins {
		if g.led.policy == PolicyChatty || !g.resident[key(b)] {
			g.led.stats.BytesH2D += es * int64(len(b))
		}
	}
	for _, b := range outs {
		if g.led.policy == PolicyChatty || !g.resident[key(b)] {
			g.led.stats.BytesD2H += es * int64(len(b))
		}
	}
}

// idxBytes models the upload cost of a one-hot index batch. Indices are
// int32 positions, not matrix elements, so they cost 4 bytes each at every
// precision — reduced precision halves float traffic only.
func (g *GPUSim[T]) idxBytes(idx [][]int32) {
	var n int64
	for _, a := range idx {
		n += int64(4 * len(a))
	}
	g.led.mu.Lock()
	g.led.stats.BytesH2D += n
	g.led.mu.Unlock()
}

// partial is an operand charged at a modeled element count instead of its
// full buffer length — the sparse kernels move only active-block panels.
type partial[T tensor.Float] struct {
	buf   []T
	elems int64
}

// launchPartial is launch with per-operand element counts: one kernel launch,
// H2D for non-resident (or chatty) inputs, D2H for non-resident (or chatty)
// outputs, each charged at the operand's modeled element count. The sparse
// kernels route through it so the cost model charges only active blocks.
func (g *GPUSim[T]) launchPartial(ins, outs []partial[T]) {
	g.led.mu.Lock()
	defer g.led.mu.Unlock()
	g.led.stats.KernelLaunches++
	es := elemSize[T]()
	for _, p := range ins {
		if g.led.policy == PolicyChatty || !g.resident[key(p.buf)] {
			g.led.stats.BytesH2D += es * p.elems
		}
	}
	for _, p := range outs {
		if g.led.policy == PolicyChatty || !g.resident[key(p.buf)] {
			g.led.stats.BytesD2H += es * p.elems
		}
	}
}

// MatMul implements Kernels.
func (g *GPUSim[T]) MatMul(dst, a, b *tensor.Dense[T]) {
	g.launch([][]T{a.Data, b.Data}, [][]T{dst.Data})
	g.dev.MatMul(dst, a, b)
}

// MatMulATB implements Kernels.
func (g *GPUSim[T]) MatMulATB(dst, a, b *tensor.Dense[T]) {
	g.launch([][]T{a.Data, b.Data}, [][]T{dst.Data})
	g.dev.MatMulATB(dst, a, b)
}

// OneHotMatMul implements Kernels.
func (g *GPUSim[T]) OneHotMatMul(dst *tensor.Dense[T], idx [][]int32, w *tensor.Dense[T]) {
	g.idxBytes(idx)
	g.launch([][]T{w.Data}, [][]T{dst.Data})
	g.dev.OneHotMatMul(dst, idx, w)
}

// AddBias implements Kernels.
func (g *GPUSim[T]) AddBias(m *tensor.Dense[T], bias []T) {
	g.launch([][]T{bias}, [][]T{m.Data})
	g.dev.AddBias(m, bias)
}

// SoftmaxGroups implements Kernels.
func (g *GPUSim[T]) SoftmaxGroups(m *tensor.Dense[T], groups, width int, temperature float64) {
	g.launch(nil, [][]T{m.Data})
	g.dev.SoftmaxGroups(m, groups, width, temperature)
}

// Lerp implements Kernels.
func (g *GPUSim[T]) Lerp(dst, src []T, t float64) {
	g.launch([][]T{src}, [][]T{dst})
	g.dev.Lerp(dst, src, t)
}

// LerpMatrix implements Kernels.
func (g *GPUSim[T]) LerpMatrix(dst, src *tensor.Dense[T], t float64) {
	g.launch([][]T{src.Data}, [][]T{dst.Data})
	g.dev.LerpMatrix(dst, src, t)
}

// OneHotMeanLerp implements Kernels.
func (g *GPUSim[T]) OneHotMeanLerp(ci []T, idx [][]int32, t float64) {
	g.idxBytes(idx)
	g.launch(nil, [][]T{ci})
	g.dev.OneHotMeanLerp(ci, idx, t)
}

// OneHotOuterLerp implements Kernels.
func (g *GPUSim[T]) OneHotOuterLerp(cij *tensor.Dense[T], idx [][]int32, act *tensor.Dense[T], t float64) {
	g.idxBytes(idx)
	g.launch([][]T{act.Data}, [][]T{cij.Data})
	g.dev.OneHotOuterLerp(cij, idx, act, t)
}

// OuterLerp implements Kernels.
func (g *GPUSim[T]) OuterLerp(cij *tensor.Dense[T], a, b *tensor.Dense[T], t float64) {
	g.launch([][]T{a.Data, b.Data}, [][]T{cij.Data})
	g.dev.OuterLerp(cij, a, b, t)
}

// UpdateWeights implements Kernels.
func (g *GPUSim[T]) UpdateWeights(w *tensor.Dense[T], ci, cj []T, cij *tensor.Dense[T],
	mask []bool, fi, mi, h, m int, eps float64) {
	g.launch([][]T{ci, cj, cij.Data}, [][]T{w.Data})
	g.dev.UpdateWeights(w, ci, cj, cij, mask, fi, mi, h, m, eps)
}

// UpdateBias implements Kernels.
func (g *GPUSim[T]) UpdateBias(bias, kbi, cj []T, eps float64) {
	g.launch([][]T{kbi, cj}, [][]T{bias})
	g.dev.UpdateBias(bias, kbi, cj, eps)
}

// full returns a partial operand charged at its whole buffer length.
func full[T tensor.Float](b []T) partial[T] {
	return partial[T]{buf: b, elems: int64(len(b))}
}

// blocksOf returns a partial operand for a block-tiled matrix (W or Cij),
// charged at the index's active-element count: the modeled kernel gathers and
// scatters only the active (input HCU × hidden HCU) panels.
func blocksOf[T tensor.Float](m *tensor.Dense[T], bi *tensor.BlockIndex) partial[T] {
	return partial[T]{buf: m.Data, elems: bi.ActiveElems()}
}

// OneHotMatMulSparse implements Kernels. One launch; the weight read is
// charged at the active-block element count only.
func (g *GPUSim[T]) OneHotMatMulSparse(dst *tensor.Dense[T], idx [][]int32, w *tensor.Dense[T],
	bi *tensor.BlockIndex) {
	g.idxBytes(idx)
	g.launchPartial([]partial[T]{blocksOf(w, bi)}, []partial[T]{full(dst.Data)})
	g.dev.OneHotMatMulSparse(dst, idx, w, bi)
}

// OneHotOuterLerpSparse implements Kernels. The joint-trace write moves only
// the active blocks — silent blocks are frozen, so the modeled kernel never
// touches them.
func (g *GPUSim[T]) OneHotOuterLerpSparse(cij *tensor.Dense[T], idx [][]int32,
	act *tensor.Dense[T], t float64, bi *tensor.BlockIndex) {
	g.idxBytes(idx)
	g.launchPartial([]partial[T]{full(act.Data)}, []partial[T]{blocksOf(cij, bi)})
	g.dev.OneHotOuterLerpSparse(cij, idx, act, t, bi)
}

// UpdateWeightsSparse implements Kernels. Both the joint-trace read and the
// weight write are charged at the active-block element count.
func (g *GPUSim[T]) UpdateWeightsSparse(w *tensor.Dense[T], ci, cj []T, cij *tensor.Dense[T],
	bi *tensor.BlockIndex, eps float64) {
	g.launchPartial([]partial[T]{full(ci), full(cj), blocksOf(cij, bi)},
		[]partial[T]{blocksOf(w, bi)})
	g.dev.UpdateWeightsSparse(w, ci, cj, cij, bi, eps)
}

// LayerStep implements LayerStepper: the whole-layer offload the paper's
// full_cuda backend performs. The entire training step is one device launch;
// with the model state resident (the trainer pins it at construction) the
// only H2D traffic under PolicyOffloaded is the one-hot index batch plus any
// pre-drawn support noise, and nothing comes back — the activations are
// device scratch consumed in-pass, never downloaded. The composed sequence
// for the same step costs six-plus launches and repeated index uploads.
func (g *GPUSim[T]) LayerStep(idx [][]int32, act *tensor.Dense[T], ci, cj []T,
	cij, w *tensor.Dense[T], bias []T, mask []bool, geom LayerGeom, hyper LayerHyper[T]) {
	g.idxBytes(idx)
	if bi := hyper.Blocks; bi != nil {
		// Block-sparse regime: W and Cij move (and are rewritten) only in
		// their active panels; the short vectors move whole as before.
		ins := []partial[T]{blocksOf(w, bi), full(bias), full(ci), full(cj),
			blocksOf(cij, bi), full(hyper.Kbi)}
		if hyper.Noise != nil {
			ins = append(ins, full(hyper.Noise))
		}
		outs := []partial[T]{full(ci), full(cj), blocksOf(cij, bi),
			blocksOf(w, bi), full(bias), full(hyper.Kbi)}
		g.launchPartial(ins, outs)
	} else {
		ins := [][]T{w.Data, bias, ci, cj, cij.Data, hyper.Kbi}
		if hyper.Noise != nil {
			ins = append(ins, hyper.Noise)
		}
		outs := [][]T{ci, cj, cij.Data, w.Data, bias, hyper.Kbi}
		g.launch(ins, outs)
	}
	g.step.LayerStep(idx, act, ci, cj, cij, w, bias, mask, geom, hyper)
}
