package backend

import (
	"fmt"
	"sync"

	"streambrain/internal/tensor"
)

func init() {
	Register("gpusim", func(workers int) Backend { return NewGPUSim(workers, PolicyOffloaded) })
}

// TransferPolicy selects how the GPU simulator accounts host↔device traffic.
type TransferPolicy int

const (
	// PolicyOffloaded models StreamBrain's CUDA backend: model state
	// (weights, biases, traces) is device-resident, so only per-batch inputs
	// are uploaded and per-batch outputs downloaded. This is the design the
	// paper credits with removing Amdahl serialization points (§III-A).
	PolicyOffloaded TransferPolicy = iota
	// PolicyChatty models a naive accelerator port: every kernel call
	// uploads all operands and downloads all results. The offload ablation
	// bench contrasts the two policies' transfer volumes.
	PolicyChatty
)

// String implements fmt.Stringer.
func (p TransferPolicy) String() string {
	switch p {
	case PolicyOffloaded:
		return "offloaded"
	case PolicyChatty:
		return "chatty"
	}
	return fmt.Sprintf("TransferPolicy(%d)", int(p))
}

// TransferStats accumulates the modeled device traffic.
type TransferStats struct {
	KernelLaunches int64
	BytesH2D       int64 // host → device
	BytesD2H       int64 // device → host
}

// GPUSim simulates a fully-offloaded accelerator backend. Compute is executed
// by the Parallel kernels (a dedicated "device" worker team); what makes it a
// GPU model is the buffer-residency ledger: the simulator tracks which
// buffers live on the device and charges H2D/D2H transfer bytes according to
// the active TransferPolicy. Benchmarks read the ledger to reproduce the
// paper's offload-vs-chatty argument quantitatively.
type GPUSim struct {
	dev    *Parallel
	policy TransferPolicy

	mu       sync.Mutex
	resident map[*float64]bool
	stats    TransferStats
}

// NewGPUSim returns a GPU simulator with the given device worker-team size.
func NewGPUSim(workers int, policy TransferPolicy) *GPUSim {
	return &GPUSim{
		dev:      NewParallel(workers),
		policy:   policy,
		resident: make(map[*float64]bool),
	}
}

// Name implements Backend.
func (g *GPUSim) Name() string { return "gpusim" }

// Workers implements Backend.
func (g *GPUSim) Workers() int { return g.dev.Workers() }

// SetPolicy switches the transfer-accounting policy.
func (g *GPUSim) SetPolicy(p TransferPolicy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.policy = p
}

// Stats returns a snapshot of the transfer ledger.
func (g *GPUSim) Stats() TransferStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// ResetStats clears the ledger (buffer residency is preserved).
func (g *GPUSim) ResetStats() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stats = TransferStats{}
}

// key identifies a buffer by the address of its first element; an empty
// buffer has no identity and is never charged.
func key(s []float64) *float64 {
	if len(s) == 0 {
		return nil
	}
	return &s[0]
}

// MakeResident pins buffers to the device: they are uploaded once (charged
// now) and never again under PolicyOffloaded. The BCPNN trainer pins its
// weights, biases and traces at layer construction, mirroring cudaMalloc'd
// state in StreamBrain's CUDA backend.
func (g *GPUSim) MakeResident(bufs ...[]float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, b := range bufs {
		k := key(b)
		if k == nil || g.resident[k] {
			continue
		}
		g.resident[k] = true
		g.stats.BytesH2D += int64(8 * len(b))
	}
}

// launch charges one kernel launch plus transfers for the operand buffers:
// ins are read by the kernel (H2D if not resident), outs are written (D2H if
// not resident). Under PolicyChatty residency is ignored and everything
// moves every call.
func (g *GPUSim) launch(ins [][]float64, outs [][]float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stats.KernelLaunches++
	for _, b := range ins {
		if g.policy == PolicyChatty || !g.resident[key(b)] {
			g.stats.BytesH2D += int64(8 * len(b))
		}
	}
	for _, b := range outs {
		if g.policy == PolicyChatty || !g.resident[key(b)] {
			g.stats.BytesD2H += int64(8 * len(b))
		}
	}
}

// idxBytes models the upload cost of a one-hot index batch (4 bytes/index).
func (g *GPUSim) idxBytes(idx [][]int32) {
	var n int64
	for _, a := range idx {
		n += int64(4 * len(a))
	}
	g.mu.Lock()
	g.stats.BytesH2D += n
	g.mu.Unlock()
}

// MatMul implements Backend.
func (g *GPUSim) MatMul(dst, a, b *tensor.Matrix) {
	g.launch([][]float64{a.Data, b.Data}, [][]float64{dst.Data})
	g.dev.MatMul(dst, a, b)
}

// MatMulATB implements Backend.
func (g *GPUSim) MatMulATB(dst, a, b *tensor.Matrix) {
	g.launch([][]float64{a.Data, b.Data}, [][]float64{dst.Data})
	g.dev.MatMulATB(dst, a, b)
}

// OneHotMatMul implements Backend.
func (g *GPUSim) OneHotMatMul(dst *tensor.Matrix, idx [][]int32, w *tensor.Matrix) {
	g.idxBytes(idx)
	g.launch([][]float64{w.Data}, [][]float64{dst.Data})
	g.dev.OneHotMatMul(dst, idx, w)
}

// AddBias implements Backend.
func (g *GPUSim) AddBias(m *tensor.Matrix, bias []float64) {
	g.launch([][]float64{bias}, [][]float64{m.Data})
	g.dev.AddBias(m, bias)
}

// SoftmaxGroups implements Backend.
func (g *GPUSim) SoftmaxGroups(m *tensor.Matrix, groups, width int, temperature float64) {
	g.launch(nil, [][]float64{m.Data})
	g.dev.SoftmaxGroups(m, groups, width, temperature)
}

// Lerp implements Backend.
func (g *GPUSim) Lerp(dst, src []float64, t float64) {
	g.launch([][]float64{src}, [][]float64{dst})
	g.dev.Lerp(dst, src, t)
}

// LerpMatrix implements Backend.
func (g *GPUSim) LerpMatrix(dst, src *tensor.Matrix, t float64) {
	g.launch([][]float64{src.Data}, [][]float64{dst.Data})
	g.dev.LerpMatrix(dst, src, t)
}

// OneHotMeanLerp implements Backend.
func (g *GPUSim) OneHotMeanLerp(ci []float64, idx [][]int32, t float64) {
	g.idxBytes(idx)
	g.launch(nil, [][]float64{ci})
	g.dev.OneHotMeanLerp(ci, idx, t)
}

// OneHotOuterLerp implements Backend.
func (g *GPUSim) OneHotOuterLerp(cij *tensor.Matrix, idx [][]int32, act *tensor.Matrix, t float64) {
	g.idxBytes(idx)
	g.launch([][]float64{act.Data}, [][]float64{cij.Data})
	g.dev.OneHotOuterLerp(cij, idx, act, t)
}

// OuterLerp implements Backend.
func (g *GPUSim) OuterLerp(cij *tensor.Matrix, a, b *tensor.Matrix, t float64) {
	g.launch([][]float64{a.Data, b.Data}, [][]float64{cij.Data})
	g.dev.OuterLerp(cij, a, b, t)
}

// UpdateWeights implements Backend.
func (g *GPUSim) UpdateWeights(w *tensor.Matrix, ci, cj []float64, cij *tensor.Matrix,
	mask []bool, fi, mi, h, m int, eps float64) {
	g.launch([][]float64{ci, cj, cij.Data}, [][]float64{w.Data})
	g.dev.UpdateWeights(w, ci, cj, cij, mask, fi, mi, h, m, eps)
}

// UpdateBias implements Backend.
func (g *GPUSim) UpdateBias(bias, kbi, cj []float64, eps float64) {
	g.launch([][]float64{kbi, cj}, [][]float64{bias})
	g.dev.UpdateBias(bias, kbi, cj, eps)
}
