package backend

import "math"

// Bit-exact natural log for the fused hot loop.
//
// The fused LayerStep is transcendental-bound: re-deriving W touches every
// Cij element with a log, and on one core math.Log's call overhead and serial
// polynomial dominate the step. fastLog4 reimplements math.Log's exact
// arithmetic (same reduction, same Remez polynomial, same rounding order) with
// the frexp bit-twiddled inline and four independent lanes interleaved, so the
// four divisions and polynomial chains overlap in the pipeline instead of
// serializing. The results are bit-identical to math.Log for every input —
// lanes with zero, subnormal, negative, or non-finite inputs fall back to
// math.Log — which keeps the fused backend's bit-exactness contract with the
// composed kernels (fused_test.go, core's backend-agreement test) intact.

const (
	ln2Hi = 6.93147180369123816490e-01
	ln2Lo = 1.90821492927058770002e-10
	lgL1  = 6.666666666666735130e-01
	lgL2  = 3.999999999940941908e-01
	lgL3  = 2.857142874366239149e-01
	lgL4  = 2.222219843214978396e-01
	lgL5  = 1.818357216161805012e-01
	lgL6  = 1.531383769920937332e-01
	lgL7  = 1.479819860511658591e-01

	// sqrtHalfMant is the mantissa field of √2/2. frexp's "halve the exponent
	// boundary" branch (f < √2/2 → f *= 2, k--) compares equal-exponent
	// values, so it reduces to an integer compare on mantissas — computed
	// branchlessly below because the data-dependent branch mispredicts on
	// real trace values.
	sqrtHalfMant = uint64(0x6A09E667F3BCD)
)

// fastLog returns math.Log(x) bit-exactly. The fast path covers positive
// normal finite x (everything the trace floors max(·,eps²) can produce);
// other inputs take the stdlib.
func fastLog(x float64) float64 {
	b := math.Float64bits(x)
	if e := b >> 52 & 0x7ff; e == 0 || e == 0x7ff || b>>63 != 0 {
		return math.Log(x)
	}
	m := b & (1<<52 - 1)
	adj := (m - sqrtHalfMant) >> 63 // 1 iff the mantissa is below √2/2's
	ki := int(b>>52&0x7ff) - 1022 - int(adj)
	f := math.Float64frombits(m|(0x3fe+adj)<<52) - 1
	k := float64(ki)
	s := f / (2 + f)
	s2 := s * s
	s4 := s2 * s2
	t1 := s2 * (lgL1 + s4*(lgL3+s4*(lgL5+s4*lgL7)))
	t2 := s4 * (lgL2 + s4*(lgL4+s4*lgL6))
	hfsq := 0.5 * f * f
	return k*ln2Hi - ((hfsq - (s*(hfsq+(t1+t2)) + k*ln2Lo)) - f)
}

// fastLog4 returns (math.Log(x0), …, math.Log(x3)) bit-exactly, computing the
// four lanes interleaved. Any lane outside the positive-normal fast path is
// recomputed via the stdlib before returning.
func fastLog4(x0, x1, x2, x3 float64) (float64, float64, float64, float64) {
	b0 := math.Float64bits(x0)
	b1 := math.Float64bits(x1)
	b2 := math.Float64bits(x2)
	b3 := math.Float64bits(x3)
	if (b0|b1|b2|b3)>>63 != 0 ||
		!normalExp(b0) || !normalExp(b1) || !normalExp(b2) || !normalExp(b3) {
		return math.Log(x0), math.Log(x1), math.Log(x2), math.Log(x3)
	}
	m0 := b0 & (1<<52 - 1)
	m1 := b1 & (1<<52 - 1)
	m2 := b2 & (1<<52 - 1)
	m3 := b3 & (1<<52 - 1)
	a0 := (m0 - sqrtHalfMant) >> 63
	a1 := (m1 - sqrtHalfMant) >> 63
	a2 := (m2 - sqrtHalfMant) >> 63
	a3 := (m3 - sqrtHalfMant) >> 63
	k0 := int(b0>>52&0x7ff) - 1022 - int(a0)
	k1 := int(b1>>52&0x7ff) - 1022 - int(a1)
	k2 := int(b2>>52&0x7ff) - 1022 - int(a2)
	k3 := int(b3>>52&0x7ff) - 1022 - int(a3)
	f0 := math.Float64frombits(m0|(0x3fe+a0)<<52) - 1
	f1 := math.Float64frombits(m1|(0x3fe+a1)<<52) - 1
	f2 := math.Float64frombits(m2|(0x3fe+a2)<<52) - 1
	f3 := math.Float64frombits(m3|(0x3fe+a3)<<52) - 1
	s0 := f0 / (2 + f0)
	s1 := f1 / (2 + f1)
	s2 := f2 / (2 + f2)
	s3 := f3 / (2 + f3)
	q0 := s0 * s0
	q1 := s1 * s1
	q2 := s2 * s2
	q3 := s3 * s3
	r0 := q0 * q0
	r1 := q1 * q1
	r2 := q2 * q2
	r3 := q3 * q3
	t10 := q0 * (lgL1 + r0*(lgL3+r0*(lgL5+r0*lgL7)))
	t11 := q1 * (lgL1 + r1*(lgL3+r1*(lgL5+r1*lgL7)))
	t12 := q2 * (lgL1 + r2*(lgL3+r2*(lgL5+r2*lgL7)))
	t13 := q3 * (lgL1 + r3*(lgL3+r3*(lgL5+r3*lgL7)))
	t20 := r0 * (lgL2 + r0*(lgL4+r0*lgL6))
	t21 := r1 * (lgL2 + r1*(lgL4+r1*lgL6))
	t22 := r2 * (lgL2 + r2*(lgL4+r2*lgL6))
	t23 := r3 * (lgL2 + r3*(lgL4+r3*lgL6))
	h0 := 0.5 * f0 * f0
	h1 := 0.5 * f1 * f1
	h2 := 0.5 * f2 * f2
	h3 := 0.5 * f3 * f3
	y0 := float64(k0)*ln2Hi - ((h0 - (s0*(h0+(t10+t20)) + float64(k0)*ln2Lo)) - f0)
	y1 := float64(k1)*ln2Hi - ((h1 - (s1*(h1+(t11+t21)) + float64(k1)*ln2Lo)) - f1)
	y2 := float64(k2)*ln2Hi - ((h2 - (s2*(h2+(t12+t22)) + float64(k2)*ln2Lo)) - f2)
	y3 := float64(k3)*ln2Hi - ((h3 - (s3*(h3+(t13+t23)) + float64(k3)*ln2Lo)) - f3)
	return y0, y1, y2, y3
}

// normalExp reports whether the exponent field of b is that of a normal
// finite float64.
func normalExp(b uint64) bool {
	e := b >> 52 & 0x7ff
	return e != 0 && e != 0x7ff
}
