package backend

import "streambrain/internal/tensor"

// This file defines the whole-layer offload capability (DESIGN.md §14) — the
// Go analogue of StreamBrain's `full_cuda` backend, which ships entire layer
// updates to the device instead of issuing the six-plus kernel calls the
// composed training step needs. A backend that can run the complete
// support→softmax→trace→homeostasis→weight-update sequence as one pass
// advertises it by implementing LayerStepper; the trainer type-asserts and
// dispatches, and falls back to the composed kernel sequence otherwise. The
// composed sequence therefore stays the contract: LayerStep must compute the
// same function (see the fused≡composed property tests for the tolerance).

// LayerGeom fixes the modular geometry of one BCPNN hidden layer for a fused
// step: Fi input hypercolumns of Mi units each feeding H hidden HCUs of M
// MCUs each. The receptive-field mask, when present, gates Fi×H hypercolumn
// blocks exactly as in Kernels.UpdateWeights.
type LayerGeom struct {
	Fi, Mi int
	H, M   int
}

// Inputs returns the total input unit count (Fi·Mi).
func (g LayerGeom) Inputs() int { return g.Fi * g.Mi }

// Units returns the total hidden unit count (H·M).
func (g LayerGeom) Units() int { return g.H * g.M }

// LayerHyper carries the per-step schedule of a fused layer step: the scalar
// hyperparameters of the composed sequence plus the two batch-varying vectors
// that the composed path threads through core instead of the kernel calls.
//
// Kbi is the homeostatic bias gain (length H·M). LayerStep applies the
// floored-bias homeostasis rule in-pass — Kbi is read AND rewritten — because
// the composed order (trace update → homeostasis → bias refresh) is only
// reproducible if the gain update happens between the Cj update and the bias
// recompute.
//
// Noise, when non-nil, is the pre-generated support noise of this batch
// (row-major batch×H·M, added to the support after the bias and before the
// softmax). The composed path draws it inline from the layer RNG; a fused
// step cannot, because worker sharding would make draw order — and therefore
// training — nondeterministic. The caller draws in row-major order and the
// step adds, which reproduces the composed values exactly. Nil means no
// support noise (prediction-noise-free batches, the steady state).
type LayerHyper[T tensor.Float] struct {
	Taupdt       float64 // trace EMA rate
	Taubdt       float64 // homeostatic gain relaxation rate
	PMinFraction float64 // starvation threshold numerator (pmin = PMinFraction/M)
	Temperature  float64 // softmax temperature
	Eps          float64 // probability floor for the log-odds parameters
	Kbi          []T     // homeostatic gain, updated in-pass
	Noise        []T     // optional pre-drawn support noise, batch×(H·M) row-major

	// Blocks, when non-nil, selects the block-sparse compute regime
	// (DESIGN.md §15): the step gathers, decays, accumulates and re-derives
	// only the active (input HCU × hidden HCU) blocks of the index. Silent
	// joint-trace blocks are frozen (not decayed) and silent weight blocks
	// are not written — the caller guarantees they hold zeros by running a
	// full masked refresh whenever the mask changes. Blocks must agree with
	// geom and, when both are given, with mask.
	Blocks *tensor.BlockIndex
}

// LayerStepper is the optional whole-layer offload capability. LayerStep
// performs one complete unsupervised BCPNN batch step:
//
//	act  = softmax_groups(onehot(idx)·w + bias [+ noise])   (forward)
//	ci   = lerp(ci,  mean_s onehot(idx))                    (input trace)
//	cj   = lerp(cj,  colmeans(act))                         (unit trace)
//	cij  = lerp(cij, mean_s onehot(idx) ⊗ act)              (joint trace)
//	kbi  = homeostasis(kbi, cj)                             (gain update)
//	w    = log-odds(ci, cj, cij) gated by mask              (in-pass refresh)
//	bias = kbi · log(max(cj, eps))                          (in-pass refresh)
//
// equivalent to the composed kernel sequence but in as few passes as the
// implementation can manage: the fused CPU backend walks Cij and W once in
// cache-sized row blocks, the offload simulators charge one kernel launch for
// the whole step. act is an output (the trainer's scratch activation buffer,
// batch×H·M); all other buffers are read-write model state.
//
// Implementations may keep internal scratch — LayerStep, like every Kernels
// method, is never called concurrently on one backend value.
type LayerStepper[T tensor.Float] interface {
	LayerStep(idx [][]int32, act *tensor.Dense[T], ci, cj []T, cij, w *tensor.Dense[T],
		bias []T, mask []bool, geom LayerGeom, hyper LayerHyper[T])
}
