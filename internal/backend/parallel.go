package backend

import (
	"runtime"
	"sync"

	"streambrain/internal/tensor"
)

func init() {
	Register("parallel", func(workers int) Backend { return NewParallel(workers) })
}

// Parallel is the goroutine worker-team backend — the Go analogue of
// StreamBrain's OpenMP+SIMD CPU backend. Kernels are cache-blocked and
// sharded across a fixed worker count; inner loops are unit-stride and
// unrolled so the compiler can vectorize them.
type Parallel struct {
	workers int
	block   int
}

// NewParallel returns a Parallel backend with the given team size.
// workers <= 0 selects GOMAXPROCS.
func NewParallel(workers int) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel{workers: workers, block: tensor.DefaultBlock}
}

// SetBlock overrides the GEMM cache-block edge (for the blocking ablation).
func (p *Parallel) SetBlock(block int) { p.block = block }

// Name implements Backend.
func (p *Parallel) Name() string { return "parallel" }

// Workers implements Backend.
func (p *Parallel) Workers() int { return p.workers }

// parallelFor runs fn over [0,n) split into contiguous chunks, one per worker.
func (p *Parallel) parallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul implements Backend.
func (p *Parallel) MatMul(dst, a, b *tensor.Matrix) {
	tensor.MatMulParallel(dst, a, b, p.block, p.workers)
}

// MatMulATB implements Backend.
func (p *Parallel) MatMulATB(dst, a, b *tensor.Matrix) {
	tensor.MatMulATBParallel(dst, a, b, p.workers)
}

// OneHotMatMul implements Backend.
func (p *Parallel) OneHotMatMul(dst *tensor.Matrix, idx [][]int32, w *tensor.Matrix) {
	tensor.OneHotMatMulParallel(dst, idx, w, p.workers)
}

// AddBias implements Backend.
func (p *Parallel) AddBias(m *tensor.Matrix, bias []float64) {
	p.parallelFor(m.Rows, func(lo, hi int) { addBiasRange(m, bias, lo, hi) })
}

// SoftmaxGroups implements Backend.
func (p *Parallel) SoftmaxGroups(m *tensor.Matrix, groups, width int, temperature float64) {
	tensor.SoftmaxGroupsParallel(m, groups, width, temperature, p.workers)
}

// Lerp implements Backend.
func (p *Parallel) Lerp(dst, src []float64, t float64) {
	tensor.LerpParallel(dst, src, t, p.workers)
}

// LerpMatrix implements Backend.
func (p *Parallel) LerpMatrix(dst, src *tensor.Matrix, t float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("backend: LerpMatrix shape mismatch")
	}
	tensor.LerpParallel(dst.Data, src.Data, t, p.workers)
}

// OneHotMeanLerp implements Backend. The Ci trace is short (total input
// units); sharding it would cost more than it saves, so it stays serial.
func (p *Parallel) OneHotMeanLerp(ci []float64, idx [][]int32, t float64) {
	oneHotMeanLerp(ci, idx, t)
}

// OneHotOuterLerp implements Backend. The Cij trace is the largest state in
// the model (inputs × hidden units); it is sharded by trace row band so each
// worker owns a disjoint slice and no locking is needed.
func (p *Parallel) OneHotOuterLerp(cij *tensor.Matrix, idx [][]int32, act *tensor.Matrix, t float64) {
	if len(idx) == 0 {
		return
	}
	p.parallelFor(cij.Rows, func(lo, hi int) {
		oneHotOuterLerpRange(cij, idx, act, t, lo, hi)
	})
}

// OuterLerp implements Backend.
func (p *Parallel) OuterLerp(cij *tensor.Matrix, a, b *tensor.Matrix, t float64) {
	outerLerp(cij, a, b, t, func(dst, x, y *tensor.Matrix) {
		tensor.MatMulATBParallel(dst, x, y, p.workers)
	})
}

// UpdateWeights implements Backend.
func (p *Parallel) UpdateWeights(w *tensor.Matrix, ci, cj []float64, cij *tensor.Matrix,
	mask []bool, fi, mi, h, m int, eps float64) {
	p.parallelFor(w.Rows, func(lo, hi int) {
		updateWeightsRange(w, ci, cj, cij, mask, fi, mi, h, m, eps, lo, hi)
	})
}

// UpdateBias implements Backend.
func (p *Parallel) UpdateBias(bias, kbi, cj []float64, eps float64) {
	updateBias(bias, kbi, cj, eps)
}
