package backend

import (
	"runtime"
	"sync"

	"streambrain/internal/tensor"
)

func init() {
	Register("parallel", func(workers int) Backend { return NewParallel(workers) })
	Register32("parallel", func(workers int) Backend32 { return NewParallelOf[float32](workers) })
}

// Parallel is the goroutine worker-team backend — the Go analogue of
// StreamBrain's OpenMP+SIMD CPU backend. Kernels are cache-blocked and
// sharded across a fixed worker count; inner loops are unit-stride and
// dispatch to the AVX2+FMA microkernels where available, so the float32
// instantiation processes twice the lanes per instruction.
type Parallel[T tensor.Float] struct {
	workers int
	block   int
}

// NewParallel returns the float64 Parallel backend with the given team size.
// workers <= 0 selects GOMAXPROCS.
func NewParallel(workers int) *Parallel[float64] { return NewParallelOf[float64](workers) }

// NewParallelOf returns a Parallel backend of the given precision.
func NewParallelOf[T tensor.Float](workers int) *Parallel[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel[T]{workers: workers, block: tensor.DefaultBlock}
}

// SetBlock overrides the GEMM cache-block edge (for the blocking ablation).
func (p *Parallel[T]) SetBlock(block int) { p.block = block }

// Name implements Kernels.
func (p *Parallel[T]) Name() string { return "parallel" }

// Workers implements Kernels.
func (p *Parallel[T]) Workers() int { return p.workers }

// parallelFor runs fn over [0,n) split into contiguous chunks, one per worker.
func (p *Parallel[T]) parallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul implements Kernels.
func (p *Parallel[T]) MatMul(dst, a, b *tensor.Dense[T]) {
	tensor.MatMulParallel(dst, a, b, p.block, p.workers)
}

// MatMulATB implements Kernels.
func (p *Parallel[T]) MatMulATB(dst, a, b *tensor.Dense[T]) {
	tensor.MatMulATBParallel(dst, a, b, p.workers)
}

// OneHotMatMul implements Kernels.
func (p *Parallel[T]) OneHotMatMul(dst *tensor.Dense[T], idx [][]int32, w *tensor.Dense[T]) {
	tensor.OneHotMatMulParallel(dst, idx, w, p.workers)
}

// AddBias implements Kernels. The serial case skips parallelFor entirely:
// the closure it would take captures m and bias and escapes to the heap,
// which is the difference between 0 and 2 allocs/op on the predict hot path.
func (p *Parallel[T]) AddBias(m *tensor.Dense[T], bias []T) {
	if p.workers <= 1 || m.Rows <= 1 {
		addBiasRange(m, bias, 0, m.Rows)
		return
	}
	p.parallelFor(m.Rows, func(lo, hi int) { addBiasRange(m, bias, lo, hi) })
}

// SoftmaxGroups implements Kernels.
func (p *Parallel[T]) SoftmaxGroups(m *tensor.Dense[T], groups, width int, temperature float64) {
	tensor.SoftmaxGroupsParallel(m, groups, width, temperature, p.workers)
}

// Lerp implements Kernels.
func (p *Parallel[T]) Lerp(dst, src []T, t float64) {
	tensor.LerpParallel(dst, src, T(t), p.workers)
}

// LerpMatrix implements Kernels.
func (p *Parallel[T]) LerpMatrix(dst, src *tensor.Dense[T], t float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("backend: LerpMatrix shape mismatch")
	}
	tensor.LerpParallel(dst.Data, src.Data, T(t), p.workers)
}

// OneHotMeanLerp implements Kernels. The Ci trace is short (total input
// units); sharding it would cost more than it saves, so it stays serial.
func (p *Parallel[T]) OneHotMeanLerp(ci []T, idx [][]int32, t float64) {
	oneHotMeanLerp(ci, idx, t)
}

// OneHotOuterLerp implements Kernels. The Cij trace is the largest state in
// the model (inputs × hidden units); it is sharded by trace row band so each
// worker owns a disjoint slice and no locking is needed.
func (p *Parallel[T]) OneHotOuterLerp(cij *tensor.Dense[T], idx [][]int32, act *tensor.Dense[T], t float64) {
	if len(idx) == 0 {
		return
	}
	p.parallelFor(cij.Rows, func(lo, hi int) {
		oneHotOuterLerpRange(cij, idx, act, t, lo, hi)
	})
}

// OuterLerp implements Kernels.
func (p *Parallel[T]) OuterLerp(cij *tensor.Dense[T], a, b *tensor.Dense[T], t float64) {
	outerLerp(cij, a, b, t, func(dst, x, y *tensor.Dense[T]) {
		tensor.MatMulATBParallel(dst, x, y, p.workers)
	})
}

// UpdateWeights implements Kernels.
func (p *Parallel[T]) UpdateWeights(w *tensor.Dense[T], ci, cj []T, cij *tensor.Dense[T],
	mask []bool, fi, mi, h, m int, eps float64) {
	p.parallelFor(w.Rows, func(lo, hi int) {
		updateWeightsRange(w, ci, cj, cij, mask, fi, mi, h, m, eps, lo, hi)
	})
}

// UpdateBias implements Kernels.
func (p *Parallel[T]) UpdateBias(bias, kbi, cj []T, eps float64) {
	updateBias(bias, kbi, cj, eps)
}

// OneHotMatMulSparse implements Kernels.
func (p *Parallel[T]) OneHotMatMulSparse(dst *tensor.Dense[T], idx [][]int32, w *tensor.Dense[T],
	bi *tensor.BlockIndex) {
	tensor.OneHotMatMulSparseParallel(dst, idx, w, bi, p.workers)
}

// OneHotOuterLerpSparse implements Kernels. Sharded by trace row band like
// the dense kernel; the band split is row-aligned so every worker applies the
// shared sparse range helper to whole rows and the result is bit-identical at
// any worker count.
func (p *Parallel[T]) OneHotOuterLerpSparse(cij *tensor.Dense[T], idx [][]int32,
	act *tensor.Dense[T], t float64, bi *tensor.BlockIndex) {
	if len(idx) == 0 {
		return
	}
	p.parallelFor(cij.Rows, func(lo, hi int) {
		oneHotOuterLerpSparseRange(cij, idx, act, t, bi, lo, hi)
	})
}

// UpdateWeightsSparse implements Kernels.
func (p *Parallel[T]) UpdateWeightsSparse(w *tensor.Dense[T], ci, cj []T, cij *tensor.Dense[T],
	bi *tensor.BlockIndex, eps float64) {
	p.parallelFor(w.Rows, func(lo, hi int) {
		updateWeightsSparseRange(w, ci, cj, cij, bi, eps, lo, hi)
	})
}
