package backend_test

import (
	"fmt"
	"testing"

	"streambrain/internal/backend"
	"streambrain/internal/backend/backendtest"
	"streambrain/internal/tensor"
)

// sparseCandidates64 is the float64 kernel-set matrix the equivalence
// harness exercises: serial and parallel worker teams, the fused backend
// through both its composed kernels and its whole-layer LayerStep, and the
// GPU simulator (whose compute is the parallel/fused kernels plus the
// transfer ledger).
func sparseCandidates64() []backendtest.Candidate[float64] {
	var cs []backendtest.Candidate[float64]
	for _, w := range []int{1, 4} {
		cs = append(cs,
			backendtest.Candidate[float64]{
				Name: fmt.Sprintf("parallel-%d", w), Kernels: backend.MustNew("parallel", w)},
			backendtest.Candidate[float64]{
				Name: fmt.Sprintf("fused-%d", w), Kernels: backend.MustNew("fused", w)},
		)
		st := backend.MustNew("fused", w)
		cs = append(cs, backendtest.Candidate[float64]{
			Name: fmt.Sprintf("fused-%d-step", w), Kernels: st,
			Stepper: st.(backend.LayerStepper[float64])})
	}
	cs = append(cs, backendtest.Candidate[float64]{
		Name: "gpusim-4", Kernels: backend.MustNew("gpusim", 4)})
	gst := backend.MustNew("gpusim", 4)
	cs = append(cs, backendtest.Candidate[float64]{
		Name: "gpusim-4-step", Kernels: gst,
		Stepper: gst.(backend.LayerStepper[float64])})
	return cs
}

func sparseCandidates32() []backendtest.Candidate[float32] {
	var cs []backendtest.Candidate[float32]
	for _, w := range []int{1, 4} {
		cs = append(cs,
			backendtest.Candidate[float32]{
				Name: fmt.Sprintf("parallel-%d", w), Kernels: backend.MustNew32("parallel", w)},
			backendtest.Candidate[float32]{
				Name: fmt.Sprintf("fused-%d", w), Kernels: backend.MustNew32("fused", w)},
		)
		st := backend.MustNew32("fused", w)
		cs = append(cs, backendtest.Candidate[float32]{
			Name: fmt.Sprintf("fused-%d-step", w), Kernels: st,
			Stepper: st.(backend.LayerStepper[float32])})
	}
	return cs
}

// TestSparseEquivalenceF64 is the block-sparse ≡ dense-masked property test
// at float64: multi-step seeded training simulations with mid-run mask
// swaps, across single- and multi-hypercolumn geometries. Cross-backend
// sparse results must be bit-exact everywhere (shared segment helpers);
// sparse vs dense-masked is bit-exact whenever the block segments take the
// same microkernel path as the dense row walk — M ≥ 16 (the SIMD dispatch
// threshold) with M ≡ 0 mod 4, or H = 1 where a dense row is one block, the
// regimes every real model is in (MCUs default to 100–300). A deliberate
// sub-threshold M drops block segments onto the scalar (double-rounded)
// microkernel while the dense row stays on FMA, and is bounded at ~1 ulp.
func TestSparseEquivalenceF64(t *testing.T) {
	cases := []struct {
		name string
		cfg  backendtest.Config
	}{
		{"lane-aligned", backendtest.Config{
			Geom: backendtest.Geometry{Fi: 6, Mi: 4, H: 3, M: 16},
			K:    3, Batch: 7, Steps: 6, SwapEvery: 2, Seed: 11,
			DenseTol: 0, CrossTol: 0}},
		{"multi-hcu", backendtest.Config{
			Geom: backendtest.Geometry{Fi: 10, Mi: 5, H: 4, M: 24},
			K:    4, Batch: 5, Steps: 5, SwapEvery: 3, Seed: 7,
			DenseTol: 0, CrossTol: 0}},
		{"single-hcu", backendtest.Config{
			Geom: backendtest.Geometry{Fi: 8, Mi: 3, H: 1, M: 10},
			K:    4, Batch: 6, Steps: 6, SwapEvery: 2, Seed: 5,
			DenseTol: 0, CrossTol: 0}},
		{"sub-threshold-m", backendtest.Config{
			Geom: backendtest.Geometry{Fi: 6, Mi: 4, H: 4, M: 5},
			K:    3, Batch: 7, Steps: 6, SwapEvery: 2, Seed: 3,
			DenseTol: 1e-12, CrossTol: 0}},
		{"dense-mask", backendtest.Config{ // K = Fi: every block active
			Geom: backendtest.Geometry{Fi: 5, Mi: 4, H: 2, M: 16},
			K:    5, Batch: 4, Steps: 4, SwapEvery: 0, Seed: 9,
			DenseTol: 0, CrossTol: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			backendtest.Run(t, tc.cfg, backend.MustNew("naive", 0), sparseCandidates64())
		})
	}
}

// TestSparseEquivalenceF32 is the float32 instantiation: the ISSUE contract
// is |Δ| ≤ 1e-5 against both the dense-masked reference and across kernel
// sets (the fused step runs its in-pass homeostasis at float32, which the
// float64-formulated reference only approximates).
func TestSparseEquivalenceF32(t *testing.T) {
	cases := []struct {
		name string
		cfg  backendtest.Config
	}{
		{"lane-aligned", backendtest.Config{
			Geom: backendtest.Geometry{Fi: 6, Mi: 4, H: 3, M: 8},
			K:    3, Batch: 7, Steps: 6, SwapEvery: 2, Seed: 11,
			DenseTol: 1e-5, CrossTol: 1e-5}},
		{"multi-hcu-odd-m", backendtest.Config{
			Geom: backendtest.Geometry{Fi: 10, Mi: 5, H: 4, M: 7},
			K:    4, Batch: 5, Steps: 5, SwapEvery: 3, Seed: 7,
			DenseTol: 1e-5, CrossTol: 1e-5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			backendtest.Run(t, tc.cfg, backend.MustNew32("naive", 0), sparseCandidates32())
		})
	}
}

// TestSparseKernelGeometryChecks: malformed operand shapes must panic, not
// read out of bounds.
func TestSparseKernelGeometryChecks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on sparse operand shape mismatch")
		}
	}()
	be := backend.MustNew("naive", 0)
	mask := make([]bool, 4*2)
	for i := range mask {
		mask[i] = true
	}
	bi := tensor.NewBlockIndex(mask, 4, 2, 2, 3) // tiles 8×6
	w := tensor.NewDense[float64](8, 6)
	dst := tensor.NewDense[float64](2, 10) // wrong width for the index
	be.OneHotMatMulSparse(dst, [][]int32{{0}, {2}}, w, bi)
}
