package backend

import (
	"math/rand"
	"testing"

	"streambrain/internal/posit"
	"streambrain/internal/tensor"
)

func TestFPGASimRegistered(t *testing.T) {
	be := MustNew("fpgasim", 2)
	if be.Name() != "fpgasim" || be.Workers() != 2 {
		t.Fatalf("bad fpgasim instance: %s/%d", be.Name(), be.Workers())
	}
}

func TestFPGASimWeightsArePositValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const fi, mi, h, m = 4, 3, 2, 5
	in, units := fi*mi, h*m
	ci := make([]float64, in)
	cj := make([]float64, units)
	for i := range ci {
		ci[i] = 0.05 + 0.9*rng.Float64()
	}
	for j := range cj {
		cj[j] = 0.05 + 0.9*rng.Float64()
	}
	cij := randProbMat(rng, in, units)
	f := NewFPGASim(2, posit.Posit16)
	w := tensor.NewMatrix(in, units)
	f.UpdateWeights(w, ci, cj, cij, nil, 0, 0, 0, 0, 1e-9)
	for i, v := range w.Data {
		if q := posit.Posit16.Quantize(v); q != v {
			t.Fatalf("weight %d = %v is not a posit16 value (requantizes to %v)", i, v, q)
		}
	}
	bias := make([]float64, units)
	kbi := make([]float64, units)
	for j := range kbi {
		kbi[j] = 1
	}
	f.UpdateBias(bias, kbi, cj, 1e-9)
	for j, v := range bias {
		if q := posit.Posit16.Quantize(v); q != v {
			t.Fatalf("bias %d = %v is not a posit16 value", j, v)
		}
	}
}

func TestFPGASimCloseToParallel(t *testing.T) {
	// Posit16 weights must track the float64 weights to ~1e-3 relative —
	// close enough that kernels agree within tolerance on a forward pass.
	rng := rand.New(rand.NewSource(2))
	const in, units = 12, 10
	ci := make([]float64, in)
	cj := make([]float64, units)
	for i := range ci {
		ci[i] = 0.05 + 0.9*rng.Float64()
	}
	for j := range cj {
		cj[j] = 0.05 + 0.9*rng.Float64()
	}
	cij := randProbMat(rng, in, units)
	ref := tensor.NewMatrix(in, units)
	MustNew("parallel", 2).UpdateWeights(ref, ci, cj, cij, nil, 0, 0, 0, 0, 1e-9)
	got := tensor.NewMatrix(in, units)
	NewFPGASim(2, posit.Posit16).UpdateWeights(got, ci, cj, cij, nil, 0, 0, 0, 0, 1e-9)
	if d := got.MaxAbsDiff(ref); d > 5e-3 {
		t.Fatalf("posit16 weights deviate by %g", d)
	}
	// posit8 deviates more — and must still be finite and ordered.
	got8 := tensor.NewMatrix(in, units)
	NewFPGASim(2, posit.Posit8).UpdateWeights(got8, ci, cj, cij, nil, 0, 0, 0, 0, 1e-9)
	d8 := got8.MaxAbsDiff(ref)
	d16 := got.MaxAbsDiff(ref)
	if d8 <= d16 {
		t.Fatalf("posit8 error %g not larger than posit16 error %g", d8, d16)
	}
}

func TestFPGASimComputeKernelsDelegate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 9, 7)
	b := randMat(rng, 7, 5)
	want := tensor.NewMatrix(9, 5)
	MustNew("naive", 0).MatMul(want, a, b)
	got := tensor.NewMatrix(9, 5)
	MustNew("fpgasim", 2).MatMul(got, a, b)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Fatalf("fpgasim MatMul diff %g (compute kernels must not quantize)", d)
	}
}

func TestNewFPGASimInvalidFormatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFPGASim(1, posit.Format{Bits: 64, ES: 1})
}
