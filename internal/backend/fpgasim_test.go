package backend

import (
	"math/rand"
	"testing"

	"streambrain/internal/posit"
	"streambrain/internal/tensor"
)

func TestFPGASimRegistered(t *testing.T) {
	be := MustNew("fpgasim", 2)
	if be.Name() != "fpgasim" || be.Workers() != 2 {
		t.Fatalf("bad fpgasim instance: %s/%d", be.Name(), be.Workers())
	}
}

func TestFPGASimWeightsArePositValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const fi, mi, h, m = 4, 3, 2, 5
	in, units := fi*mi, h*m
	ci := make([]float64, in)
	cj := make([]float64, units)
	for i := range ci {
		ci[i] = 0.05 + 0.9*rng.Float64()
	}
	for j := range cj {
		cj[j] = 0.05 + 0.9*rng.Float64()
	}
	cij := randProbMat(rng, in, units)
	f := NewFPGASim(2, posit.Posit16)
	w := tensor.NewMatrix(in, units)
	f.UpdateWeights(w, ci, cj, cij, nil, 0, 0, 0, 0, 1e-9)
	for i, v := range w.Data {
		if q := posit.Posit16.Quantize(v); q != v {
			t.Fatalf("weight %d = %v is not a posit16 value (requantizes to %v)", i, v, q)
		}
	}
	bias := make([]float64, units)
	kbi := make([]float64, units)
	for j := range kbi {
		kbi[j] = 1
	}
	f.UpdateBias(bias, kbi, cj, 1e-9)
	for j, v := range bias {
		if q := posit.Posit16.Quantize(v); q != v {
			t.Fatalf("bias %d = %v is not a posit16 value", j, v)
		}
	}
}

func TestFPGASimCloseToParallel(t *testing.T) {
	// Posit16 weights must track the float64 weights to ~1e-3 relative —
	// close enough that kernels agree within tolerance on a forward pass.
	rng := rand.New(rand.NewSource(2))
	const in, units = 12, 10
	ci := make([]float64, in)
	cj := make([]float64, units)
	for i := range ci {
		ci[i] = 0.05 + 0.9*rng.Float64()
	}
	for j := range cj {
		cj[j] = 0.05 + 0.9*rng.Float64()
	}
	cij := randProbMat(rng, in, units)
	ref := tensor.NewMatrix(in, units)
	MustNew("parallel", 2).UpdateWeights(ref, ci, cj, cij, nil, 0, 0, 0, 0, 1e-9)
	got := tensor.NewMatrix(in, units)
	NewFPGASim(2, posit.Posit16).UpdateWeights(got, ci, cj, cij, nil, 0, 0, 0, 0, 1e-9)
	if d := got.MaxAbsDiff(ref); d > 5e-3 {
		t.Fatalf("posit16 weights deviate by %g", d)
	}
	// posit8 deviates more — and must still be finite and ordered.
	got8 := tensor.NewMatrix(in, units)
	NewFPGASim(2, posit.Posit8).UpdateWeights(got8, ci, cj, cij, nil, 0, 0, 0, 0, 1e-9)
	d8 := got8.MaxAbsDiff(ref)
	d16 := got.MaxAbsDiff(ref)
	if d8 <= d16 {
		t.Fatalf("posit8 error %g not larger than posit16 error %g", d8, d16)
	}
}

func TestFPGASimComputeKernelsDelegate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 9, 7)
	b := randMat(rng, 7, 5)
	want := tensor.NewMatrix(9, 5)
	MustNew("naive", 0).MatMul(want, a, b)
	got := tensor.NewMatrix(9, 5)
	MustNew("fpgasim", 2).MatMul(got, a, b)
	if d := got.MaxAbsDiff(want); d > 1e-12 {
		t.Fatalf("fpgasim MatMul diff %g (compute kernels must not quantize)", d)
	}
}

// TestFPGASimPipelineModel checks the streaming-pipeline cost model: a fused
// LayerStep is one launch whose cycle cost is bounded by its busiest dataflow
// stage (the stages overlap), while composed kernels serialize — their stage
// cycles land additively on the total.
func TestFPGASimPipelineModel(t *testing.T) {
	f := NewFPGASim(2, posit.Posit16)
	s := newLayerState[float64](rand.New(rand.NewSource(4)), 8, true, false)
	s.step(f)
	p := f.Pipeline()
	if p.Steps != 1 || p.KernelLaunches != 1 {
		t.Fatalf("fused step: steps=%d launches=%d, want 1/1", p.Steps, p.KernelLaunches)
	}
	var peak, sum int64
	for st := 0; st < numStages; st++ {
		if p.StageOps[st] <= 0 {
			t.Fatalf("stage %s recorded no ops", StageName(st))
		}
		if p.StageCycles[st] != p.StageOps[st] {
			t.Fatalf("stage %s: cycles %d != ops %d at II=1", StageName(st), p.StageCycles[st], p.StageOps[st])
		}
		if p.StageCycles[st] > peak {
			peak = p.StageCycles[st]
		}
		sum += p.StageCycles[st]
	}
	if p.TotalCycles != peak {
		t.Fatalf("fused TotalCycles = %d, want busiest stage %d (stages stream concurrently)",
			p.TotalCycles, peak)
	}
	// Occupancy of the busiest stage is 1; every occupancy is in (0, 1].
	for st := 0; st < numStages; st++ {
		occ := p.Occupancy(st)
		if occ <= 0 || occ > 1 {
			t.Fatalf("stage %s occupancy %g out of range", StageName(st), occ)
		}
	}

	// The composed sequence for the same update serializes: its total is the
	// sum of its stage cycles, so the same work costs strictly more device
	// time than the fused pipeline's max.
	f.ResetPipeline()
	composedStep[float64](f, s)
	c := f.Pipeline()
	if c.Steps != 0 {
		t.Fatalf("composed sequence counted %d fused steps", c.Steps)
	}
	if c.KernelLaunches <= 1 {
		t.Fatalf("composed launches = %d, want > 1", c.KernelLaunches)
	}
	var csum int64
	for st := 0; st < numStages; st++ {
		csum += c.StageCycles[st]
	}
	if c.TotalCycles != csum {
		t.Fatalf("composed TotalCycles = %d, want additive %d", c.TotalCycles, csum)
	}
	if c.TotalCycles <= peak {
		t.Fatalf("composed cycles %d not above fused pipeline bound %d", c.TotalCycles, peak)
	}
}

func TestNewFPGASimInvalidFormatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFPGASim(1, posit.Format{Bits: 64, ES: 1})
}
