package backend

import (
	"math"

	"streambrain/internal/tensor"
)

func init() {
	Register("naive", func(int) Backend { return &Naive{} })
}

// Naive is the single-threaded reference backend. Every other backend is
// cross-checked against it by the conformance tests, mirroring the role the
// NumPy implementation plays for StreamBrain's hand-coded kernels.
type Naive struct{}

// Name implements Backend.
func (*Naive) Name() string { return "naive" }

// Workers implements Backend.
func (*Naive) Workers() int { return 1 }

// MatMul implements Backend.
func (*Naive) MatMul(dst, a, b *tensor.Matrix) { tensor.MatMulNaive(dst, a, b) }

// MatMulATB implements Backend.
func (*Naive) MatMulATB(dst, a, b *tensor.Matrix) { tensor.MatMulATB(dst, a, b) }

// OneHotMatMul implements Backend.
func (*Naive) OneHotMatMul(dst *tensor.Matrix, idx [][]int32, w *tensor.Matrix) {
	tensor.OneHotMatMul(dst, idx, w)
}

// AddBias implements Backend.
func (*Naive) AddBias(m *tensor.Matrix, bias []float64) { addBiasRange(m, bias, 0, m.Rows) }

func addBiasRange(m *tensor.Matrix, bias []float64, r0, r1 int) {
	if len(bias) != m.Cols {
		panic("backend: AddBias length mismatch")
	}
	for r := r0; r < r1; r++ {
		row := m.Row(r)
		for c, b := range bias {
			row[c] += b
		}
	}
}

// SoftmaxGroups implements Backend.
func (*Naive) SoftmaxGroups(m *tensor.Matrix, groups, width int, temperature float64) {
	tensor.SoftmaxGroups(m, groups, width, temperature)
}

// Lerp implements Backend.
func (*Naive) Lerp(dst, src []float64, t float64) { tensor.Lerp(dst, src, t) }

// LerpMatrix implements Backend.
func (*Naive) LerpMatrix(dst, src *tensor.Matrix, t float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("backend: LerpMatrix shape mismatch")
	}
	tensor.Lerp(dst.Data, src.Data, t)
}

// OneHotMeanLerp implements Backend.
func (*Naive) OneHotMeanLerp(ci []float64, idx [][]int32, t float64) {
	oneHotMeanLerp(ci, idx, t)
}

func oneHotMeanLerp(ci []float64, idx [][]int32, t float64) {
	if len(idx) == 0 {
		return
	}
	tensor.Scale(1-t, ci)
	inc := t / float64(len(idx))
	for _, active := range idx {
		for _, i := range active {
			ci[i] += inc
		}
	}
}

// OneHotOuterLerp implements Backend.
func (*Naive) OneHotOuterLerp(cij *tensor.Matrix, idx [][]int32, act *tensor.Matrix, t float64) {
	oneHotOuterLerpRange(cij, idx, act, t, 0, cij.Rows)
}

// oneHotOuterLerpRange applies the decay+accumulate to cij rows [r0,r1).
// Restricting to a row band lets the parallel backend shard without locks.
func oneHotOuterLerpRange(cij *tensor.Matrix, idx [][]int32, act *tensor.Matrix, t float64, r0, r1 int) {
	if len(idx) != act.Rows {
		panic("backend: OneHotOuterLerp batch mismatch")
	}
	if cij.Cols != act.Cols {
		panic("backend: OneHotOuterLerp width mismatch")
	}
	if len(idx) == 0 {
		return
	}
	tensor.Scale(1-t, cij.Data[r0*cij.Cols:r1*cij.Cols])
	inc := t / float64(len(idx))
	for s, active := range idx {
		arow := act.Row(s)
		for _, i := range active {
			ii := int(i)
			if ii < r0 || ii >= r1 {
				continue
			}
			tensor.Axpy(inc, arow, cij.Row(ii))
		}
	}
}

// OuterLerp implements Backend.
func (*Naive) OuterLerp(cij *tensor.Matrix, a, b *tensor.Matrix, t float64) {
	outerLerp(cij, a, b, t, func(dst, x, y *tensor.Matrix) { tensor.MatMulATB(dst, x, y) })
}

// outerLerp implements cij = (1-t)cij + (t/rows)·aᵀb given an ATB kernel.
func outerLerp(cij *tensor.Matrix, a, b *tensor.Matrix, t float64,
	atb func(dst, x, y *tensor.Matrix)) {
	if a.Rows == 0 {
		return
	}
	tmp := tensor.NewMatrix(a.Cols, b.Cols)
	atb(tmp, a, b)
	tensor.Scale(1/float64(a.Rows), tmp.Data)
	tensor.Lerp(cij.Data, tmp.Data, t)
}

// UpdateWeights implements Backend.
func (*Naive) UpdateWeights(w *tensor.Matrix, ci, cj []float64, cij *tensor.Matrix,
	mask []bool, fi, mi, h, m int, eps float64) {
	updateWeightsRange(w, ci, cj, cij, mask, fi, mi, h, m, eps, 0, w.Rows)
}

// updateWeightsRange recomputes w rows [r0,r1) from the traces.
//
// Row i of w corresponds to input unit i, living in input hypercolumn
// i/mi. Column j corresponds to hidden unit j in hypercolumn j/m. The mask,
// when present, gates (input hypercolumn × hidden hypercolumn) blocks.
func updateWeightsRange(w *tensor.Matrix, ci, cj []float64, cij *tensor.Matrix,
	mask []bool, fi, mi, h, m int, eps float64, r0, r1 int) {
	if w.Rows != cij.Rows || w.Cols != cij.Cols {
		panic("backend: UpdateWeights shape mismatch")
	}
	if len(ci) != w.Rows || len(cj) != w.Cols {
		panic("backend: UpdateWeights trace length mismatch")
	}
	if mask != nil && (len(mask) != fi*h || fi*mi != w.Rows || h*m != w.Cols) {
		panic("backend: UpdateWeights mask geometry mismatch")
	}
	eps2 := eps * eps
	// Precompute log(max(cj,eps)) once per column; it is shared by all rows.
	logcj := make([]float64, len(cj))
	for j, v := range cj {
		logcj[j] = math.Log(math.Max(v, eps))
	}
	for i := r0; i < r1; i++ {
		logci := math.Log(math.Max(ci[i], eps))
		crow := cij.Row(i)
		wrow := w.Row(i)
		var maskRow []bool
		if mask != nil {
			maskRow = mask[(i/mi)*h : (i/mi)*h+h]
		}
		for j := range wrow {
			if maskRow != nil && !maskRow[j/m] {
				wrow[j] = 0
				continue
			}
			wrow[j] = math.Log(math.Max(crow[j], eps2)) - logci - logcj[j]
		}
	}
}

// UpdateBias implements Backend.
func (*Naive) UpdateBias(bias, kbi, cj []float64, eps float64) {
	updateBias(bias, kbi, cj, eps)
}

func updateBias(bias, kbi, cj []float64, eps float64) {
	if len(bias) != len(cj) || len(kbi) != len(cj) {
		panic("backend: UpdateBias length mismatch")
	}
	for j := range bias {
		bias[j] = kbi[j] * math.Log(math.Max(cj[j], eps))
	}
}
