package backend

import (
	"math"
	"unsafe"

	"streambrain/internal/tensor"
)

func init() {
	Register("naive", func(int) Backend { return &Naive[float64]{} })
	Register32("naive", func(int) Backend32 { return &Naive[float32]{} })
}

// Naive is the single-threaded reference backend. Every other backend is
// cross-checked against it by the conformance tests, mirroring the role the
// NumPy implementation plays for StreamBrain's hand-coded kernels.
type Naive[T tensor.Float] struct{}

// Name implements Kernels.
func (*Naive[T]) Name() string { return "naive" }

// Workers implements Kernels.
func (*Naive[T]) Workers() int { return 1 }

// MatMul implements Kernels.
func (*Naive[T]) MatMul(dst, a, b *tensor.Dense[T]) { tensor.MatMulNaive(dst, a, b) }

// MatMulATB implements Kernels.
func (*Naive[T]) MatMulATB(dst, a, b *tensor.Dense[T]) { tensor.MatMulATB(dst, a, b) }

// OneHotMatMul implements Kernels.
func (*Naive[T]) OneHotMatMul(dst *tensor.Dense[T], idx [][]int32, w *tensor.Dense[T]) {
	tensor.OneHotMatMul(dst, idx, w)
}

// AddBias implements Kernels.
func (*Naive[T]) AddBias(m *tensor.Dense[T], bias []T) { addBiasRange(m, bias, 0, m.Rows) }

func addBiasRange[T tensor.Float](m *tensor.Dense[T], bias []T, r0, r1 int) {
	if len(bias) != m.Cols {
		panic("backend: AddBias length mismatch")
	}
	for r := r0; r < r1; r++ {
		row := m.Row(r)
		for c, b := range bias {
			row[c] += b
		}
	}
}

// SoftmaxGroups implements Kernels.
func (*Naive[T]) SoftmaxGroups(m *tensor.Dense[T], groups, width int, temperature float64) {
	tensor.SoftmaxGroups(m, groups, width, temperature)
}

// Lerp implements Kernels.
func (*Naive[T]) Lerp(dst, src []T, t float64) { tensor.Lerp(dst, src, T(t)) }

// LerpMatrix implements Kernels.
func (*Naive[T]) LerpMatrix(dst, src *tensor.Dense[T], t float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("backend: LerpMatrix shape mismatch")
	}
	tensor.Lerp(dst.Data, src.Data, T(t))
}

// OneHotMeanLerp implements Kernels.
func (*Naive[T]) OneHotMeanLerp(ci []T, idx [][]int32, t float64) {
	oneHotMeanLerp(ci, idx, t)
}

func oneHotMeanLerp[T tensor.Float](ci []T, idx [][]int32, t float64) {
	if len(idx) == 0 {
		return
	}
	tensor.Scale(1-T(t), ci)
	inc := T(t) / T(len(idx))
	for _, active := range idx {
		for _, i := range active {
			ci[i] += inc
		}
	}
}

// OneHotOuterLerp implements Kernels.
func (*Naive[T]) OneHotOuterLerp(cij *tensor.Dense[T], idx [][]int32, act *tensor.Dense[T], t float64) {
	oneHotOuterLerpRange(cij, idx, act, t, 0, cij.Rows)
}

// oneHotOuterLerpRange applies the decay+accumulate to cij rows [r0,r1).
// Restricting to a row band lets the parallel backend shard without locks.
func oneHotOuterLerpRange[T tensor.Float](cij *tensor.Dense[T], idx [][]int32, act *tensor.Dense[T], t float64, r0, r1 int) {
	if len(idx) != act.Rows {
		panic("backend: OneHotOuterLerp batch mismatch")
	}
	if cij.Cols != act.Cols {
		panic("backend: OneHotOuterLerp width mismatch")
	}
	if len(idx) == 0 {
		return
	}
	tensor.Scale(1-T(t), cij.Data[r0*cij.Cols:r1*cij.Cols])
	inc := T(t) / T(len(idx))
	for s, active := range idx {
		arow := act.Row(s)
		for _, i := range active {
			ii := int(i)
			if ii < r0 || ii >= r1 {
				continue
			}
			tensor.Axpy(inc, arow, cij.Row(ii))
		}
	}
}

// OuterLerp implements Kernels.
func (*Naive[T]) OuterLerp(cij *tensor.Dense[T], a, b *tensor.Dense[T], t float64) {
	outerLerp(cij, a, b, t, func(dst, x, y *tensor.Dense[T]) { tensor.MatMulATB(dst, x, y) })
}

// outerLerp implements cij = (1-t)cij + (t/rows)·aᵀb given an ATB kernel.
func outerLerp[T tensor.Float](cij *tensor.Dense[T], a, b *tensor.Dense[T], t float64,
	atb func(dst, x, y *tensor.Dense[T])) {
	if a.Rows == 0 {
		return
	}
	tmp := tensor.NewDense[T](a.Cols, b.Cols)
	atb(tmp, a, b)
	tensor.Scale(1/T(a.Rows), tmp.Data)
	tensor.Lerp(cij.Data, tmp.Data, T(t))
}

// logT is the precision-matched natural log: float64 goes through math.Log,
// float32 through the reduced-precision tensor.Log32 — the transcendental
// substitution that makes the float32 UpdateWeights kernel cheap
// (DESIGN.md §9). The unsafe.Sizeof branch is a per-instantiation compile-
// time constant, so each stenciled shape keeps only its own log and the
// dispatch costs nothing per element (an any-based type switch here costs
// more than the log itself).
func logT[T tensor.Float](x T) T {
	if unsafe.Sizeof(x) == 4 {
		return T(tensor.Log32(float32(x)))
	}
	return T(math.Log(float64(x)))
}

// UpdateWeights implements Kernels.
func (*Naive[T]) UpdateWeights(w *tensor.Dense[T], ci, cj []T, cij *tensor.Dense[T],
	mask []bool, fi, mi, h, m int, eps float64) {
	updateWeightsRange(w, ci, cj, cij, mask, fi, mi, h, m, eps, 0, w.Rows)
}

// updateWeightsRange recomputes w rows [r0,r1) from the traces.
//
// Row i of w corresponds to input unit i, living in input hypercolumn
// i/mi. Column j corresponds to hidden unit j in hypercolumn j/m. The mask,
// when present, gates (input hypercolumn × hidden hypercolumn) blocks.
func updateWeightsRange[T tensor.Float](w *tensor.Dense[T], ci, cj []T, cij *tensor.Dense[T],
	mask []bool, fi, mi, h, m int, eps float64, r0, r1 int) {
	if w.Rows != cij.Rows || w.Cols != cij.Cols {
		panic("backend: UpdateWeights shape mismatch")
	}
	if len(ci) != w.Rows || len(cj) != w.Cols {
		panic("backend: UpdateWeights trace length mismatch")
	}
	if mask != nil && (len(mask) != fi*h || fi*mi != w.Rows || h*m != w.Cols) {
		panic("backend: UpdateWeights mask geometry mismatch")
	}
	epsT := T(eps)
	eps2 := epsT * epsT
	// Precompute log(max(cj,eps)) once per column; it is shared by all rows.
	logcj := make([]T, len(cj))
	for j, v := range cj {
		logcj[j] = logT(max(v, epsT))
	}
	for i := r0; i < r1; i++ {
		logci := logT(max(ci[i], epsT))
		crow := cij.Row(i)
		wrow := w.Row(i)
		var maskRow []bool
		if mask != nil {
			maskRow = mask[(i/mi)*h : (i/mi)*h+h]
		}
		for j := range wrow {
			if maskRow != nil && !maskRow[j/m] {
				wrow[j] = 0
				continue
			}
			wrow[j] = logT(max(crow[j], eps2)) - logci - logcj[j]
		}
	}
}

// UpdateBias implements Kernels.
func (*Naive[T]) UpdateBias(bias, kbi, cj []T, eps float64) {
	updateBias(bias, kbi, cj, eps)
}

// OneHotMatMulSparse implements Kernels.
func (*Naive[T]) OneHotMatMulSparse(dst *tensor.Dense[T], idx [][]int32, w *tensor.Dense[T],
	bi *tensor.BlockIndex) {
	tensor.OneHotMatMulSparse(dst, idx, w, bi)
}

// OneHotOuterLerpSparse implements Kernels.
func (*Naive[T]) OneHotOuterLerpSparse(cij *tensor.Dense[T], idx [][]int32, act *tensor.Dense[T],
	t float64, bi *tensor.BlockIndex) {
	oneHotOuterLerpSparseRange(cij, idx, act, t, bi, 0, cij.Rows)
}

// oneHotOuterLerpSparseRange is the block-sparse trace update over cij rows
// [r0,r1): active (fi,h) blocks are decayed and accumulated exactly as the
// dense kernel would, silent blocks are left frozen. Every backend routes
// through this one helper with identical M-length segments, so the results
// are bit-identical across backends and worker counts (the segment boundary
// fixes which lanes the FMA microkernel covers; sharing the segmentation
// shares the rounding).
func oneHotOuterLerpSparseRange[T tensor.Float](cij *tensor.Dense[T], idx [][]int32,
	act *tensor.Dense[T], t float64, bi *tensor.BlockIndex, r0, r1 int) {
	if len(idx) != act.Rows {
		panic("backend: OneHotOuterLerpSparse batch mismatch")
	}
	if cij.Cols != act.Cols {
		panic("backend: OneHotOuterLerpSparse width mismatch")
	}
	if bi == nil || bi.Fi*bi.Mi != cij.Rows || bi.H*bi.M != cij.Cols {
		panic("backend: OneHotOuterLerpSparse block-index geometry mismatch")
	}
	if len(idx) == 0 {
		return
	}
	m := bi.M
	omt := 1 - T(t)
	for i := r0; i < r1; i++ {
		active := bi.Active(i / bi.Mi)
		if len(active) == 0 {
			continue
		}
		row := cij.Row(i)
		for _, h := range active {
			o := int(h) * m
			tensor.Scale(omt, row[o:o+m])
		}
	}
	inc := T(t) / T(len(idx))
	for s, ins := range idx {
		arow := act.Row(s)
		for _, in := range ins {
			ii := int(in)
			if ii < r0 || ii >= r1 {
				continue
			}
			active := bi.Active(ii / bi.Mi)
			if len(active) == 0 {
				continue
			}
			row := cij.Row(ii)
			for _, h := range active {
				o := int(h) * m
				tensor.Axpy(inc, arow[o:o+m], row[o:o+m])
			}
		}
	}
}

// UpdateWeightsSparse implements Kernels.
func (*Naive[T]) UpdateWeightsSparse(w *tensor.Dense[T], ci, cj []T, cij *tensor.Dense[T],
	bi *tensor.BlockIndex, eps float64) {
	updateWeightsSparseRange(w, ci, cj, cij, bi, eps, 0, w.Rows)
}

// updateWeightsSparseRange recomputes the active blocks of w rows [r0,r1)
// from the traces, element-for-element the formula of updateWeightsRange.
// Silent blocks are not written: the caller guarantees they already hold
// zeros (full masked refresh on every mask change).
func updateWeightsSparseRange[T tensor.Float](w *tensor.Dense[T], ci, cj []T,
	cij *tensor.Dense[T], bi *tensor.BlockIndex, eps float64, r0, r1 int) {
	if w.Rows != cij.Rows || w.Cols != cij.Cols {
		panic("backend: UpdateWeightsSparse shape mismatch")
	}
	if len(ci) != w.Rows || len(cj) != w.Cols {
		panic("backend: UpdateWeightsSparse trace length mismatch")
	}
	if bi == nil || bi.Fi*bi.Mi != w.Rows || bi.H*bi.M != w.Cols {
		panic("backend: UpdateWeightsSparse block-index geometry mismatch")
	}
	epsT := T(eps)
	eps2 := epsT * epsT
	m := bi.M
	logcj := make([]T, len(cj))
	for j, v := range cj {
		logcj[j] = logT(max(v, epsT))
	}
	for i := r0; i < r1; i++ {
		active := bi.Active(i / bi.Mi)
		if len(active) == 0 {
			continue
		}
		logci := logT(max(ci[i], epsT))
		crow := cij.Row(i)
		wrow := w.Row(i)
		for _, h := range active {
			o := int(h) * m
			for j := o; j < o+m; j++ {
				wrow[j] = logT(max(crow[j], eps2)) - logci - logcj[j]
			}
		}
	}
}

func updateBias[T tensor.Float](bias, kbi, cj []T, eps float64) {
	if len(bias) != len(cj) || len(kbi) != len(cj) {
		panic("backend: UpdateBias length mismatch")
	}
	epsT := T(eps)
	for j := range bias {
		bias[j] = kbi[j] * logT(max(cj[j], epsT))
	}
}
