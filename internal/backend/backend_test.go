package backend

import (
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/tensor"
)

const tol = 1e-9

func randMat(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randProbMat(rng *rand.Rand, rows, cols int) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()*0.9 + 0.05
	}
	return m
}

func randIdx(rng *rand.Rand, batch, groups, width int) [][]int32 {
	idx := make([][]int32, batch)
	for s := range idx {
		for g := 0; g < groups; g++ {
			idx[s] = append(idx[s], int32(g*width+rng.Intn(width)))
		}
	}
	return idx
}

// allBackends returns one instance of every registered backend, with varied
// worker counts for the parallel ones.
func allBackends() []Backend {
	return []Backend{
		MustNew("naive", 0),
		MustNew("parallel", 1),
		MustNew("parallel", 4),
		MustNew("fused", 1),
		MustNew("fused", 4),
		MustNew("gpusim", 4),
	}
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := map[string]bool{"naive": true, "parallel": true, "fused": true, "gpusim": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing backends: %v (have %v)", want, names)
	}
}

func TestNewUnknownBackend(t *testing.T) {
	if _, err := New("tpu", 1); err == nil {
		t.Fatal("expected error for unknown backend")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register("naive", func(int) Backend { return nil })
}

// TestConformanceMatMul and friends cross-check every backend against the
// naive reference, the same validation strategy StreamBrain uses for its
// hand-coded kernels vs NumPy.
func TestConformanceMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMat(rng, 37, 53)
	b := randMat(rng, 53, 29)
	want := tensor.NewMatrix(37, 29)
	MustNew("naive", 0).MatMul(want, a, b)
	for _, be := range allBackends() {
		got := tensor.NewMatrix(37, 29)
		be.MatMul(got, a, b)
		if d := got.MaxAbsDiff(want); d > tol {
			t.Errorf("%s MatMul diff %g", be.Name(), d)
		}
	}
}

func TestConformanceMatMulATB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 64, 31)
	b := randMat(rng, 64, 17)
	want := tensor.NewMatrix(31, 17)
	MustNew("naive", 0).MatMulATB(want, a, b)
	for _, be := range allBackends() {
		got := tensor.NewMatrix(31, 17)
		be.MatMulATB(got, a, b)
		if d := got.MaxAbsDiff(want); d > tol {
			t.Errorf("%s MatMulATB diff %g", be.Name(), d)
		}
	}
}

func TestConformanceOneHotMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const batch, groups, width, out = 21, 9, 10, 40
	w := randMat(rng, groups*width, out)
	idx := randIdx(rng, batch, groups, width)
	want := tensor.NewMatrix(batch, out)
	MustNew("naive", 0).OneHotMatMul(want, idx, w)
	for _, be := range allBackends() {
		got := tensor.NewMatrix(batch, out)
		be.OneHotMatMul(got, idx, w)
		if d := got.MaxAbsDiff(want); d > tol {
			t.Errorf("%s OneHotMatMul diff %g", be.Name(), d)
		}
	}
}

func TestConformanceAddBiasSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bias := make([]float64, 24)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	src := randMat(rng, 19, 24)
	want := src.Clone()
	nv := MustNew("naive", 0)
	nv.AddBias(want, bias)
	nv.SoftmaxGroups(want, 4, 6, 0.7)
	for _, be := range allBackends() {
		got := src.Clone()
		be.AddBias(got, bias)
		be.SoftmaxGroups(got, 4, 6, 0.7)
		if d := got.MaxAbsDiff(want); d > 1e-12 {
			t.Errorf("%s AddBias+Softmax diff %g", be.Name(), d)
		}
	}
}

func TestConformanceTraceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const batch, groups, width, units = 16, 7, 10, 33
	in := groups * width
	idx := randIdx(rng, batch, groups, width)
	act := randProbMat(rng, batch, units)
	ciRef := make([]float64, in)
	cijRef := randProbMat(rng, in, units)
	for i := range ciRef {
		ciRef[i] = rng.Float64()
	}
	nv := MustNew("naive", 0)
	wantCi := append([]float64(nil), ciRef...)
	wantCij := cijRef.Clone()
	nv.OneHotMeanLerp(wantCi, idx, 0.03)
	nv.OneHotOuterLerp(wantCij, idx, act, 0.03)
	for _, be := range allBackends() {
		gotCi := append([]float64(nil), ciRef...)
		gotCij := cijRef.Clone()
		be.OneHotMeanLerp(gotCi, idx, 0.03)
		be.OneHotOuterLerp(gotCij, idx, act, 0.03)
		for i := range gotCi {
			if math.Abs(gotCi[i]-wantCi[i]) > tol {
				t.Fatalf("%s Ci diff at %d", be.Name(), i)
			}
		}
		if d := gotCij.MaxAbsDiff(wantCij); d > tol {
			t.Errorf("%s Cij diff %g", be.Name(), d)
		}
	}
}

func TestConformanceOuterLerp(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randProbMat(rng, 12, 20)
	b := randProbMat(rng, 12, 5)
	base := randProbMat(rng, 20, 5)
	want := base.Clone()
	MustNew("naive", 0).OuterLerp(want, a, b, 0.1)
	for _, be := range allBackends() {
		got := base.Clone()
		be.OuterLerp(got, a, b, 0.1)
		if d := got.MaxAbsDiff(want); d > tol {
			t.Errorf("%s OuterLerp diff %g", be.Name(), d)
		}
	}
}

func TestConformanceUpdateWeightsBias(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const fi, mi, h, m = 5, 4, 3, 6
	in, units := fi*mi, h*m
	ci := make([]float64, in)
	cj := make([]float64, units)
	kbi := make([]float64, units)
	for i := range ci {
		ci[i] = rng.Float64()
	}
	for j := range cj {
		cj[j] = rng.Float64()
		kbi[j] = 1 + rng.Float64()
	}
	cij := randProbMat(rng, in, units)
	mask := make([]bool, fi*h)
	for i := range mask {
		mask[i] = rng.Intn(2) == 0
	}
	wantW := tensor.NewMatrix(in, units)
	wantB := make([]float64, units)
	nv := MustNew("naive", 0)
	nv.UpdateWeights(wantW, ci, cj, cij, mask, fi, mi, h, m, 1e-9)
	nv.UpdateBias(wantB, kbi, cj, 1e-9)
	for _, be := range allBackends() {
		gotW := tensor.NewMatrix(in, units)
		gotB := make([]float64, units)
		be.UpdateWeights(gotW, ci, cj, cij, mask, fi, mi, h, m, 1e-9)
		be.UpdateBias(gotB, kbi, cj, 1e-9)
		if d := gotW.MaxAbsDiff(wantW); d > tol {
			t.Errorf("%s UpdateWeights diff %g", be.Name(), d)
		}
		for j := range gotB {
			if math.Abs(gotB[j]-wantB[j]) > tol {
				t.Fatalf("%s UpdateBias diff at %d", be.Name(), j)
			}
		}
	}
}

func TestUpdateWeightsMaskZeroesSilentBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const fi, mi, h, m = 3, 2, 2, 2
	in, units := fi*mi, h*m
	ci := make([]float64, in)
	cj := make([]float64, units)
	for i := range ci {
		ci[i] = 0.5
	}
	for j := range cj {
		cj[j] = 0.5
	}
	cij := randProbMat(rng, in, units)
	mask := []bool{true, false, false, true, true, true}
	w := tensor.NewMatrix(in, units)
	MustNew("naive", 0).UpdateWeights(w, ci, cj, cij, mask, fi, mi, h, m, 1e-9)
	for i := 0; i < in; i++ {
		for j := 0; j < units; j++ {
			gated := mask[(i/mi)*h+j/m]
			v := w.At(i, j)
			if !gated && v != 0 {
				t.Fatalf("silent weight (%d,%d) = %v, want 0", i, j, v)
			}
			if gated && v == 0 {
				t.Fatalf("active weight (%d,%d) unexpectedly zero", i, j)
			}
		}
	}
}

func TestUpdateWeightsIndependenceIsZero(t *testing.T) {
	// If Cij = Ci·Cj exactly (statistical independence), weights must be 0:
	// log(pij/(pi·pj)) = log 1. This is the defining property of the BCPNN
	// weight — it measures deviation from independence.
	const in, units = 4, 3
	ci := []float64{0.2, 0.3, 0.4, 0.1}
	cj := []float64{0.5, 0.25, 0.25}
	cij := tensor.NewMatrix(in, units)
	for i := 0; i < in; i++ {
		for j := 0; j < units; j++ {
			cij.Set(i, j, ci[i]*cj[j])
		}
	}
	w := tensor.NewMatrix(in, units)
	MustNew("naive", 0).UpdateWeights(w, ci, cj, cij, nil, 0, 0, 0, 0, 1e-9)
	for _, v := range w.Data {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("independence should give zero weight, got %v", v)
		}
	}
}

func TestGPUSimTransferAccounting(t *testing.T) {
	g := NewGPUSim(2, PolicyOffloaded)
	w := tensor.NewMatrix(10, 8)
	dst := tensor.NewMatrix(4, 8)
	g.MakeResident(w.Data, dst.Data)
	afterPin := g.Stats()
	if afterPin.BytesH2D != int64(8*(len(w.Data)+len(dst.Data))) {
		t.Fatalf("pin upload bytes = %d", afterPin.BytesH2D)
	}
	idx := [][]int32{{0}, {1}, {2}, {3}}
	g.OneHotMatMul(dst, idx, w)
	st := g.Stats()
	// Offloaded: only the 4 indices move host→device; no D2H for resident dst.
	wantH2D := afterPin.BytesH2D + 4*4
	if st.BytesH2D != wantH2D {
		t.Fatalf("offloaded H2D = %d, want %d", st.BytesH2D, wantH2D)
	}
	if st.BytesD2H != 0 {
		t.Fatalf("offloaded D2H = %d, want 0", st.BytesD2H)
	}
	if st.KernelLaunches != 1 {
		t.Fatalf("launches = %d, want 1", st.KernelLaunches)
	}

	// Chatty: the same call moves the whole weight matrix and result.
	g.ResetStats()
	g.SetPolicy(PolicyChatty)
	g.OneHotMatMul(dst, idx, w)
	st = g.Stats()
	if st.BytesH2D != int64(8*len(w.Data)+4*4) {
		t.Fatalf("chatty H2D = %d", st.BytesH2D)
	}
	if st.BytesD2H != int64(8*len(dst.Data)) {
		t.Fatalf("chatty D2H = %d", st.BytesD2H)
	}
}

func TestGPUSimMakeResidentIdempotent(t *testing.T) {
	g := NewGPUSim(1, PolicyOffloaded)
	buf := make([]float64, 16)
	g.MakeResident(buf)
	g.MakeResident(buf)
	if st := g.Stats(); st.BytesH2D != 8*16 {
		t.Fatalf("double pin charged twice: %d", st.BytesH2D)
	}
}

func TestTransferPolicyString(t *testing.T) {
	if PolicyOffloaded.String() != "offloaded" || PolicyChatty.String() != "chatty" {
		t.Fatal("bad policy strings")
	}
	if TransferPolicy(9).String() == "" {
		t.Fatal("unknown policy must still render")
	}
}

func TestParallelWorkersDefault(t *testing.T) {
	p := NewParallel(0)
	if p.Workers() < 1 {
		t.Fatalf("default workers = %d", p.Workers())
	}
	if NewParallel(3).Workers() != 3 {
		t.Fatal("explicit workers not honored")
	}
}
