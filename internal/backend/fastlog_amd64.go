//go:build amd64 && !purego

package backend

import "streambrain/internal/tensor"

// fusedLogSIMD gates the AVX2 weight-row log kernel on the same AVX2+FMA+
// OS-XSAVE detection the tensor microkernels use.
var fusedLogSIMD = tensor.SIMDEnabled()

// weightRowLogAVX (fastlog_amd64.s) fills wrow[j] = log(max(crow[j], eps2)) -
// logci - logcj[j] for j in [0, ret), ret a multiple of 4, stopping early if
// a lane's floored trace is not a positive normal float. The caller finishes
// the row with the scalar path.
func weightRowLogAVX(wrow, crow, logcj []float64, logci, eps2 float64) int
