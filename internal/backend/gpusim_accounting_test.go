package backend

import (
	"math/rand"
	"testing"

	"streambrain/internal/tensor"
)

// driveGPUSim runs an identical kernel sequence on a simulator of either
// precision and returns the ledger. The sequence mirrors one training step:
// resident model state, per-batch activation upload, trace update, weight
// refresh, forward pass download.
func driveGPUSim[T tensor.Float](g *GPUSim[T], rng *rand.Rand) TransferStats {
	const (
		in, outs = 60, 48
		batch    = 8
	)
	w := tensor.NewDense[T](in, outs)
	cij := tensor.NewDense[T](in, outs)
	ci := make([]T, in)
	cj := make([]T, outs)
	bias := make([]T, outs)
	kbi := make([]T, outs)
	for i := range ci {
		ci[i] = T(rng.Float64()*0.1 + 0.01)
	}
	for j := range cj {
		cj[j] = T(rng.Float64()*0.1 + 0.01)
		kbi[j] = 1
	}
	g.MakeResident(w.Data, cij.Data, ci, cj, bias, kbi)

	idx := make([][]int32, batch)
	for s := range idx {
		idx[s] = []int32{int32(s % in), int32((s * 7) % in)}
	}
	act := tensor.NewDense[T](batch, outs)
	for i := range act.Data {
		act.Data[i] = T(rng.Float64())
	}
	out := tensor.NewDense[T](batch, outs)

	g.ResetStats()
	g.OneHotMeanLerp(ci, idx, 0.01)
	g.OneHotOuterLerp(cij, idx, act, 0.01)
	g.UpdateWeights(w, ci, cj, cij, nil, 0, 0, 0, 0, 1e-9)
	g.UpdateBias(bias, kbi, cj, 1e-9)
	g.OneHotMatMul(out, idx, w)
	g.AddBias(out, bias)
	g.SoftmaxGroups(out, 1, outs, 1)
	return g.Stats()
}

// idxUploadBytes is the per-run one-hot index traffic of driveGPUSim:
// 3 index-consuming kernels × batch 8 × 2 indices × 4 bytes.
const idxUploadBytes = 3 * 8 * 2 * 4

// TestGPUSimF32ChargesHalfTheFloatBytes is the regression test for the
// transfer ledger's element-size accounting: it used to hard-code 8
// bytes/element, so a float32 offload was charged float64 traffic. After
// subtracting the precision-independent 4-byte one-hot index uploads, the
// float32 run must charge exactly half the float64 run's bytes.
func TestGPUSimF32ChargesHalfTheFloatBytes(t *testing.T) {
	s64 := driveGPUSim(NewGPUSim(1, PolicyOffloaded), rand.New(rand.NewSource(5)))
	s32 := driveGPUSim(NewGPUSimOf[float32](1, PolicyOffloaded), rand.New(rand.NewSource(5)))

	if s64.KernelLaunches != s32.KernelLaunches {
		t.Fatalf("launch counts differ: f64 %d, f32 %d", s64.KernelLaunches, s32.KernelLaunches)
	}
	f64Float := s64.BytesH2D - idxUploadBytes
	f32Float := s32.BytesH2D - idxUploadBytes
	if f64Float <= 0 || f32Float <= 0 {
		t.Fatalf("index accounting assumption broken: f64 %d, f32 %d", f64Float, f32Float)
	}
	if f32Float*2 != f64Float {
		t.Fatalf("H2D float bytes: f32 %d, f64 %d — want exactly half", f32Float, f64Float)
	}
	if s32.BytesD2H*2 != s64.BytesD2H {
		t.Fatalf("D2H bytes: f32 %d, f64 %d — want exactly half", s32.BytesD2H, s64.BytesD2H)
	}
}

// TestGPUSimResidencyAtBothPrecisions pins buffers and checks the offloaded
// policy stops charging them at either element width.
func TestGPUSimResidencyAtBothPrecisions(t *testing.T) {
	run := func(t *testing.T, es int64, stats func() TransferStats, lerp func()) {
		t.Helper()
		before := stats()
		lerp()
		after := stats()
		if got := after.BytesH2D - before.BytesH2D; got != 0 {
			t.Fatalf("resident buffer charged %d H2D bytes", got)
		}
		if got := after.BytesD2H - before.BytesD2H; got != 0 {
			t.Fatalf("resident buffer charged %d D2H bytes", got)
		}
		_ = es
	}
	t.Run("f64", func(t *testing.T) {
		g := NewGPUSim(1, PolicyOffloaded)
		dst := make([]float64, 32)
		src := make([]float64, 32)
		g.MakeResident(dst, src)
		run(t, 8, g.Stats, func() { g.Lerp(dst, src, 0.5) })
	})
	t.Run("f32", func(t *testing.T) {
		g := NewGPUSimOf[float32](1, PolicyOffloaded)
		dst := make([]float32, 32)
		src := make([]float32, 32)
		g.MakeResident(dst, src)
		run(t, 4, g.Stats, func() { g.Lerp(dst, src, 0.5) })
	})
}

// TestGPUSimCompanionSharesLedger: the float32 companion a gpusim hands the
// reduced-precision core path must account into the float64 simulator's
// ledger, so a mixed-precision model's forward traffic stays observable
// through the handle the caller holds.
func TestGPUSimCompanionSharesLedger(t *testing.T) {
	g := NewGPUSim(1, PolicyOffloaded)
	c32, ok := any(g.Kernels32()).(*GPUSim[float32])
	if !ok {
		t.Fatal("Kernels32 did not return a float32 GPU simulator")
	}
	if c32.Workers() != g.Workers() {
		t.Fatalf("companion workers %d != %d", c32.Workers(), g.Workers())
	}

	before := g.Stats()
	dst := make([]float32, 64)
	src := make([]float32, 64)
	c32.Lerp(dst, src, 0.5)
	after := g.Stats()
	if after.KernelLaunches != before.KernelLaunches+1 {
		t.Fatalf("companion launch invisible in shared ledger: %+v -> %+v", before, after)
	}
	if got := after.BytesH2D - before.BytesH2D; got != 4*64 {
		t.Fatalf("companion H2D charged %d bytes, want %d (sizeof(float32)*64)", got, 4*64)
	}

	// Residency pinned via the companion suppresses its charges and shares
	// the policy switch.
	c32.MakeResident(dst, src)
	mid := g.Stats()
	c32.Lerp(dst, src, 0.5)
	if got := g.Stats().BytesH2D - mid.BytesH2D; got != 0 {
		t.Fatalf("resident companion buffer charged %d H2D bytes", got)
	}
	g.SetPolicy(PolicyChatty)
	mid = g.Stats()
	c32.Lerp(dst, src, 0.5)
	if got := g.Stats().BytesH2D - mid.BytesH2D; got != 4*64 {
		t.Fatalf("chatty policy did not reach the companion: charged %d", got)
	}
}

// TestGPUSimFusedLayerStepAccounting is the whole-layer offload regression
// test: with the model state device-resident, one fused LayerStep must cost
// exactly one kernel launch and upload only the one-hot index batch — zero
// float H2D traffic and zero D2H (the in-pass activations are device scratch,
// never downloaded). The composed sequence for the same step costs several
// launches and repeated index uploads; the test pins both sides of that gap.
func TestGPUSimFusedLayerStepAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := newLayerState[float64](rng, 8, true, false)
	g := NewGPUSim(2, PolicyOffloaded)
	g.MakeResident(s.w.Data, s.bias, s.ci, s.cj, s.cij.Data, s.hyp.Kbi)

	g.ResetStats()
	s.step(g)
	st := g.Stats()
	var wantIdx int64
	for _, a := range s.idx {
		wantIdx += int64(4 * len(a))
	}
	if st.KernelLaunches != 1 {
		t.Fatalf("fused step launches = %d, want 1", st.KernelLaunches)
	}
	if st.BytesH2D != wantIdx {
		t.Fatalf("fused step H2D = %d, want %d (indices only)", st.BytesH2D, wantIdx)
	}
	if st.BytesD2H != 0 {
		t.Fatalf("fused step D2H = %d, want 0", st.BytesD2H)
	}

	// The composed sequence on the same resident state must cost strictly
	// more launches and more index upload traffic — the quantitative offload
	// argument the fused path exists for.
	g.ResetStats()
	composedStep[float64](g, s)
	cs := g.Stats()
	if cs.KernelLaunches <= 1 {
		t.Fatalf("composed sequence launches = %d, want > 1", cs.KernelLaunches)
	}
	if cs.BytesH2D <= wantIdx {
		t.Fatalf("composed H2D = %d, want > %d (indices re-uploaded per kernel)",
			cs.BytesH2D, wantIdx)
	}

	// Pre-drawn support noise is per-batch input: it is charged as an upload
	// even with the model state resident.
	noisy := newLayerState[float64](rand.New(rand.NewSource(10)), 8, false, true)
	g2 := NewGPUSim(1, PolicyOffloaded)
	g2.MakeResident(noisy.w.Data, noisy.bias, noisy.ci, noisy.cj, noisy.cij.Data, noisy.hyp.Kbi)
	g2.ResetStats()
	noisy.step(g2)
	st2 := g2.Stats()
	var wantIdx2 int64
	for _, a := range noisy.idx {
		wantIdx2 += int64(4 * len(a))
	}
	wantNoise := int64(8 * len(noisy.hyp.Noise))
	if st2.KernelLaunches != 1 {
		t.Fatalf("noisy fused step launches = %d, want 1", st2.KernelLaunches)
	}
	if st2.BytesH2D != wantIdx2+wantNoise {
		t.Fatalf("noisy fused step H2D = %d, want %d (indices + noise)",
			st2.BytesH2D, wantIdx2+wantNoise)
	}
}

// TestGPUSimChargeUpload: host-side rewrites of pinned buffers (the
// mixed-precision sync32 recast) charge H2D bytes without losing residency.
func TestGPUSimChargeUpload(t *testing.T) {
	g := NewGPUSimOf[float32](1, PolicyOffloaded)
	w := make([]float32, 100)
	g.MakeResident(w)
	before := g.Stats()
	g.ChargeUpload(w)
	if got := g.Stats().BytesH2D - before.BytesH2D; got != 4*100 {
		t.Fatalf("ChargeUpload charged %d bytes, want %d", got, 4*100)
	}
	// Still resident: a launch reading it charges nothing extra.
	mid := g.Stats()
	g.Lerp(w, w, 0.5)
	if got := g.Stats().BytesH2D - mid.BytesH2D; got != 0 {
		t.Fatalf("buffer lost residency after ChargeUpload: %d bytes", got)
	}
}
