// Package backendtest provides a reusable equivalence harness for the
// block-sparse compute regime (DESIGN.md §15). It drives one seeded
// multi-step training simulation — including mid-run structural mask swaps —
// through three paths:
//
//   - the dense-masked composed kernel sequence (the reference semantics:
//     silent weight blocks zeroed by the mask, traces updated densely);
//   - the block-sparse composed sequence of every kernel set under test;
//   - the whole-layer LayerStep path with a block index, for kernel sets
//     that implement backend.LayerStepper;
//
// and compares every observable (activations, traces, gains, weights,
// biases) field by field after every step. Swap events re-seed the newly
// activated joint-trace blocks to the product of the marginals in every
// model identically — the frozen-silent contract — so the dense and sparse
// regimes stay comparable across mask changes.
package backendtest

import (
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/backend"
	"streambrain/internal/tensor"
)

// Geometry fixes the modular layer shape of a simulation: Fi input
// hypercolumns of Mi units feeding H hidden HCUs of M MCUs.
type Geometry struct{ Fi, Mi, H, M int }

// Config parameterizes one equivalence simulation.
type Config struct {
	Geom  Geometry
	K     int // active input hypercolumns per HCU
	Batch int // samples per training step
	Steps int // composed training steps
	// SwapEvery inserts a structural swap (one silence + one enable per HCU,
	// with joint-trace re-seeding) before every SwapEvery-th step; 0 never
	// swaps.
	SwapEvery int
	Seed      int64
	// DenseTol bounds |sparse − dense-masked reference| per element. 0 means
	// bit-exact, which holds at float64 whenever M is a multiple of the FMA
	// lane width (4): the sparse per-block segments then cover exactly the
	// lanes the dense full-row walk covers, so fused-multiply rounding
	// agrees. Odd M moves block tails onto the scalar microkernel and needs
	// a ~1 ulp tolerance.
	DenseTol float64
	// CrossTol bounds |candidate sparse − naive sparse| per element. 0 means
	// bit-exact: every backend and worker count routes block updates through
	// the same shared segment helpers, so this holds at any M.
	CrossTol float64
}

// fixed hyperparameters of the simulation (mirroring the fused≡composed
// property tests: a pmin that leaves some units starved and some healthy).
const (
	taupdt  = 0.03
	taubdt  = 0.02
	pminFr  = 0.5
	temper  = 0.8
	epsilon = 1e-9
)

// swapEvent is one structural exchange in HCU hcu: input hypercolumn
// silence goes silent, enable becomes active (re-seeded).
type swapEvent struct{ hcu, silence, enable int }

// script is the shared randomness of a simulation: the initial mask, every
// batch, and every swap decision, pre-generated so all models replay the
// identical sequence (swap choices are random, not MI-driven — the harness
// tests kernel equivalence, not core's plasticity policy).
type script struct {
	mask0   []bool
	batches [][][]int32
	swaps   map[int][]swapEvent
}

func newScript(cfg Config) *script {
	g := cfg.Geom
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := &script{swaps: make(map[int][]swapEvent)}
	sc.mask0 = make([]bool, g.Fi*g.H)
	for h := 0; h < g.H; h++ {
		for _, fi := range rng.Perm(g.Fi)[:cfg.K] {
			sc.mask0[fi*g.H+h] = true
		}
	}
	for s := 0; s < cfg.Steps; s++ {
		batch := make([][]int32, cfg.Batch)
		for b := range batch {
			for f := 0; f < g.Fi; f++ {
				batch[b] = append(batch[b], int32(f*g.Mi+rng.Intn(g.Mi)))
			}
		}
		sc.batches = append(sc.batches, batch)
	}
	// Swap decisions track the evolving mask so silence picks an active
	// hypercolumn and enable a silent one.
	mask := append([]bool(nil), sc.mask0...)
	for s := 1; s < cfg.Steps; s++ {
		if cfg.SwapEvery <= 0 || s%cfg.SwapEvery != 0 {
			continue
		}
		var evs []swapEvent
		for h := 0; h < g.H; h++ {
			var act, sil []int
			for fi := 0; fi < g.Fi; fi++ {
				if mask[fi*g.H+h] {
					act = append(act, fi)
				} else {
					sil = append(sil, fi)
				}
			}
			if len(act) == 0 || len(sil) == 0 {
				continue
			}
			ev := swapEvent{hcu: h,
				silence: act[rng.Intn(len(act))],
				enable:  sil[rng.Intn(len(sil))]}
			mask[ev.silence*g.H+h] = false
			mask[ev.enable*g.H+h] = true
			evs = append(evs, ev)
		}
		sc.swaps[s] = evs
	}
	return sc
}

// model is one replica of the layer state, stepped by either the dense or
// the sparse path of its kernel set.
type model[T tensor.Float] struct {
	geom Geometry
	be   backend.Kernels[T]
	st   backend.LayerStepper[T] // non-nil: sparse steps go through LayerStep

	mask []bool
	bi   *tensor.BlockIndex

	ci, cj, kbi, bias []T
	cij, w            *tensor.Dense[T]
	act               *tensor.Dense[T]
	mean              []T
}

// newModel builds a model with the scripted initial state: traces seeded
// from cfg.Seed (identically in every model), parameters derived by a full
// masked refresh so the silent-zeros invariant holds from step zero.
func newModel[T tensor.Float](cfg Config, sc *script, be backend.Kernels[T],
	st backend.LayerStepper[T]) *model[T] {
	g := cfg.Geom
	in, units := g.Fi*g.Mi, g.H*g.M
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	m := &model[T]{
		geom: g, be: be, st: st,
		mask: append([]bool(nil), sc.mask0...),
		ci:   make([]T, in),
		cj:   make([]T, units),
		kbi:  make([]T, units),
		bias: make([]T, units),
		cij:  tensor.NewDense[T](in, units),
		w:    tensor.NewDense[T](in, units),
		act:  tensor.NewDense[T](cfg.Batch, units),
		mean: make([]T, units),
	}
	for i := range m.ci {
		m.ci[i] = T(rng.Float64()*0.9 + 0.05)
	}
	for j := range m.cj {
		m.cj[j] = T(rng.Float64()*0.9 + 0.05)
		m.kbi[j] = T(1 + 0.2*rng.Float64())
	}
	for i := range m.cij.Data {
		m.cij.Data[i] = T(rng.Float64()*0.9 + 0.05)
	}
	m.bi = tensor.NewBlockIndex(m.mask, g.Fi, g.Mi, g.H, g.M)
	m.refresh()
	return m
}

// refresh is the full masked parameter re-derivation every mask change runs:
// active weight blocks from the traces, silent blocks to exact zeros.
func (m *model[T]) refresh() {
	g := m.geom
	m.be.UpdateWeights(m.w, m.ci, m.cj, m.cij, m.mask, g.Fi, g.Mi, g.H, g.M, epsilon)
	m.be.UpdateBias(m.bias, m.kbi, m.cj, epsilon)
}

// homeostasis is the float64-formulated gain update shared by both paths
// (matching core's trainer; the fused step's in-pass version is equivalent).
func (m *model[T]) homeostasis() {
	fair := math.Log(1 / float64(m.geom.M))
	pmin := pminFr / float64(m.geom.M)
	for j, v := range m.cj {
		target := 1.0
		if float64(v) < pmin {
			target = fair / math.Log(math.Max(float64(v), epsilon))
		}
		m.kbi[j] = T((1-taubdt)*float64(m.kbi[j]) + taubdt*target)
	}
}

// denseStep is the dense-masked composed sequence — the reference semantics.
func (m *model[T]) denseStep(idx [][]int32) {
	g := m.geom
	m.be.OneHotMatMul(m.act, idx, m.w)
	m.be.AddBias(m.act, m.bias)
	m.be.SoftmaxGroups(m.act, g.H, g.M, temper)
	m.be.OneHotMeanLerp(m.ci, idx, taupdt)
	tensor.ColMeans(m.mean, m.act)
	m.be.Lerp(m.cj, m.mean, taupdt)
	m.be.OneHotOuterLerp(m.cij, idx, m.act, taupdt)
	m.homeostasis()
	m.be.UpdateWeights(m.w, m.ci, m.cj, m.cij, m.mask, g.Fi, g.Mi, g.H, g.M, epsilon)
	m.be.UpdateBias(m.bias, m.kbi, m.cj, epsilon)
}

// sparseStep is the block-sparse composed sequence, or — when the model was
// built around a LayerStepper — the whole-layer fused step with a block
// index.
func (m *model[T]) sparseStep(idx [][]int32) {
	g := m.geom
	if m.st != nil {
		m.st.LayerStep(idx, m.act, m.ci, m.cj, m.cij, m.w, m.bias, m.mask,
			backend.LayerGeom{Fi: g.Fi, Mi: g.Mi, H: g.H, M: g.M},
			backend.LayerHyper[T]{
				Taupdt: taupdt, Taubdt: taubdt, PMinFraction: pminFr,
				Temperature: temper, Eps: epsilon, Kbi: m.kbi, Blocks: m.bi,
			})
		return
	}
	m.be.OneHotMatMulSparse(m.act, idx, m.w, m.bi)
	m.be.AddBias(m.act, m.bias)
	m.be.SoftmaxGroups(m.act, g.H, g.M, temper)
	m.be.OneHotMeanLerp(m.ci, idx, taupdt)
	tensor.ColMeans(m.mean, m.act)
	m.be.Lerp(m.cj, m.mean, taupdt)
	m.be.OneHotOuterLerpSparse(m.cij, idx, m.act, taupdt, m.bi)
	m.homeostasis()
	m.be.UpdateWeightsSparse(m.w, m.ci, m.cj, m.cij, m.bi, epsilon)
	m.be.UpdateBias(m.bias, m.kbi, m.cj, epsilon)
}

// applySwap mutates the mask per the scripted events, re-seeds each newly
// activated joint-trace block to Ci·Cj (the frozen-silent regrow contract),
// rebuilds the block index and runs the full masked refresh — exactly what
// core does on every mask change, in both regimes.
func (m *model[T]) applySwap(evs []swapEvent) {
	g := m.geom
	for _, ev := range evs {
		m.mask[ev.silence*g.H+ev.hcu] = false
		m.mask[ev.enable*g.H+ev.hcu] = true
		for a := ev.enable * g.Mi; a < (ev.enable+1)*g.Mi; a++ {
			row := m.cij.Row(a)
			for j := ev.hcu * g.M; j < (ev.hcu+1)*g.M; j++ {
				row[j] = m.ci[a] * m.cj[j]
			}
		}
	}
	m.bi = tensor.NewBlockIndex(m.mask, g.Fi, g.Mi, g.H, g.M)
	m.refresh()
}

// maxDiff returns the largest |a−b| over a slice pair.
func maxDiff[T tensor.Float](a, b []T) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(float64(a[i]) - float64(b[i])); v > d {
			d = v
		}
	}
	return d
}

// maxActiveDiff returns the largest |a−b| over the active blocks of a pair
// of block-tiled matrices (the silent blocks of the dense reference keep
// evolving while the sparse regime freezes them — by design, not a defect).
func maxActiveDiff[T tensor.Float](a, b *tensor.Dense[T], mask []bool, g Geometry) float64 {
	var d float64
	for i := 0; i < a.Rows; i++ {
		fi := i / g.Mi
		ra, rb := a.Row(i), b.Row(i)
		for h := 0; h < g.H; h++ {
			if !mask[fi*g.H+h] {
				continue
			}
			if v := maxDiff(ra[h*g.M:(h+1)*g.M], rb[h*g.M:(h+1)*g.M]); v > d {
				d = v
			}
		}
	}
	return d
}

// checkSilentZeros fails if any silent weight block holds a non-zero — the
// invariant the sparse weight kernel relies on to skip them.
func checkSilentZeros[T tensor.Float](t *testing.T, name string, step int,
	w *tensor.Dense[T], mask []bool, g Geometry) {
	t.Helper()
	for i := 0; i < w.Rows; i++ {
		fi := i / g.Mi
		row := w.Row(i)
		for h := 0; h < g.H; h++ {
			if mask[fi*g.H+h] {
				continue
			}
			for j := h * g.M; j < (h+1)*g.M; j++ {
				if row[j] != 0 {
					t.Fatalf("%s step %d: silent W block (fi=%d,h=%d) holds %v at col %d",
						name, step, fi, h, row[j], j)
					return
				}
			}
		}
	}
}

// compare checks every observable of cand against ref within tol; cijActive
// restricts the joint-trace comparison to active blocks (dense reference).
func compare[T tensor.Float](t *testing.T, step int, name, refName string,
	cand, ref *model[T], tol float64, cijActive bool) {
	t.Helper()
	fields := []struct {
		field string
		diff  float64
	}{
		{"act", maxDiff(cand.act.Data, ref.act.Data)},
		{"ci", maxDiff(cand.ci, ref.ci)},
		{"cj", maxDiff(cand.cj, ref.cj)},
		{"kbi", maxDiff(cand.kbi, ref.kbi)},
		{"bias", maxDiff(cand.bias, ref.bias)},
		{"w", maxDiff(cand.w.Data, ref.w.Data)},
	}
	if cijActive {
		fields = append(fields, struct {
			field string
			diff  float64
		}{"cij(active)", maxActiveDiff(cand.cij, ref.cij, cand.mask, cand.geom)})
	} else {
		fields = append(fields, struct {
			field string
			diff  float64
		}{"cij", maxDiff(cand.cij.Data, ref.cij.Data)})
	}
	for _, f := range fields {
		if f.diff > tol {
			t.Fatalf("step %d: %s diverges from %s on %s by %g (tol %g)",
				step, name, refName, f.field, f.diff, tol)
		}
	}
}

// Candidate names one kernel set under test. Stepper, when non-nil, routes
// the sparse path through LayerStep instead of the composed sequence.
type Candidate[T tensor.Float] struct {
	Name    string
	Kernels backend.Kernels[T]
	Stepper backend.LayerStepper[T]
}

// Run executes the scripted simulation: a dense-masked reference and a
// naive-sparse baseline (both on the naive kernels), plus the sparse path of
// every candidate. After every step each candidate is compared bit-for-bit
// (CrossTol) against the naive-sparse baseline and within DenseTol against
// the dense-masked reference, and every sparse model's silent weight blocks
// are checked to be exact zeros.
func Run[T tensor.Float](t *testing.T, cfg Config, naive backend.Kernels[T],
	cands []Candidate[T]) {
	t.Helper()
	if cfg.K < 1 || cfg.K > cfg.Geom.Fi {
		t.Fatalf("backendtest: K = %d out of range for Fi = %d", cfg.K, cfg.Geom.Fi)
	}
	sc := newScript(cfg)
	ref := newModel(cfg, sc, naive, nil)  // dense-masked reference
	base := newModel(cfg, sc, naive, nil) // naive sparse baseline
	models := make([]*model[T], len(cands))
	for i, c := range cands {
		models[i] = newModel(cfg, sc, c.Kernels, c.Stepper)
	}
	for s := 0; s < cfg.Steps; s++ {
		if evs, ok := sc.swaps[s]; ok {
			ref.applySwap(evs)
			base.applySwap(evs)
			for _, m := range models {
				m.applySwap(evs)
			}
		}
		idx := sc.batches[s]
		ref.denseStep(idx)
		base.sparseStep(idx)
		compare(t, s, "naive-sparse", "dense-masked", base, ref, cfg.DenseTol, true)
		checkSilentZeros(t, "naive-sparse", s, base.w, base.mask, cfg.Geom)
		for i, m := range models {
			m.sparseStep(idx)
			compare(t, s, cands[i].Name, "naive-sparse", m, base, cfg.CrossTol, false)
			checkSilentZeros(t, cands[i].Name, s, m.w, m.mask, cfg.Geom)
		}
	}
}
