package posit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var formats = []Format{Posit8, Posit16, Posit32, {Bits: 12, ES: 1}}

func TestValidate(t *testing.T) {
	for _, f := range formats {
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if (Format{Bits: 1, ES: 0}).Validate() == nil {
		t.Fatal("1-bit format accepted")
	}
	if (Format{Bits: 16, ES: 4}).Validate() == nil {
		t.Fatal("es=4 accepted")
	}
}

func TestZeroAndNaR(t *testing.T) {
	for _, f := range formats {
		if f.Encode(0) != 0 || f.Decode(0) != 0 {
			t.Fatalf("%+v: zero does not round-trip", f)
		}
		nar := f.Encode(math.NaN())
		if nar != uint32(1)<<(uint(f.Bits)-1) {
			t.Fatalf("%+v: NaR pattern %#x", f, nar)
		}
		if !math.IsNaN(f.Decode(nar)) {
			t.Fatalf("%+v: NaR does not decode to NaN", f)
		}
	}
}

func TestExactSmallIntegers(t *testing.T) {
	// Posits represent small powers of two and nearby integers exactly.
	for _, f := range []Format{Posit16, Posit32} {
		for _, v := range []float64{1, 2, 4, 0.5, 0.25, -1, -2, 1.5, -0.75} {
			if got := f.Quantize(v); got != v {
				t.Fatalf("%+v: Quantize(%v) = %v", f, v, got)
			}
		}
	}
}

func TestSignSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		q := Posit16.Quantize(x)
		qn := Posit16.Quantize(-x)
		return q == -qn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripMonotone: quantization must be monotone non-decreasing —
// order of weights is preserved, which is what keeps argmax decisions
// stable under posit storage.
func TestRoundTripMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range formats {
		for trial := 0; trial < 300; trial++ {
			a := rng.NormFloat64() * 5
			b := rng.NormFloat64() * 5
			if a > b {
				a, b = b, a
			}
			qa, qb := f.Quantize(a), f.Quantize(b)
			if qa > qb {
				t.Fatalf("%+v: monotonicity violated: Q(%v)=%v > Q(%v)=%v",
					f, a, qa, b, qb)
			}
		}
	}
}

// TestTaperedPrecision: the relative error near 1 must be far smaller than
// near the extremes — the defining property of posits, and the reason they
// suit BCPNN's near-zero log-odds weights.
func TestTaperedPrecision(t *testing.T) {
	f := Posit16
	relErr := func(x float64) float64 {
		return math.Abs(f.Quantize(x)-x) / math.Abs(x)
	}
	nearOne := relErr(1.2345)
	extreme := relErr(2.34e6)
	if nearOne > 1e-3 {
		t.Fatalf("near-1 relative error %g too large", nearOne)
	}
	if extreme < 10*nearOne {
		t.Fatalf("precision not tapered: near-1 %g vs extreme %g", nearOne, extreme)
	}
}

func TestSaturationNoInfinity(t *testing.T) {
	for _, f := range formats {
		max := f.MaxValue()
		if got := f.Quantize(math.Inf(1)); got != max {
			t.Fatalf("%+v: +Inf quantized to %v, want %v", f, got, max)
		}
		if got := f.Quantize(1e300); got != max {
			t.Fatalf("%+v: huge value %v, want saturation %v", f, got, max)
		}
		if got := f.Quantize(math.Inf(-1)); got != -max {
			t.Fatalf("%+v: -Inf quantized to %v", f, got)
		}
	}
}

func TestTinyValuesDoNotFlushToZero(t *testing.T) {
	// Unlike IEEE denormal flushing, nonzero posits never round to zero.
	for _, f := range formats {
		if got := f.Quantize(1e-300); got == 0 {
			t.Fatalf("%+v: tiny value flushed to zero", f)
		}
		if got := f.Quantize(1e-300); got != f.MinValue() {
			t.Fatalf("%+v: tiny value %v, want MinValue %v", f, got, f.MinValue())
		}
	}
}

// TestQuantizeIdempotent: quantizing an already-quantized value must be a
// no-op (the fixed-point property of a correct rounder).
func TestQuantizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, f := range formats {
		for trial := 0; trial < 300; trial++ {
			x := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			q := f.Quantize(x)
			if q2 := f.Quantize(q); q2 != q {
				t.Fatalf("%+v: not idempotent: %v -> %v -> %v", f, x, q, q2)
			}
		}
	}
}

// TestPrecisionOrdering: wider formats must be at least as accurate.
func TestPrecisionOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var err8, err16, err32 float64
	for trial := 0; trial < 500; trial++ {
		x := rng.NormFloat64() * 3
		err8 += math.Abs(Posit8.Quantize(x) - x)
		err16 += math.Abs(Posit16.Quantize(x) - x)
		err32 += math.Abs(Posit32.Quantize(x) - x)
	}
	if !(err32 < err16 && err16 < err8) {
		t.Fatalf("precision not ordered: p8=%g p16=%g p32=%g", err8, err16, err32)
	}
}

func TestQuantizeSliceReportsMaxErr(t *testing.T) {
	xs := []float64{0, 1, 3.14159, -2.71828}
	orig := append([]float64(nil), xs...)
	maxErr := Posit8.QuantizeSlice(xs)
	if maxErr <= 0 {
		t.Fatal("no rounding error on irrational inputs is implausible for posit8")
	}
	worst := 0.0
	for i := range xs {
		d := math.Abs(xs[i] - orig[i])
		if d > worst {
			worst = d
		}
	}
	if math.Abs(worst-maxErr) > 1e-15 {
		t.Fatalf("reported maxErr %g, recomputed %g", maxErr, worst)
	}
}

// TestDecodeEncodeAllPosit8 exhaustively round-trips every posit8 pattern:
// Decode then Encode must reproduce the pattern (codec bijectivity on the
// representable set).
func TestDecodeEncodeAllPosit8(t *testing.T) {
	f := Posit8
	for bits := uint32(0); bits < 256; bits++ {
		v := f.Decode(bits)
		if math.IsNaN(v) {
			continue // NaR covered elsewhere
		}
		back := f.Encode(v)
		if back != bits {
			t.Fatalf("pattern %#02x decodes to %v but re-encodes to %#02x", bits, v, back)
		}
	}
}
