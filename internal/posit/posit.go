// Package posit implements the posit number format (Gustafson's type-III
// unum) in software: encode/decode between float64 and posit bit patterns,
// plus quantization helpers.
//
// StreamBrain's FPGA backend is built for "architectural exploration such as
// parallelism or reduced/different numerical representation (e.g., Posits)"
// (paper §III-A, citing Podobas' posit-FPGA work [17]). This package is the
// numerical half of that exploration: the fpgasim backend quantizes the
// BCPNN weight storage through posits, and the ablation bench measures the
// accuracy cost of posit(16,1) and posit(8,0) weights against float64.
//
// Format recap: a posit(n, es) value is [sign | regime | exponent | fraction]
// where the regime is a unary-coded super-exponent of useed = 2^(2^es).
// Posits have tapered precision — maximal near ±1, decaying toward the
// extremes — which matches BCPNN weights (log-odds clustered around 0).
package posit

import (
	"fmt"
	"math"
)

// Format describes a posit configuration.
type Format struct {
	// Bits is the total width (2..32 supported here).
	Bits int
	// ES is the exponent field width.
	ES int
}

// Standard formats.
var (
	// Posit16 is posit(16,1), the common FPGA middle ground.
	Posit16 = Format{Bits: 16, ES: 1}
	// Posit8 is posit(8,0), the aggressive low-precision point.
	Posit8 = Format{Bits: 8, ES: 0}
	// Posit32 is posit(32,2), near-float32 fidelity.
	Posit32 = Format{Bits: 32, ES: 2}
)

// Validate reports an invalid configuration.
func (f Format) Validate() error {
	if f.Bits < 2 || f.Bits > 32 {
		return fmt.Errorf("posit: bits %d out of range [2,32]", f.Bits)
	}
	if f.ES < 0 || f.ES > 3 {
		return fmt.Errorf("posit: es %d out of range [0,3]", f.ES)
	}
	return nil
}

// useed returns 2^(2^es), the regime scaling base.
func (f Format) useed() float64 {
	return math.Pow(2, math.Pow(2, float64(f.ES)))
}

// MaxValue returns the largest representable magnitude: useed^(Bits-2).
func (f Format) MaxValue() float64 {
	return math.Pow(f.useed(), float64(f.Bits-2))
}

// MinValue returns the smallest positive representable magnitude.
func (f Format) MinValue() float64 {
	return 1 / f.MaxValue()
}

// Encode rounds a float64 to the nearest posit bit pattern (two's-complement
// in the low f.Bits bits of the result). NaN maps to the NaR pattern
// (sign bit only); ±Inf saturate to ±MaxValue as posits have no infinities.
func (f Format) Encode(x float64) uint32 {
	n := uint(f.Bits)
	signMask := uint32(1) << (n - 1)
	if math.IsNaN(x) {
		return signMask // NaR
	}
	if x == 0 {
		return 0
	}
	neg := x < 0 || math.IsInf(x, -1)
	ax := math.Abs(x)
	if math.IsInf(x, 0) || ax >= f.MaxValue() {
		ax = f.MaxValue()
	}
	if ax <= f.MinValue() {
		ax = f.MinValue()
	}

	// Decompose |x| = 2^e_total · m with m ∈ [1, 2).
	eTotal := math.Floor(math.Log2(ax))
	m := ax / math.Pow(2, eTotal)
	// Split the total binary exponent into regime (k) and exponent (e):
	// e_total = k·2^es + e with 0 <= e < 2^es.
	pow := 1 << uint(f.ES)
	k := int(math.Floor(eTotal / float64(pow)))
	e := int(eTotal) - k*pow
	if e < 0 { // floor already handles this, defensive
		e += pow
		k--
	}

	// Assemble [regime | exponent | fraction] after the sign bit, from the
	// most significant end.
	var bits uint32
	var used uint // bits consumed after sign
	appendBit := func(b uint32) {
		if used >= n-1 {
			return
		}
		bits = (bits << 1) | (b & 1)
		used++
	}
	// Regime: k >= 0 → k+1 ones then a zero; k < 0 → -k zeros then a one.
	if k >= 0 {
		for i := 0; i <= k; i++ {
			appendBit(1)
		}
		appendBit(0)
	} else {
		for i := 0; i < -k; i++ {
			appendBit(0)
		}
		appendBit(1)
	}
	// Exponent bits (es of them, MSB first).
	for i := f.ES - 1; i >= 0; i-- {
		appendBit(uint32(e>>uint(i)) & 1)
	}
	// Fraction bits: remaining space. Track the first dropped bit and the
	// sticky OR of the rest for round-to-nearest-even.
	frac := m - 1 // in [0,1)
	var guard uint32
	var sticky bool
	fracStart := used
	for used < n-1 {
		frac *= 2
		b := uint32(0)
		if frac >= 1 {
			b = 1
			frac -= 1
		}
		appendBit(b)
	}
	_ = fracStart
	// Guard bit = next bit beyond capacity.
	frac *= 2
	if frac >= 1 {
		guard = 1
		frac -= 1
	}
	if frac > 0 {
		sticky = true
	}
	// Left-align into the n-1 payload bits (regime may have been truncated,
	// in which case `used` == n-1 already and alignment is a no-op).
	payload := bits << (n - 1 - used)
	// Round to nearest, ties to even.
	if guard == 1 && (sticky || payload&1 == 1) {
		payload++
		if payload >= signMask { // overflow into the sign position: saturate
			payload = signMask - 1
		}
	}
	if payload == 0 {
		payload = 1 // never round a nonzero value to zero
	}
	if neg {
		// Two's complement within n bits.
		payload = (^payload + 1) & (signMask | (signMask - 1))
	}
	return payload
}

// Decode converts a posit bit pattern back to float64. The NaR pattern
// decodes to NaN.
func (f Format) Decode(bits uint32) float64 {
	n := uint(f.Bits)
	mask := uint32(1)<<n - 1
	bits &= mask
	signMask := uint32(1) << (n - 1)
	if bits == 0 {
		return 0
	}
	if bits == signMask {
		return math.NaN() // NaR
	}
	neg := bits&signMask != 0
	if neg {
		bits = (^bits + 1) & mask
	}
	// Scan the regime.
	pos := int(n) - 2 // bit index after the sign
	first := (bits >> uint(pos)) & 1
	k := 0
	run := 0
	for pos >= 0 && (bits>>uint(pos))&1 == first {
		run++
		pos--
	}
	if first == 1 {
		k = run - 1
	} else {
		k = -run
	}
	pos-- // skip the terminating regime bit (if any remained)
	// Exponent bits.
	e := 0
	for i := 0; i < f.ES; i++ {
		e <<= 1
		if pos >= 0 {
			e |= int(bits>>uint(pos)) & 1
			pos--
		}
	}
	// Fraction.
	frac := 1.0
	scale := 0.5
	for ; pos >= 0; pos-- {
		if (bits>>uint(pos))&1 == 1 {
			frac += scale
		}
		scale /= 2
	}
	pow := 1 << uint(f.ES)
	val := frac * math.Pow(2, float64(k*pow+e))
	if neg {
		val = -val
	}
	return val
}

// Quantize rounds x through the posit format (Encode then Decode) — the
// value the FPGA would actually store.
func (f Format) Quantize(x float64) float64 { return f.Decode(f.Encode(x)) }

// QuantizeSlice rounds every element of xs in place and returns the maximum
// absolute rounding error, the number the precision-ablation bench reports.
func (f Format) QuantizeSlice(xs []float64) (maxErr float64) {
	for i, v := range xs {
		q := f.Quantize(v)
		if d := math.Abs(q - v); d > maxErr {
			maxErr = d
		}
		xs[i] = q
	}
	return maxErr
}
