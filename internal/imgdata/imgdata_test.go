package imgdata

import (
	"bytes"
	"math"
	"testing"
)

// cifarBytes builds an in-memory CIFAR-10 stream of n records with the
// given labels; pixel planes are filled with a recognizable ramp.
func cifarBytes(labels []int) []byte {
	var buf bytes.Buffer
	for _, lab := range labels {
		buf.WriteByte(byte(lab))
		for plane := 0; plane < 3; plane++ {
			for p := 0; p < cifarPixels; p++ {
				buf.WriteByte(byte((p + plane) % 256))
			}
		}
	}
	return buf.Bytes()
}

func TestReadCIFAR10(t *testing.T) {
	raw := cifarBytes([]int{3, 7, 0})
	d, err := ReadCIFAR10(bytes.NewReader(raw), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 || d.Features() != cifarPixels {
		t.Fatalf("shape %dx%d", d.Len(), d.Features())
	}
	if d.Y[0] != 3 || d.Y[1] != 7 || d.Y[2] != 0 {
		t.Fatalf("labels %v", d.Y)
	}
	if d.Classes != 8 { // max label 7 → 8 classes
		t.Fatalf("classes %d", d.Classes)
	}
	for _, v := range d.X.Row(0) {
		if v < 0 || v > 1 {
			t.Fatalf("pixel out of range: %v", v)
		}
	}
	// Luma of (p, p+1, p+2) ramp at p=0: (0.299*0+0.587*1+0.114*2)/255.
	want := (0.587 + 0.228) / 255
	if math.Abs(d.X.At(0, 0)-want) > 1e-9 {
		t.Fatalf("luma conversion wrong: %v vs %v", d.X.At(0, 0), want)
	}
}

func TestReadCIFAR10MaxRows(t *testing.T) {
	raw := cifarBytes([]int{1, 2, 3, 4})
	d, err := ReadCIFAR10(bytes.NewReader(raw), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("maxRows ignored: %d", d.Len())
	}
}

func TestReadCIFAR10Truncated(t *testing.T) {
	raw := cifarBytes([]int{1})[:100]
	if _, err := ReadCIFAR10(bytes.NewReader(raw), 0); err == nil {
		t.Fatal("truncated record accepted")
	}
	if _, err := ReadCIFAR10(bytes.NewReader(nil), 0); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadCIFAR100FineLabels(t *testing.T) {
	// CIFAR-100 record: coarse byte, fine byte, then planes.
	var buf bytes.Buffer
	buf.WriteByte(5)  // coarse
	buf.WriteByte(42) // fine
	for i := 0; i < 3*cifarPixels; i++ {
		buf.WriteByte(byte(i % 251))
	}
	d, err := ReadCIFAR100(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Y[0] != 42 {
		t.Fatalf("fine label %d, want 42", d.Y[0])
	}
}

// stlBytes builds one STL-10 image whose R plane holds a column-major ramp.
func stlBytes(n int) []byte {
	var buf bytes.Buffer
	for img := 0; img < n; img++ {
		for plane := 0; plane < 3; plane++ {
			for p := 0; p < stlPixels; p++ {
				buf.WriteByte(byte((p + img) % 256))
			}
		}
	}
	return buf.Bytes()
}

func TestReadSTL10WithLabels(t *testing.T) {
	imgs := stlBytes(2)
	labels := []byte{1, 10} // STL labels are 1-based
	d, err := ReadSTL10(bytes.NewReader(imgs), bytes.NewReader(labels), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Features() != stlPixels {
		t.Fatalf("shape %dx%d", d.Len(), d.Features())
	}
	if d.Y[0] != 0 || d.Y[1] != 9 {
		t.Fatalf("labels %v (must be shifted to 0-based)", d.Y)
	}
	if d.Classes != 10 {
		t.Fatalf("classes %d", d.Classes)
	}
}

func TestReadSTL10Unlabeled(t *testing.T) {
	d, err := ReadSTL10(bytes.NewReader(stlBytes(3)), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("len %d", d.Len())
	}
	for _, y := range d.Y {
		if y != 0 {
			t.Fatal("unlabeled split must carry zero labels")
		}
	}
}

func TestReadSTL10BadLabel(t *testing.T) {
	if _, err := ReadSTL10(bytes.NewReader(stlBytes(1)),
		bytes.NewReader([]byte{11}), 0); err == nil {
		t.Fatal("label 11 accepted")
	}
	if _, err := ReadSTL10(bytes.NewReader(stlBytes(1)),
		bytes.NewReader([]byte{0}), 0); err == nil {
		t.Fatal("label 0 accepted")
	}
}

func TestReadSTL10ColumnMajorTranspose(t *testing.T) {
	// Build an image whose R plane is 255 only at column-major position 1
	// (column 0, row 1); after transposition that pixel must land at
	// row-major (row 1, col 0) = index 96.
	record := make([]byte, 3*stlPixels)
	record[1] = 255
	d, err := ReadSTL10(bytes.NewReader(record), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	row := d.X.Row(0)
	bright := -1
	for p, v := range row {
		if v > 0.2 {
			bright = p
			break
		}
	}
	if bright != stlSide {
		t.Fatalf("bright pixel at %d, want %d (column-major transpose)", bright, stlSide)
	}
}

func TestSyntheticTextures(t *testing.T) {
	d := SyntheticTextures(40, 16, 4, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 40 || d.Features() != 256 || d.Classes != 4 {
		t.Fatalf("bad geometry %d/%d/%d", d.Len(), d.Features(), d.Classes)
	}
	counts := make([]int, 4)
	for _, y := range d.Y {
		counts[y]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples", c, n)
		}
	}
	// Distinct classes must have distinct mean images.
	mean := func(class int) []float64 {
		m := make([]float64, 256)
		n := 0
		for i := 0; i < d.Len(); i++ {
			if d.Y[i] != class {
				continue
			}
			n++
			for p, v := range d.X.Row(i) {
				m[p] += v
			}
		}
		for p := range m {
			m[p] /= float64(n)
		}
		return m
	}
	m0, m1 := mean(0), mean(2)
	var dist float64
	for p := range m0 {
		dd := m0[p] - m1[p]
		dist += dd * dd
	}
	if math.Sqrt(dist) < 0.5 {
		t.Fatalf("texture classes too similar: %v", math.Sqrt(dist))
	}
}

func TestEncodeIntensity(t *testing.T) {
	d := SyntheticTextures(10, 8, 2, 2)
	e := EncodeIntensity(d, 4)
	if e.Hypercolumns != 64 || e.UnitsPerHC != 4 {
		t.Fatalf("geometry %dx%d", e.Hypercolumns, e.UnitsPerHC)
	}
	for s, active := range e.Idx {
		if len(active) != 64 {
			t.Fatalf("sample %d: %d active", s, len(active))
		}
		for p, a := range active {
			if int(a)/4 != p {
				t.Fatalf("unit %d outside hypercolumn %d", a, p)
			}
			bin := int(a) % 4
			v := d.X.At(s, p)
			wantBin := int(v * 4)
			if wantBin > 3 {
				wantBin = 3
			}
			if bin != wantBin {
				t.Fatalf("pixel %v binned to %d, want %d", v, bin, wantBin)
			}
		}
	}
}

func TestEncodeIntensityBadBinsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodeIntensity(SyntheticTextures(2, 4, 2, 3), 1)
}
