// Package imgdata provides the remaining StreamBrain data loaders: CIFAR-10/
// CIFAR-100 (binary format) and STL-10 (binary format), with synthetic
// fallbacks for offline use. §III of the paper lists exactly this loader
// set ("data-loaders for several well-known datasets, including MNIST,
// STL-10, CIFAR10/100, and — more recently — the Higgs dataset"); MNIST and
// Higgs live in their own packages, this package completes the roster.
//
// Images are returned as data.Datasets with pixels in [0,1], and
// EncodeIntensity turns any image dataset into the BCPNN hypercolumn form
// (one input hypercolumn per pixel, intensity-binned).
package imgdata

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"streambrain/internal/data"
	"streambrain/internal/tensor"
)

// CIFAR geometry: 32×32 RGB.
const (
	cifarSide   = 32
	cifarPixels = cifarSide * cifarSide
	cifarRecord = 1 + 3*cifarPixels // label byte + RGB planes
)

// ReadCIFAR10 parses the CIFAR-10 binary format: records of 3073 bytes
// (1 label + 1024 R + 1024 G + 1024 B). Images are converted to grayscale
// luma in [0,1] (BCPNN consumes per-pixel hypercolumns; color planes would
// triple the input width for little benefit at this model scale).
// maxRows > 0 truncates.
func ReadCIFAR10(r io.Reader, maxRows int) (*data.Dataset, error) {
	return readCIFAR(r, maxRows, 1, 0)
}

// ReadCIFAR100 parses the CIFAR-100 binary format: records carry a coarse
// and a fine label byte before the planes; the fine label (100 classes) is
// used.
func ReadCIFAR100(r io.Reader, maxRows int) (*data.Dataset, error) {
	return readCIFAR(r, maxRows, 2, 1)
}

// readCIFAR handles both variants: labelBytes per record, labelIndex picks
// which of them becomes the class.
func readCIFAR(r io.Reader, maxRows, labelBytes, labelIndex int) (*data.Dataset, error) {
	record := make([]byte, labelBytes+3*cifarPixels)
	var rows [][]float64
	var labels []int
	maxLabel := 0
	for {
		if maxRows > 0 && len(rows) >= maxRows {
			break
		}
		_, err := io.ReadFull(r, record)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("imgdata: truncated CIFAR record %d", len(rows))
		}
		if err != nil {
			return nil, fmt.Errorf("imgdata: %w", err)
		}
		label := int(record[labelIndex])
		if label > maxLabel {
			maxLabel = label
		}
		px := make([]float64, cifarPixels)
		planes := record[labelBytes:]
		for p := 0; p < cifarPixels; p++ {
			rr := float64(planes[p])
			gg := float64(planes[cifarPixels+p])
			bb := float64(planes[2*cifarPixels+p])
			px[p] = (0.299*rr + 0.587*gg + 0.114*bb) / 255
		}
		rows = append(rows, px)
		labels = append(labels, label)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("imgdata: empty CIFAR input")
	}
	classes := maxLabel + 1
	if classes < 2 {
		classes = 2
	}
	d := &data.Dataset{
		X:       tensor.NewMatrix(len(rows), cifarPixels),
		Y:       labels,
		Classes: classes,
	}
	for i, row := range rows {
		copy(d.X.Row(i), row)
	}
	return d, nil
}

// STL-10 geometry: 96×96 RGB, column-major planes.
const (
	stlSide   = 96
	stlPixels = stlSide * stlSide
)

// ReadSTL10 parses STL-10 binary images (column-major RGB planes, 27648
// bytes per image) and the separate label stream (one byte per image,
// classes 1-10 → 0-9). labels may be nil for the unlabeled split, in which
// case all labels are 0 and Classes is 2 (the dataset is then only useful
// for unsupervised feature learning, STL-10's defining protocol — and the
// reason the paper's framework targets it).
func ReadSTL10(images io.Reader, labels io.Reader, maxRows int) (*data.Dataset, error) {
	record := make([]byte, 3*stlPixels)
	var rows [][]float64
	for {
		if maxRows > 0 && len(rows) >= maxRows {
			break
		}
		_, err := io.ReadFull(images, record)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("imgdata: truncated STL image %d", len(rows))
		}
		if err != nil {
			return nil, fmt.Errorf("imgdata: %w", err)
		}
		px := make([]float64, stlPixels)
		for p := 0; p < stlPixels; p++ {
			// Column-major within each plane.
			col := p / stlSide
			row := p % stlSide
			idx := row*stlSide + col
			rr := float64(record[p])
			gg := float64(record[stlPixels+p])
			bb := float64(record[2*stlPixels+p])
			px[idx] = (0.299*rr + 0.587*gg + 0.114*bb) / 255
		}
		rows = append(rows, px)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("imgdata: empty STL input")
	}
	d := &data.Dataset{
		X:       tensor.NewMatrix(len(rows), stlPixels),
		Y:       make([]int, len(rows)),
		Classes: 2,
	}
	for i, row := range rows {
		copy(d.X.Row(i), row)
	}
	if labels != nil {
		lab := make([]byte, len(rows))
		if _, err := io.ReadFull(labels, lab); err != nil {
			return nil, fmt.Errorf("imgdata: STL labels: %w", err)
		}
		maxLabel := 0
		for i, b := range lab {
			if b < 1 || b > 10 {
				return nil, fmt.Errorf("imgdata: STL label %d out of range", b)
			}
			d.Y[i] = int(b) - 1
			if d.Y[i] > maxLabel {
				maxLabel = d.Y[i]
			}
		}
		d.Classes = maxLabel + 1
		if d.Classes < 2 {
			d.Classes = 2
		}
	}
	return d, nil
}

// SyntheticTextures generates an offline stand-in for the natural-image
// sets: classes are distinguishable 2-D textures (oriented gratings of
// class-dependent angle and frequency plus noise), side×side pixels in
// [0,1]. It exercises the identical loader→encode→train code path.
func SyntheticTextures(n, side, classes int, seed int64) *data.Dataset {
	if classes < 2 {
		classes = 2
	}
	rng := rand.New(rand.NewSource(seed))
	d := &data.Dataset{
		X:       tensor.NewMatrix(n, side*side),
		Y:       make([]int, n),
		Classes: classes,
	}
	for i := 0; i < n; i++ {
		class := i % classes
		angle := float64(class) * math.Pi / float64(classes)
		freq := 2 + float64(class%3)
		phase := rng.Float64() * 2 * math.Pi
		cos, sin := math.Cos(angle), math.Sin(angle)
		row := d.X.Row(i)
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				u := (float64(x)/float64(side))*cos + (float64(y)/float64(side))*sin
				v := 0.5 + 0.5*math.Sin(2*math.Pi*freq*u+phase)
				v += 0.1 * rng.NormFloat64()
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				row[y*side+x] = v
			}
		}
		d.Y[i] = class
	}
	perm := rng.Perm(n)
	return d.Subset(perm)
}

// EncodeIntensity converts an image dataset to BCPNN hypercolumn form: one
// input hypercolumn per pixel with `bins` intensity levels (bins=2 is the
// MNIST dual-rail scheme; more bins capture gray structure).
func EncodeIntensity(d *data.Dataset, bins int) *data.Encoded {
	if bins < 2 {
		panic("imgdata: EncodeIntensity needs bins >= 2")
	}
	e := &data.Encoded{
		Idx:          make([][]int32, d.Len()),
		Y:            append([]int(nil), d.Y...),
		Classes:      d.Classes,
		Hypercolumns: d.Features(),
		UnitsPerHC:   bins,
	}
	for s := 0; s < d.Len(); s++ {
		row := d.X.Row(s)
		active := make([]int32, len(row))
		for p, v := range row {
			b := int(v * float64(bins))
			if b >= bins {
				b = bins - 1
			}
			if b < 0 {
				b = 0
			}
			active[p] = int32(p*bins + b)
		}
		e.Idx[s] = active
	}
	return e
}
