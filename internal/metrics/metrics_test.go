package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 0, 1, 1}, []int{1, 0, 0, 1}); a != 0.75 {
		t.Fatalf("Accuracy = %v, want 0.75", a)
	}
	if a := Accuracy(nil, nil); a != 0 {
		t.Fatalf("empty Accuracy = %v, want 0", a)
	}
}

func TestAccuracyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy([]int{1}, []int{1, 2})
}

func TestConfusionMatrix(t *testing.T) {
	label := []int{0, 0, 1, 1, 1}
	pred := []int{0, 1, 1, 1, 0}
	cm := NewConfusionMatrix(2, label, pred)
	if cm.Counts[0][0] != 1 || cm.Counts[0][1] != 1 || cm.Counts[1][1] != 2 || cm.Counts[1][0] != 1 {
		t.Fatalf("bad counts: %v", cm.Counts)
	}
	if a := cm.Accuracy(); math.Abs(a-0.6) > 1e-12 {
		t.Fatalf("cm accuracy = %v", a)
	}
	if r := cm.Recall(1); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	if p := cm.Precision(1); math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", p)
	}
	if cm.String() == "" {
		t.Fatal("empty String")
	}
}

func TestConfusionOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewConfusionMatrix(2, []int{2}, []int{0})
}

func TestAUCPerfectClassifier(t *testing.T) {
	score := []float64{0.9, 0.8, 0.2, 0.1}
	label := []int{1, 1, 0, 0}
	if a := AUC(score, label); math.Abs(a-1) > 1e-12 {
		t.Fatalf("perfect AUC = %v", a)
	}
}

func TestAUCInvertedClassifier(t *testing.T) {
	score := []float64{0.1, 0.2, 0.8, 0.9}
	label := []int{1, 1, 0, 0}
	if a := AUC(score, label); math.Abs(a-0) > 1e-12 {
		t.Fatalf("inverted AUC = %v", a)
	}
}

func TestAUCConstantScores(t *testing.T) {
	// All-equal scores: a single tie group, AUC must be exactly 0.5.
	score := []float64{0.5, 0.5, 0.5, 0.5}
	label := []int{1, 0, 1, 0}
	if a := AUC(score, label); math.Abs(a-0.5) > 1e-12 {
		t.Fatalf("constant-score AUC = %v, want 0.5", a)
	}
}

func TestAUCSingleClassConvention(t *testing.T) {
	if a := AUC([]float64{1, 2}, []int{1, 1}); a != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", a)
	}
}

// TestAUCMatchesMannWhitney: AUC equals the Mann–Whitney U statistic —
// P(score_pos > score_neg) + 0.5·P(tie). Property-checked on random data.
func TestAUCMatchesMannWhitney(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		score := make([]float64, n)
		label := make([]int, n)
		pos := false
		neg := false
		for i := range score {
			score[i] = float64(rng.Intn(8)) // coarse grid forces ties
			label[i] = rng.Intn(2)
			if label[i] == 1 {
				pos = true
			} else {
				neg = true
			}
		}
		if !pos || !neg {
			return true // convention case tested separately
		}
		var u, pairs float64
		for i := range score {
			if label[i] != 1 {
				continue
			}
			for j := range score {
				if label[j] != 0 {
					continue
				}
				pairs++
				switch {
				case score[i] > score[j]:
					u++
				case score[i] == score[j]:
					u += 0.5
				}
			}
		}
		return math.Abs(AUC(score, label)-u/pairs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestROCMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	score := make([]float64, 200)
	label := make([]int, 200)
	for i := range score {
		score[i] = rng.NormFloat64()
		label[i] = rng.Intn(2)
	}
	curve := ROC(score, label)
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("ROC not monotone at %d", i)
		}
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("ROC does not end at (1,1): %+v", last)
	}
}

func TestROCNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ROC([]float64{math.NaN()}, []int{1})
}

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2.138089935) > 1e-6 {
		t.Fatalf("StdDev = %v", s)
	}
	if StdDev([]float64{3}) != 0 {
		t.Fatal("single-sample StdDev must be 0")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty Mean must be 0")
	}
}

func TestQuantilesUniform(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	cuts := Quantiles(xs, 10)
	if len(cuts) != 9 {
		t.Fatalf("10-quantiles must give 9 cuts, got %d", len(cuts))
	}
	for k, c := range cuts {
		want := float64(k+1) / 10 * 999
		if math.Abs(c-want) > 1e-9 {
			t.Fatalf("cut %d = %v, want %v", k, c, want)
		}
	}
}

func TestQuantilesDoNotModifyInput(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	Quantiles(xs, 2)
	if xs[0] != 5 {
		t.Fatal("Quantiles sorted the caller's slice")
	}
}

// TestQuantileBinningEvenSizes: binning the training data by its own
// 10-quantiles must yield approximately even bin occupancy — the property
// §V relies on ("split the distribution into ten groups with approximately
// even sizes").
func TestQuantileBinningEvenSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 3
	}
	cuts := Quantiles(xs, 10)
	counts := make([]int, 10)
	for _, v := range xs {
		counts[BinIndex(v, cuts)]++
	}
	for b, c := range counts {
		if c < 900 || c > 1100 {
			t.Fatalf("bin %d holds %d of 10000; not even", b, c)
		}
	}
}

// TestBinIndexBounds: BinIndex must cover the full range and respect cut
// semantics (left-inclusive bins above each cut).
func TestBinIndexBounds(t *testing.T) {
	cuts := []float64{1, 2, 3}
	cases := []struct {
		v    float64
		want int
	}{{0.5, 0}, {1, 1}, {1.5, 1}, {2, 2}, {2.9, 2}, {3, 3}, {99, 3}}
	for _, c := range cases {
		if got := BinIndex(c.v, cuts); got != c.want {
			t.Fatalf("BinIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestBinIndexSorted property: bin index is monotone in v.
func TestBinIndexMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cuts := make([]float64, 9)
		for i := range cuts {
			cuts[i] = rng.NormFloat64()
		}
		sort.Float64s(cuts)
		v1, v2 := rng.NormFloat64(), rng.NormFloat64()
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return BinIndex(v1, cuts) <= BinIndex(v2, cuts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{0.6, 0.7, 0.8})
	if s.N != 3 || math.Abs(s.Mean-0.7) > 1e-12 {
		t.Fatalf("bad summary %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestAMSBasics(t *testing.T) {
	// All signal above threshold, no background: AMS = sqrt(2((s+br)ln(1+s/br)−s)).
	score := []float64{0.9, 0.9, 0.1}
	label := []int{1, 1, 0}
	got := AMS(score, label, nil, 0.5)
	s := 2.0
	br := 10.0
	want := math.Sqrt(2 * ((s+br)*math.Log(1+s/br) - s))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("AMS = %v, want %v", got, want)
	}
}

func TestAMSNoSelection(t *testing.T) {
	if a := AMS([]float64{0.1, 0.2}, []int{1, 0}, nil, 0.9); a != 0 {
		t.Fatalf("empty selection AMS = %v", a)
	}
}

func TestAMSWeights(t *testing.T) {
	score := []float64{0.9, 0.9}
	label := []int{1, 0}
	unweighted := AMS(score, label, nil, 0.5)
	weighted := AMS(score, label, []float64{2, 0.5}, 0.5)
	if weighted <= unweighted {
		t.Fatalf("doubling signal weight must raise AMS: %v vs %v", weighted, unweighted)
	}
}

func TestAMSMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AMS([]float64{1}, []int{1, 0}, nil, 0.5)
}

func TestBestAMSFindsSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	n := 2000
	score := make([]float64, n)
	label := make([]int, n)
	for i := range score {
		label[i] = rng.Intn(2)
		score[i] = 0.3*rng.NormFloat64() + float64(label[i])
	}
	best, threshold := BestAMS(score, label, nil)
	if best <= AMS(score, label, nil, math.Inf(-1)) {
		t.Fatalf("BestAMS %v not above the select-everything baseline", best)
	}
	if threshold < -1 || threshold > 2 {
		t.Fatalf("implausible threshold %v", threshold)
	}
	if b, _ := BestAMS(nil, nil, nil); b != 0 {
		t.Fatalf("empty BestAMS = %v", b)
	}
}
