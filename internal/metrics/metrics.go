// Package metrics implements the evaluation measures the paper reports:
// classification accuracy, ROC curves and Area Under the Curve (AUC, the
// headline 76.4% figure), confusion matrices, and the summary statistics
// (mean, standard deviation, quantiles) used across the ten-repetition
// experiment protocol.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Accuracy returns the fraction of predictions equal to the labels.
// It panics on length mismatch and returns 0 for empty input.
func Accuracy(pred, label []int) float64 {
	if len(pred) != len(label) {
		panic("metrics: Accuracy length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	correct := 0
	for i, p := range pred {
		if p == label[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// ConfusionMatrix counts predictions: cell [i][j] is the number of samples
// with true class i predicted as class j.
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int
}

// NewConfusionMatrix builds the matrix from parallel label/prediction slices.
func NewConfusionMatrix(classes int, label, pred []int) *ConfusionMatrix {
	if len(pred) != len(label) {
		panic("metrics: ConfusionMatrix length mismatch")
	}
	cm := &ConfusionMatrix{Classes: classes, Counts: make([][]int, classes)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, classes)
	}
	for i, l := range label {
		if l < 0 || l >= classes || pred[i] < 0 || pred[i] >= classes {
			panic(fmt.Sprintf("metrics: class out of range: label=%d pred=%d classes=%d",
				l, pred[i], classes))
		}
		cm.Counts[l][pred[i]]++
	}
	return cm
}

// Accuracy returns trace/total of the confusion matrix.
func (cm *ConfusionMatrix) Accuracy() float64 {
	total, diag := 0, 0
	for i, row := range cm.Counts {
		for j, c := range row {
			total += c
			if i == j {
				diag += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// Recall returns the recall of class c (true positives / actual positives).
func (cm *ConfusionMatrix) Recall(c int) float64 {
	row := cm.Counts[c]
	total := 0
	for _, v := range row {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(row[c]) / float64(total)
}

// Precision returns the precision of class c (true positives / predicted
// positives).
func (cm *ConfusionMatrix) Precision(c int) float64 {
	col, tp := 0, 0
	for i := range cm.Counts {
		col += cm.Counts[i][c]
		if i == c {
			tp = cm.Counts[i][c]
		}
	}
	if col == 0 {
		return 0
	}
	return float64(tp) / float64(col)
}

// String renders the confusion matrix as an aligned table.
func (cm *ConfusionMatrix) String() string {
	s := "pred→"
	for j := 0; j < cm.Classes; j++ {
		s += fmt.Sprintf("\t%d", j)
	}
	for i, row := range cm.Counts {
		s += fmt.Sprintf("\n%d", i)
		for _, c := range row {
			s += fmt.Sprintf("\t%d", c)
		}
	}
	return s
}

// ROCPoint is one operating point of a binary classifier.
type ROCPoint struct {
	FPR, TPR  float64
	Threshold float64
}

// ROC computes the full ROC curve of a binary classifier from scores (higher
// means "more positive") and binary labels (1 = positive/signal, 0 =
// negative/background). The curve is tie-aware: samples with equal scores
// move together, so the curve is identical however ties are ordered.
func ROC(score []float64, label []int) []ROCPoint {
	if len(score) != len(label) {
		panic("metrics: ROC length mismatch")
	}
	type sl struct {
		s float64
		l int
	}
	pairs := make([]sl, len(score))
	pos, neg := 0, 0
	for i := range score {
		if math.IsNaN(score[i]) {
			panic("metrics: ROC got NaN score")
		}
		pairs[i] = sl{score[i], label[i]}
		if label[i] == 1 {
			pos++
		} else {
			neg++
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })

	curve := []ROCPoint{{0, 0, math.Inf(1)}}
	tp, fp := 0, 0
	for i := 0; i < len(pairs); {
		j := i
		for j < len(pairs) && pairs[j].s == pairs[i].s {
			if pairs[j].l == 1 {
				tp++
			} else {
				fp++
			}
			j++
		}
		var fpr, tpr float64
		if neg > 0 {
			fpr = float64(fp) / float64(neg)
		}
		if pos > 0 {
			tpr = float64(tp) / float64(pos)
		}
		curve = append(curve, ROCPoint{fpr, tpr, pairs[i].s})
		i = j
	}
	return curve
}

// AUC integrates the ROC curve with the trapezoid rule. A random classifier
// scores 0.5; a perfect one scores 1. Degenerate inputs (single class) return
// NaN-free 0.5 by convention so sweep harnesses stay well-defined.
func AUC(score []float64, label []int) float64 {
	pos, neg := 0, 0
	for _, l := range label {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	curve := ROC(score, label)
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// AMS computes the Approximate Median Significance at a decision threshold —
// the metric of the Higgs Kaggle challenge the paper's §VI discusses:
//
//	AMS = sqrt( 2·( (s+b+br)·ln(1 + s/(b+br)) − s ) )
//
// where s and b are the luminosity-weighted counts of true signal and true
// background above the threshold and br = 10 is the standard regularization
// term. weight nil gives every event unit weight.
func AMS(score []float64, label []int, weight []float64, threshold float64) float64 {
	if len(score) != len(label) {
		panic("metrics: AMS length mismatch")
	}
	if weight != nil && len(weight) != len(score) {
		panic("metrics: AMS weight length mismatch")
	}
	const br = 10.0
	var s, b float64
	for i, sc := range score {
		if sc < threshold {
			continue
		}
		w := 1.0
		if weight != nil {
			w = weight[i]
		}
		if label[i] == 1 {
			s += w
		} else {
			b += w
		}
	}
	if s == 0 {
		return 0
	}
	radicand := 2 * ((s+b+br)*math.Log(1+s/(b+br)) - s)
	if radicand <= 0 {
		return 0
	}
	return math.Sqrt(radicand)
}

// BestAMS scans thresholds over the observed scores and returns the maximum
// AMS and the threshold achieving it (the challenge's selection procedure).
func BestAMS(score []float64, label []int, weight []float64) (best, threshold float64) {
	if len(score) == 0 {
		return 0, 0
	}
	sorted := append([]float64(nil), score...)
	sort.Float64s(sorted)
	// Evaluate at up to 200 quantile cuts; finer scanning changes little.
	steps := 200
	if len(sorted) < steps {
		steps = len(sorted)
	}
	for k := 0; k < steps; k++ {
		t := sorted[k*len(sorted)/steps]
		if a := AMS(score, label, weight, t); a > best {
			best, threshold = a, t
		}
	}
	return best, threshold
}

// BestAccuracyThreshold returns the cut maximizing the accuracy of the
// binary rule "predict 1 when score >= threshold" against label. Samples
// with equal scores move together, and winning cuts are placed midway
// between distinct scores (or just outside the observed range). Both the
// batch trainer's threshold calibration (core.CalibrateThreshold) and the
// streaming window's online recalibration use this sweep. Panics on length
// mismatch or empty input.
func BestAccuracyThreshold(score []float64, label []int) float64 {
	if len(score) != len(label) {
		panic("metrics: BestAccuracyThreshold length mismatch")
	}
	if len(score) == 0 {
		panic("metrics: BestAccuracyThreshold of empty data")
	}
	type sl struct {
		s float64
		y int
	}
	pairs := make([]sl, len(score))
	pos := 0
	for i := range score {
		pairs[i] = sl{score[i], label[i]}
		pos += label[i]
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s < pairs[j].s })
	// Start with the cut below the minimum (everything predicted 1), then
	// move it just above pairs[i], flipping sample i to predicted 0.
	correct := pos
	best := correct
	threshold := pairs[0].s - 1e-12
	for i := 0; i < len(pairs); i++ {
		if pairs[i].y == 0 {
			correct++
		} else {
			correct--
		}
		// Only place cuts between distinct scores.
		if i+1 < len(pairs) && pairs[i+1].s == pairs[i].s {
			continue
		}
		if correct > best {
			best = correct
			if i+1 < len(pairs) {
				threshold = (pairs[i].s + pairs[i+1].s) / 2
			} else {
				threshold = pairs[i].s + 1e-12
			}
		}
	}
	return threshold
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs;
// 0 for fewer than two samples. The paper reports a 9.3% std for its largest
// network over ten repetitions — this is that estimator.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, v := range xs {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Quantiles returns the q-quantile boundaries of xs — q-1 cut points that
// split the sorted data into q groups of approximately even size. This is
// the "compute the 10-quantiles" preprocessing step of §V: the returned
// boundaries feed the one-hot bin encoder. xs is not modified.
func Quantiles(xs []float64, q int) []float64 {
	if q < 2 {
		panic("metrics: Quantiles needs q >= 2")
	}
	if len(xs) == 0 {
		panic("metrics: Quantiles of empty data")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	cuts := make([]float64, q-1)
	n := len(sorted)
	for k := 1; k < q; k++ {
		// Linear interpolation between closest ranks (type-7 estimator,
		// NumPy's default, which the original Python pipeline used).
		pos := float64(k) / float64(q) * float64(n-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		cuts[k-1] = sorted[lo]*(1-frac) + sorted[hi]*frac
	}
	return cuts
}

// BinIndex returns the bin of v under the given ascending cut points:
// 0 if v < cuts[0], len(cuts) if v >= cuts[len(cuts)-1], using binary search.
func BinIndex(v float64, cuts []float64) int {
	return sort.SearchFloat64s(cuts, math.Nextafter(v, math.Inf(1)))
}

// Summary holds mean ± std over experiment repetitions.
type Summary struct {
	Mean, Std float64
	N         int
}

// Summarize reduces repetition results to a Summary.
func Summarize(xs []float64) Summary {
	return Summary{Mean: Mean(xs), Std: StdDev(xs), N: len(xs)}
}

// String renders "mean ± std (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f ± %.4f (n=%d)", s.Mean, s.Std, s.N)
}
