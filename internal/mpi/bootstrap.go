package mpi

import (
	"io"
	"net"
)

// The rendezvous bootstrap's wire pieces, exported for reuse outside the
// rank mesh. The serving fleet (DESIGN.md §13) runs the same
// hello/address-table handshake between streambrain-serve replicas and the
// streambrain-router membership listener that rank bootstrap runs between
// joiners and rank 0 (DESIGN.md §10) — one magic, one framing, one failure
// mode for "you dialed the wrong port".

// WriteHello writes one bootstrap announcement: the protocol magic, the
// sender's rank (or 0 for non-rank peers like fleet replicas), the expected
// world size (0 when membership is open-ended), and the sender's advertised
// data address.
func WriteHello(w io.Writer, rank, size int, addr string) error {
	return writeHello(w, rank, size, addr)
}

// ReadHello reads one bootstrap announcement written by WriteHello. A
// stream that does not open with the protocol magic fails fast — a port
// scanner or a mismatched binary cannot corrupt the membership table.
func ReadHello(r io.Reader) (rank, size int, addr string, err error) {
	return readHello(r)
}

// WriteAddrTable writes the gathered member address table — the rendezvous
// acknowledgement both rank bootstrap and fleet joins close with.
func WriteAddrTable(w io.Writer, addrs []string) error {
	return writeTable(w, addrs)
}

// ReadAddrTable reads an address table written by WriteAddrTable.
func ReadAddrTable(r io.Reader) ([]string, error) {
	return readTable(r)
}

// AdvertisedAddr picks the address peers should dial to reach ln: ln's
// port joined with the local host of the rendezvous connection, so a
// listener bound to a wildcard or loopback :0 still advertises something
// routable from the rendezvous point's perspective.
func AdvertisedAddr(ln net.Listener, rendezvous net.Conn) string {
	return advertisedAddr(ln, rendezvous)
}
