// Package mpi is an in-process message-passing library modeled on the MPI
// subset StreamBrain's distributed backend uses: SPMD ranks, point-to-point
// send/receive, and the collectives BCPNN data-parallel training needs
// (Barrier, Broadcast, Reduce, Allreduce, Allgather).
//
// Ranks are goroutines inside one process and links are Go channels, so the
// semantics (SPMD program structure, deterministic collective trees, value
// copies across rank boundaries) match a real MPI job while latency constants
// obviously do not — see DESIGN.md §1 for the substitution rationale. The
// collectives are implemented with the textbook HPC algorithms (binomial
// trees, dissemination barrier) rather than a shared-memory shortcut, so
// message counts scale exactly as they would on a cluster: O(log P) rounds.
package mpi

import (
	"fmt"
	"sync"
)

// message is one typed envelope between a rank pair. Data is always a copy;
// ranks never share backing arrays, just as MPI processes never share memory.
type message struct {
	tag  int
	data []float64
}

// World owns the communication fabric for a fixed number of ranks.
type World struct {
	size  int
	links [][]chan message // links[src][dst]
}

// NewWorld creates a fabric for size ranks. Each directed pair gets a
// buffered FIFO link; collectives rely on FIFO order per pair, which Go
// channels guarantee (MPI's non-overtaking rule).
func NewWorld(size int) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	links := make([][]chan message, size)
	for s := range links {
		links[s] = make([]chan message, size)
		for d := range links[s] {
			links[s][d] = make(chan message, 8)
		}
	}
	return &World{size: size, links: links}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes fn once per rank, each in its own goroutine, and blocks until
// every rank returns. It is the mpirun of this package.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(&Comm{rank: rank, world: w})
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's handle on the world.
type Comm struct {
	rank  int
	world *World
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers a copy of data to rank dst with the given tag. It blocks
// only when the link buffer is full (rendezvous beyond the eager limit, in
// MPI terms).
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", dst))
	}
	cp := append([]float64(nil), data...)
	c.world.links[c.rank][dst] <- message{tag: tag, data: cp}
}

// Recv blocks until the next message from src arrives and returns its
// payload. The expected tag is asserted: a mismatch is a protocol bug in the
// calling program, so it panics (the moral equivalent of an MPI error of
// class MPI_ERR_TAG).
func (c *Comm) Recv(src, tag int) []float64 {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", src))
	}
	m := <-c.world.links[src][c.rank]
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d",
			c.rank, tag, src, m.tag))
	}
	return m.data
}

// Internal collective tags live in a reserved negative space so they can
// never collide with user point-to-point tags.
const (
	tagBarrier = -1000 - iota
	tagBcast
	tagReduce
	tagGather
)

// Barrier blocks until every rank has entered it. Dissemination algorithm:
// ⌈log2 P⌉ rounds, in round k rank r signals (r+2^k) mod P and waits for
// (r-2^k) mod P.
func (c *Comm) Barrier() {
	p := c.world.size
	for dist := 1; dist < p; dist *= 2 {
		to := (c.rank + dist) % p
		from := (c.rank - dist + p) % p
		c.Send(to, tagBarrier-dist, nil)
		c.Recv(from, tagBarrier-dist)
	}
}

// Broadcast copies root's data to every rank, in place, via a binomial tree
// rooted at root. All ranks must pass slices of equal length.
func (c *Comm) Broadcast(root int, data []float64) {
	p := c.world.size
	// Work in the rotated space where the root is rank 0.
	vrank := (c.rank - root + p) % p
	// Receive from parent (except the root).
	if vrank != 0 {
		// The parent clears the lowest set bit of vrank.
		parent := (vrank&(vrank-1) + root) % p
		got := c.Recv(parent, tagBcast)
		if len(got) != len(data) {
			panic("mpi: Broadcast length mismatch across ranks")
		}
		copy(data, got)
	}
	// Forward to children: set each bit above the lowest set bit.
	for bit := 1; bit < p; bit *= 2 {
		if vrank&(bit-1) != 0 || vrank&bit != 0 {
			continue
		}
		child := vrank | bit
		if child < p {
			c.Send((child+root)%p, tagBcast, data)
		}
	}
}

// ReduceOp combines two values element-wise during reductions.
type ReduceOp func(a, b float64) float64

// Predefined reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines data from all ranks with op; the result lands in root's
// data slice (other ranks' slices hold partial reductions afterwards and
// should be treated as scratch). Binomial tree, ⌈log2 P⌉ rounds.
func (c *Comm) Reduce(root int, data []float64, op ReduceOp) {
	p := c.world.size
	vrank := (c.rank - root + p) % p
	for bit := 1; bit < p; bit *= 2 {
		if vrank&(bit-1) != 0 {
			continue
		}
		if vrank&bit != 0 {
			// Sender: deliver partial result to parent and exit the tree.
			parent := (vrank ^ bit + root) % p
			c.Send(parent, tagReduce, data)
			return
		}
		child := vrank | bit
		if child < p {
			got := c.Recv((child+root)%p, tagReduce)
			if len(got) != len(data) {
				panic("mpi: Reduce length mismatch across ranks")
			}
			for i := range data {
				data[i] = op(data[i], got[i])
			}
		}
	}
}

// Allreduce combines data across all ranks with op and leaves the full
// result on every rank: Reduce to rank 0 followed by Broadcast, the classic
// tree implementation.
func (c *Comm) Allreduce(data []float64, op ReduceOp) {
	c.Reduce(0, data, op)
	c.Broadcast(0, data)
}

// AllreduceMean averages data element-wise across ranks — the collective
// BCPNN data-parallel training uses to merge trace estimates (DESIGN.md A3).
func (c *Comm) AllreduceMean(data []float64) {
	c.Allreduce(data, OpSum)
	inv := 1 / float64(c.world.size)
	for i := range data {
		data[i] *= inv
	}
}

// Allgather concatenates every rank's send buffer in rank order and returns
// the result on all ranks. Gather-to-root + broadcast.
func (c *Comm) Allgather(send []float64) []float64 {
	p := c.world.size
	n := len(send)
	// Every rank must contribute the same length; assert via a max reduce.
	lenCheck := []float64{float64(n)}
	c.Allreduce(lenCheck, OpMax)
	if int(lenCheck[0]) != n {
		panic("mpi: Allgather length mismatch across ranks")
	}
	all := make([]float64, p*n)
	copy(all[c.rank*n:], send)
	if c.rank == 0 {
		for r := 1; r < p; r++ {
			got := c.Recv(r, tagGather)
			copy(all[r*n:], got)
		}
	} else {
		c.Send(0, tagGather, send)
	}
	c.Broadcast(0, all)
	return all
}
