// Package mpi is a message-passing library modeled on the MPI subset
// StreamBrain's distributed backend uses: SPMD ranks, point-to-point
// send/receive, and the collectives BCPNN data-parallel training needs
// (Barrier, Broadcast, Reduce, Allreduce, Allgather).
//
// The fabric is pluggable (DESIGN.md §10). A Comm runs the collectives over
// any Transport:
//
//   - chan — ranks are goroutines inside one process and links are Go
//     channels. Semantics (SPMD structure, deterministic collective trees,
//     value copies across rank boundaries) match a real MPI job while latency
//     constants obviously do not; it is also the strictest fabric, flagging
//     tag-discipline bugs as ErrTagMismatch.
//   - tcp — each rank is its own OS process connected through a rank-0
//     rendezvous listener (Rendezvous / JoinTCP), with length-prefixed binary
//     frames, per-tag demultiplexing, and deadline/error propagation instead
//     of panics at the process boundary. cmd/streambrain-dist is the mpirun
//     of this backend.
//
// The collectives are implemented with the textbook HPC algorithms (binomial
// trees, dissemination barrier) rather than a shared-memory shortcut, so
// message counts scale exactly as they would on a cluster: O(log P) rounds.
//
// All operations return errors rather than panicking: over a real transport
// the peer may be gone, slow, or misconfigured, and that failure belongs to
// the caller. See Example functions for the Allreduce workflow on both
// transports.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// World is an in-process set of ranks over one fabric — the unit tests,
// benchmarks, and single-machine trainers run on. NewWorld builds the chan
// fabric; NewTCPWorld builds goroutine ranks over real loopback TCP sockets
// (frame codec and demux included, only the OS-process boundary is absent —
// for that, use cmd/streambrain-dist or the Rendezvous/JoinTCP pair).
type World struct {
	comms []*Comm
}

// NewWorld creates an in-process world of size ranks over the chan fabric.
func NewWorld(size int) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	f := newChanFabric(size)
	w := &World{comms: make([]*Comm, size)}
	for r := 0; r < size; r++ {
		w.comms[r] = NewComm(&chanTransport{rank: r, f: f})
	}
	return w
}

// NewTCPWorld creates an in-process world of size ranks over loopback TCP:
// the full rendezvous bootstrap, frame codec, and tag demux of the process
// fabric, with ranks as goroutines. This is what the scaling perf suite and
// the transport-parameterized tests run on.
func NewTCPWorld(size int, opt TCPOptions) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size must be >= 1")
	}
	rv, err := NewRendezvous("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	w := &World{comms: make([]*Comm, size)}
	var wg sync.WaitGroup
	errs := make([]error, size)
	wg.Add(size - 1)
	for r := 1; r < size; r++ {
		go func(r int) {
			defer wg.Done()
			w.comms[r], errs[r] = JoinTCP(rv.Addr(), r, size, opt)
		}(r)
	}
	w.comms[0], errs[0] = rv.Accept(size, opt)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			w.Close()
			return nil, err
		}
	}
	return w, nil
}

// NewWorldFor builds an in-process world on the named fabric — the one
// place the transport-name switch lives, so the perf suite, experiments,
// examples, and tests cannot drift when a transport is added.
func NewWorldFor(transport string, size int, opt TCPOptions) (*World, error) {
	switch transport {
	case "chan":
		return NewWorld(size), nil
	case "tcp":
		return NewTCPWorld(size, opt)
	}
	return nil, fmt.Errorf("mpi: unknown transport %q (want chan or tcp)", transport)
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.comms) }

// Run executes fn once per rank, each in its own goroutine, and blocks until
// every rank returns. It is the mpirun of the in-process fabrics. A rank
// whose fn returns an error has its transport closed immediately, which
// poisons the links its peers are blocked on — they unwind with link errors
// instead of deadlocking mid-collective, exactly as a crashed rank process
// unwinds a TCP world. Run returns the root-cause error: the first (by rank
// order) that is not a secondary ErrClosed teardown echo.
func (w *World) Run(fn func(c *Comm) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(w.comms))
	for r := range w.comms {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := fn(w.comms[rank]); err != nil {
				errs[rank] = err
				w.comms[rank].Close()
			}
		}(r)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, ErrClosed) {
			return err
		}
	}
	return first
}

// Comm returns rank r's communicator (nil outside [0, Size)).
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= len(w.comms) {
		return nil
	}
	return w.comms[r]
}

// Close tears down every rank's transport (a no-op on the chan fabric).
func (w *World) Close() error {
	var first error
	for _, c := range w.comms {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Comm is one rank's handle on the world: the collectives, layered on a
// Transport. Instrument attaches per-rank telemetry (byte counters,
// allreduce timings, straggler gap — DESIGN.md §11); an uninstrumented Comm
// pays one nil check per operation.
type Comm struct {
	t Transport
	m *commMetrics
}

// NewComm wraps a transport endpoint in a communicator.
func NewComm(t Transport) *Comm { return &Comm{t: t} }

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.t.Rank() }

// Size returns the world size.
func (c *Comm) Size() int { return c.t.Size() }

// Close tears down this rank's transport endpoint.
func (c *Comm) Close() error { return c.t.Close() }

// Send delivers a copy of data to rank dst with the given tag. It blocks
// only when the link cannot absorb the message (rendezvous beyond the eager
// limit, in MPI terms) and fails with the transport's deadline error when
// the peer does not drain it in time.
func (c *Comm) Send(dst, tag int, data []float64) error {
	err := c.t.Send(dst, tag, data)
	if err == nil && c.m != nil {
		c.m.sent.Add(frameBytes(len(data)))
	}
	return err
}

// Recv blocks until the next message from src with the given tag arrives and
// returns its payload. On the chan fabric a mismatched tag is reported as
// ErrTagMismatch (strict non-overtaking FIFO); on tcp the frames are
// demultiplexed by tag and an absent message surfaces as ErrTimeout.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	if c.m == nil {
		return c.t.Recv(src, tag)
	}
	start := time.Now()
	data, err := c.t.Recv(src, tag)
	c.m.recvWaitNs.Add(int64(time.Since(start)))
	if err == nil {
		c.m.recvd.Add(frameBytes(len(data)))
	}
	return data, err
}

// Internal collective tags live in a reserved negative space so they can
// never collide with user point-to-point tags — or with each other: the
// barrier burns one tag per dissemination round (tagBarrierBase-dist, dist
// a power of two), so it gets its own range well below the fixed tags.
const (
	tagBcast = -1000 - iota
	tagReduce
	tagGather

	tagBarrierBase = -2000
)

// Barrier blocks until every rank has entered it. Dissemination algorithm:
// ⌈log2 P⌉ rounds, in round k rank r signals (r+2^k) mod P and waits for
// (r-2^k) mod P.
func (c *Comm) Barrier() error {
	p := c.Size()
	for dist := 1; dist < p; dist *= 2 {
		to := (c.Rank() + dist) % p
		from := (c.Rank() - dist + p) % p
		if err := c.Send(to, tagBarrierBase-dist, nil); err != nil {
			return err
		}
		if _, err := c.Recv(from, tagBarrierBase-dist); err != nil {
			return err
		}
	}
	return nil
}

// Broadcast copies root's data to every rank, in place, via a binomial tree
// rooted at root. All ranks must pass slices of equal length.
func (c *Comm) Broadcast(root int, data []float64) error {
	p := c.Size()
	if err := checkRank("broadcast root", root, p); err != nil {
		return err
	}
	// Work in the rotated space where the root is rank 0.
	vrank := (c.Rank() - root + p) % p
	// Receive from parent (except the root).
	if vrank != 0 {
		// The parent clears the lowest set bit of vrank.
		parent := (vrank&(vrank-1) + root) % p
		got, err := c.Recv(parent, tagBcast)
		if err != nil {
			return err
		}
		if len(got) != len(data) {
			return fmt.Errorf("mpi: Broadcast length mismatch across ranks: %d vs %d",
				len(got), len(data))
		}
		copy(data, got)
	}
	// Forward to children: set each bit above the lowest set bit.
	for bit := 1; bit < p; bit *= 2 {
		if vrank&(bit-1) != 0 || vrank&bit != 0 {
			continue
		}
		child := vrank | bit
		if child < p {
			if err := c.Send((child+root)%p, tagBcast, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReduceOp combines two values element-wise during reductions.
type ReduceOp func(a, b float64) float64

// Predefined reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Reduce combines data from all ranks with op; the result lands in root's
// data slice. Non-root ranks' slices are left untouched — partial reductions
// accumulate in an internal copy, never in the caller's buffer (MPI_Reduce's
// sendbuf contract). Binomial tree, ⌈log2 P⌉ rounds.
func (c *Comm) Reduce(root int, data []float64, op ReduceOp) error {
	p := c.Size()
	if err := checkRank("reduce root", root, p); err != nil {
		return err
	}
	vrank := (c.Rank() - root + p) % p
	// Accumulation buffer. The root owns the output, so it accumulates in
	// data directly; odd vranks are leaves that forward their buffer without
	// ever mutating it (Send copies); only internal tree nodes need a
	// scratch copy to keep the caller's buffer unscathed (the
	// scratch-clobbering of the original implementation was a contract bug:
	// callers reasonably reuse their send buffers).
	acc := data
	if vrank != 0 && vrank&1 == 0 {
		acc = append([]float64(nil), data...)
	}
	for bit := 1; bit < p; bit *= 2 {
		if vrank&(bit-1) != 0 {
			continue
		}
		if vrank&bit != 0 {
			// Sender: deliver partial result to parent and exit the tree.
			parent := (vrank ^ bit + root) % p
			return c.Send(parent, tagReduce, acc)
		}
		child := vrank | bit
		if child < p {
			got, err := c.Recv((child+root)%p, tagReduce)
			if err != nil {
				return err
			}
			if len(got) != len(acc) {
				return fmt.Errorf("mpi: Reduce length mismatch across ranks: %d vs %d",
					len(got), len(acc))
			}
			for i := range acc {
				acc[i] = op(acc[i], got[i])
			}
		}
	}
	// Only the root falls out of the loop (every other rank returned from
	// the sender branch), and the root's acc is data itself — the final
	// reduction is already in place.
	return nil
}

// Allreduce combines data across all ranks with op and leaves the full
// result on every rank: Reduce to rank 0 followed by Broadcast, the classic
// tree implementation.
func (c *Comm) Allreduce(data []float64, op ReduceOp) error {
	start, wait0 := time.Now(), c.waitNs()
	if err := c.Reduce(0, data, op); err != nil {
		return err
	}
	if err := c.Broadcast(0, data); err != nil {
		return err
	}
	c.observeAllreduce(start, wait0)
	return nil
}

// AllreduceMean averages data element-wise across ranks — the collective
// BCPNN data-parallel training uses to merge trace estimates (DESIGN.md A3).
func (c *Comm) AllreduceMean(data []float64) error {
	if err := c.Allreduce(data, OpSum); err != nil {
		return err
	}
	inv := 1 / float64(c.Size())
	for i := range data {
		data[i] *= inv
	}
	return nil
}

// Allgather concatenates every rank's send buffer in rank order and returns
// the result on all ranks. Gather-to-root + broadcast.
func (c *Comm) Allgather(send []float64) ([]float64, error) {
	p := c.Size()
	n := len(send)
	// Every rank must contribute the same length; assert via a max reduce.
	lenCheck := []float64{float64(n)}
	if err := c.Allreduce(lenCheck, OpMax); err != nil {
		return nil, err
	}
	if int(lenCheck[0]) != n {
		return nil, fmt.Errorf("mpi: Allgather length mismatch across ranks: %d vs max %d",
			n, int(lenCheck[0]))
	}
	all := make([]float64, p*n)
	copy(all[c.Rank()*n:], send)
	if c.Rank() == 0 {
		for r := 1; r < p; r++ {
			got, err := c.Recv(r, tagGather)
			if err != nil {
				return nil, err
			}
			copy(all[r*n:], got)
		}
	} else {
		if err := c.Send(0, tagGather, send); err != nil {
			return nil, err
		}
	}
	if err := c.Broadcast(0, all); err != nil {
		return nil, err
	}
	return all, nil
}
