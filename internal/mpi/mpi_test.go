package mpi

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// worldSizes covers 1 rank, powers of two, and awkward non-powers.
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8}

// transports enumerates the fabrics every known-answer collective test runs
// on. The chan fabric is free to build; the tcp fabric pays a loopback
// rendezvous per world, so tests reuse worlds where the semantics allow.
var transports = []struct {
	name string
	make func(t *testing.T, size int) *World
}{
	{"chan", func(t *testing.T, size int) *World { return NewWorld(size) }},
	{"tcp", func(t *testing.T, size int) *World {
		t.Helper()
		w, err := NewTCPWorld(size, TCPOptions{Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("NewTCPWorld(%d): %v", size, err)
		}
		t.Cleanup(func() { w.Close() })
		return w
	}},
}

// run fails the test on any rank error.
func run(t *testing.T, w *World, fn func(c *Comm) error) {
	t.Helper()
	if err := w.Run(fn); err != nil {
		t.Fatalf("world run: %v", err)
	}
}

func TestNewWorldInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(0)
}

func TestSendRecvPair(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			w := tr.make(t, 2)
			run(t, w, func(c *Comm) error {
				if c.Rank() == 0 {
					return c.Send(1, 7, []float64{1, 2, 3})
				}
				got, err := c.Recv(0, 7)
				if err != nil {
					return err
				}
				if len(got) != 3 || got[0] != 1 || got[2] != 3 {
					t.Errorf("bad payload %v", got)
				}
				return nil
			})
		})
	}
}

func TestSendCopiesData(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			w := tr.make(t, 2)
			run(t, w, func(c *Comm) error {
				if c.Rank() == 0 {
					buf := []float64{42}
					if err := c.Send(1, 0, buf); err != nil {
						return err
					}
					buf[0] = 0 // mutate after send; receiver must still see 42
					return nil
				}
				got, err := c.Recv(0, 0)
				if err != nil {
					return err
				}
				if got[0] != 42 {
					t.Errorf("send aliased caller buffer: %v", got)
				}
				return nil
			})
		})
	}
}

// TestChanRecvTagMismatch: the chan fabric enforces the strict FIFO tag
// discipline and reports violations as ErrTagMismatch.
func TestChanRecvTagMismatch(t *testing.T) {
	w := NewWorld(2)
	errc := make(chan error, 1)
	w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, nil)
		}
		_, err := c.Recv(0, 2)
		errc <- err
		return nil
	})
	if err := <-errc; !errors.Is(err, ErrTagMismatch) {
		t.Fatalf("want ErrTagMismatch, got %v", err)
	}
}

// TestTCPRecvByTagOutOfOrder: the tcp fabric demultiplexes by tag, so a
// receiver can take messages in a different order than they were sent —
// MPI's matching rule.
func TestTCPRecvByTagOutOfOrder(t *testing.T) {
	w, err := NewTCPWorld(2, TCPOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []float64{10}); err != nil {
				return err
			}
			return c.Send(1, 2, []float64{20})
		}
		second, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		first, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if second[0] != 20 || first[0] != 10 {
			t.Errorf("demux broke payloads: tag1=%v tag2=%v", first, second)
		}
		return nil
	})
}

func TestSendRecvInvalidRank(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			w := tr.make(t, 2)
			run(t, w, func(c *Comm) error {
				if err := c.Send(5, 0, nil); err == nil {
					t.Error("Send to rank 5 of 2 succeeded")
				}
				if _, err := c.Recv(-1, 0); err == nil {
					t.Error("Recv from rank -1 succeeded")
				}
				if err := c.Send(c.Rank(), 0, nil); err == nil {
					t.Error("self-send succeeded")
				}
				return nil
			})
		})
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range worldSizes {
				var before, after int64
				w := tr.make(t, p)
				run(t, w, func(c *Comm) error {
					atomic.AddInt64(&before, 1)
					if c.Rank() == 0 {
						// Give the others a head start at the barrier; they
						// must not pass until rank 0 arrives.
						time.Sleep(5 * time.Millisecond)
						if n := atomic.LoadInt64(&after); n != 0 {
							t.Errorf("p=%d: %d ranks passed barrier early", p, n)
						}
					}
					if err := c.Barrier(); err != nil {
						return err
					}
					atomic.AddInt64(&after, 1)
					return nil
				})
				if before != int64(p) || after != int64(p) {
					t.Fatalf("p=%d: before=%d after=%d", p, before, after)
				}
			}
		})
	}
}

func TestBroadcastAllRootsAllSizes(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range worldSizes {
				w := tr.make(t, p)
				for root := 0; root < p; root++ {
					root := root
					run(t, w, func(c *Comm) error {
						data := make([]float64, 4)
						if c.Rank() == root {
							for i := range data {
								data[i] = float64(root*10 + i)
							}
						}
						if err := c.Broadcast(root, data); err != nil {
							return err
						}
						for i := range data {
							if data[i] != float64(root*10+i) {
								t.Errorf("p=%d root=%d rank=%d got %v", p, root, c.Rank(), data)
								return nil
							}
						}
						return nil
					})
				}
			}
		})
	}
}

func TestReduceSum(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range worldSizes {
				w := tr.make(t, p)
				run(t, w, func(c *Comm) error {
					data := []float64{float64(c.Rank() + 1), 1}
					if err := c.Reduce(0, data, OpSum); err != nil {
						return err
					}
					if c.Rank() == 0 {
						wantFirst := float64(p*(p+1)) / 2
						if math.Abs(data[0]-wantFirst) > 1e-12 || data[1] != float64(p) {
							t.Errorf("p=%d: reduce got %v, want [%v %d]", p, data, wantFirst, p)
						}
					}
					return nil
				})
			}
		})
	}
}

// TestReduceLeavesNonRootBuffersIntact is the regression test for the
// scratch-clobbering bug: Reduce used non-root ranks' buffers as partial-
// reduction scratch, so a caller reusing its send buffer read garbage.
// The collective's contract is MPI_Reduce's — only root's buffer changes.
func TestReduceLeavesNonRootBuffersIntact(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range worldSizes {
				w := tr.make(t, p)
				for root := 0; root < p; root++ {
					root := root
					run(t, w, func(c *Comm) error {
						data := []float64{float64(c.Rank()), float64(c.Rank() * 3)}
						want := append([]float64(nil), data...)
						if err := c.Reduce(root, data, OpSum); err != nil {
							return err
						}
						if c.Rank() == root {
							wantSum := float64(p*(p-1)) / 2
							if data[0] != wantSum || data[1] != 3*wantSum {
								t.Errorf("p=%d root=%d: wrong reduction %v", p, root, data)
							}
							return nil
						}
						if data[0] != want[0] || data[1] != want[1] {
							t.Errorf("p=%d root=%d rank=%d: buffer clobbered: %v, want %v",
								p, root, c.Rank(), data, want)
						}
						return nil
					})
				}
			}
		})
	}
}

func TestAllreduceSumMaxMin(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range worldSizes {
				w := tr.make(t, p)
				run(t, w, func(c *Comm) error {
					r := float64(c.Rank())
					sum := []float64{r}
					if err := c.Allreduce(sum, OpSum); err != nil {
						return err
					}
					if want := float64(p*(p-1)) / 2; sum[0] != want {
						t.Errorf("p=%d rank=%d: sum=%v want %v", p, c.Rank(), sum[0], want)
					}
					max := []float64{r}
					if err := c.Allreduce(max, OpMax); err != nil {
						return err
					}
					if max[0] != float64(p-1) {
						t.Errorf("p=%d: max=%v", p, max[0])
					}
					min := []float64{r}
					if err := c.Allreduce(min, OpMin); err != nil {
						return err
					}
					if min[0] != 0 {
						t.Errorf("p=%d: min=%v", p, min[0])
					}
					return nil
				})
			}
		})
	}
}

func TestAllreduceMean(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range worldSizes {
				w := tr.make(t, p)
				run(t, w, func(c *Comm) error {
					data := []float64{float64(c.Rank()), 10}
					if err := c.AllreduceMean(data); err != nil {
						return err
					}
					wantMean := float64(p-1) / 2
					if math.Abs(data[0]-wantMean) > 1e-12 || math.Abs(data[1]-10) > 1e-12 {
						t.Errorf("p=%d: mean=%v want [%v 10]", p, data, wantMean)
					}
					return nil
				})
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			for _, p := range worldSizes {
				w := tr.make(t, p)
				run(t, w, func(c *Comm) error {
					all, err := c.Allgather([]float64{float64(c.Rank()), float64(c.Rank() * 2)})
					if err != nil {
						return err
					}
					if len(all) != 2*p {
						t.Errorf("p=%d: len=%d", p, len(all))
						return nil
					}
					for r := 0; r < p; r++ {
						if all[2*r] != float64(r) || all[2*r+1] != float64(2*r) {
							t.Errorf("p=%d rank=%d: bad gather %v", p, c.Rank(), all)
							return nil
						}
					}
					return nil
				})
			}
		})
	}
}

// TestRunUnblocksPeersOnRankError: a rank failing out of Run must not leave
// its peers hanging in a collective — Run closes the failed rank's
// transport, which poisons the links peers are blocked on, and reports the
// root cause rather than a secondary teardown error. Checked on both
// fabrics: the chan fabric poisons globally, the tcp fabric through its
// dead readers.
func TestRunUnblocksPeersOnRankError(t *testing.T) {
	rootCause := errors.New("rank 0 gave up")
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			w := tr.make(t, 3)
			done := make(chan error, 1)
			go func() {
				done <- w.Run(func(c *Comm) error {
					if c.Rank() == 0 {
						return rootCause // never enters the collective
					}
					data := []float64{1}
					return c.Allreduce(data, OpSum) // blocks on rank 0
				})
			}()
			select {
			case err := <-done:
				if !errors.Is(err, rootCause) {
					t.Fatalf("want the root cause, got %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("peers stayed blocked after a rank error")
			}
		})
	}
}

func TestCollectivesRepeatable(t *testing.T) {
	// Reusing the same world for consecutive collectives must not deadlock
	// or cross-talk (tag discipline between rounds).
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			w := tr.make(t, 4)
			run(t, w, func(c *Comm) error {
				for iter := 0; iter < 20; iter++ {
					data := []float64{1}
					if err := c.Allreduce(data, OpSum); err != nil {
						return err
					}
					if data[0] != 4 {
						t.Errorf("iter %d: %v", iter, data[0])
						return nil
					}
					if err := c.Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}
