package mpi

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// worldSizes covers 1 rank, powers of two, and awkward non-powers.
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8}

func TestNewWorldInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewWorld(0)
}

func TestSendRecvPair(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("bad payload %v", got)
			}
		}
	})
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float64{42}
			c.Send(1, 0, buf)
			buf[0] = 0 // mutate after send; receiver must still see 42
		} else {
			if got := c.Recv(0, 0); got[0] != 42 {
				t.Errorf("send aliased caller buffer: %v", got)
			}
		}
	})
}

func TestRecvTagMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	panicked := make(chan bool, 1)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, nil)
		} else {
			defer func() { panicked <- recover() != nil }()
			c.Recv(0, 2)
		}
	})
	if !<-panicked {
		t.Fatal("expected tag mismatch panic")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range worldSizes {
		var before, after int64
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			atomic.AddInt64(&before, 1)
			if c.Rank() == 0 {
				// Give the others a head start at the barrier; they must
				// not pass until rank 0 arrives.
				time.Sleep(5 * time.Millisecond)
				if n := atomic.LoadInt64(&after); n != 0 {
					t.Errorf("p=%d: %d ranks passed barrier early", p, n)
				}
			}
			c.Barrier()
			atomic.AddInt64(&after, 1)
		})
		if before != int64(p) || after != int64(p) {
			t.Fatalf("p=%d: before=%d after=%d", p, before, after)
		}
	}
}

func TestBroadcastAllRootsAllSizes(t *testing.T) {
	for _, p := range worldSizes {
		for root := 0; root < p; root++ {
			w := NewWorld(p)
			w.Run(func(c *Comm) {
				data := make([]float64, 4)
				if c.Rank() == root {
					for i := range data {
						data[i] = float64(root*10 + i)
					}
				}
				c.Broadcast(root, data)
				for i := range data {
					if data[i] != float64(root*10+i) {
						t.Errorf("p=%d root=%d rank=%d got %v", p, root, c.Rank(), data)
						return
					}
				}
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			data := []float64{float64(c.Rank() + 1), 1}
			c.Reduce(0, data, OpSum)
			if c.Rank() == 0 {
				wantFirst := float64(p*(p+1)) / 2
				if math.Abs(data[0]-wantFirst) > 1e-12 || data[1] != float64(p) {
					t.Errorf("p=%d: reduce got %v, want [%v %d]", p, data, wantFirst, p)
				}
			}
		})
	}
}

func TestAllreduceSumMaxMin(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			r := float64(c.Rank())
			sum := []float64{r}
			c.Allreduce(sum, OpSum)
			if want := float64(p*(p-1)) / 2; sum[0] != want {
				t.Errorf("p=%d rank=%d: sum=%v want %v", p, c.Rank(), sum[0], want)
			}
			max := []float64{r}
			c.Allreduce(max, OpMax)
			if max[0] != float64(p-1) {
				t.Errorf("p=%d: max=%v", p, max[0])
			}
			min := []float64{r}
			c.Allreduce(min, OpMin)
			if min[0] != 0 {
				t.Errorf("p=%d: min=%v", p, min[0])
			}
		})
	}
}

func TestAllreduceMean(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			data := []float64{float64(c.Rank()), 10}
			c.AllreduceMean(data)
			wantMean := float64(p-1) / 2
			if math.Abs(data[0]-wantMean) > 1e-12 || math.Abs(data[1]-10) > 1e-12 {
				t.Errorf("p=%d: mean=%v want [%v 10]", p, data, wantMean)
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range worldSizes {
		w := NewWorld(p)
		w.Run(func(c *Comm) {
			all := c.Allgather([]float64{float64(c.Rank()), float64(c.Rank() * 2)})
			if len(all) != 2*p {
				t.Errorf("p=%d: len=%d", p, len(all))
				return
			}
			for r := 0; r < p; r++ {
				if all[2*r] != float64(r) || all[2*r+1] != float64(2*r) {
					t.Errorf("p=%d rank=%d: bad gather %v", p, c.Rank(), all)
					return
				}
			}
		})
	}
}

func TestCollectivesRepeatable(t *testing.T) {
	// Reusing the same world for consecutive collectives must not deadlock
	// or cross-talk (tag discipline between rounds).
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		for iter := 0; iter < 20; iter++ {
			data := []float64{1}
			c.Allreduce(data, OpSum)
			if data[0] != 4 {
				t.Errorf("iter %d: %v", iter, data[0])
				return
			}
			c.Barrier()
		}
	})
}

func TestSendInvalidRankPanics(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(c *Comm) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c.Send(5, 0, nil)
	})
}
