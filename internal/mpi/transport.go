package mpi

import (
	"errors"
	"fmt"
)

// Transport is the point-to-point fabric one rank sits on. A Comm layers the
// collectives on top of exactly this interface, so every collective runs
// unchanged over any backend (DESIGN.md §10):
//
//   - the chan transport: ranks are goroutines in one process, links are Go
//     channels — zero-copy-distance, deterministic, the debugging fabric;
//   - the tcp transport: each rank is its own OS process (or goroutine, for
//     tests) and every pair is a TCP connection carrying length-prefixed
//     binary frames — the cluster fabric.
//
// Send delivers a copy of data to rank dst under tag; the receiver's Recv
// for (src=me, tag) returns it. Per-pair messages with equal tags are
// non-overtaking (MPI's ordering rule). All methods return errors rather
// than panicking: at a process boundary the peer may be gone, slow, or
// misconfigured, and the caller — not the fabric — owns that failure.
type Transport interface {
	// Rank is this endpoint's id in [0, Size).
	Rank() int
	// Size is the world size.
	Size() int
	// Send delivers a copy of data to dst under tag. It must not retain or
	// mutate data after returning.
	Send(dst, tag int, data []float64) error
	// Recv blocks until a message from src with the given tag is available
	// (subject to the transport's deadline policy) and returns its payload.
	Recv(src, tag int) ([]float64, error)
	// Close tears the fabric down for this rank. Blocked and future calls
	// return ErrClosed (possibly wrapped).
	Close() error
}

// Sentinel errors every transport maps its failures onto, so callers can
// errors.Is across backends.
var (
	// ErrClosed reports an operation on a closed transport or a link whose
	// peer went away.
	ErrClosed = errors.New("mpi: transport closed")
	// ErrTimeout reports a Send or Recv that exceeded the transport's
	// configured deadline.
	ErrTimeout = errors.New("mpi: deadline exceeded")
	// ErrTagMismatch reports a protocol bug: the next message on a strictly
	// FIFO link carried a different tag than the Recv expected. Only the
	// chan transport detects this (it enforces the strict non-overtaking
	// discipline); the tcp transport demultiplexes by tag instead, so a
	// mismatched Recv there surfaces as ErrTimeout.
	ErrTagMismatch = errors.New("mpi: tag mismatch")
)

// checkRank validates a peer rank id.
func checkRank(what string, rank, size int) error {
	if rank < 0 || rank >= size {
		return fmt.Errorf("mpi: %s rank %d outside world of size %d", what, rank, size)
	}
	return nil
}
