package mpi

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"
)

// TestFrameRoundTrip: the wire format must round-trip float64 payloads
// bit-exactly (including NaN payloads and negative tags) — the property the
// rank-count-invariance experiment E9 leans on.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]float64{
		nil,
		{},
		{0, 1, -1, math.Pi},
		{math.Inf(1), math.Inf(-1), math.NaN(), math.SmallestNonzeroFloat64, -0.0},
	}
	for _, tag := range []int{0, 7, -1042} {
		for _, want := range payloads {
			var buf bytes.Buffer
			w := bufio.NewWriter(&buf)
			if err := writeFrame(w, tag, want); err != nil {
				t.Fatal(err)
			}
			gotTag, got, err := readFrame(bufio.NewReader(&buf))
			if err != nil {
				t.Fatal(err)
			}
			if gotTag != tag || len(got) != len(want) {
				t.Fatalf("tag=%d len=%d, want tag=%d len=%d", gotTag, len(got), tag, len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("payload[%d] = %x, want %x (not bit-exact)",
						i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestReadFrameRejectsHugeLength: a corrupt length prefix must fail fast,
// not allocate gigabytes.
func TestReadFrameRejectsHugeLength(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("frame with 2^32-1 floats accepted")
	}
}

// TestTCPRecvDeadline: a Recv with no matching frame must return ErrTimeout
// after the configured deadline instead of blocking forever.
func TestTCPRecvDeadline(t *testing.T) {
	w, err := NewTCPWorld(2, TCPOptions{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	start := time.Now()
	_, err = w.Comm(1).Recv(0, 99)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v", elapsed)
	}
}

// TestTCPPeerTeardownPropagates: when a peer closes its transport, a blocked
// Recv on the other side must fail with a link error, not hang.
func TestTCPPeerTeardownPropagates(t *testing.T) {
	w, err := NewTCPWorld(2, TCPOptions{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var recvErr error
	go func() {
		defer wg.Done()
		_, recvErr = w.Comm(1).Recv(0, 5)
	}()
	time.Sleep(20 * time.Millisecond) // let the Recv block
	w.Comm(0).Close()
	wg.Wait()
	if recvErr == nil {
		t.Fatal("Recv survived peer teardown")
	}
	if !errors.Is(recvErr, ErrClosed) && !errors.Is(recvErr, ErrTimeout) {
		t.Fatalf("want a link-down error, got %v", recvErr)
	}
}

// TestTCPSendAfterCloseFails: operations on a closed transport error out.
func TestTCPSendAfterCloseFails(t *testing.T) {
	w, err := NewTCPWorld(2, TCPOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	c := w.Comm(0)
	w.Close()
	if err := c.Send(1, 0, []float64{1}); err == nil {
		t.Fatal("Send on closed transport succeeded")
	}
}

// TestJoinSizeMismatchRejected: a rank launched with the wrong -ranks value
// must be rejected at rendezvous, poisoning the whole bootstrap — a
// misconfigured world must never train.
func TestJoinSizeMismatchRejected(t *testing.T) {
	rv, err := NewRendezvous("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opt := TCPOptions{RendezvousTimeout: 5 * time.Second}
	var wg sync.WaitGroup
	wg.Add(1)
	var joinErr error
	go func() {
		defer wg.Done()
		var c *Comm
		c, joinErr = JoinTCP(rv.Addr(), 1, 3, opt) // world of 3, rendezvous expects 2
		if c != nil {
			c.Close()
		}
	}()
	if _, err := rv.Accept(2, opt); err == nil {
		t.Fatal("rendezvous accepted a size-mismatched joiner")
	}
	wg.Wait()
	if joinErr == nil {
		t.Fatal("mismatched joiner saw no error")
	}
}

// TestRendezvousTimesOutWithoutJoiners: rank 0 must not wait forever for
// ranks that never start.
func TestRendezvousTimesOutWithoutJoiners(t *testing.T) {
	rv, err := NewRendezvous("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = rv.Accept(2, TCPOptions{RendezvousTimeout: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("Accept returned without any joiner")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("rendezvous timeout took %v", elapsed)
	}
}

// TestJoinRejectsInvalidRank: rank 0 must use Rendezvous, not JoinTCP.
func TestJoinRejectsInvalidRank(t *testing.T) {
	if _, err := JoinTCP("127.0.0.1:1", 0, 2, TCPOptions{}); err == nil {
		t.Fatal("JoinTCP accepted rank 0")
	}
	if _, err := JoinTCP("127.0.0.1:1", 2, 2, TCPOptions{}); err == nil {
		t.Fatal("JoinTCP accepted rank == size")
	}
}

// TestRendezvousRejectsDuplicateRank: two joiners announcing the same rank
// is a launcher bug and must poison the bootstrap.
func TestRendezvousRejectsDuplicateRank(t *testing.T) {
	rv, err := NewRendezvous("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opt := TCPOptions{RendezvousTimeout: 5 * time.Second}
	dial := func() net.Conn {
		c, err := net.Dial("tcp", rv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	done := make(chan error, 1)
	go func() {
		_, err := rv.Accept(3, opt)
		done <- err
	}()
	c1, c2 := dial(), dial()
	defer c1.Close()
	defer c2.Close()
	if err := writeHello(c1, 1, 3, "127.0.0.1:1"); err != nil {
		t.Fatal(err)
	}
	if err := writeHello(c2, 1, 3, "127.0.0.1:2"); err != nil { // duplicate rank 1
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("rendezvous accepted duplicate rank announcements")
	}
}

// TestTCPWorldLargePayload pushes one allreduce well past the bufio sizes so
// multi-frame buffering and partial reads are exercised.
func TestTCPWorldLargePayload(t *testing.T) {
	const n = 1 << 17 // 1 MiB of float64s
	w, err := NewTCPWorld(3, TCPOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	run(t, w, func(c *Comm) error {
		data := make([]float64, n)
		for i := range data {
			data[i] = float64(c.Rank())
		}
		if err := c.AllreduceMean(data); err != nil {
			return err
		}
		want := 1.0 // mean of 0,1,2
		for i := 0; i < n; i += 4097 {
			if data[i] != want {
				t.Errorf("rank %d data[%d]=%v want %v", c.Rank(), i, data[i], want)
				return nil
			}
		}
		return nil
	})
}
