package mpi

import (
	"fmt"
	"sync"
)

// message is one typed envelope between a rank pair. Data is always a copy;
// ranks never share backing arrays, just as MPI processes never share memory.
type message struct {
	tag  int
	data []float64
}

// chanFabric is the in-process backend: a buffered FIFO Go channel per
// directed rank pair. Collectives rely on FIFO order per pair, which Go
// channels guarantee (MPI's non-overtaking rule). The fabric is poisonable:
// the first failure (any rank closing its endpoint) unblocks every pending
// send and receive with an error, mirroring how a dead TCP peer unwinds its
// world — one process either runs all its goroutine ranks or none.
type chanFabric struct {
	size  int
	links [][]chan message // links[src][dst]

	once sync.Once
	down chan struct{}
	err  error
}

func newChanFabric(size int) *chanFabric {
	links := make([][]chan message, size)
	for s := range links {
		links[s] = make([]chan message, size)
		for d := range links[s] {
			links[s][d] = make(chan message, 8)
		}
	}
	return &chanFabric{size: size, links: links, down: make(chan struct{})}
}

// fail poisons the whole fabric with the first error.
func (f *chanFabric) fail(err error) {
	f.once.Do(func() {
		f.err = err
		close(f.down)
	})
}

// chanTransport is one rank's endpoint on a chanFabric.
type chanTransport struct {
	rank int
	f    *chanFabric
}

func (t *chanTransport) Rank() int { return t.rank }
func (t *chanTransport) Size() int { return t.f.size }

func (t *chanTransport) Send(dst, tag int, data []float64) error {
	if err := checkRank("send to", dst, t.f.size); err != nil {
		return err
	}
	if dst == t.rank {
		return fmt.Errorf("mpi: rank %d sending to itself", t.rank)
	}
	cp := append([]float64(nil), data...)
	select {
	case t.f.links[t.rank][dst] <- message{tag: tag, data: cp}:
		return nil
	case <-t.f.down:
		return fmt.Errorf("mpi: rank %d send tag %d to %d: %w", t.rank, tag, dst, t.f.err)
	}
}

// Recv pops the next message from src and asserts the expected tag. The chan
// fabric keeps the strict per-pair FIFO discipline, so a tag mismatch is a
// protocol bug in the calling program and is reported as ErrTagMismatch —
// the debugging-friendly behavior the in-process fabric exists for.
func (t *chanTransport) Recv(src, tag int) ([]float64, error) {
	if err := checkRank("recv from", src, t.f.size); err != nil {
		return nil, err
	}
	if src == t.rank {
		return nil, fmt.Errorf("mpi: rank %d receiving from itself", t.rank)
	}
	select {
	case m := <-t.f.links[src][t.rank]:
		if m.tag != tag {
			return nil, fmt.Errorf("rank %d expected tag %d from %d, got %d: %w",
				t.rank, tag, src, m.tag, ErrTagMismatch)
		}
		return m.data, nil
	case <-t.f.down:
		return nil, fmt.Errorf("mpi: rank %d recv tag %d from %d: %w", t.rank, tag, src, t.f.err)
	}
}

// Close poisons the whole fabric: goroutine ranks share one process, so one
// endpoint going away means the world is being torn down, and every peer
// blocked in a collective must unwind rather than hang.
func (t *chanTransport) Close() error {
	t.f.fail(fmt.Errorf("rank %d closed: %w", t.rank, ErrClosed))
	return nil
}
