package mpi

import (
	"strconv"
	"sync/atomic"
	"time"

	"streambrain/internal/obs"
)

// MPI metric families (the DESIGN.md §11 catalogue). Every series carries a
// rank label, so a multi-rank scrape (or the per-rank /metrics endpoints
// streambrain-dist exposes) lines up straggler analysis by rank.
const (
	metricSentBytes = "streambrain_mpi_sent_bytes_total"
	metricRecvBytes = "streambrain_mpi_recv_bytes_total"
	metricAllreduce = "streambrain_mpi_allreduce_seconds"
	metricStraggler = "streambrain_mpi_straggler_gap_seconds"
)

// commMetrics instruments one rank's communicator.
type commMetrics struct {
	sent      *obs.Counter
	recvd     *obs.Counter
	allreduce *obs.Histogram
	straggler *obs.Gauge

	// recvWaitNs accumulates time this rank spends blocked in Recv. The
	// delta across one allreduce is the straggler gap: how long this rank
	// waited on peers — the rank with the smallest gap is the straggler
	// everyone else waits for.
	recvWaitNs atomic.Int64
}

// frameBytes is the wire size of one message on the tcp fabric: the
// uint32-length + int32-tag header plus 8 bytes per float64 (tcp.go's frame
// codec). The chan fabric moves no bytes, but accounting both fabrics with
// the same formula keeps chan-world rehearsals comparable to real runs.
func frameBytes(n int) uint64 { return 8 + 8*uint64(n) }

// Instrument registers this communicator's metric series (labeled with its
// rank) on reg and starts recording per-message byte counts, allreduce wall
// times, and the straggler gap. Call once, before the communicator is used.
func (c *Comm) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	rank := obs.L("rank", strconv.Itoa(c.Rank()))
	c.m = &commMetrics{
		sent: reg.Counter(metricSentBytes,
			"Bytes sent by this rank (frame headers included).", rank),
		recvd: reg.Counter(metricRecvBytes,
			"Bytes received by this rank (frame headers included).", rank),
		allreduce: reg.LatencyHistogram(metricAllreduce,
			"Wall time of one Allreduce on this rank.", rank),
		straggler: reg.Gauge(metricStraggler,
			"Recv-blocked time inside the last Allreduce — how long this rank waited on peers.", rank),
	}
}

// waitNs returns the accumulated Recv-blocked nanoseconds (0 when
// uninstrumented).
func (c *Comm) waitNs() int64 {
	if c.m == nil {
		return 0
	}
	return c.m.recvWaitNs.Load()
}

// observeAllreduce records one completed allreduce: its wall time and the
// recv-wait accumulated during it (the straggler gap).
func (c *Comm) observeAllreduce(start time.Time, wait0 int64) {
	if c.m == nil {
		return
	}
	c.m.allreduce.Observe(time.Since(start))
	c.m.straggler.Set(float64(c.m.recvWaitNs.Load()-wait0) / 1e9)
}
