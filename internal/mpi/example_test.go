package mpi_test

// Runnable examples for the fabric's headline collective on both transports.
// They run under go test, so the documented workflow cannot rot.

import (
	"fmt"
	"time"

	"streambrain/internal/mpi"
)

// ExampleComm_Allreduce sums a value across four goroutine ranks on the
// in-process chan fabric — the default single-machine configuration.
func ExampleComm_Allreduce() {
	w := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) error {
		data := []float64{float64(c.Rank())}
		if err := c.Allreduce(data, mpi.OpSum); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Println("sum over ranks:", data[0])
		}
		return nil
	})
	fmt.Println("err:", err)
	// Output:
	// sum over ranks: 6
	// err: <nil>
}

// ExampleComm_Allreduce_tcp runs the same collective over the TCP transport:
// a real rank-0 rendezvous on loopback, length-prefixed binary frames, and
// per-tag demultiplexing — everything cmd/streambrain-dist uses across OS
// processes, minus the fork.
func ExampleComm_Allreduce_tcp() {
	w, err := mpi.NewTCPWorld(4, mpi.TCPOptions{Timeout: 30 * time.Second})
	if err != nil {
		fmt.Println("bootstrap:", err)
		return
	}
	defer w.Close()
	err = w.Run(func(c *mpi.Comm) error {
		data := []float64{1}
		if err := c.AllreduceMean(data); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Println("mean over ranks:", data[0])
		}
		return nil
	})
	fmt.Println("err:", err)
	// Output:
	// mean over ranks: 1
	// err: <nil>
}
