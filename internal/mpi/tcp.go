package mpi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"syscall"
	"time"
)

// The tcp transport makes the fabric transport-real: each rank is its own OS
// process (or, for tests and perf runs, a goroutine holding real loopback
// sockets) and every rank pair is one TCP connection carrying length-prefixed
// binary frames. Bootstrap is a rank-0 rendezvous (DESIGN.md §10): every
// rank dials rank 0's listener and announces its own data listener; rank 0
// gathers the address table, sends it back to everyone, and the non-zero
// ranks complete the mesh directly (lower rank dials higher). The conns to
// rank 0 made during rendezvous are reused as the rank-0 data links, so a
// world of P ranks settles at exactly P(P−1)/2 connections.

// TCPOptions tunes the tcp transport's deadlines. The zero value uses the
// defaults below.
type TCPOptions struct {
	// RendezvousTimeout bounds the whole bootstrap: rank 0 waiting for
	// joiners, joiners dialing rank 0 and each other. Default 30s.
	RendezvousTimeout time.Duration
	// Timeout bounds each Send's socket write and each Recv's wait for a
	// matching frame. Collectives inherit it per message hop. 0 uses the
	// default (2 minutes — a rank legitimately blocks in Recv while its
	// peers finish a local training epoch); negative disables deadlines.
	Timeout time.Duration
}

const (
	defaultRendezvousTimeout = 30 * time.Second
	defaultIOTimeout         = 2 * time.Minute

	// helloMagic opens every bootstrap exchange; a port scanner or a
	// mismatched binary fails fast instead of corrupting the mesh.
	helloMagic = 0x53425231 // "SBR1"

	// maxFrameFloats caps one frame's payload (1 GiB of float64s). A length
	// prefix beyond it means a corrupt or hostile stream, not a real
	// collective.
	maxFrameFloats = 1 << 27
)

func (o TCPOptions) rendezvousTimeout() time.Duration {
	if o.RendezvousTimeout <= 0 {
		return defaultRendezvousTimeout
	}
	return o.RendezvousTimeout
}

func (o TCPOptions) ioTimeout() time.Duration {
	switch {
	case o.Timeout == 0:
		return defaultIOTimeout
	case o.Timeout < 0:
		return 0 // disabled
	}
	return o.Timeout
}

// ---------------------------------------------------------------- wire format

// Data frames are length-prefixed binary (DESIGN.md §10):
//
//	uint32  n        payload length in float64s (big endian)
//	int32   tag      message tag
//	n × u64 payload  IEEE-754 bits, big endian
//
// float64 bits round-trip exactly, so a value crosses the process boundary
// bit-identical — the property the rank-count-invariance experiment (E9)
// leans on.

// frameChunkFloats is how many payload floats the codec moves per
// bufio call: big enough that per-call overhead vanishes against a
// trace-merge frame, small enough to live on the stack.
const frameChunkFloats = 512

// writeFrame encodes one frame into w, staging the payload through a stack
// chunk so large collectives cost O(len/chunk) writer calls, not O(len).
func writeFrame(w *bufio.Writer, tag int, data []float64) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(data)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(int32(tag)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var chunk [frameChunkFloats * 8]byte
	for off := 0; off < len(data); off += frameChunkFloats {
		part := data[off:min(off+frameChunkFloats, len(data))]
		for i, v := range part {
			binary.BigEndian.PutUint64(chunk[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(chunk[:len(part)*8]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// readFrame decodes one frame from r, chunked like writeFrame.
func readFrame(r *bufio.Reader) (tag int, data []float64, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:])
	tag = int(int32(binary.BigEndian.Uint32(hdr[4:])))
	if n > maxFrameFloats {
		return 0, nil, fmt.Errorf("mpi: frame claims %d floats (corrupt stream?)", n)
	}
	data = make([]float64, n)
	var chunk [frameChunkFloats * 8]byte
	for off := 0; off < len(data); off += frameChunkFloats {
		part := data[off:min(off+frameChunkFloats, len(data))]
		if _, err := io.ReadFull(r, chunk[:len(part)*8]); err != nil {
			return 0, nil, err
		}
		for i := range part {
			part[i] = math.Float64frombits(binary.BigEndian.Uint64(chunk[i*8:]))
		}
	}
	return tag, data, nil
}

// hello is the bootstrap announcement: magic, rank, world size, and the
// sender's data-listener address (empty on mesh conns, where only identity
// matters).
func writeHello(w io.Writer, rank, size int, addr string) error {
	buf := make([]byte, 14+len(addr))
	binary.BigEndian.PutUint32(buf[0:], helloMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(rank))
	binary.BigEndian.PutUint32(buf[8:], uint32(size))
	binary.BigEndian.PutUint16(buf[12:], uint16(len(addr)))
	copy(buf[14:], addr)
	_, err := w.Write(buf)
	return err
}

func readHello(r io.Reader) (rank, size int, addr string, err error) {
	var buf [14]byte
	if _, err = io.ReadFull(r, buf[:]); err != nil {
		return 0, 0, "", err
	}
	if m := binary.BigEndian.Uint32(buf[0:]); m != helloMagic {
		return 0, 0, "", fmt.Errorf("mpi: bad hello magic %#x (not a streambrain rank?)", m)
	}
	rank = int(binary.BigEndian.Uint32(buf[4:]))
	size = int(binary.BigEndian.Uint32(buf[8:]))
	alen := int(binary.BigEndian.Uint16(buf[12:]))
	ab := make([]byte, alen)
	if _, err = io.ReadFull(r, ab); err != nil {
		return 0, 0, "", err
	}
	return rank, size, string(ab), nil
}

// writeTable / readTable carry the gathered rank→address table from rank 0
// to every joiner over the rendezvous conn.
func writeTable(w io.Writer, addrs []string) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(addrs)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, a := range addrs {
		var l [2]byte
		binary.BigEndian.PutUint16(l[:], uint16(len(a)))
		if _, err := w.Write(l[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, a); err != nil {
			return err
		}
	}
	return nil
}

func readTable(r io.Reader) ([]string, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 1<<16 {
		return nil, fmt.Errorf("mpi: address table claims %d ranks", n)
	}
	addrs := make([]string, n)
	for i := range addrs {
		var l [2]byte
		if _, err := io.ReadFull(r, l[:]); err != nil {
			return nil, err
		}
		b := make([]byte, binary.BigEndian.Uint16(l[:]))
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		addrs[i] = string(b)
	}
	return addrs, nil
}

// ---------------------------------------------------------------- demux inbox

// inbox holds the frames one peer has sent us, demultiplexed by tag — real
// MPI's matching rule: a Recv(src, tag) takes the oldest message from src
// with exactly that tag, regardless of what else src has posted. Per-tag
// order is arrival order, so the per-pair non-overtaking guarantee survives.
type inbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    map[int][][]float64
	err  error // terminal: reader failed or transport closed
}

func newInbox() *inbox {
	ib := &inbox{q: make(map[int][][]float64)}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) push(tag int, data []float64) {
	ib.mu.Lock()
	ib.q[tag] = append(ib.q[tag], data)
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// fail marks the inbox dead; waiting and future recvs return err.
func (ib *inbox) fail(err error) {
	ib.mu.Lock()
	if ib.err == nil {
		ib.err = err
	}
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// recv waits up to timeout (0 = forever) for a message with the tag.
func (ib *inbox) recv(tag int, timeout time.Duration) ([]float64, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	expired := false
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			ib.mu.Lock()
			expired = true
			ib.cond.Broadcast()
			ib.mu.Unlock()
		})
		defer t.Stop()
	}
	for {
		if q := ib.q[tag]; len(q) > 0 {
			data := q[0]
			if len(q) == 1 {
				delete(ib.q, tag) // keep the map from accreting one-shot tags
			} else {
				ib.q[tag] = q[1:]
			}
			return data, nil
		}
		if ib.err != nil {
			return nil, ib.err
		}
		if expired {
			return nil, fmt.Errorf("no frame with tag %d within %v: %w", tag, timeout, ErrTimeout)
		}
		ib.cond.Wait()
	}
}

// ---------------------------------------------------------------- transport

// tcpTransport is one rank's endpoint on the TCP mesh.
type tcpTransport struct {
	rank, size int
	opt        TCPOptions

	conns   []net.Conn   // conns[r] is the link to rank r (nil for self)
	writeMu []sync.Mutex // serializes frame writes per conn
	writers []*bufio.Writer
	inboxes []*inbox // inboxes[r] holds frames from rank r

	closeOnce sync.Once
	listener  net.Listener // this rank's data listener (may be nil)
}

// newTCPTransport wires reader goroutines onto an established mesh.
func newTCPTransport(rank int, conns []net.Conn, ln net.Listener, opt TCPOptions) *tcpTransport {
	t := &tcpTransport{
		rank: rank, size: len(conns), opt: opt,
		conns:    conns,
		writeMu:  make([]sync.Mutex, len(conns)),
		writers:  make([]*bufio.Writer, len(conns)),
		inboxes:  make([]*inbox, len(conns)),
		listener: ln,
	}
	for r, conn := range conns {
		if conn == nil {
			continue
		}
		t.writers[r] = bufio.NewWriterSize(conn, 1<<16)
		ib := newInbox()
		t.inboxes[r] = ib
		go func(conn net.Conn, ib *inbox, r int) {
			br := bufio.NewReaderSize(conn, 1<<16)
			for {
				tag, data, err := readFrame(br)
				if err != nil {
					ib.fail(fmt.Errorf("mpi: rank %d link to %d down: %w", rank, r, wrapNetErr(err)))
					return
				}
				ib.push(tag, data)
			}
		}(conn, ib, r)
	}
	return t
}

// wrapNetErr maps socket-level failures onto the package sentinels so
// callers can errors.Is without knowing the backend — and so World.Run can
// tell a root-cause failure from the teardown echoes it triggers on peers
// (resets and closed-socket errors are teardown, not causes).
func wrapNetErr(err error) error {
	if err == nil {
		return nil
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		return fmt.Errorf("%v: %w", err, ErrTimeout)
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return fmt.Errorf("peer closed (%v): %w", err, ErrClosed)
	}
	return err
}

func (t *tcpTransport) Rank() int { return t.rank }
func (t *tcpTransport) Size() int { return t.size }

func (t *tcpTransport) Send(dst, tag int, data []float64) error {
	if err := checkRank("send to", dst, t.size); err != nil {
		return err
	}
	if dst == t.rank {
		return fmt.Errorf("mpi: rank %d sending to itself", t.rank)
	}
	t.writeMu[dst].Lock()
	defer t.writeMu[dst].Unlock()
	conn, w := t.conns[dst], t.writers[dst]
	if conn == nil {
		return fmt.Errorf("mpi: rank %d link to %d: %w", t.rank, dst, ErrClosed)
	}
	if d := t.opt.ioTimeout(); d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	if err := writeFrame(w, tag, data); err != nil {
		return fmt.Errorf("mpi: rank %d send tag %d to %d: %w", t.rank, tag, dst, wrapNetErr(err))
	}
	return nil
}

func (t *tcpTransport) Recv(src, tag int) ([]float64, error) {
	if err := checkRank("recv from", src, t.size); err != nil {
		return nil, err
	}
	if src == t.rank {
		return nil, fmt.Errorf("mpi: rank %d receiving from itself", t.rank)
	}
	data, err := t.inboxes[src].recv(tag, t.opt.ioTimeout())
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d recv tag %d from %d: %w", t.rank, tag, src, err)
	}
	return data, nil
}

func (t *tcpTransport) Close() error {
	t.closeOnce.Do(func() {
		// Close the sockets first, without the write locks: a Send blocked
		// mid-frame holds its writeMu, and net.Conn.Close is the documented
		// way to unblock it. Then nil the slots under the same locks Send
		// reads them with, so in-flight and future Sends see a coherent
		// closed state.
		for _, conn := range t.conns {
			if conn != nil {
				conn.Close()
			}
		}
		for r := range t.conns {
			t.writeMu[r].Lock()
			t.conns[r] = nil
			t.writeMu[r].Unlock()
		}
		if t.listener != nil {
			t.listener.Close()
		}
		for _, ib := range t.inboxes {
			if ib != nil {
				ib.fail(ErrClosed)
			}
		}
	})
	return nil
}

// ---------------------------------------------------------------- rendezvous

// Rendezvous is rank 0's bootstrap listener — the streambrain-dist launcher's
// substitute for mpirun's process-manager wire-up. Rank 0 creates one
// (NewRendezvous), publishes Addr() to the other ranks (the launcher passes
// it via flag), and calls Accept to complete the world; every other rank
// calls JoinTCP with the same address.
type Rendezvous struct {
	ln net.Listener
}

// NewRendezvous binds the rank-0 listener. addr may use port 0 to let the
// kernel pick (Addr reports the concrete address to advertise).
func NewRendezvous(addr string) (*Rendezvous, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: rendezvous listen %s: %w", addr, err)
	}
	return &Rendezvous{ln: ln}, nil
}

// Addr returns the concrete listen address other ranks must JoinTCP.
func (rv *Rendezvous) Addr() string { return rv.ln.Addr().String() }

// Close releases the listener without completing a world (error paths).
func (rv *Rendezvous) Close() error { return rv.ln.Close() }

// Accept completes the rendezvous for a world of the given size and returns
// rank 0's Comm. It blocks until all size−1 peers have joined or the
// rendezvous timeout expires. The joiners' bootstrap conns become rank 0's
// data links, and the gathered address table is sent back so the non-zero
// ranks can finish the mesh among themselves.
func (rv *Rendezvous) Accept(size int, opt TCPOptions) (*Comm, error) {
	if size < 1 {
		rv.ln.Close()
		return nil, fmt.Errorf("mpi: world size %d < 1", size)
	}
	deadline := time.Now().Add(opt.rendezvousTimeout())
	conns := make([]net.Conn, size)
	addrs := make([]string, size)
	addrs[0] = rv.Addr()
	fail := func(err error) (*Comm, error) {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
		rv.ln.Close()
		return nil, err
	}
	for joined := 0; joined < size-1; joined++ {
		if tl, ok := rv.ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := rv.ln.Accept()
		if err != nil {
			return fail(fmt.Errorf("mpi: rendezvous: %d of %d ranks joined: %w",
				joined+1, size, wrapNetErr(err)))
		}
		conn.SetDeadline(deadline)
		rank, peerSize, addr, err := readHello(conn)
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("mpi: rendezvous hello: %w", wrapNetErr(err)))
		}
		if peerSize != size {
			conn.Close()
			return fail(fmt.Errorf("mpi: rank %d joined with world size %d, rendezvous expects %d",
				rank, peerSize, size))
		}
		if rank < 1 || rank >= size {
			conn.Close()
			return fail(fmt.Errorf("mpi: joiner announced invalid rank %d for world of %d", rank, size))
		}
		if conns[rank] != nil {
			conn.Close()
			return fail(fmt.Errorf("mpi: two joiners announced rank %d", rank))
		}
		conns[rank] = conn
		addrs[rank] = addr
	}
	for r := 1; r < size; r++ {
		if err := writeTable(conns[r], addrs); err != nil {
			return fail(fmt.Errorf("mpi: sending address table to rank %d: %w", r, wrapNetErr(err)))
		}
		conns[r].SetDeadline(time.Time{})
	}
	// The rendezvous listener keeps serving as rank 0's data listener slot
	// (nothing dials it after bootstrap, but closing it here would race the
	// last joiner's table read on some stacks; Close tears it down).
	return NewComm(newTCPTransport(0, conns, rv.ln, opt)), nil
}

// JoinTCP connects rank (>0) of a size-rank world to rank 0's rendezvous
// address and completes this rank's side of the mesh: announce our own data
// listener, receive the address table, dial every higher rank, accept from
// every lower one. It returns the rank's Comm.
func JoinTCP(addr string, rank, size int, opt TCPOptions) (*Comm, error) {
	if rank < 1 || rank >= size {
		return nil, fmt.Errorf("mpi: JoinTCP rank %d outside (0, %d)", rank, size)
	}
	deadline := time.Now().Add(opt.rendezvousTimeout())
	// The data listener other ranks dial; bound before we announce it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d data listener: %w", rank, err)
	}
	if host, _, err := net.SplitHostPort(addr); err == nil && !isLoopback(host) {
		// Multi-host worlds must advertise a routable address: rebind on the
		// wildcard and advertise the rendezvous-facing interface.
		ln.Close()
		ln, err = net.Listen("tcp", ":0")
		if err != nil {
			return nil, fmt.Errorf("mpi: rank %d data listener: %w", rank, err)
		}
	}
	fail := func(err error) (*Comm, error) { ln.Close(); return nil, err }

	conn, err := net.DialTimeout("tcp", addr, opt.rendezvousTimeout())
	if err != nil {
		return fail(fmt.Errorf("mpi: rank %d dialing rendezvous %s: %w", rank, addr, wrapNetErr(err)))
	}
	conn.SetDeadline(deadline)
	myAddr := advertisedAddr(ln, conn)
	if err := writeHello(conn, rank, size, myAddr); err != nil {
		conn.Close()
		return fail(fmt.Errorf("mpi: rank %d hello: %w", rank, wrapNetErr(err)))
	}
	addrs, err := readTable(conn)
	if err != nil {
		conn.Close()
		return fail(fmt.Errorf("mpi: rank %d reading address table: %w", rank, wrapNetErr(err)))
	}
	if len(addrs) != size {
		conn.Close()
		return fail(fmt.Errorf("mpi: address table has %d ranks, want %d", len(addrs), size))
	}
	conn.SetDeadline(time.Time{})

	conns := make([]net.Conn, size)
	conns[0] = conn
	// Mesh rule: the lower rank dials the higher one, so every non-zero pair
	// is wired exactly once.
	for peer := rank + 1; peer < size; peer++ {
		pc, err := net.DialTimeout("tcp", addrs[peer], opt.rendezvousTimeout())
		if err != nil {
			closeConns(conns)
			return fail(fmt.Errorf("mpi: rank %d dialing rank %d at %s: %w",
				rank, peer, addrs[peer], wrapNetErr(err)))
		}
		pc.SetDeadline(deadline)
		if err := writeHello(pc, rank, size, ""); err != nil {
			pc.Close()
			closeConns(conns)
			return fail(fmt.Errorf("mpi: rank %d mesh hello to %d: %w", rank, peer, wrapNetErr(err)))
		}
		pc.SetDeadline(time.Time{})
		conns[peer] = pc
	}
	for accepted := 0; accepted < rank-1; accepted++ {
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		pc, err := ln.Accept()
		if err != nil {
			closeConns(conns)
			return fail(fmt.Errorf("mpi: rank %d waiting for mesh peers (%d of %d): %w",
				rank, accepted, rank-1, wrapNetErr(err)))
		}
		pc.SetDeadline(deadline)
		peer, peerSize, _, err := readHello(pc)
		if err != nil || peerSize != size || peer < 1 || peer >= rank || conns[peer] != nil {
			if err == nil {
				err = fmt.Errorf("unexpected mesh hello from rank %d (world %d)", peer, peerSize)
			}
			pc.Close()
			closeConns(conns)
			return fail(fmt.Errorf("mpi: rank %d mesh accept: %w", rank, wrapNetErr(err)))
		}
		pc.SetDeadline(time.Time{})
		conns[peer] = pc
	}
	return NewComm(newTCPTransport(rank, conns, ln, opt)), nil
}

func closeConns(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

func isLoopback(host string) bool {
	if host == "localhost" {
		return true
	}
	ip := net.ParseIP(host)
	return ip != nil && ip.IsLoopback()
}

// advertisedAddr picks the address other ranks should dial for ln: the
// listener port on the interface this rank reaches rank 0 from.
func advertisedAddr(ln net.Listener, rendezvous net.Conn) string {
	_, port, err := net.SplitHostPort(ln.Addr().String())
	if err != nil {
		return ln.Addr().String()
	}
	host, _, err := net.SplitHostPort(rendezvous.LocalAddr().String())
	if err != nil {
		return ln.Addr().String()
	}
	return net.JoinHostPort(host, port)
}
