package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/higgs"
	"streambrain/internal/obs/obstest"
	"streambrain/internal/sgd"
)

// trainTiny trains a small model (hybrid or pure BCPNN) on synthetic Higgs
// events and returns it with its fitted encoder and the raw test split.
func trainTiny(t testing.TB, hybrid bool, seed int64) (*core.Network, *data.Encoder, *data.Dataset) {
	t.Helper()
	ds := higgs.Generate(1600, 0.5, seed)
	rng := rand.New(rand.NewSource(seed + 7))
	trainDS, testDS := ds.Split(0.75, rng)
	enc := data.FitEncoder(trainDS, 8)
	encoded := enc.Transform(trainDS)

	p := core.DefaultParams()
	p.MCUs = 40
	p.ReceptiveField = 0.4
	p.UnsupervisedEpochs = 2
	p.SupervisedEpochs = 2
	p.Seed = seed
	net := core.NewNetwork(backend.MustNew("parallel", 2),
		encoded.Hypercolumns, encoded.UnitsPerHC, encoded.Classes, p)
	if hybrid {
		net.SetReadout(sgd.NewSoftmax(net.Hidden.Units(), encoded.Classes,
			sgd.DefaultConfig(), rand.New(rand.NewSource(seed+1))))
	}
	net.Train(encoded)
	return net, enc, testDS
}

func rawRows(ds *data.Dataset, n int) [][]float64 {
	if n > ds.Len() {
		n = ds.Len()
	}
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = ds.X.Row(i)
	}
	return rows
}

func TestBundleRoundTripMatchesInProcess(t *testing.T) {
	for _, hybrid := range []bool{false, true} {
		name := "bcpnn"
		if hybrid {
			name = "hybrid"
		}
		t.Run(name, func(t *testing.T) {
			net, enc, testDS := trainTiny(t, hybrid, 21)
			var buf bytes.Buffer
			if err := SaveBundle(&buf, net, enc); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadBundle(bytes.NewReader(buf.Bytes()), backend.MustNew("naive", 0))
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Features != enc.Features() || loaded.Classes != 2 {
				t.Fatalf("bundle geometry %dx%d", loaded.Features, loaded.Classes)
			}
			events := rawRows(testDS, 64)
			wantPred, wantScore := net.Predict(enc.Transform(testDS.Subset(seq(len(events)))))
			gotPred, gotScore, err := loaded.Predict(events)
			if err != nil {
				t.Fatal(err)
			}
			for i := range events {
				if gotPred[i] != wantPred[i] {
					t.Fatalf("event %d: class %d, in-process %d", i, gotPred[i], wantPred[i])
				}
				if d := gotScore[i] - wantScore[i]; d > 1e-12 || d < -1e-12 {
					t.Fatalf("event %d: score %v, in-process %v", i, gotScore[i], wantScore[i])
				}
			}
		})
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func TestBundleRejectsMismatchedEncoder(t *testing.T) {
	net, _, _ := trainTiny(t, false, 22)
	ds := higgs.Generate(200, 0.5, 5)
	wrong := data.FitEncoder(ds, 11) // wrong bin count for the network
	var buf bytes.Buffer
	if err := SaveBundle(&buf, net, wrong); err == nil {
		t.Fatal("mismatched encoder accepted")
	}
}

func TestLoadBundleRejectsBareNetworkSnapshot(t *testing.T) {
	net, _, _ := trainTiny(t, false, 23)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(bytes.NewReader(buf.Bytes()), backend.MustNew("naive", 0)); err == nil {
		t.Fatal("bare network snapshot accepted as a bundle")
	}
}

// newTestServer saves a bundle for the trained model, loads it into a
// registry, and returns the running httptest server plus helpers.
func newTestServer(t *testing.T, hybrid bool, cfg ServerConfig) (*httptest.Server, *Server, *Bundle, *data.Dataset, string) {
	t.Helper()
	// Registered before the close cleanup below, so it runs after it (LIFO):
	// every test through this fixture asserts server shutdown leaks nothing.
	t.Cleanup(obstest.CheckLeaks(t))
	net, enc, testDS := trainTiny(t, hybrid, 31)
	path := filepath.Join(t.TempDir(), "model.bundle")
	if err := SaveBundleFile(path, net, enc); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(2, NamedBackendFactory("parallel", 2))
	if err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, cfg, path)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv, reg.Replica(0), testDS, path
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// TestHTTPEndToEnd is the acceptance path: train → save bundle → serve →
// POST a raw event → the response matches the in-process prediction on the
// equivalently encoded input.
func TestHTTPEndToEnd(t *testing.T) {
	ts, _, bundle, testDS, _ := newTestServer(t, true, ServerConfig{})

	events := rawRows(testDS, 32)
	wantPred, wantScore, err := bundle.Predict(events)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Events: events})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Predictions) != len(events) {
		t.Fatalf("%d predictions for %d events", len(pr.Predictions), len(events))
	}
	for i, p := range pr.Predictions {
		if p.Class != wantPred[i] {
			t.Fatalf("event %d: served class %d, in-process %d", i, p.Class, wantPred[i])
		}
		if d := p.SignalScore - wantScore[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("event %d: served score %v, in-process %v", i, p.SignalScore, wantScore[i])
		}
	}

	// Single-event shorthand.
	resp, body = postJSON(t, ts.URL+"/v1/predict", PredictRequest{Features: events[0]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single event status %d: %s", resp.StatusCode, body)
	}
	var single PredictResponse
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if len(single.Predictions) != 1 || single.Predictions[0].Class != wantPred[0] {
		t.Fatalf("single event response %s", body)
	}
}

// TestHTTPCoalescing posts one multi-event request through a server with
// MaxBatch sized to the request; the events are submitted to the batcher
// individually and must merge into coalesced backend calls.
func TestHTTPCoalescing(t *testing.T) {
	ts, srv, _, testDS, _ := newTestServer(t, false, ServerConfig{
		Batcher: BatcherConfig{MaxBatch: 16, MaxWait: 500 * time.Millisecond, Workers: 1},
	})
	events := rawRows(testDS, 16)
	resp, body := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Events: events})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	st := srv.Batcher().Stats()
	if st.BatchedEvents != 16 {
		t.Fatalf("dispatched %d events, want 16", st.BatchedEvents)
	}
	if st.CoalescedBatches < 1 {
		t.Fatalf("no coalesced batches: %+v", st)
	}
	if st.Batches > 15 {
		t.Fatalf("16 events took %d backend calls — nothing merged", st.Batches)
	}
}

func TestHTTPValidation(t *testing.T) {
	ts, _, bundle, _, _ := newTestServer(t, false, ServerConfig{})

	// Wrong feature width → 400.
	resp, body := postJSON(t, ts.URL+"/v1/predict",
		PredictRequest{Events: [][]float64{make([]float64, bundle.Features-1)}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("narrow event: status %d: %s", resp.StatusCode, body)
	}
	// Empty request → 400.
	resp, body = postJSON(t, ts.URL+"/v1/predict", PredictRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request: status %d: %s", resp.StatusCode, body)
	}
	// Bad JSON → 400.
	r, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", r.StatusCode)
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	ts, _, _, testDS, _ := newTestServer(t, false, ServerConfig{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	postJSON(t, ts.URL+"/v1/predict", PredictRequest{Events: rawRows(testDS, 8)})

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 1 || st.Events != 8 {
		t.Fatalf("stats counted %d requests / %d events, want 1 / 8", st.Requests, st.Events)
	}
	if st.Bundle == nil || st.Bundle.Features == 0 {
		t.Fatalf("stats bundle info missing: %+v", st)
	}
	if st.Latency.Count != 1 || st.Latency.MaxMs <= 0 {
		t.Fatalf("latency summary %+v", st.Latency)
	}
}

func TestHealthzWithoutBundle(t *testing.T) {
	reg := NewRegistry(1, NamedBackendFactory("naive", 0))
	srv := NewServer(reg, ServerConfig{}, "")
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no bundle: status %d", resp.StatusCode)
	}
	r, body := postJSON(t, ts.URL+"/v1/predict", PredictRequest{Features: []float64{1}})
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict with no bundle: status %d: %s", r.StatusCode, body)
	}
}

// TestHTTPHotSwap trains a second model, reloads it through /v1/reload, and
// asserts the served predictions switch to the new model atomically.
func TestHTTPHotSwap(t *testing.T) {
	ts, _, _, testDS, path := newTestServer(t, false, ServerConfig{})

	// Train a different model (different seed/geometry) and overwrite the
	// bundle file the server was started from.
	net2, enc2, _ := trainTiny(t, true, 77)
	if err := SaveBundleFile(path, net2, enc2); err != nil {
		t.Fatal(err)
	}
	want2 := NewRegistry(1, NamedBackendFactory("naive", 0))
	if err := want2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	events := rawRows(testDS, 16)
	wantPred, wantScore, err := want2.Replica(0).Predict(events)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/reload", reloadRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}
	var info BundleInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Source != path || info.Replicas != 2 {
		t.Fatalf("reload info %+v", info)
	}

	resp, body = postJSON(t, ts.URL+"/v1/predict", PredictRequest{Events: events})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap predict status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	for i, p := range pr.Predictions {
		if p.Class != wantPred[i] {
			t.Fatalf("event %d: post-swap class %d, want %d", i, p.Class, wantPred[i])
		}
		if d := p.SignalScore - wantScore[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("event %d: post-swap score %v, want %v", i, p.SignalScore, wantScore[i])
		}
	}
}

// TestReloadBadPathKeepsServing: a failed reload must leave the old
// generation live.
func TestReloadBadPathKeepsServing(t *testing.T) {
	ts, _, _, testDS, _ := newTestServer(t, false, ServerConfig{})
	resp, body := postJSON(t, ts.URL+"/v1/reload", reloadRequest{Path: filepath.Join(os.TempDir(), "nope.bundle")})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("bad reload status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/predict", PredictRequest{Events: rawRows(testDS, 2)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("serving broke after failed reload: %d: %s", resp.StatusCode, body)
	}
}

func TestSaveBundleFileAtomic(t *testing.T) {
	net, enc, _ := trainTiny(t, false, 41)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.bundle")
	if err := SaveBundleFile(path, net, enc); err != nil {
		t.Fatal(err)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, ".bundle-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
	if _, err := LoadBundleFile(path, backend.MustNew("naive", 0)); err != nil {
		t.Fatal(err)
	}
}
