package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"streambrain/internal/obs/obstest"
)

// echoPredict maps each event's first feature straight through, so a test
// can verify responses are wired back to the request that submitted them.
func echoPredict(_ int, events [][]float64) ([]int, []float64, error) {
	pred := make([]int, len(events))
	score := make([]float64, len(events))
	for i, ev := range events {
		pred[i] = int(ev[0])
		score[i] = ev[0] / 1000
	}
	return pred, score, nil
}

// TestBatcherCoalesces is the micro-batching contract: with MaxBatch=2, four
// concurrent in-flight requests must be dispatched as exactly two backend
// calls of two events each — coalescing is triggered by count, so the test
// is deterministic regardless of scheduling.
func TestBatcherCoalesces(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	fn := func(w int, events [][]float64) ([]int, []float64, error) {
		mu.Lock()
		sizes = append(sizes, len(events))
		mu.Unlock()
		return echoPredict(w, events)
	}
	b := NewBatcher(fn, BatcherConfig{MaxBatch: 2, MaxWait: 10 * time.Second, Workers: 1})
	defer b.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class, _, err := b.Predict(context.Background(), []float64{float64(i)})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
			} else if class != i {
				t.Errorf("request %d got class %d", i, class)
			}
		}(i)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("batch sizes %v, want [2 2]", sizes)
	}
	st := b.Stats()
	if st.CoalescedBatches != 2 || st.Requests != 4 || st.BatchedEvents != 4 {
		t.Fatalf("stats %+v, want 2 coalesced batches over 4 events", st)
	}
}

// TestBatcherMaxWaitFlush: a lone request must not wait for MaxBatch
// partners forever — the window timer dispatches it alone.
func TestBatcherMaxWaitFlush(t *testing.T) {
	b := NewBatcher(echoPredict, BatcherConfig{MaxBatch: 64, MaxWait: 5 * time.Millisecond})
	defer b.Close()
	start := time.Now()
	class, score, err := b.Predict(context.Background(), []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if class != 7 || score != 7.0/1000 {
		t.Fatalf("got class %d score %v", class, score)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("lone request waited %v", waited)
	}
	if st := b.Stats(); st.Batches != 1 || st.MaxBatch != 1 {
		t.Fatalf("stats %+v, want one batch of one", st)
	}
}

// TestBatcherResponseRouting floods the batcher and checks every caller gets
// its own answer back, not a neighbor's.
func TestBatcherResponseRouting(t *testing.T) {
	b := NewBatcher(echoPredict, BatcherConfig{MaxBatch: 16, MaxWait: time.Millisecond, Workers: 4})
	defer b.Close()
	const n = 400
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class, score, err := b.Predict(context.Background(), []float64{float64(i)})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if class != i || score != float64(i)/1000 {
				t.Errorf("request %d routed to class %d score %v", i, class, score)
			}
		}(i)
	}
	wg.Wait()
	if st := b.Stats(); st.BatchedEvents != n {
		t.Fatalf("dispatched %d events, want %d", st.BatchedEvents, n)
	}
}

// TestBatcherErrorFansOut: a backend failure must reach every request of the
// batch.
func TestBatcherErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	fn := func(int, [][]float64) ([]int, []float64, error) { return nil, nil, boom }
	b := NewBatcher(fn, BatcherConfig{MaxBatch: 2, MaxWait: 10 * time.Second})
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := b.Predict(context.Background(), []float64{1}); !errors.Is(err, boom) {
				t.Errorf("got %v, want boom", err)
			}
		}()
	}
	wg.Wait()
}

// TestBatcherShortResultsRejected: a PredictFunc that loses events must
// surface an error instead of mis-routing.
func TestBatcherShortResultsRejected(t *testing.T) {
	fn := func(int, [][]float64) ([]int, []float64, error) {
		return []int{0}, []float64{0}, nil // always one result
	}
	b := NewBatcher(fn, BatcherConfig{MaxBatch: 2, MaxWait: 10 * time.Second})
	defer b.Close()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Predict(context.Background(), []float64{1})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("request %d accepted a short result set", i)
		}
	}
}

// TestBatcherClose: Close drains in-flight work and later Predicts fail
// fast with ErrClosed — and the worker goroutines actually exit.
func TestBatcherClose(t *testing.T) {
	defer obstest.CheckLeaks(t)()
	b := NewBatcher(echoPredict, BatcherConfig{MaxBatch: 8, MaxWait: time.Millisecond})
	if _, _, err := b.Predict(context.Background(), []float64{1}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	b.Close() // idempotent
	if _, _, err := b.Predict(context.Background(), []float64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestBatcherContextCancel: a canceled caller unblocks immediately even
// though its batch may still execute.
func TestBatcherContextCancel(t *testing.T) {
	gate := make(chan struct{})
	fn := func(w int, events [][]float64) ([]int, []float64, error) {
		<-gate
		return echoPredict(w, events)
	}
	b := NewBatcher(fn, BatcherConfig{MaxBatch: 1, MaxWait: time.Millisecond})
	defer b.Close()
	defer close(gate)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := b.Predict(ctx, []float64{1})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the request reach the blocked worker
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Predict did not return")
	}
}

// TestBatcherManyWorkersThroughput is a smoke test that batches flow through
// multiple worker slots without deadlock when the queue saturates.
func TestBatcherManyWorkersThroughput(t *testing.T) {
	fn := func(w int, events [][]float64) ([]int, []float64, error) {
		time.Sleep(time.Millisecond)
		return echoPredict(w, events)
	}
	b := NewBatcher(fn, BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 3, Queue: 8})
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := b.Predict(context.Background(), []float64{float64(i)}); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := b.Stats()
	if st.BatchedEvents != 64 {
		t.Fatalf("dispatched %d events, want 64", st.BatchedEvents)
	}
	if st.Batches == 64 {
		t.Log("no coalescing occurred under load (legal but unexpected)")
	}
}

// TestBatcherCloseRacesPredict hammers Close against a storm of concurrent
// Predict calls (run under -race in CI): every accepted request must get a
// real response or ErrClosed — never a hang, never a lost reply. The
// PredictFunc sleeps briefly so Close always lands while batches are in
// flight and the queue holds pending requests.
func TestBatcherCloseRacesPredict(t *testing.T) {
	defer obstest.CheckLeaks(t)()
	for round := 0; round < 8; round++ {
		fn := func(w int, events [][]float64) ([]int, []float64, error) {
			time.Sleep(200 * time.Microsecond)
			return echoPredict(w, events)
		}
		b := NewBatcher(fn, BatcherConfig{
			MaxBatch: 4, MaxWait: 100 * time.Microsecond, Workers: 2, Queue: 8,
		})

		const callers = 32
		results := make(chan error, callers)
		var started sync.WaitGroup
		started.Add(callers)
		for c := 0; c < callers; c++ {
			go func(c int) {
				started.Done()
				_, _, err := b.Predict(context.Background(), []float64{float64(c)})
				results <- err
			}(c)
		}
		started.Wait()
		// Close while callers are mid-submit and batches are mid-flight.
		time.Sleep(time.Duration(round*150) * time.Microsecond)
		b.Close()

		for c := 0; c < callers; c++ {
			select {
			case err := <-results:
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Fatalf("round %d: unexpected error %v", round, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("round %d: Predict hung across Close", round)
			}
		}
	}
}
