package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"streambrain/internal/obs"
)

// ErrClosed is returned by Predict after Close.
var ErrClosed = errors.New("serve: batcher closed")

// PredictFunc scores a batch of raw events. worker identifies which worker
// slot issues the call (workers run serially within a slot, so a PredictFunc
// backed by per-worker model replicas needs no locking). It must return one
// prediction and one score per event.
type PredictFunc func(worker int, events [][]float64) (pred []int, score []float64, err error)

// BatchTiming breaks one backend call into its stages, for the per-stage
// histograms and trace spans (DESIGN.md §11). A zero value means the stages
// were not measured; the batcher then attributes the whole call to forward.
type BatchTiming struct {
	Encode  time.Duration // encoder transform
	Forward time.Duration // kernel forward pass
}

// StagedPredictFunc is a PredictFunc that also reports per-stage timings —
// what the HTTP server wires in so /metrics can split encode from forward.
type StagedPredictFunc func(worker int, events [][]float64) (pred []int, score []float64, timing BatchTiming, err error)

// BatcherConfig tunes the micro-batching scheduler.
type BatcherConfig struct {
	// MaxBatch caps how many requests are coalesced into one backend call
	// (default 64).
	MaxBatch int
	// MaxWait bounds how long the first request of a window waits for
	// company before the batch is dispatched anyway (default 2ms). Zero
	// keeps the default; batching cannot be disabled below MaxBatch=1.
	MaxWait time.Duration
	// Workers is the number of concurrent batch executors (default 1).
	// Each worker slot sees only serial calls.
	Workers int
	// Queue is the pending-request buffer size (default 4×MaxBatch).
	Queue int
	// Metrics is the instrument set the scheduler records into. Nil gets a
	// private registry (counters still work, nothing is exported).
	Metrics *Metrics
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.MaxBatch
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(nil)
	}
	return c
}

// BatcherStats is a snapshot of scheduler counters.
type BatcherStats struct {
	// Requests is the number of events accepted into the queue.
	Requests uint64
	// Batches is the number of backend calls issued.
	Batches uint64
	// BatchedEvents is the number of events dispatched inside those calls.
	BatchedEvents uint64
	// CoalescedBatches counts batches that merged two or more requests.
	CoalescedBatches uint64
	// MaxBatch is the largest batch observed.
	MaxBatch uint64
}

// AvgBatch is the mean events-per-backend-call, the amortization factor.
func (s BatcherStats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedEvents) / float64(s.Batches)
}

type response struct {
	class int
	score float64
	err   error
}

type request struct {
	features []float64
	done     chan response
	tr       *obs.Trace // non-nil on sampled requests; spans land here
	enq      time.Time  // when the request entered the queue

	// Block-request form (the binary wire path, DESIGN.md §12): rows is the
	// whole multi-event batch, and the worker writes results straight into
	// the caller-owned pred/score slices — one done signal, zero per-event
	// channels. rows == nil means the single-event form above.
	rows  [][]float64
	pred  []int
	score []float64
}

// size is how many events this request contributes to a batch.
func (r *request) size() int {
	if r.rows != nil {
		return len(r.rows)
	}
	return 1
}

// Batcher coalesces concurrent single-event Predict calls into batched
// backend invocations: the first request of a window opens a timer of
// MaxWait; every request arriving before it fires joins the batch, up to
// MaxBatch, then the whole batch runs as one backend call. This amortizes
// per-call dispatch overhead exactly the way training batches amortize
// kernel launches.
type Batcher struct {
	cfg BatcherConfig
	fn  StagedPredictFunc
	m   *Metrics

	reqCh   chan *request
	batchCh chan []*request
	stop    chan struct{} // closed by Close: stop accepting
	done    chan struct{} // closed when all workers exited
	once    sync.Once
}

// NewBatcher starts the scheduler around a plain PredictFunc (whole-call
// time is attributed to the forward stage).
func NewBatcher(fn PredictFunc, cfg BatcherConfig) *Batcher {
	return NewStagedBatcher(func(w int, events [][]float64) ([]int, []float64, BatchTiming, error) {
		pred, score, err := fn(w, events)
		return pred, score, BatchTiming{}, err
	}, cfg)
}

// NewStagedBatcher starts the scheduler: one collector goroutine plus
// cfg.Workers batch executors.
func NewStagedBatcher(fn StagedPredictFunc, cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:     cfg,
		fn:      fn,
		m:       cfg.Metrics,
		reqCh:   make(chan *request, cfg.Queue),
		batchCh: make(chan []*request, cfg.Workers),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	var wg sync.WaitGroup
	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			defer wg.Done()
			b.worker(w)
		}(w)
	}
	go b.collect()
	go func() {
		wg.Wait()
		close(b.done)
	}()
	return b
}

// Predict submits one raw event and blocks until its batch returns (or ctx
// is canceled, or the batcher closes).
func (b *Batcher) Predict(ctx context.Context, features []float64) (class int, score float64, err error) {
	return b.PredictTraced(ctx, features, nil)
}

// PredictTraced is Predict carrying a sampled trace: the enqueue, batch
// assembly, encode, and forward stages of this event's journey are recorded
// as spans on tr (nil tr — the common, unsampled case — costs nothing).
func (b *Batcher) PredictTraced(ctx context.Context, features []float64, tr *obs.Trace) (class int, score float64, err error) {
	// enq is stamped before the send publishes r to the collector — a worker
	// may read it the instant the send completes. Queue wait therefore also
	// covers time blocked on a full queue, which is queueing too.
	r := &request{features: features, done: make(chan response, 1), tr: tr, enq: time.Now()}
	sp := tr.Start("enqueue")
	select {
	case b.reqCh <- r:
		sp.End()
		b.m.events.Inc()
	case <-b.stop:
		return 0, 0, ErrClosed
	case <-ctx.Done():
		return 0, 0, ctx.Err()
	}
	select {
	case resp := <-r.done:
		return resp.class, resp.score, resp.err
	case <-ctx.Done():
		// The batch still executes; the buffered done channel absorbs the
		// orphaned response.
		return 0, 0, ctx.Err()
	case <-b.done:
		// Workers exited; the response may still have been delivered.
		select {
		case resp := <-r.done:
			return resp.class, resp.score, resp.err
		default:
			return 0, 0, ErrClosed
		}
	}
}

// PredictBlock submits a whole multi-event request as ONE queue entry and
// blocks until its batch returns. Results land directly in the caller-owned
// pred and score slices (both len(rows) long) — no per-event goroutines, no
// per-event channels, which is what keeps the binary wire path allocation-
// lean. The rows themselves still coalesce with other requests into backend
// batches up to MaxBatch events.
//
// On a nil return the slices hold one result per row. On a context or
// ErrClosed error the batch may still be in flight and may write into pred
// and score afterwards — the caller must not reuse or pool those slices.
func (b *Batcher) PredictBlock(ctx context.Context, rows [][]float64, pred []int, score []float64, tr *obs.Trace) error {
	if len(rows) == 0 {
		return nil
	}
	if len(pred) != len(rows) || len(score) != len(rows) {
		return fmt.Errorf("serve: PredictBlock needs %d-long result slices, got %d/%d",
			len(rows), len(pred), len(score))
	}
	r := &request{rows: rows, pred: pred, score: score,
		done: make(chan response, 1), tr: tr, enq: time.Now()}
	sp := tr.Start("enqueue")
	select {
	case b.reqCh <- r:
		sp.End()
		b.m.events.Add(uint64(len(rows)))
	case <-b.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case resp := <-r.done:
		return resp.err
	case <-ctx.Done():
		return ctx.Err()
	case <-b.done:
		select {
		case resp := <-r.done:
			return resp.err
		default:
			return ErrClosed
		}
	}
}

// Stats returns the scheduler counters as one consistent snapshot: the
// reads run under the registry's Snapshot lock, excluded from the grouped
// updates the workers make, so no torn cross-field state (Batches
// incremented but BatchedEvents not yet) can ever be observed.
func (b *Batcher) Stats() BatcherStats {
	var s BatcherStats
	b.m.reg.Snapshot(func() { s = b.statsLoad() })
	return s
}

// statsLoad assembles BatcherStats from the instruments without locking —
// for callers that already hold a registry Snapshot (the /stats handler).
func (b *Batcher) statsLoad() BatcherStats {
	return BatcherStats{
		Requests:         b.m.events.Value(),
		Batches:          b.m.batchSize.Count(),
		BatchedEvents:    uint64(b.m.batchSize.Sum()),
		CoalescedBatches: b.m.coalesced.Value(),
		MaxBatch:         uint64(b.m.batchSize.Max()),
	}
}

// Close stops accepting requests, flushes the queue, and waits for in-flight
// batches to finish. Safe to call more than once.
func (b *Batcher) Close() {
	b.once.Do(func() { close(b.stop) })
	<-b.done
}

// collect is the batching loop: it owns the pending slice and the window
// timer, so batch assembly needs no locks. The MaxBatch budget counts
// EVENTS, not queue entries — a block request (PredictBlock) spends its row
// count, so wire batches and single JSON events share one sizing policy.
func (b *Batcher) collect() {
	defer close(b.batchCh)
	var pending []*request
	var pendingEvents int
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	flush := func() {
		if len(pending) > 0 {
			b.batchCh <- pending
			pending = nil
			pendingEvents = 0
		}
	}
	add := func(r *request) {
		pending = append(pending, r)
		pendingEvents += r.size()
	}
	// drain flushes everything already queued at Close time so no accepted
	// request is left without a response.
	drain := func() {
		for {
			select {
			case r := <-b.reqCh:
				add(r)
				if pendingEvents >= b.cfg.MaxBatch {
					flush()
				}
			default:
				flush()
				return
			}
		}
	}
	for {
		if len(pending) == 0 {
			select {
			case r := <-b.reqCh:
				add(r)
				if pendingEvents >= b.cfg.MaxBatch {
					flush()
				} else {
					timer.Reset(b.cfg.MaxWait)
				}
			case <-b.stop:
				drain()
				return
			}
		} else {
			select {
			case r := <-b.reqCh:
				add(r)
				if pendingEvents >= b.cfg.MaxBatch {
					timer.Stop()
					flush()
				}
			case <-timer.C:
				flush()
			case <-b.stop:
				timer.Stop()
				drain()
				return
			}
		}
	}
}

// worker executes assembled batches serially within its slot. The events
// slice is the worker's reusable batch-assembly scratch — serial calls per
// slot make that safe, and it keeps steady-state dispatch allocation-free.
func (b *Batcher) worker(w int) {
	var events [][]float64
	for batch := range b.batchCh {
		total := 0
		for _, r := range batch {
			total += r.size()
		}
		n := uint64(total)
		dispatched := time.Now()
		// Per-event queue-wait observations, plus the batch trace: the
		// first sampled request in the batch carries the spans for the
		// whole batch (the other events shared its fate).
		var tr *obs.Trace
		var oldest time.Duration
		for _, r := range batch {
			wait := dispatched.Sub(r.enq)
			b.m.queueWait.Observe(wait)
			if wait > oldest {
				oldest = wait
			}
			if tr == nil {
				tr = r.tr
			}
		}
		tr.Add("assemble", dispatched.Add(-oldest), dispatched)
		// The batch accounting is one Atomically group, so a concurrent
		// Stats snapshot sees the size histogram and the coalesced counter
		// move together (the torn-read fix, DESIGN.md §11).
		b.m.reg.Atomically(func() {
			b.m.batchSize.ObserveValue(int64(n))
			if len(batch) >= 2 {
				b.m.coalesced.Inc()
			}
		})
		events = events[:0]
		for _, r := range batch {
			if r.rows != nil {
				events = append(events, r.rows...)
			} else {
				events = append(events, r.features)
			}
		}
		start := time.Now()
		pred, score, tm, err := b.fn(w, events)
		if tm == (BatchTiming{}) {
			// Unstaged backend: attribute the whole call to forward.
			tm.Forward = time.Since(start)
		}
		if tm.Encode > 0 {
			b.m.encode.Observe(tm.Encode)
		}
		b.m.forward.Observe(tm.Forward)
		if tr != nil {
			encEnd := start.Add(tm.Encode)
			if tm.Encode > 0 {
				tr.Add("encode", start, encEnd)
			}
			tr.Add("forward", encEnd, encEnd.Add(tm.Forward))
		}
		if err == nil && (len(pred) != total || len(score) != total) {
			err = fmt.Errorf("serve: predict returned %d/%d results for %d events",
				len(pred), len(score), total)
		}
		off := 0
		for _, r := range batch {
			sz := r.size()
			if err != nil {
				r.done <- response{err: err}
				off += sz
				continue
			}
			if r.rows != nil {
				copy(r.pred, pred[off:off+sz])
				copy(r.score, score[off:off+sz])
				r.done <- response{}
			} else {
				r.done <- response{class: pred[off], score: score[off]}
			}
			off += sz
		}
	}
}
