package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Predict after Close.
var ErrClosed = errors.New("serve: batcher closed")

// PredictFunc scores a batch of raw events. worker identifies which worker
// slot issues the call (workers run serially within a slot, so a PredictFunc
// backed by per-worker model replicas needs no locking). It must return one
// prediction and one score per event.
type PredictFunc func(worker int, events [][]float64) (pred []int, score []float64, err error)

// BatcherConfig tunes the micro-batching scheduler.
type BatcherConfig struct {
	// MaxBatch caps how many requests are coalesced into one backend call
	// (default 64).
	MaxBatch int
	// MaxWait bounds how long the first request of a window waits for
	// company before the batch is dispatched anyway (default 2ms). Zero
	// keeps the default; batching cannot be disabled below MaxBatch=1.
	MaxWait time.Duration
	// Workers is the number of concurrent batch executors (default 1).
	// Each worker slot sees only serial calls.
	Workers int
	// Queue is the pending-request buffer size (default 4×MaxBatch).
	Queue int
}

func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Queue <= 0 {
		c.Queue = 4 * c.MaxBatch
	}
	return c
}

// BatcherStats is a snapshot of scheduler counters.
type BatcherStats struct {
	// Requests is the number of events accepted into the queue.
	Requests uint64
	// Batches is the number of backend calls issued.
	Batches uint64
	// BatchedEvents is the number of events dispatched inside those calls.
	BatchedEvents uint64
	// CoalescedBatches counts batches that merged two or more requests.
	CoalescedBatches uint64
	// MaxBatch is the largest batch observed.
	MaxBatch uint64
}

// AvgBatch is the mean events-per-backend-call, the amortization factor.
func (s BatcherStats) AvgBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchedEvents) / float64(s.Batches)
}

type response struct {
	class int
	score float64
	err   error
}

type request struct {
	features []float64
	done     chan response
}

// Batcher coalesces concurrent single-event Predict calls into batched
// PredictFunc invocations: the first request of a window opens a timer of
// MaxWait; every request arriving before it fires joins the batch, up to
// MaxBatch, then the whole batch runs as one backend call. This amortizes
// per-call dispatch overhead exactly the way training batches amortize
// kernel launches.
type Batcher struct {
	cfg BatcherConfig
	fn  PredictFunc

	reqCh   chan *request
	batchCh chan []*request
	stop    chan struct{} // closed by Close: stop accepting
	done    chan struct{} // closed when all workers exited
	once    sync.Once

	requests         atomic.Uint64
	batches          atomic.Uint64
	batchedEvents    atomic.Uint64
	coalescedBatches atomic.Uint64
	maxBatch         atomic.Uint64
}

// NewBatcher starts the scheduler: one collector goroutine plus cfg.Workers
// batch executors.
func NewBatcher(fn PredictFunc, cfg BatcherConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:     cfg,
		fn:      fn,
		reqCh:   make(chan *request, cfg.Queue),
		batchCh: make(chan []*request, cfg.Workers),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	var wg sync.WaitGroup
	wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go func(w int) {
			defer wg.Done()
			b.worker(w)
		}(w)
	}
	go b.collect()
	go func() {
		wg.Wait()
		close(b.done)
	}()
	return b
}

// Predict submits one raw event and blocks until its batch returns (or ctx
// is canceled, or the batcher closes).
func (b *Batcher) Predict(ctx context.Context, features []float64) (class int, score float64, err error) {
	r := &request{features: features, done: make(chan response, 1)}
	select {
	case b.reqCh <- r:
		b.requests.Add(1)
	case <-b.stop:
		return 0, 0, ErrClosed
	case <-ctx.Done():
		return 0, 0, ctx.Err()
	}
	select {
	case resp := <-r.done:
		return resp.class, resp.score, resp.err
	case <-ctx.Done():
		// The batch still executes; the buffered done channel absorbs the
		// orphaned response.
		return 0, 0, ctx.Err()
	case <-b.done:
		// Workers exited; the response may still have been delivered.
		select {
		case resp := <-r.done:
			return resp.class, resp.score, resp.err
		default:
			return 0, 0, ErrClosed
		}
	}
}

// Stats returns a snapshot of the scheduler counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Requests:         b.requests.Load(),
		Batches:          b.batches.Load(),
		BatchedEvents:    b.batchedEvents.Load(),
		CoalescedBatches: b.coalescedBatches.Load(),
		MaxBatch:         b.maxBatch.Load(),
	}
}

// Close stops accepting requests, flushes the queue, and waits for in-flight
// batches to finish. Safe to call more than once.
func (b *Batcher) Close() {
	b.once.Do(func() { close(b.stop) })
	<-b.done
}

// collect is the batching loop: it owns the pending slice and the window
// timer, so batch assembly needs no locks.
func (b *Batcher) collect() {
	defer close(b.batchCh)
	var pending []*request
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	flush := func() {
		if len(pending) > 0 {
			b.batchCh <- pending
			pending = nil
		}
	}
	for {
		if len(pending) == 0 {
			select {
			case r := <-b.reqCh:
				pending = append(pending, r)
				if len(pending) >= b.cfg.MaxBatch {
					flush()
				} else {
					timer.Reset(b.cfg.MaxWait)
				}
			case <-b.stop:
				b.drain(flush, &pending)
				return
			}
		} else {
			select {
			case r := <-b.reqCh:
				pending = append(pending, r)
				if len(pending) >= b.cfg.MaxBatch {
					timer.Stop()
					flush()
				}
			case <-timer.C:
				flush()
			case <-b.stop:
				timer.Stop()
				b.drain(flush, &pending)
				return
			}
		}
	}
}

// drain flushes everything already queued at Close time so no accepted
// request is left without a response.
func (b *Batcher) drain(flush func(), pending *[]*request) {
	for {
		select {
		case r := <-b.reqCh:
			*pending = append(*pending, r)
			if len(*pending) >= b.cfg.MaxBatch {
				flush()
			}
		default:
			flush()
			return
		}
	}
}

// worker executes assembled batches serially within its slot.
func (b *Batcher) worker(w int) {
	for batch := range b.batchCh {
		n := uint64(len(batch))
		b.batches.Add(1)
		b.batchedEvents.Add(n)
		if n >= 2 {
			b.coalescedBatches.Add(1)
		}
		for {
			old := b.maxBatch.Load()
			if n <= old || b.maxBatch.CompareAndSwap(old, n) {
				break
			}
		}
		events := make([][]float64, len(batch))
		for i, r := range batch {
			events[i] = r.features
		}
		pred, score, err := b.fn(w, events)
		if err == nil && (len(pred) != len(batch) || len(score) != len(batch)) {
			err = fmt.Errorf("serve: predict returned %d/%d results for %d events",
				len(pred), len(score), len(batch))
		}
		for i, r := range batch {
			if err != nil {
				r.done <- response{err: err}
				continue
			}
			r.done <- response{class: pred[i], score: score[i]}
		}
	}
}
