package serve

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"streambrain/internal/backend"
)

// BackendFactory builds a fresh backend instance for one model replica.
type BackendFactory func() (backend.Backend, error)

// NamedBackendFactory adapts backend.New to a factory.
func NamedBackendFactory(name string, workers int) BackendFactory {
	return func() (backend.Backend, error) { return backend.New(name, workers) }
}

// activeSet is one immutable generation of the registry: the decoded model
// replicas plus provenance. Swaps replace the whole set through one atomic
// pointer store, so readers always see a consistent generation.
type activeSet struct {
	bundles  []*Bundle
	source   string
	loadedAt time.Time
}

// BundleInfo describes the active generation for health/stats reporting.
type BundleInfo struct {
	Source       string    `json:"source"`
	LoadedAt     time.Time `json:"loaded_at"`
	Features     int       `json:"features"`
	Classes      int       `json:"classes"`
	SavedBackend string    `json:"saved_backend"`
	Replicas     int       `json:"replicas"`
}

// Registry holds the active model bundle as per-worker replicas and supports
// atomic hot-swap from disk. The Backend interface does not promise
// concurrent calls, so instead of sharing one network across workers the
// registry decodes `replicas` independent copies from the same bundle bytes;
// worker w of the batcher drives replica w serially. In-flight batches
// finish on the generation they started with.
type Registry struct {
	replicas int
	factory  BackendFactory

	mu     sync.Mutex // serializes swaps, not reads
	active atomic.Pointer[activeSet]
}

// NewRegistry builds an empty registry producing `replicas` model copies per
// load (min 1).
func NewRegistry(replicas int, factory BackendFactory) *Registry {
	if replicas < 1 {
		replicas = 1
	}
	return &Registry{replicas: replicas, factory: factory}
}

// Replicas returns the per-generation replica count.
func (r *Registry) Replicas() int { return r.replicas }

// LoadBytes decodes a new generation from bundle bytes and atomically swaps
// it in. source is recorded for reporting.
func (r *Registry) LoadBytes(raw []byte, source string, loadedAt time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Replica decodes are independent; run them in parallel so reload
	// latency does not grow with the replica count.
	bundles := make([]*Bundle, r.replicas)
	errs := make([]error, r.replicas)
	var wg sync.WaitGroup
	wg.Add(r.replicas)
	for i := range bundles {
		go func(i int) {
			defer wg.Done()
			be, err := r.factory()
			if err != nil {
				errs[i] = fmt.Errorf("serve: registry: %w", err)
				return
			}
			bundles[i], errs[i] = LoadBundle(bytes.NewReader(raw), be)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	r.active.Store(&activeSet{bundles: bundles, source: source, loadedAt: loadedAt})
	return nil
}

// LoadFile reads a bundle file and atomically swaps it in. The old
// generation keeps serving until the new one is fully decoded; a load error
// leaves the active generation untouched.
func (r *Registry) LoadFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve: registry: %w", err)
	}
	return r.LoadBytes(raw, path, time.Now())
}

// Replica returns worker w's model copy from the current generation, or nil
// when nothing is loaded.
func (r *Registry) Replica(w int) *Bundle {
	set := r.active.Load()
	if set == nil {
		return nil
	}
	return set.bundles[w%len(set.bundles)]
}

// Info reports the active generation, or nil when nothing is loaded.
func (r *Registry) Info() *BundleInfo {
	set := r.active.Load()
	if set == nil {
		return nil
	}
	b := set.bundles[0]
	return &BundleInfo{
		Source:       set.source,
		LoadedAt:     set.loadedAt,
		Features:     b.Features,
		Classes:      b.Classes,
		SavedBackend: b.SavedBackend,
		Replicas:     len(set.bundles),
	}
}
