package serve

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
)

// BackendFactory builds a fresh backend instance for one model replica.
type BackendFactory func() (backend.Backend, error)

// NamedBackendFactory adapts backend.New to a factory.
func NamedBackendFactory(name string, workers int) BackendFactory {
	return func() (backend.Backend, error) { return backend.New(name, workers) }
}

// activeSet is one immutable generation of the registry: the decoded model
// replicas plus provenance. Swaps replace the whole set through one atomic
// pointer store, so readers always see a consistent generation.
type activeSet struct {
	bundles  []*Bundle
	source   string
	loadedAt time.Time
	gen      uint64
}

// BundleInfo describes the active generation for health/stats reporting.
type BundleInfo struct {
	Source       string    `json:"source"`
	Generation   uint64    `json:"generation"`
	LoadedAt     time.Time `json:"loaded_at"`
	Features     int       `json:"features"`
	Classes      int       `json:"classes"`
	SavedBackend string    `json:"saved_backend"`
	Precision    string    `json:"precision"`
	Replicas     int       `json:"replicas"`
	// Threshold is the bundle's calibrated binary decision threshold — the
	// wire response (DESIGN.md §12) carries it so clients can interpret
	// scores without a second round trip.
	Threshold float64 `json:"threshold"`
}

// Registry holds the active model bundle as per-worker replicas and supports
// atomic hot-swap from disk. The Backend interface does not promise
// concurrent calls, so instead of sharing one network across workers the
// registry decodes `replicas` independent copies from the same bundle bytes;
// worker w of the batcher drives replica w serially. In-flight batches
// finish on the generation they started with.
type Registry struct {
	replicas int
	factory  BackendFactory

	mu     sync.Mutex // serializes swaps, not reads
	gen    uint64     // generations swapped in so far (guarded by mu)
	active atomic.Pointer[activeSet]
}

// NewRegistry builds an empty registry producing `replicas` model copies per
// load (min 1).
func NewRegistry(replicas int, factory BackendFactory) *Registry {
	if replicas < 1 {
		replicas = 1
	}
	return &Registry{replicas: replicas, factory: factory}
}

// Replicas returns the per-generation replica count.
func (r *Registry) Replicas() int { return r.replicas }

// LoadBytes decodes a new generation from bundle bytes and atomically swaps
// it in. source is recorded for reporting.
func (r *Registry) LoadBytes(raw []byte, source string, loadedAt time.Time) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Replica decodes are independent; run them in parallel so reload
	// latency does not grow with the replica count.
	bundles := make([]*Bundle, r.replicas)
	errs := make([]error, r.replicas)
	var wg sync.WaitGroup
	wg.Add(r.replicas)
	for i := range bundles {
		go func(i int) {
			defer wg.Done()
			be, err := r.factory()
			if err != nil {
				errs[i] = fmt.Errorf("serve: registry: %w", err)
				return
			}
			bundles[i], errs[i] = LoadBundle(bytes.NewReader(raw), be)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	r.gen++
	r.active.Store(&activeSet{bundles: bundles, source: source, loadedAt: loadedAt, gen: r.gen})
	return nil
}

// PublishBundle snapshots a live network+encoder pair and swaps it in — the
// in-process analogue of POST /v1/reload, used by a trainer co-located with
// the server (internal/stream's RegistryPublisher). The pair is serialized
// to bundle bytes first and the registry decodes its replicas from those
// bytes, so the published generation is a deep copy: the trainer keeps
// mutating its network while the snapshot serves.
func (r *Registry) PublishBundle(net *core.Network, enc *data.Encoder, source string) error {
	var buf bytes.Buffer
	if err := SaveBundle(&buf, net, enc); err != nil {
		return err
	}
	return r.LoadBytes(buf.Bytes(), source, time.Now())
}

// LoadFile reads a bundle file and atomically swaps it in. The old
// generation keeps serving until the new one is fully decoded; a load error
// leaves the active generation untouched.
func (r *Registry) LoadFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("serve: registry: %w", err)
	}
	return r.LoadBytes(raw, path, time.Now())
}

// Replica returns worker w's model copy from the current generation, or nil
// when nothing is loaded.
func (r *Registry) Replica(w int) *Bundle {
	set := r.active.Load()
	if set == nil {
		return nil
	}
	return set.bundles[w%len(set.bundles)]
}

// Info reports the active generation, or nil when nothing is loaded.
func (r *Registry) Info() *BundleInfo {
	set := r.active.Load()
	if set == nil {
		return nil
	}
	b := set.bundles[0]
	return &BundleInfo{
		Source:       set.source,
		Generation:   set.gen,
		LoadedAt:     set.loadedAt,
		Features:     b.Features,
		Classes:      b.Classes,
		SavedBackend: b.SavedBackend,
		Precision:    b.Precision.String(),
		Replicas:     len(set.bundles),
		Threshold:    b.Net.Threshold(),
	}
}
