package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyRing is the per-endpoint latency tracker: monotone counters plus a
// fixed ring of recent request latencies from which percentiles are computed
// on demand. A bounded ring keeps the tracker O(1) per request and biases
// percentiles toward current behavior — the right trade-off for an /stats
// endpoint that operators poll.
const latencyRingSize = 4096

type latencyRing struct {
	mu     sync.Mutex
	count  uint64
	errors uint64
	ring   [latencyRingSize]time.Duration
	next   int
	filled int
}

func (l *latencyRing) observe(d time.Duration, failed bool) {
	l.mu.Lock()
	l.count++
	if failed {
		l.errors++
	}
	l.ring[l.next] = d
	l.next = (l.next + 1) % latencyRingSize
	if l.filled < latencyRingSize {
		l.filled++
	}
	l.mu.Unlock()
}

// LatencySummary reports request-latency percentiles in milliseconds over
// the recent window.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func (l *latencyRing) snapshot() LatencySummary {
	l.mu.Lock()
	s := LatencySummary{Count: l.count, Errors: l.errors}
	window := make([]time.Duration, l.filled)
	copy(window, l.ring[:l.filled])
	l.mu.Unlock()
	if len(window) == 0 {
		return s
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	s.P50Ms = ms(percentile(window, 0.50))
	s.P90Ms = ms(percentile(window, 0.90))
	s.P99Ms = ms(percentile(window, 0.99))
	s.MaxMs = ms(window[len(window)-1])
	return s
}

// percentile returns the nearest-rank percentile of a sorted window.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
