package serve

import (
	"sync"
	"time"

	"streambrain/internal/perf/hist"
)

// latencyWindowObs is the rotation size of the percentile window: /stats
// percentiles cover the last one-to-two windows of requests, so a
// long-resolved slow burst ages out instead of haunting the numbers for
// the life of the process.
const latencyWindowObs = 8192

// latencyTracker holds the recent-window percentile state for /stats: a
// rotating pair of the shared HDR-style histograms (hist.Histogram,
// DESIGN.md §8). Lifetime request/error totals live in the obs registry
// (Metrics.requests / Metrics.errors) — this tracker is purely the windowed
// view, because the cumulative streambrain_serve_request_seconds histogram
// on /metrics cannot forget old observations while /stats operators want
// "recent behavior". Observations land in cur, which swaps to prev every
// latencyWindowObs requests, and a snapshot merges the two — keeping the
// predecessor ring's "biased toward current behavior" property without its
// sort-on-snapshot cost.
type latencyTracker struct {
	mu   sync.Mutex
	cur  *hist.Histogram
	prev *hist.Histogram
}

func (l *latencyTracker) observe(d time.Duration) {
	l.mu.Lock()
	if l.cur == nil {
		l.cur = hist.New()
	}
	l.cur.Record(d)
	if l.cur.Count() >= latencyWindowObs {
		l.prev, l.cur = l.cur, hist.New()
	}
	l.mu.Unlock()
}

// LatencySummary reports request-latency percentiles in milliseconds over
// the recent window. Count and Errors are lifetime totals (from the obs
// registry counters).
type LatencySummary struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// snapshot merges the window pair into percentiles; the caller supplies the
// lifetime totals it read from the registry.
func (l *latencyTracker) snapshot(count, errors uint64) LatencySummary {
	w := hist.New()
	l.mu.Lock()
	w.Merge(l.prev)
	w.Merge(l.cur)
	l.mu.Unlock()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		Count:  count,
		Errors: errors,
		P50Ms:  ms(w.Quantile(0.50)),
		P90Ms:  ms(w.Quantile(0.90)),
		P99Ms:  ms(w.Quantile(0.99)),
		MaxMs:  ms(w.Max()),
	}
}
