package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"streambrain/internal/perf/hist"
)

// latencyWindowObs is the rotation size of the percentile window: /stats
// percentiles cover the last one-to-two windows of requests, so a
// long-resolved slow burst ages out instead of haunting the numbers for
// the life of the process.
const latencyWindowObs = 8192

// latencyTracker is the per-endpoint latency tracker: lifetime monotone
// counters plus recent-window percentiles from the shared HDR-style
// histogram (hist.Histogram, DESIGN.md §8) that the perf load generator
// also records into. Recency comes from interval rotation — observations
// land in cur, which swaps to prev every latencyWindowObs requests, and a
// snapshot merges the two — keeping the predecessor ring's
// "biased toward current behavior" property (the right trade-off for an
// /stats endpoint operators poll) without its sort-on-snapshot cost.
type latencyTracker struct {
	errors atomic.Uint64
	total  atomic.Uint64

	mu   sync.Mutex
	cur  *hist.Histogram
	prev *hist.Histogram
}

func (l *latencyTracker) observe(d time.Duration, failed bool) {
	if failed {
		l.errors.Add(1)
	}
	l.total.Add(1)
	l.mu.Lock()
	if l.cur == nil {
		l.cur = hist.New()
	}
	l.cur.Record(d)
	if l.cur.Count() >= latencyWindowObs {
		l.prev, l.cur = l.cur, hist.New()
	}
	l.mu.Unlock()
}

// LatencySummary reports request-latency percentiles in milliseconds over
// the recent window. Count and Errors are lifetime totals.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func (l *latencyTracker) snapshot() LatencySummary {
	w := hist.New()
	l.mu.Lock()
	w.Merge(l.prev)
	w.Merge(l.cur)
	l.mu.Unlock()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		Count:  l.total.Load(),
		Errors: l.errors.Load(),
		P50Ms:  ms(w.Quantile(0.50)),
		P90Ms:  ms(w.Quantile(0.90)),
		P99Ms:  ms(w.Quantile(0.99)),
		MaxMs:  ms(w.Max()),
	}
}
