// Package serve is the online-inference subsystem: model bundles that pair a
// trained core.Network with the fitted data.Encoder it was trained behind, a
// micro-batching scheduler that coalesces concurrent requests into single
// backend-sized Predict calls, and an HTTP JSON prediction service with
// atomic hot-swap of the active bundle.
//
// The design transplants StreamBrain's training-side insight — throughput
// comes from batching work onto compute kernels — to the serving side:
// requests arriving within a small window are merged into one forward pass,
// amortizing kernel dispatch exactly the way training batches do.
package serve

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
)

// bundleMagic guards against feeding a bare network snapshot (or arbitrary
// gob) to the bundle loader; version gates format evolution.
//
// Version history:
//
//	1 — initial envelope (backend hint, geometry, encoder+network blobs).
//	2 — adds Precision, the compute-path element width the model was
//	    trained for; v1 bundles load as float64.
const (
	bundleMagic      = "streambrain-bundle"
	bundleVersion    = 2
	bundleMinVersion = 1
)

// bundleFile is the on-disk envelope: the encoder and network snapshots ride
// as opaque sub-streams so their formats evolve independently.
type bundleFile struct {
	Magic    string
	Version  int
	Backend  string // backend name at save time (a hint, not a requirement)
	Features int
	Classes  int
	Encoder  []byte
	Network  []byte

	// Precision (v2+) records the compute path: "" or "float64" for full
	// precision, "float32" for the reduced-precision inference path. The
	// serving backend must offer a matching kernel set at load time.
	Precision string
}

// Bundle is a loaded model bundle: everything needed to score a raw event.
type Bundle struct {
	Net *core.Network
	Enc *data.Encoder

	// Features and Classes describe the raw input width and output arity.
	Features int
	Classes  int

	// SavedBackend records the backend the bundle was saved from.
	SavedBackend string

	// Precision is the compute path the bundled model runs on.
	Precision core.Precision
}

// SaveBundle writes the network and encoder as one self-contained bundle.
func SaveBundle(w io.Writer, net *core.Network, enc *data.Encoder) error {
	if net == nil || enc == nil {
		return fmt.Errorf("serve: SaveBundle needs a network and an encoder")
	}
	if got, want := enc.Bins, net.Hidden.Mi; got != want {
		return fmt.Errorf("serve: encoder bins %d, network expects %d units per input hypercolumn", got, want)
	}
	if got, want := enc.Features(), net.Hidden.Fi; got != want {
		return fmt.Errorf("serve: encoder has %d features, network expects %d input hypercolumns", got, want)
	}
	var encBlob, netBlob bytes.Buffer
	if err := enc.Save(&encBlob); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := net.Save(&netBlob); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	bf := bundleFile{
		Magic:     bundleMagic,
		Version:   bundleVersion,
		Backend:   net.Backend().Name(),
		Features:  enc.Features(),
		Classes:   net.Out.Classes(),
		Encoder:   encBlob.Bytes(),
		Network:   netBlob.Bytes(),
		Precision: net.Params().Precision.String(),
	}
	if err := gob.NewEncoder(w).Encode(&bf); err != nil {
		return fmt.Errorf("serve: save bundle: %w", err)
	}
	return nil
}

// SaveBundleFile writes a bundle atomically: to a temp file in the target
// directory, then rename, so a concurrent hot-swap never reads a torn file.
func SaveBundleFile(path string, net *core.Network, enc *data.Encoder) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bundle-*")
	if err != nil {
		return fmt.Errorf("serve: save bundle: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := SaveBundle(tmp, net, enc); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: save bundle: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: save bundle: %w", err)
	}
	return nil
}

// LoadBundle reconstructs a bundle onto the given backend. As with
// core.Load, the backend is an execution concern: a bundle saved from
// "parallel" can be served on "gpusim" and vice versa.
func LoadBundle(r io.Reader, be backend.Backend) (*Bundle, error) {
	var bf bundleFile
	if err := gob.NewDecoder(r).Decode(&bf); err != nil {
		return nil, fmt.Errorf("serve: load bundle: %w", err)
	}
	if bf.Magic != bundleMagic {
		return nil, fmt.Errorf("serve: load bundle: not a streambrain bundle")
	}
	if bf.Version < bundleMinVersion || bf.Version > bundleVersion {
		return nil, fmt.Errorf("serve: load bundle: version %d, want %d..%d",
			bf.Version, bundleMinVersion, bundleVersion)
	}
	if !core.Precision(bf.Precision).Valid() {
		return nil, fmt.Errorf("serve: load bundle: unknown precision %q", bf.Precision)
	}
	enc, err := data.LoadEncoder(bytes.NewReader(bf.Encoder))
	if err != nil {
		return nil, fmt.Errorf("serve: load bundle: %w", err)
	}
	net, err := core.Load(bytes.NewReader(bf.Network), be)
	if err != nil {
		return nil, fmt.Errorf("serve: load bundle: %w", err)
	}
	if got, want := net.Params().Precision.String(), core.Precision(bf.Precision).String(); got != want {
		return nil, fmt.Errorf("serve: load bundle: envelope precision %q disagrees with model %q",
			want, got)
	}
	if enc.Features() != net.Hidden.Fi || enc.Bins != net.Hidden.Mi {
		return nil, fmt.Errorf("serve: load bundle: encoder %dx%d does not match network input %dx%d",
			enc.Features(), enc.Bins, net.Hidden.Fi, net.Hidden.Mi)
	}
	if bf.Features != enc.Features() || bf.Classes != net.Out.Classes() {
		return nil, fmt.Errorf("serve: load bundle: header geometry disagrees with payload")
	}
	return &Bundle{
		Net:          net,
		Enc:          enc,
		Features:     enc.Features(),
		Classes:      net.Out.Classes(),
		SavedBackend: bf.Backend,
		Precision:    net.Params().Precision,
	}, nil
}

// LoadBundleFile loads a bundle from disk.
func LoadBundleFile(path string, be backend.Backend) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load bundle: %w", err)
	}
	defer f.Close()
	return LoadBundle(f, be)
}

// Predict scores a batch of raw feature vectors end-to-end: quantile one-hot
// encode with the bundled boundaries, then one network forward pass over the
// whole batch. Safe for concurrent use on a frozen (non-training) network —
// the forward path only reads shared weights.
func (b *Bundle) Predict(events [][]float64) (pred []int, signalScore []float64, err error) {
	pred, signalScore, _, err = b.PredictStaged(events)
	return pred, signalScore, err
}

// PredictStaged is Predict reporting how the call split between the encoder
// transform and the kernel forward pass — the stage boundary the serving
// telemetry (batcher histograms, trace spans; DESIGN.md §11) exposes.
func (b *Bundle) PredictStaged(events [][]float64) (pred []int, signalScore []float64, timing BatchTiming, err error) {
	if len(events) == 0 {
		return nil, nil, timing, nil
	}
	pred = make([]int, len(events))
	signalScore = make([]float64, len(events))
	timing, err = b.PredictPooled(events, pred, signalScore, new(Scratch))
	if err != nil {
		return nil, nil, timing, err
	}
	return pred, signalScore, timing, nil
}
