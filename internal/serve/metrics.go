package serve

import (
	"streambrain/internal/obs"
)

// Serve metric families (the DESIGN.md §11 catalogue). Declared as
// constants so tests, docs checks, and the /stats view all name the same
// strings.
const (
	metricRequests   = "streambrain_serve_requests_total"
	metricReqErrors  = "streambrain_serve_request_errors_total"
	metricEvents     = "streambrain_serve_events_total"
	metricCoalesced  = "streambrain_serve_coalesced_batches_total"
	metricBatchSize  = "streambrain_serve_batch_size"
	metricQueueDepth = "streambrain_serve_queue_depth"
	metricLatency    = "streambrain_serve_request_seconds"
	metricDecode     = "streambrain_serve_decode_seconds"
	metricQueueWait  = "streambrain_serve_queue_wait_seconds"
	metricEncode     = "streambrain_serve_encode_seconds"
	metricForward    = "streambrain_serve_forward_seconds"
	metricGeneration = "streambrain_serve_reload_generation"

	// Binary wire protocol families (DESIGN.md §12).
	metricWireRequests  = "streambrain_wire_requests_total"
	metricWireErrors    = "streambrain_wire_frame_errors_total"
	metricWireReqBytes  = "streambrain_wire_request_bytes_total"
	metricWireRespBytes = "streambrain_wire_response_bytes_total"
)

// batchSizeBounds bucket the per-batch event count; the top bound matches
// the largest MaxBatch anyone reasonably configures, and everything above
// lands in +Inf.
var batchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// Metrics is the serve subsystem's instrument set over one obs.Registry.
// The batcher and the HTTP server share one instance, so /stats, /metrics,
// and BatcherStats are all views over the same counters — they can never
// disagree, and a Registry.Snapshot over them is the torn-read fix for the
// old field-by-field BatcherStats assembly.
type Metrics struct {
	reg *obs.Registry

	requests  *obs.Counter
	errors    *obs.Counter
	events    *obs.Counter
	coalesced *obs.Counter
	batchSize *obs.Histogram
	latency   *obs.Histogram
	decode    *obs.Histogram
	queueWait *obs.Histogram
	encode    *obs.Histogram
	forward   *obs.Histogram

	wireRequests  *obs.Counter
	wireErrors    *obs.Counter
	wireReqBytes  *obs.Counter
	wireRespBytes *obs.Counter
}

// NewMetrics registers the serve instrument set on reg. A nil reg gets a
// private registry, so an uninstrumented Batcher or Server still has working
// counters (and a scrapeable /metrics) without the caller wiring anything.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Metrics{
		reg: reg,
		requests: reg.Counter(metricRequests,
			"Predict HTTP requests completed."),
		errors: reg.Counter(metricReqErrors,
			"Predict HTTP requests that failed (bad input, no bundle, backend error)."),
		events: reg.Counter(metricEvents,
			"Events accepted into the batch queue."),
		coalesced: reg.Counter(metricCoalesced,
			"Batches that merged two or more requests."),
		batchSize: reg.ValueHistogram(metricBatchSize,
			"Events per backend batch call.", batchSizeBounds),
		latency: reg.LatencyHistogram(metricLatency,
			"End-to-end predict request latency."),
		decode: reg.LatencyHistogram(metricDecode,
			"JSON decode and validation time per predict request."),
		queueWait: reg.LatencyHistogram(metricQueueWait,
			"Time an event waits in the batch queue before dispatch."),
		encode: reg.LatencyHistogram(metricEncode,
			"Encoder transform time per backend batch call."),
		forward: reg.LatencyHistogram(metricForward,
			"Kernel forward-pass time per backend batch call."),
		wireRequests: reg.Counter(metricWireRequests,
			"Predict requests served over the binary wire protocol."),
		wireErrors: reg.Counter(metricWireErrors,
			"Binary wire frames rejected as malformed (truncated, oversized, bad version/flags/geometry, non-finite)."),
		wireReqBytes: reg.Counter(metricWireReqBytes,
			"Bytes received in binary wire request frames."),
		wireRespBytes: reg.Counter(metricWireRespBytes,
			"Bytes sent in binary wire response frames."),
	}
	// Queue depth is derived, not stored: events accepted minus events
	// dispatched in batches. Computed from the same instruments at
	// exposition time, under the Snapshot lock, so it is consistent with
	// the counters alongside it.
	reg.GaugeFunc(metricQueueDepth,
		"Events accepted but not yet dispatched to a backend call.",
		func() float64 {
			d := float64(m.events.Value()) - m.batchSize.Sum()
			if d < 0 {
				return 0
			}
			return d
		})
	return m
}

// Registry returns the underlying obs registry (for mounting /metrics or
// registering neighbor-subsystem instruments alongside).
func (m *Metrics) Registry() *obs.Registry { return m.reg }
