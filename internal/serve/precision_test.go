package serve

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/higgs"
)

// trainPrecisionBundle trains a small float32-precision model end-to-end and
// returns the network, its encoder, and raw events to score.
func trainPrecisionBundle(t *testing.T) (*core.Network, *data.Encoder, [][]float64) {
	t.Helper()
	ds := higgs.Generate(1200, 0.5, 9)
	enc := data.FitEncoder(ds, 10)
	encoded := enc.Transform(ds)
	p := core.DefaultParams()
	p.MCUs = 40
	p.UnsupervisedEpochs = 2
	p.SupervisedEpochs = 2
	p.Precision = core.Float32
	net := core.NewNetwork(backend.MustNew("parallel", 2),
		encoded.Hypercolumns, encoded.UnitsPerHC, encoded.Classes, p)
	net.Train(encoded)
	events := make([][]float64, 64)
	rng := rand.New(rand.NewSource(4))
	for i := range events {
		events[i] = ds.X.Row(rng.Intn(ds.Len()))
	}
	return net, enc, events
}

// TestFloat32BundleRoundTrip is the satellite regression test: a
// reduced-precision model must survive bundle save/load with its compute
// path and its scores intact.
func TestFloat32BundleRoundTrip(t *testing.T) {
	net, enc, events := trainPrecisionBundle(t)

	var buf bytes.Buffer
	if err := SaveBundle(&buf, net, enc); err != nil {
		t.Fatalf("save: %v", err)
	}
	b, err := LoadBundle(bytes.NewReader(buf.Bytes()), backend.MustNew("parallel", 2))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if b.Precision != core.Float32 {
		t.Fatalf("loaded bundle precision %q, want %q", b.Precision, core.Float32)
	}
	if !b.Net.Hidden.Precision32() {
		t.Fatal("loaded bundle lost the float32 compute path")
	}

	wantPred, wantScore, err := (&Bundle{
		Net: net, Enc: enc, Features: enc.Features(), Classes: 2,
	}).Predict(events)
	if err != nil {
		t.Fatalf("predict (original): %v", err)
	}
	gotPred, gotScore, err := b.Predict(events)
	if err != nil {
		t.Fatalf("predict (loaded): %v", err)
	}
	for i := range wantPred {
		if wantPred[i] != gotPred[i] {
			t.Fatalf("prediction %d changed across bundle round trip", i)
		}
		if math.Abs(wantScore[i]-gotScore[i]) > 1e-9 {
			t.Fatalf("score %d changed across bundle round trip", i)
		}
	}
}

// TestFloat32BundleRejectsBackendWithoutKernels checks the load error path:
// a float32 bundle cannot be served from a backend with no float32 kernel
// set.
func TestFloat32BundleRejectsBackendWithoutKernels(t *testing.T) {
	net, enc, _ := trainPrecisionBundle(t)
	var buf bytes.Buffer
	if err := SaveBundle(&buf, net, enc); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := LoadBundle(bytes.NewReader(buf.Bytes()), backend.MustNew("fpgasim", 1)); err == nil {
		t.Fatal("loading a float32 bundle onto fpgasim should fail")
	}
}

// TestRegistryCarriesPrecision checks replica loads surface the bundle's
// precision in the health/stats info.
func TestRegistryCarriesPrecision(t *testing.T) {
	net, enc, _ := trainPrecisionBundle(t)
	var buf bytes.Buffer
	if err := SaveBundle(&buf, net, enc); err != nil {
		t.Fatalf("save: %v", err)
	}
	// Registry-level replica loads must also carry precision through.
	reg := NewRegistry(2, NamedBackendFactory("parallel", 1))
	if err := reg.LoadBytes(buf.Bytes(), "test", time.Now()); err != nil {
		t.Fatalf("registry load: %v", err)
	}
	info := reg.Info()
	if info == nil || info.Precision != "float32" {
		t.Fatalf("registry info precision = %+v, want float32", info)
	}
}
