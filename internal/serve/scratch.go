package serve

import (
	"fmt"
	"time"

	"streambrain/internal/core"
	"streambrain/internal/data"
)

// Scratch is the per-worker working set for PredictPooled: the encoder index
// slab, the staged dataset view, and the network forward scratch, all reused
// across batches so the steady-state serve path makes zero allocations per
// request (DESIGN.md §12). Each batcher worker slot owns one Scratch — worker
// slots run serially, so no locking.
type Scratch struct {
	idx     [][]int32
	idxSlab []int32
	y       []int
	ds      data.Encoded
	fw      core.PredictScratch
}

// grow sizes the slab and row-header buffers for a rows×features batch,
// allocating only when a previous batch's capacity is too small.
func (sc *Scratch) grow(rows, features int) {
	if cap(sc.idxSlab) < rows*features {
		sc.idxSlab = make([]int32, rows*features)
	}
	if cap(sc.idx) < rows {
		sc.idx = make([][]int32, rows)
	}
	if cap(sc.y) < rows {
		sc.y = make([]int, rows)
	}
}

// PredictPooled is PredictStaged writing into caller-owned pred and score
// slices (both len(events) long) through a reusable Scratch — the
// allocation-free form the binary wire path and the batcher workers run on.
// Safe for concurrent use across DISTINCT Scratch values on a frozen network;
// one Scratch must not be shared between concurrent calls.
func (b *Bundle) PredictPooled(events [][]float64, pred []int, score []float64, sc *Scratch) (BatchTiming, error) {
	var timing BatchTiming
	if len(events) == 0 {
		return timing, nil
	}
	start := time.Now()
	sc.grow(len(events), b.Features)
	idx := sc.idx[:len(events)]
	for i, ev := range events {
		off := i * b.Features
		// The three-index slice pins the row's capacity so TransformRow
		// appends in place instead of growing into the next row's slab span.
		row, err := b.Enc.TransformRow(sc.idxSlab[off:off:off+b.Features], ev)
		if err != nil {
			return timing, fmt.Errorf("serve: event %d: %w", i, err)
		}
		idx[i] = row
	}
	sc.ds = data.Encoded{
		Idx:          idx,
		Y:            sc.y[:len(events)], // unused by PredictInto
		Classes:      b.Classes,
		Hypercolumns: b.Features,
		UnitsPerHC:   b.Enc.Bins,
	}
	encoded := time.Now()
	timing.Encode = encoded.Sub(start)
	b.Net.PredictInto(&sc.ds, pred, score, &sc.fw)
	timing.Forward = time.Since(encoded)
	return timing, nil
}
