package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/higgs"
	"streambrain/internal/obs/obstest"
)

// trainTinySparse is trainTiny in the block-sparse compute regime: the
// prune/regrow schedule (DESIGN.md §15) keeps mutating the receptive-field
// mask — and with it the compressed block index — on every further
// unsupervised epoch, which is exactly the churn the hot-swap race tests
// need.
func trainTinySparse(t testing.TB, seed int64) (*core.Network, *data.Encoder, *data.Encoded, *data.Dataset) {
	t.Helper()
	ds := higgs.Generate(800, 0.5, seed)
	rng := rand.New(rand.NewSource(seed + 7))
	trainDS, testDS := ds.Split(0.75, rng)
	enc := data.FitEncoder(trainDS, 8)
	encoded := enc.Transform(trainDS)

	p := core.DefaultParams()
	p.MCUs = 24
	p.ReceptiveField = 0.5
	p.UnsupervisedEpochs = 2
	p.SupervisedEpochs = 2
	p.Seed = seed
	p.SparseCompute = true
	p.TargetSparsity = 0.7
	net := core.NewNetwork(backend.MustNew("parallel", 2),
		encoded.Hypercolumns, encoded.UnitsPerHC, encoded.Classes, p)
	net.Train(encoded)
	return net, enc, encoded, testDS
}

// TestConcurrentPredictDuringSparseHotSwap hammers registry replicas with
// concurrent Predict calls while a co-located trainer keeps mutating the
// network's receptive-field mask (prune/regrow structural swaps) and
// publishing fresh generations through PublishBundle. Run under -race this
// pins the serving contract: published bundles are deep copies with warm
// block indexes, so readers never observe — or write — trainer state.
func TestConcurrentPredictDuringSparseHotSwap(t *testing.T) {
	defer obstest.CheckLeaks(t)()
	net, enc, encoded, testDS := trainTinySparse(t, 51)
	reg := NewRegistry(2, NamedBackendFactory("parallel", 2))
	if err := reg.PublishBundle(net, enc, "gen-0"); err != nil {
		t.Fatal(err)
	}
	events := rawRows(testDS, 16)

	const readers = 4
	const publishes = 4
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				b := reg.Replica(w)
				pred, _, err := b.Predict(events)
				if err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				for j, p := range pred {
					if p != 0 && p != 1 {
						t.Errorf("reader %d: event %d predicted class %d", w, j, p)
						return
					}
				}
			}
		}(w)
	}
	// The trainer thread: more unsupervised epochs (each ends in a
	// prune/regrow round that swaps mask bits and rebuilds the block index),
	// each followed by a publish. Training and publishing share a goroutine,
	// as in stream.RegistryPublisher — the registry's deep-copy semantics are
	// what make this safe against the readers.
	for gen := 1; gen <= publishes; gen++ {
		net.TrainUnsupervised(encoded, 1)
		if err := reg.PublishBundle(net, enc, fmt.Sprintf("gen-%d", gen)); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()

	info := reg.Info()
	if info == nil || info.Generation != publishes+1 {
		t.Fatalf("registry info %+v, want generation %d", info, publishes+1)
	}
	final := reg.Replica(0)
	if !final.Net.Hidden.SparseCompute() {
		t.Fatal("published bundle lost the sparse-compute flag")
	}
	if got := final.Net.Hidden.Blocks().Sparsity(); got <= 0 {
		t.Fatalf("published bundle has dense block index (sparsity %v)", got)
	}
}

// TestBatcherPredictDuringHotSwap routes the concurrent load through the
// micro-batching scheduler — the production path — while generations hot-swap
// underneath it, then closes the batcher and (via CheckLeaks) asserts no
// worker goroutine outlives it.
func TestBatcherPredictDuringHotSwap(t *testing.T) {
	defer obstest.CheckLeaks(t)()
	net, enc, encoded, testDS := trainTinySparse(t, 52)
	reg := NewRegistry(2, NamedBackendFactory("parallel", 2))
	if err := reg.PublishBundle(net, enc, "gen-0"); err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(func(w int, events [][]float64) ([]int, []float64, error) {
		bundle := reg.Replica(w)
		pred, score, err := bundle.Predict(events)
		return pred, score, err
	}, BatcherConfig{MaxBatch: 8, MaxWait: 200 * time.Microsecond, Workers: 2})
	events := rawRows(testDS, 8)

	const clients = 6
	done := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				if _, _, err := b.Predict(ctx, events[(c+i)%len(events)]); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	for gen := 1; gen <= 3; gen++ {
		net.TrainUnsupervised(encoded, 1)
		if err := reg.PublishBundle(net, enc, fmt.Sprintf("gen-%d", gen)); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	b.Close()
	if st := b.Stats(); st.Requests == 0 || st.Batches == 0 {
		t.Fatalf("no traffic flowed through the batcher: %+v", st)
	}
}
