package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/obs/obstest"
	"streambrain/internal/serve/wire"
)

// postWire posts one binary request frame to url and returns the response.
func postWire(t *testing.T, url string, frame []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, wire.ContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestWireHTTPEndToEnd drives the binary protocol through the real HTTP
// stack: encode a request frame, negotiate via Content-Type, decode the
// response frame, and match the in-process prediction plus the threshold
// metadata.
func TestWireHTTPEndToEnd(t *testing.T) {
	ts, srv, bundle, testDS, _ := newTestServer(t, false, ServerConfig{})
	events := rawRows(testDS, 16)
	wantPred, wantScore, err := bundle.Predict(events)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.AppendRequest(nil, events, false)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postWire(t, ts.URL+"/v1/predict", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("response Content-Type %q, want %q", ct, wire.ContentType)
	}
	out, err := wire.DecodeResponse(body)
	if err != nil {
		t.Fatalf("response frame: %v", err)
	}
	if out.Generation != 1 {
		t.Fatalf("generation %d, want 1", out.Generation)
	}
	if out.Threshold != bundle.Net.Threshold() {
		t.Fatalf("threshold %v, want %v", out.Threshold, bundle.Net.Threshold())
	}
	for i := range events {
		if out.Class[i] != wantPred[i] {
			t.Fatalf("event %d: wire class %d, in-process %d", i, out.Class[i], wantPred[i])
		}
		if math.Float64bits(out.Score[i]) != math.Float64bits(wantScore[i]) {
			t.Fatalf("event %d: wire score %v, in-process %v", i, out.Score[i], wantScore[i])
		}
	}

	// Identical request → byte-identical response: the wire encoding is
	// deterministic, which is what the committed golden frames rely on.
	resp2, body2 := postWire(t, ts.URL+"/v1/predict", frame)
	if resp2.StatusCode != http.StatusOK || !bytes.Equal(body, body2) {
		t.Fatalf("repeated request not byte-identical (%d)", resp2.StatusCode)
	}

	// The wire counters moved with the traffic.
	var st StatsResponse
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Wire.Requests != 2 || st.Wire.FrameErrors != 0 {
		t.Fatalf("wire stats %+v, want 2 requests / 0 errors", st.Wire)
	}
	if st.Wire.RequestBytes != uint64(2*len(frame)) || st.Wire.ResponseBytes != uint64(2*len(body)) {
		t.Fatalf("wire byte counters %+v (frame %d, resp %d)", st.Wire, len(frame), len(body))
	}
	_ = srv
}

// TestWireHTTPErrors maps malformed frames to HTTP statuses: errors are
// always JSON bodies (the failure path must stay debuggable), oversized
// frames get 413, and every rejection moves the frame-error counter.
func TestWireHTTPErrors(t *testing.T) {
	ts, _, bundle, testDS, _ := newTestServer(t, false, ServerConfig{})

	valid, err := wire.AppendRequest(nil, rawRows(testDS, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	truncated := valid[:len(valid)-3]
	badVersion := append([]byte(nil), valid...)
	badVersion[4] = 99
	hostile := append([]byte(nil), valid...)
	hostile[0], hostile[1], hostile[2], hostile[3] = 0xff, 0xff, 0xff, 0xff
	wrongCols, err := wire.AppendRequest(nil, [][]float64{make([]float64, bundle.Features+1)}, false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		frame  []byte
		status int
	}{
		{"truncated", truncated, http.StatusBadRequest},
		{"bad version", badVersion, http.StatusBadRequest},
		{"hostile length", hostile, http.StatusRequestEntityTooLarge},
		{"wrong feature width", wrongCols, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postWire(t, ts.URL+"/v1/predict", tc.frame)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("error Content-Type %q, want JSON", ct)
			}
			var e map[string]string
			if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body not a JSON error object: %s", body)
			}
		})
	}
	var st StatsResponse
	r, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if st.Wire.FrameErrors != uint64(len(cases)) {
		t.Fatalf("frame-error counter %d, want %d", st.Wire.FrameErrors, len(cases))
	}
}

// newPrecisionTestServer boots a server over a float32-precision bundle.
func newPrecisionTestServer(t *testing.T) (*httptest.Server, [][]float64) {
	t.Helper()
	t.Cleanup(obstest.CheckLeaks(t))
	net, enc, events := trainPrecisionBundle(t)
	path := filepath.Join(t.TempDir(), "f32.bundle")
	if err := SaveBundleFile(path, net, enc); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(2, NamedBackendFactory("parallel", 2))
	if err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, ServerConfig{}, path)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, events
}

// TestWireJSONEquivalence is the satellite property test: for the same
// bundle and the same rows, the JSON and binary paths must return identical
// predictions — bit-exact scores — across batch sizes 1/7/64 and both
// compute precisions. The f32 payload width is checked against JSON of the
// same values pre-rounded to float32, since that is the rounding the 4-byte
// frame applies.
func TestWireJSONEquivalence(t *testing.T) {
	type fixture struct {
		name   string
		url    string
		events [][]float64
	}
	var fixtures []fixture
	tsF64, _, _, testDS, _ := newTestServer(t, false, ServerConfig{})
	fixtures = append(fixtures, fixture{"f64-bundle", tsF64.URL, rawRows(testDS, 64)})
	tsF32, events32 := newPrecisionTestServer(t)
	fixtures = append(fixtures, fixture{"f32-bundle", tsF32.URL, events32})

	jsonPredict := func(t *testing.T, url string, rows [][]float64) []Prediction {
		t.Helper()
		resp, body := postJSON(t, url+"/v1/predict", PredictRequest{Events: rows})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("json status %d: %s", resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		return pr.Predictions
	}
	wirePredict := func(t *testing.T, url string, rows [][]float64, f32 bool) *wire.Response {
		t.Helper()
		frame, err := wire.AppendRequest(nil, rows, f32)
		if err != nil {
			t.Fatal(err)
		}
		resp, body := postWire(t, url+"/v1/predict", frame)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("wire status %d: %s", resp.StatusCode, body)
		}
		out, err := wire.DecodeResponse(body)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	for _, fx := range fixtures {
		for _, batch := range []int{1, 7, 64} {
			t.Run(fmt.Sprintf("%s/batch=%d", fx.name, batch), func(t *testing.T) {
				rows := fx.events[:batch]

				// 8-byte payload: bit-identical inputs, so predictions must
				// be bit-identical to JSON's.
				want := jsonPredict(t, fx.url, rows)
				got := wirePredict(t, fx.url, rows, false)
				for i := range rows {
					if got.Class[i] != want[i].Class {
						t.Fatalf("row %d: wire class %d, json %d", i, got.Class[i], want[i].Class)
					}
					if math.Float64bits(got.Score[i]) != math.Float64bits(want[i].SignalScore) {
						t.Fatalf("row %d: wire score bits %x, json %x", i,
							math.Float64bits(got.Score[i]), math.Float64bits(want[i].SignalScore))
					}
				}

				// 4-byte payload: the frame rounds features to float32, so
				// compare against JSON of the identically rounded rows.
				rows32 := make([][]float64, len(rows))
				for i, r := range rows {
					rows32[i] = make([]float64, len(r))
					for j, v := range r {
						rows32[i][j] = float64(float32(v))
					}
				}
				want32 := jsonPredict(t, fx.url, rows32)
				got32 := wirePredict(t, fx.url, rows, true)
				for i := range rows {
					if got32.Class[i] != want32[i].Class {
						t.Fatalf("row %d (f32): wire class %d, json %d", i, got32.Class[i], want32[i].Class)
					}
					if math.Float64bits(got32.Score[i]) != math.Float64bits(want32[i].SignalScore) {
						t.Fatalf("row %d (f32): wire score bits %x, json %x", i,
							math.Float64bits(got32.Score[i]), math.Float64bits(want32[i].SignalScore))
					}
				}
			})
		}
	}
}

// TestWireGoldenFrameAcrossPrecisions posts the same valid frame to an f64-
// and an f32-precision server and requires both to answer with parseable,
// repeat-stable response frames — the serve-level half of the golden-vector
// guarantee (the codec-level goldens live in the wire package testdata).
func TestWireGoldenFrameAcrossPrecisions(t *testing.T) {
	tsF64, _, _, testDS, _ := newTestServer(t, false, ServerConfig{})
	tsF32, events32 := newPrecisionTestServer(t)
	for _, fx := range []struct {
		name string
		url  string
		rows [][]float64
	}{
		{"f64", tsF64.URL, rawRows(testDS, 4)},
		{"f32", tsF32.URL, events32[:4]},
	} {
		t.Run(fx.name, func(t *testing.T) {
			frame, err := wire.AppendRequest(nil, fx.rows, false)
			if err != nil {
				t.Fatal(err)
			}
			resp1, body1 := postWire(t, fx.url+"/v1/predict", frame)
			resp2, body2 := postWire(t, fx.url+"/v1/predict", frame)
			if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
				t.Fatalf("status %d / %d", resp1.StatusCode, resp2.StatusCode)
			}
			if !bytes.Equal(body1, body2) {
				t.Fatalf("response frames differ across identical requests")
			}
			if _, err := wire.DecodeResponse(body1); err != nil {
				t.Fatalf("response frame: %v", err)
			}
		})
	}
}

// TestWireAllocsSteadyState is the satellite allocation-regression gate: the
// binary decode → pooled predict → encode path must stay at ≤ 2 allocs/op
// (target 0) once warm. The bundle runs on a workers=1 backend — the
// parallel kernels fall through to their serial, allocation-free forms — so
// any alloc measured here is the protocol's own.
func TestWireAllocsSteadyState(t *testing.T) {
	net, enc, testDS := trainTiny(t, false, 51)
	var buf bytes.Buffer
	if err := SaveBundle(&buf, net, enc); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(bytes.NewReader(buf.Bytes()), backend.MustNew("parallel", 1))
	if err != nil {
		t.Fatal(err)
	}
	frame, err := wire.AppendRequest(nil, rawRows(testDS, 64), false)
	if err != nil {
		t.Fatal(err)
	}
	var sc Scratch
	pred := make([]int, 64)
	score := make([]float64, 64)
	out := make([]byte, 0, 4096)
	step := func() {
		req, err := wire.DecodeRequest(frame)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.PredictPooled(req.Rows, pred[:len(req.Rows)], score[:len(req.Rows)], &sc); err != nil {
			t.Fatal(err)
		}
		enc, err := wire.AppendResponse(out[:0], pred[:len(req.Rows)], score[:len(req.Rows)],
			b.Net.Threshold(), 1)
		if err != nil {
			t.Fatal(err)
		}
		out = enc[:0]
		req.Release()
	}
	step() // warm the pools
	n := testing.AllocsPerRun(50, step)
	if n > 2 {
		t.Fatalf("binary hot path makes %.1f allocs/op, want <= 2 (target 0)", n)
	}
	t.Logf("binary hot path: %.1f allocs/op", n)
}

// TestCorePredictIntoMatchesPredict pins the refactor: PredictInto with a
// reused scratch must return exactly what the allocating Predict does.
func TestCorePredictIntoMatchesPredict(t *testing.T) {
	net, enc, testDS := trainTiny(t, false, 61)
	encoded := enc.Transform(testDS)
	wantPred, wantScore := net.Predict(encoded)
	pred := make([]int, encoded.Len())
	score := make([]float64, encoded.Len())
	var sc core.PredictScratch
	net.PredictInto(encoded, pred, score, &sc)
	for i := range wantPred {
		if pred[i] != wantPred[i] || math.Float64bits(score[i]) != math.Float64bits(wantScore[i]) {
			t.Fatalf("row %d: PredictInto (%d, %v) != Predict (%d, %v)",
				i, pred[i], score[i], wantPred[i], wantScore[i])
		}
	}
	// Second call through the same scratch must still agree (stale-state
	// check on the reused buffers).
	net.PredictInto(encoded, pred, score, &sc)
	for i := range wantPred {
		if pred[i] != wantPred[i] {
			t.Fatalf("row %d drifted on scratch reuse", i)
		}
	}
}
