package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// maxEventsPerRequest bounds one HTTP request's payload so a single caller
// cannot monopolize the batch queue.
const maxEventsPerRequest = 4096

// ServerConfig tunes the HTTP prediction service.
type ServerConfig struct {
	// Batcher tunes the micro-batching scheduler. Batcher.Workers is
	// clamped to the registry's replica count.
	Batcher BatcherConfig
}

// PredictRequest is the body of POST /v1/predict. Either Events (a batch of
// raw feature vectors) or Features (one vector) must be set.
type PredictRequest struct {
	Events   [][]float64 `json:"events,omitempty"`
	Features []float64   `json:"features,omitempty"`
}

// Prediction is one scored event. SignalScore is the class-1 probability
// used for ROC thresholds (binary problems; 0 otherwise).
type Prediction struct {
	Class       int     `json:"class"`
	SignalScore float64 `json:"signal_score"`
}

// PredictResponse is the body returned by POST /v1/predict.
type PredictResponse struct {
	Predictions []Prediction `json:"predictions"`
}

// StatsResponse is the body returned by GET /stats.
type StatsResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Requests      uint64         `json:"requests"`
	Events        uint64         `json:"events"`
	Batches       uint64         `json:"batches"`
	AvgBatch      float64        `json:"avg_batch"`
	MaxBatch      uint64         `json:"max_batch"`
	Coalesced     uint64         `json:"coalesced_batches"`
	Latency       LatencySummary `json:"latency"`
	Bundle        *BundleInfo    `json:"bundle,omitempty"`
}

// healthResponse is the body returned by GET /healthz.
type healthResponse struct {
	Status string      `json:"status"`
	Bundle *BundleInfo `json:"bundle,omitempty"`
}

type reloadRequest struct {
	Path string `json:"path,omitempty"`
}

// Server is the HTTP prediction service: it owns a Registry (which model is
// live) and a Batcher (how requests reach it).
type Server struct {
	reg     *Registry
	batcher *Batcher
	lat     *latencyTracker
	mux     *http.ServeMux
	start   time.Time

	mu         sync.Mutex // serializes /v1/reload handling
	reloadPath string     // default path for /v1/reload
}

// NewServer builds the service around a registry. reloadPath, when
// non-empty, is the default bundle path for POST /v1/reload.
func NewServer(reg *Registry, cfg ServerConfig, reloadPath string) *Server {
	bcfg := cfg.Batcher
	if bcfg.Workers <= 0 || bcfg.Workers > reg.Replicas() {
		bcfg.Workers = reg.Replicas()
	}
	s := &Server{
		reg:        reg,
		lat:        &latencyTracker{},
		mux:        http.NewServeMux(),
		start:      time.Now(),
		reloadPath: reloadPath,
	}
	s.batcher = NewBatcher(func(w int, events [][]float64) ([]int, []float64, error) {
		b := reg.Replica(w)
		if b == nil {
			return nil, nil, errors.New("serve: no bundle loaded")
		}
		pred, score, err := b.Predict(events)
		return pred, score, err
	}, bcfg)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the batcher. The server must not receive new requests
// afterwards.
func (s *Server) Close() { s.batcher.Close() }

// Batcher exposes the scheduler (benchmarks drive it directly).
func (s *Server) Batcher() *Batcher { return s.batcher }

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	ok := false
	defer func() { s.lat.observe(time.Since(started), !ok) }()

	info := s.reg.Info()
	if info == nil {
		writeError(w, http.StatusServiceUnavailable, "no bundle loaded")
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	events := req.Events
	if len(req.Features) > 0 {
		events = append(events, req.Features)
	}
	if len(events) == 0 {
		writeError(w, http.StatusBadRequest, "no events in request")
		return
	}
	if len(events) > maxEventsPerRequest {
		writeError(w, http.StatusBadRequest, "%d events exceeds the per-request cap of %d",
			len(events), maxEventsPerRequest)
		return
	}
	for i, ev := range events {
		if len(ev) != info.Features {
			writeError(w, http.StatusBadRequest, "event %d has %d features, model expects %d",
				i, len(ev), info.Features)
			return
		}
	}

	// Each event goes through the batcher on its own so coalescing happens
	// across concurrent HTTP requests as well as within one request.
	preds := make([]Prediction, len(events))
	errs := make([]error, len(events))
	var wg sync.WaitGroup
	wg.Add(len(events))
	for i, ev := range events {
		go func(i int, ev []float64) {
			defer wg.Done()
			class, score, err := s.batcher.Predict(r.Context(), ev)
			if err != nil {
				errs[i] = err
				return
			}
			preds[i] = Prediction{Class: class, SignalScore: score}
		}(i, ev)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, "predict: %v", err)
			return
		}
	}
	ok = true
	writeJSON(w, http.StatusOK, PredictResponse{Predictions: preds})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var req reloadRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
	}
	path := req.Path
	if path == "" {
		path = s.reloadPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "no bundle path: pass {\"path\": ...} or start the server with a default")
		return
	}
	if err := s.reg.LoadFile(path); err != nil {
		writeError(w, http.StatusConflict, "reload: %v", err)
		return
	}
	s.reloadPath = path
	writeJSON(w, http.StatusOK, s.reg.Info())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	info := s.reg.Info()
	if info == nil {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "no bundle loaded"})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Bundle: info})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	bs := s.batcher.Stats()
	lat := s.lat.snapshot()
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      lat.Count,
		Events:        bs.Requests,
		Batches:       bs.Batches,
		AvgBatch:      bs.AvgBatch(),
		MaxBatch:      bs.MaxBatch,
		Coalesced:     bs.CoalescedBatches,
		Latency:       lat,
		Bundle:        s.reg.Info(),
	})
}
