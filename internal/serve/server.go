package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"streambrain/internal/obs"
	"streambrain/internal/serve/wire"
)

// maxEventsPerRequest bounds one HTTP request's payload so a single caller
// cannot monopolize the batch queue.
const maxEventsPerRequest = 4096

// defaultTraceEvery is the default request-trace sampling rate: one predict
// request in 64 is recorded span-by-span into the trace ring.
const defaultTraceEvery = 64

// ServerConfig tunes the HTTP prediction service.
type ServerConfig struct {
	// Batcher tunes the micro-batching scheduler. Batcher.Workers is
	// clamped to the registry's replica count.
	Batcher BatcherConfig
	// Obs is the metrics registry the server instruments (served at
	// GET /metrics). Nil gets a private registry — /metrics still works,
	// the caller just cannot co-register other subsystems on it.
	Obs *obs.Registry
	// Tracer samples predict-request lifecycles into a ring served at
	// GET /debug/traces (chrome://tracing format). Nil builds one sampling
	// every defaultTraceEvery-th request; TraceEvery < 0 disables tracing.
	Tracer *obs.Tracer
	// TraceEvery overrides the built tracer's sampling rate when Tracer is
	// nil (0 keeps the default; negative disables tracing).
	TraceEvery int
}

// PredictRequest is the body of POST /v1/predict. Either Events (a batch of
// raw feature vectors) or Features (one vector) must be set.
type PredictRequest struct {
	Events   [][]float64 `json:"events,omitempty"`
	Features []float64   `json:"features,omitempty"`
}

// Prediction is one scored event. SignalScore is the class-1 probability
// used for ROC thresholds (binary problems; 0 otherwise).
type Prediction struct {
	Class       int     `json:"class"`
	SignalScore float64 `json:"signal_score"`
}

// PredictResponse is the body returned by POST /v1/predict.
type PredictResponse struct {
	Predictions []Prediction `json:"predictions"`
}

// StatsResponse is the body returned by GET /stats. Every number is a view
// over the same obs registry /metrics exposes, read in one registry
// snapshot, so the two surfaces cannot disagree.
type StatsResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Requests      uint64         `json:"requests"`
	Events        uint64         `json:"events"`
	Batches       uint64         `json:"batches"`
	AvgBatch      float64        `json:"avg_batch"`
	MaxBatch      uint64         `json:"max_batch"`
	Coalesced     uint64         `json:"coalesced_batches"`
	Latency       LatencySummary `json:"latency"`
	Wire          WireStats      `json:"wire"`
	Bundle        *BundleInfo    `json:"bundle,omitempty"`
}

// WireStats is the binary-protocol slice of /stats — the same counters the
// streambrain_wire_* families export on /metrics.
type WireStats struct {
	Requests      uint64 `json:"requests"`
	FrameErrors   uint64 `json:"frame_errors"`
	RequestBytes  uint64 `json:"request_bytes"`
	ResponseBytes uint64 `json:"response_bytes"`
}

// healthResponse is the body returned by GET /healthz.
type healthResponse struct {
	Status string      `json:"status"`
	Bundle *BundleInfo `json:"bundle,omitempty"`
}

type reloadRequest struct {
	Path string `json:"path,omitempty"`
}

// Server is the HTTP prediction service: it owns a Registry (which model is
// live), a Batcher (how requests reach it), and the telemetry surfaces over
// both (/metrics, /stats, /debug/traces).
type Server struct {
	reg     *Registry
	batcher *Batcher
	m       *Metrics
	tracer  *obs.Tracer
	lat     *latencyTracker
	mux     *http.ServeMux
	start   time.Time

	mu         sync.Mutex // serializes /v1/reload handling
	reloadPath string     // default path for /v1/reload
}

// NewServer builds the service around a registry. reloadPath, when
// non-empty, is the default bundle path for POST /v1/reload.
func NewServer(reg *Registry, cfg ServerConfig, reloadPath string) *Server {
	bcfg := cfg.Batcher
	if bcfg.Workers <= 0 || bcfg.Workers > reg.Replicas() {
		bcfg.Workers = reg.Replicas()
	}
	m := cfg.Batcher.Metrics
	if m == nil {
		m = NewMetrics(cfg.Obs)
	}
	bcfg.Metrics = m
	tracer := cfg.Tracer
	if tracer == nil && cfg.TraceEvery >= 0 {
		every := cfg.TraceEvery
		if every == 0 {
			every = defaultTraceEvery
		}
		tracer = obs.NewTracer(every, 64)
	}
	s := &Server{
		reg:        reg,
		m:          m,
		tracer:     tracer,
		lat:        &latencyTracker{},
		mux:        http.NewServeMux(),
		start:      time.Now(),
		reloadPath: reloadPath,
	}
	// Per-worker predict state: worker slots run serially, so each slot's
	// Scratch and result slices are reused across batches without locking —
	// the backend call is allocation-free at steady state (DESIGN.md §12).
	// The batcher copies results out before the slot's next call, so handing
	// back worker-owned slices is safe.
	type workerState struct {
		sc    Scratch
		pred  []int
		score []float64
	}
	ws := make([]workerState, bcfg.Workers)
	s.batcher = NewStagedBatcher(func(w int, events [][]float64) ([]int, []float64, BatchTiming, error) {
		b := reg.Replica(w)
		if b == nil {
			return nil, nil, BatchTiming{}, errors.New("serve: no bundle loaded")
		}
		st := &ws[w]
		if cap(st.pred) < len(events) {
			st.pred = make([]int, len(events))
			st.score = make([]float64, len(events))
		}
		pred, score := st.pred[:len(events)], st.score[:len(events)]
		tm, err := b.PredictPooled(events, pred, score, &st.sc)
		if err != nil {
			return nil, nil, tm, err
		}
		return pred, score, tm, nil
	}, bcfg)
	// The live bundle generation, as a gauge: a scrape across a fleet shows
	// which servers still run the old model mid-rollout.
	m.reg.GaugeFunc(metricGeneration,
		"Generation of the live bundle (0 before the first load).",
		func() float64 {
			if info := reg.Info(); info != nil {
				return float64(info.Generation)
			}
			return 0
		})
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", m.reg.Handler())
	if tracer != nil {
		s.mux.Handle("GET /debug/traces", tracer.Handler())
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the batcher. The server must not receive new requests
// afterwards.
func (s *Server) Close() { s.batcher.Close() }

// Batcher exposes the scheduler (benchmarks drive it directly).
func (s *Server) Batcher() *Batcher { return s.batcher }

// Obs returns the metrics registry backing /metrics and /stats.
func (s *Server) Obs() *obs.Registry { return s.m.reg }

// Tracer returns the request tracer (nil when tracing is disabled).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	tr := s.tracer.Sample("predict")
	ok := false
	defer func() {
		d := time.Since(started)
		s.m.requests.Inc()
		if !ok {
			s.m.errors.Inc()
		}
		s.m.latency.Observe(d)
		s.lat.observe(d)
		tr.Finish()
	}()

	info := s.reg.Info()
	if info == nil {
		writeError(w, http.StatusServiceUnavailable, "no bundle loaded")
		return
	}
	if strings.HasPrefix(r.Header.Get("Content-Type"), wire.ContentType) {
		ok = s.predictWire(w, r, started, tr, info)
		return
	}
	spDecode := tr.Start("decode")
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	events := req.Events
	if len(req.Features) > 0 {
		events = append(events, req.Features)
	}
	if len(events) == 0 {
		writeError(w, http.StatusBadRequest, "no events in request")
		return
	}
	if len(events) > maxEventsPerRequest {
		writeError(w, http.StatusBadRequest, "%d events exceeds the per-request cap of %d",
			len(events), maxEventsPerRequest)
		return
	}
	for i, ev := range events {
		if len(ev) != info.Features {
			writeError(w, http.StatusBadRequest, "event %d has %d features, model expects %d",
				i, len(ev), info.Features)
			return
		}
	}
	decoded := time.Now()
	spDecode.End()
	dur := decoded.Sub(started)
	if dur > 0 {
		s.m.decode.Observe(dur)
	}

	// Each event goes through the batcher on its own so coalescing happens
	// across concurrent HTTP requests as well as within one request. Only
	// the first event carries the trace — its journey stands for the
	// request's.
	preds := make([]Prediction, len(events))
	errs := make([]error, len(events))
	var wg sync.WaitGroup
	wg.Add(len(events))
	for i, ev := range events {
		etr := tr
		if i > 0 {
			etr = nil
		}
		go func(i int, ev []float64, etr *obs.Trace) {
			defer wg.Done()
			class, score, err := s.batcher.PredictTraced(r.Context(), ev, etr)
			if err != nil {
				errs[i] = err
				return
			}
			preds[i] = Prediction{Class: class, SignalScore: score}
		}(i, ev, etr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, "predict: %v", err)
			return
		}
	}
	ok = true
	spRespond := tr.Start("respond")
	writeJSON(w, http.StatusOK, PredictResponse{Predictions: preds})
	spRespond.End()
}

// wireBuf is one binary-path response working set: the result slices handed
// to the batcher plus the encode output buffer, pooled so the steady-state
// wire path allocates nothing per request (DESIGN.md §12).
type wireBuf struct {
	pred  []int
	score []float64
	out   []byte
}

var wireBufPool = sync.Pool{New: func() any { return new(wireBuf) }}

// abandonedInFlight reports an error after which the batch may still be
// running and may still write into the request's buffers — those buffers
// must be dropped to the GC, not returned to their pools.
func abandonedInFlight(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrClosed)
}

// predictWire is the binary-protocol arm of POST /v1/predict (DESIGN.md
// §12): decode one pooled request frame, score the whole block through the
// batcher, encode one response frame. Success mirrors the request's
// Content-Type; every error is still a JSON body, so callers get readable
// diagnostics on the path that is by definition misbehaving.
func (s *Server) predictWire(w http.ResponseWriter, r *http.Request, started time.Time, tr *obs.Trace, info *BundleInfo) bool {
	s.m.wireRequests.Inc()
	spDecode := tr.Start("decode")
	req, frameBytes, err := wire.ReadRequest(r.Body)
	if err != nil {
		s.m.wireErrors.Inc()
		status := http.StatusBadRequest
		if errors.Is(err, wire.ErrOversized) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "%v", err)
		return false
	}
	s.m.wireReqBytes.Add(uint64(frameBytes))
	if req.Cols != info.Features {
		s.m.wireErrors.Inc()
		req.Release()
		writeError(w, http.StatusBadRequest, "frame has %d features per event, model expects %d",
			req.Cols, info.Features)
		return false
	}
	if len(req.Rows) > maxEventsPerRequest {
		s.m.wireErrors.Inc()
		req.Release()
		writeError(w, http.StatusRequestEntityTooLarge, "%d events exceeds the per-request cap of %d",
			len(req.Rows), maxEventsPerRequest)
		return false
	}
	spDecode.End()
	if dur := time.Since(started); dur > 0 {
		s.m.decode.Observe(dur)
	}

	buf := wireBufPool.Get().(*wireBuf)
	rows := len(req.Rows)
	if cap(buf.pred) < rows {
		buf.pred = make([]int, rows)
		buf.score = make([]float64, rows)
	}
	pred, score := buf.pred[:rows], buf.score[:rows]
	if err := s.batcher.PredictBlock(r.Context(), req.Rows, pred, score, tr); err != nil {
		if !abandonedInFlight(err) {
			req.Release()
			wireBufPool.Put(buf)
		}
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "predict: %v", err)
		return false
	}
	req.Release()
	spRespond := tr.Start("respond")
	out, err := wire.AppendResponse(buf.out[:0], pred, score, info.Threshold, info.Generation)
	if err != nil {
		wireBufPool.Put(buf)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return false
	}
	buf.out = out // keep the grown encode buffer with its pool entry
	w.Header().Set("Content-Type", wire.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	w.WriteHeader(http.StatusOK)
	w.Write(out)
	s.m.wireRespBytes.Add(uint64(len(out)))
	wireBufPool.Put(buf)
	spRespond.End()
	return true
}

// maxBundlePush bounds one pushed bundle body — amply above any real model,
// small enough that a hostile Content-Length cannot balloon the process.
const maxBundlePush = 256 << 20

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Raw bundle push (DESIGN.md §13): a router tier POSTs the bundle bytes
	// directly as application/octet-stream, so replicas need no shared
	// filesystem to follow a fleet-wide rollout.
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		raw, err := io.ReadAll(io.LimitReader(r.Body, maxBundlePush+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, "read bundle: %v", err)
			return
		}
		if len(raw) > maxBundlePush {
			writeError(w, http.StatusBadRequest, "bundle exceeds %d bytes", maxBundlePush)
			return
		}
		if err := s.reg.LoadBytes(raw, "push:"+r.RemoteAddr, time.Now()); err != nil {
			writeError(w, http.StatusConflict, "reload: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, s.reg.Info())
		return
	}
	var req reloadRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
	}
	path := req.Path
	if path == "" {
		path = s.reloadPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "no bundle path: pass {\"path\": ...} or start the server with a default")
		return
	}
	if err := s.reg.LoadFile(path); err != nil {
		writeError(w, http.StatusConflict, "reload: %v", err)
		return
	}
	s.reloadPath = path
	writeJSON(w, http.StatusOK, s.reg.Info())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	info := s.reg.Info()
	if info == nil {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "no bundle loaded"})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Bundle: info})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One registry snapshot covers the batcher counters and the request
	// totals, so the reported numbers are a single consistent cut — the
	// same guarantee /metrics gives (DESIGN.md §11).
	var bs BatcherStats
	var requests, errCount uint64
	var ws WireStats
	s.m.reg.Snapshot(func() {
		bs = s.batcher.statsLoad()
		requests = s.m.requests.Value()
		errCount = s.m.errors.Value()
		ws = WireStats{
			Requests:      s.m.wireRequests.Value(),
			FrameErrors:   s.m.wireErrors.Value(),
			RequestBytes:  s.m.wireReqBytes.Value(),
			ResponseBytes: s.m.wireRespBytes.Value(),
		}
	})
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      requests,
		Events:        bs.Requests,
		Batches:       bs.Batches,
		AvgBatch:      bs.AvgBatch(),
		MaxBatch:      bs.MaxBatch,
		Coalesced:     bs.CoalescedBatches,
		Latency:       s.lat.snapshot(requests, errCount),
		Wire:          ws,
		Bundle:        s.reg.Info(),
	})
}
