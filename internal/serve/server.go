package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"streambrain/internal/obs"
)

// maxEventsPerRequest bounds one HTTP request's payload so a single caller
// cannot monopolize the batch queue.
const maxEventsPerRequest = 4096

// defaultTraceEvery is the default request-trace sampling rate: one predict
// request in 64 is recorded span-by-span into the trace ring.
const defaultTraceEvery = 64

// ServerConfig tunes the HTTP prediction service.
type ServerConfig struct {
	// Batcher tunes the micro-batching scheduler. Batcher.Workers is
	// clamped to the registry's replica count.
	Batcher BatcherConfig
	// Obs is the metrics registry the server instruments (served at
	// GET /metrics). Nil gets a private registry — /metrics still works,
	// the caller just cannot co-register other subsystems on it.
	Obs *obs.Registry
	// Tracer samples predict-request lifecycles into a ring served at
	// GET /debug/traces (chrome://tracing format). Nil builds one sampling
	// every defaultTraceEvery-th request; TraceEvery < 0 disables tracing.
	Tracer *obs.Tracer
	// TraceEvery overrides the built tracer's sampling rate when Tracer is
	// nil (0 keeps the default; negative disables tracing).
	TraceEvery int
}

// PredictRequest is the body of POST /v1/predict. Either Events (a batch of
// raw feature vectors) or Features (one vector) must be set.
type PredictRequest struct {
	Events   [][]float64 `json:"events,omitempty"`
	Features []float64   `json:"features,omitempty"`
}

// Prediction is one scored event. SignalScore is the class-1 probability
// used for ROC thresholds (binary problems; 0 otherwise).
type Prediction struct {
	Class       int     `json:"class"`
	SignalScore float64 `json:"signal_score"`
}

// PredictResponse is the body returned by POST /v1/predict.
type PredictResponse struct {
	Predictions []Prediction `json:"predictions"`
}

// StatsResponse is the body returned by GET /stats. Every number is a view
// over the same obs registry /metrics exposes, read in one registry
// snapshot, so the two surfaces cannot disagree.
type StatsResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Requests      uint64         `json:"requests"`
	Events        uint64         `json:"events"`
	Batches       uint64         `json:"batches"`
	AvgBatch      float64        `json:"avg_batch"`
	MaxBatch      uint64         `json:"max_batch"`
	Coalesced     uint64         `json:"coalesced_batches"`
	Latency       LatencySummary `json:"latency"`
	Bundle        *BundleInfo    `json:"bundle,omitempty"`
}

// healthResponse is the body returned by GET /healthz.
type healthResponse struct {
	Status string      `json:"status"`
	Bundle *BundleInfo `json:"bundle,omitempty"`
}

type reloadRequest struct {
	Path string `json:"path,omitempty"`
}

// Server is the HTTP prediction service: it owns a Registry (which model is
// live), a Batcher (how requests reach it), and the telemetry surfaces over
// both (/metrics, /stats, /debug/traces).
type Server struct {
	reg     *Registry
	batcher *Batcher
	m       *Metrics
	tracer  *obs.Tracer
	lat     *latencyTracker
	mux     *http.ServeMux
	start   time.Time

	mu         sync.Mutex // serializes /v1/reload handling
	reloadPath string     // default path for /v1/reload
}

// NewServer builds the service around a registry. reloadPath, when
// non-empty, is the default bundle path for POST /v1/reload.
func NewServer(reg *Registry, cfg ServerConfig, reloadPath string) *Server {
	bcfg := cfg.Batcher
	if bcfg.Workers <= 0 || bcfg.Workers > reg.Replicas() {
		bcfg.Workers = reg.Replicas()
	}
	m := cfg.Batcher.Metrics
	if m == nil {
		m = NewMetrics(cfg.Obs)
	}
	bcfg.Metrics = m
	tracer := cfg.Tracer
	if tracer == nil && cfg.TraceEvery >= 0 {
		every := cfg.TraceEvery
		if every == 0 {
			every = defaultTraceEvery
		}
		tracer = obs.NewTracer(every, 64)
	}
	s := &Server{
		reg:        reg,
		m:          m,
		tracer:     tracer,
		lat:        &latencyTracker{},
		mux:        http.NewServeMux(),
		start:      time.Now(),
		reloadPath: reloadPath,
	}
	s.batcher = NewStagedBatcher(func(w int, events [][]float64) ([]int, []float64, BatchTiming, error) {
		b := reg.Replica(w)
		if b == nil {
			return nil, nil, BatchTiming{}, errors.New("serve: no bundle loaded")
		}
		return b.PredictStaged(events)
	}, bcfg)
	// The live bundle generation, as a gauge: a scrape across a fleet shows
	// which servers still run the old model mid-rollout.
	m.reg.GaugeFunc(metricGeneration,
		"Generation of the live bundle (0 before the first load).",
		func() float64 {
			if info := reg.Info(); info != nil {
				return float64(info.Generation)
			}
			return 0
		})
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/reload", s.handleReload)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", m.reg.Handler())
	if tracer != nil {
		s.mux.Handle("GET /debug/traces", tracer.Handler())
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the batcher. The server must not receive new requests
// afterwards.
func (s *Server) Close() { s.batcher.Close() }

// Batcher exposes the scheduler (benchmarks drive it directly).
func (s *Server) Batcher() *Batcher { return s.batcher }

// Obs returns the metrics registry backing /metrics and /stats.
func (s *Server) Obs() *obs.Registry { return s.m.reg }

// Tracer returns the request tracer (nil when tracing is disabled).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	tr := s.tracer.Sample("predict")
	ok := false
	defer func() {
		d := time.Since(started)
		s.m.requests.Inc()
		if !ok {
			s.m.errors.Inc()
		}
		s.m.latency.Observe(d)
		s.lat.observe(d)
		tr.Finish()
	}()

	info := s.reg.Info()
	if info == nil {
		writeError(w, http.StatusServiceUnavailable, "no bundle loaded")
		return
	}
	spDecode := tr.Start("decode")
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	events := req.Events
	if len(req.Features) > 0 {
		events = append(events, req.Features)
	}
	if len(events) == 0 {
		writeError(w, http.StatusBadRequest, "no events in request")
		return
	}
	if len(events) > maxEventsPerRequest {
		writeError(w, http.StatusBadRequest, "%d events exceeds the per-request cap of %d",
			len(events), maxEventsPerRequest)
		return
	}
	for i, ev := range events {
		if len(ev) != info.Features {
			writeError(w, http.StatusBadRequest, "event %d has %d features, model expects %d",
				i, len(ev), info.Features)
			return
		}
	}
	decoded := time.Now()
	spDecode.End()
	dur := decoded.Sub(started)
	if dur > 0 {
		s.m.decode.Observe(dur)
	}

	// Each event goes through the batcher on its own so coalescing happens
	// across concurrent HTTP requests as well as within one request. Only
	// the first event carries the trace — its journey stands for the
	// request's.
	preds := make([]Prediction, len(events))
	errs := make([]error, len(events))
	var wg sync.WaitGroup
	wg.Add(len(events))
	for i, ev := range events {
		etr := tr
		if i > 0 {
			etr = nil
		}
		go func(i int, ev []float64, etr *obs.Trace) {
			defer wg.Done()
			class, score, err := s.batcher.PredictTraced(r.Context(), ev, etr)
			if err != nil {
				errs[i] = err
				return
			}
			preds[i] = Prediction{Class: class, SignalScore: score}
		}(i, ev, etr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrClosed) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, "predict: %v", err)
			return
		}
	}
	ok = true
	spRespond := tr.Start("respond")
	writeJSON(w, http.StatusOK, PredictResponse{Predictions: preds})
	spRespond.End()
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var req reloadRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		}
	}
	path := req.Path
	if path == "" {
		path = s.reloadPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "no bundle path: pass {\"path\": ...} or start the server with a default")
		return
	}
	if err := s.reg.LoadFile(path); err != nil {
		writeError(w, http.StatusConflict, "reload: %v", err)
		return
	}
	s.reloadPath = path
	writeJSON(w, http.StatusOK, s.reg.Info())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	info := s.reg.Info()
	if info == nil {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "no bundle loaded"})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Bundle: info})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One registry snapshot covers the batcher counters and the request
	// totals, so the reported numbers are a single consistent cut — the
	// same guarantee /metrics gives (DESIGN.md §11).
	var bs BatcherStats
	var requests, errCount uint64
	s.m.reg.Snapshot(func() {
		bs = s.batcher.statsLoad()
		requests = s.m.requests.Value()
		errCount = s.m.errors.Value()
	})
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      requests,
		Events:        bs.Requests,
		Batches:       bs.Batches,
		AvgBatch:      bs.AvgBatch(),
		MaxBatch:      bs.MaxBatch,
		Coalesced:     bs.CoalescedBatches,
		Latency:       s.lat.snapshot(requests, errCount),
		Bundle:        s.reg.Info(),
	})
}
