// Package wire is the binary predict protocol (DESIGN.md §12): a
// length-prefixed, big-endian frame format for POST /v1/predict that replaces
// JSON on the serving hot path. It reuses the bit-exact IEEE-754 framing
// conventions of the mpi TCP fabric (DESIGN.md §10) — every float crosses the
// wire as its exact big-endian bit pattern, so a score computed by the server
// arrives at the client bit-identical.
//
// Frame layouts (all integers big endian; offsets in bytes):
//
//	request                                  response
//	off sz field                             off sz field
//	0   4  length   bytes after this prefix  0   4  length   bytes after this prefix
//	4   1  version  protocol Version (1)     4   1  version  protocol Version (1)
//	5   1  flags    bit0 = FlagFloat32       5   1  flags    reserved (0)
//	6   2  rows     event count              6   2  rows     prediction count
//	8   2  cols     features per event       8   8  threshold  decision threshold (f64)
//	10  …  payload  rows·cols floats         16  8  generation bundle generation (u64)
//	                (8 B each; 4 B when      24  …  payload  rows × (u16 class +
//	                FlagFloat32 is set)                      f64 score)
//
// Scores and the threshold are always carried at float64 width regardless of
// the request payload width or the bundle's compute precision, which is what
// makes the JSON and binary paths bit-exact equivalents of each other.
//
// The decoder is fuzz-hardened: every malformed frame maps to one of the
// typed errors below (never a panic), and every geometry field is validated
// against the package caps BEFORE any payload buffer is sized, so a hostile
// length prefix cannot force an allocation beyond MaxRows·MaxCols floats.
// Decoded requests draw their row buffers from a package pool; Release
// returns them, keeping the steady-state serve path allocation-free.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// ContentType is the negotiated media type: a POST /v1/predict body with this
// Content-Type is a request frame, and the success response mirrors it.
const ContentType = "application/x-streambrain-frame"

// Version is the frame version this package encodes and the only one it
// accepts. Bump it when the layout changes; decoders reject the rest.
const Version = 1

// FlagFloat32 marks a request payload carried at 4-byte IEEE-754 width.
// Values are widened to float64 on decode (exactly — every float32 is
// representable). All other flag bits are reserved and must be zero.
const FlagFloat32 = 1 << 0

// Geometry caps. A frame claiming more is rejected with ErrOversized before
// any buffer is sized; they bound one frame's decode footprint at
// MaxRows·MaxCols float64s.
const (
	MaxRows = 4096 // events per frame (matches the serve per-request cap)
	MaxCols = 1024 // features per event
)

const (
	prefixLen     = 4              // the u32 length prefix
	reqHeaderLen  = 6              // version + flags + rows + cols
	respHeaderLen = 20             // version + flags + rows + threshold + generation
	respRowLen    = 10             // u16 class + f64 score
	maxClass      = math.MaxUint16 // widest class id the response row carries
	maxReqLength  = reqHeaderLen + MaxRows*MaxCols*8
	maxRespLength = respHeaderLen + MaxRows*respRowLen
)

// Frame-layout field names, in wire order. tools/docscheck cross-checks the
// README "Binary protocol" section against these literals, so the documented
// layout cannot drift from the one the code implements.
const (
	FieldLength     = "length"
	FieldVersion    = "version"
	FieldFlags      = "flags"
	FieldRows       = "rows"
	FieldCols       = "cols"
	FieldPayload    = "payload"
	FieldThreshold  = "threshold"
	FieldGeneration = "generation"
	FieldClass      = "class"
	FieldScore      = "score"
)

// Typed decode failures. Handlers map them to HTTP statuses; fuzz targets
// assert malformed input always lands on one of these, never a panic.
var (
	// ErrTruncated: the frame ends before its declared length.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrOversized: a length, row, or column field exceeds the package caps.
	ErrOversized = errors.New("wire: frame exceeds size caps")
	// ErrVersion: the version byte is not Version.
	ErrVersion = errors.New("wire: unsupported frame version")
	// ErrFlags: reserved flag bits are set.
	ErrFlags = errors.New("wire: unknown flag bits")
	// ErrGeometry: the length prefix, row/col counts, and payload size
	// disagree (including zero rows/cols and trailing bytes).
	ErrGeometry = errors.New("wire: frame geometry mismatch")
	// ErrNonFinite: the feature payload carries NaN or ±Inf. JSON cannot
	// express these, so rejecting them keeps the two paths equivalent.
	ErrNonFinite = errors.New("wire: non-finite feature value")
)

// Request is one decoded predict frame. Rows holds the feature vectors as
// views into a pooled slab — valid until Release, which returns the buffers
// to the package pool for the next decode.
type Request struct {
	// Float32 records that the payload arrived at 4-byte width (FlagFloat32).
	Float32 bool
	// Cols is the per-row feature count; every Rows[i] has exactly Cols
	// values.
	Cols int
	// Rows are the decoded feature vectors.
	Rows [][]float64

	slab []float64
	hdrs [][]float64
	buf  []byte
}

var reqPool = sync.Pool{New: func() any { return new(Request) }}

// Release returns the request's buffers to the decode pool. The Request and
// every row in Rows must not be used afterwards.
func (q *Request) Release() {
	q.Rows = nil
	reqPool.Put(q)
}

// header is the decoded fixed part of a request frame.
type header struct {
	float32 bool
	rows    int
	cols    int
}

// parseRequestHeader validates the six post-prefix header bytes plus the
// length prefix. All cap checks happen here, before any payload buffer is
// sized.
func parseRequestHeader(length uint32, hdr []byte) (header, error) {
	var h header
	if length > maxReqLength {
		return h, fmt.Errorf("%w: length prefix %d exceeds %d", ErrOversized, length, maxReqLength)
	}
	if hdr[0] != Version {
		return h, fmt.Errorf("%w: version %d, want %d", ErrVersion, hdr[0], Version)
	}
	flags := hdr[1]
	if flags&^byte(FlagFloat32) != 0 {
		return h, fmt.Errorf("%w: flags 0x%02x", ErrFlags, flags)
	}
	h.float32 = flags&FlagFloat32 != 0
	h.rows = int(binary.BigEndian.Uint16(hdr[2:4]))
	h.cols = int(binary.BigEndian.Uint16(hdr[4:6]))
	if h.rows == 0 || h.cols == 0 {
		return h, fmt.Errorf("%w: %d rows x %d cols", ErrGeometry, h.rows, h.cols)
	}
	if h.rows > MaxRows || h.cols > MaxCols {
		return h, fmt.Errorf("%w: %d rows x %d cols (caps %d x %d)",
			ErrOversized, h.rows, h.cols, MaxRows, MaxCols)
	}
	if want := reqHeaderLen + h.rows*h.cols*h.width(); int(length) != want {
		return h, fmt.Errorf("%w: length prefix %d, geometry needs %d", ErrGeometry, length, want)
	}
	return h, nil
}

func (h header) width() int {
	if h.float32 {
		return 4
	}
	return 8
}

// decodePayload fills the request's pooled slab from the raw payload bytes.
// The header has already been validated, so len(payload) is exactly
// rows·cols·width.
func (q *Request) decodePayload(h header, payload []byte) error {
	need := h.rows * h.cols
	if cap(q.slab) < need {
		q.slab = make([]float64, need)
	}
	vals := q.slab[:need]
	if h.float32 {
		for i := range vals {
			v := float64(math.Float32frombits(binary.BigEndian.Uint32(payload[i*4:])))
			if !isFinite(v) {
				return fmt.Errorf("%w: payload value %d", ErrNonFinite, i)
			}
			vals[i] = v
		}
	} else {
		for i := range vals {
			v := math.Float64frombits(binary.BigEndian.Uint64(payload[i*8:]))
			if !isFinite(v) {
				return fmt.Errorf("%w: payload value %d", ErrNonFinite, i)
			}
			vals[i] = v
		}
	}
	if cap(q.hdrs) < h.rows {
		q.hdrs = make([][]float64, h.rows)
	}
	rows := q.hdrs[:h.rows]
	for i := range rows {
		rows[i] = vals[i*h.cols : (i+1)*h.cols]
	}
	q.Float32 = h.float32
	q.Cols = h.cols
	q.Rows = rows
	return nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// DecodeRequest parses one complete request frame from buf. The returned
// Request draws from the package pool; the caller must Release it. Trailing
// bytes after the frame are an ErrGeometry.
func DecodeRequest(frame []byte) (*Request, error) {
	if len(frame) < prefixLen+reqHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(frame), prefixLen+reqHeaderLen)
	}
	length := binary.BigEndian.Uint32(frame[:prefixLen])
	h, err := parseRequestHeader(length, frame[prefixLen:prefixLen+reqHeaderLen])
	if err != nil {
		return nil, err
	}
	body := frame[prefixLen+reqHeaderLen:]
	payload := int(length) - reqHeaderLen
	if len(body) < payload {
		return nil, fmt.Errorf("%w: %d payload bytes, length prefix claims %d", ErrTruncated, len(body), payload)
	}
	if len(body) > payload {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrGeometry, len(body)-payload)
	}
	q := reqPool.Get().(*Request)
	if err := q.decodePayload(h, body); err != nil {
		q.Release()
		return nil, err
	}
	return q, nil
}

// ReadRequest reads exactly one request frame from r (an HTTP request body).
// It returns the decoded pooled Request plus the total frame size in bytes
// (for byte-rate telemetry); the caller must Release the request. Geometry is
// validated from the ten fixed header bytes before the payload buffer is
// sized, so a hostile length prefix cannot force a large read or allocation.
func ReadRequest(r io.Reader) (*Request, int, error) {
	var hdr [prefixLen + reqHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	length := binary.BigEndian.Uint32(hdr[:prefixLen])
	h, err := parseRequestHeader(length, hdr[prefixLen:])
	if err != nil {
		return nil, 0, err
	}
	q := reqPool.Get().(*Request)
	payload := int(length) - reqHeaderLen
	if cap(q.buf) < payload {
		q.buf = make([]byte, payload)
	}
	body := q.buf[:payload]
	if _, err := io.ReadFull(r, body); err != nil {
		q.Release()
		return nil, 0, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if err := q.decodePayload(h, body); err != nil {
		q.Release()
		return nil, 0, err
	}
	return q, prefixLen + int(length), nil
}

// AppendRequest encodes rows as one request frame appended to dst (which may
// be nil). float32Payload selects the 4-byte payload width — values are
// rounded to float32 on the wire, halving the frame size; at 8-byte width the
// frame carries each value's exact bit pattern.
func AppendRequest(dst []byte, rows [][]float64, float32Payload bool) ([]byte, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("%w: no rows", ErrGeometry)
	}
	if len(rows) > MaxRows {
		return nil, fmt.Errorf("%w: %d rows (cap %d)", ErrOversized, len(rows), MaxRows)
	}
	cols := len(rows[0])
	if cols == 0 {
		return nil, fmt.Errorf("%w: empty row", ErrGeometry)
	}
	if cols > MaxCols {
		return nil, fmt.Errorf("%w: %d cols (cap %d)", ErrOversized, cols, MaxCols)
	}
	width := 8
	var flags byte
	if float32Payload {
		width, flags = 4, FlagFloat32
	}
	length := reqHeaderLen + len(rows)*cols*width
	dst = appendFrameHeader(dst, uint32(length), flags, uint16(len(rows)))
	dst = binary.BigEndian.AppendUint16(dst, uint16(cols))
	for i, row := range rows {
		if len(row) != cols {
			return nil, fmt.Errorf("%w: row %d has %d values, row 0 has %d", ErrGeometry, i, len(row), cols)
		}
		for _, v := range row {
			if !isFinite(v) {
				return nil, fmt.Errorf("%w: row %d", ErrNonFinite, i)
			}
			if float32Payload {
				dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(v)))
			} else {
				dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
			}
		}
	}
	return dst, nil
}

// appendFrameHeader writes the prefix plus the shared version/flags/rows
// fields both frame kinds open with.
func appendFrameHeader(dst []byte, length uint32, flags byte, rows uint16) []byte {
	dst = binary.BigEndian.AppendUint32(dst, length)
	dst = append(dst, Version, flags)
	return binary.BigEndian.AppendUint16(dst, rows)
}

// Response is one decoded response frame.
type Response struct {
	// Threshold is the decision threshold the classes were cut at; Generation
	// is the bundle generation that scored the batch — together the frame's
	// threshold metadata, letting a router tier detect mid-rollout skew.
	Threshold  float64
	Generation uint64
	// Class and Score are the per-row predictions, in request row order.
	// Scores are exact float64 bit patterns — bit-identical to the JSON
	// path's values.
	Class []int
	Score []float64
}

// AppendResponse encodes predictions as one response frame appended to dst
// (which may be nil). class and score must be the same length; scores travel
// at full float64 width regardless of how the request payload arrived.
func AppendResponse(dst []byte, class []int, score []float64, threshold float64, generation uint64) ([]byte, error) {
	if len(class) != len(score) {
		return nil, fmt.Errorf("%w: %d classes, %d scores", ErrGeometry, len(class), len(score))
	}
	if len(class) == 0 {
		return nil, fmt.Errorf("%w: no rows", ErrGeometry)
	}
	if len(class) > MaxRows {
		return nil, fmt.Errorf("%w: %d rows (cap %d)", ErrOversized, len(class), MaxRows)
	}
	length := respHeaderLen + len(class)*respRowLen
	dst = appendFrameHeader(dst, uint32(length), 0, uint16(len(class)))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(threshold))
	dst = binary.BigEndian.AppendUint64(dst, generation)
	for i, c := range class {
		if c < 0 || c > maxClass {
			return nil, fmt.Errorf("%w: class %d out of u16 range", ErrGeometry, c)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(c))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(score[i]))
	}
	return dst, nil
}

// DecodeResponse parses one complete response frame (the client half of the
// protocol — loadtest, tests, and the future router tier).
func DecodeResponse(frame []byte) (*Response, error) {
	if len(frame) < prefixLen+respHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(frame), prefixLen+respHeaderLen)
	}
	length := binary.BigEndian.Uint32(frame[:prefixLen])
	if length > maxRespLength {
		return nil, fmt.Errorf("%w: length prefix %d exceeds %d", ErrOversized, length, maxRespLength)
	}
	hdr := frame[prefixLen:]
	if hdr[0] != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrVersion, hdr[0], Version)
	}
	if hdr[1] != 0 {
		return nil, fmt.Errorf("%w: flags 0x%02x", ErrFlags, hdr[1])
	}
	rows := int(binary.BigEndian.Uint16(hdr[2:4]))
	if rows == 0 {
		return nil, fmt.Errorf("%w: zero rows", ErrGeometry)
	}
	if rows > MaxRows {
		return nil, fmt.Errorf("%w: %d rows (cap %d)", ErrOversized, rows, MaxRows)
	}
	if want := respHeaderLen + rows*respRowLen; int(length) != want {
		return nil, fmt.Errorf("%w: length prefix %d, geometry needs %d", ErrGeometry, length, want)
	}
	if len(frame)-prefixLen < int(length) {
		return nil, fmt.Errorf("%w: %d frame bytes, length prefix claims %d", ErrTruncated, len(frame)-prefixLen, int(length)+prefixLen)
	}
	if len(frame)-prefixLen > int(length) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrGeometry, len(frame)-prefixLen-int(length))
	}
	resp := &Response{
		Threshold:  math.Float64frombits(binary.BigEndian.Uint64(hdr[4:12])),
		Generation: binary.BigEndian.Uint64(hdr[12:20]),
		Class:      make([]int, rows),
		Score:      make([]float64, rows),
	}
	body := hdr[respHeaderLen:]
	for i := 0; i < rows; i++ {
		resp.Class[i] = int(binary.BigEndian.Uint16(body[i*respRowLen:]))
		resp.Score[i] = math.Float64frombits(binary.BigEndian.Uint64(body[i*respRowLen+2:]))
	}
	return resp, nil
}
