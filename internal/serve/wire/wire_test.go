package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden testdata frames")

// goldenRows are the feature vectors the committed request frames encode —
// all exactly representable at float32 width, so the f32 and f64 frames
// decode to identical values.
var goldenRows = [][]float64{
	{0.5, -1.25, 3},
	{0.125, 2.5, -0.75},
}

// goldenResponse is the prediction set the committed response frame encodes.
var goldenResponse = Response{
	Threshold:  0.5,
	Generation: 7,
	Class:      []int{1, 0},
	Score:      []float64{0.875, 0.25},
}

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", "wire", name)
}

// readGolden loads a committed frame, regenerating it first under -update.
func readGolden(t *testing.T, name string, gen func() []byte) []byte {
	t.Helper()
	path := goldenPath(t, name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, gen(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden frame (run with -update to regenerate): %v", err)
	}
	return raw
}

// TestGoldenRequestFrames pins the request layout: the committed bytes must
// decode to the known values AND be byte-for-byte what the encoder emits, at
// both payload widths. Any layout change breaks this against the committed
// files — the wire format cannot drift silently.
func TestGoldenRequestFrames(t *testing.T) {
	for _, tc := range []struct {
		file string
		f32  bool
	}{
		{"req_f64.bin", false},
		{"req_f32.bin", true},
	} {
		t.Run(tc.file, func(t *testing.T) {
			frame := readGolden(t, tc.file, func() []byte {
				out, err := AppendRequest(nil, goldenRows, tc.f32)
				if err != nil {
					t.Fatal(err)
				}
				return out
			})
			enc, err := AppendRequest(nil, goldenRows, tc.f32)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, frame) {
				t.Fatalf("encoder output drifted from committed frame\n got %x\nwant %x", enc, frame)
			}
			req, err := DecodeRequest(frame)
			if err != nil {
				t.Fatal(err)
			}
			defer req.Release()
			if req.Float32 != tc.f32 || req.Cols != 3 || len(req.Rows) != 2 {
				t.Fatalf("decoded geometry f32=%v cols=%d rows=%d", req.Float32, req.Cols, len(req.Rows))
			}
			for i, row := range req.Rows {
				for j, v := range row {
					if math.Float64bits(v) != math.Float64bits(goldenRows[i][j]) {
						t.Fatalf("row %d col %d: got %v, want %v", i, j, v, goldenRows[i][j])
					}
				}
			}
		})
	}
}

// TestGoldenResponseFrame pins the response layout the same way.
func TestGoldenResponseFrame(t *testing.T) {
	frame := readGolden(t, "resp.bin", func() []byte {
		out, err := AppendResponse(nil, goldenResponse.Class, goldenResponse.Score,
			goldenResponse.Threshold, goldenResponse.Generation)
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
	enc, err := AppendResponse(nil, goldenResponse.Class, goldenResponse.Score,
		goldenResponse.Threshold, goldenResponse.Generation)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, frame) {
		t.Fatalf("encoder output drifted from committed frame\n got %x\nwant %x", enc, frame)
	}
	resp, err := DecodeResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Threshold != goldenResponse.Threshold || resp.Generation != goldenResponse.Generation {
		t.Fatalf("metadata: got (%v, %d), want (%v, %d)",
			resp.Threshold, resp.Generation, goldenResponse.Threshold, goldenResponse.Generation)
	}
	for i := range goldenResponse.Class {
		if resp.Class[i] != goldenResponse.Class[i] ||
			math.Float64bits(resp.Score[i]) != math.Float64bits(goldenResponse.Score[i]) {
			t.Fatalf("row %d: got (%d, %v), want (%d, %v)", i,
				resp.Class[i], resp.Score[i], goldenResponse.Class[i], goldenResponse.Score[i])
		}
	}
}

// TestRequestRoundTripF64 checks that the 8-byte payload width carries exact
// bit patterns, including values a float32 cannot represent.
func TestRequestRoundTripF64(t *testing.T) {
	rows := [][]float64{
		{math.Pi, math.SmallestNonzeroFloat64, -math.MaxFloat64},
		{1e-300, 0.1, math.Nextafter(1, 2)},
	}
	frame, err := AppendRequest(nil, rows, false)
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Release()
	for i, row := range req.Rows {
		for j, v := range row {
			if math.Float64bits(v) != math.Float64bits(rows[i][j]) {
				t.Fatalf("row %d col %d: bits %x, want %x", i, j,
					math.Float64bits(v), math.Float64bits(rows[i][j]))
			}
		}
	}
}

// TestRequestRoundTripF32 checks that the 4-byte width round-trips exactly
// for float32-representable values (encode rounds; decode widens exactly).
func TestRequestRoundTripF32(t *testing.T) {
	rows := [][]float64{{math.Pi, 0.1, -2.5e8}}
	frame, err := AppendRequest(nil, rows, true)
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	defer req.Release()
	for j, v := range req.Rows[0] {
		want := float64(float32(rows[0][j]))
		if math.Float64bits(v) != math.Float64bits(want) {
			t.Fatalf("col %d: got %v, want widened float32 %v", j, v, want)
		}
	}
}

// TestDecodeRequestErrors drives every typed failure mode.
func TestDecodeRequestErrors(t *testing.T) {
	valid, err := AppendRequest(nil, goldenRows, false)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:8], ErrTruncated},
		{"cut payload", valid[:len(valid)-4], ErrTruncated},
		{"trailing bytes", append(append([]byte(nil), valid...), 0), ErrGeometry},
		{"bad version", mutate(func(b []byte) []byte { b[4] = 9; return b }), ErrVersion},
		{"reserved flags", mutate(func(b []byte) []byte { b[5] = 0x80; return b }), ErrFlags},
		{"zero rows", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[6:8], 0)
			return b
		}), ErrGeometry},
		{"zero cols", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[8:10], 0)
			return b
		}), ErrGeometry},
		{"length/geometry mismatch", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[6:8], 1) // claims 1 row, length says 2
			return b
		}), ErrGeometry},
		{"oversized length", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[0:4], math.MaxUint32)
			return b
		}), ErrOversized},
		{"oversized cols", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[8:10], MaxCols+1)
			return b
		}), ErrOversized},
		{"nan payload", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[10:18], math.Float64bits(math.NaN()))
			return b
		}), ErrNonFinite},
		{"inf payload", mutate(func(b []byte) []byte {
			binary.BigEndian.PutUint64(b[10:18], math.Float64bits(math.Inf(-1)))
			return b
		}), ErrNonFinite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := DecodeRequest(tc.frame)
			if req != nil {
				req.Release()
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got error %v, want %v", err, tc.want)
			}
		})
	}
}

// TestReadRequestMatchesDecode checks the streaming reader agrees with the
// in-memory decoder, byte counts included.
func TestReadRequestMatchesDecode(t *testing.T) {
	frame, err := AppendRequest(nil, goldenRows, true)
	if err != nil {
		t.Fatal(err)
	}
	req, n, err := ReadRequest(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer req.Release()
	if n != len(frame) {
		t.Fatalf("ReadRequest consumed %d bytes, frame is %d", n, len(frame))
	}
	if len(req.Rows) != len(goldenRows) || req.Cols != 3 || !req.Float32 {
		t.Fatalf("geometry rows=%d cols=%d f32=%v", len(req.Rows), req.Cols, req.Float32)
	}
	// A truncated stream must fail typed, not hang or panic.
	if _, _, err := ReadRequest(bytes.NewReader(frame[:len(frame)-2])); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated stream: got %v, want ErrTruncated", err)
	}
	// A hostile length prefix must be rejected from the header alone.
	bad := append([]byte(nil), frame...)
	binary.BigEndian.PutUint32(bad[0:4], math.MaxUint32)
	if _, _, err := ReadRequest(bytes.NewReader(bad)); !errors.Is(err, ErrOversized) {
		t.Fatalf("hostile length: got %v, want ErrOversized", err)
	}
}

// TestAppendRequestValidation drives the encoder's own argument checks.
func TestAppendRequestValidation(t *testing.T) {
	if _, err := AppendRequest(nil, nil, false); !errors.Is(err, ErrGeometry) {
		t.Fatalf("no rows: %v", err)
	}
	if _, err := AppendRequest(nil, [][]float64{{}}, false); !errors.Is(err, ErrGeometry) {
		t.Fatalf("empty row: %v", err)
	}
	if _, err := AppendRequest(nil, [][]float64{{1, 2}, {3}}, false); !errors.Is(err, ErrGeometry) {
		t.Fatalf("ragged rows: %v", err)
	}
	if _, err := AppendRequest(nil, [][]float64{{math.NaN()}}, false); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("NaN feature: %v", err)
	}
	big := make([][]float64, MaxRows+1)
	for i := range big {
		big[i] = []float64{1}
	}
	if _, err := AppendRequest(nil, big, false); !errors.Is(err, ErrOversized) {
		t.Fatalf("too many rows: %v", err)
	}
}

// TestDecodeResponseErrors drives the response decoder's failure modes.
func TestDecodeResponseErrors(t *testing.T) {
	valid, err := AppendResponse(nil, goldenResponse.Class, goldenResponse.Score,
		goldenResponse.Threshold, goldenResponse.Generation)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResponse(valid[:10]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: %v", err)
	}
	bad := append([]byte(nil), valid...)
	bad[4] = 9
	if _, err := DecodeResponse(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("version: %v", err)
	}
	bad = append([]byte(nil), valid...)
	bad[5] = 1
	if _, err := DecodeResponse(bad); !errors.Is(err, ErrFlags) {
		t.Fatalf("flags: %v", err)
	}
	if _, err := DecodeResponse(append(append([]byte(nil), valid...), 0)); !errors.Is(err, ErrGeometry) {
		t.Fatalf("trailing: %v", err)
	}
	if _, err := AppendResponse(nil, []int{1}, []float64{0.5, 0.5}, 0.5, 1); !errors.Is(err, ErrGeometry) {
		t.Fatalf("mismatched slices: %v", err)
	}
	if _, err := AppendResponse(nil, []int{maxClass + 1}, []float64{0.5}, 0.5, 1); !errors.Is(err, ErrGeometry) {
		t.Fatalf("class overflow: %v", err)
	}
}

// TestDecodeRequestPooled checks the pool actually recycles: a Release
// followed by a same-shape decode must reuse the slab (no fresh backing
// array), which is what the serve hot path's zero-alloc budget rests on.
func TestDecodeRequestPooled(t *testing.T) {
	frame, err := AppendRequest(nil, goldenRows, false)
	if err != nil {
		t.Fatal(err)
	}
	req, err := DecodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	first := &req.slab[0]
	req.Release()
	req2, err := DecodeRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	defer req2.Release()
	if &req2.slab[0] != first {
		// Not guaranteed by sync.Pool in general (GC can clear it), but in
		// an idle single-goroutine test the round trip should hold; a miss
		// here means Release stopped returning buffers.
		t.Log("pool did not recycle the slab (GC interference is possible); checking allocs instead")
	}
	n := testing.AllocsPerRun(100, func() {
		q, err := DecodeRequest(frame)
		if err != nil {
			t.Fatal(err)
		}
		q.Release()
	})
	if n > 1 {
		t.Fatalf("steady-state DecodeRequest makes %.1f allocs/op, want <= 1", n)
	}
}
