package wire

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestUpdateFuzzCorpus (with -update) writes the seeded corpus under
// testdata/fuzz/<FuzzName>/ in the "go test fuzz v1" encoding — the same
// seeds the targets f.Add, committed so CI's -fuzz smoke starts from known
// interesting inputs rather than an empty corpus.
func TestUpdateFuzzCorpus(t *testing.T) {
	if !*update {
		t.Skip("run with -update to regenerate the seeded fuzz corpus")
	}
	write := func(target, name string, lines ...string) {
		t.Helper()
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n"
		for _, l := range lines {
			body += l + "\n"
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	seed64, err := AppendRequest(nil, [][]float64{{0.5, -1.25, 3}, {0.125, 2.5, -0.75}}, false)
	if err != nil {
		t.Fatal(err)
	}
	seed32, err := AppendRequest(nil, [][]float64{{1, 2}, {3, 4}, {5, 6}}, true)
	if err != nil {
		t.Fatal(err)
	}
	bytesSeeds := map[string][]byte{
		"valid_f64":      seed64,
		"valid_f32":      seed32,
		"empty":          {},
		"truncated":      {0, 0, 0, 6, Version, 0, 0, 1, 0, 1},
		"hostile_length": {0xff, 0xff, 0xff, 0xff, Version, 0, 0xff, 0xff},
		"zero_noise":     bytes.Repeat([]byte{0}, 64),
	}
	for name, b := range bytesSeeds {
		write("FuzzWireDecodeRequest", name, fmt.Sprintf("[]byte(%q)", b))
	}
	roundTripSeeds := map[string][4]string{
		"one_cell":  {"uint16(1)", "uint16(1)", "int64(0)", "bool(false)"},
		"small_f64": {"uint16(2)", "uint16(3)", "int64(42)", "bool(false)"},
		"higgs_f32": {"uint16(7)", "uint16(28)", "int64(7)", "bool(true)"},
		"batch_f32": {"uint16(64)", "uint16(5)", "int64(-1)", "bool(true)"},
	}
	for name, args := range roundTripSeeds {
		write("FuzzWireRoundTrip", name, args[0], args[1], args[2], args[3])
	}
}

// decodeErrs is the closed set of failures DecodeRequest may return; the
// fuzzers assert every rejection is one of these — a panic or an ad-hoc
// error on adversarial input is a bug.
var decodeErrs = []error{ErrTruncated, ErrOversized, ErrVersion, ErrFlags, ErrGeometry, ErrNonFinite}

func isTypedErr(err error) bool {
	for _, e := range decodeErrs {
		if errors.Is(err, e) {
			return true
		}
	}
	return false
}

// FuzzWireDecodeRequest throws arbitrary bytes at the request decoder. The
// invariants: never panic, never accept-and-misreport (anything accepted
// must re-encode to the exact input bytes), never return an untyped error,
// and never allocate past the caps (the decoder validates geometry before
// sizing buffers, so a hostile length prefix cannot balloon memory).
func FuzzWireDecodeRequest(f *testing.F) {
	seed64, err := AppendRequest(nil, [][]float64{{0.5, -1.25, 3}, {0.125, 2.5, -0.75}}, false)
	if err != nil {
		f.Fatal(err)
	}
	seed32, err := AppendRequest(nil, [][]float64{{1, 2}, {3, 4}, {5, 6}}, true)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed64)
	f.Add(seed32)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 6, Version, 0, 0, 1, 0, 1})             // truncated payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, Version, 0, 0xff, 0xff}) // hostile length
	f.Add(bytes.Repeat([]byte{0}, 64))                            // zero noise
	f.Fuzz(func(t *testing.T, frame []byte) {
		req, err := DecodeRequest(frame)
		if err != nil {
			if req != nil {
				t.Fatalf("non-nil request alongside error %v", err)
			}
			if !isTypedErr(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted: the frame must be canonical — re-encoding the decoded
		// rows reproduces the input byte-for-byte.
		if len(req.Rows) == 0 || req.Cols == 0 {
			t.Fatalf("accepted frame decoded to empty geometry")
		}
		if len(req.Rows) > MaxRows || req.Cols > MaxCols {
			t.Fatalf("accepted frame beyond caps: %d x %d", len(req.Rows), req.Cols)
		}
		enc, err := AppendRequest(nil, req.Rows, req.Float32)
		req.Release()
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(enc, frame) {
			t.Fatalf("accepted frame is not canonical\n  in %x\n out %x", frame, enc)
		}
	})
}

// FuzzWireRoundTrip fuzzes the structured path: arbitrary geometry and
// seed-derived values must encode, decode back to identical bits, and agree
// between the in-memory and streaming decoders — at both payload widths.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint16(1), uint16(1), int64(0), false)
	f.Add(uint16(2), uint16(3), int64(42), false)
	f.Add(uint16(7), uint16(28), int64(7), true)
	f.Add(uint16(64), uint16(5), int64(-1), true)
	f.Fuzz(func(t *testing.T, nrows, ncols uint16, seed int64, f32 bool) {
		rows := int(nrows)%128 + 1 // stay small: the fuzzer explores layout, not scale
		cols := int(ncols)%64 + 1
		state := uint64(seed)
		next := func() float64 {
			// xorshift64: deterministic, seed-derived, finite-by-construction
			// values in (-1, 1) that exercise both payload widths.
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			v := float64(int64(state)) / math.MaxInt64
			if f32 {
				v = float64(float32(v))
			}
			return v
		}
		in := make([][]float64, rows)
		for i := range in {
			in[i] = make([]float64, cols)
			for j := range in[i] {
				in[i][j] = next()
			}
		}
		frame, err := AppendRequest(nil, in, f32)
		if err != nil {
			t.Fatalf("encode %dx%d: %v", rows, cols, err)
		}
		req, err := DecodeRequest(frame)
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if req.Float32 != f32 || req.Cols != cols || len(req.Rows) != rows {
			t.Fatalf("geometry drift: f32=%v cols=%d rows=%d", req.Float32, req.Cols, len(req.Rows))
		}
		for i := range in {
			for j := range in[i] {
				if math.Float64bits(req.Rows[i][j]) != math.Float64bits(in[i][j]) {
					t.Fatalf("row %d col %d: bits %x, want %x", i, j,
						math.Float64bits(req.Rows[i][j]), math.Float64bits(in[i][j]))
				}
			}
		}
		req.Release()
		sreq, n, err := ReadRequest(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("streaming decode: %v", err)
		}
		if n != len(frame) {
			t.Fatalf("streaming decode consumed %d of %d bytes", n, len(frame))
		}
		for i := range in {
			for j := range in[i] {
				if math.Float64bits(sreq.Rows[i][j]) != math.Float64bits(in[i][j]) {
					t.Fatalf("streaming row %d col %d drifted", i, j)
				}
			}
		}
		sreq.Release()

		// Response half: classes/scores derived from the same stream.
		class := make([]int, rows)
		score := make([]float64, rows)
		for i := range class {
			class[i] = int(state>>uint(i%8)) & 1
			score[i] = next()
		}
		rframe, err := AppendResponse(nil, class, score, next(), state)
		if err != nil {
			t.Fatalf("response encode: %v", err)
		}
		resp, err := DecodeResponse(rframe)
		if err != nil {
			t.Fatalf("response decode of own encoding: %v", err)
		}
		if resp.Generation != state {
			t.Fatalf("generation drift: %d != %d", resp.Generation, state)
		}
		for i := range class {
			if resp.Class[i] != class[i] ||
				math.Float64bits(resp.Score[i]) != math.Float64bits(score[i]) {
				t.Fatalf("response row %d drifted", i)
			}
		}
		// Corrupting any single byte of the request frame must never panic
		// — flip one seed-chosen byte and decode again.
		pos := int(state % uint64(len(frame)))
		frame[pos] ^= 0xff
		if q, err := DecodeRequest(frame); err == nil {
			q.Release()
		} else if !isTypedErr(err) {
			t.Fatalf("corrupted frame produced untyped error: %v", err)
		}
	})
}
