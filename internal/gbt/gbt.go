// Package gbt implements gradient-boosted decision trees with logistic loss
// and histogram-based splits (an XGBoost-style second-order method at small
// scale). It is the "Boosted Decision Trees" related-work baseline of §VI:
// the classical HEP method the Higgs benchmark was originally evaluated
// with, used here to regenerate the E6 AUC-ordering table.
package gbt

import (
	"math"
	"math/rand"
	"sort"

	"streambrain/internal/tensor"
)

// Config holds the boosting hyperparameters.
type Config struct {
	// Trees is the number of boosting rounds.
	Trees int
	// Depth is the maximum tree depth.
	Depth int
	// LearningRate shrinks each tree's contribution.
	LearningRate float64
	// Lambda is the L2 leaf regularizer.
	Lambda float64
	// MinLeaf is the minimum samples per leaf.
	MinLeaf int
	// Bins is the number of histogram bins per feature.
	Bins int
	// Subsample is the per-tree row sampling fraction (1 = all rows).
	Subsample float64
	// Seed drives subsampling.
	Seed int64
}

// DefaultConfig returns the baseline configuration used by the E6 table.
func DefaultConfig() Config {
	return Config{
		Trees:        150,
		Depth:        4,
		LearningRate: 0.15,
		Lambda:       1.0,
		MinLeaf:      20,
		Bins:         32,
		Subsample:    0.8,
		Seed:         1,
	}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature     int
	bin         uint8 // go left when binned value <= bin
	left, right int   // child indices into the tree's node slice
	value       float64
}

// tree is a flat-array regression tree over binned features.
type tree struct {
	nodes []node
}

func (t *tree) predict(row []uint8) float64 {
	i := 0
	for {
		n := t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if row[n.feature] <= n.bin {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Model is a fitted boosted ensemble.
type Model struct {
	cfg   Config
	trees []*tree
	cuts  [][]float64 // per-feature bin boundaries
	base  float64     // prior log-odds
}

// binFeatures quantizes x columns into uint8 bins using per-feature
// quantile boundaries computed from the data.
func binFeatures(x *tensor.Matrix, bins int) (binned [][]uint8, cuts [][]float64) {
	n, f := x.Rows, x.Cols
	cuts = make([][]float64, f)
	col := make([]float64, n)
	for j := 0; j < f; j++ {
		for i := 0; i < n; i++ {
			col[i] = x.At(i, j)
		}
		sorted := append([]float64(nil), col...)
		sort.Float64s(sorted)
		var cs []float64
		for b := 1; b < bins; b++ {
			v := sorted[b*(n-1)/bins]
			if len(cs) == 0 || v > cs[len(cs)-1] {
				cs = append(cs, v)
			}
		}
		cuts[j] = cs
	}
	binned = make([][]uint8, n)
	for i := 0; i < n; i++ {
		row := make([]uint8, f)
		src := x.Row(i)
		for j, v := range src {
			row[j] = uint8(sort.SearchFloat64s(cuts[j], v))
		}
		binned[i] = row
	}
	return binned, cuts
}

// applyCuts bins a matrix with previously computed boundaries.
func applyCuts(x *tensor.Matrix, cuts [][]float64) [][]uint8 {
	binned := make([][]uint8, x.Rows)
	for i := 0; i < x.Rows; i++ {
		row := make([]uint8, x.Cols)
		src := x.Row(i)
		for j, v := range src {
			row[j] = uint8(sort.SearchFloat64s(cuts[j], v))
		}
		binned[i] = row
	}
	return binned
}

// buildCtx carries the per-boosting-round state.
type buildCtx struct {
	cfg    Config
	binned [][]uint8
	grad   []float64
	hess   []float64
	nbins  int
}

// leafValue is the Newton step −Σg/(Σh+λ).
func (c *buildCtx) leafValue(rows []int) float64 {
	var g, h float64
	for _, r := range rows {
		g += c.grad[r]
		h += c.hess[r]
	}
	return -g / (h + c.cfg.Lambda)
}

// bestSplit scans histogram cuts of every feature for the split maximizing
// the second-order gain; returns ok=false when no split clears MinLeaf.
func (c *buildCtx) bestSplit(rows []int) (feature int, bin uint8, gain float64, ok bool) {
	var gTot, hTot float64
	for _, r := range rows {
		gTot += c.grad[r]
		hTot += c.hess[r]
	}
	lam := c.cfg.Lambda
	parent := gTot * gTot / (hTot + lam)
	nf := len(c.binned[0])
	gHist := make([]float64, c.nbins)
	hHist := make([]float64, c.nbins)
	cnt := make([]int, c.nbins)
	bestGain := 0.0
	for f := 0; f < nf; f++ {
		for b := 0; b < c.nbins; b++ {
			gHist[b], hHist[b], cnt[b] = 0, 0, 0
		}
		for _, r := range rows {
			b := c.binned[r][f]
			gHist[b] += c.grad[r]
			hHist[b] += c.hess[r]
			cnt[b]++
		}
		var gL, hL float64
		nL := 0
		for b := 0; b < c.nbins-1; b++ {
			gL += gHist[b]
			hL += hHist[b]
			nL += cnt[b]
			nR := len(rows) - nL
			if nL < c.cfg.MinLeaf || nR < c.cfg.MinLeaf {
				continue
			}
			gR := gTot - gL
			hR := hTot - hL
			g := gL*gL/(hL+lam) + gR*gR/(hR+lam) - parent
			if g > bestGain {
				bestGain, feature, bin, ok = g, f, uint8(b), true
			}
		}
	}
	return feature, bin, bestGain, ok
}

// build grows one tree depth-first.
func (c *buildCtx) build(t *tree, rows []int, depth int) int {
	idx := len(t.nodes)
	t.nodes = append(t.nodes, node{feature: -1})
	if depth >= c.cfg.Depth || len(rows) < 2*c.cfg.MinLeaf {
		t.nodes[idx].value = c.leafValue(rows)
		return idx
	}
	f, b, _, ok := c.bestSplit(rows)
	if !ok {
		t.nodes[idx].value = c.leafValue(rows)
		return idx
	}
	var left, right []int
	for _, r := range rows {
		if c.binned[r][f] <= b {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	l := c.build(t, left, depth+1)
	r := c.build(t, right, depth+1)
	t.nodes[idx].feature = f
	t.nodes[idx].bin = b
	t.nodes[idx].left = l
	t.nodes[idx].right = r
	return idx
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Fit trains a boosted ensemble on binary labels (0/1).
func Fit(x *tensor.Matrix, y []int, cfg Config) *Model {
	if x.Rows != len(y) {
		panic("gbt: Fit length mismatch")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	binned, cuts := binFeatures(x, cfg.Bins)
	n := x.Rows
	// Prior log-odds from the class balance.
	pos := 0
	for _, v := range y {
		pos += v
	}
	p := (float64(pos) + 1) / (float64(n) + 2)
	m := &Model{cfg: cfg, cuts: cuts, base: math.Log(p / (1 - p))}
	logit := make([]float64, n)
	for i := range logit {
		logit[i] = m.base
	}
	ctx := &buildCtx{cfg: cfg, binned: binned, nbins: cfg.Bins,
		grad: make([]float64, n), hess: make([]float64, n)}
	for round := 0; round < cfg.Trees; round++ {
		for i := 0; i < n; i++ {
			pi := sigmoid(logit[i])
			ctx.grad[i] = pi - float64(y[i])
			ctx.hess[i] = pi * (1 - pi)
		}
		rows := make([]int, 0, n)
		if cfg.Subsample < 1 {
			for i := 0; i < n; i++ {
				if rng.Float64() < cfg.Subsample {
					rows = append(rows, i)
				}
			}
			if len(rows) < 2*cfg.MinLeaf {
				rows = rows[:0]
				for i := 0; i < n; i++ {
					rows = append(rows, i)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				rows = append(rows, i)
			}
		}
		t := &tree{}
		ctx.build(t, rows, 0)
		m.trees = append(m.trees, t)
		for i := 0; i < n; i++ {
			logit[i] += cfg.LearningRate * t.predict(binned[i])
		}
	}
	return m
}

// Score returns the signal probability of every row of x.
func (m *Model) Score(x *tensor.Matrix) []float64 {
	binned := applyCuts(x, m.cuts)
	out := make([]float64, x.Rows)
	for i, row := range binned {
		z := m.base
		for _, t := range m.trees {
			z += m.cfg.LearningRate * t.predict(row)
		}
		out[i] = sigmoid(z)
	}
	return out
}

// Predict returns hard labels (threshold 0.5) and the signal probability.
func (m *Model) Predict(x *tensor.Matrix) (pred []int, score []float64) {
	score = m.Score(x)
	pred = make([]int, len(score))
	for i, s := range score {
		if s >= 0.5 {
			pred[i] = 1
		}
	}
	return pred, score
}

// NumTrees returns the fitted ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }
