package gbt

import (
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/metrics"
	"streambrain/internal/tensor"
)

// rings builds a radially-separable task (inner disk vs outer ring) that no
// single axis-aligned split solves but shallow trees handle easily.
func rings(rng *rand.Rand, n int) (*tensor.Matrix, []int) {
	x := tensor.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if a*a+b*b < 1.2 {
			y[i] = 1
		}
	}
	return x, y
}

func TestGBTSolvesRings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := rings(rng, 2000)
	cfg := DefaultConfig()
	cfg.Trees = 60
	m := Fit(x, y, cfg)
	pred, score := m.Predict(x)
	if acc := metrics.Accuracy(pred, y); acc < 0.92 {
		t.Fatalf("rings accuracy %.3f", acc)
	}
	if auc := metrics.AUC(score, y); auc < 0.97 {
		t.Fatalf("rings AUC %.3f", auc)
	}
}

func TestGBTGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xtr, ytr := rings(rng, 2000)
	xte, yte := rings(rng, 800)
	cfg := DefaultConfig()
	cfg.Trees = 60
	m := Fit(xtr, ytr, cfg)
	pred, _ := m.Predict(xte)
	if acc := metrics.Accuracy(pred, yte); acc < 0.90 {
		t.Fatalf("held-out accuracy %.3f", acc)
	}
}

func TestMoreTreesHelp(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xtr, ytr := rings(rng, 1500)
	xte, yte := rings(rng, 600)
	few := DefaultConfig()
	few.Trees = 3
	many := DefaultConfig()
	many.Trees = 80
	m1 := Fit(xtr, ytr, few)
	m2 := Fit(xtr, ytr, many)
	_, s1 := m1.Predict(xte)
	_, s2 := m2.Predict(xte)
	if metrics.AUC(s2, yte) <= metrics.AUC(s1, yte) {
		t.Fatalf("80 trees (%.3f) not better than 3 trees (%.3f)",
			metrics.AUC(s2, yte), metrics.AUC(s1, yte))
	}
	if m2.NumTrees() != 80 {
		t.Fatalf("NumTrees = %d", m2.NumTrees())
	}
}

func TestScoresAreProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := rings(rng, 400)
	cfg := DefaultConfig()
	cfg.Trees = 10
	m := Fit(x, y, cfg)
	for i, s := range m.Score(x) {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
}

func TestBasePriorMatchesImbalance(t *testing.T) {
	// With no informative features, predictions must collapse to the class
	// prior rather than chase noise.
	rng := rand.New(rand.NewSource(5))
	n := 1000
	x := tensor.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		if rng.Float64() < 0.8 {
			y[i] = 1
		}
	}
	cfg := DefaultConfig()
	cfg.Trees = 5
	cfg.Depth = 2
	m := Fit(x, y, cfg)
	scores := m.Score(x)
	mean := metrics.Mean(scores)
	if mean < 0.65 || mean > 0.95 {
		t.Fatalf("mean score %.3f far from the 0.8 prior", mean)
	}
}

func TestMinLeafRespected(t *testing.T) {
	// A tiny dataset with a large MinLeaf must yield stump-or-leaf trees
	// without panicking.
	rng := rand.New(rand.NewSource(6))
	x, y := rings(rng, 50)
	cfg := DefaultConfig()
	cfg.Trees = 3
	cfg.MinLeaf = 30
	m := Fit(x, y, cfg)
	if m.NumTrees() != 3 {
		t.Fatalf("expected 3 trees, got %d", m.NumTrees())
	}
}

func TestFitMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fit(tensor.NewMatrix(3, 2), []int{0, 1}, DefaultConfig())
}

func TestDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := rings(rng, 500)
	cfg := DefaultConfig()
	cfg.Trees = 10
	s1 := Fit(x, y, cfg).Score(x)
	s2 := Fit(x, y, cfg).Score(x)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}
