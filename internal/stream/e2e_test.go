package stream_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/obs/obstest"
	"streambrain/internal/serve"
	"streambrain/internal/stream"
)

// synthEvents emits n trivially separable events into ch: every feature
// carries the label as shifted Gaussians with independent noise. flip
// inverts the label↔feature relation, simulating abrupt concept drift.
func synthEvents(ch chan<- stream.Event, n int, seed int64, flip bool) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		label := i % 2
		carrier := float64(label)
		if flip {
			carrier = float64(1 - label)
		}
		features := make([]float64, 4)
		for f := range features {
			features[f] = carrier + 0.25*rng.NormFloat64()
		}
		ch <- stream.Event{Features: features, Label: label}
	}
}

func testParams() core.Params {
	p := core.DefaultParams()
	p.MCUs = 8
	// Four synthetic features only: let the single HCU see all of them
	// (RF 0.30 would gate it to one), and speed the trace EMA up — the
	// test stream is a few thousand events, not a few million.
	p.ReceptiveField = 1.0
	p.Taupdt = 0.05
	p.BatchSize = 32
	p.UnsupervisedEpochs = 2
	p.SupervisedEpochs = 2
	p.Seed = 5
	return p
}

// TestPipelineEndToEnd closes the train→serve loop: ingest synthetic events,
// let the pipeline publish snapshots into a serve.Registry, and prove the
// HTTP service answers /v1/predict from a generation trained after startup.
func TestPipelineEndToEnd(t *testing.T) {
	// Once Run returns and the server closes, nothing of the pipeline or the
	// serving stack may survive as a goroutine.
	defer obstest.CheckLeaks(t)()
	reg := serve.NewRegistry(1, serve.NamedBackendFactory("parallel", 1))
	p, err := stream.New(stream.Config{
		Backend:         "parallel",
		Workers:         1,
		Params:          testParams(),
		Bins:            4,
		Warmup:          256,
		Window:          256,
		PublishEvery:    256,
		StructuralEvery: 512,
		ReservoirSize:   512,
	}, &stream.RegistryPublisher{Reg: reg})
	if err != nil {
		t.Fatal(err)
	}

	ch := make(chan stream.Event, 64)
	go func() {
		synthEvents(ch, 1024, 7, false)
		close(ch)
	}()
	if err := p.Run(context.Background(), stream.ChanSource(ch)); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	if !st.Warmed {
		t.Fatal("pipeline never warmed")
	}
	if st.Events != 1024 {
		t.Fatalf("ingested %d events, want 1024", st.Events)
	}
	// Bootstrap snapshot + one periodic snapshot per 256 steady events.
	if st.Publishes != 4 {
		t.Fatalf("published %d snapshots, want 4", st.Publishes)
	}
	if st.WindowAccuracy < 0.8 {
		t.Fatalf("window accuracy %.3f, want > 0.8 on separable data", st.WindowAccuracy)
	}
	if st.WindowAUC < 0.9 {
		t.Fatalf("window AUC %.3f, want > 0.9 on separable data", st.WindowAUC)
	}

	info := reg.Info()
	if info == nil {
		t.Fatal("registry has no active bundle")
	}
	if info.Generation != 4 {
		t.Fatalf("registry generation %d, want 4", info.Generation)
	}
	// The active snapshot must postdate startup: it is the 4th publish, not
	// the warmup bootstrap.
	if want := "stream#4"; info.Source != want {
		t.Fatalf("active source %q, want %q", info.Source, want)
	}

	// Serve the final generation over real HTTP and score one clear event
	// per class.
	srv := serve.NewServer(reg, serve.ServerConfig{}, "")
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, tc := range []struct {
		features []float64
		want     int
	}{
		{[]float64{1, 1, 1, 1}, 1},
		{[]float64{0, 0, 0, 0}, 0},
	} {
		body, _ := json.Marshal(serve.PredictRequest{Events: [][]float64{tc.features}})
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d, want 200", resp.StatusCode)
		}
		var pr serve.PredictResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(pr.Predictions) != 1 {
			t.Fatalf("got %d predictions, want 1", len(pr.Predictions))
		}
		if pr.Predictions[0].Class != tc.want {
			t.Fatalf("event %v predicted class %d, want %d (score %.3f)",
				tc.features, pr.Predictions[0].Class, tc.want, pr.Predictions[0].SignalScore)
		}
	}
}

// TestPipelineDriftSignal flips the label↔feature relation mid-stream and
// checks the windowed-accuracy regression detector fires and triggers the
// encoder-refit response.
func TestPipelineDriftSignal(t *testing.T) {
	p, err := stream.New(stream.Config{
		Backend:     "parallel",
		Workers:     1,
		Params:      testParams(),
		Bins:        4,
		Warmup:      256,
		Window:      128,
		DriftDrop:   0.20,
		DriftMinObs: 2,
		// Periodic publishing off; this test is about the drift path.
		PublishEvery:  -1,
		ReservoirSize: 512,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}

	ch := make(chan stream.Event, 64)
	go func() {
		synthEvents(ch, 768, 11, false)
		synthEvents(ch, 512, 12, true) // abrupt concept drift
		close(ch)
	}()
	if err := p.Run(context.Background(), stream.ChanSource(ch)); err != nil {
		t.Fatal(err)
	}

	st := p.Stats()
	if st.Drifts < 1 {
		t.Fatalf("drift detector never fired across a label flip (stats %+v)", st)
	}
	if st.Refits < 1 {
		t.Fatalf("drift fired but no encoder refit ran (stats %+v)", st)
	}
}

// TestPipelineSourceEndsEarly covers the degenerate stream: fewer events
// than the warmup target still bootstraps and publishes one snapshot, and an
// empty stream errors.
func TestPipelineSourceEndsEarly(t *testing.T) {
	var published int
	pub := stream.PublisherFunc(func(_ *core.Network, _ *data.Encoder, _ int) error {
		published++
		return nil
	})
	p, err := stream.New(stream.Config{
		Backend: "parallel", Workers: 1, Params: testParams(),
		Bins: 4, Warmup: 512, Window: 64,
	}, pub)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan stream.Event, 64)
	go func() {
		synthEvents(ch, 100, 3, false) // less than Warmup
		close(ch)
	}()
	if err := p.Run(context.Background(), stream.ChanSource(ch)); err != nil {
		t.Fatal(err)
	}
	if published != 1 {
		t.Fatalf("short stream published %d snapshots, want 1", published)
	}
	st := p.Stats()
	if !st.Warmed || st.Events != 100 {
		t.Fatalf("short stream stats %+v, want warmed with 100 events", st)
	}

	empty := make(chan stream.Event)
	close(empty)
	p2, err := stream.New(stream.Config{Backend: "parallel", Workers: 1, Params: testParams()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Run(context.Background(), stream.ChanSource(empty)); err == nil {
		t.Fatal("empty stream did not error")
	}
}
