// Package stream is the online continual-learning subsystem: it turns the
// batch reproduction into the continuously-learning system the paper's title
// promises. A Pipeline ingests raw labeled events from a Source, fits the
// quantile encoder on a warmup buffer (and refits it later from a reservoir
// sample without stopping ingest), trains the BCPNN incrementally in
// micro-batches against any registered backend, tracks sliding-window
// accuracy/AUC with a drift signal, and periodically publishes a fresh model
// bundle snapshot to the serving registry — closing the train→serve loop so
// one process learns and serves concurrently (DESIGN.md §7).
//
// BCPNN is unusually well suited to this: its trace update is already an
// exponential moving average over mini-batches, so continual learning is the
// batch rule applied to micro-batches as they arrive — no replay buffer, no
// gradient surgery (paper §VII: BCPNN's local gradient-free updates make it
// "well suited for online and incremental learning").
package stream

import (
	"time"

	"streambrain/internal/data"
)

// Event is one labeled raw observation from the stream: the feature vector
// exactly as the upstream detector/ETL produces it, plus its class label
// (the label arrives with the event in the prequential setting; pipelines
// fed by delayed labels buffer upstream of the Source).
type Event struct {
	Features []float64
	Label    int
}

// Source yields events in stream order. Next blocks until an event is
// available and reports ok=false when the stream is exhausted.
type Source interface {
	Next() (ev Event, ok bool)
}

// ChanSource adapts a channel of events; closing the channel ends the
// stream. This is the natural source for live feeds (network readers,
// in-process producers).
type ChanSource <-chan Event

// Next implements Source.
func (c ChanSource) Next() (Event, bool) {
	ev, ok := <-c
	return ev, ok
}

// DatasetSource replays an in-memory dataset as a stream, optionally rate
// limited and looping — the replay harness behind cmd/streambrain-stream's
// file mode and the benchmarks.
type DatasetSource struct {
	ds    *data.Dataset
	pos   int
	sent  int
	limit int
	start time.Time
	rate  float64
}

// NewDatasetSource replays ds row by row. limit > 0 caps the total emitted
// events, looping over the dataset as needed; limit = 0 emits exactly one
// pass. rate > 0 paces emission to about rate events per second (absolute
// schedule, so pacing does not drift under consumer jitter).
func NewDatasetSource(ds *data.Dataset, limit int, rate float64) *DatasetSource {
	if limit <= 0 {
		limit = ds.Len()
	}
	return &DatasetSource{ds: ds, limit: limit, rate: rate}
}

// Next implements Source.
func (s *DatasetSource) Next() (Event, bool) {
	if s.sent >= s.limit || s.ds.Len() == 0 {
		return Event{}, false
	}
	if s.rate > 0 {
		if s.start.IsZero() {
			s.start = time.Now()
		}
		due := s.start.Add(time.Duration(float64(s.sent) / s.rate * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
	}
	if s.pos >= s.ds.Len() {
		s.pos = 0
	}
	ev := Event{Features: s.ds.X.Row(s.pos), Label: s.ds.Y[s.pos]}
	s.pos++
	s.sent++
	return ev, true
}
