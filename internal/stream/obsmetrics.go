package stream

import (
	"streambrain/internal/obs"
)

// Stream metric families (the DESIGN.md §11 catalogue).
const (
	metricEvents     = "streambrain_stream_events_total"
	metricBatches    = "streambrain_stream_batches_total"
	metricDrifts     = "streambrain_stream_drifts_total"
	metricPublishes  = "streambrain_stream_publishes_total"
	metricStructural = "streambrain_stream_structural_rounds_total"
	metricStep       = "streambrain_stream_step_seconds"
	metricRefit      = "streambrain_stream_refit_seconds"
	metricWindowAcc  = "streambrain_stream_window_accuracy"
	metricWindowAUC  = "streambrain_stream_window_auc"
	metricThreshold  = "streambrain_stream_threshold"
)

// metrics is the stream pipeline's instrument set. Built against a nil
// registry every instrument is nil, and every recording below is a no-op —
// an uninstrumented pipeline pays only nil checks.
type obsMetrics struct {
	events     *obs.Counter
	batches    *obs.Counter
	drifts     *obs.Counter
	publishes  *obs.Counter
	structural *obs.Counter
	step       *obs.Histogram
	refit      *obs.Histogram
	windowAcc  *obs.Gauge
	windowAUC  *obs.Gauge
	threshold  *obs.Gauge
}

// live reports whether the instruments record anywhere — false for the
// nil-registry pipeline, which then skips computing gauge inputs (the
// window AUC sort) entirely.
func (m *obsMetrics) live() bool { return m.windowAcc != nil }

func newObsMetrics(reg *obs.Registry) *obsMetrics {
	return &obsMetrics{
		events: reg.Counter(metricEvents,
			"Events ingested (warmup included); its rate is the ingest rate."),
		batches: reg.Counter(metricBatches,
			"Micro-batch training steps after warmup."),
		drifts: reg.Counter(metricDrifts,
			"Drift-detector firings."),
		publishes: reg.Counter(metricPublishes,
			"Bundle snapshots handed to the publisher."),
		structural: reg.Counter(metricStructural,
			"Structural-plasticity rounds applied."),
		step: reg.LatencyHistogram(metricStep,
			"Wall time of one prequential micro-batch step."),
		refit: reg.LatencyHistogram(metricRefit,
			"Encoder refit duration (drift response and periodic refits)."),
		windowAcc: reg.Gauge(metricWindowAcc,
			"Prequential accuracy over the sliding window."),
		windowAUC: reg.Gauge(metricWindowAUC,
			"Prequential AUC over the sliding window."),
		threshold: reg.Gauge(metricThreshold,
			"Current calibrated decision threshold."),
	}
}
