package stream

import (
	"fmt"

	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/serve"
)

// Publisher receives periodic model snapshots from the pipeline. seq counts
// publishes from 1 (the post-warmup model). Implementations must not retain
// net or enc past the call — the pipeline keeps training them — so they
// serialize (RegistryPublisher, FilePublisher) or deep-copy before returning.
type Publisher interface {
	Publish(net *core.Network, enc *data.Encoder, seq int) error
}

// PublisherFunc adapts a function to the Publisher interface.
type PublisherFunc func(net *core.Network, enc *data.Encoder, seq int) error

// Publish implements Publisher.
func (f PublisherFunc) Publish(net *core.Network, enc *data.Encoder, seq int) error {
	return f(net, enc, seq)
}

// RegistryPublisher hot-swaps every snapshot into an in-process
// serve.Registry — the co-located train→serve loop: the registry decodes
// independent replicas from the serialized snapshot, so serving continues on
// deep copies while the pipeline keeps training (DESIGN.md §7).
type RegistryPublisher struct {
	Reg *serve.Registry
	// Name prefixes the registry source label ("stream" when empty); the
	// label surfaces in /healthz and /stats as e.g. "stream#3".
	Name string
}

// Publish implements Publisher.
func (p *RegistryPublisher) Publish(net *core.Network, enc *data.Encoder, seq int) error {
	name := p.Name
	if name == "" {
		name = "stream"
	}
	return p.Reg.PublishBundle(net, enc, fmt.Sprintf("%s#%d", name, seq))
}

// FilePublisher atomically rewrites one bundle file per snapshot — the
// hand-off for a prediction service in another process, whose POST
// /v1/reload picks the file up.
type FilePublisher struct {
	Path string
}

// Publish implements Publisher.
func (p FilePublisher) Publish(net *core.Network, enc *data.Encoder, _ int) error {
	return serve.SaveBundleFile(p.Path, net, enc)
}

// MultiPublisher fans each snapshot out to every publisher in order,
// stopping at the first error.
type MultiPublisher []Publisher

// Publish implements Publisher.
func (m MultiPublisher) Publish(net *core.Network, enc *data.Encoder, seq int) error {
	for _, p := range m {
		if err := p.Publish(net, enc, seq); err != nil {
			return err
		}
	}
	return nil
}
