package stream

import (
	"math"
	"testing"

	"streambrain/internal/metrics"
)

// TestWindowAccuracyKnownAnswer checks the running correct-count against
// hand-computed values, including ring-buffer eviction.
func TestWindowAccuracyKnownAnswer(t *testing.T) {
	w := NewWindow(4)
	if got := w.Accuracy(); got != 0 {
		t.Fatalf("empty window accuracy = %v, want 0", got)
	}
	// Results: correct, wrong, correct, correct → 3/4.
	w.Add(1, 1, 0.9)
	w.Add(0, 1, 0.2)
	w.Add(0, 0, 0.1)
	w.Add(1, 1, 0.8)
	if got, want := w.Accuracy(), 0.75; got != want {
		t.Fatalf("accuracy = %v, want %v", got, want)
	}
	if !w.Full() || w.Len() != 4 {
		t.Fatalf("window should be full at 4: len=%d", w.Len())
	}
	// Fifth result evicts the oldest (a correct one) and adds a wrong one:
	// window is now [wrong, correct, correct, wrong] → 2/4.
	w.Add(0, 1, 0.3)
	if got, want := w.Accuracy(), 0.5; got != want {
		t.Fatalf("post-eviction accuracy = %v, want %v", got, want)
	}
	// Two more evictions drop the remaining wrong and one correct:
	// [correct, wrong, correct, correct] → 3/4.
	w.Add(1, 1, 0.9)
	w.Add(1, 1, 0.7)
	if got, want := w.Accuracy(), 0.75; got != want {
		t.Fatalf("wrapped accuracy = %v, want %v", got, want)
	}
	if w.Len() != 4 {
		t.Fatalf("len after wrap = %d, want 4", w.Len())
	}
}

// TestWindowAUCMatchesMetrics checks the windowed AUC against metrics.AUC
// over exactly the samples the window retains.
func TestWindowAUCMatchesMetrics(t *testing.T) {
	w := NewWindow(8)
	if got := w.AUC(); got != 0.5 {
		t.Fatalf("empty window AUC = %v, want 0.5", got)
	}
	// 12 results into a window of 8: the first 4 must be forgotten.
	scores := []float64{0.9, 0.8, 0.1, 0.2, 0.7, 0.3, 0.6, 0.4, 0.55, 0.45, 0.65, 0.35}
	labels := []int{1, 1, 0, 0, 1, 0, 1, 0, 1, 0, 1, 0}
	for i := range scores {
		pred := 0
		if scores[i] >= 0.5 {
			pred = 1
		}
		w.Add(pred, labels[i], scores[i])
	}
	want := metrics.AUC(scores[4:], labels[4:])
	if got := w.AUC(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("windowed AUC = %v, want %v (metrics.AUC over last 8)", got, want)
	}
	// This window separates perfectly: every retained positive outscores
	// every retained negative.
	if want != 1.0 {
		t.Fatalf("test vector broken: expected separable tail, AUC %v", want)
	}
}

// TestWindowBestThreshold checks the accuracy-maximizing cut on a window
// whose optimum is away from 0.5 — the miscalibrated-score case the online
// recalibration exists for.
func TestWindowBestThreshold(t *testing.T) {
	w := NewWindow(8)
	// Scores are systematically deflated: positives score 0.30–0.45,
	// negatives 0.05–0.20. Any cut in (0.20, 0.30) classifies perfectly;
	// a 0.5 cut would collapse everything to class 0.
	pos := []float64{0.30, 0.35, 0.40, 0.45}
	neg := []float64{0.05, 0.10, 0.15, 0.20}
	for _, s := range pos {
		w.Add(0, 1, s)
	}
	for _, s := range neg {
		w.Add(0, 0, s)
	}
	got := w.BestThreshold()
	if got <= 0.20 || got >= 0.30 {
		t.Fatalf("best threshold = %v, want in (0.20, 0.30)", got)
	}
	// Degenerate windows keep the neutral cut.
	one := NewWindow(4)
	one.Add(1, 1, 0.9)
	one.Add(1, 1, 0.8)
	if got := one.BestThreshold(); got != 0.5 {
		t.Fatalf("single-class best threshold = %v, want 0.5", got)
	}
}

// TestDriftDetectorKnownAnswer checks arming, the exact trigger boundary,
// and re-baselining after Reset.
func TestDriftDetectorKnownAnswer(t *testing.T) {
	d := NewDriftDetector(0.10, 3)
	// Not armed yet: even a terrible value cannot fire.
	if d.Observe(0.90) || d.Observe(0.10) {
		t.Fatal("detector fired before MinObs observations")
	}
	// Third observation arms it. Best so far is 0.90; 0.81 is within the
	// 0.10 tolerance, 0.79 is outside.
	if d.Observe(0.81) {
		t.Fatal("fired at drop 0.09 with tolerance 0.10")
	}
	if !d.Observe(0.79) {
		t.Fatal("did not fire at drop 0.11 with tolerance 0.10")
	}
	if best := d.Best(); best != 0.90 {
		t.Fatalf("best = %v, want 0.90", best)
	}
	// Reset re-baselines: the recovered (lower) level is the new normal.
	d.Reset()
	if d.Observe(0.70) || d.Observe(0.70) {
		t.Fatal("fired while re-arming after Reset")
	}
	if d.Observe(0.65) {
		t.Fatal("fired at drop 0.05 from new baseline")
	}
	if !d.Observe(0.55) {
		t.Fatal("did not fire at drop 0.15 from new baseline")
	}
}
