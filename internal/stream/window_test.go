package stream

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/core"
	"streambrain/internal/metrics"
)

// TestWindowAccuracyKnownAnswer checks the running correct-count against
// hand-computed values, including ring-buffer eviction.
func TestWindowAccuracyKnownAnswer(t *testing.T) {
	w := NewWindow(4)
	if got := w.Accuracy(); !math.IsNaN(got) {
		t.Fatalf("empty window accuracy = %v, want NaN (degenerate-window convention)", got)
	}
	// Results: correct, wrong, correct, correct → 3/4.
	w.Add(1, 1, 0.9)
	w.Add(0, 1, 0.2)
	w.Add(0, 0, 0.1)
	w.Add(1, 1, 0.8)
	if got, want := w.Accuracy(), 0.75; got != want {
		t.Fatalf("accuracy = %v, want %v", got, want)
	}
	if !w.Full() || w.Len() != 4 {
		t.Fatalf("window should be full at 4: len=%d", w.Len())
	}
	// Fifth result evicts the oldest (a correct one) and adds a wrong one:
	// window is now [wrong, correct, correct, wrong] → 2/4.
	w.Add(0, 1, 0.3)
	if got, want := w.Accuracy(), 0.5; got != want {
		t.Fatalf("post-eviction accuracy = %v, want %v", got, want)
	}
	// Two more evictions drop the remaining wrong and one correct:
	// [correct, wrong, correct, correct] → 3/4.
	w.Add(1, 1, 0.9)
	w.Add(1, 1, 0.7)
	if got, want := w.Accuracy(), 0.75; got != want {
		t.Fatalf("wrapped accuracy = %v, want %v", got, want)
	}
	if w.Len() != 4 {
		t.Fatalf("len after wrap = %d, want 4", w.Len())
	}
}

// TestWindowAUCMatchesMetrics checks the windowed AUC against metrics.AUC
// over exactly the samples the window retains.
func TestWindowAUCMatchesMetrics(t *testing.T) {
	w := NewWindow(8)
	if got := w.AUC(); !math.IsNaN(got) {
		t.Fatalf("empty window AUC = %v, want NaN (degenerate-window convention)", got)
	}
	// 12 results into a window of 8: the first 4 must be forgotten.
	scores := []float64{0.9, 0.8, 0.1, 0.2, 0.7, 0.3, 0.6, 0.4, 0.55, 0.45, 0.65, 0.35}
	labels := []int{1, 1, 0, 0, 1, 0, 1, 0, 1, 0, 1, 0}
	for i := range scores {
		pred := 0
		if scores[i] >= 0.5 {
			pred = 1
		}
		w.Add(pred, labels[i], scores[i])
	}
	want := metrics.AUC(scores[4:], labels[4:])
	if got := w.AUC(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("windowed AUC = %v, want %v (metrics.AUC over last 8)", got, want)
	}
	// This window separates perfectly: every retained positive outscores
	// every retained negative.
	if want != 1.0 {
		t.Fatalf("test vector broken: expected separable tail, AUC %v", want)
	}
}

// TestWindowBestThreshold checks the accuracy-maximizing cut on a window
// whose optimum is away from 0.5 — the miscalibrated-score case the online
// recalibration exists for.
func TestWindowBestThreshold(t *testing.T) {
	w := NewWindow(8)
	// Scores are systematically deflated: positives score 0.30–0.45,
	// negatives 0.05–0.20. Any cut in (0.20, 0.30) classifies perfectly;
	// a 0.5 cut would collapse everything to class 0.
	pos := []float64{0.30, 0.35, 0.40, 0.45}
	neg := []float64{0.05, 0.10, 0.15, 0.20}
	for _, s := range pos {
		w.Add(0, 1, s)
	}
	for _, s := range neg {
		w.Add(0, 0, s)
	}
	got := w.BestThreshold()
	if got <= 0.20 || got >= 0.30 {
		t.Fatalf("best threshold = %v, want in (0.20, 0.30)", got)
	}
	// Degenerate windows keep the neutral cut.
	one := NewWindow(4)
	one.Add(1, 1, 0.9)
	one.Add(1, 1, 0.8)
	if got := one.BestThreshold(); got != 0.5 {
		t.Fatalf("single-class best threshold = %v, want 0.5", got)
	}
}

// TestDriftDetectorKnownAnswer checks arming, the exact trigger boundary,
// and re-baselining after Reset.
func TestDriftDetectorKnownAnswer(t *testing.T) {
	d := NewDriftDetector(0.10, 3)
	// Not armed yet: even a terrible value cannot fire.
	if d.Observe(0.90) || d.Observe(0.10) {
		t.Fatal("detector fired before MinObs observations")
	}
	// Third observation arms it. Best so far is 0.90; 0.81 is within the
	// 0.10 tolerance, 0.79 is outside.
	if d.Observe(0.81) {
		t.Fatal("fired at drop 0.09 with tolerance 0.10")
	}
	if !d.Observe(0.79) {
		t.Fatal("did not fire at drop 0.11 with tolerance 0.10")
	}
	if best := d.Best(); best != 0.90 {
		t.Fatalf("best = %v, want 0.90", best)
	}
	// Reset re-baselines: the recovered (lower) level is the new normal.
	d.Reset()
	if d.Observe(0.70) || d.Observe(0.70) {
		t.Fatal("fired while re-arming after Reset")
	}
	if d.Observe(0.65) {
		t.Fatal("fired at drop 0.05 from new baseline")
	}
	if !d.Observe(0.55) {
		t.Fatal("did not fire at drop 0.15 from new baseline")
	}
}

// TestDegenerateWindowConventionUnified: empty windows report NaN from both
// metrics (previously Accuracy said 0 — indistinguishable from total
// collapse — while AUC said chance 0.5), and feeding those NaNs to a
// DriftDetector must neither signal drift nor poison its baseline.
func TestDegenerateWindowConventionUnified(t *testing.T) {
	w := NewWindow(4)
	if !math.IsNaN(w.Accuracy()) || !math.IsNaN(w.AUC()) {
		t.Fatalf("empty window: Accuracy=%v AUC=%v, want NaN/NaN", w.Accuracy(), w.AUC())
	}
	if got := w.BestThreshold(); got != 0.5 {
		t.Fatalf("empty window BestThreshold = %v, want neutral 0.5", got)
	}

	d := NewDriftDetector(0.1, 2)
	for i := 0; i < 5; i++ {
		if d.Observe(w.Accuracy()) {
			t.Fatal("NaN observation signaled drift")
		}
	}
	// A real baseline arriving after the NaNs must behave normally.
	if d.Observe(0.9) {
		t.Fatal("baseline observation signaled drift")
	}
	if d.Observe(0.85) {
		t.Fatal("within-tolerance observation signaled drift")
	}
	if !d.Observe(0.7) {
		t.Fatal("0.2 drop below best did not signal drift")
	}
}

// TestStatsGatedUntilWarmup: pipeline snapshots must not publish window
// metrics that look like a regression before the window has data, and must
// flag full-window measurements via WindowReady.
func TestStatsGatedUntilWarmup(t *testing.T) {
	params := core.DefaultParams()
	params.MCUs = 8
	params.ReceptiveField = 1.0
	params.Taupdt = 0.05
	params.BatchSize = 32
	params.UnsupervisedEpochs = 1
	params.SupervisedEpochs = 1
	cfg := Config{
		Backend: "parallel", Workers: 1, Params: params, Bins: 4,
		Warmup: 128, Window: 64, PublishEvery: -1, StructuralEvery: 4096,
	}
	p, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Warmed || st.WindowReady {
		t.Fatalf("idle pipeline claims Warmed=%v WindowReady=%v", st.Warmed, st.WindowReady)
	}
	if st.WindowAccuracy != 0 || st.WindowAUC != 0 {
		t.Fatalf("idle pipeline published metrics %v/%v", st.WindowAccuracy, st.WindowAUC)
	}
	if math.IsNaN(st.WindowAccuracy) || math.IsNaN(st.WindowAUC) {
		t.Fatal("Stats leaked NaN (not JSON-safe)")
	}

	// Stream separable labeled events through Run to warm up and fill the
	// window, then the gate must open.
	rng := rand.New(rand.NewSource(6))
	ch := make(chan Event, 1024)
	for i := 0; i < 1024; i++ {
		label := i % 2
		features := make([]float64, 4)
		for f := range features {
			features[f] = float64(label) + 0.25*rng.NormFloat64()
		}
		ch <- Event{Features: features, Label: label}
	}
	close(ch)
	if err := p.Run(context.Background(), ChanSource(ch)); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if !st.Warmed || !st.WindowReady {
		t.Fatalf("after full stream: Warmed=%v WindowReady=%v", st.Warmed, st.WindowReady)
	}
	if st.WindowAccuracy <= 0 || math.IsNaN(st.WindowAccuracy) {
		t.Fatalf("ready window accuracy %v", st.WindowAccuracy)
	}
}

// TestNewRejectsFloat32WithoutKernels: a reduced-precision config on a
// backend with no float32 kernel set must fail at construction, not panic
// mid-ingest when bootstrap builds the network.
func TestNewRejectsFloat32WithoutKernels(t *testing.T) {
	params := core.DefaultParams()
	params.Precision = core.Float32
	if _, err := New(Config{Backend: "fpgasim", Params: params}, nil); err == nil {
		t.Fatal("stream.New accepted Precision=float32 on fpgasim")
	}
	if _, err := New(Config{Backend: "parallel", Params: params}, nil); err != nil {
		t.Fatalf("stream.New rejected a valid float32 config: %v", err)
	}
}
