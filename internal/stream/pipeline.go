package stream

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/obs"
	"streambrain/internal/sgd"
)

// Config tunes the continual-learning pipeline. The zero value of every
// field selects a sensible default, so Config{} is runnable.
type Config struct {
	// Backend names the compute backend ("" = "parallel"); Workers sets its
	// worker-team size (0 = GOMAXPROCS).
	Backend string
	Workers int
	// Params holds the BCPNN hyperparameters (zero value = DefaultParams).
	Params core.Params
	// HybridSGD replaces the BCPNN classification layer with the SGD
	// softmax readout — the paper's best-performing configuration. The SGD
	// step is itself a per-batch update, so it streams as naturally as the
	// trace rule. SGD configures it (zero value = sgd.DefaultConfig).
	HybridSGD bool
	SGD       sgd.Config
	// Classes is the label arity (default 2, the Higgs signal/background
	// problem).
	Classes int
	// Bins is the quantile-encoding bin count (default 10, as in §V).
	Bins int
	// Warmup is how many events are buffered to fit the first encoder and
	// warm-start the model before streaming training begins (default 2048).
	Warmup int
	// BatchSize is the training micro-batch (default Params.BatchSize).
	BatchSize int
	// Window is the sliding prequential-metric window in events
	// (default 2048).
	Window int
	// DriftDrop is the windowed-accuracy regression (absolute) that flags
	// drift (default 0.10); DriftMinObs is how many full-window batches the
	// detector observes before arming (default 8).
	DriftDrop   float64
	DriftMinObs int
	// PublishEvery is the number of events between bundle snapshots
	// (default 8192; negative disables periodic publishing — the post-warmup
	// and end-of-stream snapshots still happen).
	PublishEvery int
	// RefitEvery is the number of events between encoder refits from the
	// reservoir sample (0 = refit only on drift).
	RefitEvery int
	// StructuralEvery is the number of events between structural-plasticity
	// rounds — the stream's stand-in for "once per epoch" (default Warmup).
	StructuralEvery int
	// ReservoirSize is the uniform-sample capacity backing encoder refits
	// (default 4096).
	ReservoirSize int
	// Obs is the telemetry registry the pipeline records into (ingest rate,
	// drift events, refit duration — DESIGN.md §11). Nil disables metric
	// recording at the cost of a nil check per call.
	Obs *obs.Registry
	// Tracer samples ingest-step lifecycles (encode → predict → partial_fit
	// → window_update → drift_check → publish spans). Nil disables tracing.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = "parallel"
	}
	if c.Params == (core.Params{}) {
		c.Params = core.DefaultParams()
	}
	if c.Classes == 0 {
		c.Classes = 2
	}
	if c.Bins == 0 {
		c.Bins = 10
	}
	if c.Warmup <= 0 {
		c.Warmup = 2048
	}
	if c.BatchSize <= 0 {
		c.BatchSize = c.Params.BatchSize
	}
	if c.Window <= 0 {
		c.Window = 2048
	}
	if c.DriftDrop <= 0 {
		c.DriftDrop = 0.10
	}
	if c.DriftMinObs <= 0 {
		c.DriftMinObs = 8
	}
	if c.PublishEvery == 0 {
		c.PublishEvery = 8192
	}
	if c.StructuralEvery <= 0 {
		c.StructuralEvery = c.Warmup
	}
	if c.ReservoirSize <= 0 {
		c.ReservoirSize = 4096
	}
	return c
}

// Stats is a point-in-time snapshot of pipeline progress; safe to read from
// other goroutines while Run ingests.
type Stats struct {
	// Events counts ingested events (warmup included); Batches counts
	// micro-batch training steps after warmup.
	Events  int64
	Batches int64
	// Publishes, Refits, Drifts and StructuralRounds count the respective
	// lifecycle actions.
	Publishes        int64
	Refits           int64
	Drifts           int64
	StructuralRounds int64
	// Warmed reports that the first model exists (warmup buffer trained).
	Warmed bool
	// WindowReady reports that the sliding window has filled at least once
	// since warmup, i.e. WindowAccuracy and WindowAUC are measured on a full
	// window. Until then both stay 0 — consumers (dashboards, drift alarms
	// built on Stats) must treat them as "not yet measured", not as a
	// regression to zero. The pipeline's own DriftDetector is gated the same
	// way and never sees pre-warmup values.
	WindowReady bool
	// WindowLen, WindowAccuracy and WindowAUC describe the sliding
	// prequential window; Threshold is the current calibrated decision cut.
	WindowLen      int
	WindowAccuracy float64
	WindowAUC      float64
	Threshold      float64
}

// Pipeline is the online continual-learning loop. Build one with New, feed
// it with Run (single goroutine), observe it with Stats (any goroutine).
type Pipeline struct {
	cfg    Config
	pub    Publisher
	be     backend.Backend
	m      *obsMetrics
	tracer *obs.Tracer

	// net and enc are owned by the Run goroutine; publishers receive
	// serialized snapshots, never live pointers across goroutines.
	net *core.Network
	enc *data.Encoder
	res *data.Reservoir

	mu    sync.Mutex // guards win, drift, stats, since* counters
	win   *Window
	drift *DriftDetector
	stats Stats

	sincePublish    int
	sinceRefit      int
	sinceStructural int
}

// New validates the configuration and builds an idle pipeline. pub may be
// nil (train-only; snapshots are skipped).
func New(cfg Config, pub Publisher) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("stream: %d classes, need >= 2", cfg.Classes)
	}
	if cfg.Bins < 2 {
		return nil, fmt.Errorf("stream: %d bins, need >= 2", cfg.Bins)
	}
	be, err := backend.New(cfg.Backend, cfg.Workers)
	if err != nil {
		return nil, err
	}
	if cfg.Params.Precision.Is32() {
		// Fail at construction, not deep into ingest when bootstrap builds
		// the network: the reduced-precision path needs a float32 kernel
		// set on the chosen backend.
		if _, err := backend.New32(cfg.Backend, cfg.Workers); err != nil {
			return nil, fmt.Errorf("stream: Precision %q: %w", cfg.Params.Precision, err)
		}
	}
	return &Pipeline{
		cfg:    cfg,
		pub:    pub,
		be:     be,
		m:      newObsMetrics(cfg.Obs),
		tracer: cfg.Tracer,
		res:    data.NewReservoir(cfg.ReservoirSize, cfg.Params.Seed+101),
		win:    NewWindow(cfg.Window),
		drift:  NewDriftDetector(cfg.DriftDrop, cfg.DriftMinObs),
		stats:  Stats{Threshold: 0.5},
	}, nil
}

// Stats returns a snapshot of pipeline progress. Window metrics are
// published only once the window holds data (and flagged measured-on-a-full-
// window via WindowReady); before that they are 0 with WindowReady false,
// never NaN, so snapshots stay JSON-safe.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.WindowLen = p.win.Len()
	s.WindowReady = s.Warmed && p.win.Full()
	if p.win.Len() > 0 {
		s.WindowAccuracy = p.win.Accuracy()
		s.WindowAUC = p.win.AUC()
	}
	return s
}

// Run ingests the source until it is exhausted or ctx is canceled: warmup
// buffering and bootstrap training first, then micro-batched prequential
// ingest (predict → window metrics → train) with periodic encoder refits,
// structural-plasticity rounds, and bundle publishes. Run blocks; it must
// be called once, from one goroutine.
func (p *Pipeline) Run(ctx context.Context, src Source) error {
	// Phase 1: buffer the warmup sample.
	rows := make([][]float64, 0, p.cfg.Warmup)
	labels := make([]int, 0, p.cfg.Warmup)
	for len(rows) < p.cfg.Warmup {
		if err := ctx.Err(); err != nil {
			return err
		}
		ev, ok := src.Next()
		if !ok {
			break
		}
		rows = append(rows, append([]float64(nil), ev.Features...))
		labels = append(labels, ev.Label)
		p.res.Add(ev.Features)
	}
	if len(rows) == 0 {
		return fmt.Errorf("stream: source ended before any event arrived")
	}
	if err := p.bootstrap(rows, labels); err != nil {
		return err
	}

	// Phase 2: steady-state micro-batched ingest. Batch rows are reused
	// buffers — events are copied in, so sources may recycle their slices.
	batchRows := make([][]float64, p.cfg.BatchSize)
	batchLabels := make([]int, 0, p.cfg.BatchSize)
	n := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		ev, ok := src.Next()
		if !ok {
			break
		}
		batchRows[n] = append(batchRows[n][:0], ev.Features...)
		batchLabels = append(batchLabels, ev.Label)
		n++
		p.res.Add(ev.Features)
		if n == p.cfg.BatchSize {
			if err := p.step(batchRows[:n], batchLabels); err != nil {
				return err
			}
			n = 0
			batchLabels = batchLabels[:0]
		}
	}
	if n > 0 {
		if err := p.step(batchRows[:n], batchLabels); err != nil {
			return err
		}
	}
	// End-of-stream snapshot, so nothing trained since the last publish is
	// lost.
	p.mu.Lock()
	pending := p.sincePublish > 0
	p.mu.Unlock()
	if pending {
		return p.publish()
	}
	return nil
}

// bootstrap fits the encoder on the warmup buffer, warm-starts the network
// with the standard two-phase batch trainer (reusing the batch kernels and
// threshold calibration wholesale), and publishes the first snapshot.
func (p *Pipeline) bootstrap(rows [][]float64, labels []int) error {
	enc := data.FitEncoderRows(rows, p.cfg.Bins)
	encoded, err := enc.TransformBatch(rows, labels, p.cfg.Classes)
	if err != nil {
		return fmt.Errorf("stream: warmup: %w", err)
	}
	net := core.NewNetwork(p.be, enc.Features(), p.cfg.Bins, p.cfg.Classes, p.cfg.Params)
	if p.cfg.HybridSGD {
		scfg := p.cfg.SGD
		if scfg == (sgd.Config{}) {
			scfg = sgd.DefaultConfig()
		}
		rng := rand.New(rand.NewSource(p.cfg.Params.Seed + 1))
		net.SetReadout(sgd.NewSoftmax(net.Hidden.Units(), p.cfg.Classes, scfg, rng))
	}
	net.Train(encoded)
	p.net, p.enc = net, enc
	p.mu.Lock()
	p.stats.Warmed = true
	p.stats.Events += int64(len(rows))
	p.stats.Threshold = net.Threshold()
	p.mu.Unlock()
	p.m.events.Add(uint64(len(rows)))
	p.m.threshold.Set(net.Threshold())
	return p.publish()
}

// step runs one prequential micro-batch: predict with the current model,
// fold the results into the sliding window, then train on the batch, and
// finally apply whatever lifecycle actions (drift response, encoder refit,
// structural plasticity, publish) came due.
func (p *Pipeline) step(rows [][]float64, labels []int) error {
	stepStart := time.Now()
	tr := p.tracer.Sample("ingest")
	defer tr.Finish()

	sp := tr.Start("encode")
	encoded, err := p.enc.TransformBatch(rows, labels, p.cfg.Classes)
	sp.End()
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	sp = tr.Start("predict")
	pred, score := p.net.Predict(encoded)
	sp.End()
	sp = tr.Start("partial_fit")
	p.net.PartialFit(encoded.Idx, labels)
	sp.End()

	sp = tr.Start("window_update")
	p.mu.Lock()
	for i := range pred {
		p.win.Add(pred[i], labels[i], score[i])
	}
	p.stats.Events += int64(len(rows))
	p.stats.Batches++
	p.sincePublish += len(rows)
	p.sinceRefit += len(rows)
	p.sinceStructural += len(rows)
	sp.End()
	sp = tr.Start("drift_check")
	drifted := false
	if p.win.Full() {
		drifted = p.drift.Observe(p.win.Accuracy())
	}
	if drifted {
		p.stats.Drifts++
		p.drift.Reset()
	}
	sp.End()
	refit := drifted || (p.cfg.RefitEvery > 0 && p.sinceRefit >= p.cfg.RefitEvery)
	structural := p.sinceStructural >= p.cfg.StructuralEvery
	publish := p.cfg.PublishEvery > 0 && p.sincePublish >= p.cfg.PublishEvery
	// AUC snapshots and sorts the whole window — too expensive to pay per
	// step when nobody is scraping, so the gauges only update on a live
	// registry.
	live := p.m.live()
	var winAcc, winAUC float64
	if live && p.win.Len() > 0 {
		winAcc, winAUC = p.win.Accuracy(), p.win.AUC()
	}
	p.mu.Unlock()

	p.m.events.Add(uint64(len(rows)))
	p.m.batches.Inc()
	if drifted {
		p.m.drifts.Inc()
	}
	if live {
		p.m.windowAcc.Set(winAcc)
		p.m.windowAUC.Set(winAUC)
	}

	// Drift response: re-anchor the encoder on the reservoir (which tracks
	// the shifted input distribution) and recalibrate the decision cut at
	// the next publish; the trace EMA re-adapts on its own.
	if refit {
		refitStart := time.Now()
		sp = tr.Start("refit")
		if err := p.enc.Refit(p.res.Rows()); err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		sp.End()
		p.m.refit.Observe(time.Since(refitStart))
		p.mu.Lock()
		p.stats.Refits++
		p.sinceRefit = 0
		p.mu.Unlock()
	}
	if structural {
		sp = tr.Start("structural")
		p.net.Hidden.StructuralUpdate()
		sp.End()
		p.m.structural.Inc()
		p.mu.Lock()
		p.stats.StructuralRounds++
		p.sinceStructural = 0
		p.mu.Unlock()
	}
	if publish {
		sp = tr.Start("publish")
		err := p.publish()
		sp.End()
		p.m.step.Observe(time.Since(stepStart))
		return err
	}
	p.m.step.Observe(time.Since(stepStart))
	return nil
}

// publish recalibrates the binary decision threshold on the sliding window
// and hands the pipeline's publisher a snapshot.
func (p *Pipeline) publish() error {
	p.mu.Lock()
	if p.cfg.Classes == 2 && p.win.Len() > 0 {
		t := p.win.BestThreshold()
		p.net.SetThreshold(t)
		p.stats.Threshold = t
	}
	seq := int(p.stats.Publishes) + 1
	p.mu.Unlock()

	if p.pub != nil {
		if err := p.pub.Publish(p.net, p.enc, seq); err != nil {
			return fmt.Errorf("stream: publish #%d: %w", seq, err)
		}
	}
	p.mu.Lock()
	p.stats.Publishes++
	p.sincePublish = 0
	threshold := p.stats.Threshold
	p.mu.Unlock()
	p.m.publishes.Inc()
	p.m.threshold.Set(threshold)
	return nil
}
