package stream

import (
	"math"

	"streambrain/internal/metrics"
)

// Window is a fixed-capacity ring of prequential results (predict-then-train
// on each arriving event) over the most recent events. Accuracy is O(1) via
// a running correct count; AUC is computed on demand from the windowed
// scores. This is the stream analogue of the held-out test set: every
// prediction it aggregates was made before the model trained on the event.
type Window struct {
	pred  []int
	label []int
	score []float64

	cap     int
	n       int
	head    int // next insert position == oldest element when full
	correct int
}

// NewWindow builds an empty window over the last capacity events.
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		panic("stream: NewWindow needs capacity >= 1")
	}
	return &Window{
		pred:  make([]int, capacity),
		label: make([]int, capacity),
		score: make([]float64, capacity),
		cap:   capacity,
	}
}

// Add records one prequential result, evicting the oldest when full.
func (w *Window) Add(pred, label int, score float64) {
	if w.n == w.cap {
		if w.pred[w.head] == w.label[w.head] {
			w.correct--
		}
	} else {
		w.n++
	}
	w.pred[w.head] = pred
	w.label[w.head] = label
	w.score[w.head] = score
	if pred == label {
		w.correct++
	}
	w.head = (w.head + 1) % w.cap
}

// Len returns the number of results currently windowed.
func (w *Window) Len() int { return w.n }

// Full reports whether the window has reached capacity.
func (w *Window) Full() bool { return w.n == w.cap }

// Accuracy returns the windowed accuracy. An empty window returns NaN —
// the unified degenerate-window convention (AUC matches): "no data" must be
// distinguishable from "0% correct", otherwise a consumer comparing
// pre-warmup stats against a baseline sees a phantom total regression.
// Callers gate on Len or Full before treating the value as a metric.
func (w *Window) Accuracy() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return float64(w.correct) / float64(w.n)
}

// snapshot copies the windowed scores and labels in no particular order
// (AUC and threshold sweeps are order-free).
func (w *Window) snapshot() (score []float64, label []int) {
	return append([]float64(nil), w.score[:w.n]...),
		append([]int(nil), w.label[:w.n]...)
}

// AUC returns the windowed ROC area. An empty window returns NaN, matching
// Accuracy's degenerate-window convention (it used to return chance level
// 0.5 while Accuracy returned 0 — two different "no data" encodings, one of
// which looked like a catastrophic regression). A non-empty single-class
// window still reports 0.5 per metrics.AUC's convention: there chance level
// is a statement about the data, not an absence of it.
func (w *Window) AUC() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	score, label := w.snapshot()
	return metrics.AUC(score, label)
}

// BestThreshold sweeps the class-1 score cut maximizing windowed accuracy —
// the online counterpart of core's CalibrateThreshold, run on the sliding
// window before each publish. Degenerate windows (empty, single class) keep
// the neutral 0.5.
func (w *Window) BestThreshold() float64 {
	if w.n == 0 {
		return 0.5
	}
	score, label := w.snapshot()
	pos := 0
	for _, y := range label {
		pos += y
	}
	if pos == 0 || pos == len(label) {
		return 0.5
	}
	return metrics.BestAccuracyThreshold(score, label)
}

// DriftDetector flags regression of a windowed metric against the best level
// it has seen: once armed (MinObs observations), an observation more than
// Drop below the best-so-far signals drift. This windowed-metric regression
// test is a deliberately simple member of the DDM family — the pipeline uses
// it to trigger encoder refits and threshold recalibration, and Reset
// re-baselines after the response so one regime change fires once.
type DriftDetector struct {
	// Drop is the absolute metric decrease that signals drift.
	Drop float64
	// MinObs is the number of observations before the detector arms.
	MinObs int

	best float64
	obs  int
}

// NewDriftDetector builds a detector flagging drops larger than drop after
// minObs observations.
func NewDriftDetector(drop float64, minObs int) *DriftDetector {
	return &DriftDetector{Drop: drop, MinObs: minObs, best: math.Inf(-1)}
}

// Observe feeds one metric value and reports whether drift is signaled.
// NaN observations (the degenerate-window convention of Accuracy/AUC) never
// signal and never move the baseline: every comparison against NaN is false.
// Callers should still gate on Window.Full — a NaN keeps the detector safe,
// but it also burns one MinObs arming observation.
func (d *DriftDetector) Observe(metric float64) bool {
	d.obs++
	if metric > d.best {
		d.best = metric
	}
	if d.obs < d.MinObs {
		return false
	}
	return metric < d.best-d.Drop
}

// Best returns the highest metric observed since the last Reset.
func (d *DriftDetector) Best() float64 { return d.best }

// Reset re-baselines the detector (called after a drift response so the
// recovered metric level becomes the new reference).
func (d *DriftDetector) Reset() {
	d.best = math.Inf(-1)
	d.obs = 0
}
