package mlp

import (
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/metrics"
	"streambrain/internal/tensor"
)

// xorData builds the classic non-linearly-separable XOR-in-quadrants task.
func xorData(rng *rand.Rand, n int) (*tensor.Matrix, []int) {
	x := tensor.NewMatrix(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if (a > 0) != (b > 0) {
			y[i] = 1
		}
	}
	return x, y
}

func TestMLPSolvesXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := xorData(rng, 1500)
	cfg := DefaultConfig()
	cfg.Hidden = []int{16}
	cfg.Epochs = 60
	cfg.LearningRate = 0.05
	m := New(2, 2, cfg)
	m.Fit(x, y)
	pred, _ := m.Predict(x)
	if acc := metrics.Accuracy(pred, y); acc < 0.95 {
		t.Fatalf("XOR accuracy %.3f — the hidden layer is not learning", acc)
	}
}

func TestLinearModelCannotSolveXOR(t *testing.T) {
	// Sanity check of the test itself: without hidden layers the same task
	// must stay near chance, proving XOR really requires the nonlinearity.
	rng := rand.New(rand.NewSource(2))
	x, y := xorData(rng, 1500)
	cfg := DefaultConfig()
	cfg.Hidden = nil
	cfg.Epochs = 30
	m := New(2, 2, cfg)
	m.Fit(x, y)
	pred, _ := m.Predict(x)
	if acc := metrics.Accuracy(pred, y); acc > 0.65 {
		t.Fatalf("linear model got %.3f on XOR; test data is broken", acc)
	}
}

func TestReLUVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := xorData(rng, 1500)
	cfg := DefaultConfig()
	cfg.Hidden = []int{24}
	cfg.Act = ReLU
	cfg.Epochs = 60
	cfg.LearningRate = 0.05
	m := New(2, 2, cfg)
	m.Fit(x, y)
	pred, _ := m.Predict(x)
	if acc := metrics.Accuracy(pred, y); acc < 0.93 {
		t.Fatalf("ReLU XOR accuracy %.3f", acc)
	}
}

func TestTwoHiddenLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := xorData(rng, 1200)
	cfg := DefaultConfig()
	cfg.Hidden = []int{16, 8}
	cfg.Epochs = 80
	cfg.LearningRate = 0.04
	m := New(2, 2, cfg)
	m.Fit(x, y)
	pred, _ := m.Predict(x)
	if acc := metrics.Accuracy(pred, y); acc < 0.93 {
		t.Fatalf("deep XOR accuracy %.3f", acc)
	}
}

func TestPredictScoresValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := xorData(rng, 200)
	cfg := DefaultConfig()
	cfg.Epochs = 2
	m := New(2, 2, cfg)
	m.Fit(x, y)
	_, score := m.Predict(x)
	for i, s := range score {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := xorData(rng, 300)
	run := func() []int {
		cfg := DefaultConfig()
		cfg.Epochs = 5
		cfg.Seed = 9
		m := New(2, 2, cfg)
		m.Fit(x, y)
		pred, _ := m.Predict(x)
		return pred
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}
