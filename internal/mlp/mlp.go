// Package mlp implements a small multilayer perceptron trained with
// backpropagation and SGD+momentum. It exists as the related-work baseline:
// §VI of the paper cites shallow neural networks reaching 81.6% AUC on the
// Higgs task (vs BCPNN's 75.5–76.4%), and the E6 comparison table
// regenerates that ordering. It is also the methodological foil — the paper
// repeatedly contrasts BCPNN's local learning against exactly this kind of
// gradient backpropagation.
package mlp

import (
	"math"
	"math/rand"

	"streambrain/internal/tensor"
)

// Activation selects the hidden nonlinearity.
type Activation int

// Supported activations.
const (
	ReLU Activation = iota
	Tanh
)

// Config describes the network and its optimizer.
type Config struct {
	// Hidden lists the width of each hidden layer (empty = logistic
	// regression).
	Hidden []int
	// Act is the hidden activation function.
	Act Activation
	// LearningRate, Momentum, L2 configure the SGD optimizer.
	LearningRate float64
	Momentum     float64
	L2           float64
	// Epochs and BatchSize control the training loop.
	Epochs    int
	BatchSize int
	// Seed drives weight init and shuffling.
	Seed int64
}

// DefaultConfig returns the baseline configuration used by the E6 table:
// one hidden layer of 64 tanh units, the "shallow neural network" of §VI.
func DefaultConfig() Config {
	return Config{
		Hidden:       []int{64},
		Act:          Tanh,
		LearningRate: 0.03,
		Momentum:     0.9,
		L2:           1e-4,
		Epochs:       15,
		BatchSize:    64,
		Seed:         1,
	}
}

// layer is one dense layer with its momentum buffers.
type layer struct {
	w, vw *tensor.Matrix
	b, vb []float64
}

func newLayer(in, out int, scale float64, rng *rand.Rand) *layer {
	l := &layer{
		w:  tensor.NewMatrix(in, out),
		vw: tensor.NewMatrix(in, out),
		b:  make([]float64, out),
		vb: make([]float64, out),
	}
	for i := range l.w.Data {
		l.w.Data[i] = scale * rng.NormFloat64()
	}
	return l
}

// MLP is a feed-forward network with a softmax output layer.
type MLP struct {
	cfg     Config
	layers  []*layer
	classes int
	rng     *rand.Rand
}

// New builds an MLP for `in` features and `classes` output classes.
func New(in, classes int, cfg Config) *MLP {
	rng := rand.New(rand.NewSource(cfg.Seed))
	dims := append([]int{in}, cfg.Hidden...)
	dims = append(dims, classes)
	m := &MLP{cfg: cfg, classes: classes, rng: rng}
	for i := 0; i+1 < len(dims); i++ {
		// He-style init keeps activations scaled across depths.
		scale := math.Sqrt(2 / float64(dims[i]))
		m.layers = append(m.layers, newLayer(dims[i], dims[i+1], scale, rng))
	}
	return m
}

func (m *MLP) activate(x float64) float64 {
	switch m.cfg.Act {
	case Tanh:
		return math.Tanh(x)
	default:
		if x < 0 {
			return 0
		}
		return x
	}
}

// activateGrad returns dσ/dz given the *activated* value a.
func (m *MLP) activateGrad(a float64) float64 {
	switch m.cfg.Act {
	case Tanh:
		return 1 - a*a
	default:
		if a > 0 {
			return 1
		}
		return 0
	}
}

// forward computes all layer activations for a batch; out[k] is the
// activation after layer k (out[len-1] holds softmax probabilities).
func (m *MLP) forward(x *tensor.Matrix) []*tensor.Matrix {
	acts := make([]*tensor.Matrix, len(m.layers))
	cur := x
	for k, l := range m.layers {
		z := tensor.NewMatrix(cur.Rows, l.w.Cols)
		tensor.MatMulBlocked(z, cur, l.w, 0)
		for r := 0; r < z.Rows; r++ {
			row := z.Row(r)
			for c, b := range l.b {
				row[c] += b
			}
		}
		if k == len(m.layers)-1 {
			tensor.SoftmaxGroups(z, 1, m.classes, 1)
		} else {
			for i, v := range z.Data {
				z.Data[i] = m.activate(v)
			}
		}
		acts[k] = z
		cur = z
	}
	return acts
}

// trainBatch runs one backprop step on the batch.
func (m *MLP) trainBatch(x *tensor.Matrix, labels []int) {
	acts := m.forward(x)
	b := x.Rows
	// delta at the output: (p − y)/B.
	delta := acts[len(acts)-1].Clone()
	for r, y := range labels {
		row := delta.Row(r)
		row[y] -= 1
		tensor.Scale(1/float64(b), row)
	}
	lr, mu, l2 := m.cfg.LearningRate, m.cfg.Momentum, m.cfg.L2
	for k := len(m.layers) - 1; k >= 0; k-- {
		l := m.layers[k]
		input := x
		if k > 0 {
			input = acts[k-1]
		}
		gradW := tensor.NewMatrix(l.w.Rows, l.w.Cols)
		tensor.MatMulATB(gradW, input, delta)
		if l2 > 0 {
			tensor.Axpy(l2, l.w.Data, gradW.Data)
		}
		gradB := make([]float64, len(l.b))
		for r := 0; r < delta.Rows; r++ {
			row := delta.Row(r)
			for c, v := range row {
				gradB[c] += v
			}
		}
		if k > 0 {
			// delta_prev = (delta · Wᵀ) ⊙ σ'(a_prev)
			prev := tensor.NewMatrix(delta.Rows, l.w.Rows)
			tensor.MatMulNaive(prev, delta, l.w.Transpose())
			prevAct := acts[k-1]
			for i, v := range prev.Data {
				prev.Data[i] = v * m.activateGrad(prevAct.Data[i])
			}
			delta = prev
		}
		for i := range l.vw.Data {
			l.vw.Data[i] = mu*l.vw.Data[i] - lr*gradW.Data[i]
			l.w.Data[i] += l.vw.Data[i]
		}
		for c := range l.vb {
			l.vb[c] = mu*l.vb[c] - lr*gradB[c]
			l.b[c] += l.vb[c]
		}
	}
}

// Fit trains the network on (x, labels) for cfg.Epochs epochs.
func (m *MLP) Fit(x *tensor.Matrix, labels []int) {
	n := x.Rows
	for e := 0; e < m.cfg.Epochs; e++ {
		perm := m.rng.Perm(n)
		for lo := 0; lo < n; lo += m.cfg.BatchSize {
			hi := lo + m.cfg.BatchSize
			if hi > n {
				hi = n
			}
			bx := tensor.NewMatrix(hi-lo, x.Cols)
			bl := make([]int, hi-lo)
			for i := lo; i < hi; i++ {
				copy(bx.Row(i-lo), x.Row(perm[i]))
				bl[i-lo] = labels[perm[i]]
			}
			m.trainBatch(bx, bl)
		}
	}
}

// Predict returns the predicted class and the class-1 probability of every
// row (the score used for AUC).
func (m *MLP) Predict(x *tensor.Matrix) (pred []int, score []float64) {
	acts := m.forward(x)
	probs := acts[len(acts)-1]
	pred = make([]int, x.Rows)
	score = make([]float64, x.Rows)
	for r := 0; r < x.Rows; r++ {
		row := probs.Row(r)
		pred[r] = tensor.ArgMaxRow(row)
		if m.classes >= 2 {
			score[r] = row[1]
		}
	}
	return pred, score
}
