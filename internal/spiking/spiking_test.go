package spiking

import (
	"math"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.StepsPerSample = 0 },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.RateHigh = 0 },
		func(c *Config) { c.RateHigh = 2000 }, // rate·dt > 1
		func(c *Config) { c.TauZ = 0 },
		func(c *Config) { c.TauP = 0 },
		func(c *Config) { c.Eps = 0 },
	}
	for i, mut := range bad {
		c := DefaultConfig()
		mut(&c)
		if c.Validate() == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

// TestZTraceConvergesToRate: presenting a constant pattern long enough, the
// filtered input trace of the hot unit must approach 1 (its normalized
// rate) and cold units must approach RateLow/RateHigh — the spiking↔rate
// correspondence at the input stage.
func TestZTraceConvergesToRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepsPerSample = 4000 // 4 seconds ≫ TauZ
	l := NewLayer(2, 3, 1, 2, cfg)
	l.Present([]int32{0, 3}) // hot units: 0 (hc0), 3 (hc1)
	rates := l.Rates()
	if math.Abs(rates[0]-1) > 0.25 {
		t.Fatalf("hot unit trace %v, want ≈1", rates[0])
	}
	wantCold := cfg.RateLow / cfg.RateHigh
	for _, i := range []int{1, 2, 4, 5} {
		if rates[i] > wantCold+0.1 {
			t.Fatalf("cold unit %d trace %v, want ≈%v", i, rates[i], wantCold)
		}
	}
}

// TestHCUEmitsOneSpikePerStep: WTA sampling must produce exactly
// StepsPerSample spikes per HCU.
func TestHCUEmitsOneSpikePerStep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepsPerSample = 200
	l := NewLayer(3, 2, 2, 4, cfg)
	counts := l.Present([]int32{0, 2, 4})
	for h := 0; h < 2; h++ {
		total := 0
		for m := 0; m < 4; m++ {
			total += counts[h*4+m]
		}
		if total != 200 {
			t.Fatalf("HCU %d emitted %d spikes over 200 steps", h, total)
		}
	}
}

// TestTracesAreProbabilities: all slow traces must stay in [0,1] through a
// long run.
func TestTracesAreProbabilities(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepsPerSample = 300
	l := NewLayer(4, 3, 1, 5, cfg)
	patterns := [][]int32{{0, 3, 6, 9}, {1, 4, 7, 10}, {2, 5, 8, 11}}
	for rep := 0; rep < 6; rep++ {
		l.Present(patterns[rep%3])
	}
	check := func(name string, xs []float64) {
		for i, v := range xs {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("%s[%d] = %v", name, i, v)
			}
		}
	}
	check("Ci", l.Ci)
	check("Cj", l.Cj)
	check("Cij", l.Cij.Data)
}

// TestSpikingApproximatesRateTraces: alternating two disjoint patterns, the
// joint trace between pattern A's hot input and A's dominant hidden unit
// must exceed the independence product Ci·Cj — the same Hebbian correlation
// the rate model builds, here estimated by spike sampling. (Alternation
// keeps the marginals near 0.5; a single repeated pattern would saturate
// them at 1 where joint ≡ product and correlation is undefined.)
func TestSpikingApproximatesRateTraces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepsPerSample = 800
	cfg.TauP = 1.0
	cfg.Seed = 2
	l := NewLayer(2, 2, 1, 3, cfg)
	a := []int32{0, 2}
	b := []int32{1, 3}
	for rep := 0; rep < 8; rep++ {
		l.Present(a)
		l.Present(b)
	}
	// Dominant hidden unit while pattern A is shown.
	countsA := l.Present(a)
	l.Present(b) // keep the alternation balanced
	domA := 0
	for j, c := range countsA {
		if c > countsA[domA] {
			domA = j
		}
	}
	const hotA = 0
	joint := l.Cij.At(hotA, domA)
	product := l.Ci[hotA] * l.Cj[domA]
	if joint <= product*1.1 {
		t.Fatalf("no Hebbian correlation: Cij=%v vs Ci·Cj=%v", joint, product)
	}
}

// TestPatternSeparation: two disjoint input patterns presented alternately
// must drive distinguishable hidden codes (different spike-count argmax) —
// the minimal feature-learning capability.
func TestPatternSeparation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StepsPerSample = 600
	cfg.TauP = 0.5
	cfg.Seed = 4
	l := NewLayer(2, 2, 1, 4, cfg)
	a := []int32{0, 2}
	b := []int32{1, 3}
	for rep := 0; rep < 10; rep++ {
		l.Present(a)
		l.Present(b)
	}
	ca := l.Present(a)
	cb := l.Present(b)
	argmax := func(xs []int) int {
		best := 0
		for i, v := range xs {
			if v > xs[best] {
				best = i
			}
		}
		_ = best
		bi := 0
		for i, v := range xs {
			if v > xs[bi] {
				bi = i
			}
		}
		return bi
	}
	if argmax(ca) == argmax(cb) {
		t.Fatalf("patterns map to the same dominant MCU: %v vs %v", ca, cb)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	run := func() []int {
		cfg := DefaultConfig()
		cfg.StepsPerSample = 150
		cfg.Seed = 9
		l := NewLayer(2, 2, 1, 3, cfg)
		return l.Present([]int32{0, 2})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := DefaultConfig()
	cfg.Dt = -1
	NewLayer(2, 2, 1, 2, cfg)
}
