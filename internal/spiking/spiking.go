// Package spiking implements the spiking formulation of BCPNN. The paper
// notes (§II) that "the BCPNN model supports both spiking- and rate-based
// models of computation, where the former maps well to neuromorphic
// hardware while the latter maps well to accelerators"; internal/core is
// the rate-based accelerator path, and this package is the spiking path.
//
// The chain follows the standard spiking-BCPNN construction (Tully &
// Lansner): Poisson/Bernoulli spikes are low-pass filtered into fast
// synaptic Z-traces, the Z-traces drive slower probability P-traces, and
// the weights are the same Bayesian log-odds of the P-traces as in the
// rate model. In the limit of many timesteps the Z-traces converge to the
// underlying rates, so spiking BCPNN is an unbiased sampling approximation
// of rate BCPNN — a property the tests verify directly.
package spiking

import (
	"fmt"
	"math"
	"math/rand"

	"streambrain/internal/tensor"
)

// Config holds the spiking-simulation parameters.
type Config struct {
	// StepsPerSample is the number of simulation timesteps each input is
	// presented for.
	StepsPerSample int
	// Dt is the timestep length in seconds.
	Dt float64
	// RateHigh and RateLow are the Poisson rates (Hz) of active and
	// inactive input units. One-hot inputs use RateHigh on the hot unit of
	// each hypercolumn and RateLow on the rest.
	RateHigh, RateLow float64
	// TauZ is the fast synaptic trace time constant (seconds).
	TauZ float64
	// TauP is the slow probability trace time constant (seconds).
	TauP float64
	// Eps floors probabilities inside logarithms.
	Eps float64
	// Seed drives spike sampling.
	Seed int64
}

// DefaultConfig returns simulation parameters with biologically-ordinary
// magnitudes (50 Hz active rate, 20 ms synaptic trace, 5 s learning trace).
func DefaultConfig() Config {
	return Config{
		StepsPerSample: 100,
		Dt:             0.001,
		RateHigh:       50,
		RateLow:        0.5,
		TauZ:           0.020,
		TauP:           5.0,
		Eps:            1e-9,
		Seed:           1,
	}
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	switch {
	case c.StepsPerSample < 1:
		return fmt.Errorf("spiking: StepsPerSample %d", c.StepsPerSample)
	case c.Dt <= 0:
		return fmt.Errorf("spiking: Dt %v", c.Dt)
	case c.RateHigh <= 0 || c.RateLow < 0:
		return fmt.Errorf("spiking: rates %v/%v", c.RateHigh, c.RateLow)
	case c.RateHigh*c.Dt > 1:
		return fmt.Errorf("spiking: RateHigh·Dt = %v > 1 (Bernoulli approximation breaks)",
			c.RateHigh*c.Dt)
	case c.TauZ <= 0 || c.TauP <= 0:
		return fmt.Errorf("spiking: taus %v/%v", c.TauZ, c.TauP)
	case c.Eps <= 0:
		return fmt.Errorf("spiking: Eps %v", c.Eps)
	}
	return nil
}

// Layer is a spiking BCPNN hypercolumn layer. Geometry matches the rate
// model: Fi input hypercolumns × Mi units feed H HCUs × M MCUs.
type Layer struct {
	cfg Config
	rng *rand.Rand

	Fi, Mi, H, M int

	// Derived parameters, identical formulas to the rate model.
	W    *tensor.Matrix
	Bias []float64

	// Fast synaptic traces (filtered spike trains).
	Zi []float64
	Zj []float64

	// Slow probability traces.
	Ci  []float64
	Cj  []float64
	Cij *tensor.Matrix

	// scratch
	support []float64
	spikesI []float64
	spikesJ []float64
}

// NewLayer builds a spiking layer.
func NewLayer(fi, mi, h, m int, cfg Config) *Layer {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	in, units := fi*mi, h*m
	l := &Layer{
		cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)),
		Fi: fi, Mi: mi, H: h, M: m,
		W:       tensor.NewMatrix(in, units),
		Bias:    make([]float64, units),
		Zi:      make([]float64, in),
		Zj:      make([]float64, units),
		Ci:      make([]float64, in),
		Cj:      make([]float64, units),
		Cij:     tensor.NewMatrix(in, units),
		support: make([]float64, units),
		spikesI: make([]float64, in),
		spikesJ: make([]float64, units),
	}
	// Priors as in the rate model. Z-traces are measured in expected
	// filtered rate units; normalize by the active rate so Z ≈ P(active).
	pi := 1 / float64(mi)
	pj := 1 / float64(m)
	for i := range l.Ci {
		l.Ci[i] = pi
		l.Zi[i] = pi
	}
	for j := range l.Cj {
		l.Cj[j] = pj
		l.Zj[j] = pj
	}
	for i := 0; i < in; i++ {
		row := l.Cij.Row(i)
		for j := range row {
			row[j] = pi * pj
		}
	}
	l.refresh()
	return l
}

func (l *Layer) refresh() {
	eps := l.cfg.Eps
	logcj := make([]float64, len(l.Cj))
	for j, v := range l.Cj {
		logcj[j] = math.Log(math.Max(v, eps))
		l.Bias[j] = logcj[j]
	}
	for i := 0; i < l.W.Rows; i++ {
		logci := math.Log(math.Max(l.Ci[i], eps))
		crow := l.Cij.Row(i)
		wrow := l.W.Row(i)
		for j := range wrow {
			wrow[j] = math.Log(math.Max(crow[j], eps*eps)) - logci - logcj[j]
		}
	}
}

// Present simulates StepsPerSample timesteps of one one-hot input sample
// (active unit indices per input hypercolumn) with learning enabled, and
// returns the hidden spike counts per MCU (the sample's spiking code).
func (l *Layer) Present(active []int32) []int {
	isHot := make(map[int32]bool, len(active))
	for _, a := range active {
		isHot[a] = true
	}
	counts := make([]int, l.H*l.M)
	dt := l.cfg.Dt
	zdecay := dt / l.cfg.TauZ
	pdecay := dt / l.cfg.TauP
	for step := 0; step < l.cfg.StepsPerSample; step++ {
		// 1. Input spikes: Bernoulli(rate·dt) per unit.
		for i := range l.spikesI {
			rate := l.cfg.RateLow
			if isHot[int32(i)] {
				rate = l.cfg.RateHigh
			}
			l.spikesI[i] = 0
			if l.rng.Float64() < rate*dt {
				l.spikesI[i] = 1
			}
		}
		// 2. Fast trace: Zi tracks the *normalized* spike train so that a
		// tonically active unit converges to Zi ≈ 1 (rate/RateHigh).
		for i, s := range l.spikesI {
			target := s / (l.cfg.RateHigh * dt)
			l.Zi[i] += zdecay * (target - l.Zi[i])
		}
		// 3. Hidden dynamics: support from the filtered input, then one
		// spike per HCU sampled from the per-HCU softmax (WTA sampling —
		// each hypercolumn emits exactly one spike per step, the spiking
		// counterpart of the rate model's probability mass).
		for j := range l.support {
			l.support[j] = l.Bias[j]
		}
		for i, z := range l.Zi {
			if z < 1e-6 {
				continue
			}
			wrow := l.W.Row(i)
			for j := range l.support {
				l.support[j] += z * wrow[j]
			}
		}
		for j := range l.spikesJ {
			l.spikesJ[j] = 0
		}
		for h := 0; h < l.H; h++ {
			seg := l.support[h*l.M : (h+1)*l.M]
			winner := sampleSoftmax(seg, l.rng)
			j := h*l.M + winner
			l.spikesJ[j] = 1
			counts[j]++
		}
		// 4. Fast hidden trace (spike per HCU per step → Zj ≈ win prob).
		for j, s := range l.spikesJ {
			l.Zj[j] += zdecay * (s - l.Zj[j])
		}
		// 5. Slow probability traces from the fast traces.
		for i, zi := range l.Zi {
			l.Ci[i] += pdecay * (clamp01(zi) - l.Ci[i])
			crow := l.Cij.Row(i)
			for j, zj := range l.Zj {
				l.Cij.Data[i*l.Cij.Cols+j] = crow[j] + pdecay*(clamp01(zi)*zj-crow[j])
			}
		}
		for j, zj := range l.Zj {
			l.Cj[j] += pdecay * (zj - l.Cj[j])
		}
	}
	l.refresh()
	return counts
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// sampleSoftmax draws an index from softmax(support) — the stochastic WTA.
func sampleSoftmax(support []float64, rng *rand.Rand) int {
	maxv := support[0]
	for _, v := range support[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	probs := make([]float64, len(support))
	for i, v := range support {
		probs[i] = math.Exp(v - maxv)
		sum += probs[i]
	}
	r := rng.Float64() * sum
	for i, p := range probs {
		r -= p
		if r <= 0 {
			return i
		}
	}
	return len(support) - 1
}

// Rates returns the filtered input trace (≈ per-unit activation
// probability), for the rate-equivalence tests.
func (l *Layer) Rates() []float64 { return l.Zi }
