package experiments

import (
	"os"
	"path/filepath"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/mnistgen"
	"streambrain/internal/viz"
)

// MNISTGrid lays the 784 pixels out as the original 28×28 image.
var MNISTGrid = FieldGrid{Width: mnistgen.Side, Height: mnistgen.Side}

// Fig1Result summarizes the MNIST receptive-field experiment.
type Fig1Result struct {
	// Fields are the final per-HCU receptive-field masks (28×28).
	Fields []viz.Field
	// CenterFraction is the fraction of active connections that fall inside
	// the central 14×14 window, per HCU — the paper's qualitative claim is
	// that fields concentrate on the informative center.
	CenterFraction []float64
	// OverlapFraction is the pairwise-mean fraction of shared active pixels
	// between HCU fields — the paper observes "little-to-no overlap".
	OverlapFraction float64
}

// RunFig1 regenerates experiment E4 (paper Fig. 1): three HCUs trained
// unsupervised on handwritten digits learn receptive fields that migrate to
// the informative image center and tile with little overlap. When
// cfg.OutDir is set the fields are rendered as fig1_fields.png.
func RunFig1(cfg Config, images, hcus, mcus int, rf float64) (*Fig1Result, error) {
	if images <= 0 {
		images = 3000
	}
	if hcus <= 0 {
		hcus = 3
	}
	if mcus <= 0 {
		mcus = 30
	}
	if rf <= 0 {
		rf = 0.08
	}
	ds := mnistgen.Generate(images, cfg.Seed)
	enc := mnistgen.EncodeDualRail(ds, 0.5)
	p := core.DefaultParams()
	p.HCUs = hcus
	p.MCUs = mcus
	p.ReceptiveField = rf
	p.UnsupervisedEpochs = cfg.UnsupEpochs
	p.SupervisedEpochs = 0
	p.SwapsPerEpoch = 24
	// MNIST runs use few images per epoch, so the traces need a faster rate
	// than the Higgs default to converge past the init transient — MI
	// estimates are only trustworthy once the prior has washed out.
	p.Taupdt = 0.03
	p.Seed = cfg.Seed
	be := backend.MustNew(cfg.Backend, cfg.Workers)
	net := core.NewNetwork(be, enc.Hypercolumns, enc.UnitsPerHC, enc.Classes, p)
	net.TrainUnsupervised(enc, cfg.UnsupEpochs)

	res := &Fig1Result{Fields: MaskFields(net.Hidden, MNISTGrid)}
	side := mnistgen.Side
	for h := 0; h < hcus; h++ {
		field := net.Hidden.ReceptiveField(h)
		total, center := 0, 0
		for p := 0; p < len(field); p++ {
			if !field[p] {
				continue
			}
			total++
			x, y := p%side, p/side
			if x >= 7 && x < 21 && y >= 7 && y < 21 {
				center++
			}
		}
		frac := 0.0
		if total > 0 {
			frac = float64(center) / float64(total)
		}
		res.CenterFraction = append(res.CenterFraction, frac)
	}
	// Pairwise overlap of active pixels.
	pairs, overlapSum := 0, 0.0
	for a := 0; a < hcus; a++ {
		fa := net.Hidden.ReceptiveField(a)
		for b := a + 1; b < hcus; b++ {
			fb := net.Hidden.ReceptiveField(b)
			shared, active := 0, 0
			for p := range fa {
				if fa[p] {
					active++
					if fb[p] {
						shared++
					}
				}
			}
			if active > 0 {
				overlapSum += float64(shared) / float64(active)
			}
			pairs++
		}
	}
	if pairs > 0 {
		res.OverlapFraction = overlapSum / float64(pairs)
	}
	cfg.printf("# Fig 1 — MNIST receptive fields (%d HCUs, RF %.0f%%)\n", hcus, rf*100)
	for h, frac := range res.CenterFraction {
		cfg.printf("HCU %d: %.0f%% of connections in the central 14x14 window\n", h, frac*100)
	}
	cfg.printf("mean pairwise field overlap: %.0f%%\n", res.OverlapFraction*100)
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return nil, err
		}
		png := filepath.Join(cfg.OutDir, "fig1_fields.png")
		if err := viz.SavePNG(png, viz.RenderMontage(res.Fields, hcus, 8)); err != nil {
			return nil, err
		}
		cfg.printf("wrote %s\n", png)
	}
	return res, nil
}
