package experiments

import (
	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/viz"
)

// Fig2Result reports the in-situ visualization run.
type Fig2Result struct {
	// VTIFiles are the per-epoch VTI snapshots (one per epoch, §III-B:
	// "the Catalyst pipeline writes the receptive fields as VTI files").
	VTIFiles []string
	// PNGFiles are the per-epoch montage renders.
	PNGFiles []string
	// LiveAddr is the live-view address when a live server was requested.
	LiveAddr string
}

// RunFig2 regenerates experiment E5 (paper Fig. 2): training the Higgs
// network with four HCUs at 40% receptive-field density while the in-situ
// pipeline co-processes every epoch — VTI + PNG snapshots in cfg.OutDir and,
// if live is true, a browser-inspectable live endpoint standing in for the
// ParaView live connection.
func RunFig2(cfg Config, mcus int, live bool) (*Fig2Result, error) {
	if mcus <= 0 {
		mcus = 100
	}
	splits := PrepareHiggs(cfg)
	p := core.DefaultParams()
	p.HCUs = 4
	p.MCUs = mcus
	p.ReceptiveField = 0.40 // "four HCUs with a density of 40%" (§III-B)
	p.UnsupervisedEpochs = cfg.UnsupEpochs
	p.SupervisedEpochs = 0
	p.Seed = cfg.Seed

	res := &Fig2Result{}
	var adaptors viz.Multi
	var vtiw *viz.VTIWriter
	var pngw *viz.PNGWriter
	if cfg.OutDir != "" {
		var err error
		vtiw, err = viz.NewVTIWriter(cfg.OutDir, "fig2_rf")
		if err != nil {
			return nil, err
		}
		pngw, err = viz.NewPNGWriter(cfg.OutDir, "fig2_rf", 4, 16)
		if err != nil {
			return nil, err
		}
		adaptors = append(adaptors, vtiw, pngw)
	}
	var ls *viz.LiveServer
	if live {
		var err error
		ls, err = viz.NewLiveServer("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		res.LiveAddr = ls.Addr()
		adaptors = append(adaptors, ls)
		cfg.printf("live view at http://%s/\n", ls.Addr())
	}

	be := backend.MustNew(cfg.Backend, cfg.Workers)
	net := core.NewNetwork(be, splits.Train.Hypercolumns, splits.Train.UnitsPerHC,
		splits.Train.Classes, p)
	hook := func(epoch int, layer *core.HiddenLayer) {
		if len(adaptors) == 0 {
			return
		}
		if err := adaptors.CoProcess(epoch, MaskFields(layer, HiggsGrid)); err != nil {
			cfg.printf("co-processing error at epoch %d: %v\n", epoch, err)
		}
	}
	cfg.printf("# Fig 2 — in-situ visualization (4 HCUs, density 40%%, %d epochs)\n",
		cfg.UnsupEpochs)
	net.TrainUnsupervised(splits.Train, cfg.UnsupEpochs, hook)
	if vtiw != nil {
		res.VTIFiles = vtiw.Written
		res.PNGFiles = pngw.Written
		cfg.printf("wrote %d VTI and %d PNG epoch snapshots to %s\n",
			len(res.VTIFiles), len(res.PNGFiles), cfg.OutDir)
	}
	if ls != nil && !live {
		ls.Close() //nolint:errcheck
	}
	return res, nil
}
