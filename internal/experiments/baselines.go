package experiments

import (
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/gbt"
	"streambrain/internal/metrics"
	"streambrain/internal/mlp"
	"streambrain/internal/tensor"
)

// BaselineRow is one row of the E6 related-work comparison (§VI of the
// paper, where BCPNN's 75.5%/76.4% AUC is placed against shallow networks
// at 81.6% and deep networks up to 88% on the Higgs task). AMS is the
// Approximate Median Significance of the Kaggle challenge §VI also cites.
type BaselineRow struct {
	Model    string
	Acc, AUC float64
	AMS      float64
}

// RunBaselines regenerates experiment E6: the AUC ordering across model
// families on the same preprocessed data. BCPNN variants consume the
// quantile one-hot encoding (as in the paper); the dense baselines consume
// standardized raw features (as in Baldi et al.). mcus scales the BCPNN
// capacity for reduced-scale runs.
func RunBaselines(cfg Config, mcus int) []BaselineRow {
	if mcus <= 0 {
		mcus = 3000
	}
	splits := PrepareHiggs(cfg)
	var rows []BaselineRow
	addScored := func(model string, acc, auc float64, score []float64) {
		ams := 0.0
		if score != nil {
			ams, _ = metrics.BestAMS(score, splits.TestRaw.Y, nil)
		}
		rows = append(rows, BaselineRow{Model: model, Acc: acc, AUC: auc, AMS: ams})
		cfg.printf("%-24s acc %.4f   AUC %.4f   AMS %.2f\n", model, acc, auc, ams)
	}
	cfg.printf("# E6 — related-work comparison (%d train / %d test)\n",
		splits.Train.Len(), splits.Test.Len())

	// BCPNN, pure (paper: 75.5%% AUC with 1 HCU).
	p := core.DefaultParams()
	p.HCUs = 1
	p.MCUs = mcus
	p.ReceptiveField = 0.40
	p.UnsupervisedEpochs = cfg.UnsupEpochs
	p.SupervisedEpochs = cfg.SupEpochs
	p.Seed = cfg.Seed
	res := RunTrial(cfg, splits, p, false)
	addScored("BCPNN", res.Acc, res.AUC, res.Scores)

	// BCPNN+SGD hybrid (paper: 69.15%% acc / 76.4%% AUC).
	res = RunTrial(cfg, splits, p, true)
	addScored("BCPNN+SGD", res.Acc, res.AUC, res.Scores)

	// Shallow MLP on standardized raw features (paper cites 81.6%% AUC).
	std := prepStandardized(splits)
	mcfg := mlp.DefaultConfig()
	mcfg.Seed = cfg.Seed
	net := mlp.New(splits.TrainRaw.Features(), 2, mcfg)
	net.Fit(std.train, splits.TrainRaw.Y)
	pred, score := net.Predict(std.test)
	addScored("MLP (shallow NN)", metrics.Accuracy(pred, splits.TestRaw.Y),
		metrics.AUC(score, splits.TestRaw.Y), score)

	// Boosted decision trees (the classical HEP baseline).
	gcfg := gbt.DefaultConfig()
	gcfg.Seed = cfg.Seed
	model := gbt.Fit(std.train, splits.TrainRaw.Y, gcfg)
	gpred, gscore := model.Predict(std.test)
	addScored("BDT (boosted trees)", metrics.Accuracy(gpred, splits.TestRaw.Y),
		metrics.AUC(gscore, splits.TestRaw.Y), gscore)

	// Linear reference: a no-hidden-layer MLP (logistic regression), the
	// floor every nonlinear method must beat.
	lcfg := mlp.DefaultConfig()
	lcfg.Hidden = nil
	lcfg.Seed = cfg.Seed
	lin := mlp.New(splits.TrainRaw.Features(), 2, lcfg)
	lin.Fit(std.train, splits.TrainRaw.Y)
	lpred, lscore := lin.Predict(std.test)
	addScored("Logistic (linear)", metrics.Accuracy(lpred, splits.TestRaw.Y),
		metrics.AUC(lscore, splits.TestRaw.Y), lscore)

	return rows
}

// standardized caches the z-scored dense splits consumed by the baselines.
type standardized struct {
	train, test *tensor.Matrix
}

// prepStandardized z-scores the raw splits with train-fitted statistics.
func prepStandardized(splits *HiggsSplits) standardized {
	st := data.FitStandardizer(splits.TrainRaw)
	return standardized{
		train: st.Transform(splits.TrainRaw),
		test:  st.Transform(splits.TestRaw),
	}
}
