package experiments

import (
	"math/rand"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/metrics"
	"streambrain/internal/mlp"
	"streambrain/internal/tensor"
)

// LabelEffRow is one point of the label-efficiency experiment E7: accuracy
// of BCPNN (unsupervised features on ALL data + classifier on the labeled
// subset) against an MLP restricted to the labeled subset only.
type LabelEffRow struct {
	LabeledFraction float64
	Labeled         int
	BCPNNAcc        float64
	BCPNNAUC        float64
	MLPAcc          float64
	MLPAUC          float64
}

// RunLabelEfficiency regenerates experiment E7 (paper §I: BCPNN's
// semi-supervised capability "allows bringing order even to unlabeled (the
// majority) of data"). The unsupervised feature phase always consumes the
// full training set; only the supervised classifier sees the labeled
// subset. The MLP baseline, being fully supervised, can only use the
// labeled subset for everything — the gap at small label budgets is the
// semi-supervised payoff.
func RunLabelEfficiency(cfg Config, mcus int, fractions []float64) []LabelEffRow {
	if mcus <= 0 {
		mcus = 300
	}
	if fractions == nil {
		fractions = []float64{0.01, 0.05, 0.20, 1.00}
	}
	splits := PrepareHiggs(cfg)
	std := prepStandardized(splits)
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	cfg.printf("# E7 — label efficiency (%d train / %d test, features always unsupervised on all)\n",
		splits.Train.Len(), splits.Test.Len())
	cfg.printf("%-10s %-8s %-20s %s\n", "labeled%", "count", "BCPNN acc/AUC", "MLP acc/AUC")

	var rows []LabelEffRow
	for _, frac := range fractions {
		nLab := int(frac * float64(splits.Train.Len()))
		if nLab < 10 {
			nLab = 10
		}
		perm := rng.Perm(splits.Train.Len())[:nLab]
		labeled := splits.Train.Subset(perm)

		// BCPNN: unsupervised on everything, classifier on the subset.
		p := core.DefaultParams()
		p.HCUs = 1
		p.MCUs = mcus
		p.ReceptiveField = 0.40
		p.Seed = cfg.Seed
		be := backend.MustNew(cfg.Backend, cfg.Workers)
		net := core.NewNetwork(be, splits.Train.Hypercolumns, splits.Train.UnitsPerHC,
			splits.Train.Classes, p)
		net.TrainUnsupervised(splits.Train, cfg.UnsupEpochs)
		// Small label sets need more supervised passes to converge the
		// readout traces; scale epochs to keep total labeled presentations
		// roughly constant.
		supEpochs := cfg.SupEpochs
		if nLab < splits.Train.Len()/4 {
			supEpochs = cfg.SupEpochs * splits.Train.Len() / (4 * nLab)
			if supEpochs > 60 {
				supEpochs = 60
			}
		}
		net.TrainSupervised(labeled, supEpochs)
		net.CalibrateThreshold(labeled)
		bAcc, bAUC := net.Evaluate(splits.Test)

		// MLP: labeled subset only.
		xLab := tensor.NewMatrix(nLab, std.train.Cols)
		yLab := make([]int, nLab)
		for i, r := range perm {
			copy(xLab.Row(i), std.train.Row(r))
			yLab[i] = splits.TrainRaw.Y[r]
		}
		mcfg := mlp.DefaultConfig()
		mcfg.Seed = cfg.Seed
		m := mlp.New(xLab.Cols, 2, mcfg)
		m.Fit(xLab, yLab)
		pred, score := m.Predict(std.test)
		mAcc := metrics.Accuracy(pred, splits.TestRaw.Y)
		mAUC := metrics.AUC(score, splits.TestRaw.Y)

		row := LabelEffRow{
			LabeledFraction: frac, Labeled: nLab,
			BCPNNAcc: bAcc, BCPNNAUC: bAUC, MLPAcc: mAcc, MLPAUC: mAUC,
		}
		rows = append(rows, row)
		cfg.printf("%-10.2f %-8d %.4f / %.4f      %.4f / %.4f\n",
			frac*100, nLab, bAcc, bAUC, mAcc, mAUC)
	}
	return rows
}

// ensure data import is used (Subset helper belongs to it conceptually).
var _ = data.LabelsOneHot
