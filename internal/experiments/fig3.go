package experiments

import (
	"streambrain/internal/core"
	"streambrain/internal/metrics"
)

// Fig3Row is one bar/line pair of the paper's Fig. 3: test accuracy (bars)
// and training time (lines) for an (HCUs, MCUs) capacity point.
type Fig3Row struct {
	HCUs, MCUs   int
	Acc, AUC     metrics.Summary
	TrainSeconds metrics.Summary
}

// Fig3HCUs and Fig3MCUs are the sweep axes of the paper's Fig. 3.
var (
	Fig3HCUs = []int{1, 2, 4, 6, 8}
	Fig3MCUs = []int{30, 300, 3000}
)

// RunFig3 regenerates experiment E1 (paper Fig. 3): the HCU×MCU capacity
// sweep at a fixed 30% receptive field. mcus/hcus nil selects the paper's
// full grid.
func RunFig3(cfg Config, hcus, mcus []int) []Fig3Row {
	if hcus == nil {
		hcus = Fig3HCUs
	}
	if mcus == nil {
		mcus = Fig3MCUs
	}
	splits := PrepareHiggs(cfg)
	cfg.printf("# Fig 3 — capacity sweep (RF=30%%, %d train / %d test, %d repeats)\n",
		splits.Train.Len(), splits.Test.Len(), cfg.Repeats)
	cfg.printf("%-6s %-6s %-22s %-22s %s\n", "HCUs", "MCUs", "test accuracy", "AUC", "train time (s)")
	var rows []Fig3Row
	for _, m := range mcus {
		for _, h := range hcus {
			p := core.DefaultParams()
			p.HCUs = h
			p.MCUs = m
			p.ReceptiveField = 0.30
			p.UnsupervisedEpochs = cfg.UnsupEpochs
			p.SupervisedEpochs = cfg.SupEpochs
			acc, auc, secs := Repeat(cfg, splits, p, false)
			row := Fig3Row{HCUs: h, MCUs: m, Acc: acc, AUC: auc, TrainSeconds: secs}
			rows = append(rows, row)
			cfg.printf("%-6d %-6d %-22s %-22s %.2f ± %.2f\n",
				h, m, acc.String(), auc.String(), secs.Mean, secs.Std)
		}
	}
	return rows
}

// Fig3Headline runs the paper's headline configuration — 1 HCU × 3000 MCUs
// with the hybrid BCPNN+SGD readout, which the paper reports at 69.15%
// accuracy and 76.4% AUC (§V-A) — and returns its summary.
func Fig3Headline(cfg Config) (acc, auc metrics.Summary) {
	splits := PrepareHiggs(cfg)
	p := core.DefaultParams()
	p.HCUs = 1
	p.MCUs = 3000
	p.ReceptiveField = 0.30
	p.UnsupervisedEpochs = cfg.UnsupEpochs
	p.SupervisedEpochs = cfg.SupEpochs
	acc, auc, _ = Repeat(cfg, splits, p, true)
	cfg.printf("# headline (1 HCU × 3000 MCU, BCPNN+SGD): acc %s, AUC %s\n",
		acc.String(), auc.String())
	return acc, auc
}
