package experiments

import (
	"time"

	"streambrain/internal/core"
	"streambrain/internal/mpi"
)

// E9 — distributed rank-count invariance (DESIGN.md §4, §10). The
// StreamBrain framework paper's headline capability is MPI data-parallel
// scaling, and the §II-B argument for it is that BCPNN's local learning
// makes the result invariant in the rank count: shards train independently
// and only the probability traces are allreduce-merged. This harness makes
// that claim a measured number on the synthetic Higgs pipeline, and — by
// running the 2- and 4-rank configurations over the TCP fabric — asserts
// the invariance survives the process boundary: every trace crosses the
// wire as length-prefixed binary frames (bit-exact float64), so AUC must
// not move when the fabric becomes transport-real.
//
// One trial per configuration: with a fixed seed the comparison is
// deterministic, so a repeat average would only blur the quantity under
// test (the rank-count delta, not seed noise).

// DistributedRow is one fabric configuration's summary.
type DistributedRow struct {
	Ranks     int
	Transport string
	Acc, AUC  float64
	// DeltaAUC is AUC − the 1-rank reference AUC; the invariance claim is
	// |DeltaAUC| ≤ 0.005 (the same tolerance the precision ablation E8
	// uses for the paper's reduced-precision claim).
	DeltaAUC float64
	Secs     float64
}

// DistributedResult is the full E9 output.
type DistributedResult struct {
	Rows []DistributedRow
}

// Row returns the row for a configuration, or nil.
func (r *DistributedResult) Row(ranks int, transport string) *DistributedRow {
	for i := range r.Rows {
		if r.Rows[i].Ranks == ranks && r.Rows[i].Transport == transport {
			return &r.Rows[i]
		}
	}
	return nil
}

// RunDistributed executes E9 and prints one row per fabric configuration.
func RunDistributed(cfg Config, mcuCap int) (*DistributedResult, error) {
	splits := PrepareHiggs(cfg)
	p := core.DefaultParams()
	p.MCUs = 300
	if mcuCap > 0 && p.MCUs > mcuCap {
		p.MCUs = mcuCap
	}
	p.UnsupervisedEpochs = cfg.UnsupEpochs
	p.SupervisedEpochs = cfg.SupEpochs
	p.Seed = cfg.Seed

	configs := []struct {
		ranks     int
		transport string
	}{
		{1, "chan"},
		{2, "chan"},
		{4, "chan"},
		{2, "tcp"},
		{4, "tcp"},
	}
	res := &DistributedResult{}
	cfg.printf("E9: distributed rank-count invariance — %d events, MCUs=%d, epochs %d+%d\n",
		cfg.Events, p.MCUs, cfg.UnsupEpochs, cfg.SupEpochs)
	cfg.printf("%-6s %-10s %-10s %-10s %10s %9s\n",
		"ranks", "transport", "accuracy", "AUC", "ΔAUC", "train s")
	var refAUC float64
	for i, c := range configs {
		dt := core.NewDistributedTrainer(c.ranks, cfg.Backend, cfg.Workers,
			splits.Train.Hypercolumns, splits.Train.UnitsPerHC, splits.Train.Classes,
			p, splits.Train)
		w, err := mpi.NewWorldFor(c.transport, c.ranks, mpi.TCPOptions{})
		if err != nil {
			return res, err
		}
		dt.World = w
		start := time.Now()
		net, err := dt.Train(cfg.UnsupEpochs, cfg.SupEpochs)
		w.Close()
		if err != nil {
			return res, err
		}
		secs := time.Since(start).Seconds()
		acc, auc := net.Evaluate(splits.Test)
		if i == 0 {
			refAUC = auc
		}
		row := DistributedRow{
			Ranks: c.ranks, Transport: c.transport,
			Acc: acc, AUC: auc, DeltaAUC: auc - refAUC, Secs: secs,
		}
		res.Rows = append(res.Rows, row)
		cfg.printf("%-6d %-10s %-10.4f %-10.4f %+10.4f %9.2f\n",
			row.Ranks, row.Transport, row.Acc, row.AUC, row.DeltaAUC, row.Secs)
	}
	return res, nil
}
