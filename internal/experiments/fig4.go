package experiments

import (
	"streambrain/internal/core"
	"streambrain/internal/metrics"
)

// Fig4Row is one point of the paper's Fig. 4: test accuracy (line) and
// training time (bars) at a receptive-field fraction.
type Fig4Row struct {
	RF           float64
	Acc, AUC     metrics.Summary
	TrainSeconds metrics.Summary
}

// Fig4RFs is the sweep axis of the paper's Fig. 4 (5%…95%).
var Fig4RFs = []float64{0.05, 0.15, 0.25, 0.35, 0.40, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}

// RunFig4 regenerates experiment E2 (paper Fig. 4): the receptive-field
// sweep at fixed capacity (1 HCU × 3000 MCUs in the paper; mcus configures
// the reduced-scale runs). rfs nil selects the paper's sweep.
func RunFig4(cfg Config, mcus int, rfs []float64) []Fig4Row {
	if rfs == nil {
		rfs = Fig4RFs
	}
	if mcus <= 0 {
		mcus = 3000
	}
	splits := PrepareHiggs(cfg)
	cfg.printf("# Fig 4 — receptive-field sweep (1 HCU × %d MCUs, %d train / %d test, %d repeats)\n",
		mcus, splits.Train.Len(), splits.Test.Len(), cfg.Repeats)
	cfg.printf("%-6s %-22s %-22s %s\n", "RF", "test accuracy", "AUC", "train time (s)")
	var rows []Fig4Row
	for _, rf := range rfs {
		p := core.DefaultParams()
		p.HCUs = 1
		p.MCUs = mcus
		p.ReceptiveField = rf
		p.UnsupervisedEpochs = cfg.UnsupEpochs
		p.SupervisedEpochs = cfg.SupEpochs
		acc, auc, secs := Repeat(cfg, splits, p, false)
		row := Fig4Row{RF: rf, Acc: acc, AUC: auc, TrainSeconds: secs}
		rows = append(rows, row)
		cfg.printf("%-6.2f %-22s %-22s %.2f ± %.2f\n",
			rf, acc.String(), auc.String(), secs.Mean, secs.Std)
	}
	return rows
}
