package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/viz"
)

// FieldGrid describes how to reshape a 1-D hypercolumn mask into a 2-D
// image for rendering (Higgs: 28 features as 4×7; MNIST: 784 pixels as
// 28×28).
type FieldGrid struct{ Width, Height int }

// HiggsGrid lays the 28 HIGGS features out as a 7×4 image.
var HiggsGrid = FieldGrid{Width: 7, Height: 4}

// MaskFields converts every HCU's receptive-field mask into a viz.Field.
func MaskFields(l *core.HiddenLayer, grid FieldGrid) []viz.Field {
	fields := make([]viz.Field, l.H)
	for h := 0; h < l.H; h++ {
		fields[h] = viz.BoolField(fmt.Sprintf("hcu%02d", h), grid.Width, grid.Height,
			l.ReceptiveField(h))
	}
	return fields
}

// MIFields converts every HCU's mutual-information map into a viz.Field —
// the continuous counterpart of the binary masks.
func MIFields(l *core.HiddenLayer, grid FieldGrid) []viz.Field {
	mi := l.MutualInformation()
	fields := make([]viz.Field, l.H)
	for h := 0; h < l.H; h++ {
		data := make([]float64, l.Fi)
		for fi := 0; fi < l.Fi; fi++ {
			data[fi] = mi[fi*l.H+h]
		}
		fields[h] = viz.Field{Name: fmt.Sprintf("mi%02d", h),
			Width: grid.Width, Height: grid.Height, Data: data}
	}
	return fields
}

// Fig5Result holds the mask learned at one receptive-field size.
type Fig5Result struct {
	RF    float64
	Field viz.Field
}

// RunFig5 regenerates experiment E3 (paper Fig. 5): the evolution of the
// learned mask as the receptive-field size grows from 0% to 95%. One
// single-HCU network is trained per RF; the final masks are returned and,
// when cfg.OutDir is set, rendered as a montage PNG plus a VTI file (the
// paper's 4×5 grid of masks).
func RunFig5(cfg Config, mcus int) ([]Fig5Result, error) {
	if mcus <= 0 {
		mcus = 300
	}
	rfs := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45,
		0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95}
	splits := PrepareHiggs(cfg)
	cfg.printf("# Fig 5 — mask evolution across receptive-field sizes (1 HCU × %d MCUs)\n", mcus)
	var results []Fig5Result
	var fields []viz.Field
	for _, rf := range rfs {
		p := core.DefaultParams()
		p.HCUs = 1
		p.MCUs = mcus
		p.ReceptiveField = rf
		p.UnsupervisedEpochs = cfg.UnsupEpochs
		p.SupervisedEpochs = 0
		p.Seed = cfg.Seed
		be := backend.MustNew(cfg.Backend, cfg.Workers)
		net := core.NewNetwork(be, splits.Train.Hypercolumns, splits.Train.UnitsPerHC,
			splits.Train.Classes, p)
		net.TrainUnsupervised(splits.Train, cfg.UnsupEpochs)
		f := MaskFields(net.Hidden, HiggsGrid)[0]
		f.Name = fmt.Sprintf("rf%02.0f", rf*100)
		results = append(results, Fig5Result{RF: rf, Field: f})
		fields = append(fields, f)
		active := 0
		for _, v := range f.Data {
			if v > 0 {
				active++
			}
		}
		cfg.printf("RF %4.0f%% -> %2d of %d input features active\n",
			rf*100, active, splits.Train.Hypercolumns)
	}
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return nil, err
		}
		png := filepath.Join(cfg.OutDir, "fig5_masks.png")
		if err := viz.SavePNG(png, viz.RenderMontage(fields, 5, 16)); err != nil {
			return nil, err
		}
		vtiw, err := viz.NewVTIWriter(cfg.OutDir, "fig5_masks")
		if err != nil {
			return nil, err
		}
		if err := vtiw.CoProcess(0, fields); err != nil {
			return nil, err
		}
		cfg.printf("wrote %s and %s\n", png, vtiw.Written[0])
	}
	return results, nil
}
