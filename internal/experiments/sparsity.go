package experiments

import (
	"fmt"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/metrics"
)

// E10 — structural sparsity as a compute lever (DESIGN.md §15). The paper
// treats structural plasticity as an accuracy mechanism: each HCU learns
// *where to look* by exchanging mask bits at constant K. This experiment
// asks the systems question the block-sparse kernels exist for: how much of
// the receptive field can the prune/regrow schedule remove before AUC moves?
//
// Every variant starts from a full receptive field (RF = 1.0, K = Fi). The
// dense reference keeps it; the schedule rows anneal K down a linear
// schedule to round((1−target)·Fi) with usage-driven pruning (lowest-MI
// connections go first) and rate-limited regrowth. Each schedule target runs
// twice: on the dense-masked kernels (the semantics twin — silent traces
// keep decaying, every block is still computed) and on the block-sparse
// kernel path (silent blocks frozen and skipped). The CI bound compares the
// twins: an identical structural trajectory under the two compute regimes
// must land within 0.01 AUC, which isolates the kernel-regime effect from
// the capacity cost of the schedule itself (visible against the full-field
// row). The throughput half of the claim is enforced separately by the
// "sparse" perf suite and its benchgate floor.

// SparsityRow is one schedule variant's summary.
type SparsityRow struct {
	Name   string
	Target float64 // scheduled final sparsity (0 = dense reference)
	// Final is the realized block sparsity 1 − K/Fi after training.
	Final    float64
	K        int // active input hypercolumns per HCU after training
	Acc, AUC metrics.Summary
	Secs     metrics.Summary
	DeltaAUC float64 // mean AUC − dense-reference mean AUC
	// Trajectory is the realized sparsity after each unsupervised epoch of
	// the last repeat — the annealing path the schedule walked.
	Trajectory []float64
}

// SparsityResult is the full E10 output.
type SparsityResult struct {
	Rows []SparsityRow
}

// DeltaAUC returns the named row's AUC delta (0 when absent).
func (r *SparsityResult) DeltaAUC(name string) float64 {
	for _, row := range r.Rows {
		if row.Name == name {
			return row.DeltaAUC
		}
	}
	return 0
}

// Row returns the named row, or nil.
func (r *SparsityResult) Row(name string) *SparsityRow {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// sparsityTrial trains one variant cfg.Repeats times, capturing the sparsity
// trajectory of the last repeat via an epoch hook.
func sparsityTrial(cfg Config, splits *HiggsSplits, p core.Params) (acc, auc, secs metrics.Summary, traj []float64, k int) {
	var accs, aucs, times []float64
	for r := 0; r < cfg.Repeats; r++ {
		pr := p
		pr.Seed = cfg.Seed + int64(1000*r)
		be := backend.MustNew(cfg.Backend, cfg.Workers)
		net := core.NewNetwork(be, splits.Train.Hypercolumns, splits.Train.UnitsPerHC,
			splits.Train.Classes, pr)
		traj = traj[:0]
		hook := func(_ int, l *core.HiddenLayer) {
			traj = append(traj, 1-float64(l.K)/float64(l.Fi))
		}
		net.TrainUnsupervised(splits.Train, cfg.UnsupEpochs, hook)
		net.TrainSupervised(splits.Train, cfg.SupEpochs)
		net.CalibrateThreshold(splits.Train)
		pred, scores := net.Predict(splits.Test)
		accs = append(accs, metrics.Accuracy(pred, splits.Test.Y))
		aucs = append(aucs, metrics.AUC(scores, splits.Test.Y))
		times = append(times, net.TrainTime.Seconds())
		k = net.Hidden.K
	}
	return metrics.Summarize(accs), metrics.Summarize(aucs), metrics.Summarize(times), traj, k
}

// RunSparsity executes the sparsity-schedule ablation and prints one row per
// target.
func RunSparsity(cfg Config, mcuCap int) *SparsityResult {
	splits := PrepareHiggs(cfg)
	p := core.DefaultParams()
	p.MCUs = 300
	if mcuCap > 0 && p.MCUs > mcuCap {
		p.MCUs = mcuCap
	}
	p.ReceptiveField = 1.0 // start from the full field; the schedule prunes
	p.UnsupervisedEpochs = cfg.UnsupEpochs
	p.SupervisedEpochs = cfg.SupEpochs
	p.Seed = cfg.Seed

	variants := []struct {
		target float64
		sparse bool
	}{
		{0, false},   // full-field dense reference
		{0.5, false}, // schedule on dense-masked kernels
		{0.5, true},  // same schedule, block-sparse kernels
		{0.8, false},
		{0.8, true},
	}
	res := &SparsityResult{}
	cfg.printf("E10: sparsity schedule — %d events, MCUs=%d, Fi=%d, %d repeats\n",
		cfg.Events, p.MCUs, splits.Train.Hypercolumns, cfg.Repeats)
	cfg.printf("%-16s %8s %8s %4s %-22s %-22s %10s %10s\n",
		"variant", "target", "final", "K", "accuracy", "AUC", "ΔAUC", "train s")
	var refAUC float64
	for i, v := range variants {
		pv := p
		name := "dense"
		if v.target > 0 {
			regime := "dense-sched"
			if v.sparse {
				regime = "sparse"
			}
			name = fmt.Sprintf("%s-%.2f", regime, v.target)
			pv.SparseCompute = v.sparse
			pv.TargetSparsity = v.target
		}
		acc, auc, secs, traj, k := sparsityTrial(cfg, splits, pv)
		if i == 0 {
			refAUC = auc.Mean
		}
		row := SparsityRow{
			Name: name, Target: v.target,
			Final: 1 - float64(k)/float64(splits.Train.Hypercolumns),
			K:     k,
			Acc:   acc, AUC: auc, Secs: secs,
			DeltaAUC:   auc.Mean - refAUC,
			Trajectory: append([]float64(nil), traj...),
		}
		res.Rows = append(res.Rows, row)
		cfg.printf("%-16s %8.2f %8.2f %4d %-22s %-22s %+10.4f %10.2f\n",
			row.Name, row.Target, row.Final, row.K, acc.String(), auc.String(),
			row.DeltaAUC, secs.Mean)
	}
	return res
}
