package experiments

import (
	"math"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/metrics"
	"streambrain/internal/posit"
	"streambrain/internal/tensor"
)

// E8 — precision ablation (DESIGN.md §4, §9). The source paper's
// central numerical claim is that BCPNN Higgs training tolerates reduced
// precision: Svedin et al. 2021 run it in bfloat16 and posit arithmetic and
// report essentially unchanged AUC. This harness reproduces the comparison
// in CI-runnable form on the synthetic Higgs pipeline:
//
//   - float64:   the full-precision reference (parallel backend);
//   - float32:   training and inference with the float32 compute path
//     (Params.Precision = Float32 — forward passes and derived
//     parameters at half width, traces float64);
//   - posit16/8: the fpgasim backend, which quantizes derived-parameter
//     storage through posit(16,1) / posit(8,0).
//
// PR 9 widens the ablation into a precision×backend grid: each precision
// also runs on every backend that defines it and changes the execution
// strategy — the fused whole-layer backend (DESIGN.md §14) and the gpusim
// offload model at float64, fused again at float32. The grid is the
// accuracy half of the fusion claim: a fused row's ΔAUC against the
// composed reference must vanish (float64, where LayerStep is bit-exact)
// or stay within the paper tolerance (float32).
//
// Reported per row: accuracy, AUC, train time, and the AUC delta against
// the float64 reference — the number the paper's claim is about.

// PrecisionRow is one variant's summary.
type PrecisionRow struct {
	Name       string
	Backend    string // backend registry name the variant ran on
	Acc, AUC   metrics.Summary
	Secs       metrics.Summary
	DeltaAUC   float64 // mean AUC − float64 mean AUC
	WeightsMiB float64 // derived-parameter storage at this precision
}

// PrecisionResult is the full ablation output.
type PrecisionResult struct {
	Rows []PrecisionRow
}

// DeltaAUC returns the named row's AUC delta (0 when absent).
func (r *PrecisionResult) DeltaAUC(name string) float64 {
	for _, row := range r.Rows {
		if row.Name == name {
			return row.DeltaAUC
		}
	}
	return 0
}

// precisionTrial trains one variant. The fpgasim rows swap the backend; the
// float32 row sets Params.Precision on the parallel backend.
func precisionTrial(cfg Config, splits *HiggsSplits, p core.Params,
	backendName string, format *posit.Format) (acc, auc, secs metrics.Summary) {
	variant := cfg
	variant.Backend = backendName
	if format != nil {
		// fpgasim's registry default is posit16; posit8 needs an explicit
		// construction, so run the trials against a custom trial loop.
		var accs, aucs, times []float64
		for r := 0; r < cfg.Repeats; r++ {
			pr := p
			pr.Seed = cfg.Seed + int64(1000*r)
			be := backend.NewFPGASim(cfg.Workers, *format)
			net := core.NewNetwork(be, splits.Train.Hypercolumns, splits.Train.UnitsPerHC,
				splits.Train.Classes, pr)
			res := measureNetwork(cfg, splits, net)
			accs = append(accs, res.Acc)
			aucs = append(aucs, res.AUC)
			times = append(times, res.TrainSeconds)
		}
		return metrics.Summarize(accs), metrics.Summarize(aucs), metrics.Summarize(times)
	}
	return Repeat(variant, splits, p, false)
}

// RunPrecision executes the ablation and prints one row per variant.
func RunPrecision(cfg Config, mcuCap int) *PrecisionResult {
	splits := PrepareHiggs(cfg)
	p := core.DefaultParams()
	p.MCUs = 300
	if mcuCap > 0 && p.MCUs > mcuCap {
		p.MCUs = mcuCap
	}
	p.UnsupervisedEpochs = cfg.UnsupEpochs
	p.SupervisedEpochs = cfg.SupEpochs
	p.Seed = cfg.Seed

	weightsMiB := func(bytesPerElem float64) float64 {
		elems := float64(splits.Train.TotalInputs()) * float64(p.MCUs)
		return elems * bytesPerElem / (1 << 20)
	}

	type variant struct {
		name    string
		backend string
		prec    core.Precision
		format  *posit.Format
		mib     float64
	}
	p16, p8 := posit.Posit16, posit.Posit8
	variants := []variant{
		{name: "float64", backend: cfg.Backend, prec: core.Float64, mib: weightsMiB(8)},
		{name: "float64/fused", backend: "fused", prec: core.Float64, mib: weightsMiB(8)},
		{name: "float64/gpusim", backend: "gpusim", prec: core.Float64, mib: weightsMiB(8)},
		{name: "float32", backend: cfg.Backend, prec: core.Float32, mib: weightsMiB(4)},
		{name: "float32/fused", backend: "fused", prec: core.Float32, mib: weightsMiB(4)},
		{name: "posit16", backend: "fpgasim", format: &p16, mib: weightsMiB(2)},
		{name: "posit8", backend: "fpgasim", format: &p8, mib: weightsMiB(1)},
	}

	res := &PrecisionResult{}
	cfg.printf("E8: precision×backend grid — %d events, MCUs=%d, %d repeats (SIMD %v)\n",
		cfg.Events, p.MCUs, cfg.Repeats, tensor.SIMDEnabled())
	cfg.printf("%-15s %-9s %-22s %-22s %10s %10s %9s\n",
		"variant", "backend", "accuracy", "AUC", "ΔAUC", "train s", "W MiB")
	var refAUC float64
	for i, v := range variants {
		pv := p
		pv.Precision = v.prec
		if pv.Precision.Is32() {
			// Match the other Precision entry points (NewModel, stream.New,
			// core.Load): report the unsupported combination instead of
			// letting core.NewNetwork panic mid-ablation.
			if _, err := backend.New32(v.backend, cfg.Workers); err != nil {
				cfg.printf("%-15s skipped: %v\n", v.name, err)
				continue
			}
		}
		backendName := v.backend
		if v.format != nil {
			backendName = "fpgasim"
		}
		acc, auc, secs := precisionTrial(cfg, splits, pv, v.backend, v.format)
		if i == 0 {
			refAUC = auc.Mean
		}
		row := PrecisionRow{
			Name: v.name, Backend: backendName, Acc: acc, AUC: auc, Secs: secs,
			DeltaAUC:   auc.Mean - refAUC,
			WeightsMiB: v.mib,
		}
		res.Rows = append(res.Rows, row)
		cfg.printf("%-15s %-9s %-22s %-22s %+10.4f %10.2f %9.2f\n",
			row.Name, row.Backend, acc.String(), auc.String(), row.DeltaAUC, secs.Mean, row.WeightsMiB)
	}
	if d := math.Abs(res.DeltaAUC("float32")); d > 0.005 {
		cfg.printf("WARNING: float32 AUC delta %.4f exceeds the paper-claim tolerance 0.005\n", d)
	}
	return res
}
