// Package experiments contains the per-figure reproduction harnesses: every
// figure of the paper (and the §VI related-work comparison, which functions
// as a table) has a Run function that regenerates the corresponding rows or
// artifacts. DESIGN.md §4 maps experiment ids to these runners; EXPERIMENTS.md
// records paper-vs-measured values from their output.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/higgs"
	"streambrain/internal/metrics"
	"streambrain/internal/sgd"
)

// Config is shared by all experiment runners.
type Config struct {
	// Backend and Workers select the compute backend.
	Backend string
	Workers int
	// Events is the synthetic HIGGS sample size before balancing/splitting.
	Events int
	// TestFraction is the held-out share of the balanced subset.
	TestFraction float64
	// Bins is the quantile-encoding bin count (paper: 10).
	Bins int
	// Repeats is the number of repetitions averaged per configuration
	// (paper: 10; the default harness scale uses fewer — see EXPERIMENTS.md).
	Repeats int
	// UnsupEpochs/SupEpochs are the phase lengths per trial.
	UnsupEpochs, SupEpochs int
	// Seed drives everything.
	Seed int64
	// Out receives the human-readable table rows; nil discards them.
	Out io.Writer
	// OutDir receives artifact files (VTI, PNG) for the figure runners.
	OutDir string
}

// DefaultConfig returns the reduced-scale defaults recorded in
// EXPERIMENTS.md (the paper trains on an A100 with up to 11M events and 10
// repetitions; see DESIGN.md §1 for the scaling substitution).
func DefaultConfig() Config {
	return Config{
		Backend:      "parallel",
		Workers:      0,
		Events:       30000,
		TestFraction: 0.25,
		Bins:         10,
		Repeats:      3,
		UnsupEpochs:  4,
		SupEpochs:    4,
		Seed:         1,
		OutDir:       "out",
	}
}

// printf writes a formatted row to cfg.Out when set.
func (cfg Config) printf(format string, args ...any) {
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, format, args...)
	}
}

// HiggsSplits holds the preprocessed HIGGS data shared across trials: raw
// splits for the dense baselines plus the quantile one-hot encodings.
type HiggsSplits struct {
	TrainRaw, TestRaw *data.Dataset
	Train, Test       *data.Encoded
	Enc               *data.Encoder
}

// PrepareHiggs runs the §V preprocessing once: synthesize (or later: load)
// events, balance, split, fit the encoder on the training split, encode.
func PrepareHiggs(cfg Config) *HiggsSplits {
	ds := higgs.Generate(cfg.Events, 0.5, cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	balanced := ds.Balanced(cfg.Events/2, rng)
	trainDS, testDS := balanced.Split(1-cfg.TestFraction, rng)
	enc := data.FitEncoder(trainDS, cfg.Bins)
	return &HiggsSplits{
		TrainRaw: trainDS,
		TestRaw:  testDS,
		Train:    enc.Transform(trainDS),
		Test:     enc.Transform(testDS),
		Enc:      enc,
	}
}

// TrialResult is one trained-network measurement. Scores holds the
// per-test-sample signal probabilities (consumed by the AMS column of E6).
type TrialResult struct {
	Acc, AUC     float64
	TrainSeconds float64
	Scores       []float64
}

// RunTrial trains one BCPNN network (optionally hybrid) on prepared splits
// and returns its test metrics.
func RunTrial(cfg Config, splits *HiggsSplits, p core.Params, hybrid bool) TrialResult {
	be := backend.MustNew(cfg.Backend, cfg.Workers)
	net := core.NewNetwork(be, splits.Train.Hypercolumns, splits.Train.UnitsPerHC,
		splits.Train.Classes, p)
	if hybrid {
		rng := rand.New(rand.NewSource(p.Seed + 1))
		net.SetReadout(sgd.NewSoftmax(net.Hidden.Units(), splits.Train.Classes,
			sgd.DefaultConfig(), rng))
	}
	return measureNetwork(cfg, splits, net)
}

// measureNetwork runs both training phases plus threshold calibration on an
// already-constructed network and evaluates it — shared by RunTrial and the
// harnesses (E8 precision) that need a custom backend instance.
func measureNetwork(cfg Config, splits *HiggsSplits, net *core.Network) TrialResult {
	start := time.Now()
	net.TrainUnsupervised(splits.Train, cfg.UnsupEpochs)
	net.TrainSupervised(splits.Train, cfg.SupEpochs)
	net.CalibrateThreshold(splits.Train)
	elapsed := time.Since(start).Seconds()
	pred, scores := net.Predict(splits.Test)
	acc := metrics.Accuracy(pred, splits.Test.Y)
	auc := metrics.AUC(scores, splits.Test.Y)
	return TrialResult{Acc: acc, AUC: auc, TrainSeconds: elapsed, Scores: scores}
}

// Repeat runs a configuration cfg.Repeats times with distinct seeds and
// summarizes — the paper's "we train each experiment 10 times and take the
// average" protocol (§V-A).
func Repeat(cfg Config, splits *HiggsSplits, p core.Params, hybrid bool) (acc, auc, secs metrics.Summary) {
	var accs, aucs, times []float64
	for r := 0; r < cfg.Repeats; r++ {
		p.Seed = cfg.Seed + int64(1000*r)
		res := RunTrial(cfg, splits, p, hybrid)
		accs = append(accs, res.Acc)
		aucs = append(aucs, res.AUC)
		times = append(times, res.TrainSeconds)
	}
	return metrics.Summarize(accs), metrics.Summarize(aucs), metrics.Summarize(times)
}
