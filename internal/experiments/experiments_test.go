package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streambrain/internal/core"
)

// tinyConfig keeps harness tests fast: small sample, one repeat, few epochs.
func tinyConfig(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Events = 3000
	cfg.Repeats = 1
	cfg.UnsupEpochs = 2
	cfg.SupEpochs = 2
	cfg.Workers = 4
	cfg.OutDir = t.TempDir()
	return cfg
}

func TestPrepareHiggsPipeline(t *testing.T) {
	cfg := tinyConfig(t)
	splits := PrepareHiggs(cfg)
	if splits.Train.Hypercolumns != 28 || splits.Train.UnitsPerHC != cfg.Bins {
		t.Fatalf("encoded geometry %dx%d", splits.Train.Hypercolumns, splits.Train.UnitsPerHC)
	}
	// Balanced subset: both splits must be near 50/50.
	frac := func(y []int) float64 {
		pos := 0
		for _, v := range y {
			pos += v
		}
		return float64(pos) / float64(len(y))
	}
	if f := frac(splits.Train.Y); f < 0.45 || f > 0.55 {
		t.Fatalf("train signal fraction %.3f", f)
	}
	if f := frac(splits.Test.Y); f < 0.45 || f > 0.55 {
		t.Fatalf("test signal fraction %.3f", f)
	}
	// Train/test sizes follow TestFraction.
	total := splits.Train.Len() + splits.Test.Len()
	got := float64(splits.Test.Len()) / float64(total)
	if got < 0.2 || got > 0.3 {
		t.Fatalf("test fraction %.3f, want ≈0.25", got)
	}
}

// TestBCPNNBeatsChanceOnHiggs is the headline integration test: the full
// pipeline must deliver accuracy and AUC meaningfully above chance on the
// synthetic Higgs task, reproducing the paper's central claim that BCPNN
// learns this dataset.
func TestBCPNNBeatsChanceOnHiggs(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Events = 16000
	cfg.UnsupEpochs = 6
	cfg.SupEpochs = 6
	cfg.Workers = 8
	splits := PrepareHiggs(cfg)
	p := core.DefaultParams()
	p.HCUs = 1
	p.MCUs = 300
	p.ReceptiveField = 0.4
	p.UnsupervisedEpochs = cfg.UnsupEpochs
	p.SupervisedEpochs = cfg.SupEpochs
	res := RunTrial(cfg, splits, p, false)
	if res.Acc < 0.55 {
		t.Fatalf("BCPNN accuracy %.3f barely above chance", res.Acc)
	}
	if res.AUC < 0.58 {
		t.Fatalf("BCPNN AUC %.3f barely above chance", res.AUC)
	}
	if res.TrainSeconds <= 0 {
		t.Fatal("train time not measured")
	}
}

func TestRunFig3ReducedGrid(t *testing.T) {
	cfg := tinyConfig(t)
	var buf bytes.Buffer
	cfg.Out = &buf
	rows := RunFig3(cfg, []int{1, 2}, []int{20, 60})
	if len(rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(rows))
	}
	for _, r := range rows {
		// At this deliberately tiny scale the model can land a hair below
		// chance on the held-out split; the assertion only guards against
		// harness plumbing bugs (swapped labels, empty predictions).
		if r.Acc.Mean < 0.45 || r.Acc.Mean > 1 {
			t.Fatalf("row %+v has implausible accuracy", r)
		}
		if r.TrainSeconds.Mean <= 0 {
			t.Fatalf("row %+v missing train time", r)
		}
	}
	if !strings.Contains(buf.String(), "Fig 3") {
		t.Fatal("missing table header")
	}
}

// TestFig3CapacityShape: larger MCU counts must not hurt accuracy much —
// the paper's "higher capacity gives higher performance" trend at the
// single-HCU point.
func TestFig3CapacityShape(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity shape needs full-scale trials")
	}
	cfg := tinyConfig(t)
	cfg.Events = 24000
	cfg.Repeats = 3
	cfg.UnsupEpochs = 5
	cfg.SupEpochs = 5
	cfg.Workers = 0
	rows := RunFig3(cfg, []int{1}, []int{30, 1000})
	small, large := rows[0], rows[1]
	// Measured curve (see EXPERIMENTS.md E1): M=30 ≈ 0.58, M=1000 ≈ 0.65;
	// the margin tolerates seed noise while still catching a broken trend.
	if large.Acc.Mean <= small.Acc.Mean-0.01 {
		t.Fatalf("capacity 1000 (%.3f) below capacity 30 (%.3f)",
			large.Acc.Mean, small.Acc.Mean)
	}
}

func TestRunFig4ReducedSweep(t *testing.T) {
	cfg := tinyConfig(t)
	var buf bytes.Buffer
	cfg.Out = &buf
	rows := RunFig4(cfg, 40, []float64{0.05, 0.4})
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	if rows[0].RF != 0.05 || rows[1].RF != 0.4 {
		t.Fatalf("rows out of order: %+v", rows)
	}
}

func TestRunFig5ProducesArtifacts(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.UnsupEpochs = 1
	results, err := RunFig5(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 20 {
		t.Fatalf("expected 20 RF points, got %d", len(results))
	}
	// Mask activity must grow with RF: count active at 5% vs 95%.
	countActive := func(r Fig5Result) int {
		n := 0
		for _, v := range r.Field.Data {
			if v > 0 {
				n++
			}
		}
		return n
	}
	if countActive(results[1]) >= countActive(results[19]) {
		t.Fatalf("mask at RF=5%% (%d) not smaller than at RF=95%% (%d)",
			countActive(results[1]), countActive(results[19]))
	}
	if countActive(results[0]) != 0 {
		t.Fatalf("RF=0%% mask has %d active entries", countActive(results[0]))
	}
	for _, name := range []string{"fig5_masks.png", "fig5_masks_0000.vti"} {
		if _, err := os.Stat(filepath.Join(cfg.OutDir, name)); err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
	}
}

func TestRunFig1CenterConcentration(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.UnsupEpochs = 15
	res, err := RunFig1(cfg, 2000, 3, 20, 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fields) != 3 {
		t.Fatalf("expected 3 fields, got %d", len(res.Fields))
	}
	// The central 14×14 window is 25% of the area; fields must concentrate
	// well above that after structural plasticity.
	for h, frac := range res.CenterFraction {
		if frac < 0.5 {
			t.Fatalf("HCU %d center fraction %.2f; field did not migrate to center", h, frac)
		}
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "fig1_fields.png")); err != nil {
		t.Fatalf("missing artifact: %v", err)
	}
}

func TestRunFig2WritesEpochSnapshots(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.UnsupEpochs = 3
	res, err := RunFig2(cfg, 20, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.VTIFiles) != 3 || len(res.PNGFiles) != 3 {
		t.Fatalf("expected 3 VTI and 3 PNG snapshots, got %d/%d",
			len(res.VTIFiles), len(res.PNGFiles))
	}
}

func TestRunBaselinesOrdering(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Events = 16000
	cfg.UnsupEpochs = 6
	cfg.SupEpochs = 6
	cfg.Workers = 8
	var buf bytes.Buffer
	cfg.Out = &buf
	rows := RunBaselines(cfg, 400)
	if len(rows) != 5 {
		t.Fatalf("expected 5 rows, got %d", len(rows))
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	// Every model must beat chance.
	for name, r := range byName {
		if r.AUC < 0.55 {
			t.Fatalf("%s AUC %.3f near chance", name, r.AUC)
		}
	}
	// The paper's ordering: strong dense baselines above BCPNN.
	if byName["BDT (boosted trees)"].AUC <= byName["BCPNN"].AUC-0.02 {
		t.Fatalf("BDT (%.3f) should not trail BCPNN (%.3f)",
			byName["BDT (boosted trees)"].AUC, byName["BCPNN"].AUC)
	}
}

func TestRunLabelEfficiencyShape(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Events = 12000
	cfg.UnsupEpochs = 4
	cfg.SupEpochs = 4
	cfg.Workers = 8
	var buf bytes.Buffer
	cfg.Out = &buf
	rows := RunLabelEfficiency(cfg, 200, []float64{0.05, 1.0})
	if len(rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rows))
	}
	if rows[0].Labeled >= rows[1].Labeled {
		t.Fatalf("label counts not increasing: %+v", rows)
	}
	for _, r := range rows {
		if r.BCPNNAUC < 0.5 || r.MLPAUC < 0.5 {
			t.Fatalf("model below chance: %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "label efficiency") {
		t.Fatal("missing header")
	}
}

// TestPrecisionAblationTolerance is the acceptance check for the paper's
// reduced-precision claim at test scale: the float32 compute path must land
// within 0.005 AUC of the float64 reference on the same splits and seeds,
// and posit16 storage quantization must stay close as well (posit8 is
// reported but unchecked — the paper's own aggressive low end).
func TestPrecisionAblationTolerance(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Events = 12000
	cfg.UnsupEpochs = 3
	cfg.SupEpochs = 3
	res := RunPrecision(cfg, 100)
	if len(res.Rows) != 7 {
		t.Fatalf("expected 7 precision×backend rows, got %d", len(res.Rows))
	}
	if ref := res.Rows[0].AUC.Mean; ref < 0.55 {
		t.Fatalf("float64 reference failed to learn: AUC %.3f", ref)
	}
	if d := res.DeltaAUC("float32"); d < -0.005 || d > 0.005 {
		t.Fatalf("float32 AUC delta %.4f outside ±0.005", d)
	}
	if d := res.DeltaAUC("posit16"); d < -0.02 || d > 0.02 {
		t.Fatalf("posit16 AUC delta %.4f outside ±0.02", d)
	}
	// The fused backend rows are the accuracy half of the whole-layer
	// offload claim (DESIGN.md §14). At float64 the fused LayerStep is
	// bit-identical to the composed kernel sequence, so its delta — and
	// gpusim's, which dispatches the same fused step — must be exactly
	// zero, not merely small. The float32 fused path re-derives its
	// parameters from a float64 in-pass update, so it gets the paper
	// tolerance, same as composed float32.
	for _, name := range []string{"float64/fused", "float64/gpusim"} {
		if d := res.DeltaAUC(name); d != 0 {
			t.Fatalf("%s AUC delta %g, want exactly 0 (fused f64 is bit-exact)", name, d)
		}
	}
	if d := res.DeltaAUC("float32/fused"); d < -0.005 || d > 0.005 {
		t.Fatalf("float32/fused AUC delta %.4f outside ±0.005", d)
	}
}

// TestSparsityScheduleTolerance is the acceptance check for the block-sparse
// compute claim (E10, DESIGN.md §15) at test scale: running the 80%-sparsity
// prune/regrow schedule on the block-sparse kernels must land within 0.01
// AUC of the same schedule on the dense-masked kernels (the compute-regime
// equivalence bound), the realized sparsity must hit the target, and the
// trajectory must anneal monotonically.
func TestSparsityScheduleTolerance(t *testing.T) {
	cfg := tinyConfig(t)
	cfg.Events = 12000
	cfg.UnsupEpochs = 4
	cfg.SupEpochs = 4
	var buf bytes.Buffer
	cfg.Out = &buf
	res := RunSparsity(cfg, 100)
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 sparsity rows, got %d", len(res.Rows))
	}
	if ref := res.Rows[0].AUC.Mean; ref < 0.55 {
		t.Fatalf("dense reference failed to learn: AUC %.3f", ref)
	}
	sp, tw := res.Row("sparse-0.80"), res.Row("dense-sched-0.80")
	if sp == nil || tw == nil {
		t.Fatal("missing 0.80-target rows")
	}
	if tw.AUC.Mean < 0.55 {
		t.Fatalf("dense-compute schedule twin failed to learn: AUC %.3f", tw.AUC.Mean)
	}
	if d := sp.AUC.Mean - tw.AUC.Mean; d < -0.01 || d > 0.01 {
		t.Fatalf("80%% sparse AUC %.4f vs dense-compute twin %.4f: regime delta %.4f outside ±0.01",
			sp.AUC.Mean, tw.AUC.Mean, d)
	}
	if sp.K != tw.K {
		t.Fatalf("twins ended at different K: sparse %d, dense %d", sp.K, tw.K)
	}
	// The schedule must actually realize the target: K = round(0.2·Fi).
	if sp.Final < 0.75 || sp.Final > 0.85 {
		t.Fatalf("realized sparsity %.2f, want ≈0.80 (K=%d)", sp.Final, sp.K)
	}
	// Trajectory: one point per unsupervised epoch, never densifying.
	if len(sp.Trajectory) != cfg.UnsupEpochs {
		t.Fatalf("trajectory has %d points, want %d", len(sp.Trajectory), cfg.UnsupEpochs)
	}
	for i := 1; i < len(sp.Trajectory); i++ {
		if sp.Trajectory[i] < sp.Trajectory[i-1] {
			t.Fatalf("sparsity trajectory densified at epoch %d: %v", i, sp.Trajectory)
		}
	}
	if last := sp.Trajectory[len(sp.Trajectory)-1]; last != sp.Final {
		t.Fatalf("trajectory end %.3f disagrees with final sparsity %.3f", last, sp.Final)
	}
	if !strings.Contains(buf.String(), "E10") {
		t.Fatal("missing table header")
	}
}

// TestDistributedInvarianceTolerance is the acceptance check for the
// paper's data-parallel claim at test scale (E9): training on 4 ranks over
// the real TCP fabric must land within 0.005 AUC of the 1-rank run — the
// rank-count invariance §II-B argues for, surviving the process boundary.
// The tcp rows must further match their chan twins exactly: the wire format
// round-trips float64 bit-exactly, so the transport cannot move the math.
func TestDistributedInvarianceTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale distributed trials")
	}
	cfg := tinyConfig(t)
	cfg.Events = 24000
	cfg.UnsupEpochs = 4
	cfg.SupEpochs = 4
	cfg.Workers = 0
	res, err := RunDistributed(cfg, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 rows, got %d", len(res.Rows))
	}
	ref := res.Row(1, "chan")
	if ref == nil || ref.AUC < 0.6 {
		t.Fatalf("1-rank reference failed to learn: %+v", ref)
	}
	tcp4 := res.Row(4, "tcp")
	if tcp4 == nil {
		t.Fatal("missing 4-rank tcp row")
	}
	if d := tcp4.DeltaAUC; d < -0.005 || d > 0.005 {
		t.Fatalf("4-rank tcp AUC delta %.4f outside ±0.005", d)
	}
	for _, ranks := range []int{2, 4} {
		ch, tc := res.Row(ranks, "chan"), res.Row(ranks, "tcp")
		if ch.AUC != tc.AUC || ch.Acc != tc.Acc {
			t.Fatalf("%d-rank tcp (%.6f/%.6f) diverged from chan (%.6f/%.6f): "+
				"the transport moved the math", ranks, tc.Acc, tc.AUC, ch.Acc, ch.AUC)
		}
	}
}
