package mnistgen

import (
	"encoding/binary"
	"fmt"
	"io"

	"streambrain/internal/data"
	"streambrain/internal/tensor"
)

// IDX magic numbers (big-endian): 0x00000803 = unsigned-byte rank-3 tensor
// (images), 0x00000801 = unsigned-byte rank-1 tensor (labels). These are the
// formats of the real MNIST distribution, so this reader loads the genuine
// files when present.
const (
	idxImagesMagic = 0x00000803
	idxLabelsMagic = 0x00000801
)

// ReadIDX loads an MNIST-format image/label file pair into a dataset with
// pixels scaled to [0,1].
func ReadIDX(images, labels io.Reader) (*data.Dataset, error) {
	var magic, count, rows, cols uint32
	if err := binary.Read(images, binary.BigEndian, &magic); err != nil {
		return nil, fmt.Errorf("mnistgen: image header: %w", err)
	}
	if magic != idxImagesMagic {
		return nil, fmt.Errorf("mnistgen: image magic %#x, want %#x", magic, idxImagesMagic)
	}
	if err := binary.Read(images, binary.BigEndian, &count); err != nil {
		return nil, err
	}
	if err := binary.Read(images, binary.BigEndian, &rows); err != nil {
		return nil, err
	}
	if err := binary.Read(images, binary.BigEndian, &cols); err != nil {
		return nil, err
	}

	var lmagic, lcount uint32
	if err := binary.Read(labels, binary.BigEndian, &lmagic); err != nil {
		return nil, fmt.Errorf("mnistgen: label header: %w", err)
	}
	if lmagic != idxLabelsMagic {
		return nil, fmt.Errorf("mnistgen: label magic %#x, want %#x", lmagic, idxLabelsMagic)
	}
	if err := binary.Read(labels, binary.BigEndian, &lcount); err != nil {
		return nil, err
	}
	if count != lcount {
		return nil, fmt.Errorf("mnistgen: %d images but %d labels", count, lcount)
	}

	pix := int(rows * cols)
	d := &data.Dataset{
		X:       tensor.NewMatrix(int(count), pix),
		Y:       make([]int, count),
		Classes: 10,
	}
	buf := make([]byte, pix)
	for i := 0; i < int(count); i++ {
		if _, err := io.ReadFull(images, buf); err != nil {
			return nil, fmt.Errorf("mnistgen: image %d: %w", i, err)
		}
		row := d.X.Row(i)
		for p, b := range buf {
			row[p] = float64(b) / 255
		}
	}
	lbuf := make([]byte, count)
	if _, err := io.ReadFull(labels, lbuf); err != nil {
		return nil, fmt.Errorf("mnistgen: labels: %w", err)
	}
	for i, b := range lbuf {
		if b > 9 {
			return nil, fmt.Errorf("mnistgen: label %d out of range", b)
		}
		d.Y[i] = int(b)
	}
	return d, nil
}

// WriteIDX emits a dataset as an MNIST-format image/label file pair; the
// inverse of ReadIDX (pixels are quantized to bytes).
func WriteIDX(images, labels io.Writer, d *data.Dataset) error {
	side := 1
	for side*side < d.Features() {
		side++
	}
	if side*side != d.Features() {
		return fmt.Errorf("mnistgen: %d features is not a square image", d.Features())
	}
	for _, v := range []uint32{idxImagesMagic, uint32(d.Len()), uint32(side), uint32(side)} {
		if err := binary.Write(images, binary.BigEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, d.Features())
	for i := 0; i < d.Len(); i++ {
		row := d.X.Row(i)
		for p, v := range row {
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			buf[p] = byte(v * 255)
		}
		if _, err := images.Write(buf); err != nil {
			return err
		}
	}
	for _, v := range []uint32{idxLabelsMagic, uint32(d.Len())} {
		if err := binary.Write(labels, binary.BigEndian, v); err != nil {
			return err
		}
	}
	lbuf := make([]byte, d.Len())
	for i, y := range d.Y {
		lbuf[i] = byte(y)
	}
	_, err := labels.Write(lbuf)
	return err
}
