package mnistgen

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestRenderDigitBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for digit := 0; digit <= 9; digit++ {
		img := RenderDigit(digit, rng)
		if len(img) != Pixels {
			t.Fatalf("digit %d: %d pixels", digit, len(img))
		}
		var ink float64
		for _, v := range img {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("digit %d: pixel out of range %v", digit, v)
			}
			ink += v
		}
		if ink < 10 {
			t.Fatalf("digit %d: almost no ink (%v)", digit, ink)
		}
		if ink > Pixels/2 {
			t.Fatalf("digit %d: mostly ink (%v); strokes too fat", digit, ink)
		}
	}
}

func TestRenderDigitOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RenderDigit(10, rand.New(rand.NewSource(1)))
}

// TestInkConcentratedInCenter: the property Fig. 1 depends on — information
// lives in the image center, fringes are empty.
func TestInkConcentratedInCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var center, fringe float64
	for digit := 0; digit <= 9; digit++ {
		for rep := 0; rep < 20; rep++ {
			img := RenderDigit(digit, rng)
			for y := 0; y < Side; y++ {
				for x := 0; x < Side; x++ {
					v := img[y*Side+x]
					if x >= 7 && x < 21 && y >= 7 && y < 21 {
						center += v
					} else if x < 3 || x >= 25 || y < 3 || y >= 25 {
						fringe += v
					}
				}
			}
		}
	}
	if center < 10*fringe {
		t.Fatalf("center ink %v not dominating fringe ink %v", center, fringe)
	}
}

func TestDigitsAreDistinct(t *testing.T) {
	// Average images of different digits must differ substantially;
	// otherwise the classes are not learnable.
	rng := rand.New(rand.NewSource(3))
	mean := func(digit int) []float64 {
		m := make([]float64, Pixels)
		for rep := 0; rep < 30; rep++ {
			img := RenderDigit(digit, rng)
			for i, v := range img {
				m[i] += v / 30
			}
		}
		return m
	}
	m1 := mean(1)
	m8 := mean(8)
	var dist float64
	for i := range m1 {
		d := m1[i] - m8[i]
		dist += d * d
	}
	if math.Sqrt(dist) < 2 {
		t.Fatalf("digits 1 and 8 mean images too close: %v", math.Sqrt(dist))
	}
}

func TestGenerateBalancedAndDeterministic(t *testing.T) {
	d := Generate(200, 5)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	for _, y := range d.Y {
		counts[y]++
	}
	for digit, c := range counts {
		if c != 20 {
			t.Fatalf("digit %d appears %d times, want 20", digit, c)
		}
	}
	d2 := Generate(200, 5)
	if !d.X.Equal(d2.X, 0) {
		t.Fatal("same seed produced different images")
	}
}

func TestEncodeDualRail(t *testing.T) {
	d := Generate(50, 6)
	e := EncodeDualRail(d, 0.5)
	if e.Hypercolumns != Pixels || e.UnitsPerHC != 2 {
		t.Fatalf("bad geometry %dx%d", e.Hypercolumns, e.UnitsPerHC)
	}
	for s, active := range e.Idx {
		if len(active) != Pixels {
			t.Fatalf("sample %d has %d active units", s, len(active))
		}
		for p, a := range active {
			if int(a)/2 != p {
				t.Fatalf("sample %d pixel %d: active unit %d outside its hypercolumn", s, p, a)
			}
			on := int(a)%2 == 1
			if on != (d.X.At(s, p) > 0.5) {
				t.Fatalf("sample %d pixel %d: rail %v disagrees with pixel %v", s, p, on, d.X.At(s, p))
			}
		}
	}
}

func TestIDXRoundTrip(t *testing.T) {
	d := Generate(30, 7)
	var imgBuf, labBuf bytes.Buffer
	if err := WriteIDX(&imgBuf, &labBuf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIDX(&imgBuf, &labBuf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 30 || back.Features() != Pixels {
		t.Fatalf("round trip shape %dx%d", back.Len(), back.Features())
	}
	for i := range back.Y {
		if back.Y[i] != d.Y[i] {
			t.Fatalf("label mismatch at %d", i)
		}
	}
	// Byte quantization allows 1/255 error.
	if diff := back.X.MaxAbsDiff(d.X); diff > 1.0/254 {
		t.Fatalf("pixel round-trip error %v", diff)
	}
}

func TestReadIDXBadMagic(t *testing.T) {
	var img, lab bytes.Buffer
	img.Write([]byte{0, 0, 8, 99, 0, 0, 0, 0, 0, 0, 0, 28, 0, 0, 0, 28})
	lab.Write([]byte{0, 0, 8, 1, 0, 0, 0, 0})
	if _, err := ReadIDX(&img, &lab); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadIDXCountMismatch(t *testing.T) {
	d := Generate(10, 8)
	var img1, lab1 bytes.Buffer
	if err := WriteIDX(&img1, &lab1, d); err != nil {
		t.Fatal(err)
	}
	var img2, lab2 bytes.Buffer
	if err := WriteIDX(&img2, &lab2, Generate(20, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadIDX(&img1, &lab2); err == nil {
		t.Fatal("image/label count mismatch accepted")
	}
}
