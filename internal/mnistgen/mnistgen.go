// Package mnistgen is the MNIST substrate for the Fig. 1 receptive-field
// experiment: a procedural 28×28 handwritten-digit generator (stroke
// templates + random affine jitter + pixel noise), an IDX-format
// reader/writer compatible with the real MNIST files, and the dual-rail
// one-hot encoding BCPNN consumes (one input hypercolumn of 2 units per
// pixel: off/on).
//
// The generator is a substitution for the real MNIST download (DESIGN.md
// §1): Fig. 1 is a qualitative demonstration that receptive fields
// concentrate on informative center pixels and tile complementarily — a
// property synthetic digits share, since they have the same bright-center /
// empty-fringe structure.
package mnistgen

import (
	"math"
	"math/rand"

	"streambrain/internal/data"
	"streambrain/internal/tensor"
)

// Side is the image edge length; images are Side×Side gray pixels in [0,1].
const Side = 28

// Pixels is the flattened image size.
const Pixels = Side * Side

// stroke is a polyline in the unit square (0..1 coordinates).
type stroke [][2]float64

// glyphs holds stroke templates for digits 0–9, hand-laid out in the unit
// square. Coordinates are (x, y) with y growing downward.
var glyphs = [10][]stroke{
	0: {{{0.5, 0.15}, {0.25, 0.3}, {0.2, 0.6}, {0.35, 0.85}, {0.6, 0.85}, {0.78, 0.6}, {0.75, 0.3}, {0.5, 0.15}}},
	1: {{{0.35, 0.3}, {0.55, 0.15}, {0.55, 0.85}}, {{0.35, 0.85}, {0.72, 0.85}}},
	2: {{{0.27, 0.3}, {0.42, 0.15}, {0.65, 0.2}, {0.7, 0.4}, {0.3, 0.85}, {0.75, 0.85}}},
	3: {{{0.28, 0.2}, {0.6, 0.15}, {0.7, 0.32}, {0.5, 0.48}, {0.72, 0.65}, {0.6, 0.85}, {0.28, 0.8}}},
	4: {{{0.6, 0.85}, {0.6, 0.15}, {0.25, 0.6}, {0.78, 0.6}}},
	5: {{{0.7, 0.15}, {0.32, 0.15}, {0.3, 0.45}, {0.6, 0.42}, {0.72, 0.62}, {0.6, 0.85}, {0.28, 0.82}}},
	6: {{{0.65, 0.15}, {0.35, 0.35}, {0.27, 0.65}, {0.45, 0.85}, {0.68, 0.72}, {0.6, 0.52}, {0.3, 0.58}}},
	7: {{{0.25, 0.15}, {0.75, 0.15}, {0.45, 0.85}}},
	8: {{{0.5, 0.15}, {0.3, 0.28}, {0.5, 0.47}, {0.7, 0.28}, {0.5, 0.15}}, {{0.5, 0.47}, {0.27, 0.67}, {0.5, 0.87}, {0.73, 0.67}, {0.5, 0.47}}},
	9: {{{0.68, 0.42}, {0.45, 0.5}, {0.3, 0.32}, {0.45, 0.15}, {0.68, 0.25}, {0.65, 0.6}, {0.55, 0.85}}},
}

// affine is a random 2-D similarity-ish distortion.
type affine struct {
	cos, sin, scaleX, scaleY, dx, dy float64
}

func randomAffine(rng *rand.Rand) affine {
	angle := (rng.Float64() - 0.5) * 0.45 // ±13°
	return affine{
		cos:    math.Cos(angle),
		sin:    math.Sin(angle),
		scaleX: 0.82 + rng.Float64()*0.22,
		scaleY: 0.82 + rng.Float64()*0.22,
		dx:     (rng.Float64() - 0.5) * 0.08,
		dy:     (rng.Float64() - 0.5) * 0.08,
	}
}

func (a affine) apply(x, y float64) (float64, float64) {
	// Center, scale, rotate, translate, un-center.
	cx, cy := x-0.5, y-0.5
	cx *= a.scaleX
	cy *= a.scaleY
	rx := cx*a.cos - cy*a.sin
	ry := cx*a.sin + cy*a.cos
	return rx + 0.5 + a.dx, ry + 0.5 + a.dy
}

// drawSegment rasterizes a line segment with a soft pen of the given
// radius (in pixels) using distance-based intensity.
func drawSegment(img []float64, x0, y0, x1, y1, radius float64) {
	steps := int(math.Hypot(x1-x0, y1-y0)/0.5) + 1
	for s := 0; s <= steps; s++ {
		t := float64(s) / float64(steps)
		px := x0 + t*(x1-x0)
		py := y0 + t*(y1-y0)
		lo := int(math.Floor(-radius - 1))
		hi := int(math.Ceil(radius + 1))
		for dy := lo; dy <= hi; dy++ {
			for dx := lo; dx <= hi; dx++ {
				ix := int(math.Round(px)) + dx
				iy := int(math.Round(py)) + dy
				if ix < 0 || ix >= Side || iy < 0 || iy >= Side {
					continue
				}
				d := math.Hypot(float64(ix)-px, float64(iy)-py)
				v := 1 - (d-radius+1)/1.5
				if v > 1 {
					v = 1
				}
				if v <= 0 {
					continue
				}
				idx := iy*Side + ix
				if v > img[idx] {
					img[idx] = v
				}
			}
		}
	}
}

// RenderDigit draws one digit with random jitter into a Pixels-long slice.
func RenderDigit(digit int, rng *rand.Rand) []float64 {
	if digit < 0 || digit > 9 {
		panic("mnistgen: digit out of range")
	}
	img := make([]float64, Pixels)
	a := randomAffine(rng)
	radius := 1.0 + rng.Float64()*0.6
	for _, st := range glyphs[digit] {
		for i := 0; i+1 < len(st); i++ {
			x0, y0 := a.apply(st[i][0], st[i][1])
			x1, y1 := a.apply(st[i+1][0], st[i+1][1])
			drawSegment(img, x0*Side, y0*Side, x1*Side, y1*Side, radius)
		}
	}
	// Pixel noise: strong jitter on the strokes, a faint floor plus rare
	// salt on the background (real MNIST backgrounds are almost exactly 0).
	for i, v := range img {
		var n float64
		if v > 0 {
			n = v + 0.06*rng.NormFloat64()
		} else {
			n = 0.008 * math.Abs(rng.NormFloat64())
			if rng.Float64() < 0.003 {
				n += 0.4 * rng.Float64()
			}
		}
		if n < 0 {
			n = 0
		}
		if n > 1 {
			n = 1
		}
		img[i] = n
	}
	return img
}

// Generate produces a balanced dataset of n synthetic digit images with
// labels 0–9, reproducible from the seed.
func Generate(n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &data.Dataset{
		X:       tensor.NewMatrix(n, Pixels),
		Y:       make([]int, n),
		Classes: 10,
	}
	for i := 0; i < n; i++ {
		digit := i % 10
		copy(d.X.Row(i), RenderDigit(digit, rng))
		d.Y[i] = digit
	}
	// Shuffle rows so batches are class-mixed.
	perm := rng.Perm(n)
	shuffled := d.Subset(perm)
	return shuffled
}

// EncodeDualRail converts images to the BCPNN input format: one input
// hypercolumn per pixel with two units (off, on), hot according to the
// threshold. This is the 28×28→784×2 encoding Ravichandran et al. use for
// MNIST, and the geometry the Fig. 1 masks are drawn over.
func EncodeDualRail(d *data.Dataset, threshold float64) *data.Encoded {
	e := &data.Encoded{
		Idx:          make([][]int32, d.Len()),
		Y:            append([]int(nil), d.Y...),
		Classes:      d.Classes,
		Hypercolumns: d.Features(),
		UnitsPerHC:   2,
	}
	for s := 0; s < d.Len(); s++ {
		row := d.X.Row(s)
		active := make([]int32, len(row))
		for p, v := range row {
			bit := int32(0)
			if v > threshold {
				bit = 1
			}
			active[p] = int32(p)*2 + bit
		}
		e.Idx[s] = active
	}
	return e
}
