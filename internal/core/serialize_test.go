package core

import (
	"bytes"
	"math/rand"
	"testing"

	"streambrain/internal/backend"
	"streambrain/internal/sgd"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	p := smallParams()
	p.Seed = 30
	train := synthEncoded(rng, 600, 8, 4, []int{1, 5}, 0.1)
	test := synthEncoded(rng, 150, 8, 4, []int{1, 5}, 0.1)
	n := NewNetwork(backend.MustNew("naive", 0), 8, 4, 2, p)
	n.Train(train)
	predBefore, scoreBefore := n.Predict(test)

	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, backend.MustNew("parallel", 2))
	if err != nil {
		t.Fatal(err)
	}
	if !statesEqual(n, loaded, 1e-12) {
		t.Fatal("derived parameters differ after round trip")
	}
	if loaded.Threshold() != n.Threshold() {
		t.Fatalf("threshold %v != %v", loaded.Threshold(), n.Threshold())
	}
	predAfter, scoreAfter := loaded.Predict(test)
	for i := range predBefore {
		if predBefore[i] != predAfter[i] {
			t.Fatalf("prediction changed at %d after reload", i)
		}
		if d := scoreBefore[i] - scoreAfter[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("score changed at %d: %v vs %v", i, scoreBefore[i], scoreAfter[i])
		}
	}
}

func TestSaveLoadHybridRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := smallParams()
	p.Seed = 31
	train := synthEncoded(rng, 600, 8, 4, []int{1, 5}, 0.1)
	test := synthEncoded(rng, 150, 8, 4, []int{1, 5}, 0.1)
	n := NewNetwork(backend.MustNew("naive", 0), 8, 4, 2, p)
	n.SetReadout(sgd.NewSoftmax(n.Hidden.Units(), 2, sgd.DefaultConfig(), rng))
	n.Train(train)
	predBefore, scoreBefore := n.Predict(test)

	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, backend.MustNew("parallel", 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := loaded.Out.(*sgd.Softmax); !ok {
		t.Fatalf("loaded readout is %T, want *sgd.Softmax", loaded.Out)
	}
	if loaded.Threshold() != n.Threshold() {
		t.Fatalf("threshold %v != %v", loaded.Threshold(), n.Threshold())
	}
	predAfter, scoreAfter := loaded.Predict(test)
	for i := range predBefore {
		if predBefore[i] != predAfter[i] {
			t.Fatalf("prediction changed at %d after reload", i)
		}
		if d := scoreBefore[i] - scoreAfter[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("score changed at %d: %v vs %v", i, scoreBefore[i], scoreAfter[i])
		}
	}
	// Hybrid resume: momentum buffers round-trip, so more supervised epochs
	// must not crash or destroy the model.
	accBefore, _ := loaded.Evaluate(test)
	loaded.TrainSupervised(train, 2)
	loaded.CalibrateThreshold(train)
	accAfter, _ := loaded.Evaluate(test)
	if accAfter < accBefore-0.1 {
		t.Fatalf("resumed hybrid training degraded accuracy %.3f -> %.3f", accBefore, accAfter)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob"), backend.MustNew("naive", 0)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsCorruptGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	p := smallParams()
	train := synthEncoded(rng, 200, 6, 4, []int{0}, 0.1)
	n := NewNetwork(backend.MustNew("naive", 0), 6, 4, 2, p)
	n.Train(train)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt: re-encode with a truncated hidden trace by decoding into the
	// state, mutating, and re-encoding is overkill — instead check that a
	// state saved from one geometry fails to load when Params disagree.
	// Simplest corruption: flip bytes mid-stream.
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xFF
	if _, err := Load(bytes.NewBuffer(raw), backend.MustNew("naive", 0)); err == nil {
		t.Log("byte-flip survived gob decode; acceptable only if geometry still validated")
	}
}

func TestResumeTrainingAfterLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	p := smallParams()
	p.Seed = 33
	train := synthEncoded(rng, 800, 8, 4, []int{1, 5}, 0.1)
	test := synthEncoded(rng, 200, 8, 4, []int{1, 5}, 0.1)
	n := NewNetwork(backend.MustNew("naive", 0), 8, 4, 2, p)
	n.TrainUnsupervised(train, 2)
	n.TrainSupervised(train, 2)
	n.CalibrateThreshold(train)

	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := Load(&buf, backend.MustNew("naive", 0))
	if err != nil {
		t.Fatal(err)
	}
	accBefore, _ := resumed.Evaluate(test)
	// Resume: more supervised epochs must not crash and should not destroy
	// the model.
	resumed.TrainSupervised(train, 3)
	resumed.CalibrateThreshold(train)
	accAfter, _ := resumed.Evaluate(test)
	if accAfter < accBefore-0.1 {
		t.Fatalf("resumed training degraded accuracy %.3f -> %.3f", accBefore, accAfter)
	}
}
