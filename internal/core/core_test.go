package core

import (
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/backend"
	"streambrain/internal/data"
	"streambrain/internal/tensor"
)

// synthEncoded builds a one-hot dataset where the label is a (noisy)
// function of a few informative hypercolumns; the rest are uniform noise.
// informative[i] lists which hypercolumns carry signal.
func synthEncoded(rng *rand.Rand, n, fi, mi int, informative []int, noise float64) *data.Encoded {
	e := &data.Encoded{
		Idx:          make([][]int32, n),
		Y:            make([]int, n),
		Classes:      2,
		Hypercolumns: fi,
		UnitsPerHC:   mi,
	}
	isInf := make(map[int]bool)
	for _, f := range informative {
		isInf[f] = true
	}
	for s := 0; s < n; s++ {
		y := rng.Intn(2)
		e.Y[s] = y
		active := make([]int32, fi)
		for f := 0; f < fi; f++ {
			var bin int
			if isInf[f] && rng.Float64() > noise {
				// Signal: classes occupy disjoint halves of the bins.
				if y == 1 {
					bin = mi/2 + rng.Intn(mi-mi/2)
				} else {
					bin = rng.Intn(mi / 2)
				}
			} else {
				bin = rng.Intn(mi)
			}
			active[f] = int32(f*mi + bin)
		}
		e.Idx[s] = active
	}
	return e
}

func smallParams() Params {
	p := DefaultParams()
	p.HCUs = 2
	p.MCUs = 8
	p.ReceptiveField = 0.5
	p.BatchSize = 32
	p.UnsupervisedEpochs = 3
	p.SupervisedEpochs = 3
	p.Taupdt = 0.05
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.HCUs = 0 },
		func(p *Params) { p.MCUs = 1 },
		func(p *Params) { p.ReceptiveField = 1.5 },
		func(p *Params) { p.Taupdt = 0 },
		func(p *Params) { p.Taubdt = 2 },
		func(p *Params) { p.Temperature = 0 },
		func(p *Params) { p.Eps = 0 },
		func(p *Params) { p.BatchSize = 0 },
		func(p *Params) { p.UnsupervisedEpochs = -1 },
	}
	for i, mut := range bad {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestReceptiveK(t *testing.T) {
	cases := []struct {
		rf   float64
		fi   int
		want int
	}{{0, 28, 0}, {0.05, 28, 1}, {0.30, 28, 8}, {0.5, 28, 14}, {1, 28, 28}, {0.40, 28, 11}}
	for _, c := range cases {
		if got := receptiveK(c.rf, c.fi); got != c.want {
			t.Fatalf("receptiveK(%v,%d) = %d, want %d", c.rf, c.fi, got, c.want)
		}
	}
}

// maskCount returns how many input hypercolumns HCU h sees.
func maskCount(l *HiddenLayer, h int) int {
	n := 0
	for fi := 0; fi < l.Fi; fi++ {
		if l.Mask[fi*l.H+h] {
			n++
		}
	}
	return n
}

func TestHiddenLayerInitInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := smallParams()
	l := NewHiddenLayer(backend.MustNew("naive", 0), 10, 4, p, rng)
	// Mask: exactly K active per HCU.
	for h := 0; h < l.H; h++ {
		if got := maskCount(l, h); got != l.K {
			t.Fatalf("HCU %d has %d active inputs, want %d", h, got, l.K)
		}
	}
	// Traces are valid probabilities.
	for _, v := range l.Ci {
		if v <= 0 || v > 1 {
			t.Fatalf("Ci out of range: %v", v)
		}
	}
	for _, v := range l.Cj {
		if math.Abs(v-1.0/float64(l.M)) > 1e-12 {
			t.Fatalf("Cj prior wrong: %v", v)
		}
	}
}

func TestForwardIsDistributionPerHCU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := smallParams()
	l := NewHiddenLayer(backend.MustNew("naive", 0), 10, 4, p, rng)
	e := synthEncoded(rng, 16, 10, 4, []int{0, 1}, 0.1)
	act := tensor.NewMatrix(16, l.Units())
	l.Forward(e.Idx[:16], act)
	for s := 0; s < 16; s++ {
		row := act.Row(s)
		for h := 0; h < l.H; h++ {
			var sum float64
			for j := h * l.M; j < (h+1)*l.M; j++ {
				if row[j] < 0 {
					t.Fatalf("negative activation")
				}
				sum += row[j]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("HCU %d mass = %v", h, sum)
			}
		}
	}
}

// TestTracesStayProbabilities: after many training batches, all traces must
// remain valid probability estimates — the central numerical invariant of
// the BCPNN rule.
func TestTracesStayProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := smallParams()
	l := NewHiddenLayer(backend.MustNew("naive", 0), 8, 5, p, rng)
	e := synthEncoded(rng, 256, 8, 5, []int{0, 3}, 0.2)
	l.InitTracesFromData(e.Idx)
	l.SetNoise(p.SupportNoise)
	for epoch := 0; epoch < 4; epoch++ {
		e.Batches(p.BatchSize, rng, func(idx [][]int32, _ []int) {
			l.TrainBatch(idx)
		})
		l.StructuralUpdate()
	}
	for i, v := range l.Ci {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Ci[%d] = %v", i, v)
		}
	}
	for j, v := range l.Cj {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Cj[%d] = %v", j, v)
		}
	}
	for i, v := range l.Cij.Data {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Cij[%d] = %v", i, v)
		}
	}
	// Per-hypercolumn sums of Ci must stay ≈1 (one-hot inputs).
	for fi := 0; fi < l.Fi; fi++ {
		var sum float64
		for u := fi * l.Mi; u < (fi+1)*l.Mi; u++ {
			sum += l.Ci[u]
		}
		if math.Abs(sum-1) > 0.05 {
			t.Fatalf("input hypercolumn %d mass = %v", fi, sum)
		}
	}
	// Per-HCU sums of Cj likewise.
	for h := 0; h < l.H; h++ {
		var sum float64
		for j := h * l.M; j < (h+1)*l.M; j++ {
			sum += l.Cj[j]
		}
		if math.Abs(sum-1) > 0.05 {
			t.Fatalf("HCU %d activation mass = %v", h, sum)
		}
	}
}

// TestMaskInvariantUnderTraining: structural plasticity must preserve the
// exact receptive-field size K per HCU, whatever it does.
func TestMaskInvariantUnderTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := smallParams()
	p.SwapsPerEpoch = 3
	l := NewHiddenLayer(backend.MustNew("parallel", 4), 12, 4, p, rng)
	e := synthEncoded(rng, 300, 12, 4, []int{1, 5, 9}, 0.1)
	for epoch := 0; epoch < 5; epoch++ {
		e.Batches(p.BatchSize, rng, func(idx [][]int32, _ []int) {
			l.TrainBatch(idx)
		})
		l.StructuralUpdate()
		for h := 0; h < l.H; h++ {
			if got := maskCount(l, h); got != l.K {
				t.Fatalf("epoch %d HCU %d: %d active, want %d", epoch, h, got, l.K)
			}
		}
	}
}

// TestStructuralPlasticityFindsSignal: with a tight receptive field, the
// mask must migrate toward the informative hypercolumns — the paper's
// headline qualitative claim ("the network learns to look at the most
// interesting aspects of the input", §II).
func TestStructuralPlasticityFindsSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := smallParams()
	p.HCUs = 1
	p.MCUs = 8
	p.ReceptiveField = 0.2 // 3 of 15 hypercolumns
	p.SwapsPerEpoch = 2
	p.Taupdt = 0.05
	informative := []int{2, 7, 11}
	l := NewHiddenLayer(backend.MustNew("naive", 0), 15, 4, p, rng)
	e := synthEncoded(rng, 1500, 15, 4, informative, 0.05)
	l.InitTracesFromData(e.Idx)
	const epochs = 12
	for epoch := 0; epoch < epochs; epoch++ {
		l.SetNoise(p.SupportNoise * (1 - float64(epoch)/float64(epochs-1)))
		e.Batches(p.BatchSize, rng, func(idx [][]int32, _ []int) {
			l.TrainBatch(idx)
		})
		l.StructuralUpdate()
	}
	field := l.ReceptiveField(0)
	hits := 0
	for _, f := range informative {
		if field[f] {
			hits++
		}
	}
	if hits < 2 {
		t.Fatalf("receptive field found only %d of 3 informative inputs: %v", hits, field)
	}
}

// TestMutualInformationRanksSignal: hypercolumns that share latent structure
// (here: several columns all driven by the same hidden variable) must
// receive higher MI scores than independent-noise columns after training.
// Note a *single* informative column is undetectable without labels — MI
// with the hidden code only rises for inputs whose structure is shared, the
// same reason MNIST's mutually-correlated center pixels win in Fig. 1.
func TestMutualInformationRanksSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := smallParams()
	p.HCUs = 1
	p.ReceptiveField = 1.0 // full view, no masking effects on traces
	p.Taupdt = 0.05
	informative := []int{3, 7}
	l := NewHiddenLayer(backend.MustNew("naive", 0), 10, 4, p, rng)
	e := synthEncoded(rng, 2000, 10, 4, informative, 0.05)
	l.InitTracesFromData(e.Idx)
	const epochs = 10
	for epoch := 0; epoch < epochs; epoch++ {
		l.SetNoise(p.SupportNoise * (1 - float64(epoch)/float64(epochs-1)))
		e.Batches(p.BatchSize, rng, func(idx [][]int32, _ []int) {
			l.TrainBatch(idx)
		})
	}
	mi := l.MutualInformation()
	minSignal := math.Min(mi[3], mi[7])
	for fi := 0; fi < 10; fi++ {
		if fi == 3 || fi == 7 {
			continue
		}
		if minSignal <= mi[fi] {
			t.Fatalf("MI(signal)=%v not above MI(noise %d)=%v", minSignal, fi, mi[fi])
		}
	}
	top := l.TopInputs(0)
	if !(top[0] == 3 || top[0] == 7) || !(top[1] == 3 || top[1] == 7) {
		t.Fatalf("TopInputs ranked %v first, want {3,7} on top", top[:2])
	}
}

func TestStructuralUpdateDegenerateFields(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rf := range []float64{0, 1} {
		p := smallParams()
		p.ReceptiveField = rf
		l := NewHiddenLayer(backend.MustNew("naive", 0), 6, 3, p, rng)
		if swaps := l.StructuralUpdate(); swaps != nil {
			t.Fatalf("RF=%v: expected no swaps, got %v", rf, swaps)
		}
	}
}

// TestNoDeadUnits: homeostasis must keep a healthy fraction of MCUs alive
// after training (the effect the bias-gain regulation exists for).
func TestNoDeadUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := smallParams()
	p.HCUs = 1
	p.MCUs = 10
	p.Taupdt = 0.05
	l := NewHiddenLayer(backend.MustNew("naive", 0), 8, 4, p, rng)
	e := synthEncoded(rng, 1000, 8, 4, []int{0, 1}, 0.1)
	l.InitTracesFromData(e.Idx)
	const epochs = 10
	for epoch := 0; epoch < epochs; epoch++ {
		l.SetNoise(p.SupportNoise * (1 - float64(epoch)/float64(epochs-1)))
		e.Batches(p.BatchSize, rng, func(idx [][]int32, _ []int) {
			l.TrainBatch(idx)
		})
	}
	if frac := l.ActiveFraction(); frac < 0.5 {
		t.Fatalf("only %.0f%% of MCUs alive after training", frac*100)
	}
}

func TestClassifierLearnsDirectMapping(t *testing.T) {
	// Feed the classifier a "hidden code" that is simply the one-hot label
	// plus noise: it must learn the identity mapping.
	rng := rand.New(rand.NewSource(9))
	p := smallParams()
	p.Taupdt = 0.05
	be := backend.MustNew("naive", 0)
	c := NewClassifier(be, 4, 2, p, rng)
	act := tensor.NewMatrix(32, 4)
	labels := make([]int, 32)
	for step := 0; step < 200; step++ {
		for s := 0; s < 32; s++ {
			y := rng.Intn(2)
			labels[s] = y
			for j := 0; j < 4; j++ {
				act.Set(s, j, 0.1*rng.Float64())
			}
			act.Set(s, y, 0.8+0.2*rng.Float64())
		}
		c.TrainBatch(act, labels)
	}
	probs := tensor.NewMatrix(32, 2)
	c.Scores(act, probs)
	correct := 0
	for s := 0; s < 32; s++ {
		if tensor.ArgMaxRow(probs.Row(s)) == labels[s] {
			correct++
		}
	}
	if correct < 30 {
		t.Fatalf("classifier got %d/32 on a trivially separable code", correct)
	}
}

// TestNetworkLearnsSynthetic is the package's integration test: a full
// unsupervised+supervised run must clear 80% accuracy on the separable
// synthetic task (chance is 50%).
func TestNetworkLearnsSynthetic(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := smallParams()
	p.HCUs = 2
	p.MCUs = 10
	p.ReceptiveField = 0.6
	p.UnsupervisedEpochs = 6
	p.SupervisedEpochs = 6
	p.Taupdt = 0.05
	n := NewNetwork(backend.MustNew("parallel", 4), 10, 4, 2, p)
	train := synthEncoded(rng, 2000, 10, 4, []int{1, 4, 8}, 0.15)
	test := synthEncoded(rng, 600, 10, 4, []int{1, 4, 8}, 0.15)
	n.Train(train)
	acc, auc := n.Evaluate(test)
	if acc < 0.80 {
		t.Fatalf("accuracy %.3f below 0.80 on separable task", acc)
	}
	if auc < 0.85 {
		t.Fatalf("AUC %.3f below 0.85 on separable task", auc)
	}
	if n.TrainTime <= 0 {
		t.Fatal("TrainTime not recorded")
	}
}

// TestBackendsAgreeOnTraining: training the same network on naive and
// parallel backends from the same seed must produce identical predictions —
// parallelization must not change the math.
func TestBackendsAgreeOnTraining(t *testing.T) {
	rngData := rand.New(rand.NewSource(11))
	train := synthEncoded(rngData, 400, 8, 4, []int{0, 5}, 0.1)
	test := synthEncoded(rngData, 100, 8, 4, []int{0, 5}, 0.1)
	run := func(name string) []int {
		p := smallParams()
		p.UnsupervisedEpochs = 2
		p.SupervisedEpochs = 2
		n := NewNetwork(backend.MustNew(name, 4), 8, 4, 2, p)
		n.Train(train)
		pred, _ := n.Predict(test)
		return pred
	}
	a := run("naive")
	b := run("parallel")
	c := run("gpusim")
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("backends disagree at sample %d: naive=%d parallel=%d gpusim=%d",
				i, a[i], b[i], c[i])
		}
	}
}

func TestNetworkDeterministicAcrossRuns(t *testing.T) {
	rngData := rand.New(rand.NewSource(12))
	train := synthEncoded(rngData, 300, 6, 4, []int{2}, 0.1)
	test := synthEncoded(rngData, 80, 6, 4, []int{2}, 0.1)
	run := func() []int {
		p := smallParams()
		p.UnsupervisedEpochs = 2
		p.SupervisedEpochs = 2
		p.Seed = 77
		n := NewNetwork(backend.MustNew("naive", 0), 6, 4, 2, p)
		n.Train(train)
		pred, _ := n.Predict(test)
		return pred
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different prediction at %d", i)
		}
	}
}

func TestPredictScoresAreProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := smallParams()
	p.UnsupervisedEpochs = 1
	p.SupervisedEpochs = 1
	n := NewNetwork(backend.MustNew("naive", 0), 6, 4, 2, p)
	train := synthEncoded(rng, 200, 6, 4, []int{0}, 0.1)
	n.Train(train)
	_, score := n.Predict(train)
	for i, s := range score {
		if s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score[%d] = %v", i, s)
		}
	}
}

func TestSetReceptiveFieldRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := smallParams()
	l := NewHiddenLayer(backend.MustNew("naive", 0), 6, 3, p, rng)
	field := make([]bool, 6)
	field[1], field[4], field[5] = true, true, true
	l.SetReceptiveField(0, field)
	got := l.ReceptiveField(0)
	for i := range field {
		if got[i] != field[i] {
			t.Fatalf("field mismatch at %d", i)
		}
	}
}
