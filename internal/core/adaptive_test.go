package core

import (
	"math/rand"
	"testing"

	"streambrain/internal/backend"
)

func TestAdaptiveSettersClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	l := NewHiddenLayer(backend.MustNew("naive", 0), 6, 3, smallParams(), rng)
	l.SetSwapsPerEpoch(-5)
	if l.SwapsPerEpoch() != 0 {
		t.Fatalf("negative budget not clamped: %d", l.SwapsPerEpoch())
	}
	l.SetSwapsPerEpoch(7)
	if l.SwapsPerEpoch() != 7 {
		t.Fatal("budget setter ignored")
	}
	l.SetSwapMargin(-1)
	if l.SwapMargin() != 0 {
		t.Fatalf("negative margin not clamped: %v", l.SwapMargin())
	}
	l.SetSwapMargin(0.2)
	if l.SwapMargin() != 0.2 {
		t.Fatal("margin setter ignored")
	}
}

// TestAdaptiveCoolsDownWhenConverged: with no swaps happening, the
// controller must shrink the budget toward MinSwaps and widen the margin.
func TestAdaptiveCoolsDownWhenConverged(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := smallParams()
	p.SwapsPerEpoch = 8
	l := NewHiddenLayer(backend.MustNew("naive", 0), 10, 4, p, rng)
	a := NewAdaptivePlasticity()
	margin0 := l.SwapMargin()
	for epoch := 0; epoch < 6; epoch++ {
		a.Observe(epoch, l, nil) // no swaps = converged signal
	}
	if l.SwapsPerEpoch() != a.MinSwaps {
		t.Fatalf("budget %d after sustained convergence, want %d",
			l.SwapsPerEpoch(), a.MinSwaps)
	}
	if l.SwapMargin() <= margin0 {
		t.Fatalf("margin %v did not widen from %v", l.SwapMargin(), margin0)
	}
	if len(a.History) != 6 {
		t.Fatalf("history has %d steps", len(a.History))
	}
}

// TestAdaptiveHeatsUpOnLargeGains: big realized MI gains must grow the
// budget (bounded by MaxSwaps).
func TestAdaptiveHeatsUpOnLargeGains(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := smallParams()
	p.SwapsPerEpoch = 2
	l := NewHiddenLayer(backend.MustNew("naive", 0), 10, 4, p, rng)
	a := NewAdaptivePlasticity()
	big := []SwapRecord{{HCU: 0, Silenced: 1, Enabled: 2, GainMI: 1e6}}
	for epoch := 0; epoch < 10; epoch++ {
		a.Observe(epoch, l, big)
	}
	if l.SwapsPerEpoch() != a.MaxSwaps {
		t.Fatalf("budget %d after sustained gains, want cap %d",
			l.SwapsPerEpoch(), a.MaxSwaps)
	}
}

// TestAdaptiveEndToEnd: the controller attached as an epoch hook must keep
// the network learning and converge the swap budget downward by the end.
func TestAdaptiveEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	p := smallParams()
	p.HCUs = 1
	p.MCUs = 10
	p.ReceptiveField = 0.3
	p.SwapsPerEpoch = 4
	p.UnsupervisedEpochs = 10
	p.SupervisedEpochs = 5
	p.Taupdt = 0.05
	train := synthEncoded(rng, 1500, 10, 4, []int{2, 6}, 0.1)
	test := synthEncoded(rng, 400, 10, 4, []int{2, 6}, 0.1)
	n := NewNetwork(backend.MustNew("naive", 0), 10, 4, 2, p)
	a := NewAdaptivePlasticity()
	hook := func(epoch int, l *HiddenLayer) {
		a.Observe(epoch, l, l.LastSwaps())
	}
	n.TrainUnsupervised(train, p.UnsupervisedEpochs, hook)
	n.TrainSupervised(train, p.SupervisedEpochs)
	n.CalibrateThreshold(train)
	acc, _ := n.Evaluate(test)
	if acc < 0.70 {
		t.Fatalf("adaptive training accuracy %.3f", acc)
	}
	if len(a.History) != p.UnsupervisedEpochs {
		t.Fatalf("controller observed %d epochs", len(a.History))
	}
	// The budget at the end should not exceed the starting budget once the
	// mask has settled (cool-down happened at least once).
	cooled := false
	for _, step := range a.History {
		if step.Swaps < 4 {
			cooled = true
		}
	}
	if !cooled {
		t.Log("controller never cooled; acceptable on some seeds but worth watching")
	}
}
