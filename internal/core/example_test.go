package core_test

// Runnable example for the distributed trainer: data-parallel BCPNN over the
// in-process fabric. Swapping the World for mpi.NewTCPWorld runs the same
// replicas over real loopback sockets; cmd/streambrain-dist forks them as
// separate OS processes (DESIGN.md §10).

import (
	"fmt"

	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/higgs"
)

func ExampleDistributedTrainer() {
	ds := higgs.Generate(4000, 0.5, 1)
	enc := data.FitEncoder(ds, 10)
	encoded := enc.Transform(ds)

	p := core.DefaultParams()
	p.MCUs = 30
	p.ReceptiveField = 0.40
	p.Taupdt = 0.05
	p.Seed = 1

	// Four identically-seeded replicas, round-robin shards, one trace
	// allreduce per batch: the §II-B data-parallel scheme.
	dt := core.NewDistributedTrainer(4, "naive", 1,
		encoded.Hypercolumns, encoded.UnitsPerHC, encoded.Classes, p, encoded)
	net, err := dt.Train(2, 2)
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	acc, _ := net.Evaluate(encoded)
	fmt.Println("replicas:", len(dt.Networks()))
	fmt.Println("accuracy above chance:", acc > 0.52)
	// Output:
	// replicas: 4
	// accuracy above chance: true
}
