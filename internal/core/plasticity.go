package core

import (
	"math"
	"sort"
)

// MutualInformation returns the Fi×H matrix of estimated mutual information
// between each input hypercolumn and each HCU's output variable, computed
// from the probability traces:
//
//	I(fi, h) = Σ_{a∈fi} Σ_{j∈h} Cij[a,j] · log( Cij[a,j] / (Ci[a]·Cj[j]) )
//
// Because the traces are dense (the mask gates only the support), the score
// is defined for silent connections too — this is what lets structural
// plasticity compare "active low-entropy" against "silent high-entropy"
// connections, the exchange the paper describes in §III-B.
func (l *HiddenLayer) MutualInformation() []float64 {
	eps := l.p.Eps
	mi := make([]float64, l.Fi*l.H)
	units := l.Units()
	for a := 0; a < l.Inputs(); a++ {
		fi := a / l.Mi
		pa := math.Max(l.Ci[a], eps)
		row := l.Cij.Row(a)
		for j := 0; j < units; j++ {
			h := j / l.M
			pj := math.Max(l.Cj[j], eps)
			paj := row[j]
			if paj < eps {
				continue // lim p→0 of p·log p = 0
			}
			mi[fi*l.H+h] += paj * math.Log(paj/(pa*pj))
		}
	}
	// Estimation noise can push a block's sum slightly negative; clamp, MI
	// is non-negative by definition.
	for i, v := range mi {
		if v < 0 {
			mi[i] = 0
		}
	}
	return mi
}

// SwapRecord describes one structural-plasticity exchange.
type SwapRecord struct {
	HCU      int
	Silenced int // input hypercolumn turned off
	Enabled  int // input hypercolumn turned on
	GainMI   float64
}

// StructuralUpdate runs one round of structural plasticity: for each HCU,
// up to SwapsPerEpoch exchanges of the weakest active input hypercolumn for
// the strongest silent one, provided the silent one's MI exceeds the active
// one's by the hysteresis margin. Returns the executed swaps. The mask keeps
// exactly K active entries per HCU throughout (checked by tests as an
// invariant).
func (l *HiddenLayer) StructuralUpdate() []SwapRecord {
	if l.K == 0 || l.K == l.Fi {
		return nil // nothing to exchange at the degenerate field sizes
	}
	mi := l.MutualInformation()
	var swaps []SwapRecord
	for h := 0; h < l.H; h++ {
		for s := 0; s < l.p.SwapsPerEpoch; s++ {
			worstActive, bestSilent := -1, -1
			worstMI, bestMI := math.Inf(1), math.Inf(-1)
			for fi := 0; fi < l.Fi; fi++ {
				score := mi[fi*l.H+h]
				if l.Mask[fi*l.H+h] {
					if score < worstMI {
						worstMI, worstActive = score, fi
					}
				} else if score > bestMI {
					bestMI, bestSilent = score, fi
				}
			}
			if worstActive < 0 || bestSilent < 0 {
				break
			}
			if bestMI <= worstMI*(1+l.p.SwapMargin) {
				break // no silent candidate clears the hysteresis bar
			}
			l.Mask[worstActive*l.H+h] = false
			l.Mask[bestSilent*l.H+h] = true
			swaps = append(swaps, SwapRecord{
				HCU: h, Silenced: worstActive, Enabled: bestSilent,
				GainMI: bestMI - worstMI,
			})
		}
	}
	if len(swaps) > 0 {
		l.invalidateBlocks()
		l.refreshParameters()
	}
	l.lastSwaps = swaps
	return swaps
}

// PruneRegrow runs one usage-driven structural step of the sparse-compute
// regime (DESIGN.md §15): per HCU it first regrows up to regrow random silent
// input hypercolumns, then prunes the lowest-MI active ones until exactly
// targetK remain active. Regrown connections have their joint-trace block
// re-seeded to the product of the marginals (Cij = Ci·Cj), the neutral state
// — their weights re-derive to ~0 and their MI starts at 0, so they are
// excluded from the same step's prune ranking (they would otherwise be culled
// immediately) and must earn their keep before the next one.
//
// Driving targetK down a schedule is what turns structural plasticity into a
// compute lever: every pruned hypercolumn removes an (Mi×M)-element block
// from the forward gather, the joint-trace update and the weight
// re-derivation of every batch. Returns one SwapRecord per event: regrowth
// has Silenced = -1, pruning has Enabled = -1 and GainMI = -MI of the culled
// connection. The layer's K becomes targetK.
func (l *HiddenLayer) PruneRegrow(targetK, regrow int) []SwapRecord {
	if targetK < 1 {
		targetK = 1
	}
	if targetK > l.Fi {
		targetK = l.Fi
	}
	// Growth is rate-limited by the regrow budget: a target above what this
	// round can reach clamps to K+regrow so the exactly-K-per-HCU invariant
	// survives (every HCU has the same silent count going in).
	if lim := l.K + regrow; targetK > lim {
		targetK = lim
	}
	var swaps []SwapRecord
	// Regrow first, across all HCUs, so one MI pass then scores every prune.
	regrown := make(map[int]bool) // fi*H+h of this step's regrowths
	for h := 0; h < l.H; h++ {
		var silent []int
		for fi := 0; fi < l.Fi; fi++ {
			if !l.Mask[fi*l.H+h] {
				silent = append(silent, fi)
			}
		}
		r := regrow
		if r > len(silent) {
			r = len(silent)
		}
		if r <= 0 {
			continue
		}
		for _, pick := range l.rng.Perm(len(silent))[:r] {
			fi := silent[pick]
			l.Mask[fi*l.H+h] = true
			regrown[fi*l.H+h] = true
			l.reseedBlock(fi, h)
			swaps = append(swaps, SwapRecord{HCU: h, Silenced: -1, Enabled: fi})
		}
	}
	mi := l.MutualInformation()
	for h := 0; h < l.H; h++ {
		var active []int
		for fi := 0; fi < l.Fi; fi++ {
			if l.Mask[fi*l.H+h] && !regrown[fi*l.H+h] {
				active = append(active, fi)
			}
		}
		// Lowest MI first; this step's regrowths rank after every veteran.
		sort.Slice(active, func(a, b int) bool {
			return mi[active[a]*l.H+h] < mi[active[b]*l.H+h]
		})
		for fi := 0; fi < l.Fi; fi++ {
			if regrown[fi*l.H+h] {
				active = append(active, fi)
			}
		}
		nPrune := len(active) - targetK
		for i := 0; i < nPrune; i++ {
			fi := active[i]
			l.Mask[fi*l.H+h] = false
			swaps = append(swaps, SwapRecord{HCU: h, Silenced: fi, Enabled: -1,
				GainMI: -mi[fi*l.H+h]})
		}
	}
	l.K = targetK
	l.invalidateBlocks()
	l.refreshParameters()
	l.lastSwaps = swaps
	return swaps
}

// reseedBlock resets the joint-trace block of (input hypercolumn fi, HCU h)
// to the product of the current marginals — the zero-information state a
// regrown connection learns from.
func (l *HiddenLayer) reseedBlock(fi, h int) {
	for a := fi * l.Mi; a < (fi+1)*l.Mi; a++ {
		row := l.Cij.Row(a)
		for j := h * l.M; j < (h+1)*l.M; j++ {
			row[j] = l.Ci[a] * l.Cj[j]
		}
	}
}

// LastSwaps returns the records of the most recent StructuralUpdate — the
// signal the adaptive-plasticity controller consumes from an EpochHook.
func (l *HiddenLayer) LastSwaps() []SwapRecord { return l.lastSwaps }

// ReceptiveField returns HCU h's mask as a []bool over input hypercolumns —
// the quantity Figs. 1, 2 and 5 of the paper visualize.
func (l *HiddenLayer) ReceptiveField(h int) []bool {
	out := make([]bool, l.Fi)
	for fi := 0; fi < l.Fi; fi++ {
		out[fi] = l.Mask[fi*l.H+h]
	}
	return out
}

// SetReceptiveField overwrites HCU h's mask (used by tests and by the
// receptive-field resize API); the layer's K is not changed, so the caller
// is responsible for keeping the count consistent.
func (l *HiddenLayer) SetReceptiveField(h int, field []bool) {
	if len(field) != l.Fi {
		panic("core: SetReceptiveField length mismatch")
	}
	for fi, on := range field {
		l.Mask[fi*l.H+h] = on
	}
	l.invalidateBlocks()
	l.refreshParameters()
}

// TopInputs returns the input hypercolumns of HCU h ranked by descending
// mutual information — the "where does this HCU look" introspection that
// the paper argues is BCPNN's unique data-science payoff (§V-B).
func (l *HiddenLayer) TopInputs(h int) []int {
	mi := l.MutualInformation()
	idx := make([]int, l.Fi)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return mi[idx[a]*l.H+h] > mi[idx[b]*l.H+h]
	})
	return idx
}
