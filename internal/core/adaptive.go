package core

import "sort"

// AdaptivePlasticity implements the paper's stated future direction of
// "adapting hyperparameters associated with structural plasticity
// dynamically online" (§VII): a controller that watches the mutual-
// information gains realized by each epoch's mask swaps and adjusts the
// swap budget and hysteresis margin.
//
// Control law: when the median realized gain is large relative to the mean
// per-connection MI, the mask is far from converged — raise the budget so
// it moves faster; when gains shrink below a fraction of that scale, the
// mask has converged — shrink the budget toward zero and widen the margin
// so noise cannot thrash it. The controller only ever touches the two
// structural hyperparameters; the learning rule itself is untouched.
type AdaptivePlasticity struct {
	// MinSwaps and MaxSwaps bound the per-epoch budget.
	MinSwaps, MaxSwaps int
	// GrowFactor scales the budget up on large gains; ShrinkFactor scales
	// it down on small gains.
	GrowFactor, ShrinkFactor float64
	// LowGainFraction is the convergence threshold: median gain below this
	// fraction of the mean active-connection MI counts as "converged".
	LowGainFraction float64

	// History records the controller's decisions for inspection/tests.
	History []AdaptiveStep
}

// AdaptiveStep is one epoch's controller decision.
type AdaptiveStep struct {
	Epoch      int
	MedianGain float64
	MeanMI     float64
	Swaps      int // budget chosen for the next epoch
	Margin     float64
}

// NewAdaptivePlasticity returns a controller with conservative defaults.
func NewAdaptivePlasticity() *AdaptivePlasticity {
	return &AdaptivePlasticity{
		MinSwaps:        0,
		MaxSwaps:        16,
		GrowFactor:      1.5,
		ShrinkFactor:    0.5,
		LowGainFraction: 0.05,
	}
}

// Observe consumes one epoch's swap records and retunes the layer. It is
// designed to be called from an EpochHook, after the layer's
// StructuralUpdate for that epoch.
func (a *AdaptivePlasticity) Observe(epoch int, l *HiddenLayer, swaps []SwapRecord) {
	// Scale reference: mean MI of currently active connections.
	mi := l.MutualInformation()
	var sum float64
	var n int
	for i, on := range l.Mask {
		if on {
			sum += mi[i]
			n++
		}
	}
	meanMI := 0.0
	if n > 0 {
		meanMI = sum / float64(n)
	}
	med := medianGain(swaps)

	budget := l.p.SwapsPerEpoch
	margin := l.p.SwapMargin
	switch {
	case len(swaps) == 0 || med < a.LowGainFraction*meanMI:
		// Converged (or nothing worth swapping): cool down.
		budget = int(float64(budget) * a.ShrinkFactor)
		margin *= 1.25
		if margin > 0.5 {
			margin = 0.5
		}
	case med > 2*a.LowGainFraction*meanMI:
		// Plenty of structure left to find: heat up.
		budget = int(float64(budget)*a.GrowFactor) + 1
		margin *= 0.9
		if margin < 0.01 {
			margin = 0.01
		}
	}
	if budget < a.MinSwaps {
		budget = a.MinSwaps
	}
	if budget > a.MaxSwaps {
		budget = a.MaxSwaps
	}
	l.p.SwapsPerEpoch = budget
	l.p.SwapMargin = margin
	a.History = append(a.History, AdaptiveStep{
		Epoch: epoch, MedianGain: med, MeanMI: meanMI,
		Swaps: budget, Margin: margin,
	})
}

// SetSwapsPerEpoch overrides the structural swap budget at runtime — the
// hook the interactive (ParaView-guided, §VII) control path uses.
func (l *HiddenLayer) SetSwapsPerEpoch(n int) {
	if n < 0 {
		n = 0
	}
	l.p.SwapsPerEpoch = n
}

// SetSwapMargin overrides the swap hysteresis margin at runtime.
func (l *HiddenLayer) SetSwapMargin(m float64) {
	if m < 0 {
		m = 0
	}
	l.p.SwapMargin = m
}

// SwapsPerEpoch reports the current budget (tests and UIs read it back).
func (l *HiddenLayer) SwapsPerEpoch() int { return l.p.SwapsPerEpoch }

// SwapMargin reports the current hysteresis margin.
func (l *HiddenLayer) SwapMargin() float64 { return l.p.SwapMargin }

func medianGain(swaps []SwapRecord) float64 {
	if len(swaps) == 0 {
		return 0
	}
	gains := make([]float64, len(swaps))
	for i, s := range swaps {
		gains[i] = s.GainMI
	}
	sort.Float64s(gains)
	return gains[len(gains)/2]
}
