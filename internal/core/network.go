package core

import (
	"math/rand"
	"time"

	"streambrain/internal/backend"
	"streambrain/internal/data"
	"streambrain/internal/metrics"
	"streambrain/internal/tensor"
)

// EpochHook observes training after each unsupervised epoch; the in-situ
// visualization adaptors (internal/viz) attach here, playing the role of the
// ParaView Catalyst co-processing trigger ("the adaptor triggers
// co-processing at end of each epoch", paper §III-B).
type EpochHook func(epoch int, layer *HiddenLayer)

// Network is the three-layer StreamBrain topology the paper uses throughout:
// input → hidden BCPNN layer → classification layer (§III: "we primarily
// focus on three-layer networks").
type Network struct {
	be     backend.Backend
	Hidden *HiddenLayer
	Out    Readout
	p      Params
	rng    *rand.Rand

	// tracesSeeded records that the hidden input marginals were seeded from
	// data (done once, lazily, on the first unsupervised epoch).
	tracesSeeded bool

	// threshold is the calibrated binary decision threshold on the class-1
	// score (0.5 until CalibrateThreshold runs). Generative BCPNN readouts
	// sum log-odds over correlated hidden units, which preserves ranking
	// (AUC) but systematically offsets the posterior scale, so argmax at
	// 0.5 can collapse to the majority class; calibrating the cut on
	// training data is the standard remedy and uses no test information.
	threshold float64

	// TrainTime accumulates wall-clock training duration; the Fig. 3/4
	// harnesses report it alongside accuracy.
	TrainTime time.Duration

	// partialAct is scratch reused across PartialFit micro-batches so the
	// streaming ingest loop stays allocation-free at steady state.
	partialAct *tensor.Matrix
}

// NewNetwork builds a network for one-hot input of fi hypercolumns × mi
// units and the given class count, with a pure-BCPNN readout.
func NewNetwork(be backend.Backend, fi, mi, classes int, p Params) *Network {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	hidden := NewHiddenLayer(be, fi, mi, p, rng)
	out := NewClassifier(be, hidden.Units(), classes, p, rng)
	return &Network{be: be, Hidden: hidden, Out: out, p: p, rng: rng, threshold: 0.5}
}

// SetReadout swaps the classification head (the hybrid BCPNN+SGD mode
// installs an sgd.Softmax here).
func (n *Network) SetReadout(r Readout) { n.Out = r }

// Params returns the network's hyperparameters.
func (n *Network) Params() Params { return n.p }

// Backend returns the compute backend in use.
func (n *Network) Backend() backend.Backend { return n.be }

// TrainUnsupervised runs the feature-learning phase: `epochs` passes of
// batched trace updates, with one structural-plasticity round at the end of
// every epoch ("usually it is updated once per epoch", §III-B), then the
// epoch hooks.
func (n *Network) TrainUnsupervised(train *data.Encoded, epochs int, hooks ...EpochHook) {
	start := time.Now()
	if !n.tracesSeeded && epochs > 0 {
		sample := train.Len()
		if sample > 8192 {
			sample = 8192
		}
		n.Hidden.InitTracesFromData(train.Idx[:sample])
		n.tracesSeeded = true
	}
	for e := 0; e < epochs; e++ {
		// Anneal the symmetry-breaking support noise: full at the first
		// epoch, zero at the last.
		anneal := 0.0
		if epochs > 1 {
			anneal = 1 - float64(e)/float64(epochs-1)
		}
		n.Hidden.SetNoise(n.p.SupportNoise * anneal)
		train.Batches(n.p.BatchSize, n.rng, func(idx [][]int32, _ []int) {
			n.Hidden.TrainBatch(idx)
		})
		if n.p.TargetSparsity > 0 {
			// The sparse regime replaces the MI exchange with the usage-
			// driven prune/regrow schedule: K anneals toward the target
			// sparsity, shrinking the active block set the kernels walk.
			n.Hidden.PruneRegrow(n.sparsityTargetK(e+1, epochs), n.p.SwapsPerEpoch)
		} else {
			n.Hidden.StructuralUpdate()
		}
		n.TrainTime += time.Since(start)
		start = time.Now()
		for _, hook := range hooks {
			hook(e, n.Hidden)
		}
	}
	n.Hidden.SetNoise(0)
}

// sparsityTargetK returns the per-HCU active-connection count the prune/
// regrow schedule assigns after `epoch` of `totalEpochs` unsupervised epochs
// (epoch is 1-based): a linear anneal from the initial K = round(RF·Fi) down
// to round((1−TargetSparsity)·Fi), reached at SparsityEpochs (or the final
// epoch when SparsityEpochs is 0) and held there. Never below 1 — an HCU with
// an empty receptive field would be pure bias.
func (n *Network) sparsityTargetK(epoch, totalEpochs int) int {
	fi := n.Hidden.Fi
	k0 := receptiveK(n.p.ReceptiveField, fi)
	kEnd := receptiveK(1-n.p.TargetSparsity, fi)
	if kEnd < 1 {
		kEnd = 1
	}
	span := n.p.SparsityEpochs
	if span <= 0 {
		span = totalEpochs
	}
	if epoch >= span {
		return kEnd
	}
	frac := float64(epoch) / float64(span)
	k := k0 + int(float64(kEnd-k0)*frac)
	if k < 1 {
		k = 1
	}
	return k
}

// TrainSupervised runs the classification phase on the frozen hidden code.
func (n *Network) TrainSupervised(train *data.Encoded, epochs int) {
	start := time.Now()
	act := tensor.NewMatrix(n.p.BatchSize, n.Hidden.Units())
	for e := 0; e < epochs; e++ {
		train.Batches(n.p.BatchSize, n.rng, func(idx [][]int32, labels []int) {
			view := act
			if len(idx) != act.Rows {
				view = tensor.NewMatrix(len(idx), n.Hidden.Units())
			}
			n.Hidden.Forward(idx, view)
			n.Out.TrainBatch(view, labels)
		})
	}
	n.TrainTime += time.Since(start)
}

// Train runs both phases with the epoch counts from Params, then calibrates
// the binary decision threshold on the training set.
func (n *Network) Train(train *data.Encoded, hooks ...EpochHook) {
	n.TrainUnsupervised(train, n.p.UnsupervisedEpochs, hooks...)
	n.TrainSupervised(train, n.p.SupervisedEpochs)
	n.CalibrateThreshold(train)
}

// CalibrateThreshold sweeps the class-1 score cut that maximizes training
// accuracy (binary problems only; multiclass keeps argmax). At most 20000
// training samples are scored.
func (n *Network) CalibrateThreshold(train *data.Encoded) {
	if n.Out.Classes() != 2 || train.Len() == 0 {
		return
	}
	sample := train
	if train.Len() > 20000 {
		rows := n.rng.Perm(train.Len())[:20000]
		sample = train.Subset(rows)
	}
	_, scores := n.Predict(sample)
	n.threshold = metrics.BestAccuracyThreshold(scores, sample.Y)
}

// Threshold returns the current binary decision threshold.
func (n *Network) Threshold() float64 { return n.threshold }

// Predict classifies every sample: predicted class plus, for binary
// problems, the signal probability used for ROC/AUC (class 1 = signal).
func (n *Network) Predict(ds *data.Encoded) (pred []int, signalScore []float64) {
	pred = make([]int, ds.Len())
	signalScore = make([]float64, ds.Len())
	n.PredictInto(ds, pred, signalScore, nil)
	return pred, signalScore
}

// predictChunk is the forward-pass tile: samples are scored through
// chunk-row activation/probability matrices so a large Predict never
// materializes the full hidden code.
const predictChunk = 512

// PredictScratch holds the forward-pass working set for PredictInto, reused
// across calls so the serving hot path (DESIGN.md §12) scores batches without
// allocating. The zero value is ready; buffers grow on first use and stick.
type PredictScratch struct {
	actData   []float64
	probsData []float64
	act       tensor.Matrix
	probs     tensor.Matrix
}

// views sizes the scratch matrices as rows×(units, classes) windows over the
// backing slices, allocating only when a previous call's capacity is too
// small.
func (sc *PredictScratch) views(rows, units, classes int) (act, probs *tensor.Matrix) {
	if cap(sc.actData) < rows*units {
		sc.actData = make([]float64, rows*units)
	}
	if cap(sc.probsData) < rows*classes {
		sc.probsData = make([]float64, rows*classes)
	}
	sc.act = tensor.Matrix{Rows: rows, Cols: units, Data: sc.actData[:rows*units]}
	sc.probs = tensor.Matrix{Rows: rows, Cols: classes, Data: sc.probsData[:rows*classes]}
	return &sc.act, &sc.probs
}

// PredictInto is Predict writing into caller-owned slices (both must be
// ds.Len() long) with an optional reusable scratch — the allocation-free form
// the pooled serve path runs on. A nil sc uses a private scratch for this
// call.
func (n *Network) PredictInto(ds *data.Encoded, pred []int, signalScore []float64, sc *PredictScratch) {
	if sc == nil {
		sc = new(PredictScratch)
	}
	classes := n.Out.Classes()
	units := n.Hidden.Units()
	for lo := 0; lo < ds.Len(); lo += predictChunk {
		hi := lo + predictChunk
		if hi > ds.Len() {
			hi = ds.Len()
		}
		aview, pview := sc.views(hi-lo, units, classes)
		n.Hidden.Forward(ds.Idx[lo:hi], aview)
		n.Out.Scores(aview, pview)
		for s := 0; s < hi-lo; s++ {
			row := pview.Row(s)
			if classes == 2 {
				signalScore[lo+s] = row[1]
				if row[1] >= n.threshold {
					pred[lo+s] = 1
				} else {
					pred[lo+s] = 0
				}
			} else {
				pred[lo+s] = tensor.ArgMaxRow(row)
			}
		}
	}
}

// Evaluate returns test accuracy and (for binary problems) AUC — the two
// numbers every experiment in the paper reports.
func (n *Network) Evaluate(ds *data.Encoded) (acc, auc float64) {
	pred, score := n.Predict(ds)
	acc = metrics.Accuracy(pred, ds.Y)
	if n.Out.Classes() == 2 {
		auc = metrics.AUC(score, ds.Y)
	}
	return acc, auc
}
