// Package core implements the paper's primary contribution: the rate-based
// BCPNN (Bayesian Confidence Propagation Neural Network) learning model as
// realized by the StreamBrain framework.
//
// The model (paper §II, following Ravichandran et al. 2020):
//
//   - The hidden layer is a set of H hypercolumn units (HCUs), each holding
//     M minicolumn units (MCUs). Activity within an HCU is a probability
//     mass over its MCUs (softmax of the support).
//   - Learning is local and Hebbian-Bayesian: exponential traces Ci, Cj, Cij
//     estimate input/unit/joint activation probabilities, and the weights
//     are the log-odds w_ij = log(pij /(pi·pj)); the bias is kbi·log(pj).
//     No gradients are backpropagated anywhere.
//   - Structural plasticity learns *where to look*: each HCU has a binary
//     receptive-field mask over input hypercolumns holding exactly
//     K = round(RF·Fi) active entries; once per epoch the lowest-mutual-
//     information active connection is exchanged for the highest-MI silent
//     one ("exchange active low-entropy for silent high-entropy
//     connections", paper §III-B).
//   - Classification is a supervised BCPNN output layer (one HCU whose MCUs
//     are the classes, trained with the teacher signal as its activity), or
//     — in the paper's hybrid mode — an SGD softmax readout on the frozen
//     hidden code.
package core

import "fmt"

// Precision selects the element width of the compute path (DESIGN.md §9).
// Traces — the learning accumulators — always stay float64, exactly as
// StreamBrain's reduced-precision explorations keep accumulation wide; the
// precision choice governs forward passes and the derived parameters
// (weights, biases) they read.
type Precision string

const (
	// Float64 is the default full-precision path.
	Float64 Precision = "float64"
	// Float32 runs forward passes on the float32 kernel set: weights and
	// biases are down-cast after every trace update and supports, softmax
	// and scores are computed at half width (and, on amd64, twice the SIMD
	// lanes). It reproduces the paper's reduced-precision training scenario
	// (bfloat16/posit, Svedin et al. 2021) in CI-runnable form.
	Float32 Precision = "float32"
)

// Valid reports whether p names a supported precision ("" = Float64).
func (p Precision) Valid() bool {
	return p == "" || p == Float64 || p == Float32
}

// Is32 reports whether the reduced-precision compute path is selected.
func (p Precision) Is32() bool { return p == Float32 }

// String implements fmt.Stringer, normalizing "" to "float64".
func (p Precision) String() string {
	if p == "" {
		return string(Float64)
	}
	return string(p)
}

// Params collects every BCPNN hyperparameter. The paper stresses (§IV) that
// BCPNN exposes more use-case-dependent hyperparameters than backprop
// networks; the hypersearch package exists to tune these.
type Params struct {
	// HCUs is the number of hidden hypercolumn units (paper Fig. 3 sweeps
	// 1–8).
	HCUs int
	// MCUs is the number of minicolumn units per HCU (paper Fig. 3 sweeps
	// 30/300/3000).
	MCUs int
	// ReceptiveField is the fraction of input hypercolumns each HCU may
	// connect to (paper Fig. 4 sweeps 0.05–0.95; Fig. 3 fixes 0.30).
	ReceptiveField float64
	// Taupdt is the probability-trace learning rate dt/τp.
	Taupdt float64
	// Taubdt is the adaptation rate of the homeostatic bias gain.
	Taubdt float64
	// PMinFraction sets the starvation threshold for the bias floor as a
	// fraction of the fair share 1/MCUs (see hidden.go homeostasis()).
	PMinFraction float64
	// Temperature is the hidden softmax temperature; lower is sharper.
	Temperature float64
	// Eps floors probabilities inside logarithms.
	Eps float64
	// SwapsPerEpoch bounds how many mask swaps each HCU may perform per
	// structural-plasticity update.
	SwapsPerEpoch int
	// SwapMargin is the relative MI advantage a silent connection needs to
	// displace an active one (hysteresis against mask thrash).
	SwapMargin float64
	// InitNoise scales the random perturbation of the initial joint traces
	// that breaks MCU symmetry.
	InitNoise float64
	// SupportNoise is the standard deviation of the Gaussian noise added to
	// the hidden support during unsupervised training, annealed linearly to
	// zero across the epochs. Competitive layers need it to escape the
	// uniform-activation fixed point (all MCUs equally active is a
	// near-stable state of the trace dynamics); prediction never uses it.
	SupportNoise float64
	// BatchSize is the mini-batch size of both training phases.
	BatchSize int
	// UnsupervisedEpochs and SupervisedEpochs split the two training phases
	// (hidden-layer feature learning, then classifier fitting).
	UnsupervisedEpochs int
	SupervisedEpochs   int
	// Seed drives every random choice (init, shuffling, mask layout).
	Seed int64
	// Precision selects the forward-compute element width ("" = float64).
	// See the Precision type for what moves to float32 and what stays wide.
	Precision Precision

	// SparseCompute turns the receptive-field mask into block-sparse compute
	// (DESIGN.md §15): forward gathers, joint-trace updates and weight
	// re-derivation walk a compressed per-HCU block index instead of the
	// dense buffers, and silent Cij blocks are frozen rather than decayed.
	// The dense default keeps StreamBrain's semantics (silent traces still
	// decay); sparse is the measured-speed regime the sparsity experiments
	// and the sparse perf suite exercise.
	SparseCompute bool
	// TargetSparsity is the final fraction of silenced input hypercolumns
	// per HCU the prune/regrow schedule anneals toward (0 keeps the initial
	// ReceptiveField fixed and the MI-swap plasticity). The schedule shrinks
	// K from round(ReceptiveField·Fi) to round((1−TargetSparsity)·Fi) across
	// SparsityEpochs. It is independent of SparseCompute: with it the pruned
	// blocks are also skipped by the kernels (the speed lever); without it
	// the same structural trajectory runs on the dense-masked kernels — the
	// twin the E10 equivalence bound compares against.
	TargetSparsity float64
	// SparsityEpochs is the number of unsupervised epochs over which the
	// prune/regrow schedule reaches TargetSparsity (0 = all unsupervised
	// epochs).
	SparsityEpochs int
}

// DefaultParams returns the hyperparameter set used as the starting point of
// all experiments; the values follow the StreamBrain defaults adapted to the
// quantile one-hot Higgs encoding.
func DefaultParams() Params {
	return Params{
		HCUs:               1,
		MCUs:               300,
		ReceptiveField:     0.30,
		Taupdt:             0.012,
		Taubdt:             0.05,
		PMinFraction:       0.25,
		Temperature:        1.0,
		Eps:                1e-9,
		SwapsPerEpoch:      2,
		SwapMargin:         0.05,
		InitNoise:          0.01,
		SupportNoise:       0.5,
		BatchSize:          128,
		UnsupervisedEpochs: 6,
		SupervisedEpochs:   6,
		Seed:               1,
	}
}

// Validate reports the first invalid hyperparameter.
func (p Params) Validate() error {
	switch {
	case p.HCUs < 1:
		return fmt.Errorf("core: HCUs = %d, need >= 1", p.HCUs)
	case p.MCUs < 2:
		return fmt.Errorf("core: MCUs = %d, need >= 2", p.MCUs)
	case p.ReceptiveField < 0 || p.ReceptiveField > 1:
		return fmt.Errorf("core: ReceptiveField = %v, need [0,1]", p.ReceptiveField)
	case p.Taupdt <= 0 || p.Taupdt > 1:
		return fmt.Errorf("core: Taupdt = %v, need (0,1]", p.Taupdt)
	case p.Taubdt <= 0 || p.Taubdt > 1:
		return fmt.Errorf("core: Taubdt = %v, need (0,1]", p.Taubdt)
	case p.Temperature <= 0:
		return fmt.Errorf("core: Temperature = %v, need > 0", p.Temperature)
	case p.Eps <= 0:
		return fmt.Errorf("core: Eps = %v, need > 0", p.Eps)
	case p.BatchSize < 1:
		return fmt.Errorf("core: BatchSize = %d, need >= 1", p.BatchSize)
	case p.UnsupervisedEpochs < 0 || p.SupervisedEpochs < 0:
		return fmt.Errorf("core: negative epoch count")
	case !p.Precision.Valid():
		return fmt.Errorf("core: Precision = %q, need %q or %q", p.Precision, Float64, Float32)
	case p.TargetSparsity < 0 || p.TargetSparsity >= 1:
		return fmt.Errorf("core: TargetSparsity = %v, need [0,1)", p.TargetSparsity)
	case p.SparsityEpochs < 0:
		return fmt.Errorf("core: SparsityEpochs = %d, need >= 0", p.SparsityEpochs)
	}
	return nil
}
