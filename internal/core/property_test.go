package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streambrain/internal/backend"
	"streambrain/internal/data"
	"streambrain/internal/tensor"
)

// TestForwardMassInvariantAcrossGeometries: for random layer geometries and
// random one-hot inputs, every HCU's activation mass must be exactly 1 —
// the softmax normalization invariant, property-checked over the geometry
// space rather than one fixed shape.
func TestForwardMassInvariantAcrossGeometries(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fi := 2 + rng.Intn(8)
		mi := 2 + rng.Intn(5)
		p := DefaultParams()
		p.HCUs = 1 + rng.Intn(3)
		p.MCUs = 2 + rng.Intn(10)
		p.ReceptiveField = rng.Float64()
		p.BatchSize = 8
		l := NewHiddenLayer(backend.MustNew("naive", 0), fi, mi, p, rng)
		batch := make([][]int32, 4)
		for s := range batch {
			active := make([]int32, fi)
			for g := 0; g < fi; g++ {
				active[g] = int32(g*mi + rng.Intn(mi))
			}
			batch[s] = active
		}
		act := tensor.NewMatrix(4, l.Units())
		l.Forward(batch, act)
		for s := 0; s < 4; s++ {
			row := act.Row(s)
			for h := 0; h < l.H; h++ {
				var sum float64
				for j := h * l.M; j < (h+1)*l.M; j++ {
					sum += row[j]
				}
				if math.Abs(sum-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTrainBatchPreservesTraceMass: one training step on random geometry
// keeps per-hypercolumn trace masses at 1 (the lerp of distributions is a
// distribution).
func TestTrainBatchPreservesTraceMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fi := 2 + rng.Intn(6)
		mi := 2 + rng.Intn(4)
		p := DefaultParams()
		p.HCUs = 1 + rng.Intn(2)
		p.MCUs = 2 + rng.Intn(6)
		p.BatchSize = 8
		p.Taupdt = 0.01 + rng.Float64()*0.3
		p.InitNoise = 0 // jitter shifts mass by O(noise); the law is exact without it
		l := NewHiddenLayer(backend.MustNew("naive", 0), fi, mi, p, rng)
		batch := make([][]int32, 8)
		for s := range batch {
			active := make([]int32, fi)
			for g := 0; g < fi; g++ {
				active[g] = int32(g*mi + rng.Intn(mi))
			}
			batch[s] = active
		}
		l.SetNoise(rng.Float64())
		l.TrainBatch(batch)
		for g := 0; g < fi; g++ {
			var sum float64
			for u := g * mi; u < (g+1)*mi; u++ {
				sum += l.Ci[u]
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		for h := 0; h < l.H; h++ {
			var sum float64
			for j := h * l.M; j < (h+1)*l.M; j++ {
				sum += l.Cj[j]
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		// Total joint mass: Σ Cij over one input hypercolumn ≈ 1 as well.
		for g := 0; g < fi; g++ {
			var sum float64
			for u := g * mi; u < (g+1)*mi; u++ {
				row := l.Cij.Row(u)
				for h := 0; h < l.H; h++ {
					for j := h * l.M; j < (h+1)*l.M; j++ {
						sum += row[j]
					}
				}
			}
			if math.Abs(sum-float64(l.H)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMutualInformationNonNegative: the MI estimate must be non-negative
// for arbitrary (valid) trace states.
func TestMutualInformationNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := DefaultParams()
		p.HCUs = 1 + rng.Intn(2)
		p.MCUs = 2 + rng.Intn(4)
		l := NewHiddenLayer(backend.MustNew("naive", 0), 3+rng.Intn(4), 2+rng.Intn(3), p, rng)
		// Randomize traces into a valid-ish state.
		for i := range l.Ci {
			l.Ci[i] = rng.Float64()
		}
		for j := range l.Cj {
			l.Cj[j] = rng.Float64()
		}
		for i := range l.Cij.Data {
			l.Cij.Data[i] = rng.Float64()
		}
		for _, v := range l.MutualInformation() {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// synthMulticlass builds a C-class one-hot task: each class owns a disjoint
// bin range in the informative hypercolumns.
func synthMulticlass(rng *rand.Rand, n, fi, mi, classes int, informative []int, noise float64) ([]([]int32), []int) {
	idx := make([][]int32, n)
	labels := make([]int, n)
	isInf := map[int]bool{}
	for _, f := range informative {
		isInf[f] = true
	}
	for s := 0; s < n; s++ {
		y := rng.Intn(classes)
		labels[s] = y
		active := make([]int32, fi)
		for f := 0; f < fi; f++ {
			var bin int
			if isInf[f] && rng.Float64() > noise {
				width := mi / classes
				bin = y*width + rng.Intn(width)
			} else {
				bin = rng.Intn(mi)
			}
			active[f] = int32(f*mi + bin)
		}
		idx[s] = active
	}
	return idx, labels
}

// TestNetworkMulticlass: the full pipeline must handle more than two
// classes (prediction falls back to argmax; Evaluate skips AUC).
func TestNetworkMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	const classes, fi, mi = 4, 8, 8
	p := smallParams()
	p.HCUs = 2
	p.MCUs = 12
	p.ReceptiveField = 0.6
	p.Taupdt = 0.05
	p.UnsupervisedEpochs = 6
	p.SupervisedEpochs = 6
	idx, labels := synthMulticlass(rng, 2400, fi, mi, classes, []int{1, 4, 6}, 0.1)
	tidx, tlabels := synthMulticlass(rng, 600, fi, mi, classes, []int{1, 4, 6}, 0.1)
	enc := &data.Encoded{Idx: idx, Y: labels, Classes: classes,
		Hypercolumns: fi, UnitsPerHC: mi}
	encTest := &data.Encoded{Idx: tidx, Y: tlabels, Classes: classes,
		Hypercolumns: fi, UnitsPerHC: mi}
	n := NewNetwork(backend.MustNew("parallel", 4), fi, mi, classes, p)
	n.Train(enc)
	pred, _ := n.Predict(encTest)
	correct := 0
	for i := range pred {
		if pred[i] == tlabels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(pred))
	if acc < 0.60 { // chance is 0.25
		t.Fatalf("multiclass accuracy %.3f", acc)
	}
}
