package core

import (
	"math/rand"
	"testing"
	"time"

	"streambrain/internal/mpi"
)

func TestDistributedTrainerLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	p := smallParams()
	p.UnsupervisedEpochs = 4
	p.SupervisedEpochs = 4
	p.Taupdt = 0.05
	train := synthEncoded(rng, 1600, 8, 4, []int{1, 5}, 0.1)
	test := synthEncoded(rng, 400, 8, 4, []int{1, 5}, 0.1)
	dt := NewDistributedTrainer(4, "naive", 1, 8, 4, 2, p, train)
	net, err := dt.Train(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := net.Evaluate(test)
	if acc < 0.75 {
		t.Fatalf("distributed accuracy %.3f", acc)
	}
}

// TestDistributedReplicasStayInSync: after training, every rank must hold
// identical traces and masks — the property that makes the "return rank 0"
// contract sound.
func TestDistributedReplicasStayInSync(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := smallParams()
	p.Taupdt = 0.05
	train := synthEncoded(rng, 800, 8, 4, []int{2}, 0.1)
	dt := NewDistributedTrainer(3, "naive", 1, 8, 4, 2, p, train)
	if _, err := dt.Train(3, 2); err != nil {
		t.Fatal(err)
	}
	nets := dt.Networks()
	ref := nets[0].Hidden
	for r := 1; r < len(nets); r++ {
		l := nets[r].Hidden
		if d := l.Cij.MaxAbsDiff(ref.Cij); d > 1e-12 {
			t.Fatalf("rank %d Cij differs by %g", r, d)
		}
		for i := range ref.Mask {
			if l.Mask[i] != ref.Mask[i] {
				t.Fatalf("rank %d mask diverged at %d", r, i)
			}
		}
		for j := range ref.Cj {
			if l.Cj[j] != ref.Cj[j] {
				t.Fatalf("rank %d Cj diverged at %d", r, j)
			}
		}
	}
}

// TestDistributedShardingBalanced: round-robin sharding must split the data
// evenly (±1) across ranks.
func TestDistributedShardingBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := smallParams()
	train := synthEncoded(rng, 1001, 6, 4, []int{0}, 0.1)
	dt := NewDistributedTrainer(4, "naive", 1, 6, 4, 2, p, train)
	total := 0
	for r, shard := range dt.shards {
		total += shard.Len()
		if shard.Len() < 250 || shard.Len() > 251 {
			t.Fatalf("rank %d shard size %d", r, shard.Len())
		}
	}
	if total != 1001 {
		t.Fatalf("shards cover %d of 1001", total)
	}
}

// TestDistributedMatchesSingleRankShape: more ranks must not destroy
// learning (accuracy within a few points of the 1-rank run on the same
// budget).
func TestDistributedMatchesSingleRankShape(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := smallParams()
	p.Taupdt = 0.05
	train := synthEncoded(rng, 1200, 8, 4, []int{1, 5}, 0.1)
	test := synthEncoded(rng, 400, 8, 4, []int{1, 5}, 0.1)
	accFor := func(ranks int) float64 {
		dt := NewDistributedTrainer(ranks, "naive", 1, 8, 4, 2, p, train)
		net, err := dt.Train(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		acc, _ := net.Evaluate(test)
		return acc
	}
	a1 := accFor(1)
	a4 := accFor(4)
	if a4 < a1-0.10 {
		t.Fatalf("4-rank accuracy %.3f collapsed vs 1-rank %.3f", a4, a1)
	}
}

// TestDistributedEmptyShardDoesNotDeadlock: a degenerate world with fewer
// rows than ranks leaves some shards empty; the merge schedule is driven by
// the agreed batch count, so empty-shard ranks must still join every
// collective instead of desynchronizing the sequence (which deadlocked the
// chan fabric and timed out the tcp one).
func TestDistributedEmptyShardDoesNotDeadlock(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	p := smallParams()
	train := synthEncoded(rng, 2, 8, 4, []int{1}, 0.1) // 2 rows, 3 ranks
	dt := NewDistributedTrainer(3, "naive", 1, 8, 4, 2, p, train)
	done := make(chan error, 1)
	go func() {
		_, err := dt.Train(2, 1)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("degenerate world errored: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("degenerate world deadlocked")
	}
}

// TestDistributedTCPMatchesChanBitExact: the same replicas trained over the
// TCP loopback fabric must land on bit-identical traces as over the chan
// fabric — the wire format round-trips float64 exactly, and the collective
// trees are transport-independent. This is the known-answer test that the
// transport refactor changed plumbing, not math.
func TestDistributedTCPMatchesChanBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	p := smallParams()
	p.Taupdt = 0.05
	train := synthEncoded(rng, 800, 8, 4, []int{1, 5}, 0.1)
	const ranks = 3
	trainOn := func(useTCP bool) *Network {
		dt := NewDistributedTrainer(ranks, "naive", 1, 8, 4, 2, p, train)
		if useTCP {
			w, err := mpi.NewTCPWorld(ranks, mpi.TCPOptions{Timeout: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { w.Close() })
			dt.World = w
		}
		net, err := dt.Train(2, 2)
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	chanNet := trainOn(false)
	tcpNet := trainOn(true)
	if d := tcpNet.Hidden.Cij.MaxAbsDiff(chanNet.Hidden.Cij); d != 0 {
		t.Fatalf("tcp Cij differs from chan by %g (want bit-exact)", d)
	}
	for j := range chanNet.Hidden.Cj {
		if tcpNet.Hidden.Cj[j] != chanNet.Hidden.Cj[j] {
			t.Fatalf("tcp Cj diverged at %d", j)
		}
	}
}
