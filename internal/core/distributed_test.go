package core

import (
	"math/rand"
	"testing"
)

func TestDistributedTrainerLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	p := smallParams()
	p.UnsupervisedEpochs = 4
	p.SupervisedEpochs = 4
	p.Taupdt = 0.05
	train := synthEncoded(rng, 1600, 8, 4, []int{1, 5}, 0.1)
	test := synthEncoded(rng, 400, 8, 4, []int{1, 5}, 0.1)
	dt := NewDistributedTrainer(4, "naive", 1, 8, 4, 2, p, train)
	net := dt.Train(4, 4)
	acc, _ := net.Evaluate(test)
	if acc < 0.75 {
		t.Fatalf("distributed accuracy %.3f", acc)
	}
}

// TestDistributedReplicasStayInSync: after training, every rank must hold
// identical traces and masks — the property that makes the "return rank 0"
// contract sound.
func TestDistributedReplicasStayInSync(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := smallParams()
	p.Taupdt = 0.05
	train := synthEncoded(rng, 800, 8, 4, []int{2}, 0.1)
	dt := NewDistributedTrainer(3, "naive", 1, 8, 4, 2, p, train)
	dt.Train(3, 2)
	nets := dt.Networks()
	ref := nets[0].Hidden
	for r := 1; r < len(nets); r++ {
		l := nets[r].Hidden
		if d := l.Cij.MaxAbsDiff(ref.Cij); d > 1e-12 {
			t.Fatalf("rank %d Cij differs by %g", r, d)
		}
		for i := range ref.Mask {
			if l.Mask[i] != ref.Mask[i] {
				t.Fatalf("rank %d mask diverged at %d", r, i)
			}
		}
		for j := range ref.Cj {
			if l.Cj[j] != ref.Cj[j] {
				t.Fatalf("rank %d Cj diverged at %d", r, j)
			}
		}
	}
}

// TestDistributedShardingBalanced: round-robin sharding must split the data
// evenly (±1) across ranks.
func TestDistributedShardingBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	p := smallParams()
	train := synthEncoded(rng, 1001, 6, 4, []int{0}, 0.1)
	dt := NewDistributedTrainer(4, "naive", 1, 6, 4, 2, p, train)
	total := 0
	for r, shard := range dt.shards {
		total += shard.Len()
		if shard.Len() < 250 || shard.Len() > 251 {
			t.Fatalf("rank %d shard size %d", r, shard.Len())
		}
	}
	if total != 1001 {
		t.Fatalf("shards cover %d of 1001", total)
	}
}

// TestDistributedMatchesSingleRankShape: more ranks must not destroy
// learning (accuracy within a few points of the 1-rank run on the same
// budget).
func TestDistributedMatchesSingleRankShape(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := smallParams()
	p.Taupdt = 0.05
	train := synthEncoded(rng, 1200, 8, 4, []int{1, 5}, 0.1)
	test := synthEncoded(rng, 400, 8, 4, []int{1, 5}, 0.1)
	accFor := func(ranks int) float64 {
		dt := NewDistributedTrainer(ranks, "naive", 1, 8, 4, 2, p, train)
		net := dt.Train(4, 4)
		acc, _ := net.Evaluate(test)
		return acc
	}
	a1 := accFor(1)
	a4 := accFor(4)
	if a4 < a1-0.10 {
		t.Fatalf("4-rank accuracy %.3f collapsed vs 1-rank %.3f", a4, a1)
	}
}
