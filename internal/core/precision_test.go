package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/backend"
	"streambrain/internal/data"
	"streambrain/internal/tensor"
)

// precisionFixture prepares the separable synthetic task (the same geometry
// the package integration test learns on) plus the params that solve it.
func precisionFixture() (train, test *data.Encoded, p Params) {
	rng := rand.New(rand.NewSource(10))
	p = smallParams()
	p.HCUs = 2
	p.MCUs = 10
	p.ReceptiveField = 0.6
	p.UnsupervisedEpochs = 6
	p.SupervisedEpochs = 6
	p.Taupdt = 0.05
	train = synthEncoded(rng, 2000, 10, 4, []int{1, 4, 8}, 0.15)
	test = synthEncoded(rng, 600, 10, 4, []int{1, 4, 8}, 0.15)
	return train, test, p
}

// TestFloat32PrecisionTracksFloat64 trains the same configuration on both
// compute paths and checks the reduced-precision model stays within the
// paper-level tolerance of the full-precision one — the unit-scale version
// of the experiments precision ablation.
func TestFloat32PrecisionTracksFloat64(t *testing.T) {
	train, test, p64 := precisionFixture()
	n64 := NewNetwork(backend.MustNew("parallel", 4), 10, 4, 2, p64)
	n64.Train(train)
	acc64, auc64 := n64.Evaluate(test)

	_, _, p32 := precisionFixture()
	p32.Precision = Float32
	n32 := NewNetwork(backend.MustNew("parallel", 4), 10, 4, 2, p32)
	if !n32.Hidden.Precision32() {
		t.Fatal("Precision=float32 did not select the reduced-precision path")
	}
	n32.Train(train)
	acc32, auc32 := n32.Evaluate(test)

	if auc64 < 0.85 {
		t.Fatalf("float64 baseline failed to learn: AUC %.3f", auc64)
	}
	if d := math.Abs(auc64 - auc32); d > 0.01 {
		t.Fatalf("float32 AUC %.4f deviates from float64 AUC %.4f by %.4f", auc32, auc64, d)
	}
	if d := math.Abs(acc64 - acc32); d > 0.02 {
		t.Fatalf("float32 accuracy %.4f deviates from float64 %.4f by %.4f", acc32, acc64, d)
	}
}

// TestForward32MatchesForward checks the float32 fast path (no up-cast)
// agrees with the Forward wrapper that serves the float64 API.
func TestForward32MatchesForward(t *testing.T) {
	train, _, p := precisionFixture()
	p.Precision = Float32
	n := NewNetwork(backend.MustNew("naive", 1), 10, 4, 2, p)
	n.TrainUnsupervised(train, 1)

	idx := train.Idx[:16]
	units := n.Hidden.Units()
	out64 := tensor.NewMatrix(len(idx), units)
	n.Hidden.Forward(idx, out64)
	out32 := tensor.NewMatrix32(len(idx), units)
	n.Hidden.Forward32(idx, out32)
	for i := range out64.Data {
		if d := math.Abs(out64.Data[i] - float64(out32.Data[i])); d > 1e-6 {
			t.Fatalf("Forward and Forward32 disagree at %d by %g", i, d)
		}
	}
}

// TestPrecisionRoundTripsThroughSaveLoad checks a reduced-precision model
// keeps its compute path (and its predictions) across serialization.
func TestPrecisionRoundTripsThroughSaveLoad(t *testing.T) {
	train, test, p := precisionFixture()
	p.Precision = Float32
	n := NewNetwork(backend.MustNew("parallel", 2), 10, 4, 2, p)
	n.Train(train)

	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(&buf, backend.MustNew("parallel", 2))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if loaded.Params().Precision != Float32 {
		t.Fatalf("loaded precision %q, want %q", loaded.Params().Precision, Float32)
	}
	if !loaded.Hidden.Precision32() {
		t.Fatal("loaded network lost the float32 compute path")
	}
	wantPred, wantScore := n.Predict(test)
	gotPred, gotScore := loaded.Predict(test)
	for i := range wantPred {
		if wantPred[i] != gotPred[i] {
			t.Fatalf("prediction %d changed across round trip", i)
		}
		if math.Abs(wantScore[i]-gotScore[i]) > 1e-9 {
			t.Fatalf("score %d changed across round trip", i)
		}
	}
}

// TestFloat32RequiresKernelSet checks the error paths for backends without
// float32 kernels: NewNetwork panics, Load reports a descriptive error.
func TestFloat32RequiresKernelSet(t *testing.T) {
	train, _, p := precisionFixture()
	p.Precision = Float32

	n := NewNetwork(backend.MustNew("parallel", 1), 10, 4, 2, p)
	n.TrainUnsupervised(train, 1)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := Load(&buf, backend.MustNew("fpgasim", 1)); err == nil {
		t.Fatal("loading a float32 model onto fpgasim should fail")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("NewNetwork with fpgasim + float32 should panic")
		}
	}()
	NewNetwork(backend.MustNew("fpgasim", 1), 10, 4, 2, p)
}
