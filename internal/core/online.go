package core

import (
	"time"

	"streambrain/internal/tensor"
)

// This file is the incremental-training entry point the streaming pipeline
// (internal/stream) drives. BCPNN needs no special online mode: the trace
// update is already a per-batch exponential moving average, so continual
// learning is the batch rule applied to micro-batches as they arrive
// (DESIGN.md §7). PartialFit reuses exactly the kernels the batch trainer
// uses — same Hidden.TrainBatch, same Readout.TrainBatch — it only drops the
// epoch loop around them.

// PartialFit performs one incremental training step on a micro-batch: an
// unsupervised trace update of the hidden layer followed by a supervised
// update of the readout on the resulting activations. The first call seeds
// the input marginals from the batch (as TrainUnsupervised seeds them from
// the first epoch's sample); callers that warm-start with Train have already
// seeded and the call proceeds directly.
//
// Structural plasticity is deliberately not part of the step — streams have
// no epochs, so the caller decides the cadence and invokes
// Hidden.StructuralUpdate explicitly.
func (n *Network) PartialFit(idx [][]int32, labels []int) {
	if len(idx) == 0 {
		return
	}
	if len(idx) != len(labels) {
		panic("core: PartialFit batch/label length mismatch")
	}
	start := time.Now()
	if !n.tracesSeeded {
		n.Hidden.InitTracesFromData(idx)
		n.tracesSeeded = true
	}
	if n.partialAct == nil || n.partialAct.Rows != len(idx) {
		n.partialAct = tensor.NewMatrix(len(idx), n.Hidden.Units())
	}
	// A fused backend (DESIGN.md §14) hands back the batch activations it
	// already computed in-pass, so the streaming step runs one forward pass
	// per micro-batch instead of two; composed backends (and noisy batches)
	// keep the explicit post-update Forward.
	if !n.Hidden.TrainBatchInto(idx, n.partialAct) {
		n.Hidden.Forward(idx, n.partialAct)
	}
	n.Out.TrainBatch(n.partialAct, labels)
	n.TrainTime += time.Since(start)
}

// SetThreshold overrides the binary decision threshold. The streaming
// pipeline calibrates the cut on its sliding window (the online counterpart
// of CalibrateThreshold, which needs the whole training set up front).
func (n *Network) SetThreshold(t float64) { n.threshold = t }
