package core

import (
	"streambrain/internal/backend"
	"streambrain/internal/data"
	"streambrain/internal/mpi"
)

// DistributedTrainer runs BCPNN data-parallel training across MPI ranks —
// the scheme §II-B motivates: because learning is local, ranks train on
// disjoint shards and only the probability traces need merging, one
// allreduce-mean per epoch (there is no gradient to synchronize every step).
//
// All ranks start from the identical seed, so their initial layers are
// bit-identical; after every trace allreduce the structural-plasticity
// update is a deterministic function of identical traces, which keeps the
// masks synchronized without any extra communication.
type DistributedTrainer struct {
	World *mpi.World
	// MergeEvery is the number of local batches between hidden-trace
	// allreduces. 1 (the default) keeps replicas bit-identical at every
	// batch boundary — the synchronous scheme; larger values trade staleness
	// for fewer collectives. Hidden MCU identities are exchangeable, so
	// infrequent merging risks averaging units that drifted into different
	// roles; the classifier head has fixed output identities (classes) and
	// is always safe to merge per epoch.
	MergeEvery int
	// nets[r] is rank r's replica.
	nets []*Network
	// shards[r] is rank r's training shard.
	shards []*data.Encoded
}

// NewDistributedTrainer builds R identically-seeded network replicas and
// shards the training set round-robin across them (round-robin keeps shard
// class balance close to the global balance).
//
// The trace rate is rescaled to τ_R = 1−(1−τ)^R: with R ranks each global
// step merges R rank-local batches, so an epoch contains 1/R as many trace
// updates as the single-rank run; compounding the rate keeps the per-epoch
// trace convergence — and therefore the learned weight magnitudes and the
// classifier's calibration — invariant in the rank count.
func NewDistributedTrainer(ranks int, backendName string, workersPerRank int,
	fi, mi, classes int, p Params, train *data.Encoded) *DistributedTrainer {
	scaled := 1.0
	for r := 0; r < ranks; r++ {
		scaled *= 1 - p.Taupdt
	}
	p.Taupdt = 1 - scaled
	t := &DistributedTrainer{
		World:      mpi.NewWorld(ranks),
		MergeEvery: 1,
		nets:       make([]*Network, ranks),
		shards:     make([]*data.Encoded, ranks),
	}
	rows := make([][]int, ranks)
	for i := 0; i < train.Len(); i++ {
		r := i % ranks
		rows[r] = append(rows[r], i)
	}
	for r := 0; r < ranks; r++ {
		t.nets[r] = NewNetwork(backend.MustNew(backendName, workersPerRank), fi, mi, classes, p)
		t.shards[r] = train.Subset(rows[r])
	}
	return t
}

// allreduceTraces averages a hidden layer's traces across ranks in place.
func allreduceTraces(c *mpi.Comm, l *HiddenLayer) {
	c.AllreduceMean(l.Ci)
	c.AllreduceMean(l.Cj)
	c.AllreduceMean(l.Cij.Data)
	c.AllreduceMean(l.Kbi)
}

// allreduceClassifier averages a BCPNN readout's traces across ranks.
func allreduceClassifier(c *mpi.Comm, cl *Classifier) {
	c.AllreduceMean(cl.Ci)
	c.AllreduceMean(cl.Cj)
	c.AllreduceMean(cl.Cij.Data)
}

// Train runs both phases. Each unsupervised epoch: every rank runs the same
// number of local batches (the global minimum, so collectives always match
// up), allreduce-merging the hidden traces every MergeEvery batches, then
// the (deterministic, replica-identical) structural update. The supervised
// phase merges the classifier traces once per epoch. Returns rank 0's
// network, which after the final allreduce is representative of all
// replicas.
func (t *DistributedTrainer) Train(unsupEpochs, supEpochs int) *Network {
	merge := t.MergeEvery
	if merge < 1 {
		merge = 1
	}
	// Matched batch count: every rank must issue the same collective
	// sequence or the world deadlocks. Remainder batches are dropped.
	nBatches := -1
	for _, shard := range t.shards {
		b := shard.Len() / t.nets[0].p.BatchSize
		if nBatches < 0 || b < nBatches {
			nBatches = b
		}
	}
	if nBatches < 1 {
		nBatches = 1
	}
	t.World.Run(func(c *mpi.Comm) {
		n := t.nets[c.Rank()]
		shard := t.shards[c.Rank()]
		if unsupEpochs > 0 {
			// Seed input marginals from the local shard, then average so
			// every replica starts from the global empirical marginals.
			n.Hidden.InitTracesFromData(shard.Idx)
			allreduceTraces(c, n.Hidden)
			n.Hidden.refreshParameters()
			n.tracesSeeded = true
		}
		for e := 0; e < unsupEpochs; e++ {
			// Same annealed symmetry-breaking noise schedule as the
			// single-rank trainer; identical seeds keep draws replica-equal.
			anneal := 0.0
			if unsupEpochs > 1 {
				anneal = 1 - float64(e)/float64(unsupEpochs-1)
			}
			n.Hidden.SetNoise(n.p.SupportNoise * anneal)
			// Materialize this epoch's shuffled batches so we can cut off at
			// the matched count.
			var batches [][][]int32
			shard.Batches(n.p.BatchSize, n.rng, func(idx [][]int32, _ []int) {
				batches = append(batches, append([][]int32(nil), idx...))
			})
			for b := 0; b < nBatches && b < len(batches); b++ {
				n.Hidden.TrainBatch(batches[b])
				if (b+1)%merge == 0 {
					allreduceTraces(c, n.Hidden)
					n.Hidden.refreshParameters()
				}
			}
			allreduceTraces(c, n.Hidden)
			n.Hidden.refreshParameters()
			n.Hidden.StructuralUpdate()
		}
		cl, isBCPNN := n.Out.(*Classifier)
		for e := 0; e < supEpochs; e++ {
			n.TrainSupervised(shard, 1)
			if isBCPNN {
				allreduceClassifier(c, cl)
				cl.refresh()
			}
			c.Barrier()
		}
	})
	if supEpochs > 0 {
		t.nets[0].CalibrateThreshold(t.shards[0])
	}
	return t.nets[0]
}

// Networks exposes the per-rank replicas (tests verify replica agreement).
func (t *DistributedTrainer) Networks() []*Network { return t.nets }
