package core

import (
	"fmt"

	"streambrain/internal/backend"
	"streambrain/internal/data"
	"streambrain/internal/mpi"
)

// DistributedTrainer runs BCPNN data-parallel training across MPI ranks —
// the scheme §II-B motivates: because learning is local, ranks train on
// disjoint shards and only the probability traces need merging, one
// allreduce-mean per epoch (there is no gradient to synchronize every step).
//
// All ranks start from the identical seed, so their initial layers are
// bit-identical; after every trace allreduce the structural-plasticity
// update is a deterministic function of identical traces, which keeps the
// masks synchronized without any extra communication.
//
// The trainer owns all replicas inside one process and drives them over an
// in-process mpi.World (chan by default; assign a NewTCPWorld to exercise
// the real wire). For worlds where each rank is its own OS process, the
// per-rank body is exported as TrainRank and driven by cmd/streambrain-dist
// (DESIGN.md §10).
type DistributedTrainer struct {
	// World is the fabric the ranks communicate over. NewDistributedTrainer
	// installs the chan fabric; replace it (same rank count) before Train to
	// run the same replicas over loopback TCP.
	World *mpi.World
	// MergeEvery is the number of local batches between hidden-trace
	// allreduces. 1 (the default) keeps replicas bit-identical at every
	// batch boundary — the synchronous scheme; larger values trade staleness
	// for fewer collectives. Hidden MCU identities are exchangeable, so
	// infrequent merging risks averaging units that drifted into different
	// roles; the classifier head has fixed output identities (classes) and
	// is always safe to merge per epoch.
	MergeEvery int
	// nets[r] is rank r's replica.
	nets []*Network
	// shards[r] is rank r's training shard.
	shards []*data.Encoded
}

// DistributedParams rescales the trace rate for an R-rank world:
// τ_R = 1−(1−τ)^R. With R ranks each global step merges R rank-local
// batches, so an epoch contains 1/R as many trace updates as the
// single-rank run; compounding the rate keeps the per-epoch trace
// convergence — and therefore the learned weight magnitudes and the
// classifier's calibration — invariant in the rank count (E9 measures
// exactly this). Every rank of a world must train with the same rescaled
// Params; cmd/streambrain-dist applies it in each rank process.
func DistributedParams(p Params, ranks int) Params {
	scaled := 1.0
	for r := 0; r < ranks; r++ {
		scaled *= 1 - p.Taupdt
	}
	p.Taupdt = 1 - scaled
	return p
}

// ShardRows returns rank r's row indices under the round-robin sharding
// every fabric uses (round-robin keeps shard class balance close to the
// global balance). Rank processes call this so their local shard matches
// what the in-process trainer would have assigned.
func ShardRows(totalRows, ranks, rank int) []int {
	rows := make([]int, 0, (totalRows+ranks-1)/ranks)
	for i := rank; i < totalRows; i += ranks {
		rows = append(rows, i)
	}
	return rows
}

// NewDistributedTrainer builds R identically-seeded network replicas over
// the in-process chan fabric and shards the training set round-robin across
// them. The trace rate is rescaled via DistributedParams.
func NewDistributedTrainer(ranks int, backendName string, workersPerRank int,
	fi, mi, classes int, p Params, train *data.Encoded) *DistributedTrainer {
	p = DistributedParams(p, ranks)
	t := &DistributedTrainer{
		World:      mpi.NewWorld(ranks),
		MergeEvery: 1,
		nets:       make([]*Network, ranks),
		shards:     make([]*data.Encoded, ranks),
	}
	for r := 0; r < ranks; r++ {
		t.nets[r] = NewNetwork(backend.MustNew(backendName, workersPerRank), fi, mi, classes, p)
		t.shards[r] = train.Subset(ShardRows(train.Len(), ranks, r))
	}
	return t
}

// allreduceTraces averages a hidden layer's traces across ranks in place.
func allreduceTraces(c *mpi.Comm, l *HiddenLayer) error {
	for _, buf := range [][]float64{l.Ci, l.Cj, l.Cij.Data, l.Kbi} {
		if err := c.AllreduceMean(buf); err != nil {
			return err
		}
	}
	return nil
}

// allreduceClassifier averages a BCPNN readout's traces across ranks.
func allreduceClassifier(c *mpi.Comm, cl *Classifier) error {
	for _, buf := range [][]float64{cl.Ci, cl.Cj, cl.Cij.Data} {
		if err := c.AllreduceMean(buf); err != nil {
			return err
		}
	}
	return nil
}

// TrainRank runs one rank's side of distributed training over any fabric —
// the SPMD body shared by the in-process trainer and the per-process ranks
// cmd/streambrain-dist forks. n must have been built from DistributedParams
// with this world's rank count, and shard must be this rank's ShardRows
// subset; every rank must call with the same epoch counts and mergeEvery
// (the collective sequence must match or the world stalls into its
// deadline).
//
// Each unsupervised epoch runs the same number of local batches on every
// rank (the global minimum, agreed via an allreduce-min, so collectives
// always pair up; remainder batches are dropped), allreduce-merging the
// hidden traces every mergeEvery batches, then the (deterministic,
// replica-identical) structural update. The supervised phase merges the
// classifier traces once per epoch. Threshold calibration is a local
// decision and stays with the caller (rank 0 calibrates on its shard).
func TrainRank(c *mpi.Comm, n *Network, shard *data.Encoded,
	unsupEpochs, supEpochs, mergeEvery int) error {
	if mergeEvery < 1 {
		mergeEvery = 1
	}
	// Matched batch count: every rank must issue the same collective
	// sequence. The minimum over shards is itself a collective, so a rank
	// process never needs its peers' shard sizes up front.
	count := []float64{float64(shard.Len() / n.p.BatchSize)}
	if err := c.Allreduce(count, mpi.OpMin); err != nil {
		return fmt.Errorf("core: matching batch counts: %w", err)
	}
	nBatches := int(count[0])
	if nBatches < 1 {
		nBatches = 1
	}
	if unsupEpochs > 0 {
		// Seed input marginals from the local shard, then average so every
		// replica starts from the global empirical marginals.
		n.Hidden.InitTracesFromData(shard.Idx)
		if err := allreduceTraces(c, n.Hidden); err != nil {
			return err
		}
		n.Hidden.refreshParameters()
		n.tracesSeeded = true
	}
	for e := 0; e < unsupEpochs; e++ {
		// Same annealed symmetry-breaking noise schedule as the single-rank
		// trainer; identical seeds keep draws replica-equal.
		anneal := 0.0
		if unsupEpochs > 1 {
			anneal = 1 - float64(e)/float64(unsupEpochs-1)
		}
		n.Hidden.SetNoise(n.p.SupportNoise * anneal)
		// Materialize this epoch's shuffled batches so we can cut off at the
		// matched count.
		var batches [][][]int32
		shard.Batches(n.p.BatchSize, n.rng, func(idx [][]int32, _ []int) {
			batches = append(batches, append([][]int32(nil), idx...))
		})
		// The merge schedule is driven by the agreed nBatches alone, never
		// by len(batches): a rank whose shard ran short (degenerate worlds
		// with fewer rows than ranks) still joins every collective with its
		// current traces, so the world's collective sequences stay matched
		// instead of deadlocking.
		for b := 0; b < nBatches; b++ {
			if b < len(batches) {
				// TrainBatch dispatches fused on LayerStepper backends
				// (DESIGN.md §14), so distributed training inherits the
				// whole-layer offload per local batch. Only the
				// post-allreduce refresh below must stay composed: it
				// re-derives parameters from the merged traces without
				// advancing them, which is exactly what refreshParameters
				// (and not a LayerStep) computes.
				n.Hidden.TrainBatch(batches[b])
			}
			if (b+1)%mergeEvery == 0 {
				if err := allreduceTraces(c, n.Hidden); err != nil {
					return err
				}
				n.Hidden.refreshParameters()
			}
		}
		if err := allreduceTraces(c, n.Hidden); err != nil {
			return err
		}
		n.Hidden.refreshParameters()
		n.Hidden.StructuralUpdate()
	}
	cl, isBCPNN := n.Out.(*Classifier)
	for e := 0; e < supEpochs; e++ {
		n.TrainSupervised(shard, 1)
		if isBCPNN {
			if err := allreduceClassifier(c, cl); err != nil {
				return err
			}
			cl.refresh()
		}
		if err := c.Barrier(); err != nil {
			return err
		}
	}
	return nil
}

// Train runs both phases across all ranks of the World and returns rank 0's
// network, which after the final allreduce is representative of all
// replicas. Any rank's communication failure aborts the run with its error.
func (t *DistributedTrainer) Train(unsupEpochs, supEpochs int) (*Network, error) {
	err := t.World.Run(func(c *mpi.Comm) error {
		return TrainRank(c, t.nets[c.Rank()], t.shards[c.Rank()],
			unsupEpochs, supEpochs, t.MergeEvery)
	})
	if err != nil {
		return nil, err
	}
	if supEpochs > 0 {
		t.nets[0].CalibrateThreshold(t.shards[0])
	}
	return t.nets[0], nil
}

// Networks exposes the per-rank replicas (tests verify replica agreement).
func (t *DistributedTrainer) Networks() []*Network { return t.nets }
