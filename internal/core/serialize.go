package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"streambrain/internal/backend"
	"streambrain/internal/sgd"
	"streambrain/internal/tensor"
)

// networkState is the serializable snapshot of a trained network. Traces are
// the complete learning state (weights and biases are derived), so saving
// them preserves the ability to *resume* training, not just to predict —
// the property that makes BCPNN checkpointing trivial compared to
// optimizer-state-laden backprop checkpoints.
type networkState struct {
	Version int
	Params  Params
	Classes int

	// Hidden layer.
	Fi, Mi    int
	HiddenCi  []float64
	HiddenCj  []float64
	HiddenCij []float64
	HiddenKbi []float64
	Mask      []bool

	// BCPNN classifier (nil slices when the readout is not a Classifier).
	ClfCi  []float64
	ClfCj  []float64
	ClfCij []float64

	// ReadoutKind selects the classification head: "" or "bcpnn" for the
	// pure-BCPNN Classifier (v1 states predate the field), "sgd" for the
	// hybrid softmax readout, whose full optimizer state rides in SGDState.
	ReadoutKind string
	SGDState    []byte

	Threshold float64
	Seeded    bool
}

const stateVersion = 2

const (
	readoutBCPNN = "bcpnn"
	readoutSGD   = "sgd"
)

// Save serializes the network's learning state (traces, masks, calibration)
// with encoding/gob. Both readouts round-trip: the pure-BCPNN classifier via
// its traces, the hybrid SGD softmax via its weight and momentum state.
func (n *Network) Save(w io.Writer) error {
	st := networkState{
		Version:   stateVersion,
		Params:    n.p,
		Classes:   n.Out.Classes(),
		Fi:        n.Hidden.Fi,
		Mi:        n.Hidden.Mi,
		HiddenCi:  n.Hidden.Ci,
		HiddenCj:  n.Hidden.Cj,
		HiddenCij: n.Hidden.Cij.Data,
		HiddenKbi: n.Hidden.Kbi,
		Mask:      n.Hidden.Mask,
		Threshold: n.threshold,
		Seeded:    n.tracesSeeded,
	}
	switch out := n.Out.(type) {
	case *Classifier:
		st.ReadoutKind = readoutBCPNN
		st.ClfCi = out.Ci
		st.ClfCj = out.Cj
		st.ClfCij = out.Cij.Data
	case *sgd.Softmax:
		st.ReadoutKind = readoutSGD
		var blob bytes.Buffer
		if err := out.Save(&blob); err != nil {
			return fmt.Errorf("core: save: %w", err)
		}
		st.SGDState = blob.Bytes()
	default:
		return fmt.Errorf("core: Save supports the BCPNN and SGD readouts only (got %T)", n.Out)
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// Load reconstructs a network from a Save snapshot onto the given backend
// (the backend choice is an execution concern, not model state, so a model
// saved from "parallel" can be loaded onto "gpusim").
func Load(r io.Reader, be backend.Backend) (*Network, error) {
	var st networkState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if st.Version < 1 || st.Version > stateVersion {
		return nil, fmt.Errorf("core: load: state version %d, want <= %d", st.Version, stateVersion)
	}
	if err := st.Params.Validate(); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if st.Params.Precision.Is32() {
		// The model wants the reduced-precision forward path; fail with a
		// useful error here rather than letting NewNetwork panic on a
		// backend (e.g. fpgasim) that has no float32 kernel set.
		if _, err := backend.New32(be.Name(), be.Workers()); err != nil {
			return nil, fmt.Errorf("core: load: %w", err)
		}
	}
	in := st.Fi * st.Mi
	units := st.Params.HCUs * st.Params.MCUs
	if len(st.HiddenCi) != in || len(st.HiddenCj) != units ||
		len(st.HiddenCij) != in*units || len(st.Mask) != st.Fi*st.Params.HCUs {
		return nil, fmt.Errorf("core: load: inconsistent state geometry")
	}
	n := NewNetwork(be, st.Fi, st.Mi, st.Classes, st.Params)
	copy(n.Hidden.Ci, st.HiddenCi)
	copy(n.Hidden.Cj, st.HiddenCj)
	copy(n.Hidden.Cij.Data, st.HiddenCij)
	copy(n.Hidden.Kbi, st.HiddenKbi)
	copy(n.Hidden.Mask, st.Mask)
	// The prune/regrow schedule drives K away from round(RF·Fi), so restore
	// it from the mask itself (the exactly-K-per-HCU invariant makes column
	// h=0 representative), and drop any block index built over the init mask.
	k := 0
	for fi := 0; fi < st.Fi; fi++ {
		if st.Mask[fi*st.Params.HCUs] {
			k++
		}
	}
	n.Hidden.K = k
	n.Hidden.invalidateBlocks()
	n.Hidden.refreshParameters()
	switch st.ReadoutKind {
	case "", readoutBCPNN:
		if len(st.ClfCi) != units || len(st.ClfCj) != st.Classes ||
			len(st.ClfCij) != units*st.Classes {
			return nil, fmt.Errorf("core: load: inconsistent classifier geometry")
		}
		cl := n.Out.(*Classifier)
		copy(cl.Ci, st.ClfCi)
		copy(cl.Cj, st.ClfCj)
		copy(cl.Cij.Data, st.ClfCij)
		cl.refresh()
	case readoutSGD:
		sm, err := sgd.Load(bytes.NewReader(st.SGDState))
		if err != nil {
			return nil, fmt.Errorf("core: load: %w", err)
		}
		if sm.In() != units || sm.Classes() != st.Classes {
			return nil, fmt.Errorf("core: load: SGD readout geometry %dx%d, want %dx%d",
				sm.In(), sm.Classes(), units, st.Classes)
		}
		n.SetReadout(sm)
	default:
		return nil, fmt.Errorf("core: load: unknown readout kind %q", st.ReadoutKind)
	}
	n.threshold = st.Threshold
	n.tracesSeeded = st.Seeded
	// Re-derive the RNG so resumed training is still seeded (though not
	// bit-identical to an uninterrupted run; document as such).
	n.rng = rand.New(rand.NewSource(st.Params.Seed + 97))
	return n, nil
}

// statesEqual is a test helper comparing the derived parameters of two
// networks (weights and biases), which must match after a round trip.
func statesEqual(a, b *Network, tol float64) bool {
	if !a.Hidden.W.Equal(b.Hidden.W, tol) {
		return false
	}
	ca, ok1 := a.Out.(*Classifier)
	cb, ok2 := b.Out.(*Classifier)
	if !ok1 || !ok2 {
		return false
	}
	return ca.W.Equal(cb.W, tol) && equalSlices(a.Hidden.Bias, b.Hidden.Bias, tol)
}

func equalSlices(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}

// Ensure tensor is referenced (Cij reconstruction uses its layout).
var _ = tensor.NewMatrix
