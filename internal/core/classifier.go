package core

import (
	"math/rand"

	"streambrain/internal/backend"
	"streambrain/internal/tensor"
)

// Readout is a supervised classification head over the hidden activation
// code. Two implementations exist: the pure-BCPNN Classifier below and the
// SGD softmax regression in internal/sgd (the paper's "BCPNN+SGD" hybrid
// that reaches 69.15% accuracy / 76.4% AUC).
type Readout interface {
	// TrainBatch performs one supervised update on a batch of hidden
	// activations with integer class labels.
	TrainBatch(act *tensor.Matrix, labels []int)
	// Scores writes class probabilities for each row of act into out
	// (batch × Classes).
	Scores(act *tensor.Matrix, out *tensor.Matrix)
	// Classes returns the number of output classes.
	Classes() int
}

// Classifier is the supervised BCPNN output layer: a single output
// hypercolumn whose MCUs are the classes. It trains with exactly the same
// trace rule as the hidden layer, except the output activity is clamped to
// the one-hot teacher signal (supervised BCPNN, paper §II-C "uses only
// supervised learning in the classification layer").
type Classifier struct {
	be      backend.Backend
	in      int
	classes int

	W    *tensor.Matrix // in×classes
	Bias []float64
	Kbi  []float64
	Ci   []float64
	Cj   []float64
	Cij  *tensor.Matrix

	p Params

	meanAct []float64
	meanLab []float64
}

var _ Readout = (*Classifier)(nil)

// NewClassifier builds a BCPNN readout from `in` hidden units to `classes`
// classes.
func NewClassifier(be backend.Backend, in, classes int, p Params, rng *rand.Rand) *Classifier {
	c := &Classifier{
		be: be, in: in, classes: classes,
		W:       tensor.NewMatrix(in, classes),
		Bias:    make([]float64, classes),
		Kbi:     make([]float64, classes),
		Ci:      make([]float64, in),
		Cj:      make([]float64, classes),
		Cij:     tensor.NewMatrix(in, classes),
		p:       p,
		meanAct: make([]float64, in),
		meanLab: make([]float64, classes),
	}
	// Priors: hidden units carry 1/M of their HCU's mass; classes start
	// uniform. Small jitter breaks ties.
	pj := 1 / float64(classes)
	for j := range c.Cj {
		c.Cj[j] = pj
		c.Kbi[j] = 1
	}
	for i := range c.Ci {
		c.Ci[i] = pj // neutral prior; converges to the true marginal quickly
	}
	for i := 0; i < in; i++ {
		row := c.Cij.Row(i)
		for j := range row {
			row[j] = c.Ci[i] * pj * (1 + p.InitNoise*(rng.Float64()-0.5))
		}
	}
	c.refresh()
	return c
}

// Classes implements Readout.
func (c *Classifier) Classes() int { return c.classes }

func (c *Classifier) refresh() {
	// The readout is fully connected: no mask.
	c.be.UpdateWeights(c.W, c.Ci, c.Cj, c.Cij, nil, 0, 0, 0, 0, c.p.Eps)
	c.be.UpdateBias(c.Bias, c.Kbi, c.Cj, c.p.Eps)
}

// TrainBatch implements Readout: one BCPNN trace step with the teacher
// signal as the output activity.
func (c *Classifier) TrainBatch(act *tensor.Matrix, labels []int) {
	if act.Rows != len(labels) || act.Cols != c.in {
		panic("core: Classifier.TrainBatch shape mismatch")
	}
	teacher := tensor.NewMatrix(len(labels), c.classes)
	for s, y := range labels {
		teacher.Set(s, y, 1)
	}
	t := c.p.Taupdt
	tensor.ColMeans(c.meanAct, act)
	c.be.Lerp(c.Ci, c.meanAct, t)
	tensor.ColMeans(c.meanLab, teacher)
	c.be.Lerp(c.Cj, c.meanLab, t)
	c.be.OuterLerp(c.Cij, act, teacher, t)
	c.refresh()
}

// Scores implements Readout: support followed by a class softmax.
func (c *Classifier) Scores(act *tensor.Matrix, out *tensor.Matrix) {
	if out.Rows != act.Rows || out.Cols != c.classes {
		panic("core: Classifier.Scores shape mismatch")
	}
	c.be.MatMul(out, act, c.W)
	c.be.AddBias(out, c.Bias)
	c.be.SoftmaxGroups(out, 1, c.classes, 1)
}
