package core

import (
	"bytes"
	"math/rand"
	"testing"

	"streambrain/internal/backend"
)

func sparseParams() Params {
	p := smallParams()
	p.SparseCompute = true
	p.TargetSparsity = 0.75
	return p
}

// maskPopcountPerHCU verifies the exactly-K-per-HCU invariant and returns K.
func maskPopcountPerHCU(t *testing.T, n *Network) int {
	t.Helper()
	l := n.Hidden
	k := -1
	for h := 0; h < l.H; h++ {
		c := 0
		for fi := 0; fi < l.Fi; fi++ {
			if l.Mask[fi*l.H+h] {
				c++
			}
		}
		if k < 0 {
			k = c
		} else if c != k {
			t.Fatalf("HCU %d has %d active inputs, HCU 0 has %d", h, c, k)
		}
	}
	return k
}

// TestSparseScheduleReachesTarget: the prune/regrow schedule must anneal K
// from round(RF·Fi) down to round((1−TargetSparsity)·Fi) by the end of the
// unsupervised phase, keeping exactly K active inputs per HCU throughout, and
// the layer's block index must agree with the mask it was built from.
func TestSparseScheduleReachesTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	p := sparseParams()
	p.Seed = 40
	train := synthEncoded(rng, 600, 8, 4, []int{1, 5}, 0.1)
	n := NewNetwork(backend.MustNew("parallel", 2), 8, 4, 2, p)
	n.TrainUnsupervised(train, p.UnsupervisedEpochs)

	wantK := receptiveK(1-p.TargetSparsity, 8)
	if n.Hidden.K != wantK {
		t.Fatalf("schedule left K=%d, want %d", n.Hidden.K, wantK)
	}
	if got := maskPopcountPerHCU(t, n); got != wantK {
		t.Fatalf("mask popcount %d disagrees with K=%d", got, wantK)
	}
	bi := n.Hidden.Blocks()
	if bi.ActiveBlocks() != wantK*p.HCUs {
		t.Fatalf("block index has %d active blocks, want %d", bi.ActiveBlocks(), wantK*p.HCUs)
	}
	wantSparsity := 1 - float64(wantK)/8
	if s := bi.Sparsity(); s != wantSparsity {
		t.Fatalf("block sparsity %v, want %v", s, wantSparsity)
	}
}

// TestSparseSaveLoadRoundTripsBlocks: after the prune/regrow schedule has
// mutated the mask mid-training, Save/Load must round-trip the mask, restore
// K from it, and rebuild an identical block index — and sparse-path
// predictions must be unchanged across the round trip onto a different
// backend.
func TestSparseSaveLoadRoundTripsBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := sparseParams()
	p.Seed = 41
	train := synthEncoded(rng, 600, 8, 4, []int{1, 5}, 0.1)
	test := synthEncoded(rng, 150, 8, 4, []int{1, 5}, 0.1)
	n := NewNetwork(backend.MustNew("naive", 0), 8, 4, 2, p)
	n.Train(train)
	if n.Hidden.K == receptiveK(p.ReceptiveField, 8) {
		t.Fatal("schedule did not change K; round trip would not exercise restore")
	}
	predBefore, scoreBefore := n.Predict(test)

	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, backend.MustNew("parallel", 2))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Hidden.SparseCompute() {
		t.Fatal("SparseCompute flag lost in round trip")
	}
	if loaded.Hidden.K != n.Hidden.K {
		t.Fatalf("K %d after load, want %d", loaded.Hidden.K, n.Hidden.K)
	}
	for i, on := range n.Hidden.Mask {
		if loaded.Hidden.Mask[i] != on {
			t.Fatalf("mask bit %d changed in round trip", i)
		}
	}
	if !loaded.Hidden.Blocks().Equal(n.Hidden.Blocks()) {
		t.Fatal("rebuilt block index differs from the original")
	}
	if !statesEqual(n, loaded, 1e-12) {
		t.Fatal("derived parameters differ after round trip")
	}
	predAfter, scoreAfter := loaded.Predict(test)
	for i := range predBefore {
		if predBefore[i] != predAfter[i] {
			t.Fatalf("prediction changed at %d after reload", i)
		}
		if d := scoreBefore[i] - scoreAfter[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("score changed at %d: %v vs %v", i, scoreBefore[i], scoreAfter[i])
		}
	}
}

// TestSparseResumeDeterministic: two Loads of the same snapshot must follow
// bit-identical subsequent trajectories — including further prune/regrow
// steps, whose regrowth picks are RNG-driven. This is the seed-pinning
// contract: Load re-derives the training RNG from the saved seed, so the
// resumed mask evolution, block index, weights and predictions are all a
// deterministic function of the snapshot.
func TestSparseResumeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := sparseParams()
	p.Seed = 42
	// Stretch the schedule past the first training run so the resumed epochs
	// still have pruning (and its regrow counterpart) left to do.
	p.SparsityEpochs = p.UnsupervisedEpochs + 2
	train := synthEncoded(rng, 600, 8, 4, []int{1, 5}, 0.1)
	test := synthEncoded(rng, 150, 8, 4, []int{1, 5}, 0.1)
	n := NewNetwork(backend.MustNew("naive", 0), 8, 4, 2, p)
	n.TrainUnsupervised(train, p.UnsupervisedEpochs)

	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	a, err := Load(bytes.NewReader(snap), backend.MustNew("naive", 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(bytes.NewReader(snap), backend.MustNew("parallel", 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Network{a, b} {
		m.TrainUnsupervised(train, p.UnsupervisedEpochs)
		m.TrainSupervised(train, p.SupervisedEpochs)
		m.CalibrateThreshold(train)
	}
	for i, on := range a.Hidden.Mask {
		if b.Hidden.Mask[i] != on {
			t.Fatalf("resumed masks diverge at bit %d", i)
		}
	}
	if a.Hidden.K != b.Hidden.K {
		t.Fatalf("resumed K diverges: %d vs %d", a.Hidden.K, b.Hidden.K)
	}
	if !a.Hidden.Blocks().Equal(b.Hidden.Blocks()) {
		t.Fatal("resumed block indexes diverge")
	}
	if !statesEqual(a, b, 0) {
		t.Fatal("resumed derived parameters diverge")
	}
	predA, scoreA := a.Predict(test)
	predB, scoreB := b.Predict(test)
	for i := range predA {
		if predA[i] != predB[i] {
			t.Fatalf("resumed predictions diverge at %d", i)
		}
		// The readout's score normalization is backend-parallelized, so allow
		// the same last-ulp slack the dense round-trip tests use.
		if d := scoreA[i] - scoreB[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("resumed scores diverge at %d: %v vs %v", i, scoreA[i], scoreB[i])
		}
	}
}

// TestSparseParamsValidation: the sparse-schedule knobs reject inconsistent
// settings.
func TestSparseParamsValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.TargetSparsity = -0.1 },
		func(p *Params) { p.TargetSparsity = 1.0 },
		func(p *Params) { p.SparsityEpochs = -1 },
	}
	for i, mut := range bad {
		p := sparseParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
	// Valid: the sparse regime itself, and the dense-compute twin that runs
	// the same prune/regrow schedule on the masked kernels (E10's reference).
	p := sparseParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid sparse params rejected: %v", err)
	}
	p.SparseCompute = false
	if err := p.Validate(); err != nil {
		t.Fatalf("dense-compute schedule twin rejected: %v", err)
	}
}
