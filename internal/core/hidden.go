package core

import (
	"fmt"
	"math"
	"math/rand"

	"streambrain/internal/backend"
	"streambrain/internal/tensor"
)

// HiddenLayer is the unsupervised BCPNN feature layer: H hypercolumns of M
// minicolumns each, fully described by its probability traces. Weights and
// biases are *derived* quantities recomputed from the traces after every
// batch — the traces are the learning state, which is what makes the rule
// local and communication-free (paper §II-B).
type HiddenLayer struct {
	be backend.Backend

	// Input geometry: Fi input hypercolumns of Mi units each.
	Fi, Mi int
	// Hidden geometry: H HCUs of M MCUs each.
	H, M int

	// Derived parameters.
	W    *tensor.Matrix // (Fi·Mi)×(H·M) log-odds weights, mask applied
	Bias []float64      // H·M
	Kbi  []float64      // homeostatic bias gain per unit

	// Probability traces. Cij is kept dense — silent connections keep
	// learning statistics even while gated out of the support, which is what
	// lets structural plasticity score them (DESIGN.md §5.1).
	Ci  []float64
	Cj  []float64
	Cij *tensor.Matrix

	// Mask is the Fi×H receptive-field gate; exactly K entries per HCU
	// column are true.
	Mask []bool
	K    int

	// lastSwaps records the most recent structural update for observers.
	lastSwaps []SwapRecord

	p   Params
	rng *rand.Rand

	// noiseStd is the current support-noise level; the trainer anneals it
	// across unsupervised epochs via SetNoise, and it is never applied in
	// Forward (prediction stays deterministic).
	noiseStd float64

	// scratch reused across batches to keep the hot loop allocation-free.
	pool    *tensor.Pool
	meanAct []float64
}

// NewHiddenLayer builds a hidden layer for inputs of fi hypercolumns × mi
// units, with p.HCUs×p.MCUs hidden units on the given backend.
func NewHiddenLayer(be backend.Backend, fi, mi int, p Params, rng *rand.Rand) *HiddenLayer {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if fi < 1 || mi < 1 {
		panic(fmt.Sprintf("core: bad input geometry %dx%d", fi, mi))
	}
	h, m := p.HCUs, p.MCUs
	in, units := fi*mi, h*m
	l := &HiddenLayer{
		be: be, Fi: fi, Mi: mi, H: h, M: m,
		W:       tensor.NewMatrix(in, units),
		Bias:    make([]float64, units),
		Kbi:     make([]float64, units),
		Ci:      make([]float64, in),
		Cj:      make([]float64, units),
		Cij:     tensor.NewMatrix(in, units),
		p:       p,
		rng:     rng,
		pool:    tensor.NewPool(),
		meanAct: make([]float64, units),
	}
	// Priors: uniform within each hypercolumn. The joint trace gets a small
	// multiplicative jitter so MCUs inside an HCU break symmetry; without it
	// every MCU would stay identical forever (the rule is deterministic).
	pi := 1 / float64(mi)
	pj := 1 / float64(m)
	for i := range l.Ci {
		l.Ci[i] = pi
	}
	for j := range l.Cj {
		l.Cj[j] = pj
		l.Kbi[j] = 1
	}
	for i := 0; i < in; i++ {
		row := l.Cij.Row(i)
		for j := range row {
			row[j] = pi * pj * (1 + p.InitNoise*(rng.Float64()-0.5))
		}
	}
	l.K = receptiveK(p.ReceptiveField, fi)
	l.initMask()
	l.refreshParameters()
	return l
}

// InitTracesFromData replaces the uniform input-marginal prior with
// empirical marginals counted from a sample of encoded inputs (Laplace-
// smoothed within each hypercolumn), and re-seeds the joint trace
// consistently as Cij = Ci·Cj·(1+jitter).
//
// This matters for structural plasticity: trace-based MI estimates pool the
// prior state with the data-driven state, and a mixture of two product
// distributions acquires spurious mutual information whenever BOTH marginals
// shift between the states. Seeding Ci at its true value pins the input
// marginal, so only the unit marginal drifts during learning and the
// artifact vanishes — otherwise constant inputs (e.g. always-off MNIST
// fringe pixels, whose marginal moves 0.5→~1) would out-score genuinely
// informative ones.
func (l *HiddenLayer) InitTracesFromData(idx [][]int32) {
	if len(idx) == 0 {
		return
	}
	counts := make([]float64, l.Inputs())
	for _, active := range idx {
		for _, i := range active {
			counts[i]++
		}
	}
	n := float64(len(idx))
	for u := range l.Ci {
		l.Ci[u] = (counts[u] + 1.0/float64(l.Mi)) / (n + 1)
	}
	pj := 1 / float64(l.M)
	for i := 0; i < l.Inputs(); i++ {
		row := l.Cij.Row(i)
		for j := range row {
			row[j] = l.Ci[i] * pj * (1 + l.p.InitNoise*(l.rng.Float64()-0.5))
		}
	}
	l.refreshParameters()
}

// receptiveK converts a receptive-field fraction to a connection count.
func receptiveK(rf float64, fi int) int {
	k := int(math.Round(rf * float64(fi)))
	if k < 0 {
		k = 0
	}
	if k > fi {
		k = fi
	}
	return k
}

// initMask deals each HCU a random set of K active input hypercolumns —
// "initially, each HCU is initiated with a sparse and random receptive
// field" (paper §II-C).
func (l *HiddenLayer) initMask() {
	l.Mask = make([]bool, l.Fi*l.H)
	for h := 0; h < l.H; h++ {
		perm := l.rng.Perm(l.Fi)
		for _, fi := range perm[:l.K] {
			l.Mask[fi*l.H+h] = true
		}
	}
}

// Units returns the total number of hidden units (H·M).
func (l *HiddenLayer) Units() int { return l.H * l.M }

// Inputs returns the total number of input units (Fi·Mi).
func (l *HiddenLayer) Inputs() int { return l.Fi * l.Mi }

// refreshParameters recomputes W and Bias from the traces; called after
// every trace update and after every mask change.
func (l *HiddenLayer) refreshParameters() {
	l.be.UpdateWeights(l.W, l.Ci, l.Cj, l.Cij, l.Mask, l.Fi, l.Mi, l.H, l.M, l.p.Eps)
	l.be.UpdateBias(l.Bias, l.Kbi, l.Cj, l.p.Eps)
}

// Forward computes the hidden activation of a one-hot batch into out
// (batch × H·M): masked support plus bias, then per-HCU softmax. Forward is
// deterministic; the training-only support noise lives in forwardNoisy.
func (l *HiddenLayer) Forward(idx [][]int32, out *tensor.Matrix) {
	if out.Rows != len(idx) || out.Cols != l.Units() {
		panic("core: Forward output shape mismatch")
	}
	l.be.OneHotMatMul(out, idx, l.W)
	l.be.AddBias(out, l.Bias)
	l.be.SoftmaxGroups(out, l.H, l.M, l.p.Temperature)
}

// forwardNoisy is Forward plus the annealed symmetry-breaking support noise.
func (l *HiddenLayer) forwardNoisy(idx [][]int32, out *tensor.Matrix) {
	if out.Rows != len(idx) || out.Cols != l.Units() {
		panic("core: forwardNoisy output shape mismatch")
	}
	l.be.OneHotMatMul(out, idx, l.W)
	l.be.AddBias(out, l.Bias)
	if l.noiseStd > 0 {
		for i := range out.Data {
			out.Data[i] += l.noiseStd * l.rng.NormFloat64()
		}
	}
	l.be.SoftmaxGroups(out, l.H, l.M, l.p.Temperature)
}

// SetNoise sets the support-noise standard deviation used by TrainBatch.
func (l *HiddenLayer) SetNoise(std float64) { l.noiseStd = std }

// TrainBatch performs one unsupervised BCPNN step on a mini-batch:
// noisy forward pass (see SetNoise), trace update, homeostasis, parameter
// refresh.
func (l *HiddenLayer) TrainBatch(idx [][]int32) {
	act := l.pool.Get(len(idx), l.Units())
	l.forwardNoisy(idx, act)
	t := l.p.Taupdt
	l.be.OneHotMeanLerp(l.Ci, idx, t)
	tensor.ColMeans(l.meanAct, act)
	l.be.Lerp(l.Cj, l.meanAct, t)
	l.be.OneHotOuterLerp(l.Cij, idx, act, t)
	l.homeostasis()
	l.refreshParameters()
	l.pool.Put(act)
}

// homeostasis adapts the per-unit bias gain Kbi. The paper defers the bias
// regulation mechanism to Ravichandran et al. [3]; we implement the same
// effect (no permanently dead MCUs) with a floored-bias rule: units whose
// activation trace has fallen below pmin = PMinFraction/M get their bias
// gain driven toward the value that would place the bias at the fair-share
// level log(1/M), removing their competitive handicap so they can re-enter;
// healthy units relax toward gain 1 (the pure Bayesian bias). Documented as
// a substitution in DESIGN.md §3.
func (l *HiddenLayer) homeostasis() {
	fair := math.Log(1 / float64(l.M))
	pmin := l.p.PMinFraction / float64(l.M)
	for j, cj := range l.Cj {
		target := 1.0
		if cj < pmin {
			lp := math.Log(math.Max(cj, l.p.Eps))
			// lp <= log(pmin) < 0; the ratio is in (0, 1].
			target = fair / lp
		}
		l.Kbi[j] = (1-l.p.Taubdt)*l.Kbi[j] + l.p.Taubdt*target
	}
}

// ActiveFraction reports the fraction of hidden units whose activation trace
// is above half the fair share — a liveness diagnostic used by tests.
func (l *HiddenLayer) ActiveFraction() float64 {
	if len(l.Cj) == 0 {
		return 0
	}
	threshold := 0.5 / float64(l.M)
	n := 0
	for _, cj := range l.Cj {
		if cj > threshold {
			n++
		}
	}
	return float64(n) / float64(len(l.Cj))
}
