package core

import (
	"fmt"
	"math"
	"math/rand"

	"streambrain/internal/backend"
	"streambrain/internal/tensor"
)

// HiddenLayer is the unsupervised BCPNN feature layer: H hypercolumns of M
// minicolumns each, fully described by its probability traces. Weights and
// biases are *derived* quantities recomputed from the traces after every
// batch — the traces are the learning state, which is what makes the rule
// local and communication-free (paper §II-B).
type HiddenLayer struct {
	be backend.Backend

	// be32 is the float32 kernel set, non-nil only when Params.Precision
	// selects the reduced-precision compute path (DESIGN.md §9). Forward
	// passes then run at half width while every trace below stays float64.
	be32 backend.Backend32

	// step is the whole-layer offload capability (DESIGN.md §14), non-nil
	// when the backend implements backend.LayerStepper[float64]. TrainBatch
	// then ships the complete batch update as one fused call instead of the
	// composed kernel sequence. Traces are float64, so dispatch is float64-
	// only: on the float32 path a fused step trains at full width in-pass and
	// the lazy sync32 rebuild covers prediction.
	step backend.LayerStepper[float64]

	// Input geometry: Fi input hypercolumns of Mi units each.
	Fi, Mi int
	// Hidden geometry: H HCUs of M MCUs each.
	H, M int

	// Derived parameters.
	W    *tensor.Matrix // (Fi·Mi)×(H·M) log-odds weights, mask applied
	Bias []float64      // H·M
	Kbi  []float64      // homeostatic bias gain per unit

	// w32/bias32 are the float32 images of W and Bias, rebuilt lazily (see
	// sync32) after any trace update marks them stale. They exist only on
	// the float32 path.
	w32      *tensor.Matrix32
	bias32   []float32
	w32stale bool

	// Probability traces. Cij is kept dense — silent connections keep
	// learning statistics even while gated out of the support, which is what
	// lets structural plasticity score them (DESIGN.md §5.1).
	Ci  []float64
	Cj  []float64
	Cij *tensor.Matrix

	// Mask is the Fi×H receptive-field gate; exactly K entries per HCU
	// column are true.
	Mask []bool
	K    int

	// sparse selects the block-sparse compute regime (DESIGN.md §15):
	// forward gathers, joint-trace updates and weight re-derivation walk the
	// compressed block index instead of the dense buffers. Silent Cij blocks
	// are then frozen (dense mode keeps decaying them), and silent W blocks
	// hold exact zeros — an invariant re-established by the full masked
	// refreshParameters run on every mask change.
	sparse bool
	// blocks is the compressed block index over Mask, rebuilt lazily by
	// Blocks(); nil means stale (every mask mutation resets it).
	blocks *tensor.BlockIndex

	// lastSwaps records the most recent structural update for observers.
	lastSwaps []SwapRecord

	p   Params
	rng *rand.Rand

	// noiseStd is the current support-noise level; the trainer anneals it
	// across unsupervised epochs via SetNoise, and it is never applied in
	// Forward (prediction stays deterministic).
	noiseStd float64

	// scratch reused across batches to keep the hot loop allocation-free.
	pool     *tensor.Pool
	pool32   *tensor.PoolOf[float32]
	meanAct  []float64
	noiseBuf []float64 // pre-drawn support noise for the fused step
}

// NewHiddenLayer builds a hidden layer for inputs of fi hypercolumns × mi
// units, with p.HCUs×p.MCUs hidden units on the given backend.
func NewHiddenLayer(be backend.Backend, fi, mi int, p Params, rng *rand.Rand) *HiddenLayer {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if fi < 1 || mi < 1 {
		panic(fmt.Sprintf("core: bad input geometry %dx%d", fi, mi))
	}
	h, m := p.HCUs, p.MCUs
	in, units := fi*mi, h*m
	l := &HiddenLayer{
		be: be, Fi: fi, Mi: mi, H: h, M: m,
		W:       tensor.NewMatrix(in, units),
		Bias:    make([]float64, units),
		Kbi:     make([]float64, units),
		Ci:      make([]float64, in),
		Cj:      make([]float64, units),
		Cij:     tensor.NewMatrix(in, units),
		p:       p,
		rng:     rng,
		sparse:  p.SparseCompute,
		pool:    tensor.NewPool(),
		meanAct: make([]float64, units),
	}
	// Whole-layer offload is a capability, not a registry entry: any backend
	// that implements LayerStepper (fused, gpusim, fpgasim) gets the fused
	// training dispatch; everything else keeps the composed kernel sequence.
	l.step, _ = be.(backend.LayerStepper[float64])
	if p.Precision.Is32() {
		// A backend that models shared device state (gpusim) hands out its
		// own float32 companion so both precisions account against one
		// ledger; everything else resolves through the registry.
		if prov, ok := be.(interface{ Kernels32() backend.Backend32 }); ok {
			l.be32 = prov.Kernels32()
		} else {
			be32, err := backend.New32(be.Name(), be.Workers())
			if err != nil {
				panic(fmt.Sprintf("core: Precision %q: %v", p.Precision, err))
			}
			l.be32 = be32
		}
		l.w32 = tensor.NewMatrix32(in, units)
		l.bias32 = make([]float32, units)
		l.pool32 = tensor.NewPoolOf[float32]()
		l.w32stale = true
		// The float32 parameter images are long-lived model state: pin them
		// on offload simulators, mirroring the float64 bench convention of
		// device-resident derived parameters.
		if pin, ok := l.be32.(interface{ MakeResident(...[]float32) }); ok {
			pin.MakeResident(l.w32.Data, l.bias32)
		}
	}
	// Priors: uniform within each hypercolumn. The joint trace gets a small
	// multiplicative jitter so MCUs inside an HCU break symmetry; without it
	// every MCU would stay identical forever (the rule is deterministic).
	pi := 1 / float64(mi)
	pj := 1 / float64(m)
	for i := range l.Ci {
		l.Ci[i] = pi
	}
	for j := range l.Cj {
		l.Cj[j] = pj
		l.Kbi[j] = 1
	}
	for i := 0; i < in; i++ {
		row := l.Cij.Row(i)
		for j := range row {
			row[j] = pi * pj * (1 + p.InitNoise*(rng.Float64()-0.5))
		}
	}
	l.K = receptiveK(p.ReceptiveField, fi)
	l.initMask()
	l.refreshParameters()
	return l
}

// InitTracesFromData replaces the uniform input-marginal prior with
// empirical marginals counted from a sample of encoded inputs (Laplace-
// smoothed within each hypercolumn), and re-seeds the joint trace
// consistently as Cij = Ci·Cj·(1+jitter).
//
// This matters for structural plasticity: trace-based MI estimates pool the
// prior state with the data-driven state, and a mixture of two product
// distributions acquires spurious mutual information whenever BOTH marginals
// shift between the states. Seeding Ci at its true value pins the input
// marginal, so only the unit marginal drifts during learning and the
// artifact vanishes — otherwise constant inputs (e.g. always-off MNIST
// fringe pixels, whose marginal moves 0.5→~1) would out-score genuinely
// informative ones.
func (l *HiddenLayer) InitTracesFromData(idx [][]int32) {
	if len(idx) == 0 {
		return
	}
	counts := make([]float64, l.Inputs())
	for _, active := range idx {
		for _, i := range active {
			counts[i]++
		}
	}
	n := float64(len(idx))
	for u := range l.Ci {
		l.Ci[u] = (counts[u] + 1.0/float64(l.Mi)) / (n + 1)
	}
	pj := 1 / float64(l.M)
	for i := 0; i < l.Inputs(); i++ {
		row := l.Cij.Row(i)
		for j := range row {
			row[j] = l.Ci[i] * pj * (1 + l.p.InitNoise*(l.rng.Float64()-0.5))
		}
	}
	l.refreshParameters()
}

// receptiveK converts a receptive-field fraction to a connection count.
func receptiveK(rf float64, fi int) int {
	k := int(math.Round(rf * float64(fi)))
	if k < 0 {
		k = 0
	}
	if k > fi {
		k = fi
	}
	return k
}

// initMask deals each HCU a random set of K active input hypercolumns —
// "initially, each HCU is initiated with a sparse and random receptive
// field" (paper §II-C).
func (l *HiddenLayer) initMask() {
	l.Mask = make([]bool, l.Fi*l.H)
	for h := 0; h < l.H; h++ {
		perm := l.rng.Perm(l.Fi)
		for _, fi := range perm[:l.K] {
			l.Mask[fi*l.H+h] = true
		}
	}
}

// SparseCompute reports whether the layer runs the block-sparse compute
// regime.
func (l *HiddenLayer) SparseCompute() bool { return l.sparse }

// Blocks returns the compressed block index over the current receptive-field
// mask, rebuilding it if a mask mutation invalidated the cached one. The
// rebuild is O(Fi·H) — cheap next to a batch — and happens only on swap, so
// steady-state training reuses one index.
func (l *HiddenLayer) Blocks() *tensor.BlockIndex {
	if l.blocks == nil {
		l.blocks = tensor.NewBlockIndex(l.Mask, l.Fi, l.Mi, l.H, l.M)
	}
	return l.blocks
}

// invalidateBlocks drops the cached block index after a mask mutation.
func (l *HiddenLayer) invalidateBlocks() { l.blocks = nil }

// Units returns the total number of hidden units (H·M).
func (l *HiddenLayer) Units() int { return l.H * l.M }

// Inputs returns the total number of input units (Fi·Mi).
func (l *HiddenLayer) Inputs() int { return l.Fi * l.Mi }

// refreshParameters recomputes W and Bias from the traces. On the composed
// training path it runs after every trace update; on the fused path
// (DESIGN.md §14) LayerStep produces W and Bias in-pass and this is needed
// only where parameters must be re-derived without advancing the traces —
// construction, trace re-seeding, and mask changes (structural plasticity).
// On the float32 path the down-cast images go stale and are rebuilt lazily
// by sync32.
func (l *HiddenLayer) refreshParameters() {
	l.be.UpdateWeights(l.W, l.Ci, l.Cj, l.Cij, l.Mask, l.Fi, l.Mi, l.H, l.M, l.p.Eps)
	l.be.UpdateBias(l.Bias, l.Kbi, l.Cj, l.p.Eps)
	l.w32stale = true
	if l.sparse && l.blocks == nil {
		// Rebuild the block index eagerly: every mask mutation funnels through
		// a masked refresh, so a warm index here keeps Forward read-only — the
		// invariant concurrent serving (Bundle.Predict) relies on.
		l.blocks = tensor.NewBlockIndex(l.Mask, l.Fi, l.Mi, l.H, l.M)
	}
}

// Precision32 reports whether this layer runs forward passes on the float32
// kernel set.
func (l *HiddenLayer) Precision32() bool { return l.be32 != nil }

// sync32 refreshes the float32 parameter images if a trace update made them
// stale. Single-goroutine like every training-path method. The recast
// happens on the host, so offload simulators are told to charge the
// re-upload of the (still pinned) device images.
func (l *HiddenLayer) sync32() {
	if !l.w32stale {
		return
	}
	tensor.CastInto(l.w32, l.W)
	tensor.CastSlice(l.bias32, l.Bias)
	l.w32stale = false
	if ch, ok := l.be32.(interface{ ChargeUpload(...[]float32) }); ok {
		ch.ChargeUpload(l.w32.Data, l.bias32)
	}
}

// Forward computes the hidden activation of a one-hot batch into out
// (batch × H·M): masked support plus bias, then per-HCU softmax. Forward is
// deterministic; the training-only support noise lives in forwardNoisy.
// On the float32 path the support, bias add and softmax run on the float32
// kernel set and only the finished activations are up-cast.
func (l *HiddenLayer) Forward(idx [][]int32, out *tensor.Matrix) {
	if out.Rows != len(idx) || out.Cols != l.Units() {
		panic("core: Forward output shape mismatch")
	}
	if l.be32 != nil {
		act32 := l.pool32.Get(len(idx), l.Units())
		l.Forward32(idx, act32)
		tensor.CastInto(out, act32)
		l.pool32.Put(act32)
		return
	}
	if l.sparse {
		l.be.OneHotMatMulSparse(out, idx, l.W, l.Blocks())
	} else {
		l.be.OneHotMatMul(out, idx, l.W)
	}
	l.be.AddBias(out, l.Bias)
	l.be.SoftmaxGroups(out, l.H, l.M, l.p.Temperature)
}

// Forward32 is the reduced-precision forward pass, writing float32
// activations directly (no up-cast). It panics unless the layer was built
// with Params.Precision = Float32.
func (l *HiddenLayer) Forward32(idx [][]int32, out *tensor.Matrix32) {
	if l.be32 == nil {
		panic("core: Forward32 on a float64-precision layer")
	}
	if out.Rows != len(idx) || out.Cols != l.Units() {
		panic("core: Forward32 output shape mismatch")
	}
	l.sync32()
	if l.sparse {
		l.be32.OneHotMatMulSparse(out, idx, l.w32, l.Blocks())
	} else {
		l.be32.OneHotMatMul(out, idx, l.w32)
	}
	l.be32.AddBias(out, l.bias32)
	l.be32.SoftmaxGroups(out, l.H, l.M, l.p.Temperature)
}

// forwardNoisy is Forward plus the annealed symmetry-breaking support noise.
// The float32 path injects the noise at float32 before its softmax, keeping
// the whole support computation at reduced precision.
func (l *HiddenLayer) forwardNoisy(idx [][]int32, out *tensor.Matrix) {
	if out.Rows != len(idx) || out.Cols != l.Units() {
		panic("core: forwardNoisy output shape mismatch")
	}
	if l.be32 != nil {
		act32 := l.pool32.Get(len(idx), l.Units())
		l.sync32()
		if l.sparse {
			l.be32.OneHotMatMulSparse(act32, idx, l.w32, l.Blocks())
		} else {
			l.be32.OneHotMatMul(act32, idx, l.w32)
		}
		l.be32.AddBias(act32, l.bias32)
		if l.noiseStd > 0 {
			for i := range act32.Data {
				act32.Data[i] += float32(l.noiseStd * l.rng.NormFloat64())
			}
		}
		l.be32.SoftmaxGroups(act32, l.H, l.M, l.p.Temperature)
		tensor.CastInto(out, act32)
		l.pool32.Put(act32)
		return
	}
	if l.sparse {
		l.be.OneHotMatMulSparse(out, idx, l.W, l.Blocks())
	} else {
		l.be.OneHotMatMul(out, idx, l.W)
	}
	l.be.AddBias(out, l.Bias)
	if l.noiseStd > 0 {
		for i := range out.Data {
			out.Data[i] += l.noiseStd * l.rng.NormFloat64()
		}
	}
	l.be.SoftmaxGroups(out, l.H, l.M, l.p.Temperature)
}

// SetNoise sets the support-noise standard deviation used by TrainBatch.
func (l *HiddenLayer) SetNoise(std float64) { l.noiseStd = std }

// TrainBatch performs one unsupervised BCPNN step on a mini-batch:
// noisy forward pass (see SetNoise), trace update, homeostasis, parameter
// refresh. On a LayerStepper backend the whole step is one fused call
// (DESIGN.md §14); otherwise it is the composed kernel sequence.
func (l *HiddenLayer) TrainBatch(idx [][]int32) {
	act := l.pool.Get(len(idx), l.Units())
	l.trainBatchInto(idx, act)
	l.pool.Put(act)
}

// TrainBatchInto is TrainBatch exposing the training activations: when the
// step ran fused with no support noise it fills act (batch × H·M) with the
// batch's forward activations — computed in-pass against the pre-update
// parameters — and returns true, letting streaming callers skip a second
// forward pass. It returns false when the activations are not reusable
// (composed path, or noise was injected); act contents are then undefined.
func (l *HiddenLayer) TrainBatchInto(idx [][]int32, act *tensor.Matrix) bool {
	if act.Rows != len(idx) || act.Cols != l.Units() {
		panic("core: TrainBatchInto activation shape mismatch")
	}
	return l.trainBatchInto(idx, act)
}

func (l *HiddenLayer) trainBatchInto(idx [][]int32, act *tensor.Matrix) bool {
	if l.step != nil {
		l.fusedLayerStep(idx, act)
		return l.noiseStd == 0
	}
	l.forwardNoisy(idx, act)
	t := l.p.Taupdt
	l.be.OneHotMeanLerp(l.Ci, idx, t)
	tensor.ColMeans(l.meanAct, act)
	l.be.Lerp(l.Cj, l.meanAct, t)
	if l.sparse {
		// Block-sparse step: only active Cij blocks decay/accumulate and
		// only active W panels are re-derived. Silent W panels keep the
		// exact zeros the last masked refresh wrote.
		bi := l.Blocks()
		l.be.OneHotOuterLerpSparse(l.Cij, idx, act, t, bi)
		l.homeostasis()
		l.be.UpdateWeightsSparse(l.W, l.Ci, l.Cj, l.Cij, bi, l.p.Eps)
		l.be.UpdateBias(l.Bias, l.Kbi, l.Cj, l.p.Eps)
		l.w32stale = true
		return false
	}
	l.be.OneHotOuterLerp(l.Cij, idx, act, t)
	l.homeostasis()
	l.refreshParameters()
	return false
}

// fusedLayerStep ships the whole batch update to the backend as one
// LayerStep call. Homeostasis and the parameter refresh happen in-pass, so
// the composed sequence's trailing refreshParameters — and, for float32, the
// eager recast it would schedule — collapse to marking the images stale;
// sync32 still rebuilds them lazily before the next reduced-precision
// forward. Support noise is pre-drawn row-major from the layer RNG, exactly
// the order forwardNoisy consumes it, so training stays deterministic and
// backend-independent.
func (l *HiddenLayer) fusedLayerStep(idx [][]int32, act *tensor.Matrix) {
	var noise []float64
	if l.noiseStd > 0 {
		n := len(idx) * l.Units()
		if cap(l.noiseBuf) < n {
			l.noiseBuf = make([]float64, n)
		}
		noise = l.noiseBuf[:n]
		for i := range noise {
			noise[i] = l.noiseStd * l.rng.NormFloat64()
		}
	}
	var bi *tensor.BlockIndex
	if l.sparse {
		bi = l.Blocks()
	}
	l.step.LayerStep(idx, act, l.Ci, l.Cj, l.Cij, l.W, l.Bias, l.Mask,
		backend.LayerGeom{Fi: l.Fi, Mi: l.Mi, H: l.H, M: l.M},
		backend.LayerHyper[float64]{
			Taupdt:       l.p.Taupdt,
			Taubdt:       l.p.Taubdt,
			PMinFraction: l.p.PMinFraction,
			Temperature:  l.p.Temperature,
			Eps:          l.p.Eps,
			Kbi:          l.Kbi,
			Noise:        noise,
			Blocks:       bi,
		})
	l.w32stale = true
}

// homeostasis adapts the per-unit bias gain Kbi. The paper defers the bias
// regulation mechanism to Ravichandran et al. [3]; we implement the same
// effect (no permanently dead MCUs) with a floored-bias rule: units whose
// activation trace has fallen below pmin = PMinFraction/M get their bias
// gain driven toward the value that would place the bias at the fair-share
// level log(1/M), removing their competitive handicap so they can re-enter;
// healthy units relax toward gain 1 (the pure Bayesian bias). Documented as
// a substitution in DESIGN.md §3.
func (l *HiddenLayer) homeostasis() {
	fair := math.Log(1 / float64(l.M))
	pmin := l.p.PMinFraction / float64(l.M)
	for j, cj := range l.Cj {
		target := 1.0
		if cj < pmin {
			lp := math.Log(math.Max(cj, l.p.Eps))
			// lp <= log(pmin) < 0; the ratio is in (0, 1].
			target = fair / lp
		}
		l.Kbi[j] = (1-l.p.Taubdt)*l.Kbi[j] + l.p.Taubdt*target
	}
}

// ActiveFraction reports the fraction of hidden units whose activation trace
// is above half the fair share — a liveness diagnostic used by tests.
func (l *HiddenLayer) ActiveFraction() float64 {
	if len(l.Cj) == 0 {
		return 0
	}
	threshold := 0.5 / float64(l.M)
	n := 0
	for _, cj := range l.Cj {
		if cj > threshold {
			n++
		}
	}
	return float64(n) / float64(len(l.Cj))
}
