package data

import (
	"fmt"
	"math/rand"

	"streambrain/internal/metrics"
)

// Streaming counterparts of the batch preprocessing: the continual-learning
// pipeline (internal/stream, DESIGN.md §7) never holds a full Dataset, so the
// encoder must fit from raw rows, refit from a reservoir sample without
// stopping ingest, and transform label-paired micro-batches directly.

// FitEncoderRows computes per-feature quantile boundaries from raw rows —
// the row-slice counterpart of FitEncoder. All rows must have the same
// width. Boundaries are deduplicated exactly as in FitEncoder, which is what
// keeps a Refit from a low-diversity reservoir (e.g. after an input stuck at
// one value) from collapsing a hypercolumn to duplicate cuts.
func FitEncoderRows(rows [][]float64, bins int) *Encoder {
	if bins < 2 {
		panic("data: FitEncoderRows needs bins >= 2")
	}
	if len(rows) == 0 {
		panic("data: FitEncoderRows needs at least one row")
	}
	nf := len(rows[0])
	enc := &Encoder{Bins: bins, Cuts: make([][]float64, nf)}
	col := make([]float64, len(rows))
	for f := 0; f < nf; f++ {
		for r, row := range rows {
			col[r] = row[f]
		}
		enc.Cuts[f] = dedupeCuts(metrics.Quantiles(col, bins), colMin(col))
	}
	return enc
}

// Refit recomputes the quantile boundaries in place from a fresh sample
// (typically a Reservoir snapshot), keeping the bin count and feature width.
// The network consuming the encoding keeps its traces: after a refit the
// input distribution over bins shifts and the BCPNN trace EMA adapts over the
// following micro-batches, which is what lets the stream pipeline track
// covariate drift without stopping ingest.
func (enc *Encoder) Refit(rows [][]float64) error {
	if len(rows) == 0 {
		return fmt.Errorf("data: refit with no rows")
	}
	if len(rows[0]) != len(enc.Cuts) {
		return fmt.Errorf("data: encoder fitted on %d features, refit rows have %d",
			len(enc.Cuts), len(rows[0]))
	}
	enc.Cuts = FitEncoderRows(rows, enc.Bins).Cuts
	return nil
}

// TransformBatch encodes raw rows paired with labels into an Encoded
// micro-batch — the streaming counterpart of Transform.
func (enc *Encoder) TransformBatch(rows [][]float64, labels []int, classes int) (*Encoded, error) {
	if len(rows) != len(labels) {
		return nil, fmt.Errorf("data: %d rows with %d labels", len(rows), len(labels))
	}
	out := &Encoded{
		Idx:          make([][]int32, len(rows)),
		Y:            append([]int(nil), labels...),
		Classes:      classes,
		Hypercolumns: enc.Features(),
		UnitsPerHC:   enc.Bins,
	}
	for s, row := range rows {
		idx, err := enc.TransformRow(make([]int32, 0, len(row)), row)
		if err != nil {
			return nil, fmt.Errorf("data: row %d: %w", s, err)
		}
		out.Idx[s] = idx
	}
	return out, nil
}

// Reservoir maintains a fixed-capacity uniform random sample over an
// unbounded stream of feature rows (Vitter's Algorithm R). The stream
// pipeline feeds every ingested event through it and refits the quantile
// encoder from Rows(), so the boundaries always reflect an unbiased sample
// of everything seen so far.
type Reservoir struct {
	rows [][]float64
	cap  int
	seen int64
	rng  *rand.Rand
}

// NewReservoir builds an empty reservoir holding at most capacity rows.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity < 1 {
		panic("data: NewReservoir needs capacity >= 1")
	}
	return &Reservoir{
		rows: make([][]float64, 0, capacity),
		cap:  capacity,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Add offers one row to the sample; the row is copied, so callers may reuse
// the backing slice.
func (r *Reservoir) Add(row []float64) {
	r.seen++
	if len(r.rows) < r.cap {
		r.rows = append(r.rows, append([]float64(nil), row...))
		return
	}
	// Keep each seen row with probability cap/seen.
	if k := r.rng.Int63n(r.seen); k < int64(r.cap) {
		r.rows[k] = append(r.rows[k][:0], row...)
	}
}

// Rows returns the current sample. The slice is shared with the reservoir;
// callers must not retain it across further Add calls.
func (r *Reservoir) Rows() [][]float64 { return r.rows }

// Len returns the number of rows currently sampled.
func (r *Reservoir) Len() int { return len(r.rows) }

// Seen returns the total number of rows offered.
func (r *Reservoir) Seen() int64 { return r.seen }
