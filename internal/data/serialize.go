package data

import (
	"encoding/gob"
	"fmt"
	"io"

	"streambrain/internal/metrics"
)

// The fitted preprocessors are model state: a network trained on quantile
// one-hot codes is only usable together with the exact bin boundaries it was
// trained behind. Serializing them (gob, mirroring core.Network.Save) is what
// lets a model bundle score raw events end-to-end after a process restart.

type encoderState struct {
	Version int
	Bins    int
	Cuts    [][]float64
}

type standardizerState struct {
	Version   int
	Mean, Std []float64
}

const preprocVersion = 1

// Save serializes the fitted quantile boundaries.
func (enc *Encoder) Save(w io.Writer) error {
	st := encoderState{Version: preprocVersion, Bins: enc.Bins, Cuts: enc.Cuts}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("data: save encoder: %w", err)
	}
	return nil
}

// LoadEncoder reconstructs a fitted Encoder from a Save stream.
func LoadEncoder(r io.Reader) (*Encoder, error) {
	var st encoderState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("data: load encoder: %w", err)
	}
	if st.Version != preprocVersion {
		return nil, fmt.Errorf("data: load encoder: state version %d, want %d",
			st.Version, preprocVersion)
	}
	if st.Bins < 2 || len(st.Cuts) == 0 {
		return nil, fmt.Errorf("data: load encoder: empty or degenerate state")
	}
	for f, cuts := range st.Cuts {
		// Deduplicated fits store at most Bins-1 cuts (possibly zero for a
		// constant feature); pre-dedupe states stored exactly Bins-1 and may
		// contain duplicates — both load verbatim so a model keeps the exact
		// binning it was trained behind. Boundaries must be ascending.
		if len(cuts) > st.Bins-1 {
			return nil, fmt.Errorf("data: load encoder: feature %d has %d cuts for %d bins",
				f, len(cuts), st.Bins)
		}
		for k := 0; k < len(cuts); k++ {
			// NaN cuts make BinIndex's binary search undefined, and NaN
			// compares false with everything, so test it explicitly — an
			// ascending-only check would wave NaN-bearing states through.
			if cuts[k] != cuts[k] {
				return nil, fmt.Errorf("data: load encoder: feature %d has a NaN cut", f)
			}
			if k > 0 && cuts[k] < cuts[k-1] {
				return nil, fmt.Errorf("data: load encoder: feature %d cuts not ascending", f)
			}
		}
	}
	return &Encoder{Bins: st.Bins, Cuts: st.Cuts}, nil
}

// Save serializes the fitted standardization statistics.
func (st *Standardizer) Save(w io.Writer) error {
	s := standardizerState{Version: preprocVersion, Mean: st.Mean, Std: st.Std}
	if err := gob.NewEncoder(w).Encode(&s); err != nil {
		return fmt.Errorf("data: save standardizer: %w", err)
	}
	return nil
}

// LoadStandardizer reconstructs a fitted Standardizer from a Save stream.
func LoadStandardizer(r io.Reader) (*Standardizer, error) {
	var s standardizerState
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("data: load standardizer: %w", err)
	}
	if s.Version != preprocVersion {
		return nil, fmt.Errorf("data: load standardizer: state version %d, want %d",
			s.Version, preprocVersion)
	}
	if len(s.Mean) == 0 || len(s.Mean) != len(s.Std) {
		return nil, fmt.Errorf("data: load standardizer: %d means for %d stds",
			len(s.Mean), len(s.Std))
	}
	for f, sd := range s.Std {
		if sd <= 0 {
			return nil, fmt.Errorf("data: load standardizer: non-positive std at feature %d", f)
		}
	}
	return &Standardizer{Mean: s.Mean, Std: s.Std}, nil
}

// Features returns the number of input features the encoder was fitted on.
func (enc *Encoder) Features() int { return len(enc.Cuts) }

// TransformRow encodes a single raw feature vector into its active-unit
// indices (one per input hypercolumn), appending to dst. This is the online
// single-event path of Transform: the serving layer scores raw events without
// materializing a Dataset.
func (enc *Encoder) TransformRow(dst []int32, features []float64) ([]int32, error) {
	if len(features) != len(enc.Cuts) {
		return nil, fmt.Errorf("data: encoder fitted on %d features, event has %d",
			len(enc.Cuts), len(features))
	}
	for f, v := range features {
		b := metrics.BinIndex(v, enc.Cuts[f])
		dst = append(dst, int32(f*enc.Bins+b))
	}
	return dst, nil
}
