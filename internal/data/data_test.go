package data

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streambrain/internal/tensor"
)

// makeDataset builds a small labeled dataset with controllable class counts.
func makeDataset(rng *rand.Rand, perClass []int, features int) *Dataset {
	total := 0
	for _, c := range perClass {
		total += c
	}
	d := &Dataset{
		X:       tensor.NewMatrix(total, features),
		Y:       make([]int, total),
		Classes: len(perClass),
	}
	row := 0
	for class, count := range perClass {
		for k := 0; k < count; k++ {
			for f := 0; f < features; f++ {
				d.X.Set(row, f, rng.NormFloat64()+float64(class))
			}
			d.Y[row] = class
			row++
		}
	}
	return d
}

func TestValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := makeDataset(rng, []int{5, 5}, 3)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	bad := &Dataset{X: tensor.NewMatrix(2, 1), Y: []int{0}, Classes: 2}
	if bad.Validate() == nil {
		t.Fatal("length mismatch accepted")
	}
	bad2 := &Dataset{X: tensor.NewMatrix(1, 1), Y: []int{5}, Classes: 2}
	if bad2.Validate() == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestSplitStratified(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := makeDataset(rng, []int{100, 300}, 2)
	train, test := d.Split(0.75, rng)
	if train.Len()+test.Len() != 400 {
		t.Fatalf("split lost samples: %d + %d", train.Len(), test.Len())
	}
	count := func(ds *Dataset, c int) int {
		n := 0
		for _, y := range ds.Y {
			if y == c {
				n++
			}
		}
		return n
	}
	if count(train, 0) != 75 || count(train, 1) != 225 {
		t.Fatalf("train not stratified: %d/%d", count(train, 0), count(train, 1))
	}
	if count(test, 0) != 25 || count(test, 1) != 75 {
		t.Fatalf("test not stratified: %d/%d", count(test, 0), count(test, 1))
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	// Tag each sample with a unique feature value; after the split every tag
	// must appear exactly once across the two sides.
	rng := rand.New(rand.NewSource(3))
	d := makeDataset(rng, []int{20, 20}, 1)
	for i := 0; i < d.Len(); i++ {
		d.X.Set(i, 0, float64(i))
	}
	train, test := d.Split(0.5, rng)
	seen := map[float64]int{}
	for i := 0; i < train.Len(); i++ {
		seen[train.X.At(i, 0)]++
	}
	for i := 0; i < test.Len(); i++ {
		seen[test.X.At(i, 0)]++
	}
	if len(seen) != 40 {
		t.Fatalf("expected 40 unique tags, got %d", len(seen))
	}
	for tag, n := range seen {
		if n != 1 {
			t.Fatalf("tag %v appears %d times", tag, n)
		}
	}
}

func TestSplitBadFracPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := makeDataset(rng, []int{4, 4}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Split(1.5, rng)
}

func TestBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := makeDataset(rng, []int{50, 200}, 2)
	b := d.Balanced(80, rng)
	// min(80, 50) = 50 per class.
	if b.Len() != 100 {
		t.Fatalf("balanced size = %d, want 100", b.Len())
	}
	n0 := 0
	for _, y := range b.Y {
		if y == 0 {
			n0++
		}
	}
	if n0 != 50 {
		t.Fatalf("class 0 count = %d, want 50", n0)
	}
}

func TestEncoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := makeDataset(rng, []int{200, 200}, 5)
	enc := FitEncoder(d, 10)
	e := enc.Transform(d)
	if e.Hypercolumns != 5 || e.UnitsPerHC != 10 || e.TotalInputs() != 50 {
		t.Fatalf("bad encoded geometry: %+v", e)
	}
	if e.Len() != d.Len() {
		t.Fatalf("encoded length %d != %d", e.Len(), d.Len())
	}
	// Exactly one active unit per hypercolumn, inside that hypercolumn's
	// index range.
	for s, active := range e.Idx {
		if len(active) != 5 {
			t.Fatalf("sample %d has %d active units", s, len(active))
		}
		for f, a := range active {
			if int(a) < f*10 || int(a) >= (f+1)*10 {
				t.Fatalf("sample %d feature %d: unit %d outside hypercolumn", s, f, a)
			}
		}
	}
}

// TestEncoderEvenOccupancy: fitting and transforming the same data must fill
// each feature's bins approximately evenly (the §V preprocessing invariant).
func TestEncoderEvenOccupancy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := makeDataset(rng, []int{2000, 2000}, 3)
	enc := FitEncoder(d, 10)
	e := enc.Transform(d)
	counts := make([]int, e.TotalInputs())
	for _, active := range e.Idx {
		for _, a := range active {
			counts[a]++
		}
	}
	for u, c := range counts {
		if c < 250 || c > 550 { // 400 expected per bin
			t.Fatalf("unit %d occupancy %d, expected ≈400", u, c)
		}
	}
}

// TestEncoderMonotone property: larger feature values never land in a
// smaller bin.
func TestEncoderMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := makeDataset(rng, []int{500, 500}, 1)
	enc := FitEncoder(d, 10)
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		da := &Dataset{X: tensor.FromSlice(2, 1, []float64{a, b}), Y: []int{0, 0}, Classes: 2}
		e := enc.Transform(da)
		return e.Idx[0][0] <= e.Idx[1][0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderFeatureMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	enc := FitEncoder(makeDataset(rng, []int{10, 10}, 3), 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	enc.Transform(makeDataset(rng, []int{5, 5}, 2))
}

func TestEncodedSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := makeDataset(rng, []int{10, 10}, 2)
	e := FitEncoder(d, 4).Transform(d)
	sub := e.Subset([]int{3, 7})
	if sub.Len() != 2 || sub.Y[0] != e.Y[3] || sub.Y[1] != e.Y[7] {
		t.Fatal("subset mismatch")
	}
}

func TestBatchesCoverAllSamplesOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := makeDataset(rng, []int{17, 18}, 2)
	e := FitEncoder(d, 4).Transform(d)
	seen := 0
	sizes := []int{}
	e.Batches(8, rng, func(idx [][]int32, labels []int) {
		if len(idx) != len(labels) {
			t.Fatal("batch idx/label mismatch")
		}
		seen += len(idx)
		sizes = append(sizes, len(idx))
	})
	if seen != 35 {
		t.Fatalf("batches covered %d of 35 samples", seen)
	}
	// 35 = 4 full batches of 8 plus one of 3.
	if len(sizes) != 5 || sizes[4] != 3 {
		t.Fatalf("unexpected batch sizes %v", sizes)
	}
}

func TestBatchesShuffleDiffersAcrossSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	d := makeDataset(rng, []int{64, 64}, 1)
	e := FitEncoder(d, 4).Transform(d)
	order := func(seed int64) []int {
		var got []int
		e.Batches(128, rand.New(rand.NewSource(seed)), func(_ [][]int32, labels []int) {
			got = append(got, labels...)
		})
		return got
	}
	a, b := order(1), order(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical shuffles")
	}
}

func TestStandardizer(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := makeDataset(rng, []int{500, 500}, 4)
	st := FitStandardizer(d)
	z := st.Transform(d)
	for f := 0; f < 4; f++ {
		var mean, ss float64
		for r := 0; r < z.Rows; r++ {
			mean += z.At(r, f)
		}
		mean /= float64(z.Rows)
		for r := 0; r < z.Rows; r++ {
			dv := z.At(r, f) - mean
			ss += dv * dv
		}
		std := math.Sqrt(ss / float64(z.Rows))
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
			t.Fatalf("feature %d: mean %v std %v after standardize", f, mean, std)
		}
	}
}

func TestStandardizerConstantFeature(t *testing.T) {
	d := &Dataset{X: tensor.FromSlice(3, 1, []float64{5, 5, 5}), Y: []int{0, 1, 0}, Classes: 2}
	st := FitStandardizer(d)
	z := st.Transform(d)
	for r := 0; r < 3; r++ {
		if z.At(r, 0) != 0 {
			t.Fatal("constant feature must standardize to 0, not NaN")
		}
	}
}

func TestLabelsOneHot(t *testing.T) {
	m := LabelsOneHot([]int{1, 0, 2}, 3)
	want := tensor.FromSlice(3, 3, []float64{0, 1, 0, 1, 0, 0, 0, 0, 1})
	if !m.Equal(want, 0) {
		t.Fatalf("one-hot mismatch: %v", m)
	}
}

// TestFitEncoderDedupesConstantColumn is the regression test for degenerate
// quantile encoding: a constant feature used to yield Bins-1 identical cuts,
// mapping every value past the duplicate run (bin Bins-1) and leaving the
// rest of the hypercolumn permanently dead. Deduped fits give the constant
// feature zero cuts and a deterministic single bin 0.
func TestFitEncoderDedupesConstantColumn(t *testing.T) {
	const n = 200
	x := make([]float64, 2*n)
	for r := 0; r < n; r++ {
		x[2*r] = 3.5               // constant feature
		x[2*r+1] = float64(r % 17) // normal feature
	}
	d := &Dataset{X: tensor.FromSlice(n, 2, x), Y: make([]int, n), Classes: 2}
	for i := range d.Y {
		d.Y[i] = i % 2
	}
	enc := FitEncoder(d, 10)
	if len(enc.Cuts[0]) != 0 {
		t.Fatalf("constant feature kept %d cuts, want 0", len(enc.Cuts[0]))
	}
	for f, cuts := range enc.Cuts {
		for k := 1; k < len(cuts); k++ {
			if cuts[k] <= cuts[k-1] {
				t.Fatalf("feature %d cuts not strictly increasing: %v", f, cuts)
			}
		}
	}
	e := enc.Transform(d)
	for s := range e.Idx {
		if e.Idx[s][0] != 0 {
			t.Fatalf("constant feature mapped sample %d to unit %d, want hypercolumn-local bin 0",
				s, e.Idx[s][0])
		}
		if b := int(e.Idx[s][1]) - enc.Bins; b < 0 || b >= enc.Bins {
			t.Fatalf("normal feature bin %d out of range", b)
		}
	}
}

// TestNearConstantColumnKeepsDistinctCuts: a 99%-one-value feature must not
// waste bins on duplicate boundaries — the distinct tail values stay
// distinguishable from the mass point.
func TestNearConstantColumnKeepsDistinctCuts(t *testing.T) {
	const n = 300
	x := make([]float64, n)
	for r := 0; r < n; r++ {
		if r%100 == 0 {
			x[r] = float64(1 + r/100) // a few distinct outliers
		}
	}
	d := &Dataset{X: tensor.FromSlice(n, 1, x), Y: make([]int, n), Classes: 2}
	for i := range d.Y {
		d.Y[i] = i % 2
	}
	enc := FitEncoder(d, 10)
	cuts := enc.Cuts[0]
	for k := 1; k < len(cuts); k++ {
		if cuts[k] <= cuts[k-1] {
			t.Fatalf("cuts not strictly increasing: %v", cuts)
		}
	}
	e := enc.Transform(d)
	// The mass point must map to bin 0, outliers to higher bins.
	if e.Idx[0][0] != 0 {
		t.Fatalf("mass value mapped to bin %d, want 0", e.Idx[0][0])
	}
}

// TestRefitFromConstantReservoir: a streaming Refit whose reservoir
// collapsed to one value must produce a usable (single-bin) encoder rather
// than a duplicate-cut one, and keep TransformRow bins in range.
func TestRefitFromConstantReservoir(t *testing.T) {
	rows := [][]float64{{1.0, 2.0}, {1.5, 2.0}, {0.5, 2.0}, {2.5, 2.0}}
	enc := FitEncoderRows(rows, 4)
	constant := make([][]float64, 32)
	for i := range constant {
		constant[i] = []float64{7.0, 7.0}
	}
	if err := enc.Refit(constant); err != nil {
		t.Fatalf("refit: %v", err)
	}
	for f, cuts := range enc.Cuts {
		if len(cuts) != 0 {
			t.Fatalf("feature %d kept %d duplicate cuts after constant refit", f, len(cuts))
		}
	}
	out, err := enc.TransformRow(nil, []float64{7.0, 3.0})
	if err != nil {
		t.Fatalf("transform after refit: %v", err)
	}
	for f, u := range out {
		if b := int(u) - f*enc.Bins; b < 0 || b >= enc.Bins {
			t.Fatalf("bin %d out of range after refit", b)
		}
	}
}

// TestDedupedEncoderRoundTrips: save/load must preserve deduped (short or
// empty) cut lists exactly.
func TestDedupedEncoderRoundTrips(t *testing.T) {
	const n = 50
	x := make([]float64, 2*n)
	for r := 0; r < n; r++ {
		x[2*r] = 1 // constant
		x[2*r+1] = float64(r)
	}
	d := &Dataset{X: tensor.FromSlice(n, 2, x), Y: make([]int, n), Classes: 2}
	for i := range d.Y {
		d.Y[i] = i % 2
	}
	enc := FitEncoder(d, 6)
	var buf bytes.Buffer
	if err := enc.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadEncoder(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(loaded.Cuts[0]) != 0 || len(loaded.Cuts[1]) != len(enc.Cuts[1]) {
		t.Fatalf("cuts changed across round trip: %v vs %v", loaded.Cuts, enc.Cuts)
	}
}
