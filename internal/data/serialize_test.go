package data

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/tensor"
)

func synthDataset(rng *rand.Rand, n, features int) *Dataset {
	x := tensor.NewMatrix(n, features)
	y := make([]int, n)
	for r := 0; r < n; r++ {
		for f := 0; f < features; f++ {
			x.Set(r, f, rng.NormFloat64()*float64(f+1))
		}
		y[r] = rng.Intn(2)
	}
	return &Dataset{X: x, Y: y, Classes: 2}
}

func TestEncoderSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := synthDataset(rng, 500, 6)
	enc := FitEncoder(ds, 10)

	var buf bytes.Buffer
	if err := enc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEncoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Bins != enc.Bins || loaded.Features() != enc.Features() {
		t.Fatalf("geometry changed: bins %d->%d features %d->%d",
			enc.Bins, loaded.Bins, enc.Features(), loaded.Features())
	}
	// The loaded encoder must produce identical codes.
	want := enc.Transform(ds)
	got := loaded.Transform(ds)
	for s := range want.Idx {
		for f := range want.Idx[s] {
			if want.Idx[s][f] != got.Idx[s][f] {
				t.Fatalf("code changed at sample %d feature %d: %d vs %d",
					s, f, want.Idx[s][f], got.Idx[s][f])
			}
		}
	}
}

func TestEncoderTransformRowMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := synthDataset(rng, 300, 5)
	enc := FitEncoder(ds, 8)
	encoded := enc.Transform(ds)
	for s := 0; s < ds.Len(); s++ {
		row, err := enc.TransformRow(nil, ds.X.Row(s))
		if err != nil {
			t.Fatal(err)
		}
		if len(row) != len(encoded.Idx[s]) {
			t.Fatalf("sample %d: %d active units, want %d", s, len(row), len(encoded.Idx[s]))
		}
		for f := range row {
			if row[f] != encoded.Idx[s][f] {
				t.Fatalf("sample %d feature %d: %d vs %d", s, f, row[f], encoded.Idx[s][f])
			}
		}
	}
}

func TestEncoderTransformRowRejectsBadWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	enc := FitEncoder(synthDataset(rng, 100, 4), 4)
	if _, err := enc.TransformRow(nil, make([]float64, 3)); err == nil {
		t.Fatal("wrong feature count accepted")
	}
}

func TestStandardizerSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ds := synthDataset(rng, 400, 7)
	st := FitStandardizer(ds)

	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStandardizer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := st.Transform(ds)
	got := loaded.Transform(ds)
	if !want.Equal(got, 0) {
		t.Fatal("standardized features changed after round trip")
	}
}

func TestLoadPreprocRejectsGarbage(t *testing.T) {
	if _, err := LoadEncoder(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("garbage encoder accepted")
	}
	if _, err := LoadStandardizer(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("garbage standardizer accepted")
	}
}

// TestLoadEncoderRejectsNaNCuts: NaN boundaries make binary search
// undefined, and NaN defeats an ascending-only check (every comparison is
// false), so the loader must reject them explicitly.
func TestLoadEncoderRejectsNaNCuts(t *testing.T) {
	enc := &Encoder{Bins: 4, Cuts: [][]float64{{0.1, math.NaN(), 0.9}}}
	var buf bytes.Buffer
	if err := enc.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := LoadEncoder(&buf); err == nil {
		t.Fatal("encoder with NaN cut loaded without error")
	}
}
