package data

import (
	"math"
	"math/rand"
	"testing"

	"streambrain/internal/tensor"
)

func TestFitEncoderRowsMatchesDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, nf = 500, 3
	ds := &Dataset{X: tensor.NewMatrix(n, nf), Y: make([]int, n), Classes: 2}
	rows := make([][]float64, n)
	for r := 0; r < n; r++ {
		for f := 0; f < nf; f++ {
			ds.X.Set(r, f, rng.NormFloat64())
		}
		rows[r] = ds.X.Row(r)
	}
	a := FitEncoder(ds, 10)
	b := FitEncoderRows(rows, 10)
	for f := 0; f < nf; f++ {
		for k := range a.Cuts[f] {
			if a.Cuts[f][k] != b.Cuts[f][k] {
				t.Fatalf("feature %d cut %d: dataset %v vs rows %v",
					f, k, a.Cuts[f][k], b.Cuts[f][k])
			}
		}
	}
}

func TestEncoderRefitTracksShift(t *testing.T) {
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{float64(i) / 200}
	}
	enc := FitEncoderRows(rows, 4)
	// All initial boundaries sit inside [0, 1).
	for _, c := range enc.Cuts[0] {
		if c < 0 || c >= 1 {
			t.Fatalf("initial cut %v outside [0,1)", c)
		}
	}
	// The distribution shifts by +10; after a refit every boundary must
	// follow it.
	shifted := make([][]float64, 200)
	for i := range shifted {
		shifted[i] = []float64{10 + float64(i)/200}
	}
	if err := enc.Refit(shifted); err != nil {
		t.Fatal(err)
	}
	for _, c := range enc.Cuts[0] {
		if c < 10 || c >= 11 {
			t.Fatalf("refitted cut %v did not follow the +10 shift", c)
		}
	}
	// Width mismatches are rejected.
	if err := enc.Refit([][]float64{{1, 2}}); err == nil {
		t.Fatal("refit accepted rows of the wrong width")
	}
	if err := enc.Refit(nil); err == nil {
		t.Fatal("refit accepted an empty sample")
	}
}

func TestTransformBatchMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, nf = 128, 4
	ds := &Dataset{X: tensor.NewMatrix(n, nf), Y: make([]int, n), Classes: 2}
	rows := make([][]float64, n)
	labels := make([]int, n)
	for r := 0; r < n; r++ {
		for f := 0; f < nf; f++ {
			ds.X.Set(r, f, rng.NormFloat64())
		}
		rows[r] = ds.X.Row(r)
		labels[r] = r % 2
		ds.Y[r] = labels[r]
	}
	enc := FitEncoder(ds, 10)
	want := enc.Transform(ds)
	got, err := enc.TransformBatch(rows, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hypercolumns != want.Hypercolumns || got.UnitsPerHC != want.UnitsPerHC {
		t.Fatalf("geometry %dx%d, want %dx%d",
			got.Hypercolumns, got.UnitsPerHC, want.Hypercolumns, want.UnitsPerHC)
	}
	for s := range want.Idx {
		for f := range want.Idx[s] {
			if got.Idx[s][f] != want.Idx[s][f] {
				t.Fatalf("sample %d hc %d: %d vs %d", s, f, got.Idx[s][f], want.Idx[s][f])
			}
		}
		if got.Y[s] != want.Y[s] {
			t.Fatalf("sample %d label %d vs %d", s, got.Y[s], want.Y[s])
		}
	}
	if _, err := enc.TransformBatch(rows[:3], labels[:2], 2); err == nil {
		t.Fatal("accepted mismatched rows/labels")
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Fill below capacity: everything is kept, in order.
	r := NewReservoir(8, 1)
	for i := 0; i < 5; i++ {
		r.Add([]float64{float64(i)})
	}
	if r.Len() != 5 || r.Seen() != 5 {
		t.Fatalf("len=%d seen=%d, want 5/5", r.Len(), r.Seen())
	}
	// Rows are copies: mutating the caller's slice must not leak in.
	row := []float64{42}
	r.Add(row)
	row[0] = -1
	found := false
	for _, kept := range r.Rows() {
		if kept[0] == 42 {
			found = true
		}
		if kept[0] == -1 {
			t.Fatal("reservoir aliases the caller's slice")
		}
	}
	if !found {
		t.Fatal("added row not present below capacity")
	}

	// Statistical check of Algorithm R: each of 1000 streamed values should
	// survive in a 100-slot reservoir with probability 1/10. The mean of
	// the kept values then estimates the stream mean.
	r2 := NewReservoir(100, 7)
	for i := 0; i < 1000; i++ {
		r2.Add([]float64{float64(i)})
	}
	if r2.Len() != 100 || r2.Seen() != 1000 {
		t.Fatalf("len=%d seen=%d, want 100/1000", r2.Len(), r2.Seen())
	}
	var mean float64
	for _, kept := range r2.Rows() {
		mean += kept[0]
	}
	mean /= 100
	// Stream mean is 499.5, std of the sample mean ≈ 29; allow 4 sigma.
	if math.Abs(mean-499.5) > 120 {
		t.Fatalf("reservoir sample mean %v too far from stream mean 499.5", mean)
	}
}
