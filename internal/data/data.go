// Package data provides the dataset plumbing shared by every experiment:
// in-memory datasets of continuous features, stratified/balanced splits, the
// paper's 10-quantile one-hot preprocessing (§V), z-score standardization for
// the dense baselines, and mini-batch iteration with seeded shuffling.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"streambrain/internal/metrics"
	"streambrain/internal/tensor"
)

// Dataset is a supervised dataset of continuous features.
type Dataset struct {
	// X holds one sample per row.
	X *tensor.Matrix
	// Y holds the class label of each row, in [0, Classes).
	Y []int
	// Classes is the number of distinct classes.
	Classes int
	// FeatureNames optionally labels the columns of X.
	FeatureNames []string
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows }

// Features returns the number of input features.
func (d *Dataset) Features() int { return d.X.Cols }

// Validate checks internal consistency and returns a descriptive error.
func (d *Dataset) Validate() error {
	if d.X == nil {
		return fmt.Errorf("data: nil X")
	}
	if len(d.Y) != d.X.Rows {
		return fmt.Errorf("data: %d labels for %d rows", len(d.Y), d.X.Rows)
	}
	if d.Classes < 2 {
		return fmt.Errorf("data: %d classes", d.Classes)
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("data: label %d out of range at row %d", y, i)
		}
	}
	if d.FeatureNames != nil && len(d.FeatureNames) != d.X.Cols {
		return fmt.Errorf("data: %d feature names for %d features",
			len(d.FeatureNames), d.X.Cols)
	}
	return nil
}

// Subset returns a new dataset containing the given rows (copied).
func (d *Dataset) Subset(rows []int) *Dataset {
	out := &Dataset{
		X:            tensor.NewMatrix(len(rows), d.X.Cols),
		Y:            make([]int, len(rows)),
		Classes:      d.Classes,
		FeatureNames: d.FeatureNames,
	}
	for i, r := range rows {
		copy(out.X.Row(i), d.X.Row(r))
		out.Y[i] = d.Y[r]
	}
	return out
}

// Split partitions the dataset into train/test with stratified sampling:
// each class contributes trainFrac of its samples to the train split, so the
// class balance is preserved on both sides. The split is deterministic for a
// given rng seed.
func (d *Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic("data: trainFrac must be in (0,1)")
	}
	byClass := make([][]int, d.Classes)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	var trainRows, testRows []int
	for _, rows := range byClass {
		perm := rng.Perm(len(rows))
		cut := int(float64(len(rows)) * trainFrac)
		for k, p := range perm {
			if k < cut {
				trainRows = append(trainRows, rows[p])
			} else {
				testRows = append(testRows, rows[p])
			}
		}
	}
	shuffleInts(trainRows, rng)
	shuffleInts(testRows, rng)
	return d.Subset(trainRows), d.Subset(testRows)
}

// Balanced extracts a class-balanced subset of at most perClass samples per
// class ("we extract a balanced subset of the training set", §V). If a class
// has fewer samples than perClass, the minimum class count is used for all
// classes so the result stays exactly balanced.
func (d *Dataset) Balanced(perClass int, rng *rand.Rand) *Dataset {
	byClass := make([][]int, d.Classes)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	minCount := perClass
	for _, rows := range byClass {
		if len(rows) < minCount {
			minCount = len(rows)
		}
	}
	var keep []int
	for _, rows := range byClass {
		perm := rng.Perm(len(rows))
		for k := 0; k < minCount; k++ {
			keep = append(keep, rows[perm[k]])
		}
	}
	shuffleInts(keep, rng)
	return d.Subset(keep)
}

func shuffleInts(xs []int, rng *rand.Rand) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Encoder is the quantile one-hot encoder of §V: each continuous feature is
// split at its q-quantile boundaries (fitted on training data) and encoded
// as a one-hot vector of length Bins. The encoded input forms one input
// hypercolumn per feature — the representation the BCPNN layer consumes.
type Encoder struct {
	Bins int
	// Cuts holds per-feature strictly increasing bin boundaries, at most
	// Bins-1 each. Duplicate quantiles (constant or near-constant features)
	// are deduplicated at fit time, so a feature may use fewer than Bins
	// bins; a fully constant feature has no cuts and maps everything to
	// bin 0 deterministically.
	Cuts [][]float64
}

// dedupeCuts collapses degenerate quantile boundaries to a strictly
// increasing sequence of cuts that each separate at least one pair of
// values. Raw quantiles of a constant (or near-constant) feature repeat the
// same value, which previously wasted every bin below the duplicate run on
// dead units — and let a streaming Refit from a collapsed reservoir silently
// kill a whole hypercolumn. Rules:
//
//   - cuts at or below the column minimum are dropped (no value can fall
//     below them, so they would only orphan low bins; a fully constant
//     feature keeps zero cuts and deterministically maps to bin 0);
//   - duplicates are collapsed to their first occurrence;
//   - NaN boundaries (possible when a refit sample contains NaNs) are
//     dropped because a NaN cut makes binary search behavior undefined.
func dedupeCuts(cuts []float64, min float64) []float64 {
	out := cuts[:0]
	for _, c := range cuts {
		if math.IsNaN(c) || c <= min {
			continue
		}
		if len(out) == 0 || c > out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// colMin returns the smallest non-NaN value of xs (+Inf when none exists).
func colMin(xs []float64) float64 {
	min := math.Inf(1)
	for _, v := range xs {
		if !math.IsNaN(v) && v < min {
			min = v
		}
	}
	return min
}

// FitEncoder computes per-feature quantile boundaries from d, deduplicating
// boundaries so every retained cut separates at least one pair of values.
func FitEncoder(d *Dataset, bins int) *Encoder {
	if bins < 2 {
		panic("data: FitEncoder needs bins >= 2")
	}
	enc := &Encoder{Bins: bins, Cuts: make([][]float64, d.Features())}
	col := make([]float64, d.Len())
	for f := 0; f < d.Features(); f++ {
		for r := 0; r < d.Len(); r++ {
			col[r] = d.X.At(r, f)
		}
		enc.Cuts[f] = dedupeCuts(metrics.Quantiles(col, bins), colMin(col))
	}
	return enc
}

// Encoded is a dataset in one-hot hypercolumn form: sample s activates
// exactly one unit per input hypercolumn, listed in Idx[s]. Global unit
// index of feature f's bin b is f*Bins+b.
type Encoded struct {
	Idx          [][]int32
	Y            []int
	Classes      int
	Hypercolumns int // number of input hypercolumns (= features)
	UnitsPerHC   int // units per hypercolumn (= bins)
}

// TotalInputs returns the width of the flattened one-hot input vector.
func (e *Encoded) TotalInputs() int { return e.Hypercolumns * e.UnitsPerHC }

// Len returns the number of samples.
func (e *Encoded) Len() int { return len(e.Idx) }

// Transform encodes a dataset with the fitted boundaries. The dataset must
// have the same feature count the encoder was fitted on.
func (enc *Encoder) Transform(d *Dataset) *Encoded {
	if len(enc.Cuts) != d.Features() {
		panic(fmt.Sprintf("data: encoder fitted on %d features, dataset has %d",
			len(enc.Cuts), d.Features()))
	}
	out := &Encoded{
		Idx:          make([][]int32, d.Len()),
		Y:            append([]int(nil), d.Y...),
		Classes:      d.Classes,
		Hypercolumns: d.Features(),
		UnitsPerHC:   enc.Bins,
	}
	for s := 0; s < d.Len(); s++ {
		row := d.X.Row(s)
		active := make([]int32, d.Features())
		for f, v := range row {
			b := metrics.BinIndex(v, enc.Cuts[f])
			active[f] = int32(f*enc.Bins + b)
		}
		out.Idx[s] = active
	}
	return out
}

// Subset returns the encoded samples at the given positions (sharing the
// underlying index slices, which are immutable by convention).
func (e *Encoded) Subset(rows []int) *Encoded {
	out := &Encoded{
		Idx:          make([][]int32, len(rows)),
		Y:            make([]int, len(rows)),
		Classes:      e.Classes,
		Hypercolumns: e.Hypercolumns,
		UnitsPerHC:   e.UnitsPerHC,
	}
	for i, r := range rows {
		out.Idx[i] = e.Idx[r]
		out.Y[i] = e.Y[r]
	}
	return out
}

// Batches invokes fn once per mini-batch over a fresh shuffle of the encoded
// samples. The final short batch is included. fn receives views that are
// only valid during the call.
func (e *Encoded) Batches(batchSize int, rng *rand.Rand, fn func(idx [][]int32, labels []int)) {
	if batchSize < 1 {
		panic("data: batchSize must be >= 1")
	}
	perm := rng.Perm(e.Len())
	idx := make([][]int32, 0, batchSize)
	labels := make([]int, 0, batchSize)
	for _, p := range perm {
		idx = append(idx, e.Idx[p])
		labels = append(labels, e.Y[p])
		if len(idx) == batchSize {
			fn(idx, labels)
			idx = idx[:0]
			labels = labels[:0]
		}
	}
	if len(idx) > 0 {
		fn(idx, labels)
	}
}

// Standardizer z-scores features using statistics fitted on training data;
// the dense baselines (MLP, SGD readout on raw features) consume this form.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-feature mean and (population) standard
// deviation; zero-variance features get Std 1 so transform is a no-op there.
func FitStandardizer(d *Dataset) *Standardizer {
	nf := d.Features()
	st := &Standardizer{Mean: make([]float64, nf), Std: make([]float64, nf)}
	n := float64(d.Len())
	for r := 0; r < d.Len(); r++ {
		row := d.X.Row(r)
		for f, v := range row {
			st.Mean[f] += v
		}
	}
	for f := range st.Mean {
		st.Mean[f] /= n
	}
	for r := 0; r < d.Len(); r++ {
		row := d.X.Row(r)
		for f, v := range row {
			dv := v - st.Mean[f]
			st.Std[f] += dv * dv
		}
	}
	for f := range st.Std {
		st.Std[f] = math.Sqrt(st.Std[f] / n)
		if st.Std[f] == 0 {
			st.Std[f] = 1
		}
	}
	return st
}

// Transform returns a standardized copy of d's features.
func (st *Standardizer) Transform(d *Dataset) *tensor.Matrix {
	if len(st.Mean) != d.Features() {
		panic("data: standardizer feature mismatch")
	}
	out := tensor.NewMatrix(d.Len(), d.Features())
	for r := 0; r < d.Len(); r++ {
		src := d.X.Row(r)
		dst := out.Row(r)
		for f, v := range src {
			dst[f] = (v - st.Mean[f]) / st.Std[f]
		}
	}
	return out
}

// LabelsOneHot expands labels into a dense one-hot matrix (n×classes).
func LabelsOneHot(labels []int, classes int) *tensor.Matrix {
	m := tensor.NewMatrix(len(labels), classes)
	for i, y := range labels {
		m.Set(i, y, 1)
	}
	return m
}
