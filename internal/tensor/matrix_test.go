package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zeroed: %v", i, v)
		}
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad slice length")
		}
	}()
	FromSlice(2, 3, make([]float64, 5))
}

func TestAtSetRow(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	row := m.Row(1)
	if row[2] != 7.5 {
		t.Fatalf("Row(1)[2] = %v, want 7.5", row[2])
	}
	row[0] = 3 // Row must alias, not copy.
	if m.At(1, 0) != 3 {
		t.Fatal("Row did not alias underlying data")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 2).CopyFrom(NewMatrix(2, 3))
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 5, 7)
	tr := m.Transpose()
	if tr.Rows != 7 || tr.Cols != 5 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if m.At(r, c) != tr.At(c, r) {
				t.Fatalf("transpose mismatch at %d,%d", r, c)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	// Property: (Aᵀ)ᵀ = A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := randMatrix(rng, r, c)
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{1, 2.05, 3})
	if a.Equal(b, 0.01) {
		t.Fatal("Equal too lenient")
	}
	if !a.Equal(b, 0.1) {
		t.Fatal("Equal too strict")
	}
	if d := a.MaxAbsDiff(b); math.Abs(d-0.05) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %v, want 0.05", d)
	}
}

func TestZeroFill(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Fill(4)
	for _, v := range m.Data {
		if v != 4 {
			t.Fatal("Fill failed")
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromSlice(1, 2, []float64{1, 2})
	if s := small.String(); s == "" {
		t.Fatal("empty String for small matrix")
	}
	large := NewMatrix(20, 20)
	if s := large.String(); s != "Matrix(20x20)" {
		t.Fatalf("large String = %q", s)
	}
}

func TestPoolReuse(t *testing.T) {
	p := NewPool()
	m1 := p.Get(4, 4)
	m1.Fill(3)
	p.Put(m1)
	m2 := p.Get(4, 4)
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatal("pooled matrix not zeroed on Get")
		}
	}
	hits, total := p.Stats()
	if hits != 1 || total != 2 {
		t.Fatalf("stats = (%d,%d), want (1,2)", hits, total)
	}
}

func TestPoolReshapesSameElementCount(t *testing.T) {
	p := NewPool()
	m := p.Get(2, 8)
	p.Put(m)
	m2 := p.Get(4, 4) // same 16 elements, different shape
	if m2.Rows != 4 || m2.Cols != 4 {
		t.Fatalf("reshaped get returned %dx%d", m2.Rows, m2.Cols)
	}
}

func TestPoolConcurrent(t *testing.T) {
	p := NewPool()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				m := p.Get(8, 8)
				p.Put(m)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
