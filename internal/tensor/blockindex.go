package tensor

import (
	"fmt"
	"sync"
)

// BlockIndex is the compressed form of a receptive-field mask (DESIGN.md §15):
// a CSR index over the Fi×H grid of (input hypercolumn, hidden hypercolumn)
// blocks listing, for every input hypercolumn, the hidden HCUs whose mask bit
// is set. Block (fi, h) covers the Mi×M sub-panel of the weight and joint-
// trace matrices at rows [fi·Mi, (fi+1)·Mi) and columns [h·M, (h+1)·M).
//
// The index is immutable once built and is rebuilt only when the mask changes
// (a structural-plasticity swap or a prune/regrow step), never per batch —
// the whole point is that the per-batch kernels walk the short active lists
// instead of testing Fi·H mask bits, and skip the silent panels entirely.
type BlockIndex struct {
	// Geometry: Fi input hypercolumns of Mi units each, H hidden HCUs of M
	// units each — identical to backend.LayerGeom.
	Fi, Mi, H, M int

	// rowStart has Fi+1 entries; cols[rowStart[fi]:rowStart[fi+1]] is the
	// sorted list of active hidden HCUs of input hypercolumn fi.
	rowStart []int32
	cols     []int32
}

// NewBlockIndex compresses an fi×h row-major boolean mask (the layout of
// Kernels.UpdateWeights' mask argument) into a block index with the given
// block shape. A nil mask means fully dense: every block is active.
func NewBlockIndex(mask []bool, fi, mi, h, m int) *BlockIndex {
	if fi < 1 || mi < 1 || h < 1 || m < 1 {
		panic(fmt.Sprintf("tensor: BlockIndex bad geometry %d×%d blocks of %d×%d", fi, h, mi, m))
	}
	if mask != nil && len(mask) != fi*h {
		panic(fmt.Sprintf("tensor: BlockIndex mask length %d, want %d", len(mask), fi*h))
	}
	b := &BlockIndex{Fi: fi, Mi: mi, H: h, M: m, rowStart: make([]int32, fi+1)}
	if mask == nil {
		b.cols = make([]int32, fi*h)
		for f := 0; f < fi; f++ {
			b.rowStart[f] = int32(f * h)
			for j := 0; j < h; j++ {
				b.cols[f*h+j] = int32(j)
			}
		}
		b.rowStart[fi] = int32(fi * h)
		return b
	}
	n := 0
	for _, on := range mask {
		if on {
			n++
		}
	}
	b.cols = make([]int32, 0, n)
	for f := 0; f < fi; f++ {
		b.rowStart[f] = int32(len(b.cols))
		for j := 0; j < h; j++ {
			if mask[f*h+j] {
				b.cols = append(b.cols, int32(j))
			}
		}
	}
	b.rowStart[fi] = int32(len(b.cols))
	return b
}

// Active returns the sorted active hidden-HCU list of input hypercolumn fi.
// The returned slice aliases the index; callers must not modify it.
func (b *BlockIndex) Active(fi int) []int32 {
	return b.cols[b.rowStart[fi]:b.rowStart[fi+1]]
}

// ActiveBlocks returns the total number of active (fi, h) blocks.
func (b *BlockIndex) ActiveBlocks() int { return len(b.cols) }

// ActiveElems returns the number of matrix elements covered by active blocks
// — the work (and, on offload simulators, the traffic) a sparse kernel pays.
func (b *BlockIndex) ActiveElems() int64 {
	return int64(b.ActiveBlocks()) * int64(b.Mi) * int64(b.M)
}

// Density returns the active fraction of the block grid.
func (b *BlockIndex) Density() float64 {
	return float64(b.ActiveBlocks()) / float64(b.Fi*b.H)
}

// Sparsity returns the silent fraction of the block grid (1 − Density).
func (b *BlockIndex) Sparsity() float64 { return 1 - b.Density() }

// Equal reports whether two indexes describe the same geometry and the same
// active-block set.
func (b *BlockIndex) Equal(o *BlockIndex) bool {
	if o == nil || b.Fi != o.Fi || b.Mi != o.Mi || b.H != o.H || b.M != o.M ||
		len(b.cols) != len(o.cols) {
		return false
	}
	for i, v := range b.rowStart {
		if o.rowStart[i] != v {
			return false
		}
	}
	for i, v := range b.cols {
		if o.cols[i] != v {
			return false
		}
	}
	return true
}

// checkBlockIndex validates a block index against a matrix it will gate.
func checkBlockIndex[T Float](b *BlockIndex, m *Dense[T]) {
	if b == nil {
		panic("tensor: nil BlockIndex")
	}
	if b.Fi*b.Mi != m.Rows || b.H*b.M != m.Cols {
		panic(fmt.Sprintf("tensor: BlockIndex %d×%d blocks of %d×%d does not tile %d×%d",
			b.Fi, b.H, b.Mi, b.M, m.Rows, m.Cols))
	}
}

// OneHotMatMulSparse is OneHotMatMul restricted to the active blocks of bi:
// sample s gathers, for each active input unit, only the weight-row segments
// of the hidden HCUs its input hypercolumn is connected to. Silent segments
// of W hold exact zeros (the mask invariant UpdateWeights maintains), so the
// skipped additions are additions of +0 — the sparse support is bit-identical
// to the dense one while paying only Density() of the gather traffic.
func OneHotMatMulSparse[T Float](dst *Dense[T], idx [][]int32, w *Dense[T], bi *BlockIndex) {
	if dst.Rows != len(idx) || dst.Cols != w.Cols {
		panic(fmt.Sprintf("tensor: OneHotMatMulSparse shape mismatch dst %dx%d, idx %d, w %dx%d",
			dst.Rows, dst.Cols, len(idx), w.Rows, w.Cols))
	}
	checkBlockIndex(bi, w)
	n, m := w.Cols, bi.M
	for s, active := range idx {
		drow := dst.Row(s)
		for i := range drow {
			drow[i] = 0
		}
		for _, in := range active {
			wrow := w.Data[int(in)*n : int(in)*n+n]
			for _, h := range bi.Active(int(in) / bi.Mi) {
				o := int(h) * m
				addDispatch(drow[o:o+m], wrow[o:o+m])
			}
		}
	}
}

// OneHotMatMulSparseParallel parallelizes OneHotMatMulSparse over the batch.
func OneHotMatMulSparseParallel[T Float](dst *Dense[T], idx [][]int32, w *Dense[T],
	bi *BlockIndex, workers int) {
	if workers <= 1 || len(idx) < 4 {
		OneHotMatMulSparse(dst, idx, w, bi)
		return
	}
	if dst.Rows != len(idx) || dst.Cols != w.Cols {
		panic("tensor: OneHotMatMulSparseParallel shape mismatch")
	}
	checkBlockIndex(bi, w)
	var wg sync.WaitGroup
	rows := len(idx)
	chunk := (rows + workers - 1) / workers
	for wk := 0; wk < workers; wk++ {
		r0 := wk * chunk
		if r0 >= rows {
			break
		}
		r1 := min(r0+chunk, rows)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			sub := &Dense[T]{Rows: r1 - r0, Cols: dst.Cols,
				Data: dst.Data[r0*dst.Cols : r1*dst.Cols]}
			OneHotMatMulSparse(sub, idx[r0:r1], w, bi)
		}(r0, r1)
	}
	wg.Wait()
}
