package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 10, 10, 10, 10}
	Axpy(2, x, y)
	want := []float64{12, 14, 16, 18, 20}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("y[%d]=%v want %v", i, y[i], want[i])
		}
	}
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6}
	y := []float64{6, 5, 4, 3, 2, 1}
	if got := Dot(x, y); got != 56 {
		t.Fatalf("Dot=%v want 56", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestScaleSum(t *testing.T) {
	x := []float64{1, 2, 3}
	Scale(3, x)
	if s := Sum(x); s != 18 {
		t.Fatalf("Sum=%v want 18", s)
	}
}

func TestLerpEndpoints(t *testing.T) {
	dst := []float64{1, 2, 3}
	src := []float64{7, 8, 9}
	d0 := append([]float64(nil), dst...)
	Lerp(d0, src, 0)
	for i := range d0 {
		if d0[i] != dst[i] {
			t.Fatal("Lerp t=0 must be identity")
		}
	}
	d1 := append([]float64(nil), dst...)
	Lerp(d1, src, 1)
	for i := range d1 {
		if d1[i] != src[i] {
			t.Fatal("Lerp t=1 must copy src")
		}
	}
}

// TestLerpConvergence: repeated Lerp toward a constant converges to it —
// exactly the fixed point the BCPNN trace relies on.
func TestLerpConvergence(t *testing.T) {
	dst := []float64{0}
	src := []float64{1}
	for i := 0; i < 2000; i++ {
		Lerp(dst, src, 0.01)
	}
	if math.Abs(dst[0]-1) > 1e-6 {
		t.Fatalf("Lerp did not converge: %v", dst[0])
	}
}

func TestLerpParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 1 << 15
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	a2 := append([]float64(nil), a...)
	Lerp(a, b, 0.3)
	LerpParallel(a2, b, 0.3, 8)
	for i := range a {
		if math.Abs(a[i]-a2[i]) > 1e-15 {
			t.Fatalf("parallel lerp mismatch at %d", i)
		}
	}
}

// TestSoftmaxIsDistribution: softmax output must be a probability mass —
// non-negative, summing to 1 — for arbitrary finite inputs. Property test.
func TestSoftmaxIsDistribution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 50 // large magnitudes stress stability
		}
		SoftmaxRow(x, 1)
		var sum float64
		for _, v := range x {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxTemperature(t *testing.T) {
	// Lower temperature sharpens: the winner's probability must increase.
	x1 := []float64{1, 2, 3}
	x2 := []float64{1, 2, 3}
	SoftmaxRow(x1, 1)
	SoftmaxRow(x2, 0.25)
	if x2[2] <= x1[2] {
		t.Fatalf("T=0.25 winner %v not sharper than T=1 winner %v", x2[2], x1[2])
	}
}

func TestSoftmaxExtremeInputsUniformFallback(t *testing.T) {
	x := []float64{math.Inf(-1), math.Inf(-1)}
	SoftmaxRow(x, 1)
	if math.Abs(x[0]-0.5) > 1e-12 || math.Abs(x[1]-0.5) > 1e-12 {
		t.Fatalf("fallback not uniform: %v", x)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	// softmax(x) == softmax(x + c) — the max-subtraction must make this hold.
	x1 := []float64{0.5, -1, 2}
	x2 := []float64{100.5, 99, 102}
	SoftmaxRow(x1, 1)
	SoftmaxRow(x2, 1)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-12 {
			t.Fatalf("shift variance at %d: %v vs %v", i, x1[i], x2[i])
		}
	}
}

func TestSoftmaxGroupsIndependence(t *testing.T) {
	m := FromSlice(1, 4, []float64{1, 3, 2, 2})
	SoftmaxGroups(m, 2, 2, 1)
	row := m.Row(0)
	if math.Abs(row[0]+row[1]-1) > 1e-12 || math.Abs(row[2]+row[3]-1) > 1e-12 {
		t.Fatalf("groups not independently normalized: %v", row)
	}
	if math.Abs(row[2]-0.5) > 1e-12 {
		t.Fatalf("equal supports must give uniform group: %v", row)
	}
}

func TestSoftmaxGroupsParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randMatrix(rng, 33, 12)
	b := a.Clone()
	SoftmaxGroups(a, 3, 4, 0.8)
	SoftmaxGroupsParallel(b, 3, 4, 0.8, 8)
	if d := a.MaxAbsDiff(b); d > 1e-15 {
		t.Fatalf("parallel softmax mismatch: %g", d)
	}
}

func TestColMeans(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 3, 4, 5})
	dst := make([]float64, 3)
	ColMeans(dst, m)
	want := []float64{2, 3, 4}
	for i := range dst {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Fatalf("ColMeans[%d]=%v want %v", i, dst[i], want[i])
		}
	}
}

func TestColMeansEmptyMatrix(t *testing.T) {
	m := NewMatrix(0, 3)
	dst := []float64{1, 1, 1}
	ColMeans(dst, m)
	for _, v := range dst {
		if v != 0 {
			t.Fatal("ColMeans of empty matrix should zero dst")
		}
	}
}

func TestArgMaxRow(t *testing.T) {
	if i := ArgMaxRow([]float64{1, 5, 3}); i != 1 {
		t.Fatalf("ArgMaxRow=%d want 1", i)
	}
	if i := ArgMaxRow([]float64{2, 2, 2}); i != 0 {
		t.Fatalf("ties must pick first, got %d", i)
	}
}

func TestClip(t *testing.T) {
	x := []float64{-5, 0.5, 5}
	Clip(x, 0, 1)
	want := []float64{0, 0.5, 1}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("Clip[%d]=%v want %v", i, x[i], want[i])
		}
	}
}
