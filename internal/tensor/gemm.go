package tensor

import (
	"fmt"
	"sync"
)

// DefaultBlock is the cache-block edge used by the blocked GEMM kernels.
// 64×64 float64 tiles are 32 KiB — sized for a typical L1d cache (float32
// tiles are half that, which only helps). The block size is a parameter so
// the blocking ablation bench can sweep it; it is a multiple of both SIMD
// lane widths so blocked panels stay lane-aligned.
const DefaultBlock = 64

func checkGEMM[T Float](dst, a, b *Dense[T]) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: GEMM shape mismatch dst %dx%d = a %dx%d * b %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst == a || dst == b {
		panic("tensor: GEMM destination must not alias an operand")
	}
}

// MatMulNaive computes dst = a·b with the textbook triple loop (ikj order so
// the inner loop is unit-stride). It is the reference every other kernel is
// cross-checked against.
func MatMulNaive[T Float](dst, a, b *Dense[T]) {
	checkGEMM(dst, a, b)
	dst.Zero()
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : k*n+n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulBlocked computes dst = a·b using cache blocking with the given block
// edge. block <= 0 selects DefaultBlock. The kernel accumulates into dst
// tiles that stay resident in L1 while streaming panels of a and b.
func MatMulBlocked[T Float](dst, a, b *Dense[T], block int) {
	checkGEMM(dst, a, b)
	if block <= 0 {
		block = DefaultBlock
	}
	dst.Zero()
	matMulBlockedRange(dst, a, b, block, 0, a.Rows)
}

// matMulBlockedRange runs the blocked kernel over dst rows [r0, r1).
// It is the unit of work handed to GEMM workers. The innermost j sweep is
// the fused two-row axpy2 microkernel, which dispatches to AVX2+FMA when
// available — there float32 processes twice the lanes per instruction,
// which is the entire hardware case for the reduced-precision path.
func matMulBlockedRange[T Float](dst, a, b *Dense[T], block, r0, r1 int) {
	k, n := a.Cols, b.Cols
	for ii := r0; ii < r1; ii += block {
		iMax := min(ii+block, r1)
		for kk := 0; kk < k; kk += block {
			kMax := min(kk+block, k)
			for jj := 0; jj < n; jj += block {
				jMax := min(jj+block, n)
				for i := ii; i < iMax; i++ {
					arow := a.Data[i*k : i*k+k]
					drow := dst.Data[i*n+jj : i*n+jMax]
					// 2-way unroll over the reduction dimension keeps two
					// independent FMA chains in flight.
					kkk := kk
					for ; kkk+1 < kMax; kkk += 2 {
						av0 := arow[kkk]
						av1 := arow[kkk+1]
						if av0 == 0 && av1 == 0 {
							continue
						}
						b0 := b.Data[kkk*n+jj : kkk*n+jMax]
						b1 := b.Data[(kkk+1)*n+jj : (kkk+1)*n+jMax]
						axpy2(av0, av1, b0, b1, drow)
					}
					for ; kkk < kMax; kkk++ {
						av := arow[kkk]
						if av == 0 {
							continue
						}
						brow := b.Data[kkk*n+jj : kkk*n+jMax]
						axpyDispatch(av, brow, drow)
					}
				}
			}
		}
	}
}

// MatMulParallel computes dst = a·b by splitting dst rows across `workers`
// goroutines, each running the blocked kernel over its row band. workers <= 1
// degrades to the serial blocked kernel.
func MatMulParallel[T Float](dst, a, b *Dense[T], block, workers int) {
	checkGEMM(dst, a, b)
	if block <= 0 {
		block = DefaultBlock
	}
	// blk is a single-assignment copy: the goroutine closure below must not
	// capture a reassigned variable, or the compiler captures it by
	// reference and heap-allocates the cell at function entry — one alloc
	// per call even on the serial branch, which the predict hot path runs
	// at zero allocations.
	blk := block
	if workers <= 1 || a.Rows < 2*blk {
		dst.Zero()
		matMulBlockedRange(dst, a, b, blk, 0, a.Rows)
		return
	}
	dst.Zero()
	var wg sync.WaitGroup
	rows := a.Rows
	chunk := (rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		if r0 >= rows {
			break
		}
		r1 := min(r0+chunk, rows)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			matMulBlockedRange(dst, a, b, blk, r0, r1)
		}(r0, r1)
	}
	wg.Wait()
}

// MatMulATB computes dst = aᵀ·b without materializing the transpose.
// a is m×r, b is m×n, dst is r×n. This is the shape of the BCPNN joint-trace
// update E[x πᵀ] where a holds a batch of inputs and b a batch of activations.
func MatMulATB[T Float](dst, a, b *Dense[T]) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulATB shape mismatch dst %dx%d = aT %dx%d * b %dx%d",
			dst.Rows, dst.Cols, a.Cols, a.Rows, b.Rows, b.Cols))
	}
	dst.Zero()
	n := b.Cols
	for s := 0; s < a.Rows; s++ {
		arow := a.Row(s)
		brow := b.Row(s)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			axpyDispatch(av, brow, dst.Data[i*n:i*n+n])
		}
	}
}

// MatMulATBParallel is MatMulATB with the accumulation parallelized over dst
// rows. Each worker owns a band of dst rows (a band of a's columns), so no
// synchronization on dst is needed; a and b are read-only.
func MatMulATBParallel[T Float](dst, a, b *Dense[T], workers int) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulATBParallel shape mismatch")
	}
	if workers <= 1 || dst.Rows < 64 {
		MatMulATB(dst, a, b)
		return
	}
	dst.Zero()
	n := b.Cols
	cols := a.Cols
	chunk := (cols + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c0 := w * chunk
		if c0 >= cols {
			break
		}
		c1 := min(c0+chunk, cols)
		wg.Add(1)
		go func(c0, c1 int) {
			defer wg.Done()
			for s := 0; s < a.Rows; s++ {
				arow := a.Row(s)
				brow := b.Row(s)
				for i := c0; i < c1; i++ {
					av := arow[i]
					if av == 0 {
						continue
					}
					axpyDispatch(av, brow, dst.Data[i*n:i*n+n])
				}
			}
		}(c0, c1)
	}
	wg.Wait()
}

// OneHotMatMul computes dst = X·W where X is a batch of concatenated one-hot
// groups given by active indices instead of a dense matrix: sample s has
// exactly len(idx[s]) active inputs (value 1) at the listed positions.
// W is in×out, dst is batch×out. Exploiting the one-hot structure turns the
// input GEMM into len(idx[s]) row gathers per sample, the optimization the
// StreamBrain paper attributes to the quantile one-hot encoding (§V).
func OneHotMatMul[T Float](dst *Dense[T], idx [][]int32, w *Dense[T]) {
	if dst.Rows != len(idx) || dst.Cols != w.Cols {
		panic(fmt.Sprintf("tensor: OneHotMatMul shape mismatch dst %dx%d, idx %d, w %dx%d",
			dst.Rows, dst.Cols, len(idx), w.Rows, w.Cols))
	}
	n := w.Cols
	for s, active := range idx {
		drow := dst.Row(s)
		for i := range drow {
			drow[i] = 0
		}
		for _, in := range active {
			addDispatch(drow, w.Data[int(in)*n:int(in)*n+n])
		}
	}
}

// OneHotMatMulParallel parallelizes OneHotMatMul over the batch dimension.
func OneHotMatMulParallel[T Float](dst *Dense[T], idx [][]int32, w *Dense[T], workers int) {
	if workers <= 1 || len(idx) < 4 {
		OneHotMatMul(dst, idx, w)
		return
	}
	if dst.Rows != len(idx) || dst.Cols != w.Cols {
		panic("tensor: OneHotMatMulParallel shape mismatch")
	}
	var wg sync.WaitGroup
	rows := len(idx)
	chunk := (rows + workers - 1) / workers
	for wk := 0; wk < workers; wk++ {
		r0 := wk * chunk
		if r0 >= rows {
			break
		}
		r1 := min(r0+chunk, rows)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			sub := &Dense[T]{Rows: r1 - r0, Cols: dst.Cols,
				Data: dst.Data[r0*dst.Cols : r1*dst.Cols]}
			OneHotMatMul(sub, idx[r0:r1], w)
		}(r0, r1)
	}
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
