//go:build !amd64 || purego

package tensor

// simdEnabled is a compile-time false off amd64 (or under the purego tag),
// so the dispatch branches in simd.go fold away and the stub kernels below
// are provably unreachable.
const simdEnabled = false

func axpy2F32AVX(a0, a1 float32, b0, b1, dst []float32) { panic("tensor: no SIMD") }
func axpy2F64AVX(a0, a1 float64, b0, b1, dst []float64) { panic("tensor: no SIMD") }
func axpyF32AVX(a float32, x, y []float32)              { panic("tensor: no SIMD") }
func axpyF64AVX(a float64, x, y []float64)              { panic("tensor: no SIMD") }
func lerpF32AVX(dst, src []float32, omt, t float32)     { panic("tensor: no SIMD") }
func lerpF64AVX(dst, src []float64, omt, t float64)     { panic("tensor: no SIMD") }
func scaleF32AVX(a float32, x []float32)                { panic("tensor: no SIMD") }
func scaleF64AVX(a float64, x []float64)                { panic("tensor: no SIMD") }
func addF32AVX(dst, src []float32)                      { panic("tensor: no SIMD") }
func addF64AVX(dst, src []float64)                      { panic("tensor: no SIMD") }
