package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The float32 kernel set is validated against the float64 reference: the
// same inputs, cast down, must agree within float32 accumulation error.
// On amd64 this also exercises the AVX2+FMA microkernels end-to-end
// (including lane-tail handling at non-multiple-of-8 widths).

func randDense[T Float](rng *rand.Rand, rows, cols int) *Dense[T] {
	m := NewDense[T](rows, cols)
	for i := range m.Data {
		m.Data[i] = T(rng.Float64()*2 - 1)
	}
	return m
}

func TestMatMulFloat32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Odd sizes on purpose: every SIMD kernel must handle scalar tails.
	for _, sz := range [][3]int{{5, 7, 3}, {33, 41, 29}, {64, 64, 64}, {70, 130, 67}} {
		m, k, n := sz[0], sz[1], sz[2]
		a64 := randDense[float64](rng, m, k)
		b64 := randDense[float64](rng, k, n)
		want := NewMatrix(m, n)
		MatMulNaive(want, a64, b64)

		a32 := Cast[float32](a64)
		b32 := Cast[float32](b64)
		got32 := NewMatrix32(m, n)
		MatMulBlocked(got32, a32, b32, 16)
		got := Cast[float64](got32)
		// Accumulating k float32 products: error grows like k·eps32.
		tol := 1e-5 * float64(k)
		if d := want.MaxAbsDiff(got); d > tol {
			t.Fatalf("%dx%dx%d: f32 blocked GEMM diverges from f64 reference by %g (tol %g)", m, k, n, d, tol)
		}

		got32.Zero()
		MatMulParallel(got32, a32, b32, 16, 4)
		if d := want.MaxAbsDiff(Cast[float64](got32)); d > tol {
			t.Fatalf("%dx%dx%d: f32 parallel GEMM diverges by %g", m, k, n, d)
		}
	}
}

func TestVecOpsFloat32MatchFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{3, 15, 16, 100, 1021} {
		x64 := make([]float64, n)
		y64 := make([]float64, n)
		for i := range x64 {
			x64[i] = rng.Float64()*2 - 1
			y64[i] = rng.Float64()*2 - 1
		}
		x32 := make([]float32, n)
		y32 := make([]float32, n)
		CastSlice(x32, x64)
		CastSlice(y32, y64)

		Axpy(0.37, x64, y64)
		Axpy(float32(0.37), x32, y32)
		for i := range y64 {
			if math.Abs(float64(y32[i])-y64[i]) > 1e-5 {
				t.Fatalf("n=%d: Axpy f32 diverges at %d: %g vs %g", n, i, y32[i], y64[i])
			}
		}

		Lerp(y64, x64, 0.01)
		Lerp(y32, x32, float32(0.01))
		for i := range y64 {
			if math.Abs(float64(y32[i])-y64[i]) > 1e-5 {
				t.Fatalf("n=%d: Lerp f32 diverges at %d", n, i)
			}
		}

		Scale(1.7, y64)
		Scale(float32(1.7), y32)
		for i := range y64 {
			if math.Abs(float64(y32[i])-y64[i]) > 1e-5 {
				t.Fatalf("n=%d: Scale f32 diverges at %d", n, i)
			}
		}
	}
}

func TestSoftmaxGroupsFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m64 := randDense[float64](rng, 6, 30)
	m32 := Cast[float32](m64)
	SoftmaxGroups(m64, 3, 10, 0.8)
	SoftmaxGroups(m32, 3, 10, 0.8)
	if d := m64.MaxAbsDiff(Cast[float64](m32)); d > 1e-5 {
		t.Fatalf("f32 softmax diverges from f64 by %g", d)
	}
	// Each group must remain a probability mass.
	for r := 0; r < m32.Rows; r++ {
		row := m32.Row(r)
		for g := 0; g < 3; g++ {
			s := Sum(row[g*10 : (g+1)*10])
			if math.Abs(float64(s)-1) > 1e-5 {
				t.Fatalf("group sum %g != 1", s)
			}
		}
	}
}

func TestOneHotMatMulFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	w64 := randDense[float64](rng, 40, 37) // odd width: exercises SIMD tails
	w32 := Cast[float32](w64)
	idx := make([][]int32, 9)
	for s := range idx {
		for g := 0; g < 4; g++ {
			idx[s] = append(idx[s], int32(g*10+rng.Intn(10)))
		}
	}
	d64 := NewMatrix(9, 37)
	d32 := NewMatrix32(9, 37)
	OneHotMatMul(d64, idx, w64)
	OneHotMatMul(d32, idx, w32)
	if d := d64.MaxAbsDiff(Cast[float64](d32)); d > 1e-5 {
		t.Fatalf("f32 one-hot matmul diverges by %g", d)
	}
	d32.Zero()
	OneHotMatMulParallel(d32, idx, w32, 3)
	if d := d64.MaxAbsDiff(Cast[float64](d32)); d > 1e-5 {
		t.Fatalf("f32 parallel one-hot matmul diverges by %g", d)
	}
}

func TestCastRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randDense[float32](rng, 5, 9)
	up := Cast[float64](m)
	down := Cast[float32](up)
	if d := m.MaxAbsDiff(down); d != 0 {
		t.Fatalf("f32→f64→f32 round trip changed values by %g", d)
	}
	into := NewMatrix32(5, 9)
	CastInto(into, up)
	if d := m.MaxAbsDiff(into); d != 0 {
		t.Fatalf("CastInto changed values by %g", d)
	}
}
