// AVX2+FMA microkernels for the float32 and float64 hot loops. Pure
// vector-body loops: every function requires len(dst) to be a multiple of
// the lane count (8 for float32, 4 for float64) and every operand slice to
// be at least len(dst) long — the Go dispatch wrappers in simd.go truncate
// and handle the scalar tail. Only reached when simdEnabled is true
// (AVX2+FMA+OS-XSAVE verified at init), so the instructions below are safe.
//
//go:build !purego

#include "textflag.h"

// func axpy2F32AVX(a0, a1 float32, b0, b1, dst []float32)
// dst[j] += a0*b0[j] + a1*b1[j] — the GEMM inner kernel.
TEXT ·axpy2F32AVX(SB), NOSPLIT, $0-80
	VBROADCASTSS a0+0(FP), Y0
	VBROADCASTSS a1+4(FP), Y1
	MOVQ b0_base+8(FP), SI
	MOVQ b1_base+32(FP), DX
	MOVQ dst_base+56(FP), DI
	MOVQ dst_len+64(FP), CX
	XORQ AX, AX
axpy2f32loop:
	CMPQ AX, CX
	JGE  axpy2f32done
	VMOVUPS (SI)(AX*4), Y2
	VMOVUPS (DX)(AX*4), Y3
	VMOVUPS (DI)(AX*4), Y4
	VFMADD231PS Y2, Y0, Y4
	VFMADD231PS Y3, Y1, Y4
	VMOVUPS Y4, (DI)(AX*4)
	ADDQ $8, AX
	JMP  axpy2f32loop
axpy2f32done:
	VZEROUPPER
	RET

// func axpy2F64AVX(a0, a1 float64, b0, b1, dst []float64)
TEXT ·axpy2F64AVX(SB), NOSPLIT, $0-88
	VBROADCASTSD a0+0(FP), Y0
	VBROADCASTSD a1+8(FP), Y1
	MOVQ b0_base+16(FP), SI
	MOVQ b1_base+40(FP), DX
	MOVQ dst_base+64(FP), DI
	MOVQ dst_len+72(FP), CX
	XORQ AX, AX
axpy2f64loop:
	CMPQ AX, CX
	JGE  axpy2f64done
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD (DX)(AX*8), Y3
	VMOVUPD (DI)(AX*8), Y4
	VFMADD231PD Y2, Y0, Y4
	VFMADD231PD Y3, Y1, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpy2f64loop
axpy2f64done:
	VZEROUPPER
	RET

// func axpyF32AVX(a float32, x, y []float32)
// y[j] += a*x[j]
TEXT ·axpyF32AVX(SB), NOSPLIT, $0-56
	VBROADCASTSS a+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ y_len+40(FP), CX
	XORQ AX, AX
axpyf32loop:
	CMPQ AX, CX
	JGE  axpyf32done
	VMOVUPS (SI)(AX*4), Y2
	VMOVUPS (DI)(AX*4), Y3
	VFMADD231PS Y2, Y0, Y3
	VMOVUPS Y3, (DI)(AX*4)
	ADDQ $8, AX
	JMP  axpyf32loop
axpyf32done:
	VZEROUPPER
	RET

// func axpyF64AVX(a float64, x, y []float64)
TEXT ·axpyF64AVX(SB), NOSPLIT, $0-56
	VBROADCASTSD a+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ y_len+40(FP), CX
	XORQ AX, AX
axpyf64loop:
	CMPQ AX, CX
	JGE  axpyf64done
	VMOVUPD (SI)(AX*8), Y2
	VMOVUPD (DI)(AX*8), Y3
	VFMADD231PD Y2, Y0, Y3
	VMOVUPD Y3, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpyf64loop
axpyf64done:
	VZEROUPPER
	RET

// func lerpF32AVX(dst, src []float32, omt, t float32)
// dst[j] = omt*dst[j] + t*src[j] — the exponential trace update.
TEXT ·lerpF32AVX(SB), NOSPLIT, $0-56
	VBROADCASTSS omt+48(FP), Y0
	VBROADCASTSS t+52(FP), Y1
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ AX, AX
lerpf32loop:
	CMPQ AX, CX
	JGE  lerpf32done
	VMOVUPS (DI)(AX*4), Y2
	VMOVUPS (SI)(AX*4), Y3
	VMULPS Y0, Y2, Y2
	VFMADD231PS Y3, Y1, Y2
	VMOVUPS Y2, (DI)(AX*4)
	ADDQ $8, AX
	JMP  lerpf32loop
lerpf32done:
	VZEROUPPER
	RET

// func lerpF64AVX(dst, src []float64, omt, t float64)
TEXT ·lerpF64AVX(SB), NOSPLIT, $0-64
	VBROADCASTSD omt+48(FP), Y0
	VBROADCASTSD t+56(FP), Y1
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ AX, AX
lerpf64loop:
	CMPQ AX, CX
	JGE  lerpf64done
	VMOVUPD (DI)(AX*8), Y2
	VMOVUPD (SI)(AX*8), Y3
	VMULPD Y0, Y2, Y2
	VFMADD231PD Y3, Y1, Y2
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ $4, AX
	JMP  lerpf64loop
lerpf64done:
	VZEROUPPER
	RET

// func scaleF32AVX(a float32, x []float32)
// x[j] *= a — the trace decay pass.
TEXT ·scaleF32AVX(SB), NOSPLIT, $0-32
	VBROADCASTSS a+0(FP), Y0
	MOVQ x_base+8(FP), DI
	MOVQ x_len+16(FP), CX
	XORQ AX, AX
scalef32loop:
	CMPQ AX, CX
	JGE  scalef32done
	VMOVUPS (DI)(AX*4), Y2
	VMULPS Y0, Y2, Y2
	VMOVUPS Y2, (DI)(AX*4)
	ADDQ $8, AX
	JMP  scalef32loop
scalef32done:
	VZEROUPPER
	RET

// func scaleF64AVX(a float64, x []float64)
TEXT ·scaleF64AVX(SB), NOSPLIT, $0-32
	VBROADCASTSD a+0(FP), Y0
	MOVQ x_base+8(FP), DI
	MOVQ x_len+16(FP), CX
	XORQ AX, AX
scalef64loop:
	CMPQ AX, CX
	JGE  scalef64done
	VMOVUPD (DI)(AX*8), Y2
	VMULPD Y0, Y2, Y2
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ $4, AX
	JMP  scalef64loop
scalef64done:
	VZEROUPPER
	RET

// func addF32AVX(dst, src []float32)
// dst[j] += src[j] — the one-hot weight-row gather.
TEXT ·addF32AVX(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ AX, AX
addf32loop:
	CMPQ AX, CX
	JGE  addf32done
	VMOVUPS (DI)(AX*4), Y2
	VMOVUPS (SI)(AX*4), Y3
	VADDPS Y3, Y2, Y2
	VMOVUPS Y2, (DI)(AX*4)
	ADDQ $8, AX
	JMP  addf32loop
addf32done:
	VZEROUPPER
	RET

// func addF64AVX(dst, src []float64)
TEXT ·addF64AVX(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORQ AX, AX
addf64loop:
	CMPQ AX, CX
	JGE  addf64done
	VMOVUPD (DI)(AX*8), Y2
	VMOVUPD (SI)(AX*8), Y3
	VADDPD Y3, Y2, Y2
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ $4, AX
	JMP  addf64loop
addf64done:
	VZEROUPPER
	RET

// func cpuidLow(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidLow(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
