package tensor

import "sync"

// Pool recycles Matrix buffers between training steps. BCPNN training
// allocates several batch-sized temporaries per step (supports, activations,
// batch means, the joint outer product); recycling them keeps the hot loop
// allocation-free, which is the Go analogue of StreamBrain's preallocated
// device buffers.
//
// A Pool is safe for concurrent use.
type Pool struct {
	mu    sync.Mutex
	free  map[int][]*Matrix
	hits  int64
	total int64
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{free: make(map[int][]*Matrix)}
}

// Get returns a zeroed rows×cols matrix, reusing a previously released buffer
// of the same element count when available.
func (p *Pool) Get(rows, cols int) *Matrix {
	n := rows * cols
	p.mu.Lock()
	p.total++
	list := p.free[n]
	if len(list) > 0 {
		m := list[len(list)-1]
		p.free[n] = list[:len(list)-1]
		p.hits++
		p.mu.Unlock()
		m.Rows, m.Cols = rows, cols
		m.Zero()
		return m
	}
	p.mu.Unlock()
	return NewMatrix(rows, cols)
}

// Put releases m back to the pool. m must not be used afterwards.
func (p *Pool) Put(m *Matrix) {
	if m == nil || len(m.Data) == 0 {
		return
	}
	n := len(m.Data)
	p.mu.Lock()
	p.free[n] = append(p.free[n], m)
	p.mu.Unlock()
}

// Stats reports (reuse hits, total Gets) since creation, for tests and the
// allocation ablation bench.
func (p *Pool) Stats() (hits, total int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.total
}
