package tensor

import "sync"

// PoolOf recycles Dense buffers of one precision between training steps.
// BCPNN training allocates several batch-sized temporaries per step
// (supports, activations, batch means, the joint outer product); recycling
// them keeps the hot loop allocation-free, which is the Go analogue of
// StreamBrain's preallocated device buffers.
//
// A PoolOf is safe for concurrent use.
type PoolOf[T Float] struct {
	mu    sync.Mutex
	free  map[int][]*Dense[T]
	hits  int64
	total int64
}

// Pool is the float64 pool used by the training path.
type Pool = PoolOf[float64]

// NewPool returns an empty float64 pool.
func NewPool() *Pool { return NewPoolOf[float64]() }

// NewPoolOf returns an empty pool of the given precision.
func NewPoolOf[T Float]() *PoolOf[T] {
	return &PoolOf[T]{free: make(map[int][]*Dense[T])}
}

// Get returns a zeroed rows×cols matrix, reusing a previously released buffer
// of the same element count when available.
func (p *PoolOf[T]) Get(rows, cols int) *Dense[T] {
	n := rows * cols
	p.mu.Lock()
	p.total++
	list := p.free[n]
	if len(list) > 0 {
		m := list[len(list)-1]
		p.free[n] = list[:len(list)-1]
		p.hits++
		p.mu.Unlock()
		m.Rows, m.Cols = rows, cols
		m.Zero()
		return m
	}
	p.mu.Unlock()
	return NewDense[T](rows, cols)
}

// Put releases m back to the pool. m must not be used afterwards.
func (p *PoolOf[T]) Put(m *Dense[T]) {
	if m == nil || len(m.Data) == 0 {
		return
	}
	n := len(m.Data)
	p.mu.Lock()
	p.free[n] = append(p.free[n], m)
	p.mu.Unlock()
}

// Stats reports (reuse hits, total Gets) since creation, for tests and the
// allocation ablation bench.
func (p *PoolOf[T]) Stats() (hits, total int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.total
}
