package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const gemmTol = 1e-9

func TestMatMulNaiveKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	dst := NewMatrix(2, 2)
	MatMulNaive(dst, a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !dst.Equal(want, gemmTol) {
		t.Fatalf("got %v want %v", dst, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 6, 6)
	id := NewMatrix(6, 6)
	for i := 0; i < 6; i++ {
		id.Set(i, i, 1)
	}
	dst := NewMatrix(6, 6)
	MatMulNaive(dst, a, id)
	if !dst.Equal(a, gemmTol) {
		t.Fatal("A·I != A")
	}
}

func TestGEMMShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMulNaive(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestGEMMAliasPanics(t *testing.T) {
	a := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for aliased dst")
		}
	}()
	MatMulNaive(a, a, NewMatrix(2, 2))
}

// TestBlockedMatchesNaive is the kernel cross-check: the blocked kernel must
// agree with the reference for many shapes, including non-multiples of the
// block size and degenerate 1-row/1-col cases.
func TestBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {63, 64, 65},
		{64, 64, 64}, {100, 1, 100}, {1, 100, 1}, {37, 129, 41}}
	for _, sh := range shapes {
		a := randMatrix(rng, sh[0], sh[1])
		b := randMatrix(rng, sh[1], sh[2])
		want := NewMatrix(sh[0], sh[2])
		MatMulNaive(want, a, b)
		for _, block := range []int{0, 8, 16, 64, 128} {
			got := NewMatrix(sh[0], sh[2])
			MatMulBlocked(got, a, b, block)
			if d := got.MaxAbsDiff(want); d > gemmTol {
				t.Fatalf("shape %v block %d: max diff %g", sh, block, d)
			}
		}
	}
}

func TestParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, workers := range []int{1, 2, 3, 8} {
		a := randMatrix(rng, 150, 70)
		b := randMatrix(rng, 70, 90)
		want := NewMatrix(150, 90)
		MatMulNaive(want, a, b)
		got := NewMatrix(150, 90)
		MatMulParallel(got, a, b, 32, workers)
		if d := got.MaxAbsDiff(want); d > gemmTol {
			t.Fatalf("workers=%d: max diff %g", workers, d)
		}
	}
}

func TestMatMulATBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 40, 17)
	b := randMatrix(rng, 40, 23)
	want := NewMatrix(17, 23)
	MatMulNaive(want, a.Transpose(), b)
	got := NewMatrix(17, 23)
	MatMulATB(got, a, b)
	if d := got.MaxAbsDiff(want); d > gemmTol {
		t.Fatalf("ATB mismatch: %g", d)
	}
	gotP := NewMatrix(17, 23)
	MatMulATBParallel(gotP, a, b, 4)
	if d := gotP.MaxAbsDiff(want); d > gemmTol {
		t.Fatalf("ATB parallel mismatch: %g", d)
	}
}

// TestGEMMLinearity is a property test: GEMM must be linear in its left
// operand, (A1+A2)·B = A1·B + A2·B.
func TestGEMMLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a1 := randMatrix(rng, m, k)
		a2 := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		sum := a1.Clone()
		for i := range sum.Data {
			sum.Data[i] += a2.Data[i]
		}
		lhs := NewMatrix(m, n)
		MatMulBlocked(lhs, sum, b, 8)
		r1 := NewMatrix(m, n)
		r2 := NewMatrix(m, n)
		MatMulBlocked(r1, a1, b, 8)
		MatMulBlocked(r2, a2, b, 8)
		for i := range r1.Data {
			r1.Data[i] += r2.Data[i]
		}
		return lhs.MaxAbsDiff(r1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestOneHotMatMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const batch, groups, width, out = 9, 7, 5, 13
	in := groups * width
	w := randMatrix(rng, in, out)
	idx := make([][]int32, batch)
	dense := NewMatrix(batch, in)
	for s := 0; s < batch; s++ {
		for g := 0; g < groups; g++ {
			hot := g*width + rng.Intn(width)
			idx[s] = append(idx[s], int32(hot))
			dense.Set(s, hot, 1)
		}
	}
	want := NewMatrix(batch, out)
	MatMulNaive(want, dense, w)
	got := NewMatrix(batch, out)
	OneHotMatMul(got, idx, w)
	if d := got.MaxAbsDiff(want); d > gemmTol {
		t.Fatalf("one-hot mismatch: %g", d)
	}
	gotP := NewMatrix(batch, out)
	OneHotMatMulParallel(gotP, idx, w, 4)
	if d := gotP.MaxAbsDiff(want); d > gemmTol {
		t.Fatalf("one-hot parallel mismatch: %g", d)
	}
}

func TestOneHotMatMulEmptyActives(t *testing.T) {
	w := randMatrix(rand.New(rand.NewSource(7)), 4, 3)
	got := NewMatrix(2, 3)
	got.Fill(99) // must be overwritten with zeros
	OneHotMatMul(got, [][]int32{{}, {}}, w)
	for _, v := range got.Data {
		if v != 0 {
			t.Fatal("empty active set should produce zero rows")
		}
	}
}

func TestMatMulParallelSmallFallback(t *testing.T) {
	// Rows smaller than 2*block must fall back to the serial path and still
	// be correct.
	rng := rand.New(rand.NewSource(8))
	a := randMatrix(rng, 3, 5)
	b := randMatrix(rng, 5, 4)
	want := NewMatrix(3, 4)
	MatMulNaive(want, a, b)
	got := NewMatrix(3, 4)
	MatMulParallel(got, a, b, 64, 8)
	if d := got.MaxAbsDiff(want); d > gemmTol {
		t.Fatalf("small fallback mismatch: %g", d)
	}
}
