package tensor

// Generic→SIMD dispatch. Each wrapper runs the vector body over the largest
// lane-aligned prefix and finishes the tail in scalar Go; below simdMinLen
// the call overhead exceeds the win and the scalar loop runs directly.
//
// The any(...) type switches compile to shape tests on the instantiated
// slice type and do not allocate: the slice headers never escape.

// simdMinLen is the shortest slice worth a SIMD call. Classifier-sized rows
// (a handful of classes) stay scalar; hidden-layer rows (hundreds to
// thousands of units) vectorize.
const simdMinLen = 16

// axpy2 computes dst[j] += a0*b0[j] + a1*b1[j] — the fused two-row GEMM
// inner kernel. b0 and b1 must be at least len(dst) long.
func axpy2[T Float](a0, a1 T, b0, b1, dst []T) {
	n := len(dst)
	if simdEnabled && n >= simdMinLen {
		switch d := any(dst).(type) {
		case []float32:
			m := n &^ 7
			axpy2F32AVX(float32(a0), float32(a1), any(b0).([]float32), any(b1).([]float32), d[:m])
			for j := m; j < n; j++ {
				dst[j] += a0*b0[j] + a1*b1[j]
			}
			return
		case []float64:
			m := n &^ 3
			axpy2F64AVX(float64(a0), float64(a1), any(b0).([]float64), any(b1).([]float64), d[:m])
			for j := m; j < n; j++ {
				dst[j] += a0*b0[j] + a1*b1[j]
			}
			return
		}
	}
	for j := range dst {
		dst[j] += a0*b0[j] + a1*b1[j]
	}
}

// axpyDispatch computes y[j] += a*x[j] with the SIMD kernel when profitable.
func axpyDispatch[T Float](a T, x, y []T) {
	n := len(y)
	if simdEnabled && n >= simdMinLen {
		switch d := any(y).(type) {
		case []float32:
			m := n &^ 7
			axpyF32AVX(float32(a), any(x).([]float32), d[:m])
			for j := m; j < n; j++ {
				y[j] += a * x[j]
			}
			return
		case []float64:
			m := n &^ 3
			axpyF64AVX(float64(a), any(x).([]float64), d[:m])
			for j := m; j < n; j++ {
				y[j] += a * x[j]
			}
			return
		}
	}
	axpyScalar(a, x, y)
}

func axpyScalar[T Float](a T, x, y []T) {
	i := 0
	for ; i+3 < len(x); i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// lerpDispatch computes dst[j] = omt*dst[j] + t*src[j].
func lerpDispatch[T Float](dst, src []T, omt, t T) {
	n := len(dst)
	if simdEnabled && n >= simdMinLen {
		switch d := any(dst).(type) {
		case []float32:
			m := n &^ 7
			lerpF32AVX(d[:m], any(src).([]float32), float32(omt), float32(t))
			for j := m; j < n; j++ {
				dst[j] = omt*dst[j] + t*src[j]
			}
			return
		case []float64:
			m := n &^ 3
			lerpF64AVX(d[:m], any(src).([]float64), float64(omt), float64(t))
			for j := m; j < n; j++ {
				dst[j] = omt*dst[j] + t*src[j]
			}
			return
		}
	}
	lerpScalar(dst, src, omt, t)
}

func lerpScalar[T Float](dst, src []T, omt, t T) {
	i := 0
	for ; i+3 < len(dst); i += 4 {
		dst[i] = omt*dst[i] + t*src[i]
		dst[i+1] = omt*dst[i+1] + t*src[i+1]
		dst[i+2] = omt*dst[i+2] + t*src[i+2]
		dst[i+3] = omt*dst[i+3] + t*src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = omt*dst[i] + t*src[i]
	}
}

// scaleDispatch computes x[j] *= a.
func scaleDispatch[T Float](a T, x []T) {
	n := len(x)
	if simdEnabled && n >= simdMinLen {
		switch d := any(x).(type) {
		case []float32:
			m := n &^ 7
			scaleF32AVX(float32(a), d[:m])
			for j := m; j < n; j++ {
				x[j] *= a
			}
			return
		case []float64:
			m := n &^ 3
			scaleF64AVX(float64(a), d[:m])
			for j := m; j < n; j++ {
				x[j] *= a
			}
			return
		}
	}
	for i := range x {
		x[i] *= a
	}
}

// addDispatch computes dst[j] += src[j] — the weight-row gather of the
// one-hot forward pass.
func addDispatch[T Float](dst, src []T) {
	n := len(dst)
	if simdEnabled && n >= simdMinLen {
		switch d := any(dst).(type) {
		case []float32:
			m := n &^ 7
			addF32AVX(d[:m], any(src).([]float32))
			for j := m; j < n; j++ {
				dst[j] += src[j]
			}
			return
		case []float64:
			m := n &^ 3
			addF64AVX(d[:m], any(src).([]float64))
			for j := m; j < n; j++ {
				dst[j] += src[j]
			}
			return
		}
	}
	i := 0
	for ; i+3 < n; i += 4 {
		dst[i] += src[i]
		dst[i+1] += src[i+1]
		dst[i+2] += src[i+2]
		dst[i+3] += src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// SIMDEnabled reports whether the vectorized microkernels are active on this
// machine — surfaced so benchmarks and the perf runner can record it.
func SIMDEnabled() bool { return simdEnabled }
