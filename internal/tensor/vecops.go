package tensor

import (
	"math"
	"sync"
)

// Axpy computes y += alpha*x element-wise. Slices must have equal length.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	i := 0
	for ; i+3 < len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Lerp computes dst = (1-t)*dst + t*src element-wise — the exponential moving
// average that underlies every BCPNN trace update.
func Lerp(dst, src []float64, t float64) {
	if len(dst) != len(src) {
		panic("tensor: Lerp length mismatch")
	}
	omt := 1 - t
	i := 0
	for ; i+3 < len(dst); i += 4 {
		dst[i] = omt*dst[i] + t*src[i]
		dst[i+1] = omt*dst[i+1] + t*src[i+1]
		dst[i+2] = omt*dst[i+2] + t*src[i+2]
		dst[i+3] = omt*dst[i+3] + t*src[i+3]
	}
	for ; i < len(dst); i++ {
		dst[i] = omt*dst[i] + t*src[i]
	}
}

// LerpParallel is Lerp split across `workers` goroutines; used by the
// parallel backend for the large Cij trace (inputs × units).
func LerpParallel(dst, src []float64, t float64, workers int) {
	if workers <= 1 || len(dst) < 1<<14 {
		Lerp(dst, src, t)
		return
	}
	if len(dst) != len(src) {
		panic("tensor: LerpParallel length mismatch")
	}
	var wg sync.WaitGroup
	n := len(dst)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			Lerp(dst[lo:hi], src[lo:hi], t)
		}(lo, hi)
	}
	wg.Wait()
}

// SoftmaxRow computes, in place, the softmax of x with temperature T.
// It is max-subtracted for numerical stability; T <= 0 selects T = 1.
func SoftmaxRow(x []float64, temperature float64) {
	if len(x) == 0 {
		return
	}
	if temperature <= 0 {
		temperature = 1
	}
	maxv := x[0]
	for _, v := range x[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp((v - maxv) / temperature)
		x[i] = e
		sum += e
	}
	if sum == 0 {
		// All supports were -Inf; fall back to uniform so downstream traces
		// stay valid probability masses.
		u := 1 / float64(len(x))
		for i := range x {
			x[i] = u
		}
		return
	}
	inv := 1 / sum
	for i := range x {
		x[i] *= inv
	}
}

// SoftmaxGroups applies SoftmaxRow independently to each of `groups`
// consecutive segments of length `width` in every row of m. This is the
// per-hypercolumn softmax: each HCU's MCU activities form a probability mass.
func SoftmaxGroups(m *Matrix, groups, width int, temperature float64) {
	if groups*width != m.Cols {
		panic("tensor: SoftmaxGroups groups*width != cols")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for g := 0; g < groups; g++ {
			SoftmaxRow(row[g*width:(g+1)*width], temperature)
		}
	}
}

// SoftmaxGroupsParallel parallelizes SoftmaxGroups over rows.
func SoftmaxGroupsParallel(m *Matrix, groups, width int, temperature float64, workers int) {
	if workers <= 1 || m.Rows < 4 {
		SoftmaxGroups(m, groups, width, temperature)
		return
	}
	if groups*width != m.Cols {
		panic("tensor: SoftmaxGroupsParallel groups*width != cols")
	}
	var wg sync.WaitGroup
	chunk := (m.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		if r0 >= m.Rows {
			break
		}
		r1 := min(r0+chunk, m.Rows)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			for r := r0; r < r1; r++ {
				row := m.Row(r)
				for g := 0; g < groups; g++ {
					SoftmaxRow(row[g*width:(g+1)*width], temperature)
				}
			}
		}(r0, r1)
	}
	wg.Wait()
}

// ColMeans computes the per-column mean of m into dst (length m.Cols).
// It is the batch expectation E[x] used by the trace updates.
func ColMeans(dst []float64, m *Matrix) {
	if len(dst) != m.Cols {
		panic("tensor: ColMeans length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			dst[c] += v
		}
	}
	if m.Rows > 0 {
		Scale(1/float64(m.Rows), dst)
	}
}

// ArgMaxRow returns the index of the maximum element of x (first on ties).
func ArgMaxRow(x []float64) int {
	best := 0
	bv := math.Inf(-1)
	for i, v := range x {
		if v > bv {
			bv = v
			best = i
		}
	}
	return best
}

// Clip bounds every element of x into [lo, hi] in place.
func Clip(x []float64, lo, hi float64) {
	for i, v := range x {
		if v < lo {
			x[i] = lo
		} else if v > hi {
			x[i] = hi
		}
	}
}
