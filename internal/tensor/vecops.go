package tensor

import (
	"math"
	"sync"
)

// Axpy computes y += alpha*x element-wise. Slices must have equal length.
func Axpy[T Float](alpha T, x, y []T) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	axpyDispatch(alpha, x, y)
}

// Dot returns the inner product of x and y.
func Dot[T Float](x, y []T) T {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s0, s1, s2, s3 T
	i := 0
	for ; i+3 < len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Scale multiplies every element of x by alpha in place.
func Scale[T Float](alpha T, x []T) {
	scaleDispatch(alpha, x)
}

// Add computes dst += src element-wise — the alpha=1 Axpy, exposed for the
// fused layer-step backend's single-pass row accumulation.
func Add[T Float](dst, src []T) {
	if len(dst) != len(src) {
		panic("tensor: Add length mismatch")
	}
	addDispatch(dst, src)
}

// Sum returns the sum of the elements of x.
func Sum[T Float](x []T) T {
	var s T
	for _, v := range x {
		s += v
	}
	return s
}

// Lerp computes dst = (1-t)*dst + t*src element-wise — the exponential moving
// average that underlies every BCPNN trace update.
func Lerp[T Float](dst, src []T, t T) {
	if len(dst) != len(src) {
		panic("tensor: Lerp length mismatch")
	}
	lerpDispatch(dst, src, 1-t, t)
}

// LerpParallel is Lerp split across `workers` goroutines; used by the
// parallel backend for the large Cij trace (inputs × units).
func LerpParallel[T Float](dst, src []T, t T, workers int) {
	if workers <= 1 || len(dst) < 1<<14 {
		Lerp(dst, src, t)
		return
	}
	if len(dst) != len(src) {
		panic("tensor: LerpParallel length mismatch")
	}
	var wg sync.WaitGroup
	n := len(dst)
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			Lerp(dst[lo:hi], src[lo:hi], t)
		}(lo, hi)
	}
	wg.Wait()
}

// SoftmaxRow computes, in place, the softmax of x with temperature T.
// It is max-subtracted for numerical stability; T <= 0 selects T = 1.
// The float32 instantiation exponentiates with the reduced-precision Exp32
// (see math32.go); accumulation stays exact enough because the max-subtracted
// exponentials are bounded by 1.
func SoftmaxRow[T Float](x []T, temperature float64) {
	if len(x) == 0 {
		return
	}
	if temperature <= 0 {
		temperature = 1
	}
	maxv := x[0]
	for _, v := range x[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum T
	if xs, ok := any(x).([]float32); ok {
		m, invT := float32(maxv), 1/float32(temperature)
		var s float32
		for i, v := range xs {
			e := Exp32((v - m) * invT)
			xs[i] = e
			s += e
		}
		sum = T(s)
	} else {
		var s float64
		for i, v := range x {
			e := math.Exp((float64(v) - float64(maxv)) / temperature)
			x[i] = T(e)
			s += e
		}
		sum = T(s)
	}
	if sum == 0 {
		// All supports were -Inf; fall back to uniform so downstream traces
		// stay valid probability masses.
		u := 1 / T(len(x))
		for i := range x {
			x[i] = u
		}
		return
	}
	inv := 1 / sum
	for i := range x {
		x[i] *= inv
	}
}

// SoftmaxGroups applies SoftmaxRow independently to each of `groups`
// consecutive segments of length `width` in every row of m. This is the
// per-hypercolumn softmax: each HCU's MCU activities form a probability mass.
func SoftmaxGroups[T Float](m *Dense[T], groups, width int, temperature float64) {
	if groups*width != m.Cols {
		panic("tensor: SoftmaxGroups groups*width != cols")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for g := 0; g < groups; g++ {
			SoftmaxRow(row[g*width:(g+1)*width], temperature)
		}
	}
}

// SoftmaxGroupsParallel parallelizes SoftmaxGroups over rows.
func SoftmaxGroupsParallel[T Float](m *Dense[T], groups, width int, temperature float64, workers int) {
	if workers <= 1 || m.Rows < 4 {
		SoftmaxGroups(m, groups, width, temperature)
		return
	}
	if groups*width != m.Cols {
		panic("tensor: SoftmaxGroupsParallel groups*width != cols")
	}
	var wg sync.WaitGroup
	chunk := (m.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		r0 := w * chunk
		if r0 >= m.Rows {
			break
		}
		r1 := min(r0+chunk, m.Rows)
		wg.Add(1)
		go func(r0, r1 int) {
			defer wg.Done()
			for r := r0; r < r1; r++ {
				row := m.Row(r)
				for g := 0; g < groups; g++ {
					SoftmaxRow(row[g*width:(g+1)*width], temperature)
				}
			}
		}(r0, r1)
	}
	wg.Wait()
}

// ColMeans computes the per-column mean of m into dst (length m.Cols).
// It is the batch expectation E[x] used by the trace updates.
func ColMeans[T Float](dst []T, m *Dense[T]) {
	if len(dst) != m.Cols {
		panic("tensor: ColMeans length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for r := 0; r < m.Rows; r++ {
		addDispatch(dst, m.Row(r))
	}
	if m.Rows > 0 {
		Scale(1/T(m.Rows), dst)
	}
}

// ArgMaxRow returns the index of the maximum element of x (first on ties).
func ArgMaxRow[T Float](x []T) int {
	best := 0
	bv := math.Inf(-1)
	for i, v := range x {
		if float64(v) > bv {
			bv = float64(v)
			best = i
		}
	}
	return best
}

// Clip bounds every element of x into [lo, hi] in place.
func Clip[T Float](x []T, lo, hi T) {
	for i, v := range x {
		if v < lo {
			x[i] = lo
		} else if v > hi {
			x[i] = hi
		}
	}
}
