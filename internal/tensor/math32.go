package tensor

import "math"

// Reduced-precision transcendentals for the float32 compute path.
//
// math.Log and math.Exp carry full float64 accuracy (and cost); the float32
// kernel set only needs results accurate to float32 rounding, so these
// single-precision Cephes-style polynomial evaluations (Moshier's logf/expf)
// run several times faster while staying within ~2 ulp of the correctly
// rounded float32 result. They are what makes the float32 UpdateWeights and
// SoftmaxGroups kernels genuinely cheaper — halving bandwidth alone would
// leave both dominated by float64 transcendental latency (DESIGN.md §9).

const (
	ln2Hi32 = 6.93359375e-1
	ln2Lo32 = -2.12194440e-4
	ln2f32  = 0.6931471805599453
	log2E32 = 1.44269504088896341
	// expHi/expLo bound the argument range of Exp32; outside it the float32
	// result overflows/underflows anyway.
	expHi32 = 88.3762626647949
	expLo32 = -87.3365478515625
)

// Log32 returns the natural logarithm of x with float32 accuracy.
// Conventions match math.Log: Log32(0) = -Inf, Log32(x<0) = NaN,
// Log32(+Inf) = +Inf, Log32(NaN) = NaN.
//
// The hot path is branch-free in the data: the exponent/mantissa split is
// done with integer arithmetic biased at sqrt(1/2) (the ARM optimized-
// routines logf reduction), so the unpredictable "mantissa below sqrt(1/2)"
// branch of the classic Cephes form never mispredicts, and the log1p
// polynomial is evaluated in Estrin form to cut the Horner dependency chain
// roughly in half. Both matter: UpdateWeights calls this once per weight.
func Log32(x float32) float32 {
	bits := math.Float32bits(x)
	if bits-0x00800000 >= 0x7f800000-0x00800000 {
		// Slow path: zero, subnormal, negative, ±Inf, NaN.
		switch {
		case x != x || math.IsInf(float64(x), 1):
			return x
		case x < 0:
			return float32(math.NaN())
		case x == 0:
			return float32(math.Inf(-1))
		}
		// Positive subnormal: renormalize and recurse onto the fast path.
		return Log32(x*(1<<23)) - 23*ln2f32
	}
	// Split x = 2^k · m with m in [sqrt(1/2), sqrt(2)): subtracting the
	// sqrt(1/2) offset makes the exponent field of (bits-off) the k that
	// puts m in that window, without a data-dependent branch.
	const off = 0x3f330000
	tmp := bits - off
	k := int32(tmp) >> 23
	m := math.Float32frombits(bits - uint32(k)<<23)
	r := m - 1 // in [sqrt(1/2)-1, sqrt(2)-1) ⊂ (-0.293, 0.415)

	// log(1+r) = r - r²/2 + r³·P(r); P in Estrin form (a0..a8 are the
	// Cephes logf coefficients, lowest order first).
	const (
		a0 float32 = 3.3333331174e-1
		a1 float32 = -2.4999993993e-1
		a2 float32 = 2.0000714765e-1
		a3 float32 = -1.6668057665e-1
		a4 float32 = 1.4249322787e-1
		a5 float32 = -1.2420140846e-1
		a6 float32 = 1.1676998740e-1
		a7 float32 = -1.1514610310e-1
		a8 float32 = 7.0376836292e-2
	)
	r2 := r * r
	r4 := r2 * r2
	b0 := a0 + a1*r
	b1 := a2 + a3*r
	b2 := a4 + a5*r
	b3 := a6 + a7*r
	p := (b0 + b1*r2) + (b2+b3*r2)*r4 + a8*r4*r4
	y := r * r2 * p
	fk := float32(k)
	y += fk * ln2Lo32
	y -= 0.5 * r2
	return r + y + fk*ln2Hi32
}

// Exp32 returns e**x with float32 accuracy. Conventions match math.Exp:
// overflow saturates to +Inf, underflow flushes to 0, Exp32(NaN) = NaN.
// Like Log32 it is built for the kernel hot loops (softmax exponentiates
// every unit of every sample): Estrin-form polynomial, branch-free 2^n
// scaling on the common path.
func Exp32(x float32) float32 {
	switch {
	case x != x:
		return x
	case x > expHi32:
		return float32(math.Inf(1))
	case x < expLo32:
		return 0
	}
	// Range-reduce x = n·ln2 + r, |r| <= ln2/2, in two steps so the
	// subtraction stays exact in float32. math.Floor compiles to a single
	// rounding instruction on amd64.
	n := float32(math.Floor(float64(log2E32*x + 0.5)))
	r := x - n*ln2Hi32
	r -= n * ln2Lo32
	// e^r = 1 + r + r²·Q(r); Q in Estrin form (Cephes expf coefficients,
	// lowest order first).
	const (
		q0 float32 = 5.0000001201e-1
		q1 float32 = 1.6666665459e-1
		q2 float32 = 4.1665795894e-2
		q3 float32 = 8.3334519073e-3
		q4 float32 = 1.3981999507e-3
		q5 float32 = 1.9875691500e-4
	)
	r2 := r * r
	b0 := q0 + q1*r
	b1 := q2 + q3*r
	b2 := q4 + q5*r
	p := b0 + (b1+b2*r2)*r2
	y := p*r2 + r + 1
	// y · 2^n. Inside the clamp the result exponent can still leave the
	// normal range (subnormal results near expLo32), so only the in-range
	// case takes the single-instruction path.
	ni := int(n)
	if uint(ni+126) <= 252 { // -126 <= n <= 126: 2^n is a normal float32
		return y * math.Float32frombits(uint32(127+ni)<<23)
	}
	return y * exp2i(ni)
}

// exp2i returns 2^n as a float32 for n in the extended exponent range,
// splitting the scaling so intermediate values stay representable.
func exp2i(n int) float32 {
	if n < -126 {
		return math.Float32frombits(uint32(127-126)<<23) * exp2iNormal(n+126)
	}
	if n > 127 {
		return math.Float32frombits(uint32(127+127)<<23) * exp2iNormal(n-127)
	}
	return exp2iNormal(n)
}

func exp2iNormal(n int) float32 {
	if n < -149 {
		return 0
	}
	if n > 127 {
		return float32(math.Inf(1))
	}
	if n < -126 { // subnormal result
		return math.Float32frombits(uint32(1) << uint(149+n))
	}
	return math.Float32frombits(uint32(127+n) << 23)
}
