// Package tensor provides the dense linear-algebra substrate used by every
// StreamBrain-Go backend: a row-major matrix type generic over the element
// precision (float64 | float32), cache-blocked and parallel GEMM kernels, and
// the fused vector primitives the BCPNN learning rule is built from.
//
// The package is deliberately free of dependencies (stdlib only) and free of
// hidden global state: parallel kernels take an explicit worker count so the
// compute backends in internal/backend can own their thread budget, mirroring
// the way StreamBrain's OpenMP backend owns its thread team.
//
// Precision (DESIGN.md §9): every kernel is generic over Float, so the same
// source instantiates the float64 reference path and the float32 reduced-
// precision path the paper's bfloat16/posit experiments motivate. On amd64
// with AVX2+FMA the hot inner loops dispatch to SIMD microkernels
// (simd_amd64.s), where float32's doubled lane width is what makes reduced
// precision genuinely faster rather than merely smaller.
package tensor

import (
	"fmt"
	"math"
)

// Float constrains the element precisions the compute stack supports.
type Float interface {
	~float32 | ~float64
}

// Dense is a dense row-major matrix of T.
//
// The zero value is an empty 0×0 matrix. Data is exposed so kernels can
// operate on the raw slice; Data has exactly Rows*Cols elements and row r
// occupies Data[r*Cols : (r+1)*Cols].
type Dense[T Float] struct {
	Rows, Cols int
	Data       []T
}

// Matrix is the float64 instantiation — the precision every trace and
// training accumulator uses (see DESIGN.md §9 for why accumulators stay
// wide).
type Matrix = Dense[float64]

// Matrix32 is the float32 instantiation used by the reduced-precision
// compute path (derived parameters and activations only, never traces).
type Matrix32 = Dense[float32]

// NewDense allocates a zeroed rows×cols matrix of the given precision.
func NewDense[T Float](rows, cols int) *Dense[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Dense[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// NewMatrix allocates a zeroed rows×cols float64 matrix.
func NewMatrix(rows, cols int) *Matrix { return NewDense[float64](rows, cols) }

// NewMatrix32 allocates a zeroed rows×cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 { return NewDense[float32](rows, cols) }

// FromSlice wraps an existing slice as a rows×cols matrix without copying.
// The slice length must be exactly rows*cols.
func FromSlice[T Float](rows, cols int, data []T) *Dense[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense[T]{Rows: rows, Cols: cols, Data: data}
}

// CastInto copies src into dst element-by-element, converting precision.
// Shapes must match exactly. It is the bridge between the float64 learning
// state and the float32 compute path (weights down-cast after each trace
// update, activations up-cast before they feed a float64 readout).
func CastInto[D, S Float](dst *Dense[D], src *Dense[S]) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CastInto shape mismatch %dx%d <- %dx%d",
			dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	CastSlice(dst.Data, src.Data)
}

// Cast returns a newly allocated precision-converted copy of src.
func Cast[D, S Float](src *Dense[S]) *Dense[D] {
	out := NewDense[D](src.Rows, src.Cols)
	CastSlice(out.Data, src.Data)
	return out
}

// CastSlice converts src into dst element-wise; lengths must match.
func CastSlice[D, S Float](dst []D, src []S) {
	if len(dst) != len(src) {
		panic("tensor: CastSlice length mismatch")
	}
	for i, v := range src {
		dst[i] = D(v)
	}
}

// At returns the element at row r, column c.
func (m *Dense[T]) At(r, c int) T { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Dense[T]) Set(r, c int, v T) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a subslice (no copy).
func (m *Dense[T]) Row(r int) []T { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Dense[T]) Clone() *Dense[T] {
	out := NewDense[T](m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m. Dimensions must match exactly.
func (m *Dense[T]) CopyFrom(src *Dense[T]) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d <- %dx%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element to 0.
func (m *Dense[T]) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Dense[T]) Fill(v T) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense[T]) Transpose() *Dense[T] {
	out := NewDense[T](m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			out.Data[c*out.Cols+r] = v
		}
	}
	return out
}

// Equal reports whether m and other have identical shape and elements within
// absolute tolerance tol.
func (m *Dense[T]) Equal(other *Dense[T], tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(float64(v)-float64(other.Data[i])) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between two
// matrices of identical shape. It is the metric used by kernel cross-checks.
func (m *Dense[T]) MaxAbsDiff(other *Dense[T]) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	max := 0.0
	for i, v := range m.Data {
		d := math.Abs(float64(v) - float64(other.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Dense[T]) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		if r > 0 {
			s += "; "
		}
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", float64(m.At(r, c)))
		}
	}
	return s + "]"
}
