// Package tensor provides the dense linear-algebra substrate used by every
// StreamBrain-Go backend: a row-major float64 matrix type, cache-blocked and
// parallel GEMM kernels, and the fused vector primitives the BCPNN learning
// rule is built from.
//
// The package is deliberately free of dependencies (stdlib only) and free of
// hidden global state: parallel kernels take an explicit worker count so the
// compute backends in internal/backend can own their thread budget, mirroring
// the way StreamBrain's OpenMP backend owns its thread team.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
//
// The zero value is an empty 0×0 matrix. Data is exposed so kernels can
// operate on the raw slice; Data has exactly Rows*Cols elements and row r
// occupies Data[r*Cols : (r+1)*Cols].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps an existing slice as a rows×cols matrix without copying.
// The slice length must be exactly rows*cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a subslice (no copy).
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m. Dimensions must match exactly.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d <- %dx%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			out.Data[c*out.Cols+r] = v
		}
	}
	return out
}

// Equal reports whether m and other have identical shape and elements within
// absolute tolerance tol.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-other.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between two
// matrices of identical shape. It is the metric used by kernel cross-checks.
func (m *Matrix) MaxAbsDiff(other *Matrix) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	max := 0.0
	for i, v := range m.Data {
		d := math.Abs(v - other.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// String renders small matrices for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for r := 0; r < m.Rows; r++ {
		if r > 0 {
			s += "; "
		}
		for c := 0; c < m.Cols; c++ {
			if c > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(r, c))
		}
	}
	return s + "]"
}
