package tensor

import (
	"math/rand"
	"testing"
)

// TestBlockIndexDense checks the nil-mask (fully dense) construction: every
// block active, full row lists, Density 1.
func TestBlockIndexDense(t *testing.T) {
	bi := NewBlockIndex(nil, 4, 3, 5, 2)
	if got, want := bi.ActiveBlocks(), 4*5; got != want {
		t.Fatalf("ActiveBlocks() = %d, want %d", got, want)
	}
	if got, want := bi.ActiveElems(), int64(4*5*3*2); got != want {
		t.Fatalf("ActiveElems() = %d, want %d", got, want)
	}
	if bi.Density() != 1 || bi.Sparsity() != 0 {
		t.Fatalf("dense index reports density %v, sparsity %v", bi.Density(), bi.Sparsity())
	}
	for f := 0; f < 4; f++ {
		active := bi.Active(f)
		if len(active) != 5 {
			t.Fatalf("Active(%d) has %d entries, want 5", f, len(active))
		}
		for j, h := range active {
			if int(h) != j {
				t.Fatalf("Active(%d)[%d] = %d, want %d", f, j, h, j)
			}
		}
	}
}

// TestBlockIndexMasked checks CSR construction from a hand-written mask:
// per-row active lists stay sorted, and the counters/fractions match.
func TestBlockIndexMasked(t *testing.T) {
	// 3 input hypercolumns × 2 hidden HCUs, row-major like the kernels' mask.
	mask := []bool{
		true, false, // fi 0 → h {0}
		false, false, // fi 1 → silent
		true, true, // fi 2 → h {0, 1}
	}
	bi := NewBlockIndex(mask, 3, 4, 2, 5)
	if got, want := bi.ActiveBlocks(), 3; got != want {
		t.Fatalf("ActiveBlocks() = %d, want %d", got, want)
	}
	if got, want := bi.ActiveElems(), int64(3*4*5); got != want {
		t.Fatalf("ActiveElems() = %d, want %d", got, want)
	}
	if got, want := bi.Density(), 0.5; got != want {
		t.Fatalf("Density() = %v, want %v", got, want)
	}
	if got, want := bi.Sparsity(), 0.5; got != want {
		t.Fatalf("Sparsity() = %v, want %v", got, want)
	}
	wantRows := [][]int32{{0}, {}, {0, 1}}
	for f, want := range wantRows {
		got := bi.Active(f)
		if len(got) != len(want) {
			t.Fatalf("Active(%d) = %v, want %v", f, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Active(%d) = %v, want %v", f, got, want)
			}
		}
	}
}

// TestBlockIndexEqual checks Equal across same-mask rebuilds, differing
// active sets, differing geometry, and nil.
func TestBlockIndexEqual(t *testing.T) {
	mask := []bool{true, false, false, true}
	a := NewBlockIndex(mask, 2, 3, 2, 3)
	if !a.Equal(NewBlockIndex(mask, 2, 3, 2, 3)) {
		t.Fatal("identical rebuilds are not Equal")
	}
	other := []bool{true, false, true, false}
	if a.Equal(NewBlockIndex(other, 2, 3, 2, 3)) {
		t.Fatal("differing active sets compare Equal")
	}
	if a.Equal(NewBlockIndex(mask, 2, 4, 2, 3)) {
		t.Fatal("differing block shapes compare Equal")
	}
	if a.Equal(nil) {
		t.Fatal("Equal(nil) = true")
	}
}

// TestBlockIndexPanics checks the constructor and kernel guard rails.
func TestBlockIndexPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero geometry", func() { NewBlockIndex(nil, 0, 3, 2, 3) })
	mustPanic("short mask", func() { NewBlockIndex(make([]bool, 3), 2, 3, 2, 3) })
	mustPanic("non-tiling index", func() {
		w := NewDense[float64](6, 6)
		OneHotMatMulSparse(w, make([][]int32, 6), w, NewBlockIndex(nil, 2, 2, 2, 3))
	})
}

// TestOneHotMatMulSparseMatchesDense checks the frozen-silent contract
// (DESIGN.md §15) at the tensor level: when silent blocks of W hold exact
// zeros — the invariant the masked UpdateWeights maintains — the sparse
// gather is bit-identical to the dense one, serial and parallel.
func TestOneHotMatMulSparseMatchesDense(t *testing.T) {
	const fi, mi, h, m, batch = 5, 4, 3, 6, 17
	rng := rand.New(rand.NewSource(7))
	mask := make([]bool, fi*h)
	for i := range mask {
		mask[i] = rng.Intn(2) == 0
	}
	bi := NewBlockIndex(mask, fi, mi, h, m)
	w := NewDense[float64](fi*mi, h*m)
	for f := 0; f < fi; f++ {
		for j := 0; j < h; j++ {
			if !mask[f*h+j] {
				continue // silent blocks stay exactly zero
			}
			for r := f * mi; r < (f+1)*mi; r++ {
				for c := j * m; c < (j+1)*m; c++ {
					w.Set(r, c, rng.NormFloat64())
				}
			}
		}
	}
	idx := make([][]int32, batch)
	for s := range idx {
		for f := 0; f < fi; f++ {
			idx[s] = append(idx[s], int32(f*mi+rng.Intn(mi)))
		}
	}
	want := NewDense[float64](batch, h*m)
	OneHotMatMul(want, idx, w)
	got := NewDense[float64](batch, h*m)
	OneHotMatMulSparse(got, idx, w, bi)
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("serial sparse gather diverges at flat index %d: %v != %v", i, got.Data[i], v)
		}
	}
	for i := range got.Data {
		got.Data[i] = -1
	}
	OneHotMatMulSparseParallel(got, idx, w, bi, 4)
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("parallel sparse gather diverges at flat index %d: %v != %v", i, got.Data[i], v)
		}
	}
}
