package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// relErr32 returns the relative error of got against the float64 reference.
func relErr32(got float32, want float64) float64 {
	if want == 0 {
		return math.Abs(float64(got))
	}
	return math.Abs(float64(got)-want) / math.Abs(want)
}

func TestLog32MatchesMathLog(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Sweep the magnitudes BCPNN actually feeds Log32: probabilities and
	// eps floors from 1e-12 up through order-one trace values.
	for i := 0; i < 200000; i++ {
		exp := rng.Float64()*24 - 12 // 1e-12 .. 1e12
		x := float32(math.Pow(10, exp))
		got := Log32(x)
		want := math.Log(float64(x))
		if re := relErr32(got, want); re > 5e-6 {
			t.Fatalf("Log32(%g) = %g, want %g (rel err %g)", x, got, want, re)
		}
	}
}

func TestLog32EdgeCases(t *testing.T) {
	if v := Log32(0); !math.IsInf(float64(v), -1) {
		t.Fatalf("Log32(0) = %v, want -Inf", v)
	}
	if v := Log32(-1); !math.IsNaN(float64(v)) {
		t.Fatalf("Log32(-1) = %v, want NaN", v)
	}
	if v := Log32(float32(math.Inf(1))); !math.IsInf(float64(v), 1) {
		t.Fatalf("Log32(+Inf) = %v, want +Inf", v)
	}
	if v := Log32(float32(math.NaN())); !math.IsNaN(float64(v)) {
		t.Fatalf("Log32(NaN) = %v, want NaN", v)
	}
	if v := Log32(1); v != 0 {
		t.Fatalf("Log32(1) = %v, want 0", v)
	}
	// Subnormal input still gives a finite, accurate log.
	sub := math.Float32frombits(1 << 10)
	if re := relErr32(Log32(sub), math.Log(float64(sub))); re > 5e-6 {
		t.Fatalf("Log32(subnormal) rel err %g", re)
	}
}

func TestExp32MatchesMathExp(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200000; i++ {
		x := float32(rng.Float64()*160 - 80) // well inside the clamp range
		got := Exp32(x)
		want := math.Exp(float64(x))
		if re := relErr32(got, want); re > 5e-6 {
			t.Fatalf("Exp32(%g) = %g, want %g (rel err %g)", x, got, want, re)
		}
	}
}

func TestExp32EdgeCases(t *testing.T) {
	if v := Exp32(0); v != 1 {
		t.Fatalf("Exp32(0) = %v, want 1", v)
	}
	if v := Exp32(1000); !math.IsInf(float64(v), 1) {
		t.Fatalf("Exp32(1000) = %v, want +Inf", v)
	}
	if v := Exp32(-1000); v != 0 {
		t.Fatalf("Exp32(-1000) = %v, want 0", v)
	}
	if v := Exp32(float32(math.NaN())); !math.IsNaN(float64(v)) {
		t.Fatalf("Exp32(NaN) = %v, want NaN", v)
	}
	// Near the underflow boundary the result may be subnormal but must not
	// jump to zero early.
	if v := Exp32(-87); v == 0 {
		t.Fatal("Exp32(-87) flushed to zero")
	}
}
