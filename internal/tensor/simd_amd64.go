//go:build amd64 && !purego

package tensor

// simdEnabled reports whether the AVX2+FMA microkernels in simd_amd64.s may
// be used. Detection follows the Intel manual: the CPU must advertise AVX,
// AVX2 and FMA, and the OS must have enabled XMM/YMM state saving (OSXSAVE
// plus XCR0 bits 1-2), otherwise executing VEX instructions faults.
var simdEnabled = detectSIMD()

func detectSIMD() bool {
	maxLeaf, _, _, _ := cpuidLow(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuidLow(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	_, b7, _, _ := cpuidLow(7, 0)
	if b7&(1<<5) == 0 { // AVX2
		return false
	}
	xcr0, _ := xgetbv0()
	return xcr0&6 == 6 // XMM and YMM state enabled by the OS
}

// Assembly kernels (simd_amd64.s). Callers must pre-truncate dst to a
// multiple of the lane width; see the dispatch wrappers in simd.go.

func axpy2F32AVX(a0, a1 float32, b0, b1, dst []float32)
func axpy2F64AVX(a0, a1 float64, b0, b1, dst []float64)
func axpyF32AVX(a float32, x, y []float32)
func axpyF64AVX(a float64, x, y []float64)
func lerpF32AVX(dst, src []float32, omt, t float32)
func lerpF64AVX(dst, src []float64, omt, t float64)
func scaleF32AVX(a float32, x []float32)
func scaleF64AVX(a float64, x []float64)
func addF32AVX(dst, src []float32)
func addF64AVX(dst, src []float64)

func cpuidLow(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)
