package viz

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteVTI serializes fields as a VTK XML ImageData file ("the Catalyst
// pipeline writes the receptive fields as VTI files", §III-B). All fields
// must share one geometry; they become separate point-data scalar arrays.
// The output is plain-ASCII VTI readable by stock ParaView.
func WriteVTI(w io.Writer, fields []Field) error {
	if len(fields) == 0 {
		return fmt.Errorf("viz: WriteVTI with no fields")
	}
	w0, h0 := fields[0].Width, fields[0].Height
	for _, f := range fields {
		if err := f.Validate(); err != nil {
			return err
		}
		if f.Width != w0 || f.Height != h0 {
			return fmt.Errorf("viz: WriteVTI mixed geometries %dx%d vs %dx%d",
				f.Width, f.Height, w0, h0)
		}
	}
	// VTI extents are inclusive point ranges; a WxH pixel field is stored as
	// point data on a (W-1)x(H-1)x0 cell grid's points.
	fmt.Fprintf(w, "<?xml version=\"1.0\"?>\n")
	fmt.Fprintf(w, "<VTKFile type=\"ImageData\" version=\"0.1\" byte_order=\"LittleEndian\">\n")
	fmt.Fprintf(w, "  <ImageData WholeExtent=\"0 %d 0 %d 0 0\" Origin=\"0 0 0\" Spacing=\"1 1 1\">\n",
		w0-1, h0-1)
	fmt.Fprintf(w, "    <Piece Extent=\"0 %d 0 %d 0 0\">\n", w0-1, h0-1)
	fmt.Fprintf(w, "      <PointData Scalars=\"%s\">\n", fields[0].Name)
	for _, f := range fields {
		fmt.Fprintf(w, "        <DataArray type=\"Float64\" Name=\"%s\" format=\"ascii\">\n", f.Name)
		for i, v := range f.Data {
			if i%8 == 0 {
				fmt.Fprint(w, "          ")
			}
			fmt.Fprintf(w, "%g ", v)
			if i%8 == 7 || i == len(f.Data)-1 {
				fmt.Fprintln(w)
			}
		}
		fmt.Fprintf(w, "        </DataArray>\n")
	}
	fmt.Fprintf(w, "      </PointData>\n")
	fmt.Fprintf(w, "    </Piece>\n")
	fmt.Fprintf(w, "  </ImageData>\n")
	fmt.Fprintf(w, "</VTKFile>\n")
	return nil
}

// VTIWriter is the file-emitting Catalyst adaptor: one .vti per epoch in
// Dir, named <Prefix>_<epoch>.vti.
type VTIWriter struct {
	Dir    string
	Prefix string
	// Written collects the emitted paths, for tests and reporting.
	Written []string
}

// NewVTIWriter creates Dir if needed and returns the adaptor.
func NewVTIWriter(dir, prefix string) (*VTIWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("viz: %w", err)
	}
	return &VTIWriter{Dir: dir, Prefix: prefix}, nil
}

// CoProcess implements Adaptor.
func (vw *VTIWriter) CoProcess(epoch int, fields []Field) error {
	path := filepath.Join(vw.Dir, fmt.Sprintf("%s_%04d.vti", vw.Prefix, epoch))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("viz: %w", err)
	}
	defer f.Close()
	if err := WriteVTI(f, fields); err != nil {
		return err
	}
	vw.Written = append(vw.Written, path)
	return nil
}
