// Package viz implements the in-situ visualization subsystem the paper
// introduces in §III-B: per-epoch co-processing of the HCU receptive fields,
// written as genuine VTK XML ImageData (.vti) files that ParaView can open,
// rendered to PNG and ASCII for quick inspection, and served over a live
// HTTP endpoint that plays the role of the ParaView Catalyst live
// connection (visualize / pause / inspect as training progresses).
//
// The coupling point is the Adaptor interface: the training loop calls
// CoProcess once per epoch with the current fields, exactly where the
// paper's Catalyst adaptor triggers its pipeline.
package viz

import (
	"fmt"
	"strings"
)

// Field is one named 2-D scalar field — typically an HCU's receptive field
// (mask or mutual-information map) reshaped to the input's spatial layout.
type Field struct {
	Name          string
	Width, Height int
	Data          []float64 // row-major, Width*Height values
}

// Validate reports geometry errors.
func (f Field) Validate() error {
	if f.Width <= 0 || f.Height <= 0 {
		return fmt.Errorf("viz: field %q has invalid size %dx%d", f.Name, f.Width, f.Height)
	}
	if len(f.Data) != f.Width*f.Height {
		return fmt.Errorf("viz: field %q has %d values for %dx%d",
			f.Name, len(f.Data), f.Width, f.Height)
	}
	return nil
}

// BoolField converts a mask to a Field (true → 1, false → 0).
func BoolField(name string, width, height int, mask []bool) Field {
	data := make([]float64, len(mask))
	for i, on := range mask {
		if on {
			data[i] = 1
		}
	}
	return Field{Name: name, Width: width, Height: height, Data: data}
}

// Adaptor receives the per-epoch co-processing callback.
type Adaptor interface {
	// CoProcess is invoked at the end of each training epoch with the
	// current receptive fields.
	CoProcess(epoch int, fields []Field) error
}

// Multi fans one CoProcess call out to several adaptors, failing on the
// first error.
type Multi []Adaptor

// CoProcess implements Adaptor.
func (m Multi) CoProcess(epoch int, fields []Field) error {
	for _, a := range m {
		if err := a.CoProcess(epoch, fields); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIRender draws a field as a text heatmap using a density ramp, the
// zero-dependency way to eyeball a receptive field in a terminal.
func ASCIIRender(f Field) string {
	ramp := " .:-=+*#%@"
	lo, hi := f.Data[0], f.Data[0]
	for _, v := range f.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%dx%d)\n", f.Name, f.Width, f.Height)
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			v := f.Data[y*f.Width+x]
			idx := 0
			if span > 0 {
				idx = int((v - lo) / span * float64(len(ramp)-1))
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
