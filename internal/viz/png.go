package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"
)

// heatColor maps a normalized value in [0,1] to the blue→red ramp used by
// the paper's Fig. 2 (red = active connection, blue = silent connection).
func heatColor(v float64) color.RGBA {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	r := uint8(255 * v)
	b := uint8(255 * (1 - v))
	g := uint8(64 * (1 - 2*abs(v-0.5)))
	return color.RGBA{R: r, G: g, B: b, A: 255}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render draws a field as an image, scaled up by `scale` (nearest neighbor),
// normalized to the field's own min/max.
func Render(f Field, scale int) *image.RGBA {
	if scale < 1 {
		scale = 1
	}
	lo, hi := f.Data[0], f.Data[0]
	for _, v := range f.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	img := image.NewRGBA(image.Rect(0, 0, f.Width*scale, f.Height*scale))
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			v := f.Data[y*f.Width+x]
			n := 0.0
			if span > 0 {
				n = (v - lo) / span
			}
			c := heatColor(n)
			for dy := 0; dy < scale; dy++ {
				for dx := 0; dx < scale; dx++ {
					img.SetRGBA(x*scale+dx, y*scale+dy, c)
				}
			}
		}
	}
	return img
}

// RenderMontage tiles many fields into one image with `cols` columns and a
// 1-pixel (scaled) separator — the layout of the paper's Fig. 5 mask grid.
func RenderMontage(fields []Field, cols, scale int) *image.RGBA {
	if len(fields) == 0 || cols < 1 {
		return image.NewRGBA(image.Rect(0, 0, 1, 1))
	}
	rows := (len(fields) + cols - 1) / cols
	fw, fh := fields[0].Width, fields[0].Height
	gap := scale
	img := image.NewRGBA(image.Rect(0, 0,
		cols*fw*scale+(cols-1)*gap, rows*fh*scale+(rows-1)*gap))
	for i, f := range fields {
		tile := Render(f, scale)
		ox := (i % cols) * (fw*scale + gap)
		oy := (i / cols) * (fh*scale + gap)
		for y := 0; y < tile.Rect.Dy(); y++ {
			for x := 0; x < tile.Rect.Dx(); x++ {
				img.Set(ox+x, oy+y, tile.At(x, y))
			}
		}
	}
	return img
}

// SavePNG writes an image to path.
func SavePNG(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("viz: %w", err)
	}
	defer f.Close()
	return png.Encode(f, img)
}

// PNGWriter is the Catalyst adaptor that renders each epoch's fields into a
// montage PNG under Dir.
type PNGWriter struct {
	Dir     string
	Prefix  string
	Scale   int
	Cols    int
	Written []string
}

// NewPNGWriter creates Dir if needed.
func NewPNGWriter(dir, prefix string, cols, scale int) (*PNGWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("viz: %w", err)
	}
	if cols < 1 {
		cols = 4
	}
	if scale < 1 {
		scale = 8
	}
	return &PNGWriter{Dir: dir, Prefix: prefix, Cols: cols, Scale: scale}, nil
}

// CoProcess implements Adaptor.
func (pw *PNGWriter) CoProcess(epoch int, fields []Field) error {
	path := filepath.Join(pw.Dir, fmt.Sprintf("%s_%04d.png", pw.Prefix, epoch))
	if err := SavePNG(path, RenderMontage(fields, pw.Cols, pw.Scale)); err != nil {
		return err
	}
	pw.Written = append(pw.Written, path)
	return nil
}
