package viz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image/png"
	"net"
	"net/http"
	"strconv"
	"sync"
)

// LiveServer is the live-connection half of the Catalyst substitution: a
// lightweight HTTP endpoint that always serves the most recent epoch's
// receptive fields, so a browser (standing in for the ParaView client) can
// "accept live connection … visualize, pause, and inspect the fields as the
// training progresses" (§III-B).
//
// Endpoints:
//
//	/            HTML page that polls and redraws the montage
//	/latest.png  current montage render
//	/latest.json current fields and epoch as JSON
type LiveServer struct {
	mu       sync.RWMutex
	epoch    int
	fields   []Field
	controls map[string]float64

	listener net.Listener
	server   *http.Server
}

// NewLiveServer starts serving on addr (use "127.0.0.1:0" for an ephemeral
// port) and returns immediately; training pushes updates via CoProcess.
func NewLiveServer(addr string) (*LiveServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("viz: live server: %w", err)
	}
	ls := &LiveServer{listener: ln, controls: make(map[string]float64)}
	mux := http.NewServeMux()
	mux.HandleFunc("/", ls.handleIndex)
	mux.HandleFunc("/latest.png", ls.handlePNG)
	mux.HandleFunc("/latest.json", ls.handleJSON)
	mux.HandleFunc("/control", ls.handleControl)
	ls.server = &http.Server{Handler: mux}
	go ls.server.Serve(ln) //nolint:errcheck // shutdown returns ErrServerClosed
	return ls, nil
}

// Addr returns the bound address (host:port).
func (ls *LiveServer) Addr() string { return ls.listener.Addr().String() }

// Close shuts the server down.
func (ls *LiveServer) Close() error { return ls.server.Close() }

// CoProcess implements Adaptor: publish this epoch's fields.
func (ls *LiveServer) CoProcess(epoch int, fields []Field) error {
	cp := make([]Field, len(fields))
	for i, f := range fields {
		cp[i] = Field{Name: f.Name, Width: f.Width, Height: f.Height,
			Data: append([]float64(nil), f.Data...)}
	}
	ls.mu.Lock()
	ls.epoch = epoch
	ls.fields = cp
	ls.mu.Unlock()
	return nil
}

func (ls *LiveServer) snapshot() (int, []Field) {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.epoch, ls.fields
}

func (ls *LiveServer) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>StreamBrain in-situ</title>
<body style="background:#111;color:#eee;font-family:monospace">
<h3>StreamBrain receptive fields (live)</h3>
<div id="e"></div><img id="m" src="/latest.png">
<script>
setInterval(function(){
  document.getElementById('m').src='/latest.png?t='+Date.now();
  fetch('/latest.json').then(function(r){return r.json()}).then(function(j){
    document.getElementById('e').textContent='epoch '+j.epoch;});
},1000);
</script></body>`)
}

func (ls *LiveServer) handlePNG(w http.ResponseWriter, _ *http.Request) {
	_, fields := ls.snapshot()
	if len(fields) == 0 {
		http.Error(w, "no fields yet", http.StatusNotFound)
		return
	}
	img := RenderMontage(fields, 4, 8)
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "image/png")
	w.Write(buf.Bytes()) //nolint:errcheck
}

// liveJSON is the /latest.json payload.
type liveJSON struct {
	Epoch  int     `json:"epoch"`
	Fields []Field `json:"fields"`
}

func (ls *LiveServer) handleJSON(w http.ResponseWriter, _ *http.Request) {
	epoch, fields := ls.snapshot()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(liveJSON{Epoch: epoch, Fields: fields}) //nolint:errcheck
}

// handleControl implements the user-guided tuning channel the paper's §VII
// sketches ("adapting hyperparameters associated with structural plasticity
// dynamically online, possibly guided by an end-user through the ParaView
// visualization"): POST /control?key=<name>&value=<float> records a knob
// setting; the training loop polls Controls() from its epoch hook and
// applies whatever it understands (e.g. swapsPerEpoch, swapMargin).
func (ls *LiveServer) handleControl(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	key := r.URL.Query().Get("key")
	val := r.URL.Query().Get("value")
	if key == "" || val == "" {
		http.Error(w, "need key= and value=", http.StatusBadRequest)
		return
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		http.Error(w, "value not a number", http.StatusBadRequest)
		return
	}
	ls.mu.Lock()
	ls.controls[key] = f
	ls.mu.Unlock()
	fmt.Fprintf(w, "ok %s=%g\n", key, f)
}

// Controls returns a copy of the user-set knobs.
func (ls *LiveServer) Controls() map[string]float64 {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	out := make(map[string]float64, len(ls.controls))
	for k, v := range ls.controls {
		out[k] = v
	}
	return out
}
