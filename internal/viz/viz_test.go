package viz

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testField(name string) Field {
	f := Field{Name: name, Width: 4, Height: 3, Data: make([]float64, 12)}
	for i := range f.Data {
		f.Data[i] = float64(i)
	}
	return f
}

func TestFieldValidate(t *testing.T) {
	if err := testField("ok").Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Field{Name: "bad", Width: 4, Height: 3, Data: make([]float64, 5)}
	if bad.Validate() == nil {
		t.Fatal("size mismatch accepted")
	}
	if (Field{Name: "z", Width: 0, Height: 1}).Validate() == nil {
		t.Fatal("zero width accepted")
	}
}

func TestBoolField(t *testing.T) {
	f := BoolField("mask", 2, 2, []bool{true, false, false, true})
	want := []float64{1, 0, 0, 1}
	for i := range want {
		if f.Data[i] != want[i] {
			t.Fatalf("BoolField[%d] = %v", i, f.Data[i])
		}
	}
}

func TestWriteVTIStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVTI(&buf, []Field{testField("hcu0"), testField("hcu1")}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		`<VTKFile type="ImageData"`,
		`WholeExtent="0 3 0 2 0 0"`,
		`<DataArray type="Float64" Name="hcu0"`,
		`<DataArray type="Float64" Name="hcu1"`,
		`</VTKFile>`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("VTI missing %q in:\n%s", want, s)
		}
	}
	// All 12 values of each field must appear.
	if c := strings.Count(s, "11 "); c < 2 {
		t.Fatalf("expected both fields' last value, found %d", c)
	}
}

func TestWriteVTIErrors(t *testing.T) {
	if err := WriteVTI(io.Discard, nil); err == nil {
		t.Fatal("no fields accepted")
	}
	a := testField("a")
	b := Field{Name: "b", Width: 2, Height: 2, Data: make([]float64, 4)}
	if err := WriteVTI(io.Discard, []Field{a, b}); err == nil {
		t.Fatal("mixed geometry accepted")
	}
}

func TestVTIWriterPerEpoch(t *testing.T) {
	dir := t.TempDir()
	w, err := NewVTIWriter(dir, "rf")
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		if err := w.CoProcess(epoch, []Field{testField("hcu0")}); err != nil {
			t.Fatal(err)
		}
	}
	if len(w.Written) != 3 {
		t.Fatalf("wrote %d files", len(w.Written))
	}
	if _, err := os.Stat(filepath.Join(dir, "rf_0002.vti")); err != nil {
		t.Fatalf("missing epoch file: %v", err)
	}
}

func TestRenderGeometry(t *testing.T) {
	img := Render(testField("f"), 3)
	if img.Rect.Dx() != 12 || img.Rect.Dy() != 9 {
		t.Fatalf("render size %dx%d", img.Rect.Dx(), img.Rect.Dy())
	}
	// Min value renders blue, max renders red.
	c0 := img.RGBAAt(0, 0)
	cN := img.RGBAAt(11, 8)
	if c0.B <= c0.R {
		t.Fatalf("min pixel not blue: %+v", c0)
	}
	if cN.R <= cN.B {
		t.Fatalf("max pixel not red: %+v", cN)
	}
}

func TestRenderConstantField(t *testing.T) {
	f := Field{Name: "c", Width: 2, Height: 2, Data: []float64{5, 5, 5, 5}}
	img := Render(f, 1) // must not divide by zero
	if img.Rect.Dx() != 2 {
		t.Fatal("bad size")
	}
}

func TestRenderMontageLayout(t *testing.T) {
	fields := []Field{testField("a"), testField("b"), testField("c")}
	img := RenderMontage(fields, 2, 2)
	// 2 cols of 4px*2 scale + 1 gap of 2; 2 rows of 3*2 + 1 gap.
	if img.Rect.Dx() != 2*8+2 || img.Rect.Dy() != 2*6+2 {
		t.Fatalf("montage size %dx%d", img.Rect.Dx(), img.Rect.Dy())
	}
	empty := RenderMontage(nil, 2, 2)
	if empty.Rect.Dx() != 1 {
		t.Fatal("empty montage should be 1x1")
	}
}

func TestPNGWriter(t *testing.T) {
	dir := t.TempDir()
	w, err := NewPNGWriter(dir, "fig", 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CoProcess(7, []Field{testField("a")}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fig_0007.png")
	fi, err := os.Stat(path)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("png not written: %v", err)
	}
}

func TestASCIIRender(t *testing.T) {
	s := ASCIIRender(testField("f"))
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("ascii has %d lines", len(lines))
	}
	if len(lines[1]) != 4 {
		t.Fatalf("row width %d", len(lines[1]))
	}
	// Max-value corner must use the densest ramp char.
	if lines[3][3] != '@' {
		t.Fatalf("max cell rendered as %q", lines[3][3])
	}
}

func TestMultiAdaptorFanOut(t *testing.T) {
	dir := t.TempDir()
	v, _ := NewVTIWriter(dir, "v")
	p, _ := NewPNGWriter(dir, "p", 2, 2)
	m := Multi{v, p}
	if err := m.CoProcess(0, []Field{testField("a")}); err != nil {
		t.Fatal(err)
	}
	if len(v.Written) != 1 || len(p.Written) != 1 {
		t.Fatal("fan-out missed an adaptor")
	}
}

func TestLiveServerEndpoints(t *testing.T) {
	ls, err := NewLiveServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	// Before any CoProcess, the PNG endpoint reports 404.
	resp, err := http.Get("http://" + ls.Addr() + "/latest.png")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-publish status %d", resp.StatusCode)
	}

	if err := ls.CoProcess(5, []Field{testField("hcu0")}); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get("http://" + ls.Addr() + "/latest.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Epoch  int `json:"epoch"`
		Fields []struct {
			Name string `json:"Name"`
		} `json:"fields"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Epoch != 5 || len(payload.Fields) != 1 || payload.Fields[0].Name != "hcu0" {
		t.Fatalf("bad payload: %+v", payload)
	}

	resp2, err := http.Get("http://" + ls.Addr() + "/latest.png")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("png endpoint status %d, %d bytes", resp2.StatusCode, len(body))
	}
	// PNG magic.
	if fmt.Sprintf("%x", body[:4]) != "89504e47" {
		t.Fatal("latest.png is not a PNG")
	}

	resp3, err := http.Get("http://" + ls.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if !strings.Contains(string(html), "StreamBrain") {
		t.Fatal("index page missing title")
	}
}

func TestLiveServerCopiesFields(t *testing.T) {
	ls, err := NewLiveServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	f := testField("a")
	if err := ls.CoProcess(0, []Field{f}); err != nil {
		t.Fatal(err)
	}
	f.Data[0] = 999 // mutate after publish; server must hold a copy
	_, fields := ls.snapshot()
	if fields[0].Data[0] == 999 {
		t.Fatal("live server aliases caller data")
	}
}

func TestLiveServerControlEndpoint(t *testing.T) {
	ls, err := NewLiveServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()

	// GET is rejected.
	resp, err := http.Get("http://" + ls.Addr() + "/control?key=swaps&value=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /control status %d", resp.StatusCode)
	}

	post := func(q string) int {
		r, err := http.Post("http://"+ls.Addr()+"/control?"+q, "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}
	if code := post("key=swapsPerEpoch&value=5"); code != http.StatusOK {
		t.Fatalf("valid control rejected: %d", code)
	}
	if code := post("key=swapMargin&value=0.2"); code != http.StatusOK {
		t.Fatalf("valid control rejected: %d", code)
	}
	if code := post("key=bad"); code != http.StatusBadRequest {
		t.Fatalf("missing value accepted: %d", code)
	}
	if code := post("key=x&value=notanumber"); code != http.StatusBadRequest {
		t.Fatalf("non-numeric accepted: %d", code)
	}
	controls := ls.Controls()
	if controls["swapsPerEpoch"] != 5 || controls["swapMargin"] != 0.2 {
		t.Fatalf("controls not recorded: %v", controls)
	}
	// Controls() must return a copy.
	controls["swapsPerEpoch"] = 99
	if ls.Controls()["swapsPerEpoch"] != 5 {
		t.Fatal("Controls leaked internal map")
	}
}
