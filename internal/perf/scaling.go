package perf

import (
	"time"

	"streambrain/internal/core"
	"streambrain/internal/data"
	"streambrain/internal/higgs"
	"streambrain/internal/mpi"
	"streambrain/internal/perf/hist"
)

// The scaling runners (DESIGN.md §10) measure the distributed fabric, not
// the kernels: the allreduce sweep isolates the trace-merge collective's
// cost per transport/payload/rank-count, and trainscale runs the whole
// data-parallel trainer so serialization, scheduling, and compute overlap
// show up in one events/s number. Both fabrics run in this process — chan
// ranks over channels, tcp ranks over real loopback sockets with the full
// rendezvous, frame codec, and demux — so the chan/tcp delta is exactly the
// wire cost.

// scalingTCPOptions gives measurement worlds generous deadlines: a pass is
// pinned work, not a liveness probe.
var scalingTCPOptions = mpi.TCPOptions{Timeout: 5 * time.Minute}

func (r *Runner) runAllreduce(sc Scenario) (Result, error) {
	w, err := mpi.NewWorldFor(sc.Transport, sc.Ranks, scalingTCPOptions)
	if err != nil {
		return Result{}, err
	}
	defer w.Close()
	// Per-rank payloads live across passes; only the collective is timed.
	bufs := make([][]float64, sc.Ranks)
	for rank := range bufs {
		bufs[rank] = make([]float64, sc.Floats)
		for i := range bufs[rank] {
			bufs[rank][i] = float64(rank + i)
		}
	}
	// One untimed round: page in buffers, settle the TCP mesh.
	if err := w.Run(func(c *mpi.Comm) error {
		return c.AllreduceMean(bufs[c.Rank()])
	}); err != nil {
		return Result{}, err
	}
	passes := make([]Result, measurePasses)
	for pass := range passes {
		h := hist.New()
		probe := startProbe()
		start := time.Now()
		err := w.Run(func(c *mpi.Comm) error {
			buf := bufs[c.Rank()]
			for i := 0; i < sc.Iters; i++ {
				t0 := time.Now()
				if err := c.AllreduceMean(buf); err != nil {
					return err
				}
				if c.Rank() == 0 {
					h.Record(time.Since(t0))
				}
			}
			return nil
		})
		if err != nil {
			return Result{}, err
		}
		wall := time.Since(start)
		res := Result{
			Scenario:    sc.Name,
			Kind:        string(sc.Kind),
			Ops:         uint64(sc.Iters),
			WallSeconds: wall.Seconds(),
			Throughput:  float64(sc.Iters) / wall.Seconds(),
		}
		res.AllocsPerOp, res.BytesPerOp = probe.perOp(res.Ops)
		fillLatency(&res, h)
		passes[pass] = res
	}
	return bestOf(passes), nil
}

func (r *Runner) runTrainScale(sc Scenario) (Result, error) {
	// Same fixture recipe as the serve/stream scenarios: synthetic Higgs,
	// quantile encoding, a small quick-to-train model per rank.
	ds := higgs.Generate(sc.Events, 0.5, 1)
	enc := data.FitEncoder(ds, 10)
	encoded := enc.Transform(ds)
	p := fixtureParams(sc.MCUs)
	dt := core.NewDistributedTrainer(sc.Ranks, "parallel", 1,
		encoded.Hypercolumns, encoded.UnitsPerHC, encoded.Classes, p, encoded)
	w, err := mpi.NewWorldFor(sc.Transport, sc.Ranks, scalingTCPOptions)
	if err != nil {
		return Result{}, err
	}
	dt.World = w
	defer w.Close()
	// Each measurement pass is one epoch of each phase over the full
	// dataset (all ranks together touch ~Events rows per phase). Training
	// state carries across passes, which only makes the passes more alike:
	// identical batch counts, identical collective sequence.
	const epochsPerPass = 2 // one unsupervised + one supervised
	opsPerPass := uint64(encoded.Len() * epochsPerPass)
	passes := make([]Result, measurePasses)
	for pass := range passes {
		h := hist.New()
		probe := startProbe()
		start := time.Now()
		if _, err := dt.Train(1, 1); err != nil {
			return Result{}, err
		}
		wall := time.Since(start)
		h.Record(wall)
		res := Result{
			Scenario:    sc.Name,
			Kind:        string(sc.Kind),
			Ops:         opsPerPass,
			WallSeconds: wall.Seconds(),
			Throughput:  float64(opsPerPass) / wall.Seconds(),
		}
		res.AllocsPerOp, res.BytesPerOp = probe.perOp(res.Ops)
		fillLatency(&res, h)
		passes[pass] = res
	}
	return bestOf(passes), nil
}
