package perf

import (
	"path/filepath"
	"testing"
)

// TestSuites validates every built-in suite: resolvable, unique scenario
// names, every scenario well-formed.
func TestSuites(t *testing.T) {
	names := Suites()
	if len(names) == 0 {
		t.Fatal("no built-in suites")
	}
	for _, name := range names {
		scs, err := SuiteByName(name)
		if err != nil {
			t.Fatalf("suite %s: %v", name, err)
		}
		if len(scs) == 0 {
			t.Fatalf("suite %s is empty", name)
		}
	}
	if _, err := SuiteByName("no-such-suite"); err == nil {
		t.Fatal("unknown suite must error")
	}
}

func TestScenarioValidate(t *testing.T) {
	bad := []Scenario{
		{},
		{Name: "x", Kind: "weird"},
		{Name: "x", Kind: KindKernel, Op: "gemm", Backend: "naive"},                       // no size
		{Name: "x", Kind: KindKernel, Op: "gemm", Size: 8, Iters: 1},                      // no backend
		{Name: "x", Kind: KindKernel, Op: "nope", Backend: "naive", Iters: 1},             // bad op
		{Name: "x", Kind: KindServeClosed, Requests: 10},                                  // no concurrency
		{Name: "x", Kind: KindServeOpen, Requests: 10},                                    // no rps
		{Name: "x", Kind: KindServeClosed, Concurrency: 1, Requests: 10, Wire: "grpc"},    // bad wire
		{Name: "x", Kind: KindServeOpen, TargetRPS: 5, Requests: 10, Wire: "proto"},       // bad wire
		{Name: "x", Kind: KindStream},                                                     // no events
		{Name: "x", Kind: KindAllreduce, Transport: "chan", Floats: 8, Iters: 1},          // no ranks
		{Name: "x", Kind: KindAllreduce, Transport: "chan", Ranks: 2, Iters: 1},           // no floats
		{Name: "x", Kind: KindAllreduce, Transport: "udp", Ranks: 2, Floats: 8, Iters: 1}, // bad transport
		{Name: "x", Kind: KindTrainScale, Transport: "tcp", Events: 100},                  // no ranks
		{Name: "x", Kind: KindTrainScale, Transport: "tcp", Ranks: 2},                     // no events
		{Name: "x", Kind: KindTrainScale, Transport: "mpi", Ranks: 2, Events: 100},        // bad transport
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected a validation error", i, sc)
		}
	}
}

// TestRunAllreduceScenario runs the collective sweep's runner at tiny scale
// on both transports: real loopback sockets for tcp, so the measured path is
// the shipped one.
func TestRunAllreduceScenario(t *testing.T) {
	for _, transport := range []string{"chan", "tcp"} {
		sc := Scenario{Name: "allreduce/" + transport + "/test", Kind: KindAllreduce,
			Transport: transport, Ranks: 3, Floats: 256, Iters: 4}
		res, err := (&Runner{}).RunScenario(sc)
		if err != nil {
			t.Fatalf("%s: %v", transport, err)
		}
		if res.Ops != 4 || res.Throughput <= 0 {
			t.Fatalf("%s: implausible result %+v", transport, res)
		}
	}
}

// TestRunTrainScaleScenario drives the end-to-end distributed-training
// scenario at smoke scale over tcp (the more failure-prone fabric).
func TestRunTrainScaleScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a distributed model")
	}
	sc := Scenario{Name: "train/tcp/test", Kind: KindTrainScale,
		Transport: "tcp", Ranks: 2, Events: 512, MCUs: 20}
	res, err := (&Runner{}).RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || res.Ops == 0 {
		t.Fatalf("implausible result %+v", res)
	}
}

// TestReportRoundTrip pins the BENCH_*.json format: what WriteFile emits,
// ReadFile reproduces.
func TestReportRoundTrip(t *testing.T) {
	rep := NewReport("smoke")
	rep.Results = []Result{
		{Scenario: "a", Kind: "kernel", Ops: 5, WallSeconds: 0.5, Throughput: 10,
			P50Ms: 1, P95Ms: 2, P99Ms: 3, MaxMs: 4, AllocsPerOp: 7, BytesPerOp: 512},
		{Scenario: "b", Kind: "serve-closed", Ops: 100, Errors: 2, Throughput: 400},
	}
	path := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != "smoke" || got.Go == "" || got.CPUs <= 0 {
		t.Fatalf("environment stamp lost: %+v", got)
	}
	if len(got.Results) != 2 || *got.Find("a") != rep.Results[0] || *got.Find("b") != rep.Results[1] {
		t.Fatalf("results did not round-trip: %+v", got.Results)
	}
	if got.Find("missing") != nil {
		t.Fatal("Find of an absent scenario must be nil")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("ReadFile of a missing file must error")
	}
}

// TestMergeMedian checks the re-baselining merge: per-scenario medians,
// worst-run errors, mismatched scenario sets rejected.
func TestMergeMedian(t *testing.T) {
	mk := func(thr, p99 float64, errs uint64) Report {
		return Report{Suite: "s", Results: []Result{
			{Scenario: "a", Throughput: thr, P99Ms: p99, Errors: errs},
		}}
	}
	merged, err := MergeMedian([]Report{mk(100, 3, 0), mk(300, 1, 2), mk(200, 2, 1)})
	if err != nil {
		t.Fatal(err)
	}
	got := merged.Results[0]
	if got.Throughput != 200 || got.P99Ms != 2 {
		t.Fatalf("median metrics wrong: %+v", got)
	}
	if got.Errors != 2 {
		t.Fatalf("Errors = %d, want worst run (2)", got.Errors)
	}
	if _, err := MergeMedian(nil); err == nil {
		t.Fatal("empty merge must error")
	}
	other := Report{Suite: "s", Results: []Result{{Scenario: "b"}}}
	if _, err := MergeMedian([]Report{mk(1, 1, 0), other}); err == nil {
		t.Fatal("mismatched scenario sets must error")
	}
}

// TestRunKernelScenario runs a deliberately tiny kernel scenario end to end
// and sanity-checks the Result invariants the gate depends on.
func TestRunKernelScenario(t *testing.T) {
	r := &Runner{Logf: t.Logf}
	for _, op := range []string{"gemm", "trace"} {
		sc := Scenario{Name: "t/" + op, Kind: KindKernel, Op: op,
			Backend: "naive", Size: 32, Iters: 3}
		res, err := r.RunScenario(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Scenario != sc.Name || res.Ops != 3 || res.Errors != 0 {
			t.Fatalf("%s: %+v", op, res)
		}
		if res.Throughput <= 0 || res.WallSeconds <= 0 {
			t.Fatalf("%s: non-positive rate: %+v", op, res)
		}
		if res.P50Ms > res.P99Ms || res.P99Ms > res.MaxMs {
			t.Fatalf("%s: percentiles out of order: %+v", op, res)
		}
	}
}

// TestRunServeClosedScenario pushes a small closed-loop HTTP load through a
// real serve.Server and checks every request succeeded. Skipped under
// -short: it trains a (tiny) model first.
func TestRunServeClosedScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	r := &Runner{Logf: t.Logf}
	res, err := r.RunScenario(Scenario{Name: "t/serve", Kind: KindServeClosed,
		Concurrency: 2, BatchSize: 2, Requests: 20, MCUs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d/%d requests failed", res.Errors, res.Ops)
	}
	if res.Ops != 20 || res.Throughput <= 0 || res.P99Ms <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

// TestRunServeBinaryScenario drives the same closed loop over the binary
// wire protocol, including the -wire override path. Skipped under -short:
// it trains a (tiny) model first.
func TestRunServeBinaryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	r := &Runner{Logf: t.Logf, WireOverride: "binary"}
	res, err := r.RunScenario(Scenario{Name: "t/serve-binary", Kind: KindServeClosed,
		Concurrency: 2, BatchSize: 2, Requests: 20, MCUs: 20, Wire: "json"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d/%d binary requests failed", res.Errors, res.Ops)
	}
	if res.Ops != 20 || res.Throughput <= 0 || res.P99Ms <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}

// TestRunStreamScenario measures a short steady-state ingest. Skipped under
// -short: bootstrap trains on the warmup buffer.
func TestRunStreamScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	r := &Runner{Logf: t.Logf}
	res, err := r.RunScenario(Scenario{Name: "t/stream", Kind: KindStream,
		Warmup: 256, Events: 128, MCUs: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 128 || res.Throughput <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
}
