// Package perf is the load-generation and perf-baseline subsystem
// (DESIGN.md §8): a declarative suite of perf scenarios — backend kernel
// sweeps, closed- and open-loop HTTP load against the serve subsystem, and
// stream-pipeline steady-state ingest — executed by a Runner that turns
// each scenario into one machine-readable Result (throughput, latency
// percentiles from the shared hist.Histogram, allocations per operation).
//
// cmd/streambrain-loadtest runs a named suite and writes BENCH_<suite>.json;
// tools/benchgate diffs such a run against the committed perf/baseline.json
// and fails CI when a hot path regresses. Together they turn the repo's
// performance claims into checked-in, diffable numbers.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// Result is one scenario's measurement — the unit both the baseline file
// and fresh BENCH_*.json runs are made of.
type Result struct {
	// Scenario is the unique scenario name; Kind echoes the scenario kind.
	Scenario string `json:"scenario"`
	Kind     string `json:"kind"`
	// Ops counts completed operations (kernel calls, HTTP requests, or
	// ingested events); Errors counts failed ones.
	Ops    uint64 `json:"ops"`
	Errors uint64 `json:"errors,omitempty"`
	// WallSeconds is the measured span; Throughput is the headline
	// rate — events/s for serve and stream scenarios, ops/s for kernels.
	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput"`
	// Latency percentiles of one operation, in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// AllocsPerOp and BytesPerOp are heap deltas over the run divided by
	// Ops (runtime.MemStats, so concurrent scenarios include generator
	// overhead — comparable run-to-run, not benchmark-precise).
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Server-reported telemetry, scraped from the fixture's /metrics after
	// the serve passes (DESIGN.md §11) — the server's own view of the same
	// load the client-side numbers above describe. Batch amortization and
	// stage latencies here come from the batcher's instruments, not the
	// client clock, so client-side scheduling noise cancels out. Zero for
	// non-serve scenarios.
	ServerAvgBatch     float64 `json:"server_avg_batch,omitempty"`
	ServerQueueDepth   float64 `json:"server_queue_depth,omitempty"`
	ServerQueueP99Ms   float64 `json:"server_queue_wait_p99_ms,omitempty"`
	ServerForwardP99Ms float64 `json:"server_forward_p99_ms,omitempty"`
}

// Report is the BENCH_<suite>.json envelope: the suite's results plus the
// environment they were measured in, so a gate can surface
// apples-to-oranges comparisons (benchgate warns when the stamps differ).
type Report struct {
	Suite   string   `json:"suite"`
	Created string   `json:"created,omitempty"` // RFC3339
	Go      string   `json:"go"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	CPUs    int      `json:"cpus"`
	Results []Result `json:"results"`
}

// NewReport returns an empty report stamped with the current environment.
func NewReport(suite string) Report {
	return Report{
		Suite:   suite,
		Created: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
	}
}

// Find returns the result for a scenario name, or nil.
func (r *Report) Find(scenario string) *Result {
	for i := range r.Results {
		if r.Results[i].Scenario == scenario {
			return &r.Results[i]
		}
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encode report: %w", err)
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	return nil
}

// MergeMedian folds several runs of the same suite into one report with
// per-scenario, per-metric medians. Baselines should be generated this way
// (streambrain-loadtest -runs 3): a median baseline is neither a lucky fast
// run (which would fail honest future runs) nor an unlucky slow one (which
// would let real regressions through). Scenario sets must match; Errors
// take the worst run.
func MergeMedian(reports []Report) (Report, error) {
	if len(reports) == 0 {
		return Report{}, fmt.Errorf("perf: nothing to merge")
	}
	if len(reports) == 1 {
		return reports[0], nil
	}
	merged := reports[0]
	merged.Results = append([]Result(nil), reports[0].Results...)
	for i := range merged.Results {
		name := merged.Results[i].Scenario
		runs := make([]Result, 0, len(reports))
		for r := range reports {
			res := reports[r].Find(name)
			if res == nil {
				return Report{}, fmt.Errorf("perf: run %d is missing scenario %s", r, name)
			}
			runs = append(runs, *res)
		}
		pick := func(metric func(Result) float64) float64 {
			vals := make([]float64, len(runs))
			for j, res := range runs {
				vals[j] = metric(res)
			}
			sort.Float64s(vals)
			return vals[len(vals)/2]
		}
		m := &merged.Results[i]
		m.WallSeconds = pick(func(r Result) float64 { return r.WallSeconds })
		m.Throughput = pick(func(r Result) float64 { return r.Throughput })
		m.P50Ms = pick(func(r Result) float64 { return r.P50Ms })
		m.P95Ms = pick(func(r Result) float64 { return r.P95Ms })
		m.P99Ms = pick(func(r Result) float64 { return r.P99Ms })
		m.MaxMs = pick(func(r Result) float64 { return r.MaxMs })
		m.AllocsPerOp = pick(func(r Result) float64 { return r.AllocsPerOp })
		m.BytesPerOp = pick(func(r Result) float64 { return r.BytesPerOp })
		m.ServerAvgBatch = pick(func(r Result) float64 { return r.ServerAvgBatch })
		m.ServerQueueDepth = pick(func(r Result) float64 { return r.ServerQueueDepth })
		m.ServerQueueP99Ms = pick(func(r Result) float64 { return r.ServerQueueP99Ms })
		m.ServerForwardP99Ms = pick(func(r Result) float64 { return r.ServerForwardP99Ms })
		for _, res := range runs {
			if res.Errors > m.Errors {
				m.Errors = res.Errors
			}
		}
	}
	return merged, nil
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("perf: %w", err)
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return Report{}, fmt.Errorf("perf: decode %s: %w", path, err)
	}
	if len(r.Results) == 0 {
		return Report{}, fmt.Errorf("perf: %s has no results", path)
	}
	return r, nil
}
